// dmt_generate: dumps any built-in stream (Table I surrogates, SEA/Agrawal/
// Hyperplane, RandomRBF/STAGGER/LED) to CSV, e.g. for consumption by
// external tools or for round-tripping through dmt_eval --csv.
//
//   dmt_generate --dataset SEA --samples 100000 > sea.csv
//   dmt_generate --generator LED --samples 5000 > led.csv
#include <cstdio>
#include <memory>
#include <string>

#include "dmt/streams/classic_generators.h"
#include "dmt/streams/datasets.h"

int main(int argc, char** argv) {
  using namespace dmt;
  std::string dataset;
  std::string generator;
  std::size_t samples = 10'000;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--dataset") dataset = next();
    else if (arg == "--generator") generator = next();
    else if (arg == "--samples") samples = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--seed") seed = std::strtoull(next().c_str(), nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: dmt_generate (--dataset NAME | --generator "
                   "RandomRBF|STAGGER|LED) [--samples N] [--seed S]\n");
      return arg == "--help" ? 0 : 1;
    }
  }
  std::unique_ptr<streams::Stream> stream;
  if (!dataset.empty()) {
    const streams::DatasetSpec spec = streams::DatasetByName(dataset);
    stream = spec.make(streams::EffectiveSamples(spec, samples), seed);
  } else if (generator == "RandomRBF") {
    streams::RandomRbfConfig config;
    config.total_samples = samples;
    config.seed = seed;
    stream = std::make_unique<streams::RandomRbfGenerator>(config);
  } else if (generator == "STAGGER") {
    streams::StaggerConfig config;
    config.total_samples = samples;
    config.seed = seed;
    stream = std::make_unique<streams::StaggerGenerator>(config);
  } else if (generator == "LED") {
    streams::LedConfig config;
    config.total_samples = samples;
    config.seed = seed;
    stream = std::make_unique<streams::LedGenerator>(config);
  } else {
    std::fprintf(stderr, "need --dataset or --generator (--help)\n");
    return 1;
  }

  for (std::size_t j = 0; j < stream->num_features(); ++j) {
    std::printf("x%zu,", j);
  }
  std::printf("class\n");
  Instance instance;
  while (stream->NextInstance(&instance)) {
    for (double v : instance.x) std::printf("%.6g,", v);
    std::printf("%d\n", instance.y);
  }
  return 0;
}
