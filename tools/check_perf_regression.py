#!/usr/bin/env python3
"""Perf-regression gate for the training micro-benchmark.

Compares a freshly measured BENCH_train.json against the committed
baseline at the repo root. Absolute ns/sample is meaningless across
runner generations, so the check is RATIO-NORMALIZED: the median
current/baseline ratio over all NON-DMT cells estimates the machine-speed
scale between the two measurements, and each DMT cell is then allowed at
most `--headroom` (default 1.25, i.e. +25%) on top of that scale.

    ./tools/check_perf_regression.py CURRENT BASELINE [--headroom 1.25]

Exits 1 (with a per-cell report) if any DMT cell regresses beyond the
headroom; exits 0 otherwise. Both files must come from the same protocol
(sample count and seed are cross-checked).
"""

import argparse
import json
import statistics
import sys


def load_cells(path):
    with open(path) as f:
        doc = json.load(f)
    cells = {}
    for row in doc.get("results", []):
        ns = row.get("ns_per_sample", 0.0)
        if ns > 0.0:
            cells[(row["dataset"], row["model"])] = ns
    return doc, cells


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--headroom", type=float, default=1.25,
                        help="allowed DMT slowdown on top of the machine "
                             "scale (default 1.25 = +25%%)")
    args = parser.parse_args()

    cur_doc, cur = load_cells(args.current)
    base_doc, base = load_cells(args.baseline)

    for key in ("samples", "seed"):
        if cur_doc.get(key) != base_doc.get(key):
            print(f"protocol mismatch: {key} {cur_doc.get(key)} != "
                  f"baseline {base_doc.get(key)}")
            return 1

    shared = sorted(set(cur) & set(base))
    ratios = [cur[c] / base[c] for c in shared if c[1] != "DMT"]
    if not ratios:
        print("no non-DMT cells shared with the baseline; cannot normalize")
        return 1
    scale = statistics.median(ratios)
    print(f"machine scale (median non-DMT current/baseline over "
          f"{len(ratios)} cells): {scale:.3f}")

    dmt_cells = [c for c in shared if c[1] == "DMT"]
    if not dmt_cells:
        print("no DMT cells shared with the baseline")
        return 1

    failed = False
    for cell in dmt_cells:
        limit = base[cell] * scale * args.headroom
        verdict = "OK" if cur[cell] <= limit else "REGRESSED"
        failed |= verdict == "REGRESSED"
        print(f"  {cell[0]:<12} DMT {cur[cell]:10.1f} ns/sample "
              f"(baseline {base[cell]:10.1f}, limit {limit:10.1f}) {verdict}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
