// dmt_serve: long-lived multi-tenant stream-serving engine (DESIGN.md
// Sec. 14-15). Owns one independent per-stream learner instance per
// stream id, sharded across a work-stealing thread pool, and speaks the
// line-delimited request protocol of serve/request.h on stdin/stdout or a
// local unix-domain socket:
//
//   printf 'train u1 0.1,0.7,1\nscore u1 0.2,0.5\nstats\n' |
//     dmt_serve --model DMT --features 2 --classes 2
//
//   dmt_serve --model GLM --features 3 --classes 2 --socket /tmp/dmt.sock
//
// Every request yields exactly one response line, in request order; the
// same script and seed produce byte-identical responses at any --shards
// value. --export FILE streams per-shard telemetry as JSONL (one valid
// JSON object per line, NaN-safe) so splits/drift/resets are observable
// in flight.
//
// Durability (--state-dir): the engine checkpoints itself to an atomic
// manifest every --checkpoint-every windows and on shutdown, recovers
// from the newest complete manifest at startup (a corrupt or
// config-skewed manifest is an exit-2 diagnostic, never a silent reset),
// and parks idle streams to disk under --max-streams / --idle-windows,
// warm-starting them transparently on the next request. SIGINT/SIGTERM
// drain in-flight work, write a final checkpoint and exit 0.
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include <unistd.h>

#include "dmt/common/parse.h"
#include "dmt/common/sanitize.h"
#include "dmt/robust/faulty_stream.h"
#include "dmt/serve/bridge.h"
#include "dmt/serve/engine.h"
#include "dmt/serve/exporter.h"
#include "dmt/serve/state_dir.h"
#include "harness.h"

namespace {

constexpr const char kUsage[] =
    "usage: dmt_serve --features N --classes N [--model NAME] [--shards N]\n"
    "       [--seed S] [--batch-window N] [--queue-capacity N]\n"
    "       [--bad-input skip|impute|throw] [--export FILE]\n"
    "       [--export-every N] [--socket PATH] [--state-dir DIR]\n"
    "       [--checkpoint-every N] [--max-streams N] [--idle-windows N]\n"
    "       [--inject SPEC] [--dump-state]\n"
    "protocol (one request per line, one response line per request):\n"
    "  train <stream> <f1,...,fN,label>   incremental update\n"
    "  score <stream> <f1,...,fN>         class prediction + probabilities\n"
    "  snapshot <stream> <path>           save the live model (atomic)\n"
    "  restore <stream> <path>            blue-green restore from archive\n"
    "  drop <stream>                      forget the stream\n"
    "  stats                              one-line JSON engine summary\n"
    "durability: --state-dir enables checkpoint manifests (recovered at\n"
    "startup, written every --checkpoint-every windows and on shutdown)\n"
    "and idle-stream eviction (--max-streams LRU bound, --idle-windows\n"
    "TTL); --dump-state prints the newest manifest summary and exits.\n"
    "--inject nan=R,inf=R,missing=R,flip=R,truncate=R corrupts train and\n"
    "score rows deterministically per stream (truncate drops a feature\n"
    "suffix).\n"
    "models: DMT FIMT-DD VFDT(MC) VFDT(NBA) HT-Ada EFDT ForestEns\n"
    "BaggingEns OzaBag OzaBoost SGT GLM\n";

// Usage errors and unusable state dirs exit 2, runtime failures exit 1.
[[noreturn]] void UsageError(const std::string& message) {
  std::fprintf(stderr, "dmt_serve: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

volatile std::sig_atomic_t g_stop = 0;

void OnStopSignal(int /*signum*/) { g_stop = 1; }

// No SA_RESTART: a blocked read()/accept() must return EINTR so the stop
// flag is observed promptly and shutdown can drain + checkpoint.
void InstallStopHandlers() {
  struct sigaction action {};
  action.sa_handler = OnStopSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

// --dump-state: one-line summary of the newest checkpoint manifest, for
// scripts (the crash-recovery CI job reads `requests=` to know how much
// of its request script the checkpoint already covers).
int DumpState(const std::string& state_dir) {
  try {
    const std::optional<dmt::serve::Manifest> manifest =
        dmt::serve::LoadNewestManifest(state_dir);
    if (!manifest.has_value()) {
      std::fprintf(stderr, "dmt_serve: no checkpoint manifest in %s\n",
                   state_dir.c_str());
      return 1;
    }
    std::size_t resident = 0;
    for (const dmt::serve::ManifestStream& stream : manifest->streams) {
      if (stream.resident) ++resident;
    }
    std::printf(
        "state seq=%llu windows=%llu requests=%llu streams=%zu "
        "resident=%zu model=%s\n",
        static_cast<unsigned long long>(manifest->seq),
        static_cast<unsigned long long>(manifest->tallies.windows),
        static_cast<unsigned long long>(manifest->tallies.requests),
        manifest->streams.size(), resident, manifest->model_kind.c_str());
    return 0;
  } catch (const dmt::serve::StateError& e) {
    std::fprintf(stderr, "dmt_serve: %s\n", e.what());
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmt;
  std::string model_name = "DMT";
  std::string export_path;
  std::string socket_path;
  bool dump_state = false;
  serve::ServeConfig config;
  std::uint64_t features = 0;
  std::uint64_t classes = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) UsageError("missing value for " + arg);
      return argv[++i];
    };
    // Strict numeric flags (common/parse.h): trailing garbage, empty
    // strings and non-finite values exit 2, never become a silent 0.
    auto next_u64 = [&]() -> std::uint64_t {
      const std::string value = next();
      const std::optional<std::uint64_t> parsed = ParseU64(value);
      if (!parsed) {
        UsageError("bad numeric value for " + arg + ": '" + value + "'");
      }
      return *parsed;
    };
    if (arg == "--model") model_name = next();
    else if (arg == "--features") features = next_u64();
    else if (arg == "--classes") classes = next_u64();
    else if (arg == "--shards") config.num_shards = next_u64();
    else if (arg == "--seed") config.seed = next_u64();
    else if (arg == "--batch-window") config.batch_window = next_u64();
    else if (arg == "--queue-capacity") config.queue_capacity = next_u64();
    else if (arg == "--export") export_path = next();
    else if (arg == "--export-every") config.export_every = next_u64();
    else if (arg == "--socket") socket_path = next();
    else if (arg == "--state-dir") config.state_dir = next();
    else if (arg == "--checkpoint-every") config.checkpoint_every = next_u64();
    else if (arg == "--max-streams") config.max_streams = next_u64();
    else if (arg == "--idle-windows") config.idle_windows = next_u64();
    else if (arg == "--dump-state") dump_state = true;
    else if (arg == "--inject") {
      const std::string value = next();
      try {
        config.inject = robust::FaultSpec::Parse(value);
      } catch (const std::invalid_argument& e) {
        UsageError(std::string("bad --inject value: ") + e.what());
      }
    } else if (arg == "--bad-input") {
      const std::string value = next();
      try {
        config.bad_input_policy = BadInputPolicyFromString(value);
      } catch (const std::invalid_argument& e) {
        UsageError(std::string("bad --bad-input value: ") + e.what());
      }
    } else if (arg == "--help") {
      std::printf("%s", kUsage);
      return 0;
    } else {
      UsageError("unknown option: " + arg);
    }
  }
  if (dump_state) {
    if (config.state_dir.empty()) {
      UsageError("--dump-state requires --state-dir");
    }
    return DumpState(config.state_dir);
  }
  if (config.state_dir.empty()) {
    if (config.checkpoint_every > 0) {
      UsageError("--checkpoint-every requires --state-dir");
    }
    if (config.max_streams > 0 || config.idle_windows > 0) {
      UsageError("--max-streams / --idle-windows require --state-dir");
    }
  }
  if (features == 0 || classes == 0) {
    UsageError("--features and --classes are required (and must be >= 1)");
  }
  if (classes < 2) UsageError("--classes must be >= 2");
  config.num_features = static_cast<int>(features);
  config.num_classes = static_cast<int>(classes);

  // Validate the model name up front (MakeModel exits 1 on an unknown
  // name, which would otherwise only fire at first request).
  {
    bool known = false;
    for (const char* name :
         {"DMT", "FIMT-DD", "VFDT(MC)", "VFDT(NBA)", "HT-Ada", "EFDT",
          "ForestEns", "BaggingEns", "OzaBag", "OzaBoost", "SGT", "GLM"}) {
      if (model_name == name) known = true;
    }
    if (!known) UsageError("unknown model: " + model_name);
  }
  config.model_kind = model_name;
  config.factory = [&](const std::string& /*stream_id*/, std::uint64_t seed) {
    return bench::MakeModel(model_name, config.num_features,
                            config.num_classes, seed);
  };

  std::unique_ptr<serve::JsonlExporter> exporter;
  if (!export_path.empty()) {
    exporter = std::make_unique<serve::JsonlExporter>(export_path);
    if (!exporter->ok()) {
      std::fprintf(stderr, "dmt_serve: cannot open --export %s\n",
                   export_path.c_str());
      return 1;
    }
    config.exporter = exporter.get();
  }

  InstallStopHandlers();
  std::optional<serve::ServeEngine> engine;
  try {
    engine.emplace(std::move(config));
  } catch (const serve::StateError& e) {
    // Recovery refused (corrupt manifest, config skew, eviction without a
    // state dir): a misconfiguration, not a runtime failure.
    std::fprintf(stderr, "dmt_serve: %s\n", e.what());
    return 2;
  }
  if (!socket_path.empty()) {
    return serve::RunUnixSocketServer(&*engine, socket_path, &g_stop);
  }
  const int rc =
      serve::RunLineProtocol(&*engine, STDIN_FILENO, STDOUT_FILENO, &g_stop,
                             /*flush_when_idle=*/false);
  // All responses were drained by the bridge; Finish writes the final
  // checkpoint and flushes telemetry.
  engine->Finish(std::cout);
  return rc;
}
