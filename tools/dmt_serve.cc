// dmt_serve: long-lived multi-tenant stream-serving engine (DESIGN.md
// Sec. 14). Owns one independent per-stream learner instance per stream
// id, sharded across a work-stealing thread pool, and speaks the
// line-delimited request protocol of serve/request.h on stdin/stdout or a
// local unix-domain socket:
//
//   printf 'train u1 0.1,0.7,1\nscore u1 0.2,0.5\nstats\n' |
//     dmt_serve --model DMT --features 2 --classes 2
//
//   dmt_serve --model GLM --features 3 --classes 2 --socket /tmp/dmt.sock
//
// Every request yields exactly one response line, in request order; the
// same script and seed produce byte-identical responses at any --shards
// value. --export FILE streams per-shard telemetry as JSONL (one valid
// JSON object per line, NaN-safe) so splits/drift/resets are observable
// in flight.
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "dmt/common/parse.h"
#include "dmt/common/sanitize.h"
#include "dmt/serve/engine.h"
#include "dmt/serve/exporter.h"
#include "harness.h"

namespace {

constexpr const char kUsage[] =
    "usage: dmt_serve --features N --classes N [--model NAME] [--shards N]\n"
    "       [--seed S] [--batch-window N] [--queue-capacity N]\n"
    "       [--bad-input skip|impute|throw] [--export FILE]\n"
    "       [--export-every N] [--socket PATH]\n"
    "protocol (one request per line, one response line per request):\n"
    "  train <stream> <f1,...,fN,label>   incremental update\n"
    "  score <stream> <f1,...,fN>         class prediction + probabilities\n"
    "  snapshot <stream> <path>           save the live model (atomic)\n"
    "  restore <stream> <path>            blue-green restore from archive\n"
    "  drop <stream>                      forget the stream\n"
    "  stats                              one-line JSON engine summary\n"
    "models: DMT FIMT-DD VFDT(MC) VFDT(NBA) HT-Ada EFDT ForestEns\n"
    "BaggingEns OzaBag OzaBoost SGT GLM\n";

// Usage errors exit 2 (bad invocation), runtime failures exit 1.
[[noreturn]] void UsageError(const std::string& message) {
  std::fprintf(stderr, "dmt_serve: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

// Accept loop on a unix-domain socket: one client at a time, the engine
// (and all its models) persisting across connections. Each connection is
// bridged through string streams -- request scripts are read to EOF, then
// answered in one write; fine for the local scripted-session use case this
// serves (a full streaming bridge would need non-blocking IO for no
// benefit here).
int RunUnixSocket(dmt::serve::ServeEngine* engine, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("dmt_serve: socket");
    return 1;
  }
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "dmt_serve: socket path too long: %s\n",
                 path.c_str());
    return 1;
  }
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listener, 1) < 0) {
    std::perror("dmt_serve: bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "dmt_serve: listening on %s\n", path.c_str());
  while (true) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) break;
    std::string input;
    char buffer[4096];
    ssize_t n;
    while ((n = ::read(client, buffer, sizeof(buffer))) > 0) {
      input.append(buffer, static_cast<std::size_t>(n));
    }
    std::istringstream in(input);
    std::ostringstream responses;
    std::string line;
    while (std::getline(in, line)) engine->ServeLine(line, responses);
    engine->Finish(responses);
    const std::string& text = responses.str();
    std::size_t written = 0;
    while (written < text.size()) {
      const ssize_t w =
          ::write(client, text.data() + written, text.size() - written);
      if (w <= 0) break;
      written += static_cast<std::size_t>(w);
    }
    ::close(client);
  }
  ::close(listener);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmt;
  std::string model_name = "DMT";
  std::string export_path;
  std::string socket_path;
  serve::ServeConfig config;
  std::uint64_t features = 0;
  std::uint64_t classes = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) UsageError("missing value for " + arg);
      return argv[++i];
    };
    // Strict numeric flags (common/parse.h): trailing garbage, empty
    // strings and non-finite values exit 2, never become a silent 0.
    auto next_u64 = [&]() -> std::uint64_t {
      const std::string value = next();
      const std::optional<std::uint64_t> parsed = ParseU64(value);
      if (!parsed) {
        UsageError("bad numeric value for " + arg + ": '" + value + "'");
      }
      return *parsed;
    };
    if (arg == "--model") model_name = next();
    else if (arg == "--features") features = next_u64();
    else if (arg == "--classes") classes = next_u64();
    else if (arg == "--shards") config.num_shards = next_u64();
    else if (arg == "--seed") config.seed = next_u64();
    else if (arg == "--batch-window") config.batch_window = next_u64();
    else if (arg == "--queue-capacity") config.queue_capacity = next_u64();
    else if (arg == "--export") export_path = next();
    else if (arg == "--export-every") config.export_every = next_u64();
    else if (arg == "--socket") socket_path = next();
    else if (arg == "--bad-input") {
      const std::string value = next();
      try {
        config.bad_input_policy = BadInputPolicyFromString(value);
      } catch (const std::invalid_argument& e) {
        UsageError(std::string("bad --bad-input value: ") + e.what());
      }
    } else if (arg == "--help") {
      std::printf("%s", kUsage);
      return 0;
    } else {
      UsageError("unknown option: " + arg);
    }
  }
  if (features == 0 || classes == 0) {
    UsageError("--features and --classes are required (and must be >= 1)");
  }
  if (classes < 2) UsageError("--classes must be >= 2");
  config.num_features = static_cast<int>(features);
  config.num_classes = static_cast<int>(classes);

  // Validate the model name up front (MakeModel exits 1 on an unknown
  // name, which would otherwise only fire at first request).
  {
    bool known = false;
    for (const char* name :
         {"DMT", "FIMT-DD", "VFDT(MC)", "VFDT(NBA)", "HT-Ada", "EFDT",
          "ForestEns", "BaggingEns", "OzaBag", "OzaBoost", "SGT", "GLM"}) {
      if (model_name == name) known = true;
    }
    if (!known) UsageError("unknown model: " + model_name);
  }
  config.factory = [&](const std::string& /*stream_id*/, std::uint64_t seed) {
    return bench::MakeModel(model_name, config.num_features,
                            config.num_classes, seed);
  };

  std::unique_ptr<serve::JsonlExporter> exporter;
  if (!export_path.empty()) {
    exporter = std::make_unique<serve::JsonlExporter>(export_path);
    if (!exporter->ok()) {
      std::fprintf(stderr, "dmt_serve: cannot open --export %s\n",
                   export_path.c_str());
      return 1;
    }
    config.exporter = exporter.get();
  }

  serve::ServeEngine engine(config);
  if (!socket_path.empty()) return RunUnixSocket(&engine, socket_path);
  engine.RunScript(std::cin, std::cout);
  return 0;
}
