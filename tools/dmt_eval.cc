// dmt_eval: command-line prequential evaluation of any model in this
// library on (a) a CSV file -- e.g. the paper's actual data sets downloaded
// from https://www.openml.org -- or (b) one of the built-in streams.
//
//   dmt_eval --csv electricity.csv --label class --model DMT
//   dmt_eval --dataset SEA --samples 100000 --model "VFDT(NBA)"
//   dmt_eval --csv bank.csv --label y --model DMT --describe
//
// Prints the paper's metrics (prequential F1 mean +- std, splits,
// parameters, time per iteration) and, with --describe, the learned DMT.
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "dmt/common/parse.h"
#include "dmt/common/sanitize.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/eval/prequential.h"
#include "dmt/robust/faulty_stream.h"
#include "dmt/serial/model_io.h"
#include "dmt/streams/csv_stream.h"
#include "dmt/streams/datasets.h"
#include "harness.h"

namespace {

constexpr const char kUsage[] =
    "usage: dmt_eval (--csv FILE [--label COL] | --dataset NAME)\n"
    "       [--model NAME] [--samples N] [--batch N] [--seed S] [--skip N]\n"
    "       [--no-normalize] [--describe] [--bad-input skip|impute|throw]\n"
    "       [--inject nan=R,inf=R,missing=R,flip=R,truncate=R]\n"
    "       [--save-model FILE] [--load-model FILE]\n"
    "models: DMT FIMT-DD VFDT(MC) VFDT(NBA) HT-Ada EFDT ForestEns "
    "BaggingEns SGT GLM\n"
    "snapshots: --save-model writes a binary model archive after the run\n"
    "(atomic rename); --load-model restores one instead of building --model\n"
    "fresh; --skip N discards the first N stream instances so a restored\n"
    "model can resume mid-stream.\n";

// Usage errors exit 2 (bad invocation), runtime failures exit 1.
[[noreturn]] void UsageError(const std::string& message) {
  std::fprintf(stderr, "dmt_eval: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmt;
  std::string csv_path;
  std::string label_column;
  std::string dataset;
  std::string model_name = "DMT";
  std::string inject_spec;
  std::string save_model_path;
  std::string load_model_path;
  std::size_t skip = 0;
  std::size_t samples = 0;
  std::size_t batch_size = 0;
  std::uint64_t seed = 42;
  bool normalize = true;
  bool describe = false;
  BadInputPolicy bad_input_policy = BadInputPolicy::kSkip;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) UsageError("missing value for " + arg);
      return argv[++i];
    };
    // Strict numeric flags: trailing garbage and empty strings are usage
    // errors (exit 2), never a silent 0.
    auto next_u64 = [&]() -> std::uint64_t {
      const std::string value = next();
      const std::optional<std::uint64_t> parsed = dmt::ParseU64(value);
      if (!parsed) {
        UsageError("bad numeric value for " + arg + ": '" + value + "'");
      }
      return *parsed;
    };
    if (arg == "--csv") csv_path = next();
    else if (arg == "--label") label_column = next();
    else if (arg == "--dataset") dataset = next();
    else if (arg == "--model") model_name = next();
    else if (arg == "--samples") samples = next_u64();
    else if (arg == "--batch") batch_size = next_u64();
    else if (arg == "--seed") seed = next_u64();
    else if (arg == "--skip") skip = next_u64();
    else if (arg == "--save-model") save_model_path = next();
    else if (arg == "--load-model") load_model_path = next();
    else if (arg == "--no-normalize") normalize = false;
    else if (arg == "--describe") describe = true;
    else if (arg == "--bad-input") {
      const std::string value = next();
      try {
        bad_input_policy = BadInputPolicyFromString(value);
      } catch (const std::invalid_argument& e) {
        UsageError(std::string("bad --bad-input value: ") + e.what());
      }
    } else if (arg == "--inject") {
      inject_spec = next();
      try {
        robust::FaultSpec::Parse(inject_spec);
      } catch (const std::invalid_argument& e) {
        UsageError(std::string("bad --inject spec: ") + e.what());
      }
    } else if (arg == "--help") {
      std::printf("%s", kUsage);
      return 0;
    } else {
      UsageError("unknown option: " + arg);
    }
  }
  if (csv_path.empty() == dataset.empty()) {
    UsageError("exactly one of --csv / --dataset is required");
  }

  std::unique_ptr<streams::Stream> stream;
  std::size_t expected_samples = samples;
  if (!csv_path.empty()) {
    streams::CsvStreamConfig config;
    config.path = csv_path;
    config.label_column = label_column;
    try {
      stream = std::make_unique<streams::CsvStream>(config);
    } catch (const streams::CsvError& e) {
      std::fprintf(stderr, "dmt_eval: %s\n", e.what());
      return 1;
    }
    if (expected_samples == 0 && batch_size == 0) batch_size = 100;
  } else {
    const streams::DatasetSpec spec = streams::DatasetByName(dataset);
    expected_samples =
        streams::EffectiveSamples(spec, samples == 0 ? 50'000 : samples);
    stream = spec.make(expected_samples, seed);
  }
  robust::FaultyStream* faulty = nullptr;
  if (!inject_spec.empty()) {
    auto wrapped = std::make_unique<robust::FaultyStream>(
        std::move(stream), robust::FaultSpec::Parse(inject_spec),
        DeriveSeed(seed, "inject"));
    faulty = wrapped.get();
    stream = std::move(wrapped);
  }

  // --skip: discard the leading instances so a --load-model run can resume
  // exactly where the snapshotting run left off. Runs after fault wrapping
  // so the skipped prefix consumes the same injection RNG stream.
  for (std::size_t i = 0; i < skip; ++i) {
    Instance discard;
    if (!stream->NextInstance(&discard)) {
      std::fprintf(stderr,
                   "dmt_eval: --skip %zu exhausted the stream after %zu "
                   "instances\n",
                   skip, i);
      return 1;
    }
  }

  std::unique_ptr<Classifier> model;
  if (!load_model_path.empty()) {
    try {
      model = serial::LoadClassifierFromFile(load_model_path);
    } catch (const serial::SerialError& e) {
      std::fprintf(stderr, "dmt_eval: cannot load model: %s\n", e.what());
      return 1;
    }
    if (model->num_classes() !=
        static_cast<int>(stream->num_classes())) {
      std::fprintf(stderr,
                   "dmt_eval: loaded model has %d classes but the stream "
                   "has %zu\n",
                   model->num_classes(), stream->num_classes());
      return 1;
    }
  } else {
    model = bench::MakeModel(model_name,
                             static_cast<int>(stream->num_features()),
                             static_cast<int>(stream->num_classes()), seed);
  }

  eval::PrequentialConfig config;
  config.batch_size = batch_size;
  config.expected_samples = expected_samples;
  config.normalize = normalize;
  config.bad_input_policy = bad_input_policy;
  eval::PrequentialResult result;
  try {
    result = eval::RunPrequential(stream.get(), model.get(), config);
  } catch (const streams::CsvError& e) {
    // Malformed row mid-stream (wrong column count, unseen label).
    std::fprintf(stderr, "dmt_eval: %s\n", e.what());
    return 1;
  } catch (const BadInputError& e) {
    // --bad-input throw: strict ingest rejected a row.
    std::fprintf(stderr, "dmt_eval: %s\n", e.what());
    return 1;
  }

  std::printf("stream      : %s (%zu features, %zu classes, %zu "
              "observations)\n",
              stream->name().c_str(), stream->num_features(),
              stream->num_classes(), result.total_samples);
  std::printf("model       : %s\n", model->name().c_str());
  std::printf("F1          : %.4f +- %.4f\n", result.f1.mean(),
              result.f1.stddev());
  std::printf("accuracy    : %.4f +- %.4f\n", result.accuracy.mean(),
              result.accuracy.stddev());
  std::printf("splits      : %.1f +- %.1f\n", result.num_splits.mean(),
              result.num_splits.stddev());
  std::printf("parameters  : %.0f +- %.0f\n", result.num_params.mean(),
              result.num_params.stddev());
  std::printf("sec/iter    : %.5f +- %.5f (%zu batches)\n",
              result.iteration_seconds.mean(),
              result.iteration_seconds.stddev(), result.num_batches);
  if (result.rows_dropped > 0 || result.values_imputed > 0) {
    std::printf("sanitized   : %llu rows dropped, %llu values imputed "
                "(policy %s)\n",
                static_cast<unsigned long long>(result.rows_dropped),
                static_cast<unsigned long long>(result.values_imputed),
                BadInputPolicyName(bad_input_policy));
  }
  if (faulty != nullptr) {
    const robust::FaultCounts& counts = faulty->counts();
    std::printf("injected    : %llu nan, %llu inf, %llu missing, %llu "
                "flips, truncated=%llu\n",
                static_cast<unsigned long long>(counts.nan),
                static_cast<unsigned long long>(counts.inf),
                static_cast<unsigned long long>(counts.missing),
                static_cast<unsigned long long>(counts.flips),
                static_cast<unsigned long long>(counts.truncated));
  }

  if (!save_model_path.empty()) {
    try {
      serial::SaveClassifierToFile(*model, save_model_path);
    } catch (const serial::SerialError& e) {
      std::fprintf(stderr, "dmt_eval: cannot save model: %s\n", e.what());
      return 1;
    }
    std::printf("model saved : %s\n", save_model_path.c_str());
  }

  if (describe) {
    if (auto* dmt = dynamic_cast<core::DynamicModelTree*>(model.get())) {
      std::printf("\n%s\n", dmt->Describe().c_str());
      std::printf("lifetime: %zu splits, %zu replacements, %zu prunes\n",
                  dmt->num_splits_performed(),
                  dmt->num_subtree_replacements(), dmt->num_prunes());
    } else {
      std::printf("\n(--describe is only available for the DMT)\n");
    }
  }
  return 0;
}
