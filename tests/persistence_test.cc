#include <sstream>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/linear/glm.h"

namespace dmt::core {
namespace {

void FillXor(Rng* rng, Batch* batch, int n) {
  for (int i = 0; i < n; ++i) {
    std::vector<double> x = {rng->Uniform(), rng->Uniform()};
    batch->Add(x, (x[0] > 0.5) != (x[1] > 0.5) ? 1 : 0);
  }
}

TEST(PersistenceTest, RoundTripPreservesStructureAndPredictions) {
  DynamicModelTree tree({.num_features = 2, .num_classes = 2});
  Rng rng(1);
  for (int b = 0; b < 100; ++b) {
    Batch batch(2);
    FillXor(&rng, &batch, 100);
    tree.PartialFit(batch);
  }
  std::stringstream buffer;
  tree.Save(buffer);
  std::unique_ptr<DynamicModelTree> restored =
      DynamicModelTree::Load(buffer);

  EXPECT_EQ(restored->NumInnerNodes(), tree.NumInnerNodes());
  EXPECT_EQ(restored->NumLeaves(), tree.NumLeaves());
  EXPECT_EQ(restored->time_step(), tree.time_step());
  EXPECT_EQ(restored->num_splits_performed(), tree.num_splits_performed());
  Rng probe(2);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x = {probe.Uniform(), probe.Uniform()};
    ASSERT_EQ(restored->Predict(x), tree.Predict(x));
    const std::vector<double> pa = tree.PredictProba(x);
    const std::vector<double> pb = restored->PredictProba(x);
    ASSERT_DOUBLE_EQ(pa[1], pb[1]);
  }
}

TEST(PersistenceTest, RestoredTreeContinuesTrainingIdentically) {
  DynamicModelTree tree({.num_features = 2, .num_classes = 2, .seed = 7});
  Rng rng(3);
  for (int b = 0; b < 50; ++b) {
    Batch batch(2);
    FillXor(&rng, &batch, 100);
    tree.PartialFit(batch);
  }
  std::stringstream buffer;
  tree.Save(buffer);
  std::unique_ptr<DynamicModelTree> restored =
      DynamicModelTree::Load(buffer);

  // Train both on the same continuation stream: everything (including RNG
  // state for warm-started child initialization) must stay in lockstep.
  for (int b = 0; b < 80; ++b) {
    Batch batch(2);
    FillXor(&rng, &batch, 100);
    Batch copy = batch;
    tree.PartialFit(batch);
    restored->PartialFit(copy);
  }
  EXPECT_EQ(restored->NumInnerNodes(), tree.NumInnerNodes());
  EXPECT_EQ(restored->num_splits_performed(), tree.num_splits_performed());
  Rng probe(4);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> x = {probe.Uniform(), probe.Uniform()};
    ASSERT_EQ(restored->Predict(x), tree.Predict(x));
  }
}

TEST(PersistenceTest, MulticlassRoundTrip) {
  DynamicModelTree tree({.num_features = 3, .num_classes = 4});
  Rng rng(5);
  Batch batch(3);
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    batch.Add(x, static_cast<int>(x[0] * 3.999));
  }
  tree.PartialFit(batch);
  std::stringstream buffer;
  tree.Save(buffer);
  std::unique_ptr<DynamicModelTree> restored =
      DynamicModelTree::Load(buffer);
  std::vector<double> x = {0.2, 0.5, 0.9};
  EXPECT_EQ(restored->Predict(x), tree.Predict(x));
  EXPECT_EQ(restored->NumParameters(), tree.NumParameters());
}

TEST(GlmScheduleTest, InverseSqrtDecaysLearningRate) {
  linear::Glm model({.num_features = 2,
                     .num_classes = 2,
                     .learning_rate = 0.1,
                     .schedule = linear::LearningRateSchedule::kInverseSqrt});
  EXPECT_DOUBLE_EQ(model.CurrentLearningRate(), 0.1);
  Rng rng(6);
  Batch batch(2);
  for (int i = 0; i < 3000; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform()};
    batch.Add(x, x[0] > 0.5 ? 1 : 0);
  }
  model.Fit(batch);
  EXPECT_LT(model.CurrentLearningRate(), 0.06);
  EXPECT_GT(model.CurrentLearningRate(), 0.0);
}

TEST(GlmL1Test, SparsifiesIrrelevantFeatures) {
  // Feature 0 drives the label; features 1..4 are noise. With L1 the noise
  // weights should be driven to exactly zero.
  linear::Glm plain({.num_features = 5, .num_classes = 2,
                     .learning_rate = 0.1, .seed = 9});
  linear::Glm sparse({.num_features = 5, .num_classes = 2,
                      .learning_rate = 0.1, .l1_penalty = 0.5, .seed = 9});
  Rng rng(7);
  for (int epoch = 0; epoch < 50; ++epoch) {
    Batch batch(5);
    for (int i = 0; i < 200; ++i) {
      std::vector<double> x(5);
      for (double& v : x) v = rng.Uniform();
      batch.Add(x, x[0] > 0.5 ? 1 : 0);
    }
    plain.Fit(batch);
    sparse.Fit(batch);
  }
  EXPECT_GT(sparse.Sparsity(), plain.Sparsity());
  EXPECT_GE(sparse.Sparsity(), 0.4);  // at least 2 of 5 weights exactly 0
  // The informative weight must survive.
  EXPECT_GT(std::abs(sparse.params()[0]), 0.5);
}

}  // namespace
}  // namespace dmt::core
