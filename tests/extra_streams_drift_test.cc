#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/drift/eddm.h"
#include "dmt/drift/kswin.h"
#include "dmt/streams/classic_generators.h"
#include "dmt/trees/vfdt.h"

namespace dmt {
namespace {

TEST(EddmTest, StableOnConstantErrorRate) {
  drift::Eddm eddm;
  Rng rng(1);
  std::size_t drifts = 0;
  for (int i = 0; i < 20'000; ++i) {
    drifts += eddm.Update(rng.Bernoulli(0.1)) == drift::Eddm::State::kDrift;
  }
  EXPECT_LE(drifts, 5u);  // EDDM is alarm-prone by design; a few per 20k is normal
}

TEST(EddmTest, DetectsShrinkingErrorDistances) {
  drift::Eddm eddm;
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) eddm.Update(rng.Bernoulli(0.02));
  bool drift = false;
  for (int i = 0; i < 5000; ++i) {
    drift |= eddm.Update(rng.Bernoulli(0.4)) == drift::Eddm::State::kDrift;
  }
  EXPECT_TRUE(drift);
}

TEST(KswinTest, NoFalseAlarmOnStationaryStream) {
  drift::Kswin kswin({.alpha = 0.0001});
  Rng rng(3);
  std::size_t alarms = 0;
  for (int i = 0; i < 10'000; ++i) alarms += kswin.Update(rng.Uniform());
  EXPECT_LE(alarms, 3u);
}

TEST(KswinTest, DetectsDistributionShift) {
  drift::Kswin kswin;
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) kswin.Update(rng.Gaussian(0.0, 1.0));
  bool detected = false;
  for (int i = 0; i < 500; ++i) {
    detected |= kswin.Update(rng.Gaussian(3.0, 1.0));
  }
  EXPECT_TRUE(detected);
}

TEST(KswinTest, WindowResetsAfterDetection) {
  drift::Kswin kswin;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) kswin.Update(rng.Gaussian(0.0, 0.1));
  bool detected = false;
  int i = 0;
  for (; i < 500 && !detected; ++i) {
    detected = kswin.Update(rng.Gaussian(5.0, 0.1));
  }
  ASSERT_TRUE(detected);
  EXPECT_LT(kswin.window_fill(), 100u);
}

TEST(RandomRbfTest, EmitsAllClassesWithinUnitCubeNeighborhood) {
  streams::RandomRbfConfig config;
  config.num_classes = 4;
  config.total_samples = 5000;
  streams::RandomRbfGenerator gen(config);
  Instance instance;
  std::set<int> labels;
  while (gen.NextInstance(&instance)) {
    ASSERT_EQ(instance.x.size(), 10u);
    labels.insert(instance.y);
  }
  EXPECT_EQ(labels.size(), 4u);
}

TEST(RandomRbfTest, StationaryBlobsAreLearnable) {
  streams::RandomRbfConfig config;
  config.num_features = 5;
  config.num_classes = 3;
  config.num_centroids = 6;
  config.drift_speed = 0.0;
  config.total_samples = 30'000;
  streams::RandomRbfGenerator gen(config);
  trees::Vfdt tree({.num_features = 5, .num_classes = 3});
  Batch batch(5);
  gen.FillBatch(25'000, &batch);
  tree.PartialFit(batch);
  Batch test(5);
  gen.FillBatch(5000, &test);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += tree.Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(static_cast<double>(correct) / test.size(), 0.8);
}

TEST(StaggerTest, RulesMatchDefinitions) {
  // Rule 0: small AND red.
  EXPECT_EQ(streams::StaggerGenerator::Classify(0, 0, 0, 2), 1);
  EXPECT_EQ(streams::StaggerGenerator::Classify(0, 0, 1, 2), 0);
  // Rule 1: green OR circle.
  EXPECT_EQ(streams::StaggerGenerator::Classify(1, 2, 1, 2), 1);
  EXPECT_EQ(streams::StaggerGenerator::Classify(1, 2, 0, 0), 1);
  EXPECT_EQ(streams::StaggerGenerator::Classify(1, 2, 0, 1), 0);
  // Rule 2: medium OR large.
  EXPECT_EQ(streams::StaggerGenerator::Classify(2, 1, 0, 0), 1);
  EXPECT_EQ(streams::StaggerGenerator::Classify(2, 0, 0, 0), 0);
}

TEST(StaggerTest, DriftCyclesRules) {
  streams::StaggerConfig config;
  config.total_samples = 300;
  config.drift_points = {100, 200};
  streams::StaggerGenerator gen(config);
  Instance instance;
  for (int i = 0; i < 100; ++i) gen.NextInstance(&instance);
  EXPECT_EQ(gen.active_rule(), 0);
  gen.NextInstance(&instance);
  EXPECT_EQ(gen.active_rule(), 1);
  for (int i = 0; i < 100; ++i) gen.NextInstance(&instance);
  EXPECT_EQ(gen.active_rule(), 2);
}

TEST(LedTest, NoiselessSegmentsMatchDigitPatterns) {
  streams::LedConfig config;
  config.noise = 0.0;
  config.num_irrelevant = 0;
  config.total_samples = 200;
  streams::LedGenerator gen(config);
  Instance instance;
  while (gen.NextInstance(&instance)) {
    ASSERT_EQ(instance.x.size(), 7u);
    // Digit 8 lights all segments; digit 1 exactly two.
    if (instance.y == 8) {
      for (double s : instance.x) ASSERT_EQ(s, 1.0);
    }
    if (instance.y == 1) {
      double lit = 0.0;
      for (double s : instance.x) lit += s;
      ASSERT_EQ(lit, 2.0);
    }
  }
}

TEST(LedTest, IrrelevantAttributesAppended) {
  streams::LedConfig config;
  config.num_irrelevant = 17;
  config.total_samples = 10;
  streams::LedGenerator gen(config);
  EXPECT_EQ(gen.num_features(), 24u);
  EXPECT_EQ(gen.num_classes(), 10u);
}

TEST(DmtOnClassicGeneratorsTest, RunsOnEachGenerator) {
  // End-to-end smoke across the extra generators.
  streams::RandomRbfConfig rbf;
  rbf.total_samples = 2000;
  streams::RandomRbfGenerator rbf_gen(rbf);
  streams::StaggerConfig stagger;
  stagger.total_samples = 2000;
  streams::StaggerGenerator stagger_gen(stagger);
  streams::LedConfig led;
  led.total_samples = 2000;
  streams::LedGenerator led_gen(led);

  std::vector<streams::Stream*> generators = {&rbf_gen, &stagger_gen,
                                              &led_gen};
  for (streams::Stream* gen : generators) {
    core::DynamicModelTree tree(
        {.num_features = static_cast<int>(gen->num_features()),
         .num_classes = static_cast<int>(gen->num_classes())});
    Batch batch(gen->num_features());
    while (gen->FillBatch(100, &batch) > 0) {
      tree.PartialFit(batch);
      batch.clear();
    }
    EXPECT_GE(tree.NumLeaves(), 1u) << gen->name();
  }
}

}  // namespace
}  // namespace dmt
