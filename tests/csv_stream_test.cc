#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "dmt/streams/csv_stream.h"

namespace dmt::streams {
namespace {

class CsvStreamTest : public ::testing::Test {
 protected:
  void WriteFile(const std::string& content) {
    path_ = ::testing::TempDir() + "csv_stream_test.csv";
    std::ofstream out(path_);
    out << content;
  }
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(CsvStreamTest, ReadsNumericRowsWithHeader) {
  WriteFile("a,b,label\n1.5,2.5,0\n3.0,4.0,1\n");
  CsvStream stream({.path = path_, .label_column = "label"});
  EXPECT_EQ(stream.num_features(), 2u);
  EXPECT_EQ(stream.num_classes(), 2u);
  Instance instance;
  ASSERT_TRUE(stream.NextInstance(&instance));
  EXPECT_DOUBLE_EQ(instance.x[0], 1.5);
  EXPECT_DOUBLE_EQ(instance.x[1], 2.5);
  EXPECT_EQ(instance.y, 0);
  ASSERT_TRUE(stream.NextInstance(&instance));
  EXPECT_EQ(instance.y, 1);
  EXPECT_FALSE(stream.NextInstance(&instance));
}

TEST_F(CsvStreamTest, LabelColumnInMiddle) {
  WriteFile("a,label,b\n1,x,2\n3,y,4\n5,x,6\n");
  CsvStream stream({.path = path_, .label_column = "label"});
  EXPECT_EQ(stream.num_features(), 2u);
  Instance instance;
  ASSERT_TRUE(stream.NextInstance(&instance));
  EXPECT_DOUBLE_EQ(instance.x[0], 1.0);
  EXPECT_DOUBLE_EQ(instance.x[1], 2.0);
  EXPECT_EQ(instance.y, 0);  // "x" first seen
  ASSERT_TRUE(stream.NextInstance(&instance));
  EXPECT_EQ(instance.y, 1);  // "y"
}

TEST_F(CsvStreamTest, FactorizesStringFeatures) {
  WriteFile("color,label\nred,0\ngreen,1\nred,0\nblue,1\n");
  CsvStream stream({.path = path_, .label_column = "label"});
  Instance instance;
  stream.NextInstance(&instance);
  EXPECT_DOUBLE_EQ(instance.x[0], 0.0);  // red
  stream.NextInstance(&instance);
  EXPECT_DOUBLE_EQ(instance.x[0], 1.0);  // green
  stream.NextInstance(&instance);
  EXPECT_DOUBLE_EQ(instance.x[0], 0.0);  // red again
  stream.NextInstance(&instance);
  EXPECT_DOUBLE_EQ(instance.x[0], 2.0);  // blue
}

TEST_F(CsvStreamTest, StringLabelsAreFactorized) {
  WriteFile("a,class\n1,neg\n2,pos\n3,neg\n");
  CsvStream stream({.path = path_, .label_column = "class"});
  const std::vector<std::string> names = stream.class_names();
  ASSERT_EQ(names.size(), 2u);
  Instance instance;
  stream.NextInstance(&instance);
  // Classes are enumerated by scan order of first appearance... the scan
  // uses a sorted map keyed by string; the index mapping must round-trip.
  stream.NextInstance(&instance);
  EXPECT_EQ(names[instance.y], "pos");
}

TEST_F(CsvStreamTest, DefaultLabelIsLastColumn) {
  WriteFile("a,b,c\n1,2,0\n3,4,1\n");
  CsvStream stream({.path = path_});
  EXPECT_EQ(stream.num_features(), 2u);
  EXPECT_EQ(stream.feature_names()[0], "a");
  EXPECT_EQ(stream.feature_names()[1], "b");
}

TEST_F(CsvStreamTest, SkipsEmptyLines) {
  WriteFile("a,label\n1,0\n\n2,1\n\n");
  CsvStream stream({.path = path_});
  Instance instance;
  int count = 0;
  while (stream.NextInstance(&instance)) ++count;
  EXPECT_EQ(count, 2);
}

TEST_F(CsvStreamTest, HandlesQuotedCellsAndWhitespace) {
  WriteFile("a,label\n \"1.5\" ,\"0\"\n2.5, 1 \n");
  CsvStream stream({.path = path_});
  Instance instance;
  ASSERT_TRUE(stream.NextInstance(&instance));
  EXPECT_DOUBLE_EQ(instance.x[0], 1.5);
}

// Regression: SplitLine used to drop a trailing empty field ("3,1," parsed
// as 2 cells), so a row with a missing last value died with a bogus
// "inconsistent column count" instead of parsing.
TEST_F(CsvStreamTest, KeepsTrailingEmptyField) {
  WriteFile("a,label,b\n1,0,2\n3,1,\n");
  CsvStream stream({.path = path_, .label_column = "label"});
  Instance instance;
  ASSERT_TRUE(stream.NextInstance(&instance));
  EXPECT_DOUBLE_EQ(instance.x[1], 2.0);
  ASSERT_TRUE(stream.NextInstance(&instance));
  // The empty cell is kept and factorized like any categorical string.
  EXPECT_DOUBLE_EQ(instance.x[1], 0.0);
  EXPECT_EQ(instance.y, 1);
  EXPECT_FALSE(stream.NextInstance(&instance));
}

// Regression: malformed input used to std::abort the whole process; it must
// throw CsvError so a sweep can fail one cell and move on.
TEST_F(CsvStreamTest, ThrowsCsvErrorOnInconsistentColumns) {
  WriteFile("a,b,label\n1,2,0\n3,4,1\n5,6\n");
  EXPECT_THROW(CsvStream({.path = path_, .label_column = "label"}), CsvError);
}

TEST_F(CsvStreamTest, ThrowsCsvErrorOnUnseenLabel) {
  WriteFile("a,label\n1,x\n2,y\n3,z\n");
  // With num_classes preset the upfront class scan is skipped, so the
  // third label overflows the class table mid-stream.
  CsvStream stream({.path = path_, .num_classes = 2});
  Instance instance;
  ASSERT_TRUE(stream.NextInstance(&instance));
  ASSERT_TRUE(stream.NextInstance(&instance));
  EXPECT_THROW(stream.NextInstance(&instance), CsvError);
}

TEST_F(CsvStreamTest, CsvErrorMessageNamesFileAndLine) {
  WriteFile("a,label\n1,0\n2,1\nbroken\n");
  try {
    CsvStream stream({.path = path_});
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_NE(std::string(e.what()).find(path_), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(":4"), std::string::npos);
  }
}

TEST_F(CsvStreamTest, NoHeaderMode) {
  WriteFile("1,2,0\n3,4,1\n");
  CsvStream stream({.path = path_, .has_header = false});
  EXPECT_EQ(stream.num_features(), 2u);
  Instance instance;
  int count = 0;
  while (stream.NextInstance(&instance)) ++count;
  EXPECT_EQ(count, 2);
}

// ---- Robustness suite (DESIGN.md Sec. 8): malformed input must always
// ---- surface as CsvError, never as a crash or a silently-wrong value.

// An embedded NUL would make strtod stop early ("1.5\0junk" -> 1.5), so it
// is rejected outright rather than half-parsed.
TEST_F(CsvStreamTest, ThrowsCsvErrorOnEmbeddedNul) {
  WriteFile(std::string("a,label\n1,0\n2,1\n3") + '\0' + "junk,0\n");
  // With the class count preset the constructor's scan pass is skipped and
  // the NUL is hit mid-stream.
  CsvStream stream({.path = path_, .num_classes = 2});
  Instance instance;
  ASSERT_TRUE(stream.NextInstance(&instance));
  ASSERT_TRUE(stream.NextInstance(&instance));
  EXPECT_THROW(stream.NextInstance(&instance), CsvError);
}

TEST_F(CsvStreamTest, ConstructorScanRejectsEmbeddedNul) {
  WriteFile(std::string("a,label\n1,0\n2") + '\0' + ",1\n");
  EXPECT_THROW(CsvStream({.path = path_}), CsvError);
}

TEST_F(CsvStreamTest, ThrowsCsvErrorOnOversizedLine) {
  // 2 MiB of digits in one field: past the 1 MiB line cap.
  const std::string huge(2 * 1024 * 1024, '7');
  WriteFile("a,label\n1,0\n2,1\n" + huge + ",0\n");
  CsvStream stream({.path = path_, .num_classes = 2});
  Instance instance;
  ASSERT_TRUE(stream.NextInstance(&instance));
  ASSERT_TRUE(stream.NextInstance(&instance));
  EXPECT_THROW(stream.NextInstance(&instance), CsvError);
}

// A file that ends mid-row (no trailing newline, missing columns) must
// throw, not feed a short row into the models.
TEST_F(CsvStreamTest, ThrowsCsvErrorOnMidRowEof) {
  WriteFile("a,b,label\n1,2,0\n3,4,1\n5,6");  // EOF inside the last row
  CsvStream stream({.path = path_, .num_classes = 2});
  Instance instance;
  ASSERT_TRUE(stream.NextInstance(&instance));
  ASSERT_TRUE(stream.NextInstance(&instance));
  EXPECT_THROW(stream.NextInstance(&instance), CsvError);
}

// After a caught error the stream position is consistent: the bad line is
// consumed, so a catch-and-continue caller resumes at the next good row.
TEST_F(CsvStreamTest, PositionConsistentAfterCaughtError) {
  WriteFile("a,label\n1,0\nbroken_row_with,too,many,cells\n4,1\n5,0\n");
  CsvStream stream({.path = path_, .num_classes = 2});
  Instance instance;
  ASSERT_TRUE(stream.NextInstance(&instance));
  EXPECT_DOUBLE_EQ(instance.x[0], 1.0);
  EXPECT_THROW(stream.NextInstance(&instance), CsvError);
  // The next call must yield row 4, not re-throw on the same bad line.
  ASSERT_TRUE(stream.NextInstance(&instance));
  EXPECT_DOUBLE_EQ(instance.x[0], 4.0);
  ASSERT_TRUE(stream.NextInstance(&instance));
  EXPECT_DOUBLE_EQ(instance.x[0], 5.0);
  EXPECT_FALSE(stream.NextInstance(&instance));
}

}  // namespace
}  // namespace dmt::streams
