#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/common/types.h"
#include "dmt/core/candidate.h"
#include "dmt/core/dynamic_model_tree.h"

namespace dmt::core {
namespace {

// XOR-style concept: a single GLM cannot represent it, but one split on
// either feature makes each side linearly separable. This is the concept
// class that separates Model Trees from plain linear models (paper Fig. 1).
void FillXor(Rng* rng, Batch* batch, int n, bool flipped = false) {
  for (int i = 0; i < n; ++i) {
    std::vector<double> x = {rng->Uniform(), rng->Uniform()};
    int y = (x[0] > 0.5) != (x[1] > 0.5) ? 1 : 0;
    if (flipped) y = 1 - y;
    batch->Add(x, y);
  }
}

// Linearly separable concept: a DMT should solve it with its root model
// alone (shallow tree, paper Fig. 1).
void FillLinear(Rng* rng, Batch* batch, int n) {
  for (int i = 0; i < n; ++i) {
    std::vector<double> x = {rng->Uniform(), rng->Uniform()};
    batch->Add(x, x[0] + x[1] > 1.0 ? 1 : 0);
  }
}

double Accuracy(const DynamicModelTree& tree, const Batch& batch) {
  int correct = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    correct += tree.Predict(batch.row(i)) == batch.label(i);
  }
  return static_cast<double>(correct) / static_cast<double>(batch.size());
}

TEST(CandidateTest, ApproxLossSubtractsGradientTerm) {
  std::vector<double> grad = {3.0, 4.0};  // ||grad||^2 = 25
  EXPECT_DOUBLE_EQ(ApproxCandidateLoss(10.0, grad, 5.0, 0.1),
                   10.0 - 0.1 / 5.0 * 25.0);
  EXPECT_DOUBLE_EQ(ApproxCandidateLoss(10.0, grad, 0.0, 0.1), 0.0);
}

TEST(CandidateTest, ComplementLossUsesDifferenceStatistics) {
  CandidateStats left(0, 0.5, 2);
  left.loss = 4.0;
  left.grad = {1.0, 2.0};
  left.count = 2.0;
  std::vector<double> parent_grad = {3.0, 2.0};
  // Right: loss 10-4=6, grad (2,0) -> norm 4, count 3.
  EXPECT_DOUBLE_EQ(
      ApproxComplementLoss(10.0, parent_grad, 5.0, left, 0.3),
      6.0 - 0.3 / 3.0 * 4.0);
}

TEST(DmtTest, StartsAsSingleModelLeaf) {
  DynamicModelTree tree({.num_features = 3, .num_classes = 2});
  EXPECT_EQ(tree.NumInnerNodes(), 0u);
  EXPECT_EQ(tree.NumLeaves(), 1u);
  EXPECT_EQ(tree.NumSplits(), 1u);      // one binary model leaf
  EXPECT_EQ(tree.NumParameters(), 3u);  // m weights
}

TEST(DmtTest, ThresholdsFollowAicDerivation) {
  DynamicModelTree tree(
      {.num_features = 4, .num_classes = 2, .epsilon = 1e-8});
  const double k = 5.0;  // binary logit: m + 1
  EXPECT_NEAR(tree.SplitThreshold(), k - std::log(1e-8), 1e-9);
  // Structural reductions: the parameter delta is clamped at zero (the
  // paper requires threshold >= 0 for the gains (4)-(5), Sec. V-C), so both
  // reduce to the -log(eps) confidence margin.
  EXPECT_NEAR(tree.ReplaceThreshold(2), -std::log(1e-8), 1e-9);
  EXPECT_NEAR(tree.PruneThreshold(3), -std::log(1e-8), 1e-9);
  EXPECT_GE(tree.PruneThreshold(100), 0.0);
  // Multinomial: k = c * (m + 1).
  DynamicModelTree multi(
      {.num_features = 4, .num_classes = 3, .epsilon = 1e-8});
  EXPECT_NEAR(multi.SplitThreshold(), 15.0 - std::log(1e-8), 1e-9);
}

TEST(DmtTest, StaysShallowOnLinearlySeparableConcept) {
  DynamicModelTree tree({.num_features = 2, .num_classes = 2});
  Rng rng(1);
  for (int b = 0; b < 100; ++b) {
    Batch batch(2);
    FillLinear(&rng, &batch, 100);
    tree.PartialFit(batch);
  }
  Batch test(2);
  FillLinear(&rng, &test, 2000);
  EXPECT_GT(Accuracy(tree, test), 0.93);
  // Model Trees represent linear concepts with (almost) no splits.
  EXPECT_LE(tree.NumInnerNodes(), 2u);
}

TEST(DmtTest, SplitsToSolveXor) {
  DynamicModelTree tree({.num_features = 2, .num_classes = 2});
  Rng rng(2);
  for (int b = 0; b < 150; ++b) {
    Batch batch(2);
    FillXor(&rng, &batch, 100);
    tree.PartialFit(batch);
  }
  EXPECT_GE(tree.NumInnerNodes(), 1u);
  Batch test(2);
  FillXor(&rng, &test, 2000);
  EXPECT_GT(Accuracy(tree, test), 0.85);
  EXPECT_GE(tree.num_splits_performed(), 1u);
}

TEST(DmtTest, EverySplitEventClearsItsThreshold) {
  // Lemma 1 (relaxed by the AIC threshold, Sec. V-C): every structural
  // change must have realized at least its gain threshold.
  DynamicModelTree tree({.num_features = 2, .num_classes = 2});
  Rng rng(3);
  for (int b = 0; b < 150; ++b) {
    Batch batch(2);
    FillXor(&rng, &batch, 100);
    tree.PartialFit(batch);
  }
  ASSERT_FALSE(tree.events().empty());
  for (const StructuralEvent& event : tree.events()) {
    EXPECT_GE(event.gain, event.threshold);
  }
}

TEST(DmtTest, AdaptsToAbruptDrift) {
  DynamicModelTree tree({.num_features = 2, .num_classes = 2});
  Rng rng(4);
  for (int b = 0; b < 100; ++b) {
    Batch batch(2);
    FillXor(&rng, &batch, 100);
    tree.PartialFit(batch);
  }
  Batch pre_test(2);
  FillXor(&rng, &pre_test, 1000);
  ASSERT_GT(Accuracy(tree, pre_test), 0.8);

  // Abrupt real concept drift: labels flip.
  for (int b = 0; b < 150; ++b) {
    Batch batch(2);
    FillXor(&rng, &batch, 100, /*flipped=*/true);
    tree.PartialFit(batch);
  }
  Batch post_test(2);
  FillXor(&rng, &post_test, 1000, /*flipped=*/true);
  EXPECT_GT(Accuracy(tree, post_test), 0.8);
}

TEST(DmtTest, MinimalityKeepsTreeSmallUnderNoise) {
  // Pure label noise admits no useful split; model minimality should keep
  // the tree at (or very near) a single leaf.
  DynamicModelTree tree({.num_features = 3, .num_classes = 2});
  Rng rng(5);
  for (int b = 0; b < 100; ++b) {
    Batch batch(3);
    for (int i = 0; i < 100; ++i) {
      std::vector<double> x = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
      batch.Add(x, rng.Bernoulli(0.5) ? 1 : 0);
    }
    tree.PartialFit(batch);
  }
  EXPECT_LE(tree.NumInnerNodes(), 2u);
}

TEST(DmtTest, CandidateStoreStaysBounded) {
  DynamicModelTree tree(
      {.num_features = 5, .num_classes = 2, .max_candidates = 15});
  Rng rng(6);
  for (int b = 0; b < 50; ++b) {
    Batch batch(5);
    for (int i = 0; i < 200; ++i) {
      std::vector<double> x(5);
      for (double& v : x) v = rng.Uniform();
      batch.Add(x, x[0] > 0.5 ? 1 : 0);
    }
    tree.PartialFit(batch);
  }
  // No direct accessor for internal candidates by design; the bound shows
  // up as bounded memory and, indirectly, bounded parameters: the tree must
  // not blow up.
  EXPECT_LE(tree.NumInnerNodes(), 20u);
}

TEST(DmtTest, MulticlassXorVariant) {
  DynamicModelTree tree({.num_features = 2, .num_classes = 3});
  Rng rng(7);
  auto fill = [&](Batch* batch, int n) {
    for (int i = 0; i < n; ++i) {
      std::vector<double> x = {rng.Uniform(), rng.Uniform()};
      int y;
      if (x[0] <= 0.5) {
        y = x[1] <= 0.5 ? 0 : 1;
      } else {
        y = x[1] <= 0.5 ? 1 : 2;
      }
      batch->Add(x, y);
    }
  };
  for (int b = 0; b < 200; ++b) {
    Batch batch(2);
    fill(&batch, 100);
    tree.PartialFit(batch);
  }
  Batch test(2);
  fill(&test, 1500);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += tree.Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(static_cast<double>(correct) / 1500.0, 0.75);
}

TEST(DmtTest, DeterministicUnderFixedSeed) {
  DmtConfig config{.num_features = 2, .num_classes = 2, .seed = 9};
  DynamicModelTree a(config);
  DynamicModelTree b(config);
  Rng rng(8);
  for (int s = 0; s < 30; ++s) {
    Batch batch(2);
    FillXor(&rng, &batch, 100);
    a.PartialFit(batch);
    b.PartialFit(batch);
  }
  EXPECT_EQ(a.NumInnerNodes(), b.NumInnerNodes());
  Rng probe(99);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> x = {probe.Uniform(), probe.Uniform()};
    EXPECT_EQ(a.Predict(x), b.Predict(x));
  }
}

TEST(DmtTest, LeafFeatureWeightsExposeLocalExplanations) {
  DynamicModelTree tree({.num_features = 2, .num_classes = 2});
  Rng rng(10);
  for (int b = 0; b < 60; ++b) {
    Batch batch(2);
    FillLinear(&rng, &batch, 100);
    tree.PartialFit(batch);
  }
  std::vector<double> x = {0.8, 0.9};
  const std::vector<double> weights = tree.LeafFeatureWeights(x, 1);
  ASSERT_EQ(weights.size(), 2u);
  // Both features push toward class 1 for the learned x0+x1>1 concept.
  EXPECT_GT(weights[0], 0.0);
  EXPECT_GT(weights[1], 0.0);
}

TEST(DmtTest, DescribeRendersTree) {
  DynamicModelTree tree({.num_features = 2, .num_classes = 2});
  Rng rng(11);
  for (int b = 0; b < 150; ++b) {
    Batch batch(2);
    FillXor(&rng, &batch, 100);
    tree.PartialFit(batch);
  }
  const std::string description = tree.Describe();
  EXPECT_NE(description.find("leaf"), std::string::npos);
  if (tree.NumInnerNodes() > 0) {
    EXPECT_NE(description.find("if x["), std::string::npos);
  }
}

TEST(DmtTest, EventsCarryInterpretableMetadata) {
  DynamicModelTree tree({.num_features = 2, .num_classes = 2});
  Rng rng(12);
  for (int b = 0; b < 150; ++b) {
    Batch batch(2);
    FillXor(&rng, &batch, 100);
    tree.PartialFit(batch);
  }
  ASSERT_FALSE(tree.events().empty());
  const StructuralEvent& first = tree.events().front();
  EXPECT_EQ(first.kind, StructuralEvent::Kind::kSplit);
  EXPECT_GE(first.feature, 0);
  EXPECT_LT(first.feature, 2);
  EXPECT_GT(first.time_step, 0u);
  EXPECT_LE(first.time_step, tree.time_step());
}

TEST(DmtTest, InstanceIncrementalModeWorks) {
  // Batch size one (instance-incremental learning, Sec. V-D).
  DynamicModelTree tree({.num_features = 2, .num_classes = 2});
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    Batch batch(2);
    FillLinear(&rng, &batch, 1);
    tree.PartialFit(batch);
  }
  Batch test(2);
  FillLinear(&rng, &test, 1000);
  EXPECT_GT(Accuracy(tree, test), 0.9);
}

// Property sweep: the split threshold is monotone in epsilon -- smaller
// epsilon means more conservative splitting.
class DmtEpsilonTest : public ::testing::TestWithParam<double> {};

TEST_P(DmtEpsilonTest, ThresholdMonotoneInEpsilon) {
  const double epsilon = GetParam();
  DynamicModelTree loose(
      {.num_features = 3, .num_classes = 2, .epsilon = epsilon});
  DynamicModelTree strict(
      {.num_features = 3, .num_classes = 2, .epsilon = epsilon / 100.0});
  EXPECT_LT(loose.SplitThreshold(), strict.SplitThreshold());
}

INSTANTIATE_TEST_SUITE_P(Epsilons, DmtEpsilonTest,
                         ::testing::Values(1e-2, 1e-4, 1e-8));

// Property sweep: DMT solves XOR across seeds (robustness of the
// gradient-based split finding).
class DmtSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(DmtSeedTest, SolvesXorAcrossSeeds) {
  DynamicModelTree tree({.num_features = 2,
                         .num_classes = 2,
                         .seed = static_cast<std::uint64_t>(GetParam())});
  Rng rng(GetParam() + 100);
  for (int b = 0; b < 150; ++b) {
    Batch batch(2);
    FillXor(&rng, &batch, 100);
    tree.PartialFit(batch);
  }
  Batch test(2);
  FillXor(&rng, &test, 1000);
  EXPECT_GT(Accuracy(tree, test), 0.8) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmtSeedTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dmt::core
