#include <memory>

#include <gtest/gtest.h>

#include "dmt/core/dynamic_model_tree.h"
#include "dmt/eval/metrics.h"
#include "dmt/eval/prequential.h"
#include "dmt/linear/glm_classifier.h"
#include "dmt/streams/sea.h"
#include "dmt/trees/vfdt.h"

namespace dmt::eval {
namespace {

TEST(ConfusionMatrixTest, AccuracyAndCounts) {
  ConfusionMatrix cm(2);
  cm.Add(1, 1);
  cm.Add(1, 1);
  cm.Add(0, 1);
  cm.Add(0, 0);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.75);
  EXPECT_EQ(cm.count(1, 1), 2u);
  EXPECT_EQ(cm.count(0, 1), 1u);
}

TEST(ConfusionMatrixTest, F1MatchesHandComputation) {
  // pred=1: TP=2 FP=1 -> precision 2/3; actual=1: TP=2 FN=1 -> recall 2/3.
  ConfusionMatrix cm(2);
  cm.Add(1, 1);
  cm.Add(1, 1);
  cm.Add(1, 0);
  cm.Add(0, 1);
  cm.Add(0, 0);
  EXPECT_NEAR(cm.Precision(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.Recall(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.F1(1), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrixTest, MacroF1SkipsAbsentClasses) {
  ConfusionMatrix cm(3);
  cm.Add(0, 0);
  cm.Add(1, 1);
  // Class 2 never occurs; macro-F1 averages over classes 0 and 1 only.
  EXPECT_DOUBLE_EQ(cm.MacroF1(), 1.0);
}

TEST(ConfusionMatrixTest, PerfectPredictorScoresOne) {
  ConfusionMatrix cm(4);
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 5; ++i) cm.Add(c, c);
  }
  EXPECT_DOUBLE_EQ(cm.MacroF1(), 1.0);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 1.0);
}

TEST(ConfusionMatrixTest, ZeroWhenAlwaysWrong) {
  ConfusionMatrix cm(2);
  cm.Add(0, 1);
  cm.Add(1, 0);
  EXPECT_DOUBLE_EQ(cm.MacroF1(), 0.0);
}

TEST(PrequentialTest, BatchSizeDerivedFromExpectedSamples) {
  streams::SeaConfig sea;
  sea.total_samples = 10'000;
  sea.drift_points = {};
  streams::SeaGenerator stream(sea);
  linear::GlmClassifier model({.num_features = 3, .num_classes = 2});
  PrequentialConfig config;
  config.expected_samples = 10'000;  // -> batch size 10 (0.1%)
  const PrequentialResult result = RunPrequential(&stream, &model, config);
  EXPECT_EQ(result.total_samples, 10'000u);
  EXPECT_EQ(result.num_batches, 1000u);
}

TEST(PrequentialTest, GlmLearnsSeaAndF1Improves) {
  streams::SeaConfig sea;
  sea.total_samples = 20'000;
  sea.drift_points = {};
  sea.noise = 0.0;
  streams::SeaGenerator stream(sea);
  linear::GlmClassifier model({.num_features = 3, .num_classes = 2});
  PrequentialConfig config;
  config.expected_samples = 20'000;
  config.keep_series = true;
  const PrequentialResult result = RunPrequential(&stream, &model, config);
  ASSERT_EQ(result.f1_series.size(), result.num_batches);
  // Late-stream F1 must clearly beat early-stream F1 (the model learns).
  double early = 0.0;
  double late = 0.0;
  const std::size_t window = result.num_batches / 10;
  for (std::size_t i = 0; i < window; ++i) {
    early += result.f1_series[i];
    late += result.f1_series[result.num_batches - 1 - i];
  }
  EXPECT_GT(late / window, early / window);
  EXPECT_GT(late / window, 0.9);
}

TEST(PrequentialTest, TracksComplexitySeries) {
  streams::SeaConfig sea;
  sea.total_samples = 5'000;
  streams::SeaGenerator stream(sea);
  trees::Vfdt model({.num_features = 3, .num_classes = 2});
  PrequentialConfig config;
  config.expected_samples = 5'000;
  config.keep_series = true;
  const PrequentialResult result = RunPrequential(&stream, &model, config);
  ASSERT_FALSE(result.splits_series.empty());
  // VFDT never prunes: the split series must be non-decreasing.
  for (std::size_t i = 1; i < result.splits_series.size(); ++i) {
    EXPECT_GE(result.splits_series[i], result.splits_series[i - 1]);
  }
}

TEST(PrequentialTest, DmtRunsEndToEndOnSea) {
  streams::SeaConfig sea;
  sea.total_samples = 20'000;
  for (double f : {0.2, 0.4, 0.6, 0.8}) {
    sea.drift_points.push_back(static_cast<std::size_t>(f * 20'000));
  }
  streams::SeaGenerator stream(sea);
  core::DynamicModelTree model({.num_features = 3, .num_classes = 2});
  PrequentialConfig config;
  config.expected_samples = 20'000;
  const PrequentialResult result = RunPrequential(&stream, &model, config);
  EXPECT_EQ(result.total_samples, 20'000u);
  // SEA with 10% label noise caps F1 around 0.9; the DMT should land well
  // above chance.
  EXPECT_GT(result.f1.mean(), 0.7);
  EXPECT_GT(result.iteration_seconds.mean(), 0.0);
}

// --------------------------------------------- protocol-accounting battery

TEST(PrequentialTest, DerivedBatchSizeHasMinimumOne) {
  // 0.1% of 500 samples rounds to zero; the protocol clamps to 1, so the
  // run degenerates to pure test-then-train per instance.
  streams::SeaConfig sea;
  sea.total_samples = 500;
  sea.drift_points = {};
  streams::SeaGenerator stream(sea);
  linear::GlmClassifier model({.num_features = 3, .num_classes = 2});
  PrequentialConfig config;
  config.expected_samples = 500;
  const PrequentialResult result = RunPrequential(&stream, &model, config);
  EXPECT_EQ(result.total_samples, 500u);
  EXPECT_EQ(result.num_batches, 500u);  // batch size 1
}

TEST(PrequentialTest, FinalPartialBatchIsProcessed) {
  // 1050 samples at batch size 100 -> 10 full batches + one of 50; the
  // trailing remainder must be scored and trained, not dropped.
  streams::SeaConfig sea;
  sea.total_samples = 1'050;
  sea.drift_points = {};
  streams::SeaGenerator stream(sea);
  linear::GlmClassifier model({.num_features = 3, .num_classes = 2});
  PrequentialConfig config;
  config.batch_size = 100;
  const PrequentialResult result = RunPrequential(&stream, &model, config);
  EXPECT_EQ(result.total_samples, 1'050u);
  EXPECT_EQ(result.num_batches, 11u);
}

TEST(PrequentialTest, AccountingExactWhenBatchDerived) {
  // Derived batch size: 0.1% of 12'345 -> 12; 12'345 = 1028 * 12 + 9, so
  // 1029 batches with the last one partial.
  streams::SeaConfig sea;
  sea.total_samples = 12'345;
  sea.drift_points = {};
  streams::SeaGenerator stream(sea);
  linear::GlmClassifier model({.num_features = 3, .num_classes = 2});
  PrequentialConfig config;
  config.expected_samples = 12'345;
  const PrequentialResult result = RunPrequential(&stream, &model, config);
  EXPECT_EQ(result.total_samples, 12'345u);
  EXPECT_EQ(result.num_batches, 1'029u);
  // Aggregates saw exactly one observation per batch.
  EXPECT_EQ(result.f1.count(), result.num_batches);
  EXPECT_EQ(result.num_splits.count(), result.num_batches);
}

TEST(PrequentialTest, SeriesLengthsEqualNumBatches) {
  streams::SeaConfig sea;
  sea.total_samples = 3'000;
  streams::SeaGenerator stream(sea);
  linear::GlmClassifier model({.num_features = 3, .num_classes = 2});
  PrequentialConfig config;
  config.batch_size = 70;  // 42 full batches + a 60-sample remainder
  config.keep_series = true;
  const PrequentialResult result = RunPrequential(&stream, &model, config);
  EXPECT_EQ(result.num_batches, 43u);
  EXPECT_EQ(result.f1_series.size(), result.num_batches);
  EXPECT_EQ(result.splits_series.size(), result.num_batches);
}

TEST(PrequentialTest, SeriesEmptyWhenNotKept) {
  streams::SeaConfig sea;
  sea.total_samples = 1'000;
  streams::SeaGenerator stream(sea);
  linear::GlmClassifier model({.num_features = 3, .num_classes = 2});
  PrequentialConfig config;
  config.batch_size = 100;
  const PrequentialResult result = RunPrequential(&stream, &model, config);
  EXPECT_TRUE(result.f1_series.empty());
  EXPECT_TRUE(result.splits_series.empty());
}

TEST(PrequentialTest, NormalizationCanBeDisabled) {
  streams::SeaConfig sea;
  sea.total_samples = 2'000;
  streams::SeaGenerator stream(sea);
  linear::GlmClassifier model({.num_features = 3, .num_classes = 2});
  PrequentialConfig config;
  config.batch_size = 100;
  config.normalize = false;
  const PrequentialResult result = RunPrequential(&stream, &model, config);
  EXPECT_EQ(result.num_batches, 20u);
}

}  // namespace
}  // namespace dmt::eval
