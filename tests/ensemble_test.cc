#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/common/types.h"
#include "dmt/ensemble/adaptive_random_forest.h"
#include "dmt/ensemble/leveraging_bagging.h"

namespace dmt::ensemble {
namespace {

void FillAxisConcept(Rng* rng, Batch* batch, int n, bool flipped = false) {
  for (int i = 0; i < n; ++i) {
    std::vector<double> x = {rng->Uniform(), rng->Uniform()};
    int y = x[0] <= 0.5 ? 0 : 1;
    if (flipped) y = 1 - y;
    batch->Add(x, y);
  }
}

template <typename Model>
double TestAccuracy(const Model& model, Rng* rng, int n,
                    bool flipped = false) {
  Batch test(2);
  FillAxisConcept(rng, &test, n, flipped);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += model.Predict(test.row(i)) == test.label(i);
  }
  return static_cast<double>(correct) / n;
}

TEST(LeveragingBaggingTest, LearnsSimpleConcept) {
  LeveragingBagging ensemble(
      {.num_features = 2, .num_classes = 2, .num_learners = 3});
  Rng rng(1);
  for (int b = 0; b < 10; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 500);
    ensemble.PartialFit(batch);
  }
  EXPECT_GT(TestAccuracy(ensemble, &rng, 1000), 0.93);
}

TEST(LeveragingBaggingTest, ComplexitySumsOverMembers) {
  LeveragingBagging ensemble(
      {.num_features = 2, .num_classes = 2, .num_learners = 3});
  // Empty members: 0 splits, 3 leaves -> 3 parameters.
  EXPECT_EQ(ensemble.NumSplits(), 0u);
  EXPECT_EQ(ensemble.NumParameters(), 3u);
}

TEST(LeveragingBaggingTest, ResetsMemberAfterDrift) {
  LeveragingBagging ensemble(
      {.num_features = 2, .num_classes = 2, .num_learners = 3});
  Rng rng(2);
  for (int b = 0; b < 10; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 500);
    ensemble.PartialFit(batch);
  }
  for (int b = 0; b < 20; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 500, /*flipped=*/true);
    ensemble.PartialFit(batch);
  }
  EXPECT_GE(ensemble.num_resets(), 1u);
  EXPECT_GT(TestAccuracy(ensemble, &rng, 1000, /*flipped=*/true), 0.85);
}

TEST(ArfTest, LearnsSimpleConcept) {
  AdaptiveRandomForest forest(
      {.num_features = 2, .num_classes = 2, .num_learners = 3});
  Rng rng(3);
  for (int b = 0; b < 10; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 500);
    forest.PartialFit(batch);
  }
  EXPECT_GT(TestAccuracy(forest, &rng, 1000), 0.9);
}

TEST(ArfTest, PromotesBackgroundTreeAfterDrift) {
  AdaptiveRandomForest forest(
      {.num_features = 2, .num_classes = 2, .num_learners = 3});
  Rng rng(4);
  for (int b = 0; b < 10; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 500);
    forest.PartialFit(batch);
  }
  for (int b = 0; b < 20; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 500, /*flipped=*/true);
    forest.PartialFit(batch);
  }
  EXPECT_GE(forest.num_promotions(), 1u);
  EXPECT_GT(TestAccuracy(forest, &rng, 1000, /*flipped=*/true), 0.85);
}

TEST(ArfTest, SubspaceSizeDefaultsToSqrtM) {
  AdaptiveRandomForest forest({.num_features = 25, .num_classes = 2});
  // sqrt(25) + 1 = 6; indirectly verified by construction succeeding and
  // the forest still learning on a concept that uses one feature.
  Rng rng(5);
  for (int b = 0; b < 10; ++b) {
    Batch batch(25);
    for (int i = 0; i < 300; ++i) {
      std::vector<double> x(25);
      for (double& v : x) v = rng.Uniform();
      batch.Add(x, x[0] <= 0.5 ? 0 : 1);
    }
    forest.PartialFit(batch);
  }
  Batch test(25);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x(25);
    for (double& v : x) v = rng.Uniform();
    test.Add(x, x[0] <= 0.5 ? 0 : 1);
  }
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += forest.Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(correct, 350);
}

TEST(ArfTest, ParallelTrainingBitIdenticalToSequential) {
  // ARF members are fully independent (each owns its RNG and detectors),
  // so training them on the pool must reproduce the sequential forest
  // exactly: same splits, same parameters, same predictions.
  const AdaptiveRandomForestConfig base{
      .num_features = 2, .num_classes = 2, .num_learners = 4, .seed = 11};
  AdaptiveRandomForestConfig parallel_config = base;
  parallel_config.num_threads = 4;
  AdaptiveRandomForest sequential(base);
  AdaptiveRandomForest parallel(parallel_config);

  Rng rng(6);
  for (int b = 0; b < 12; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 400, /*flipped=*/b >= 8);
    sequential.PartialFit(batch);
    parallel.PartialFit(batch);
  }
  EXPECT_EQ(sequential.NumSplits(), parallel.NumSplits());
  EXPECT_EQ(sequential.NumParameters(), parallel.NumParameters());
  EXPECT_EQ(sequential.num_promotions(), parallel.num_promotions());
  Rng test_rng(7);
  Batch test(2);
  FillAxisConcept(&test_rng, &test, 500, /*flipped=*/true);
  for (std::size_t i = 0; i < test.size(); ++i) {
    ASSERT_EQ(sequential.Predict(test.row(i)), parallel.Predict(test.row(i)))
        << "prediction diverged at test instance " << i;
  }
}

TEST(ArfTest, InjectedPoolBitIdenticalToSequential) {
  // A borrowed pool (shared with a caller, e.g. the sweep engine) must
  // behave exactly like the owned pool: training stays bit-identical to
  // sequential, and batch scoring over the pool matches row-by-row scoring.
  const AdaptiveRandomForestConfig base{
      .num_features = 2, .num_classes = 2, .num_learners = 4, .seed = 11};
  ThreadPool pool(3);
  AdaptiveRandomForestConfig injected_config = base;
  injected_config.pool = &pool;
  AdaptiveRandomForest sequential(base);
  AdaptiveRandomForest injected(injected_config);

  Rng rng(6);
  for (int b = 0; b < 12; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 400, /*flipped=*/b >= 8);
    sequential.PartialFit(batch);
    injected.PartialFit(batch);
  }
  EXPECT_EQ(sequential.NumSplits(), injected.NumSplits());
  EXPECT_EQ(sequential.num_promotions(), injected.num_promotions());

  Rng test_rng(7);
  Batch test(2);
  FillAxisConcept(&test_rng, &test, 500, /*flipped=*/true);
  ProbaMatrix batched;
  injected.PredictBatch(test, &batched);  // fans over the borrowed pool
  ASSERT_EQ(batched.rows(), test.size());
  std::vector<double> row(2);
  for (std::size_t i = 0; i < test.size(); ++i) {
    sequential.PredictProbaInto(test.row(i), row);
    ASSERT_EQ(batched.row(i)[0], row[0]) << "row " << i;
    ASSERT_EQ(batched.row(i)[1], row[1]) << "row " << i;
  }
}

TEST(LeveragingBaggingTest, ParallelTrainingLearnsAndAdapts) {
  // LevBag couples members through the worst-member reset, which moves to
  // batch granularity in parallel mode -- so assert behavior, not bits.
  LeveragingBagging ensemble({.num_features = 2, .num_classes = 2,
                              .num_learners = 3, .num_threads = 3});
  Rng rng(9);
  for (int b = 0; b < 10; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 500);
    ensemble.PartialFit(batch);
  }
  EXPECT_GT(TestAccuracy(ensemble, &rng, 1000), 0.93);
  for (int b = 0; b < 20; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 500, /*flipped=*/true);
    ensemble.PartialFit(batch);
  }
  EXPECT_GE(ensemble.num_resets(), 1u);
  EXPECT_GT(TestAccuracy(ensemble, &rng, 1000, /*flipped=*/true), 0.85);
}

TEST(ArfTest, ProbabilitiesAreAveraged) {
  AdaptiveRandomForest forest(
      {.num_features = 2, .num_classes = 3, .num_learners = 3});
  std::vector<double> x = {0.5, 0.5};
  const std::vector<double> proba = forest.PredictProba(x);
  ASSERT_EQ(proba.size(), 3u);
  double sum = 0.0;
  for (double p : proba) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace dmt::ensemble
