#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/common/types.h"
#include "dmt/linear/glm.h"

namespace dmt::linear {
namespace {

Batch MakeLinearlySeparable(int n, Rng* rng) {
  Batch batch(2);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x = {rng->Uniform(), rng->Uniform()};
    batch.Add(x, x[0] + x[1] > 1.0 ? 1 : 0);
  }
  return batch;
}

TEST(GlmTest, BinaryParamCount) {
  Glm model({.num_features = 5, .num_classes = 2});
  EXPECT_EQ(model.num_params(), 6);
}

TEST(GlmTest, MultinomialParamCount) {
  Glm model({.num_features = 5, .num_classes = 4});
  EXPECT_EQ(model.num_params(), 24);
}

TEST(GlmTest, ProbabilitiesSumToOne) {
  for (int c : {2, 3, 7}) {
    Glm model({.num_features = 3, .num_classes = c});
    std::vector<double> x = {0.1, 0.5, 0.9};
    const std::vector<double> proba = model.PredictProba(x);
    ASSERT_EQ(static_cast<int>(proba.size()), c);
    double sum = 0.0;
    for (double p : proba) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(GlmTest, LearnsLinearlySeparableBinaryConcept) {
  Rng rng(3);
  Glm model({.num_features = 2, .num_classes = 2, .learning_rate = 0.1});
  for (int epoch = 0; epoch < 30; ++epoch) {
    Batch batch = MakeLinearlySeparable(200, &rng);
    model.Fit(batch);
  }
  Batch test = MakeLinearlySeparable(500, &rng);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += model.Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(correct, 450);
}

TEST(GlmTest, LearnsMulticlassConcept) {
  // Three one-hot-ish clusters.
  Rng rng(4);
  Glm model({.num_features = 3, .num_classes = 3, .learning_rate = 0.2});
  auto sample = [&](Batch* batch, int n) {
    for (int i = 0; i < n; ++i) {
      const int c = rng.UniformInt(0, 2);
      std::vector<double> x(3, 0.1);
      x[c] = 0.9 + rng.Uniform(-0.05, 0.05);
      batch->Add(x, c);
    }
  };
  for (int epoch = 0; epoch < 50; ++epoch) {
    Batch batch(3);
    sample(&batch, 100);
    model.Fit(batch);
  }
  Batch test(3);
  sample(&test, 300);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += model.Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(correct, 280);
}

// The analytic gradient must match central finite differences of the NLL.
class GlmGradientTest : public ::testing::TestWithParam<int> {};

TEST_P(GlmGradientTest, AnalyticGradientMatchesNumeric) {
  const int num_classes = GetParam();
  const int num_features = 4;
  Glm model({.num_features = num_features,
             .num_classes = num_classes,
             .seed = 11});
  Rng rng(5);
  Batch batch(num_features);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> x(num_features);
    for (double& v : x) v = rng.Uniform();
    batch.Add(x, rng.UniformInt(0, num_classes - 1));
  }

  std::vector<double> grad(model.num_params(), 0.0);
  const double loss = model.LossAndGradient(batch, nullptr, grad);
  EXPECT_NEAR(loss, model.Loss(batch), 1e-9);

  const double eps = 1e-6;
  for (int p = 0; p < model.num_params(); ++p) {
    const double original = model.params()[p];
    model.mutable_params()[p] = original + eps;
    const double loss_plus = model.Loss(batch);
    model.mutable_params()[p] = original - eps;
    const double loss_minus = model.Loss(batch);
    model.mutable_params()[p] = original;
    const double numeric = (loss_plus - loss_minus) / (2.0 * eps);
    EXPECT_NEAR(grad[p], numeric, 1e-4) << "param " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(BinaryAndMulticlass, GlmGradientTest,
                         ::testing::Values(2, 3, 5, 9));

TEST(GlmTest, MaskedLossAndGradientSelectsRows) {
  Glm model({.num_features = 2, .num_classes = 2, .seed = 9});
  Batch batch(2);
  batch.Add(std::vector<double>{0.2, 0.8}, 1);
  batch.Add(std::vector<double>{0.9, 0.1}, 0);
  batch.Add(std::vector<double>{0.5, 0.5}, 1);

  std::vector<char> mask = {1, 0, 1};
  std::vector<double> grad_masked(model.num_params(), 0.0);
  const double loss_masked =
      model.LossAndGradient(batch, &mask, grad_masked);

  // Recompute by explicit row sums.
  double expected = model.LossOne(batch.row(0), 1) +
                    model.LossOne(batch.row(2), 1);
  EXPECT_NEAR(loss_masked, expected, 1e-9);

  // Complement mask + masked must equal full.
  std::vector<char> complement = {0, 1, 0};
  std::vector<double> grad_rest(model.num_params(), 0.0);
  const double loss_rest = model.LossAndGradient(batch, &complement,
                                                 grad_rest);
  std::vector<double> grad_full(model.num_params(), 0.0);
  const double loss_full = model.LossAndGradient(batch, nullptr, grad_full);
  EXPECT_NEAR(loss_masked + loss_rest, loss_full, 1e-9);
  for (int p = 0; p < model.num_params(); ++p) {
    EXPECT_NEAR(grad_masked[p] + grad_rest[p], grad_full[p], 1e-9);
  }
}

TEST(GlmTest, WarmStartCopiesParameters) {
  Glm parent({.num_features = 3, .num_classes = 2, .seed = 1});
  Glm child({.num_features = 3, .num_classes = 2, .seed = 2});
  EXPECT_NE(parent.params(), child.params());
  child.WarmStartFrom(parent);
  EXPECT_EQ(parent.params(), child.params());
}

TEST(GlmTest, FeatureWeightsBinarySymmetry) {
  Glm model({.num_features = 3, .num_classes = 2, .seed = 8});
  const std::vector<double> pos = model.FeatureWeights(1);
  const std::vector<double> neg = model.FeatureWeights(0);
  for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(pos[j], -neg[j]);
}

TEST(GlmTest, FitRowsOnlyUsesSelectedRows) {
  Glm a({.num_features = 2, .num_classes = 2, .seed = 3});
  Glm b({.num_features = 2, .num_classes = 2, .seed = 3});
  Batch batch(2);
  batch.Add(std::vector<double>{0.1, 0.9}, 1);
  batch.Add(std::vector<double>{0.9, 0.1}, 0);

  // Fitting rows {0} must equal fitting a batch holding only row 0.
  std::vector<std::size_t> rows = {0};
  a.FitRows(batch, rows);
  Batch only_first(2);
  only_first.Add(batch.row(0), batch.label(0));
  b.Fit(only_first);
  EXPECT_EQ(a.params(), b.params());
}

TEST(GlmScheduleTest, InverseSqrtDecaysLearningRate) {
  Glm model({.num_features = 2,
             .num_classes = 2,
             .learning_rate = 0.1,
             .schedule = LearningRateSchedule::kInverseSqrt});
  EXPECT_DOUBLE_EQ(model.CurrentLearningRate(), 0.1);
  Rng rng(6);
  Batch batch(2);
  for (int i = 0; i < 3000; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform()};
    batch.Add(x, x[0] > 0.5 ? 1 : 0);
  }
  model.Fit(batch);
  EXPECT_LT(model.CurrentLearningRate(), 0.06);
  EXPECT_GT(model.CurrentLearningRate(), 0.0);
}

TEST(GlmL1Test, SparsifiesIrrelevantFeatures) {
  // Feature 0 drives the label; features 1..4 are noise. With L1 the noise
  // weights should be driven to exactly zero.
  Glm plain({.num_features = 5, .num_classes = 2,
             .learning_rate = 0.1, .seed = 9});
  Glm sparse({.num_features = 5, .num_classes = 2,
              .learning_rate = 0.1, .l1_penalty = 0.5, .seed = 9});
  Rng rng(7);
  for (int epoch = 0; epoch < 50; ++epoch) {
    Batch batch(5);
    for (int i = 0; i < 200; ++i) {
      std::vector<double> x(5);
      for (double& v : x) v = rng.Uniform();
      batch.Add(x, x[0] > 0.5 ? 1 : 0);
    }
    plain.Fit(batch);
    sparse.Fit(batch);
  }
  EXPECT_GT(sparse.Sparsity(), plain.Sparsity());
  EXPECT_GE(sparse.Sparsity(), 0.4);  // at least 2 of 5 weights exactly 0
  // The informative weight must survive.
  EXPECT_GT(std::abs(sparse.params()[0]), 0.5);
}

}  // namespace
}  // namespace dmt::linear
