// Interface-conformance sweeps: every classifier must uphold the Classifier
// contract on arbitrary inputs, and the DMT must beat the trivial
// majority-class baseline on every surrogate stream family.
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/math.h"
#include "dmt/common/random.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/ensemble/adaptive_random_forest.h"
#include "dmt/ensemble/leveraging_bagging.h"
#include "dmt/ensemble/online_bagging.h"
#include "dmt/ensemble/online_boosting.h"
#include "dmt/eval/prequential.h"
#include "dmt/linear/glm_classifier.h"
#include "dmt/streams/datasets.h"
#include "dmt/trees/efdt.h"
#include "dmt/trees/fimtdd.h"
#include "dmt/trees/hoeffding_adaptive.h"
#include "dmt/trees/sgt.h"
#include "dmt/trees/vfdt.h"

namespace dmt {
namespace {

std::unique_ptr<Classifier> Make(const std::string& name, int m, int c) {
  if (name == "DMT") {
    return std::make_unique<core::DynamicModelTree>(
        core::DmtConfig{.num_features = m, .num_classes = c});
  }
  if (name == "FIMT-DD") {
    return std::make_unique<trees::FimtDd>(
        trees::FimtDdConfig{.num_features = m, .num_classes = c});
  }
  if (name == "VFDT") {
    return std::make_unique<trees::Vfdt>(
        trees::VfdtConfig{.num_features = m, .num_classes = c});
  }
  if (name == "VFDT-NBA") {
    return std::make_unique<trees::Vfdt>(trees::VfdtConfig{
        .num_features = m,
        .num_classes = c,
        .leaf_prediction = trees::LeafPrediction::kNaiveBayesAdaptive});
  }
  if (name == "HT-Ada") {
    return std::make_unique<trees::HoeffdingAdaptiveTree>(
        trees::HatConfig{.num_features = m, .num_classes = c});
  }
  if (name == "EFDT") {
    return std::make_unique<trees::Efdt>(
        trees::EfdtConfig{.num_features = m, .num_classes = c});
  }
  if (name == "ARF") {
    return std::make_unique<ensemble::AdaptiveRandomForest>(
        ensemble::AdaptiveRandomForestConfig{.num_features = m,
                                             .num_classes = c});
  }
  if (name == "LevBag") {
    return std::make_unique<ensemble::LeveragingBagging>(
        ensemble::LeveragingBaggingConfig{.num_features = m,
                                          .num_classes = c});
  }
  if (name == "OzaBag") {
    return std::make_unique<ensemble::OnlineBagging>(
        ensemble::OnlineBaggingConfig{.num_features = m, .num_classes = c});
  }
  if (name == "OzaBoost") {
    return std::make_unique<ensemble::OnlineBoosting>(
        ensemble::OnlineBoostingConfig{.num_features = m, .num_classes = c});
  }
  if (name == "SGT") {
    return std::make_unique<trees::SgtClassifier>(
        trees::SgtConfig{.num_features = m}, c);
  }
  return std::make_unique<linear::GlmClassifier>(
      linear::GlmConfig{.num_features = m, .num_classes = c});
}

// (model, num_classes) sweep.
class ClassifierContractTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(ClassifierContractTest, ProbabilitiesFormDistributionAndArgmax) {
  const auto [name, num_classes] = GetParam();
  const int m = 4;
  std::unique_ptr<Classifier> model = Make(name, m, num_classes);
  Rng rng(17);
  Batch batch(m);
  for (int i = 0; i < 600; ++i) {
    std::vector<double> x(m);
    for (double& v : x) v = rng.Uniform();
    batch.Add(x, rng.UniformInt(0, num_classes - 1));
  }
  model->PartialFit(batch);

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x(m);
    for (double& v : x) v = rng.Uniform();
    const std::vector<double> proba = model->PredictProba(x);
    ASSERT_EQ(static_cast<int>(proba.size()), num_classes);
    double sum = 0.0;
    for (double p : proba) {
      ASSERT_GE(p, 0.0);
      ASSERT_LE(p, 1.0 + 1e-9);
      sum += p;
    }
    ASSERT_NEAR(sum, 1.0, 1e-6);
    // Predict must be consistent with the probability argmax (ties allowed,
    // so only require the predicted class to have maximal probability).
    const int predicted = model->Predict(x);
    double max_p = 0.0;
    for (double p : proba) max_p = std::max(max_p, p);
    ASSERT_NEAR(proba[predicted], max_p, 1e-9);
  }
  EXPECT_GT(model->NumParameters(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndClassCounts, ClassifierContractTest,
    ::testing::Combine(::testing::Values("DMT", "FIMT-DD", "VFDT", "VFDT-NBA",
                                         "HT-Ada", "EFDT", "ARF", "LevBag",
                                         "OzaBag", "OzaBoost", "SGT", "GLM"),
                       ::testing::Values(2, 5)));

// The batch-first scoring core (PredictProbaInto / PredictBatch) must
// reproduce the legacy value-returning path bit-exactly: the Into methods
// perform the same floating-point operations into caller buffers, and
// Predict is argmax with first-maximum tie-breaking. Swept over every
// classifier on prefixes of two synthetic Table I streams, interleaved with
// training so grown trees and drift-reset ensembles are covered too.
class BatchScoringEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(BatchScoringEquivalenceTest, IntoAndBatchMatchLegacyBitExact) {
  const auto [model_name, dataset] = GetParam();
  const streams::DatasetSpec spec = streams::DatasetByName(dataset);
  const int m = static_cast<int>(spec.num_features);
  const int c = static_cast<int>(spec.num_classes);
  std::unique_ptr<Classifier> model = Make(model_name, m, c);
  ASSERT_EQ(model->num_classes(), c);

  std::unique_ptr<streams::Stream> stream = spec.make(3000, 7);
  const std::size_t batch_size = 250;
  Batch batch(static_cast<std::size_t>(m), batch_size);
  ProbaMatrix proba;
  std::vector<double> into(c);
  while (true) {
    batch.clear();
    if (stream->FillBatch(batch_size, &batch) == 0) break;
    model->PredictBatch(batch, &proba);
    ASSERT_EQ(proba.rows(), batch.size());
    ASSERT_EQ(proba.cols(), static_cast<std::size_t>(c));
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::vector<double> legacy = model->PredictProba(batch.row(i));
      model->PredictProbaInto(batch.row(i), into);
      for (int k = 0; k < c; ++k) {
        ASSERT_EQ(legacy[k], into[k]) << model_name << " Into row " << i;
        ASSERT_EQ(legacy[k], proba.row(i)[k])
            << model_name << " Batch row " << i;
      }
      ASSERT_EQ(model->Predict(batch.row(i)),
                ArgMax(std::span<const double>(legacy)))
          << model_name << " row " << i;
    }
    model->PartialFit(batch);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsOnStreams, BatchScoringEquivalenceTest,
    ::testing::Combine(::testing::Values("DMT", "FIMT-DD", "VFDT", "VFDT-NBA",
                                         "HT-Ada", "EFDT", "ARF", "LevBag",
                                         "OzaBag", "OzaBoost", "SGT", "GLM"),
                       ::testing::Values("SEA", "Agrawal")));

// DMT must beat the always-majority baseline on every Table I stream at
// small scale.
class DmtBeatsBaselineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DmtBeatsBaselineTest, WeightedF1AboveMajorityBaseline) {
  const streams::DatasetSpec spec = streams::DatasetByName(GetParam());
  const std::size_t samples = 8000;
  std::unique_ptr<streams::Stream> stream = spec.make(samples, 11);
  core::DynamicModelTree tree(
      {.num_features = static_cast<int>(spec.num_features),
       .num_classes = static_cast<int>(spec.num_classes)});
  eval::PrequentialConfig config;
  config.expected_samples = samples;
  const eval::PrequentialResult result =
      eval::RunPrequential(stream.get(), &tree, config);

  // Majority baseline: F1(majority class) weighted by its share; a
  // majority-only predictor has weighted F1 = p * 2p/(1+p) where p is the
  // majority fraction. Estimate p from a fresh draw of the stream.
  std::unique_ptr<streams::Stream> probe = spec.make(samples, 11);
  std::vector<std::size_t> counts(spec.num_classes, 0);
  Instance instance;
  while (probe->NextInstance(&instance)) ++counts[instance.y];
  std::size_t majority = 0;
  for (std::size_t c : counts) majority = std::max(majority, c);
  const double p = static_cast<double>(majority) / samples;
  const double baseline = p * (2.0 * p / (1.0 + p));
  EXPECT_GT(result.f1.mean(), baseline) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllTableOneStreams, DmtBeatsBaselineTest,
    ::testing::Values("Electricity", "Airlines", "Bank", "TueEyeQ", "Poker",
                      "KDD", "Covertype", "Gas", "Insects-Abr", "Insects-Inc",
                      "SEA", "Agrawal", "Hyperplane"));

TEST(OnlineBaggingTest, LearnsSimpleConcept) {
  ensemble::OnlineBagging ensemble(
      {.num_features = 2, .num_classes = 2, .num_learners = 3});
  Rng rng(21);
  Batch batch(2);
  for (int i = 0; i < 4000; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform()};
    batch.Add(x, x[0] <= 0.5 ? 0 : 1);
  }
  ensemble.PartialFit(batch);
  int correct = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform()};
    correct += ensemble.Predict(x) == (x[0] <= 0.5 ? 0 : 1);
  }
  EXPECT_GT(correct, 450);
}

TEST(VfdtNominalTest, EqualitySplitOnNominalFeature) {
  // Feature 0 is nominal with 3 levels; level 2.0 determines the class.
  trees::Vfdt tree({.num_features = 2,
                    .num_classes = 2,
                    .nominal_features = {0}});
  Rng rng(22);
  Batch batch(2);
  for (int i = 0; i < 5000; ++i) {
    const double level = rng.UniformInt(0, 2);
    std::vector<double> x = {level, rng.Uniform()};
    batch.Add(x, level == 2.0 ? 1 : 0);
  }
  tree.PartialFit(batch);
  ASSERT_GE(tree.NumInnerNodes(), 1u);
  // Exact classification on all three levels.
  for (double level : {0.0, 1.0, 2.0}) {
    std::vector<double> x = {level, 0.5};
    EXPECT_EQ(tree.Predict(x), level == 2.0 ? 1 : 0);
  }
}

TEST(VfdtNominalTest, MixedNominalAndNumericFeatures) {
  // Nominal feature 0 is noise; numeric feature 1 carries the concept.
  trees::Vfdt tree({.num_features = 2,
                    .num_classes = 2,
                    .nominal_features = {0}});
  Rng rng(23);
  Batch batch(2);
  for (int i = 0; i < 5000; ++i) {
    std::vector<double> x = {static_cast<double>(rng.UniformInt(0, 4)),
                             rng.Uniform()};
    batch.Add(x, x[1] <= 0.5 ? 0 : 1);
  }
  tree.PartialFit(batch);
  int correct = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x = {static_cast<double>(rng.UniformInt(0, 4)),
                             rng.Uniform()};
    correct += tree.Predict(x) == (x[1] <= 0.5 ? 0 : 1);
  }
  EXPECT_GT(correct, 460);
}

}  // namespace
}  // namespace dmt
