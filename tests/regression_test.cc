#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/core/dmt_regressor.h"
#include "dmt/eval/regression_prequential.h"
#include "dmt/linear/linear_regressor.h"
#include "dmt/streams/regression_streams.h"
#include "dmt/trees/fimtdd_regressor.h"

namespace dmt {
namespace {

using linear::LinearRegressor;
using linear::RegressionBatch;

RegressionBatch MakeLinearData(Rng* rng, int n,
                               const std::vector<double>& w, double b,
                               double noise = 0.0) {
  RegressionBatch batch(w.size());
  for (int i = 0; i < n; ++i) {
    std::vector<double> x(w.size());
    double y = b;
    for (std::size_t j = 0; j < w.size(); ++j) {
      x[j] = rng->Uniform();
      y += w[j] * x[j];
    }
    if (noise > 0.0) y += rng->Gaussian(0.0, noise);
    batch.Add(x, y);
  }
  return batch;
}

TEST(LinearRegressorTest, RecoversLinearFunction) {
  Rng rng(1);
  const std::vector<double> w = {2.0, -1.0, 0.5};
  LinearRegressor model({.num_features = 3, .learning_rate = 0.1});
  for (int epoch = 0; epoch < 100; ++epoch) {
    RegressionBatch batch = MakeLinearData(&rng, 100, w, 0.3);
    model.Fit(batch);
  }
  for (std::size_t j = 0; j < w.size(); ++j) {
    EXPECT_NEAR(model.params()[j], w[j], 0.1) << "weight " << j;
  }
  EXPECT_NEAR(model.params().back(), 0.3, 0.1);
}

TEST(LinearRegressorTest, GradientMatchesNumeric) {
  LinearRegressor model({.num_features = 3, .seed = 5});
  Rng rng(2);
  std::vector<double> x = {0.1, 0.7, 0.4};
  const double y = 1.5;
  std::vector<double> grad(model.num_params());
  const double loss = model.LossAndGradientOne(x, y, grad);
  EXPECT_NEAR(loss, model.LossOne(x, y), 1e-12);
  // d(0.5 err^2)/dw_j = err * x_j; d/db = err.
  const double err = model.Predict(x) - y;
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(grad[j], err * x[j], 1e-12);
  EXPECT_NEAR(grad[3], err, 1e-12);
}

TEST(LinearRegressorTest, WarmStartCopiesParams) {
  LinearRegressor a({.num_features = 2, .seed = 1});
  LinearRegressor b({.num_features = 2, .seed = 2});
  ASSERT_NE(a.params(), b.params());
  b.WarmStartFrom(a);
  EXPECT_EQ(a.params(), b.params());
}

TEST(FriedGeneratorTest, TargetMatchesFormula) {
  streams::FriedConfig config;
  config.noise_sigma = 0.0;
  config.total_samples = 500;
  streams::FriedGenerator gen(config);
  streams::RegressionInstance instance;
  while (gen.NextInstance(&instance)) {
    const double expected =
        10.0 * std::sin(std::numbers::pi * instance.x[0] * instance.x[1]) +
        20.0 * (instance.x[2] - 0.5) * (instance.x[2] - 0.5) +
        10.0 * instance.x[3] + 5.0 * instance.x[4];
    ASSERT_NEAR(instance.y, expected, 1e-9);
  }
}

TEST(FriedGeneratorTest, DriftPermutesFeatureRoles) {
  streams::FriedConfig config;
  config.noise_sigma = 0.0;
  config.total_samples = 2000;
  config.drift_points = {1000};
  config.seed = 3;
  streams::FriedGenerator gen(config);
  streams::RegressionInstance instance;
  for (int i = 0; i < 1000; ++i) gen.NextInstance(&instance);
  const std::vector<double> probe = {0.9, 0.9, 0.9, 0.9, 0.1,
                                     0.1, 0.1, 0.1, 0.1, 0.1};
  const double before = gen.CleanTarget(probe);
  gen.NextInstance(&instance);  // crosses the drift point
  const double after = gen.CleanTarget(probe);
  EXPECT_NE(before, after);
}

TEST(PlaneGeneratorTest, NoiselessTargetsMatchWeights) {
  streams::PlaneConfig config;
  config.num_features = 4;
  config.mag_change = 0.0;
  config.noise_sigma = 0.0;
  config.total_samples = 200;
  streams::PlaneGenerator gen(config);
  const std::vector<double> w = gen.weights();
  streams::RegressionInstance instance;
  while (gen.NextInstance(&instance)) {
    double expected = 0.0;
    for (std::size_t j = 0; j < w.size(); ++j) {
      expected += w[j] * instance.x[j];
    }
    ASSERT_NEAR(instance.y, expected, 1e-9);
  }
}

TEST(DmtRegressorTest, StaysSingleLeafOnLinearTarget) {
  core::DmtRegressor tree({.num_features = 3, .learning_rate = 0.1});
  Rng rng(4);
  const std::vector<double> w = {1.0, -2.0, 0.5};
  for (int b = 0; b < 100; ++b) {
    RegressionBatch batch = MakeLinearData(&rng, 100, w, 0.0, 0.05);
    tree.PartialFit(batch);
  }
  EXPECT_LE(tree.NumInnerNodes(), 1u);
  RegressionBatch test = MakeLinearData(&rng, 500, w, 0.0);
  double mae = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    mae += std::abs(tree.Predict(test.row(i)) - test.target(i));
  }
  EXPECT_LT(mae / 500.0, 0.15);
}

TEST(DmtRegressorTest, SplitsOnPiecewiseLinearTarget) {
  // y = 2 x1 for x0 <= 0.5 and y = -2 x1 + 3 otherwise: one split makes
  // both sides exactly linear.
  core::DmtRegressor tree({.num_features = 2, .learning_rate = 0.1});
  Rng rng(5);
  auto fill = [&](RegressionBatch* batch, int n) {
    for (int i = 0; i < n; ++i) {
      std::vector<double> x = {rng.Uniform(), rng.Uniform()};
      const double y = x[0] <= 0.5 ? 2.0 * x[1] : -2.0 * x[1] + 3.0;
      batch->Add(x, y);
    }
  };
  for (int b = 0; b < 150; ++b) {
    RegressionBatch batch(2);
    fill(&batch, 100);
    tree.PartialFit(batch);
  }
  EXPECT_GE(tree.NumInnerNodes(), 1u);
  RegressionBatch test(2);
  fill(&test, 500);
  double mae = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    mae += std::abs(tree.Predict(test.row(i)) - test.target(i));
  }
  EXPECT_LT(mae / 500.0, 0.3);
}

TEST(DmtRegressorTest, EventsClearTheirThresholds) {
  core::DmtRegressor tree({.num_features = 2, .learning_rate = 0.1});
  Rng rng(6);
  for (int b = 0; b < 150; ++b) {
    RegressionBatch batch(2);
    for (int i = 0; i < 100; ++i) {
      std::vector<double> x = {rng.Uniform(), rng.Uniform()};
      batch.Add(x, x[0] <= 0.5 ? 2.0 * x[1] : -2.0 * x[1] + 3.0);
    }
    tree.PartialFit(batch);
  }
  for (const core::StructuralEvent& event : tree.events()) {
    EXPECT_GE(event.gain, event.threshold);
  }
}

TEST(FimtDdRegressorTest, LearnsPiecewiseTarget) {
  trees::FimtDdRegressor tree({.num_features = 2});
  Rng rng(7);
  auto fill = [&](RegressionBatch* batch, int n) {
    for (int i = 0; i < n; ++i) {
      std::vector<double> x = {rng.Uniform(), rng.Uniform()};
      batch->Add(x, x[0] <= 0.5 ? 1.0 : 5.0);
    }
  };
  for (int b = 0; b < 30; ++b) {
    RegressionBatch batch(2);
    fill(&batch, 500);
    tree.PartialFit(batch);
  }
  EXPECT_GE(tree.NumInnerNodes(), 1u);
  RegressionBatch test(2);
  fill(&test, 400);
  double mae = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    mae += std::abs(tree.Predict(test.row(i)) - test.target(i));
  }
  EXPECT_LT(mae / 400.0, 0.5);
}

TEST(RegressionPrequentialTest, DmtRegressorImprovesOnFried) {
  streams::FriedConfig config;
  config.total_samples = 30'000;
  streams::FriedGenerator stream(config);
  core::DmtRegressor tree({.num_features = 10, .learning_rate = 0.05});
  eval::RegressionPrequentialConfig eval_config;
  eval_config.expected_samples = config.total_samples;
  eval_config.keep_series = true;
  const eval::RegressionPrequentialResult result =
      eval::RunRegressionPrequential(&stream, eval::MakeRegressorApi(&tree),
                                     eval_config);
  ASSERT_GT(result.num_batches, 100u);
  // Late MAE clearly better than early MAE, and the fit explains most of
  // the target variance.
  const std::size_t window = result.num_batches / 10;
  double early = 0.0;
  double late = 0.0;
  for (std::size_t i = 0; i < window; ++i) {
    early += result.mae_series[i];
    late += result.mae_series[result.num_batches - 1 - i];
  }
  EXPECT_LT(late, early);
  EXPECT_GT(result.r_squared, 0.5);
}

TEST(RegressionPrequentialTest, ReportsBatchCountsAndSplits) {
  streams::PlaneConfig config;
  config.total_samples = 5000;
  streams::PlaneGenerator stream(config);
  trees::FimtDdRegressor tree({.num_features = 10});
  eval::RegressionPrequentialConfig eval_config;
  eval_config.batch_size = 50;
  const eval::RegressionPrequentialResult result =
      eval::RunRegressionPrequential(&stream, eval::MakeRegressorApi(&tree),
                                     eval_config);
  EXPECT_EQ(result.total_samples, 5000u);
  EXPECT_EQ(result.num_batches, 100u);
  EXPECT_GE(result.num_splits.mean(), 1.0);
}

}  // namespace
}  // namespace dmt
