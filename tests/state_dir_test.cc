// Tests for the serving durability layer (src/dmt/serve/state_dir):
// manifest round trips, newest-complete selection, pruning, and the
// corruption contract -- a truncated, bit-flipped, version-skewed or
// foreign file always surfaces as a typed StateError, never UB, abort or
// a silently wrong recovery.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/serve/state_dir.h"

namespace dmt {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

serve::Manifest MakeManifest(std::uint64_t seq) {
  serve::Manifest m;
  m.seq = seq;
  m.model_kind = "GLM";
  m.num_features = 3;
  m.num_classes = 2;
  m.seed = 42;
  m.batch_window = 16;
  m.inject_rates = {0.1, 0.0, 0.25, 0.5, 1.0};
  m.tallies.requests = 100;
  m.tallies.train_rows = 60;
  m.tallies.score_rows = 30;
  m.tallies.windows = 7;
  m.tallies.evictions = 2;
  m.tallies.warm_starts = 1;
  m.tallies.checkpoints = 3;

  serve::ManifestStream alpha;
  alpha.id = "alpha";
  alpha.resident = true;
  alpha.rows_trained = 41;
  alpha.last_touch = 99;
  alpha.last_window = 7;
  alpha.archive = "alpha-model-archive-bytes";  // opaque to the manifest
  m.streams.push_back(alpha);

  serve::ManifestStream beta;
  beta.id = "beta";
  beta.resident = false;
  beta.rows_trained = 19;
  beta.last_touch = 55;
  beta.last_window = 3;
  beta.inject_rng = "123 456 789 101112";
  beta.archive = "beta-model-archive-bytes";
  m.streams.push_back(beta);
  return m;
}

// ----------------------------------------------------------- round trips

TEST(StateDirTest, ManifestRoundTripPreservesEveryField) {
  const std::string dir = FreshDir("state_roundtrip");
  const serve::Manifest written = MakeManifest(12);
  serve::WriteManifest(dir, written);

  const std::optional<serve::Manifest> loaded =
      serve::LoadNewestManifest(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 12u);
  EXPECT_EQ(loaded->model_kind, "GLM");
  EXPECT_EQ(loaded->num_features, 3);
  EXPECT_EQ(loaded->num_classes, 2);
  EXPECT_EQ(loaded->seed, 42u);
  EXPECT_EQ(loaded->batch_window, 16u);
  EXPECT_EQ(loaded->inject_rates, written.inject_rates);
  EXPECT_EQ(loaded->tallies.requests, 100u);
  EXPECT_EQ(loaded->tallies.train_rows, 60u);
  EXPECT_EQ(loaded->tallies.windows, 7u);
  EXPECT_EQ(loaded->tallies.evictions, 2u);
  EXPECT_EQ(loaded->tallies.checkpoints, 3u);
  ASSERT_EQ(loaded->streams.size(), 2u);
  EXPECT_EQ(loaded->streams[0].id, "alpha");
  EXPECT_TRUE(loaded->streams[0].resident);
  EXPECT_EQ(loaded->streams[0].rows_trained, 41u);
  EXPECT_EQ(loaded->streams[0].last_touch, 99u);
  EXPECT_EQ(loaded->streams[0].archive, "alpha-model-archive-bytes");
  EXPECT_EQ(loaded->streams[1].id, "beta");
  EXPECT_FALSE(loaded->streams[1].resident);
  EXPECT_EQ(loaded->streams[1].inject_rng, "123 456 789 101112");
}

TEST(StateDirTest, EmptyOrMissingDirIsAFreshStart) {
  EXPECT_FALSE(serve::LoadNewestManifest(FreshDir("state_empty")));
  EXPECT_FALSE(
      serve::LoadNewestManifest(::testing::TempDir() + "state_nonexistent"));
}

// -------------------------------------------- newest-complete + pruning

TEST(StateDirTest, NewestManifestWinsAndStaleTmpIsIgnored) {
  const std::string dir = FreshDir("state_newest");
  serve::WriteManifest(dir, MakeManifest(3));
  serve::WriteManifest(dir, MakeManifest(7));
  // A crash mid-write leaves a .tmp behind with a higher sequence; only
  // completely renamed manifests count.
  WriteFileBytes(dir + "/" + serve::ManifestFileName(9) + ".tmp", "torn");
  WriteFileBytes(dir + "/manifest-notanumber.dmtm", "junk");

  const std::optional<serve::Manifest> loaded =
      serve::LoadNewestManifest(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 7u);
}

TEST(StateDirTest, WriteManifestPrunesAllButTheSpare) {
  const std::string dir = FreshDir("state_prune");
  serve::WriteManifest(dir, MakeManifest(1));
  serve::WriteManifest(dir, MakeManifest(2));
  serve::WriteManifest(dir, MakeManifest(3));
  EXPECT_FALSE(fs::exists(dir + "/" + serve::ManifestFileName(1)));
  EXPECT_TRUE(fs::exists(dir + "/" + serve::ManifestFileName(2)));
  EXPECT_TRUE(fs::exists(dir + "/" + serve::ManifestFileName(3)));
}

TEST(StateDirTest, FileNameSequenceMismatchIsDetected) {
  const std::string dir = FreshDir("state_seqskew");
  serve::WriteManifest(dir, MakeManifest(5));
  // A manifest renamed to a different sequence (a botched manual restore)
  // must not be trusted as that sequence.
  fs::rename(dir + "/" + serve::ManifestFileName(5),
             dir + "/" + serve::ManifestFileName(6));
  EXPECT_THROW(serve::LoadNewestManifest(dir), serve::StateError);
}

// ------------------------------------------------------ corruption fuzz

TEST(StateDirTest, EveryTruncationIsATypedError) {
  const std::string dir = FreshDir("state_trunc_src");
  serve::WriteManifest(dir, MakeManifest(4));
  const std::string bytes =
      ReadFileBytes(dir + "/" + serve::ManifestFileName(4));
  ASSERT_GT(bytes.size(), 100u);

  const std::string fuzz_dir = FreshDir("state_trunc_fuzz");
  const std::string target = fuzz_dir + "/" + serve::ManifestFileName(4);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    WriteFileBytes(target, bytes.substr(0, cut));
    EXPECT_THROW(serve::LoadNewestManifest(fuzz_dir), serve::StateError)
        << "truncation at byte " << cut << " was accepted";
  }
  // Sanity: the untruncated bytes do load.
  WriteFileBytes(target, bytes);
  EXPECT_TRUE(serve::LoadNewestManifest(fuzz_dir).has_value());
}

TEST(StateDirTest, ByteFlipsNeverCrashOnlyLoadOrTypedError) {
  const std::string dir = FreshDir("state_flip_src");
  serve::WriteManifest(dir, MakeManifest(4));
  const std::string bytes =
      ReadFileBytes(dir + "/" + serve::ManifestFileName(4));

  const std::string fuzz_dir = FreshDir("state_flip_fuzz");
  const std::string target = fuzz_dir + "/" + serve::ManifestFileName(4);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    WriteFileBytes(target, mutated);
    try {
      serve::LoadNewestManifest(fuzz_dir);  // may succeed (payload bytes)
    } catch (const serve::StateError&) {
      // typed refusal is the other acceptable outcome
    }
  }
}

TEST(StateDirTest, FormatVersionSkewIsATypedError) {
  const std::string dir = FreshDir("state_version");
  serve::WriteManifest(dir, MakeManifest(4));
  const std::string path = dir + "/" + serve::ManifestFileName(4);
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 8u);
  // Bytes 4..7 hold the little-endian format version (after the 4-byte
  // magic); a far-future version must be refused, not misparsed.
  bytes[4] = 0x63;
  bytes[5] = 0x00;
  bytes[6] = 0x00;
  bytes[7] = 0x00;
  WriteFileBytes(path, bytes);
  EXPECT_THROW(serve::LoadNewestManifest(dir), serve::StateError);
}

// ------------------------------------------------------ eviction archives

TEST(StateDirTest, EvictionArchiveRoundTripAndRemoval) {
  const std::string dir = FreshDir("state_evict");
  serve::EnsureStateDir(dir);
  serve::WriteEvictionArchive(dir, "user/42", "parked-model-bytes");
  EXPECT_EQ(serve::ReadEvictionArchive(dir, "user/42"), "parked-model-bytes");
  serve::RemoveEvictionArchive(dir, "user/42");
  EXPECT_THROW(serve::ReadEvictionArchive(dir, "user/42"), serve::StateError);
}

TEST(StateDirTest, ForeignEvictionArchiveIsDetected) {
  const std::string dir = FreshDir("state_evict_foreign");
  serve::EnsureStateDir(dir);
  serve::WriteEvictionArchive(dir, "alice", "alice-bytes");
  // Simulate a filename collision / stale rename: alice's file sitting
  // where bob's is expected. The id recorded inside the file wins.
  fs::rename(dir + "/evicted/" + serve::EvictionFileName("alice"),
             dir + "/evicted/" + serve::EvictionFileName("bob"));
  EXPECT_THROW(serve::ReadEvictionArchive(dir, "bob"), serve::StateError);
}

TEST(StateDirTest, CorruptEvictionArchiveIsATypedError) {
  const std::string dir = FreshDir("state_evict_corrupt");
  serve::EnsureStateDir(dir);
  serve::WriteEvictionArchive(dir, "carol", "carol-bytes");
  const std::string path =
      dir + "/evicted/" + serve::EvictionFileName("carol");
  const std::string bytes = ReadFileBytes(path);
  for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
    WriteFileBytes(path, bytes.substr(0, cut));
    EXPECT_THROW(serve::ReadEvictionArchive(dir, "carol"), serve::StateError)
        << "truncation at byte " << cut << " was accepted";
  }
}

TEST(StateDirTest, EvictionFileNamesAreSafeAndDistinct) {
  const std::string hostile = serve::EvictionFileName("../../etc/passwd");
  EXPECT_EQ(hostile.find('/'), std::string::npos);
  EXPECT_NE(serve::EvictionFileName("stream-a"),
            serve::EvictionFileName("stream-b"));
  // Long ids differing only past the sanitized prefix still get distinct
  // names via the full-id hash.
  const std::string long_a(60, 'x');
  std::string long_b = long_a;
  long_b.back() = 'y';
  EXPECT_NE(serve::EvictionFileName(long_a), serve::EvictionFileName(long_b));
}

}  // namespace
}  // namespace dmt
