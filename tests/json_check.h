// Minimal recursive-descent JSON validator for tests. Accepts exactly the
// RFC 8259 grammar (objects, arrays, strings with escapes, numbers, the
// three literals) and rejects everything else -- notably the bare `nan` /
// `inf` tokens that a printf-based serializer leaks for non-finite
// doubles, which is the regression these tests guard against.
#ifndef DMT_TESTS_JSON_CHECK_H_
#define DMT_TESTS_JSON_CHECK_H_

#include <cctype>
#include <cstddef>
#include <string_view>

namespace dmt::testjson {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool ParseValue() {
    if (depth_ > 64) return false;  // defensive bound, not a JSON rule
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    ++depth_;
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    ++depth_;
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool ParseString() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!ConsumeDigits()) return false;
    // No leading zeros: "0" alone or a non-zero first digit.
    const std::size_t int_start = text_[start] == '-' ? start + 1 : start;
    if (text_[int_start] == '0' && pos_ - int_start > 1) return false;
    if (Peek() == '.') {
      ++pos_;
      if (!ConsumeDigits()) return false;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!ConsumeDigits()) return false;
    }
    return true;
  }

  bool ConsumeDigits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

inline bool IsValidJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace dmt::testjson

#endif  // DMT_TESTS_JSON_CHECK_H_
