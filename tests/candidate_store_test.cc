// Edge cases of the SoA candidate store introduced by the training-kernel
// PR: the bounded store must evict (never grow past max_candidates),
// degenerate one-sided candidates must never win a split, and the SoA gain
// path (fused difference-norm kernels over matrix rows) must reproduce the
// legacy AoS computation bit-for-bit on real stream data.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/types.h"
#include "dmt/core/candidate.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/linear/glm.h"
#include "dmt/streams/agrawal.h"
#include "dmt/streams/sea.h"

namespace dmt::core {
namespace {

constexpr double kLambda = 0.2;
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(CandidateStoreTest, AppendResetClearMechanics) {
  CandidateStore store(3);
  EXPECT_TRUE(store.empty());

  const std::size_t a = store.Append(1, 0.5);
  const std::size_t b = store.Append(2, -1.0);
  EXPECT_EQ(store.size(), 2u);
  store.loss(a) = 4.0;
  store.count(a) = 2.0;
  store.grad(a)[0] = 1.0;
  EXPECT_TRUE(store.Contains(1, 0.5));
  EXPECT_TRUE(store.Contains(2, -1.0));
  EXPECT_FALSE(store.Contains(1, -1.0));

  // Reset re-keys the row and zeroes every statistic.
  store.Reset(a, 7, 9.0);
  EXPECT_EQ(store.feature(a), 7);
  EXPECT_EQ(store.value(a), 9.0);
  EXPECT_EQ(store.loss(a), 0.0);
  EXPECT_EQ(store.count(a), 0.0);
  EXPECT_EQ(store.grad(a)[0], 0.0);
  EXPECT_FALSE(store.Contains(1, 0.5));

  // Clear rewinds the logical size; re-appending reuses the rows and hands
  // them back zeroed even though the backing arrays were never shrunk.
  store.grad(b)[2] = 3.0;
  store.Clear();
  EXPECT_TRUE(store.empty());
  const std::size_t c = store.Append(4, 2.0);
  EXPECT_EQ(c, 0u);
  EXPECT_EQ(store.loss(c), 0.0);
  EXPECT_EQ(store.grad(c)[0], 0.0);
}

TEST(CandidateStoreTest, DegenerateOneSidedCandidatesNeverWin) {
  CandidateStore store(2);
  const double node_loss = 10.0;
  const std::vector<double> node_grad = {3.0, -1.0};
  const double node_count = 8.0;

  // Candidate 0: empty left child. Candidate 1: left child swallows the
  // whole node. Both are one-sided and must yield -infinity.
  store.Append(0, 0.5);
  store.Append(1, 0.5);
  store.count(1) = node_count;
  store.loss(1) = node_loss;
  EXPECT_EQ(CandidateGain(store, 0, node_loss, node_grad, node_count,
                          node_loss, kLambda),
            -kInf);
  EXPECT_EQ(CandidateGain(store, 1, node_loss, node_grad, node_count,
                          node_loss, kLambda),
            -kInf);

  // An all-degenerate store has no best candidate.
  double best_gain = 0.0;
  EXPECT_EQ(BestCandidate(store, node_loss, node_grad, node_count, node_loss,
                          kLambda, &best_gain),
            -1);
  EXPECT_EQ(best_gain, -kInf);

  // One genuine two-sided candidate wins over any number of degenerates.
  const std::size_t ok = store.Append(0, 0.7);
  store.loss(ok) = 4.0;
  store.count(ok) = 3.0;
  store.grad(ok)[0] = 1.0;
  EXPECT_EQ(BestCandidate(store, node_loss, node_grad, node_count, node_loss,
                          kLambda, &best_gain),
            static_cast<int>(ok));
  EXPECT_TRUE(std::isfinite(best_gain));
}

TEST(CandidateStoreTest, TreeStoreNeverExceedsMaxCandidates) {
  const std::size_t kMax = 4;
  DmtConfig config;
  config.num_features = 3;
  config.num_classes = 2;
  config.max_candidates = kMax;
  config.epsilon = 1e-12;  // conservative: keep the root a leaf
  DynamicModelTree tree(config);

  Rng rng(7);
  Batch batch(3, 64);
  for (int round = 0; round < 40; ++round) {
    batch.clear();
    for (int i = 0; i < 64; ++i) {
      // Every value is fresh, so each batch proposes new candidates and the
      // bounded store must evict to admit them.
      const std::vector<double> x = {rng.Uniform(), rng.Uniform(),
                                     rng.Uniform()};
      batch.Add(x, x[0] + x[1] > 1.0 ? 1 : 0);
    }
    tree.PartialFit(batch);
    EXPECT_LE(tree.DiagnoseRoot().num_candidates, kMax);
  }
  // With fresh proposals every batch the bound is actually reached.
  EXPECT_EQ(tree.DiagnoseRoot().num_candidates, kMax);
}

// Drives one generator through a GLM and accumulates per-candidate
// statistics into the SoA store and a legacy AoS mirror with identical
// arithmetic, then demands bit-identical gains from the two layouts. The
// legacy right-child loss materializes the difference gradient (the
// pre-refactor formulation); the SoA path uses the fused kernel.
void ExpectSoaMatchesLegacy(streams::Stream* stream) {
  const int m = static_cast<int>(stream->num_features());
  linear::GlmConfig glm_config;
  glm_config.num_features = m;
  glm_config.num_classes = static_cast<int>(stream->num_classes());
  linear::Glm model(glm_config);
  const std::size_t k = static_cast<std::size_t>(model.num_params());

  Batch batch(m);
  ASSERT_GT(stream->FillBatch(200, &batch), 0u);

  // Candidate grid: a few observed values per feature.
  CandidateStore store(k);
  std::vector<CandidateStats> legacy;
  for (int f = 0; f < m; ++f) {
    for (std::size_t r = 0; r < 4; ++r) {
      store.Append(f, batch.row(r * 31 % batch.size())[f]);
      legacy.emplace_back(f, batch.row(r * 31 % batch.size())[f], k);
    }
  }

  double node_loss = 0.0;
  std::vector<double> node_grad(k, 0.0);
  double node_count = 0.0;
  std::vector<double> sample_grad(k);
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const double loss =
          model.LossAndGradientOne(batch.row(i), batch.label(i), sample_grad);
      node_loss += loss;
      node_count += 1.0;
      for (std::size_t j = 0; j < k; ++j) node_grad[j] += sample_grad[j];
      for (std::size_t c = 0; c < store.size(); ++c) {
        if (batch.row(i)[store.feature(c)] > store.value(c)) continue;
        store.loss(c) += loss;
        store.count(c) += 1.0;
        auto grad = store.grad(c);
        for (std::size_t j = 0; j < k; ++j) grad[j] += sample_grad[j];
        legacy[c].loss += loss;
        legacy[c].count += 1.0;
        for (std::size_t j = 0; j < k; ++j) {
          legacy[c].grad[j] += sample_grad[j];
        }
      }
    }
    model.Fit(batch);  // move the parameters between rounds
    batch.clear();
    ASSERT_GT(stream->FillBatch(200, &batch), 0u);
  }

  std::vector<double> diff(k);
  for (std::size_t c = 0; c < store.size(); ++c) {
    ASSERT_EQ(store.loss(c), legacy[c].loss);
    ASSERT_EQ(store.count(c), legacy[c].count);
    const double soa_gain = CandidateGain(store, c, node_loss, node_grad,
                                          node_count, node_loss, kLambda);
    if (legacy[c].count <= 0.0 || legacy[c].count >= node_count) {
      EXPECT_EQ(soa_gain, -kInf);
      continue;
    }
    const double left = ApproxCandidateLoss(legacy[c].loss, legacy[c].grad,
                                            legacy[c].count, kLambda);
    for (std::size_t j = 0; j < k; ++j) {
      diff[j] = node_grad[j] - legacy[c].grad[j];
    }
    const double right =
        ApproxCandidateLoss(node_loss - legacy[c].loss, diff,
                            node_count - legacy[c].count, kLambda);
    EXPECT_EQ(soa_gain, node_loss - left - right)
        << "candidate " << c << " (feature " << store.feature(c) << ")";
  }
}

TEST(CandidateStoreTest, SoaGainsMatchLegacyOnSea) {
  streams::SeaGenerator stream({.seed = 11});
  ExpectSoaMatchesLegacy(&stream);
}

TEST(CandidateStoreTest, SoaGainsMatchLegacyOnAgrawal) {
  streams::AgrawalGenerator stream({.seed = 12});
  ExpectSoaMatchesLegacy(&stream);
}

// --- Feature-order cache (BeginFeatureOrders / FeatureOrder) --------------
// The scheduler PR made the per-feature batch sort lazy; these pin the
// properties every scatter depends on: the (value, row index) key is a
// total order even under duplicate values, the whole-batch order filtered
// through a node's membership mask IS the node-local sort, and lazy
// sorting is memoized without changing the result.

TEST(FeatureOrderTest, DuplicateValuesTieBreakByRowIndex) {
  // Feature 0 carries heavy duplicates in scrambled row order; the sort
  // key (value, row index) must yield exactly one valid order.
  const std::vector<double> values = {2.0, 1.0, 2.0, 1.0, 1.0, 3.0, 2.0};
  Batch batch(2);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::vector<double> x = {values[i], static_cast<double>(i)};
    batch.Add(x, 0);
  }
  TrainScratch scratch;
  BeginFeatureOrders(batch, 2, &scratch);
  const std::uint32_t* order = FeatureOrder(batch, 0, &scratch);
  const std::vector<std::uint32_t> expected = {1, 3, 4, 0, 2, 6, 5};
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(order[i], expected[i]) << "position " << i;
  }
}

TEST(FeatureOrderTest, MaskFilteredOrderEqualsIndependentNodeSort) {
  // A node's rows are a subset of the batch; filtering the whole-batch
  // order through the membership mask must reproduce the order an
  // independent sort of just the node's rows would give -- including ties.
  streams::SeaGenerator stream({.seed = 21});
  Batch batch(stream.num_features());
  ASSERT_GT(stream.FillBatch(256, &batch), 0u);
  // Inject duplicates so the tie-break path is exercised on every feature.
  for (std::size_t i = 0; i + 4 < batch.size(); i += 5) {
    for (std::size_t j = 0; j < batch.num_features(); ++j) {
      batch.mutable_row(i + 4)[j] = batch.row(i)[j];
    }
  }
  // Every third row belongs to the "node".
  std::vector<std::size_t> node_rows;
  std::vector<char> in_node(batch.size(), 0);
  for (std::size_t r = 0; r < batch.size(); r += 3) {
    node_rows.push_back(r);
    in_node[r] = 1;
  }
  TrainScratch scratch;
  BeginFeatureOrders(batch, static_cast<int>(batch.num_features()), &scratch);
  for (int j = 0; j < static_cast<int>(batch.num_features()); ++j) {
    const std::uint32_t* order = FeatureOrder(batch, j, &scratch);
    std::vector<std::uint32_t> filtered;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (in_node[order[i]]) filtered.push_back(order[i]);
    }
    std::vector<std::uint32_t> independent(node_rows.begin(),
                                           node_rows.end());
    std::sort(independent.begin(), independent.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const double va = batch.row(a)[j];
                const double vb = batch.row(b)[j];
                return va < vb || (va == vb && a < b);
              });
    ASSERT_EQ(filtered.size(), independent.size());
    for (std::size_t i = 0; i < filtered.size(); ++i) {
      EXPECT_EQ(filtered[i], independent[i])
          << "feature " << j << " position " << i;
    }
  }
}

TEST(FeatureOrderTest, LazySortMatchesEagerAndMemoizes) {
  streams::AgrawalGenerator stream({.seed = 22});
  const int m = static_cast<int>(stream.num_features());
  Batch batch(stream.num_features());
  ASSERT_GT(stream.FillBatch(200, &batch), 0u);

  TrainScratch eager;
  ComputeFeatureOrders(batch, m, &eager);

  TrainScratch lazy;
  BeginFeatureOrders(batch, m, &lazy);
  // Ask in reverse order to rule out accidental position dependence.
  for (int j = m - 1; j >= 0; --j) {
    const std::uint32_t* order = FeatureOrder(batch, j, &lazy);
    const std::uint32_t* expected =
        eager.feature_order.data() + static_cast<std::size_t>(j) * batch.size();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(order[i], expected[i]) << "feature " << j;
    }
  }

  // Memoization: a second request must return the cached order, not
  // re-sort. Scribble over the stored order and observe it come back
  // verbatim (FeatureOrder may not touch a ready feature's slots).
  std::uint32_t* slot = lazy.feature_order.data();
  std::swap(slot[0], slot[1]);
  const std::uint32_t* again = FeatureOrder(batch, 0, &lazy);
  EXPECT_EQ(again[0], slot[0]);
  EXPECT_EQ(again[1], slot[1]);

  // A new batch boundary invalidates the cache: the scribble must be
  // repaired by the fresh sort.
  BeginFeatureOrders(batch, m, &lazy);
  const std::uint32_t* fresh = FeatureOrder(batch, 0, &lazy);
  const std::uint32_t* expected0 = eager.feature_order.data();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(fresh[i], expected0[i]);
  }
}

}  // namespace
}  // namespace dmt::core
