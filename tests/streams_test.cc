#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/streams/agrawal.h"
#include "dmt/streams/concept_stream.h"
#include "dmt/streams/datasets.h"
#include "dmt/streams/hyperplane.h"
#include "dmt/streams/scaler.h"
#include "dmt/streams/sea.h"

namespace dmt::streams {
namespace {

TEST(SeaTest, FeatureRangesAndLabelRule) {
  SeaConfig config;
  config.noise = 0.0;
  config.total_samples = 1000;
  SeaGenerator gen(config);
  Instance instance;
  while (gen.NextInstance(&instance)) {
    for (double v : instance.x) {
      ASSERT_GE(v, 0.0);
      ASSERT_LT(v, 10.0);
    }
    const int expected = instance.x[0] + instance.x[1] <= 8.0 ? 1 : 0;
    ASSERT_EQ(instance.y, expected);
  }
}

TEST(SeaTest, StreamEndsAtTotalSamples) {
  SeaConfig config;
  config.total_samples = 50;
  SeaGenerator gen(config);
  Instance instance;
  int count = 0;
  while (gen.NextInstance(&instance)) ++count;
  EXPECT_EQ(count, 50);
  EXPECT_FALSE(gen.NextInstance(&instance));
}

TEST(SeaTest, DriftChangesClassificationFunction) {
  SeaConfig config;
  config.noise = 0.0;
  config.total_samples = 200;
  config.drift_points = {100};
  SeaGenerator gen(config);
  Instance instance;
  for (int i = 0; i < 100; ++i) gen.NextInstance(&instance);
  EXPECT_EQ(gen.active_function(), 0);
  gen.NextInstance(&instance);
  EXPECT_EQ(gen.active_function(), 1);
}

TEST(SeaTest, NoiseFlipsRoughlyTenPercent) {
  SeaConfig config;
  config.noise = 0.1;
  config.total_samples = 20000;
  SeaGenerator gen(config);
  Instance instance;
  int flipped = 0;
  int total = 0;
  while (gen.NextInstance(&instance)) {
    const int clean = instance.x[0] + instance.x[1] <= 8.0 ? 1 : 0;
    flipped += instance.y != clean;
    ++total;
  }
  EXPECT_NEAR(static_cast<double>(flipped) / total, 0.1, 0.02);
}

TEST(AgrawalTest, FunctionZeroDependsOnAgeOnly) {
  std::vector<double> x(9, 0.0);
  x[2] = 30.0;  // age
  EXPECT_EQ(AgrawalGenerator::Classify(0, x), 0);
  x[2] = 50.0;
  EXPECT_EQ(AgrawalGenerator::Classify(0, x), 1);
  x[2] = 70.0;
  EXPECT_EQ(AgrawalGenerator::Classify(0, x), 0);
}

TEST(AgrawalTest, DisposableIncomeFunctions) {
  std::vector<double> x(9, 0.0);
  x[0] = 120e3;  // salary
  x[8] = 0.0;    // loan
  // F7: 2/3 * 120k - 0 - 20k > 0 -> class 0.
  EXPECT_EQ(AgrawalGenerator::Classify(6, x), 0);
  x[8] = 500e3;  // 2/3*120k - 100k - 20k < 0 -> class 1.
  EXPECT_EQ(AgrawalGenerator::Classify(6, x), 1);
}

TEST(AgrawalTest, GeneratesBothClassesWithNineFeatures) {
  AgrawalConfig config;
  config.total_samples = 2000;
  AgrawalGenerator gen(config);
  Instance instance;
  std::set<int> labels;
  while (gen.NextInstance(&instance)) {
    ASSERT_EQ(instance.x.size(), 9u);
    labels.insert(instance.y);
  }
  EXPECT_EQ(labels.size(), 2u);
}

TEST(AgrawalTest, IncrementalDriftCommitsFunctionSwitch) {
  AgrawalConfig config;
  config.total_samples = 1000;
  config.drift_windows = {{200, 400}};
  AgrawalGenerator gen(config);
  Instance instance;
  for (int i = 0; i < 150; ++i) gen.NextInstance(&instance);
  EXPECT_EQ(gen.active_function(), 0);
  for (int i = 0; i < 400; ++i) gen.NextInstance(&instance);
  EXPECT_EQ(gen.active_function(), 1);
}

TEST(HyperplaneTest, WeightsDriftOverTime) {
  HyperplaneConfig config;
  config.num_features = 10;
  config.num_drift_features = 10;
  config.mag_change = 0.01;
  config.sigma = 0.0;
  config.total_samples = 1000;
  HyperplaneGenerator gen(config);
  const std::vector<double> before = gen.weights();
  Instance instance;
  for (int i = 0; i < 500; ++i) gen.NextInstance(&instance);
  const std::vector<double> after = gen.weights();
  double moved = 0.0;
  for (std::size_t j = 0; j < before.size(); ++j) {
    moved += std::abs(after[j] - before[j]);
  }
  EXPECT_GT(moved, 1.0);
}

TEST(HyperplaneTest, NoiselessLabelsMatchHyperplaneRule) {
  HyperplaneConfig config;
  config.num_features = 5;
  config.mag_change = 0.0;
  config.noise = 0.0;
  config.sigma = 0.0;
  config.total_samples = 500;
  HyperplaneGenerator gen(config);
  const std::vector<double> w = gen.weights();
  double w_sum = 0.0;
  for (double v : w) w_sum += v;
  Instance instance;
  while (gen.NextInstance(&instance)) {
    double activation = 0.0;
    for (std::size_t j = 0; j < w.size(); ++j) {
      activation += w[j] * instance.x[j];
    }
    ASSERT_EQ(instance.y, activation >= 0.5 * w_sum ? 1 : 0);
  }
}

TEST(ConceptStreamTest, RespectsSchemaAndPriors) {
  ConceptStreamConfig config;
  config.num_features = 6;
  config.num_classes = 3;
  config.class_priors = {0.7, 0.2, 0.1};
  config.total_samples = 20000;
  config.seed = 5;
  ConceptStream stream(config);
  Instance instance;
  std::vector<int> counts(3, 0);
  while (stream.NextInstance(&instance)) {
    ASSERT_EQ(instance.x.size(), 6u);
    ASSERT_GE(instance.y, 0);
    ASSERT_LT(instance.y, 3);
    ++counts[instance.y];
  }
  const double majority = static_cast<double>(counts[0]) / 20000.0;
  EXPECT_NEAR(majority, 0.7, 0.08);
  EXPECT_GT(counts[1], counts[2]);
}

TEST(ConceptStreamTest, AbruptDriftChangesPosterior) {
  ConceptStreamConfig config;
  config.num_features = 4;
  config.num_classes = 2;
  config.drift_events = {{0.5, 0.5}};
  config.total_samples = 2000;
  config.seed = 7;
  ConceptStream stream(config);
  // Probe the posterior at many points before and after the drift; a fresh
  // random teacher almost surely disagrees somewhere.
  Rng probe_rng(123);
  std::vector<std::vector<double>> probes;
  for (int p = 0; p < 50; ++p) {
    std::vector<double> probe(4);
    for (double& v : probe) v = probe_rng.Uniform();
    probes.push_back(std::move(probe));
  }
  Instance instance;
  for (int i = 0; i < 900; ++i) stream.NextInstance(&instance);
  std::vector<double> before;
  for (const auto& probe : probes) before.push_back(stream.Posterior(probe)[0]);
  for (int i = 0; i < 300; ++i) stream.NextInstance(&instance);
  double max_diff = 0.0;
  for (std::size_t p = 0; p < probes.size(); ++p) {
    max_diff =
        std::max(max_diff, std::abs(stream.Posterior(probes[p])[0] - before[p]));
  }
  EXPECT_GT(max_diff, 0.1);
}

TEST(ConceptStreamTest, LinearTeacherIsLearnableByLogit) {
  ConceptStreamConfig config;
  config.teacher = TeacherKind::kLinear;
  config.num_features = 5;
  config.num_classes = 2;
  config.total_samples = 5000;
  ConceptStream stream(config);
  // The posterior must actually vary with x (informative features).
  Instance a;
  Instance b;
  stream.NextInstance(&a);
  stream.NextInstance(&b);
  const std::vector<double> pa = stream.Posterior(a.x);
  const std::vector<double> pb = stream.Posterior(b.x);
  EXPECT_NEAR(pa[0] + pa[1], 1.0, 1e-9);
  EXPECT_NEAR(pb[0] + pb[1], 1.0, 1e-9);
}

TEST(DatasetsTest, RegistryMatchesTableOne) {
  const std::vector<DatasetSpec> specs = AllDatasets();
  ASSERT_EQ(specs.size(), 13u);
  const DatasetSpec& electricity = specs[0];
  EXPECT_EQ(electricity.name, "Electricity");
  EXPECT_EQ(electricity.full_samples, 45'312u);
  EXPECT_EQ(electricity.num_features, 8u);
  EXPECT_EQ(electricity.num_classes, 2u);
  const DatasetSpec& kdd = DatasetByName("KDD");
  EXPECT_EQ(kdd.num_classes, 23u);
  EXPECT_EQ(kdd.num_features, 41u);
  const DatasetSpec& hyperplane = DatasetByName("Hyperplane");
  EXPECT_EQ(hyperplane.num_features, 50u);
}

TEST(DatasetsTest, EveryDatasetBuildsAndEmits) {
  for (const DatasetSpec& spec : AllDatasets()) {
    std::unique_ptr<Stream> stream = spec.make(100, 3);
    ASSERT_EQ(stream->num_features(), spec.num_features) << spec.name;
    ASSERT_EQ(stream->num_classes(), spec.num_classes) << spec.name;
    Instance instance;
    int count = 0;
    while (stream->NextInstance(&instance)) {
      ASSERT_EQ(instance.x.size(), spec.num_features);
      ASSERT_LT(instance.y, static_cast<int>(spec.num_classes));
      ++count;
    }
    EXPECT_EQ(count, 100) << spec.name;
  }
}

TEST(DatasetsTest, ImbalancedPriorsSumToOne) {
  for (std::size_t c : {2u, 6u, 9u, 23u}) {
    const std::vector<double> priors = ImbalancedPriors(c, 0.57);
    ASSERT_EQ(priors.size(), c);
    double sum = 0.0;
    for (double p : priors) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_NEAR(priors[0], 0.57, 1e-9);
    for (std::size_t i = 2; i < c; ++i) EXPECT_LT(priors[i], priors[i - 1]);
  }
}

TEST(DatasetsTest, EffectiveSamplesCapsAtFullSize) {
  const DatasetSpec spec = DatasetByName("Gas");
  EXPECT_EQ(EffectiveSamples(spec, 0), 13'910u);
  EXPECT_EQ(EffectiveSamples(spec, 5000), 5000u);
  EXPECT_EQ(EffectiveSamples(spec, 1'000'000), 13'910u);
}

TEST(ScalerTest, MapsBatchIntoUnitRange) {
  OnlineMinMaxScaler scaler(2);
  Batch batch(2);
  batch.Add(std::vector<double>{-5.0, 100.0}, 0);
  batch.Add(std::vector<double>{5.0, 300.0}, 1);
  batch.Add(std::vector<double>{0.0, 200.0}, 0);
  scaler.FitTransform(&batch);
  // Per-row update-then-transform: the first row only knows itself (zero
  // range -> midpoint); later rows see the ranges of the rows before them.
  EXPECT_DOUBLE_EQ(batch.row(0)[0], 0.5);
  EXPECT_DOUBLE_EQ(batch.row(1)[0], 1.0);
  EXPECT_DOUBLE_EQ(batch.row(2)[0], 0.5);
  EXPECT_DOUBLE_EQ(batch.row(2)[1], 0.5);
}

// Regression: FitTransform used to fold the WHOLE batch into the min/max
// before rescaling any row, so an extreme value at the end of the batch
// changed how earlier rows were normalized -- future leakage under the
// test-then-train protocol. Each row may only be scaled with the ranges
// known before it arrived.
TEST(ScalerTest, NoFutureLeakWithinBatch) {
  OnlineMinMaxScaler scaler(1);
  Batch warmup(1);
  warmup.Add(std::vector<double>{0.0}, 0);
  warmup.Add(std::vector<double>{10.0}, 0);
  scaler.FitTransform(&warmup);

  Batch batch(1);
  batch.Add(std::vector<double>{5.0}, 0);    // scaled against [0, 10]
  batch.Add(std::vector<double>{100.0}, 0);  // widens the range afterwards
  scaler.FitTransform(&batch);
  // The old batch-level code gave row(0) (5 - 0) / 100 = 0.05.
  EXPECT_DOUBLE_EQ(batch.row(0)[0], 0.5);
  EXPECT_DOUBLE_EQ(batch.row(1)[0], 1.0);
}

TEST(ScalerTest, ConstantFeatureMapsToMidpoint) {
  OnlineMinMaxScaler scaler(1);
  Batch batch(1);
  batch.Add(std::vector<double>{3.0}, 0);
  batch.Add(std::vector<double>{3.0}, 1);
  scaler.FitTransform(&batch);
  EXPECT_DOUBLE_EQ(batch.row(0)[0], 0.5);
}

TEST(ScalerTest, RangesPersistAcrossBatches) {
  OnlineMinMaxScaler scaler(1);
  Batch first(1);
  first.Add(std::vector<double>{0.0}, 0);
  first.Add(std::vector<double>{10.0}, 0);
  scaler.FitTransform(&first);
  Batch second(1);
  second.Add(std::vector<double>{5.0}, 0);
  scaler.FitTransform(&second);
  EXPECT_DOUBLE_EQ(second.row(0)[0], 0.5);
}

TEST(StreamTest, FillBatchStopsAtStreamEnd) {
  SeaConfig config;
  config.total_samples = 30;
  SeaGenerator gen(config);
  Batch batch(3);
  EXPECT_EQ(gen.FillBatch(20, &batch), 20u);
  batch.clear();
  EXPECT_EQ(gen.FillBatch(20, &batch), 10u);
}

}  // namespace
}  // namespace dmt::streams
