#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/ensemble/online_boosting.h"
#include "dmt/eval/metrics.h"

namespace dmt {
namespace {

TEST(KappaTest, PerfectAgreementIsOne) {
  eval::ConfusionMatrix cm(3);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i <= c; ++i) cm.Add(c, c);
  }
  EXPECT_DOUBLE_EQ(cm.CohensKappa(), 1.0);
  EXPECT_DOUBLE_EQ(cm.KappaM(), 1.0);
}

TEST(KappaTest, MajorityOnlyPredictorScoresZeroKappaM) {
  // 80/20 binary stream, always predicting the majority class.
  eval::ConfusionMatrix cm(2);
  for (int i = 0; i < 80; ++i) cm.Add(0, 0);
  for (int i = 0; i < 20; ++i) cm.Add(0, 1);
  EXPECT_DOUBLE_EQ(cm.KappaM(), 0.0);
  // Cohen's kappa is also zero: no agreement beyond chance.
  EXPECT_NEAR(cm.CohensKappa(), 0.0, 1e-12);
}

TEST(KappaTest, MatchesHandComputedExample) {
  // Classic 2x2 example: a=20 (both yes), d=15 (both no), b=5, c=10.
  eval::ConfusionMatrix cm(2);
  for (int i = 0; i < 20; ++i) cm.Add(1, 1);
  for (int i = 0; i < 5; ++i) cm.Add(1, 0);
  for (int i = 0; i < 10; ++i) cm.Add(0, 1);
  for (int i = 0; i < 15; ++i) cm.Add(0, 0);
  // p0 = 35/50 = 0.7; pe = (25*30 + 25*20) / 50^2 = 0.5; kappa = 0.4.
  EXPECT_NEAR(cm.CohensKappa(), 0.4, 1e-12);
}

TEST(KappaTest, BelowMajorityBaselineIsNegative) {
  eval::ConfusionMatrix cm(2);
  // 90% majority class but the model predicts the minority often and is
  // right less often than majority voting would be.
  for (int i = 0; i < 60; ++i) cm.Add(0, 0);
  for (int i = 0; i < 30; ++i) cm.Add(1, 0);  // wrong on majority
  for (int i = 0; i < 10; ++i) cm.Add(1, 1);
  EXPECT_LT(cm.KappaM(), 0.0);
}

TEST(OnlineBoostingTest, LearnsSimpleConcept) {
  ensemble::OnlineBoosting boost(
      {.num_features = 2, .num_classes = 2, .num_learners = 3});
  Rng rng(1);
  Batch batch(2);
  for (int i = 0; i < 6000; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform()};
    batch.Add(x, x[0] <= 0.5 ? 0 : 1);
  }
  boost.PartialFit(batch);
  int correct = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform()};
    correct += boost.Predict(x) == (x[0] <= 0.5 ? 0 : 1);
  }
  EXPECT_GT(correct, 450);
}

TEST(OnlineBoostingTest, UniformBeforeTraining) {
  ensemble::OnlineBoosting boost(
      {.num_features = 2, .num_classes = 4, .num_learners = 2});
  std::vector<double> x = {0.5, 0.5};
  const std::vector<double> proba = boost.PredictProba(x);
  double sum = 0.0;
  for (double p : proba) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(OnlineBoostingTest, ComplexitySumsMembers) {
  ensemble::OnlineBoosting boost(
      {.num_features = 2, .num_classes = 2, .num_learners = 3});
  EXPECT_EQ(boost.NumSplits(), 0u);
  EXPECT_EQ(boost.NumParameters(), 3u);  // 3 empty majority leaves
}

}  // namespace
}  // namespace dmt
