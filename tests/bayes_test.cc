#include <vector>

#include <gtest/gtest.h>

#include "dmt/bayes/gaussian_nb.h"
#include "dmt/common/random.h"
#include "dmt/common/types.h"

namespace dmt::bayes {
namespace {

TEST(GaussianEstimatorTest, MeanAndVariance) {
  GaussianEstimator est;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) est.Add(v);
  EXPECT_DOUBLE_EQ(est.mean, 3.0);
  EXPECT_NEAR(est.variance(), 2.0, 1e-12);  // population variance
}

TEST(GaussianEstimatorTest, LogPdfPeaksAtMean) {
  GaussianEstimator est;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) est.Add(rng.Gaussian(0.5, 0.1));
  EXPECT_GT(est.LogPdf(0.5), est.LogPdf(0.9));
  EXPECT_GT(est.LogPdf(0.5), est.LogPdf(0.1));
}

TEST(GaussianNbTest, UniformBeforeAnyData) {
  GaussianNaiveBayes nb(3, 4);
  std::vector<double> x = {0.1, 0.2, 0.3};
  const std::vector<double> proba = nb.PredictProba(x);
  for (double p : proba) EXPECT_NEAR(p, 0.25, 1e-9);
}

TEST(GaussianNbTest, SeparatesGaussianClusters) {
  GaussianNaiveBayes nb(2, 2);
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const int c = rng.UniformInt(0, 1);
    const double center = c == 0 ? 0.25 : 0.75;
    std::vector<double> x = {rng.Gaussian(center, 0.05),
                             rng.Gaussian(center, 0.05)};
    nb.Update(x, c);
  }
  std::vector<double> lo = {0.25, 0.25};
  std::vector<double> hi = {0.75, 0.75};
  EXPECT_EQ(nb.Predict(lo), 0);
  EXPECT_EQ(nb.Predict(hi), 1);
}

TEST(GaussianNbTest, MajorityClassFollowsCounts) {
  GaussianNaiveBayes nb(1, 3);
  std::vector<double> x = {0.5};
  nb.Update(x, 2);
  nb.Update(x, 2);
  nb.Update(x, 0);
  EXPECT_EQ(nb.MajorityClass(), 2);
  EXPECT_EQ(nb.total_count(), 3u);
}

TEST(GaussianNbTest, HandlesConstantFeatureWithoutNan) {
  GaussianNaiveBayes nb(1, 2);
  std::vector<double> x = {0.5};
  for (int i = 0; i < 100; ++i) nb.Update(x, i % 2);
  const std::vector<double> proba = nb.PredictProba(x);
  EXPECT_TRUE(std::isfinite(proba[0]));
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-9);
}

// Regression: a never-observed class used to keep its Laplace log-prior
// with no likelihood term, letting it out-score every seen class whenever
// the query point sat in a low-likelihood region of the seen classes.
TEST(GaussianNbTest, UnseenClassNeverWinsArgmax) {
  GaussianNaiveBayes nb(1, 3);
  Rng rng(4);
  // Train classes 0 and 1 only, with tight clusters; class 2 stays empty.
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x0 = {rng.Gaussian(0.2, 0.01)};
    std::vector<double> x1 = {rng.Gaussian(0.8, 0.01)};
    nb.Update(x0, 0);
    nb.Update(x1, 1);
  }
  // Far from both clusters: every seen class has a very negative
  // log-likelihood, which the prior-only score of class 2 used to beat.
  std::vector<double> x = {0.5};
  EXPECT_NE(nb.Predict(x), 2);
  const std::vector<double> proba = nb.PredictProba(x);
  EXPECT_DOUBLE_EQ(proba[2], 0.0);
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-9);
}

TEST(GaussianNbTest, PriorsDominateWhenFeaturesUninformative) {
  GaussianNaiveBayes nb(1, 2);
  Rng rng(3);
  // 90/10 class split, identical feature distributions.
  for (int i = 0; i < 5000; ++i) {
    std::vector<double> x = {rng.Uniform()};
    nb.Update(x, rng.Bernoulli(0.9) ? 1 : 0);
  }
  std::vector<double> x = {0.5};
  EXPECT_EQ(nb.Predict(x), 1);
}

}  // namespace
}  // namespace dmt::bayes
