#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/linear/glm.h"

namespace dmt::linear {
namespace {

Batch MakeSeparable(Rng* rng, int n) {
  Batch batch(2);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x = {rng->Uniform(), rng->Uniform()};
    batch.Add(x, x[0] + x[1] > 1.0 ? 1 : 0);
  }
  return batch;
}

double Accuracy(const Glm& model, const Batch& batch) {
  int correct = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    correct += model.Predict(batch.row(i)) == batch.label(i);
  }
  return static_cast<double>(correct) / static_cast<double>(batch.size());
}

// All optimizers must learn the separable concept.
class OptimizerTest : public ::testing::TestWithParam<Optimizer> {};

TEST_P(OptimizerTest, LearnsSeparableConcept) {
  Glm model({.num_features = 2,
             .num_classes = 2,
             .learning_rate = 0.1,
             .optimizer = GetParam(),
             .seed = 3});
  Rng rng(1);
  for (int epoch = 0; epoch < 30; ++epoch) {
    Batch batch = MakeSeparable(&rng, 200);
    model.Fit(batch);
  }
  Batch test = MakeSeparable(&rng, 1000);
  EXPECT_GT(Accuracy(model, test), 0.9);
}

TEST_P(OptimizerTest, MulticlassLearns) {
  Glm model({.num_features = 1,
             .num_classes = 3,
             .learning_rate = 0.2,
             .optimizer = GetParam(),
             .seed = 4});
  Rng rng(2);
  for (int epoch = 0; epoch < 60; ++epoch) {
    Batch batch(1);
    for (int i = 0; i < 150; ++i) {
      std::vector<double> x = {rng.Uniform()};
      batch.Add(x, x[0] <= 0.33 ? 0 : (x[0] <= 0.66 ? 1 : 2));
    }
    model.Fit(batch);
  }
  std::vector<double> lo = {0.1};
  std::vector<double> mid = {0.5};
  std::vector<double> hi = {0.9};
  EXPECT_EQ(model.Predict(lo), 0);
  EXPECT_EQ(model.Predict(mid), 1);
  EXPECT_EQ(model.Predict(hi), 2);
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerTest,
                         ::testing::Values(Optimizer::kSgd,
                                           Optimizer::kMomentum,
                                           Optimizer::kAdagrad));

TEST(OptimizerBehaviorTest, AdagradAdaptsPerCoordinate) {
  // Feature 0 has much larger raw scale than feature 1 (no normalization);
  // AdaGrad should still converge where plain SGD with the same rate
  // oscillates or underfits the small-scale coordinate.
  auto make = [](Optimizer optimizer) {
    return Glm({.num_features = 2,
                .num_classes = 2,
                .learning_rate = 0.05,
                .optimizer = optimizer,
                .seed = 5});
  };
  Glm adagrad = make(Optimizer::kAdagrad);
  Rng rng(6);
  Batch batch(2);
  for (int i = 0; i < 6000; ++i) {
    // x0 in [0,10], x1 in [0,0.1]; the label depends on x1 only.
    std::vector<double> x = {rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 0.1)};
    batch.Add(x, x[1] > 0.05 ? 1 : 0);
  }
  adagrad.Fit(batch);
  int correct = 0;
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> x = {rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 0.1)};
    correct += adagrad.Predict(x) == (x[1] > 0.05 ? 1 : 0);
  }
  EXPECT_GT(correct, 800);
}

TEST(OptimizerBehaviorTest, DmtRunsWithScheduledAndPenalizedModels) {
  // The DMT constructs its node models internally with plain SGD; this
  // guards that custom GLM configurations remain usable stand-alone next
  // to a DMT in the same process (no global state).
  core::DynamicModelTree tree({.num_features = 2, .num_classes = 2});
  Glm fancy({.num_features = 2,
             .num_classes = 2,
             .schedule = LearningRateSchedule::kInverseSqrt,
             .optimizer = Optimizer::kMomentum,
             .l1_penalty = 0.1});
  Rng rng(7);
  Batch batch = MakeSeparable(&rng, 2000);
  tree.PartialFit(batch);
  fancy.Fit(batch);
  EXPECT_GT(Accuracy(fancy, batch), 0.8);
}

}  // namespace
}  // namespace dmt::linear
