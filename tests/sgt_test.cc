#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/math.h"
#include "dmt/common/random.h"
#include "dmt/trees/sgt.h"

namespace dmt::trees {
namespace {

TEST(SgtTest, StartsAsZeroScoredLeaf) {
  StochasticGradientTree tree({.num_features = 2});
  std::vector<double> x = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(tree.Score(x), 0.0);
  EXPECT_EQ(tree.NumInnerNodes(), 0u);
  EXPECT_EQ(tree.NumLeaves(), 1u);
}

TEST(SgtTest, NewtonUpdatesPushScoreTowardLabel) {
  // Without splits (huge min gain), repeated all-positive labels must push
  // the leaf score up.
  StochasticGradientTree tree(
      {.num_features = 1, .grace_period = 50, .min_split_gain = 1e18});
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> x = {rng.Uniform()};
    tree.TrainInstance(x, 1);
  }
  std::vector<double> probe = {0.5};
  EXPECT_GT(tree.Score(probe), 1.0);
  EXPECT_EQ(tree.NumInnerNodes(), 0u);
}

TEST(SgtTest, SplitsOnAxisConcept) {
  StochasticGradientTree tree({.num_features = 2});
  Rng rng(2);
  for (int i = 0; i < 8000; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform()};
    tree.TrainInstance(x, x[0] <= 0.5 ? 0 : 1);
  }
  EXPECT_GE(tree.NumInnerNodes(), 1u);
  std::vector<double> lo = {0.2, 0.5};
  std::vector<double> hi = {0.8, 0.5};
  EXPECT_LT(Sigmoid(tree.Score(lo)), 0.5);
  EXPECT_GT(Sigmoid(tree.Score(hi)), 0.5);
}

TEST(SgtClassifierTest, BinaryAccuracyOnPiecewiseConcept) {
  // y = 1 on the right half; on the left half y follows x1. (A pure XOR has
  // no first-order marginal signal for ANY single-feature split criterion
  // -- one reason the paper's vector-valued candidate gradients are more
  // powerful -- so the SGT baseline gets a concept with marginal signal.)
  auto target_rule = [](const std::vector<double>& x) {
    return x[0] > 0.5 ? 1 : (x[1] > 0.5 ? 1 : 0);
  };
  SgtClassifier model({.num_features = 2}, 2);
  Rng rng(3);
  Batch batch(2);
  for (int i = 0; i < 8000; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform()};
    batch.Add(x, target_rule(x));
  }
  model.PartialFit(batch);
  int correct = 0;
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform()};
    correct += model.Predict(x) == target_rule(x);
  }
  EXPECT_GT(correct, 850);
}

TEST(SgtClassifierTest, MulticlassOneVsRest) {
  SgtClassifier model({.num_features = 1}, 3);
  Rng rng(4);
  Batch batch(1);
  for (int i = 0; i < 9000; ++i) {
    std::vector<double> x = {rng.Uniform()};
    batch.Add(x, x[0] <= 0.33 ? 0 : (x[0] <= 0.66 ? 1 : 2));
  }
  model.PartialFit(batch);
  std::vector<double> a = {0.1};
  std::vector<double> b = {0.5};
  std::vector<double> c = {0.9};
  EXPECT_EQ(model.Predict(a), 0);
  EXPECT_EQ(model.Predict(b), 1);
  EXPECT_EQ(model.Predict(c), 2);
  const std::vector<double> proba = model.PredictProba(b);
  double sum = 0.0;
  for (double p : proba) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(SgtClassifierTest, ComplexityCountsInnerNodes) {
  SgtClassifier model({.num_features = 2}, 2);
  EXPECT_EQ(model.NumSplits(), 0u);
  EXPECT_EQ(model.NumParameters(), 1u);  // one leaf value
}

}  // namespace
}  // namespace dmt::trees
