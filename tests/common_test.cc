#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/math.h"
#include "dmt/common/random.h"
#include "dmt/common/stats.h"
#include "dmt/common/table.h"
#include "dmt/common/types.h"

namespace dmt {
namespace {

TEST(MathTest, SigmoidMatchesClosedForm) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  EXPECT_NEAR(Sigmoid(-2.0), 1.0 / (1.0 + std::exp(2.0)), 1e-12);
}

TEST(MathTest, SigmoidIsStableAtExtremes) {
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(MathTest, LogSumExpMatchesNaiveOnSmallValues) {
  std::vector<double> z = {0.1, 0.2, 0.3};
  double naive = std::log(std::exp(0.1) + std::exp(0.2) + std::exp(0.3));
  EXPECT_NEAR(LogSumExp(z), naive, 1e-12);
}

TEST(MathTest, LogSumExpStableForLargeValues) {
  std::vector<double> z = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(z), 1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, SoftmaxSumsToOneAndPreservesOrder) {
  std::vector<double> z = {1.0, 3.0, 2.0};
  SoftmaxInPlace(z);
  EXPECT_NEAR(z[0] + z[1] + z[2], 1.0, 1e-12);
  EXPECT_GT(z[1], z[2]);
  EXPECT_GT(z[2], z[0]);
}

TEST(MathTest, SafeLogIsFiniteAtZeroAndOne) {
  EXPECT_TRUE(std::isfinite(SafeLog(0.0)));
  EXPECT_TRUE(std::isfinite(SafeLog(1.0)));
}

TEST(MathTest, DotAndNorm) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(SquaredNorm(a), 14.0);
}

TEST(RunningStatsTest, MeanAndVarianceMatchClosedForm) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 4.0, 1e-12);  // population variance
  EXPECT_NEAR(stats.stddev(), 2.0, 1e-12);
}

TEST(RunningStatsTest, EmptyAndSingleValue) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(SlidingWindowStatsTest, EvictsOldValues) {
  SlidingWindowStats window(3);
  window.Add(1.0);
  window.Add(2.0);
  window.Add(3.0);
  EXPECT_DOUBLE_EQ(window.mean(), 2.0);
  window.Add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(window.mean(), 5.0);
  EXPECT_EQ(window.count(), 3u);
}

TEST(RngTest, SeedsAreReproducible) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformIntCoversRangeInclusively) {
  Rng rng(1);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(0, 3);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(2);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Categorical(weights), 1);
}

TEST(BatchTest, RowsRoundTrip) {
  Batch batch(2);
  batch.Add(std::vector<double>{1.0, 2.0}, 0);
  batch.Add(std::vector<double>{3.0, 4.0}, 1);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(batch.row(1)[0], 3.0);
  EXPECT_EQ(batch.label(0), 0);
  batch.mutable_row(0)[0] = 9.0;
  EXPECT_DOUBLE_EQ(batch.row(0)[0], 9.0);
}

TEST(TableTest, RendersAlignedColumnsAndCsv) {
  TextTable table({"model", "f1"});
  table.AddRow({"DMT", MeanStdCell(0.781, 0.104)});
  const std::string text = table.ToString();
  EXPECT_NE(text.find("DMT"), std::string::npos);
  EXPECT_NE(text.find("0.78 +- 0.10"), std::string::npos);
  EXPECT_NE(table.ToCsv().find("DMT,0.78 +- 0.10"), std::string::npos);
}

}  // namespace
}  // namespace dmt
