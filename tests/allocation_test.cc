// Allocation-regression tests for the batch-first scoring core: once the
// scratch buffers are warm, scoring must not touch the heap. Guards the
// zero-allocation property that PR "batch-first scoring core" introduced
// for DMT, VFDT and ARF (and, via the same code paths, the other models).
//
// This test replaces the global allocator, so it builds as its own binary
// (dmt_allocation_test) and must never join the dmt_tests glob.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/alloc_count.h"
#include "dmt/common/random.h"
#include "dmt/common/types.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/ensemble/adaptive_random_forest.h"
#include "dmt/linear/glm.h"
#include "dmt/obs/telemetry.h"
#include "dmt/trees/vfdt.h"

DMT_DEFINE_COUNTING_ALLOCATOR();

// Sanitizers interpose their own allocator and bookkeeping; the counters
// would measure the sanitizer runtime, not the scoring core.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DMT_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DMT_UNDER_SANITIZER 1
#endif
#endif

namespace dmt {
namespace {

constexpr int kFeatures = 5;
constexpr int kClasses = 3;

// Trains `model` on a few thousand synthetic observations so trees grow
// real structure, then returns a probe batch drawn from the same concept.
Batch TrainAndMakeProbe(Classifier* model, std::uint64_t seed) {
  Rng rng(seed);
  Batch batch(kFeatures, 500);
  for (int round = 0; round < 6; ++round) {
    batch.clear();
    for (int i = 0; i < 500; ++i) {
      std::vector<double> x(kFeatures);
      for (double& v : x) v = rng.Uniform();
      const int y = x[0] <= 0.3 ? 0 : (x[1] <= 0.6 ? 1 : 2);
      batch.Add(x, y);
    }
    model->PartialFit(batch);
  }
  return batch;  // the last training batch doubles as the scoring probe
}

void ExpectZeroAllocScoring(Classifier* model, const Batch& probe) {
#ifdef DMT_UNDER_SANITIZER
  GTEST_SKIP() << "allocation counting is meaningless under sanitizers";
#else
  // Warm-up: sizes the Predict scratch, the ensemble member scratch and the
  // ProbaMatrix backing store.
  std::vector<double> proba_row(kClasses);
  ProbaMatrix proba;
  model->PredictProbaInto(probe.row(0), proba_row);
  (void)model->Predict(probe.row(0));
  model->PredictBatch(probe, &proba);

  // Steady state: every scoring entry point must be allocation-free.
  alloc_count::Reset();
  for (std::size_t i = 0; i < probe.size(); ++i) {
    model->PredictProbaInto(probe.row(i), proba_row);
  }
  EXPECT_EQ(alloc_count::allocations, 0u) << "PredictProbaInto allocated";

  alloc_count::Reset();
  for (std::size_t i = 0; i < probe.size(); ++i) {
    (void)model->Predict(probe.row(i));
  }
  EXPECT_EQ(alloc_count::allocations, 0u) << "Predict allocated";

  alloc_count::Reset();
  model->PredictBatch(probe, &proba);
  EXPECT_EQ(alloc_count::allocations, 0u) << "PredictBatch allocated";
#endif
}

TEST(AllocationRegressionTest, DmtScoresWithoutAllocating) {
  core::DynamicModelTree model(
      {.num_features = kFeatures, .num_classes = kClasses});
  const Batch probe = TrainAndMakeProbe(&model, 101);
  ExpectZeroAllocScoring(&model, probe);
}

TEST(AllocationRegressionTest, VfdtMcScoresWithoutAllocating) {
  trees::Vfdt model({.num_features = kFeatures, .num_classes = kClasses});
  const Batch probe = TrainAndMakeProbe(&model, 102);
  ExpectZeroAllocScoring(&model, probe);
}

TEST(AllocationRegressionTest, VfdtNbaScoresWithoutAllocating) {
  trees::Vfdt model(
      {.num_features = kFeatures,
       .num_classes = kClasses,
       .leaf_prediction = trees::LeafPrediction::kNaiveBayesAdaptive});
  const Batch probe = TrainAndMakeProbe(&model, 103);
  ExpectZeroAllocScoring(&model, probe);
}

TEST(AllocationRegressionTest, ArfScoresWithoutAllocating) {
  ensemble::AdaptiveRandomForest model(
      {.num_features = kFeatures, .num_classes = kClasses});
  const Batch probe = TrainAndMakeProbe(&model, 104);
  ExpectZeroAllocScoring(&model, probe);
}

// --- Training (PR "SIMD-friendly training kernels"): once the grow-only
// scratch of the per-batch statistics path is warm, PartialFit must not
// touch the heap either. Structural events (splits) legitimately allocate
// nodes, so each test pins a stream on which the learner provably never
// splits while the candidate/observer machinery still runs every batch.

// Batches are built up front: Batch::Add itself appends to vectors, which
// must not count against the learner.
std::vector<Batch> MakeBatches(int rounds, int per_batch, std::uint64_t seed,
                               int label_kind) {
  Rng rng(seed);
  std::vector<Batch> batches;
  for (int round = 0; round < rounds; ++round) {
    Batch batch(kFeatures, per_batch);
    for (int i = 0; i < per_batch; ++i) {
      std::vector<double> x(kFeatures);
      if (label_kind == 1) {
        // All features identical: every VFDT split merit ties exactly.
        const double v = rng.Uniform();
        for (double& f : x) f = v;
      } else {
        for (double& f : x) f = rng.Uniform();
      }
      // Linearly separable concept: a single linear model fits it, so the
      // DMT's split gains stay below the AIC threshold (Sec. V-C).
      const int y = x[0] + x[1] <= 1.0 ? 0 : 1;
      batch.Add(x, y);
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

template <typename Model>
void ExpectZeroAllocTraining(Model* model, const std::vector<Batch>& warmup,
                             const std::vector<Batch>& measured) {
#ifdef DMT_UNDER_SANITIZER
  GTEST_SKIP() << "allocation counting is meaningless under sanitizers";
#else
  for (const Batch& batch : warmup) model->PartialFit(batch);
  alloc_count::Reset();
  for (const Batch& batch : measured) model->PartialFit(batch);
  EXPECT_EQ(alloc_count::allocations, 0u) << "PartialFit allocated";
#endif
}

TEST(AllocationRegressionTest, DmtTrainsWithoutAllocating) {
  core::DynamicModelTree model({.num_features = kFeatures, .num_classes = 2});
  const auto warmup = MakeBatches(6, 500, 201, /*label_kind=*/0);
  const auto measured = MakeBatches(4, 500, 202, /*label_kind=*/0);
  ExpectZeroAllocTraining(&model, warmup, measured);
  // The premise of the pin: the separable stream never triggers structure.
  EXPECT_EQ(model.num_splits_performed(), 0u);
}

TEST(AllocationRegressionTest, VfdtMcTrainsWithoutAllocating) {
  // tie_threshold = 0 plus identical features: best and second merit are
  // exactly equal, so the Hoeffding test never fires, while AttemptSplit
  // still runs every grace_period observations.
  trees::Vfdt model({.num_features = kFeatures,
                     .num_classes = 2,
                     .tie_threshold = 0.0});
  const auto warmup = MakeBatches(2, 500, 203, /*label_kind=*/1);
  const auto measured = MakeBatches(4, 500, 204, /*label_kind=*/1);
  ExpectZeroAllocTraining(&model, warmup, measured);
  EXPECT_EQ(model.NumInnerNodes(), 0u);
}

TEST(AllocationRegressionTest, VfdtNbaTrainsWithoutAllocating) {
  trees::Vfdt model(
      {.num_features = kFeatures,
       .num_classes = 2,
       .tie_threshold = 0.0,
       .leaf_prediction = trees::LeafPrediction::kNaiveBayesAdaptive});
  const auto warmup = MakeBatches(2, 500, 205, /*label_kind=*/1);
  const auto measured = MakeBatches(4, 500, 206, /*label_kind=*/1);
  ExpectZeroAllocTraining(&model, warmup, measured);
  EXPECT_EQ(model.NumInnerNodes(), 0u);
}

// --- Telemetry (PR "stream telemetry layer"): every test above already
// runs with no registry attached, pinning the disabled mode (null cached
// pointers) as allocation-free. Attached mode must be equally clean: the
// registry allocates its map nodes at AttachTelemetry time, after which
// every counter bump is a raw-pointer increment.

TEST(AllocationRegressionTest, DmtTrainsWithoutAllocatingWithTelemetry) {
  core::DynamicModelTree model({.num_features = kFeatures, .num_classes = 2});
  obs::TelemetryRegistry registry;
  model.AttachTelemetry(&registry);
  const auto warmup = MakeBatches(6, 500, 201, /*label_kind=*/0);
  const auto measured = MakeBatches(4, 500, 202, /*label_kind=*/0);
  ExpectZeroAllocTraining(&model, warmup, measured);
#ifndef DMT_UNDER_SANITIZER
  // The instrumented paths must actually have fired while staying clean.
  EXPECT_GT(*registry.Counter("dmt.candidate_proposals"), 0u);
#endif
}

TEST(AllocationRegressionTest, VfdtScoresWithoutAllocatingWithTelemetry) {
  trees::Vfdt model({.num_features = kFeatures, .num_classes = kClasses});
  obs::TelemetryRegistry registry;
  model.AttachTelemetry(&registry);
  const Batch probe = TrainAndMakeProbe(&model, 105);
  ExpectZeroAllocScoring(&model, probe);
#ifndef DMT_UNDER_SANITIZER
  EXPECT_GT(*registry.Counter("vfdt.split_attempts"), 0u);
#endif
}

TEST(AllocationRegressionTest, GlmTrainsWithoutAllocating) {
  linear::Glm model({.num_features = kFeatures, .num_classes = 2});
  const auto warmup = MakeBatches(1, 500, 207, /*label_kind=*/0);
  const auto measured = MakeBatches(4, 500, 208, /*label_kind=*/0);
#ifdef DMT_UNDER_SANITIZER
  GTEST_SKIP() << "allocation counting is meaningless under sanitizers";
#else
  for (const Batch& batch : warmup) model.Fit(batch);
  alloc_count::Reset();
  for (const Batch& batch : measured) model.Fit(batch);
  EXPECT_EQ(alloc_count::allocations, 0u) << "Glm::Fit allocated";
#endif
}

}  // namespace
}  // namespace dmt
