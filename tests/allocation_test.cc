// Allocation-regression tests for the batch-first scoring core: once the
// scratch buffers are warm, scoring must not touch the heap. Guards the
// zero-allocation property that PR "batch-first scoring core" introduced
// for DMT, VFDT and ARF (and, via the same code paths, the other models).
//
// This test replaces the global allocator, so it builds as its own binary
// (dmt_allocation_test) and must never join the dmt_tests glob.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/alloc_count.h"
#include "dmt/common/random.h"
#include "dmt/common/types.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/ensemble/adaptive_random_forest.h"
#include "dmt/trees/vfdt.h"

DMT_DEFINE_COUNTING_ALLOCATOR();

// Sanitizers interpose their own allocator and bookkeeping; the counters
// would measure the sanitizer runtime, not the scoring core.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DMT_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DMT_UNDER_SANITIZER 1
#endif
#endif

namespace dmt {
namespace {

constexpr int kFeatures = 5;
constexpr int kClasses = 3;

// Trains `model` on a few thousand synthetic observations so trees grow
// real structure, then returns a probe batch drawn from the same concept.
Batch TrainAndMakeProbe(Classifier* model, std::uint64_t seed) {
  Rng rng(seed);
  Batch batch(kFeatures, 500);
  for (int round = 0; round < 6; ++round) {
    batch.clear();
    for (int i = 0; i < 500; ++i) {
      std::vector<double> x(kFeatures);
      for (double& v : x) v = rng.Uniform();
      const int y = x[0] <= 0.3 ? 0 : (x[1] <= 0.6 ? 1 : 2);
      batch.Add(x, y);
    }
    model->PartialFit(batch);
  }
  return batch;  // the last training batch doubles as the scoring probe
}

void ExpectZeroAllocScoring(Classifier* model, const Batch& probe) {
#ifdef DMT_UNDER_SANITIZER
  GTEST_SKIP() << "allocation counting is meaningless under sanitizers";
#else
  // Warm-up: sizes the Predict scratch, the ensemble member scratch and the
  // ProbaMatrix backing store.
  std::vector<double> proba_row(kClasses);
  ProbaMatrix proba;
  model->PredictProbaInto(probe.row(0), proba_row);
  (void)model->Predict(probe.row(0));
  model->PredictBatch(probe, &proba);

  // Steady state: every scoring entry point must be allocation-free.
  alloc_count::Reset();
  for (std::size_t i = 0; i < probe.size(); ++i) {
    model->PredictProbaInto(probe.row(i), proba_row);
  }
  EXPECT_EQ(alloc_count::allocations, 0u) << "PredictProbaInto allocated";

  alloc_count::Reset();
  for (std::size_t i = 0; i < probe.size(); ++i) {
    (void)model->Predict(probe.row(i));
  }
  EXPECT_EQ(alloc_count::allocations, 0u) << "Predict allocated";

  alloc_count::Reset();
  model->PredictBatch(probe, &proba);
  EXPECT_EQ(alloc_count::allocations, 0u) << "PredictBatch allocated";
#endif
}

TEST(AllocationRegressionTest, DmtScoresWithoutAllocating) {
  core::DynamicModelTree model(
      {.num_features = kFeatures, .num_classes = kClasses});
  const Batch probe = TrainAndMakeProbe(&model, 101);
  ExpectZeroAllocScoring(&model, probe);
}

TEST(AllocationRegressionTest, VfdtMcScoresWithoutAllocating) {
  trees::Vfdt model({.num_features = kFeatures, .num_classes = kClasses});
  const Batch probe = TrainAndMakeProbe(&model, 102);
  ExpectZeroAllocScoring(&model, probe);
}

TEST(AllocationRegressionTest, VfdtNbaScoresWithoutAllocating) {
  trees::Vfdt model(
      {.num_features = kFeatures,
       .num_classes = kClasses,
       .leaf_prediction = trees::LeafPrediction::kNaiveBayesAdaptive});
  const Batch probe = TrainAndMakeProbe(&model, 103);
  ExpectZeroAllocScoring(&model, probe);
}

TEST(AllocationRegressionTest, ArfScoresWithoutAllocating) {
  ensemble::AdaptiveRandomForest model(
      {.num_features = kFeatures, .num_classes = kClasses});
  const Batch probe = TrainAndMakeProbe(&model, 104);
  ExpectZeroAllocScoring(&model, probe);
}

}  // namespace
}  // namespace dmt
