#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/common/types.h"
#include "dmt/streams/sea.h"
#include "dmt/trees/efdt.h"
#include "dmt/trees/fimtdd.h"
#include "dmt/trees/hoeffding_adaptive.h"
#include "dmt/trees/observers.h"
#include "dmt/trees/split_criteria.h"
#include "dmt/trees/vfdt.h"

namespace dmt::trees {
namespace {

// A two-region concept: class depends only on x0 <= 0.5.
void FillAxisConcept(Rng* rng, Batch* batch, int n, double noise = 0.0) {
  for (int i = 0; i < n; ++i) {
    std::vector<double> x = {rng->Uniform(), rng->Uniform()};
    int y = x[0] <= 0.5 ? 0 : 1;
    if (noise > 0.0 && rng->Bernoulli(noise)) y = 1 - y;
    batch->Add(x, y);
  }
}

TEST(SplitCriteriaTest, HoeffdingBoundShrinksWithN) {
  const double b100 = HoeffdingBound(1.0, 1e-7, 100.0);
  const double b10000 = HoeffdingBound(1.0, 1e-7, 10000.0);
  EXPECT_GT(b100, b10000);
  EXPECT_NEAR(b10000, std::sqrt(std::log(1e7) / 20000.0), 1e-12);
}

TEST(SplitCriteriaTest, EntropyOfPureAndUniform) {
  std::vector<double> pure = {10.0, 0.0};
  std::vector<double> uniform = {5.0, 5.0};
  EXPECT_DOUBLE_EQ(Entropy(pure), 0.0);
  EXPECT_DOUBLE_EQ(Entropy(uniform), 1.0);
}

TEST(SplitCriteriaTest, InfoGainOfPerfectSplitIsParentEntropy) {
  std::vector<double> parent = {10.0, 10.0};
  std::vector<double> left = {10.0, 0.0};
  std::vector<double> right = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(InfoGain(parent, left, right), 1.0);
}

TEST(SplitCriteriaTest, StdDevReductionOfPerfectSplit) {
  TargetStats parent;
  TargetStats left;
  TargetStats right;
  for (int i = 0; i < 100; ++i) {
    parent.Add(0.0);
    parent.Add(1.0);
    left.Add(0.0);
    right.Add(1.0);
  }
  EXPECT_NEAR(StdDevReduction(parent, left, right), 0.5, 1e-9);
  EXPECT_NEAR(parent.StdDev(), 0.5, 1e-9);
}

TEST(NumericObserverTest, FindsSeparatingThreshold) {
  NumericObserver observer(2);
  Rng rng(1);
  std::vector<double> parent_counts(2, 0.0);
  for (int i = 0; i < 2000; ++i) {
    const int y = rng.Bernoulli(0.5) ? 1 : 0;
    const double v = y == 0 ? rng.Uniform(0.0, 0.4) : rng.Uniform(0.6, 1.0);
    observer.Add(v, y);
    parent_counts[y] += 1.0;
  }
  const SplitSuggestion s = observer.BestSplit(3, parent_counts);
  EXPECT_EQ(s.feature, 3);
  EXPECT_GT(s.merit, 0.8);
  EXPECT_GT(s.threshold, 0.3);
  EXPECT_LT(s.threshold, 0.7);
}

TEST(NumericObserverTest, CountsBelowMatchesEmpirical) {
  NumericObserver observer(2);
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) observer.Add(rng.Gaussian(0.5, 0.1), 0);
  const std::vector<double> below = observer.CountsBelow(0.5);
  EXPECT_NEAR(below[0], 2500.0, 150.0);
}

TEST(NominalObserverTest, PrefersInformativeValue) {
  NominalObserver observer(2);
  std::vector<double> parent(2, 0.0);
  for (int i = 0; i < 100; ++i) {
    observer.Add(1.0, 0);
    observer.Add(2.0, 1);
    observer.Add(3.0, i % 2);
    parent[0] += 1.0 + (i % 2 == 0 ? 1.0 : 0.0);
    parent[1] += 1.0 + (i % 2 == 1 ? 1.0 : 0.0);
  }
  const SplitSuggestion s = observer.BestSplit(0, parent);
  EXPECT_TRUE(s.is_equality);
  EXPECT_TRUE(s.threshold == 1.0 || s.threshold == 2.0);
  EXPECT_GT(s.merit, 0.0);
}

TEST(VfdtTest, StartsAsSingleLeaf) {
  Vfdt tree({.num_features = 2, .num_classes = 2});
  EXPECT_EQ(tree.NumInnerNodes(), 0u);
  EXPECT_EQ(tree.NumLeaves(), 1u);
  EXPECT_EQ(tree.NumSplits(), 0u);
}

TEST(VfdtTest, LearnsAxisAlignedConcept) {
  Vfdt tree({.num_features = 2, .num_classes = 2});
  Rng rng(3);
  Batch batch(2);
  FillAxisConcept(&rng, &batch, 5000);
  tree.PartialFit(batch);
  EXPECT_GE(tree.NumInnerNodes(), 1u);

  Batch test(2);
  FillAxisConcept(&rng, &test, 1000);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += tree.Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(correct, 950);
}

TEST(VfdtTest, DoesNotSplitOnPureStream) {
  Vfdt tree({.num_features = 2, .num_classes = 2});
  Rng rng(4);
  Batch batch(2);
  for (int i = 0; i < 3000; ++i) {
    batch.Add(std::vector<double>{rng.Uniform(), rng.Uniform()}, 1);
  }
  tree.PartialFit(batch);
  EXPECT_EQ(tree.NumInnerNodes(), 0u);
}

TEST(VfdtTest, NbaLeavesBeatMajorityClassOnImbalancedOverlap) {
  // Informative feature, 50/50 classes: NB leaves should predict better
  // than a single majority leaf before any split happens.
  Vfdt nba({.num_features = 1,
            .num_classes = 2,
            .grace_period = 100000,  // never split: isolates leaf models
            .leaf_prediction = LeafPrediction::kNaiveBayesAdaptive});
  Rng rng(5);
  Batch batch(1);
  for (int i = 0; i < 3000; ++i) {
    const int y = rng.Bernoulli(0.5) ? 1 : 0;
    batch.Add(std::vector<double>{y == 0 ? rng.Gaussian(0.3, 0.1)
                                         : rng.Gaussian(0.7, 0.1)},
              y);
  }
  nba.PartialFit(batch);
  int correct = 0;
  for (int i = 0; i < 500; ++i) {
    const int y = rng.Bernoulli(0.5) ? 1 : 0;
    std::vector<double> x = {y == 0 ? rng.Gaussian(0.3, 0.1)
                                    : rng.Gaussian(0.7, 0.1)};
    correct += nba.Predict(x) == y;
  }
  EXPECT_GT(correct, 440);
}

TEST(VfdtTest, ComplexityCountingRules) {
  VfdtConfig config{.num_features = 4, .num_classes = 3};
  Vfdt mc(config);
  config.leaf_prediction = LeafPrediction::kNaiveBayesAdaptive;
  Vfdt nba(config);
  Rng rng(6);
  Batch batch(4);
  for (int i = 0; i < 4000; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform(), rng.Uniform(),
                             rng.Uniform()};
    batch.Add(x, x[0] <= 0.33 ? 0 : (x[0] <= 0.66 ? 1 : 2));
  }
  mc.PartialFit(batch);
  nba.PartialFit(batch);
  // MC: splits == inner nodes; params == inner + leaves.
  EXPECT_EQ(mc.NumSplits(), mc.NumInnerNodes());
  EXPECT_EQ(mc.NumParameters(), mc.NumInnerNodes() + mc.NumLeaves());
  // NBA (3 classes): splits == inner + 3 * leaves; params add m per class.
  EXPECT_EQ(nba.NumSplits(), nba.NumInnerNodes() + 3 * nba.NumLeaves());
  EXPECT_EQ(nba.NumParameters(),
            nba.NumInnerNodes() + nba.NumLeaves() * 4 * 3);
}

TEST(VfdtTest, SubspaceRestrictsSplitFeatures) {
  // With subspace_size=1 and a concept on feature 0, some trees will be
  // forced to split elsewhere; here we only verify it still learns when the
  // subspace covers all features and stays deterministic under a fixed seed.
  Vfdt a({.num_features = 2, .num_classes = 2, .subspace_size = 2,
          .seed = 11});
  Vfdt b({.num_features = 2, .num_classes = 2, .subspace_size = 2,
          .seed = 11});
  Rng rng(7);
  Batch batch(2);
  FillAxisConcept(&rng, &batch, 3000);
  a.PartialFit(batch);
  b.PartialFit(batch);
  EXPECT_EQ(a.NumInnerNodes(), b.NumInnerNodes());
}

TEST(EfdtTest, SplitsFasterThanVfdtOnEasyConcept) {
  EfdtConfig efdt_config{.num_features = 2, .num_classes = 2};
  VfdtConfig vfdt_config{.num_features = 2, .num_classes = 2};
  Efdt efdt(efdt_config);
  Vfdt vfdt(vfdt_config);
  Rng rng(8);
  Batch batch(2);
  FillAxisConcept(&rng, &batch, 600);
  efdt.PartialFit(batch);
  vfdt.PartialFit(batch);
  // EFDT only needs to beat the null split, so it must have at least as
  // many splits this early.
  EXPECT_GE(efdt.NumInnerNodes(), vfdt.NumInnerNodes());
  EXPECT_GE(efdt.NumInnerNodes(), 1u);
}

TEST(EfdtTest, LearnsAxisConcept) {
  Efdt tree({.num_features = 2, .num_classes = 2});
  Rng rng(9);
  for (int b = 0; b < 10; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 500);
    tree.PartialFit(batch);
  }
  Batch test(2);
  FillAxisConcept(&rng, &test, 1000);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += tree.Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(correct, 930);
}

TEST(EfdtTest, ReplacesSplitAfterConceptSwitch) {
  // Concept moves from feature 0 to feature 1; re-evaluation must let the
  // tree adapt so that accuracy on the new concept recovers.
  Efdt tree({.num_features = 2,
             .num_classes = 2,
             .reevaluation_period = 500});
  Rng rng(10);
  for (int b = 0; b < 10; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 500);
    tree.PartialFit(batch);
  }
  ASSERT_GE(tree.NumInnerNodes(), 1u);
  auto fill_feature1 = [&](Batch* batch, int n) {
    for (int i = 0; i < n; ++i) {
      std::vector<double> x = {rng.Uniform(), rng.Uniform()};
      batch->Add(x, x[1] <= 0.5 ? 1 : 0);
    }
  };
  for (int b = 0; b < 30; ++b) {
    Batch batch(2);
    fill_feature1(&batch, 500);
    tree.PartialFit(batch);
  }
  Batch test(2);
  fill_feature1(&test, 1000);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += tree.Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(correct, 800);
}

TEST(HatTest, LearnsAxisConcept) {
  HoeffdingAdaptiveTree tree({.num_features = 2, .num_classes = 2});
  Rng rng(11);
  for (int b = 0; b < 10; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 500);
    tree.PartialFit(batch);
  }
  Batch test(2);
  FillAxisConcept(&rng, &test, 1000);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += tree.Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(correct, 930);
}

TEST(HatTest, RecoversFromAbruptDrift) {
  HoeffdingAdaptiveTree tree({.num_features = 2, .num_classes = 2});
  Rng rng(12);
  for (int b = 0; b < 10; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 500);
    tree.PartialFit(batch);
  }
  // Flip the concept.
  auto fill_flipped = [&](Batch* batch, int n) {
    for (int i = 0; i < n; ++i) {
      std::vector<double> x = {rng.Uniform(), rng.Uniform()};
      batch->Add(x, x[0] <= 0.5 ? 1 : 0);
    }
  };
  for (int b = 0; b < 20; ++b) {
    Batch batch(2);
    fill_flipped(&batch, 500);
    tree.PartialFit(batch);
  }
  Batch test(2);
  fill_flipped(&test, 1000);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += tree.Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(correct, 850);
}

TEST(FimtDdTest, LearnsAxisConceptWithModelLeaves) {
  FimtDd tree({.num_features = 2, .num_classes = 2});
  Rng rng(13);
  for (int b = 0; b < 20; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 500);
    tree.PartialFit(batch);
  }
  Batch test(2);
  FillAxisConcept(&rng, &test, 1000);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += tree.Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(correct, 900);
}

TEST(FimtDdTest, PageHinkleyPrunesAfterDrift) {
  FimtDd tree({.num_features = 2,
               .num_classes = 2,
               .page_hinkley = {.min_instances = 30,
                                .delta = 0.005,
                                .threshold = 10.0,
                                .alpha = 0.9999}});
  Rng rng(14);
  for (int b = 0; b < 20; ++b) {
    Batch batch(2);
    FillAxisConcept(&rng, &batch, 500);
    tree.PartialFit(batch);
  }
  ASSERT_GE(tree.NumInnerNodes(), 1u);
  // Flip the concept; PH on subtree error should eventually prune.
  for (int b = 0; b < 20; ++b) {
    Batch batch(2);
    for (int i = 0; i < 500; ++i) {
      std::vector<double> x = {rng.Uniform(), rng.Uniform()};
      batch.Add(x, x[0] <= 0.5 ? 1 : 0);
    }
    tree.PartialFit(batch);
  }
  EXPECT_GE(tree.NumPrunes(), 1u);
}

TEST(FimtDdTest, ComplexityCountsModelLeaves) {
  FimtDd binary({.num_features = 3, .num_classes = 2});
  EXPECT_EQ(binary.NumSplits(), 1u);       // single model leaf
  EXPECT_EQ(binary.NumParameters(), 3u);   // m weights
  FimtDd multi({.num_features = 3, .num_classes = 5});
  EXPECT_EQ(multi.NumSplits(), 5u);        // c splits for one leaf
  EXPECT_EQ(multi.NumParameters(), 15u);   // m * c
}

TEST(TreesOnSeaTest, AllTreesReachReasonableAccuracyOnStationarySea) {
  streams::SeaConfig sea;
  sea.total_samples = 8000;
  sea.noise = 0.0;
  sea.drift_points = {};
  streams::SeaGenerator gen(sea);
  Batch batch(3);
  gen.FillBatch(8000, &batch);
  // Normalize to [0,1] as the harness would.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (double& v : batch.mutable_row(i)) v /= 10.0;
  }

  Vfdt vfdt({.num_features = 3, .num_classes = 2});
  Efdt efdt({.num_features = 3, .num_classes = 2});
  HoeffdingAdaptiveTree hat({.num_features = 3, .num_classes = 2});
  FimtDd fimtdd({.num_features = 3, .num_classes = 2});
  std::vector<Classifier*> models = {&vfdt, &efdt, &hat, &fimtdd};
  for (Classifier* model : models) model->PartialFit(batch);

  streams::SeaGenerator test_gen(
      {.drift_points = {}, .noise = 0.0, .total_samples = 2000, .seed = 99});
  Batch test(3);
  test_gen.FillBatch(2000, &test);
  for (std::size_t i = 0; i < test.size(); ++i) {
    for (double& v : test.mutable_row(i)) v /= 10.0;
  }
  for (Classifier* model : models) {
    int correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      correct += model->Predict(test.row(i)) == test.label(i);
    }
    EXPECT_GT(correct, 1600) << model->name();
  }
}

}  // namespace
}  // namespace dmt::trees
