// Snapshot/restore conformance for every learner in the library.
//
// The correctness bar for a snapshot is bit-identity under continued
// training: for each learner the suite trains a model, snapshots it,
// restores it, trains the original and the restore on the same
// continuation stream, and asserts that predictions, continuation
// telemetry counters, and a final re-snapshot are byte-identical. A
// second family feeds corrupted archives (truncations, bit flips, version
// skew, garbage) to every Load and requires the typed serial::SerialError
// -- never UB, never abort -- which the ASan/UBSan CI jobs then certify.
// Golden archives pinned under bench/goldens/ make a silent format break
// impossible: any byte change fails with a version-bump instruction.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <random>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/bayes/gaussian_nb.h"
#include "dmt/common/random.h"
#include "dmt/core/dmt_regressor.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/ensemble/adaptive_random_forest.h"
#include "dmt/ensemble/leveraging_bagging.h"
#include "dmt/ensemble/online_bagging.h"
#include "dmt/ensemble/online_boosting.h"
#include "dmt/linear/glm.h"
#include "dmt/linear/glm_classifier.h"
#include "dmt/linear/linear_regressor.h"
#include "dmt/obs/telemetry.h"
#include "dmt/serial/model_io.h"
#include "dmt/trees/efdt.h"
#include "dmt/trees/fimtdd.h"
#include "dmt/trees/fimtdd_regressor.h"
#include "dmt/trees/hoeffding_adaptive.h"
#include "dmt/trees/sgt.h"
#include "dmt/trees/vfdt.h"

namespace dmt {
namespace {

constexpr const char* kAllClassifiers[] = {
    "DMT",    "FIMT-DD", "VFDT",   "VFDT-NBA", "HT-Ada", "EFDT",
    "ARF",    "LevBag",  "OzaBag", "OzaBoost", "SGT",    "GLM"};

std::unique_ptr<Classifier> Make(const std::string& name, int m, int c) {
  if (name == "DMT") {
    return std::make_unique<core::DynamicModelTree>(
        core::DmtConfig{.num_features = m, .num_classes = c});
  }
  if (name == "FIMT-DD") {
    return std::make_unique<trees::FimtDd>(
        trees::FimtDdConfig{.num_features = m, .num_classes = c});
  }
  if (name == "VFDT") {
    return std::make_unique<trees::Vfdt>(
        trees::VfdtConfig{.num_features = m, .num_classes = c});
  }
  if (name == "VFDT-NBA") {
    return std::make_unique<trees::Vfdt>(trees::VfdtConfig{
        .num_features = m,
        .num_classes = c,
        .leaf_prediction = trees::LeafPrediction::kNaiveBayesAdaptive});
  }
  if (name == "HT-Ada") {
    return std::make_unique<trees::HoeffdingAdaptiveTree>(
        trees::HatConfig{.num_features = m, .num_classes = c});
  }
  if (name == "EFDT") {
    return std::make_unique<trees::Efdt>(
        trees::EfdtConfig{.num_features = m, .num_classes = c});
  }
  if (name == "ARF") {
    return std::make_unique<ensemble::AdaptiveRandomForest>(
        ensemble::AdaptiveRandomForestConfig{.num_features = m,
                                             .num_classes = c});
  }
  if (name == "LevBag") {
    return std::make_unique<ensemble::LeveragingBagging>(
        ensemble::LeveragingBaggingConfig{.num_features = m,
                                          .num_classes = c});
  }
  if (name == "OzaBag") {
    return std::make_unique<ensemble::OnlineBagging>(
        ensemble::OnlineBaggingConfig{.num_features = m, .num_classes = c});
  }
  if (name == "OzaBoost") {
    return std::make_unique<ensemble::OnlineBoosting>(
        ensemble::OnlineBoostingConfig{.num_features = m, .num_classes = c});
  }
  if (name == "SGT") {
    return std::make_unique<trees::SgtClassifier>(
        trees::SgtConfig{.num_features = m}, c);
  }
  return std::make_unique<linear::GlmClassifier>(
      linear::GlmConfig{.num_features = m, .num_classes = c});
}

// Axis-aligned concept so every tree learner actually grows structure; the
// `drifted` flag swaps the two decisive features, firing the drift
// machinery (ADWIN resets, background trees, subtree replacements) whose
// state the snapshots must also round-trip.
int Concept(std::span<const double> x, int c, bool drifted) {
  const double a = drifted ? x[1] : x[0];
  const double b = drifted ? x[0] : x[1];
  int y = a > 0.5 ? 1 : 0;
  if (c > 2 && b > 0.6) y = 2;
  return std::min(y, c - 1);
}

void FillConcept(Rng* rng, Batch* batch, int m, int c, int n, bool drifted) {
  for (int i = 0; i < n; ++i) {
    std::vector<double> x(m);
    for (double& v : x) v = rng->Uniform();
    batch->Add(x, Concept(x, c, drifted));
  }
}

std::string SnapshotOf(const Classifier& model) {
  std::ostringstream out(std::ios::binary);
  model.Save(out);
  return out.str();
}

std::unique_ptr<Classifier> Restore(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return serial::LoadClassifier(in);
}

// --- The conformance core: round-trip == continue-training bit-identity --

class SnapshotConformanceTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(SnapshotConformanceTest, RoundTripContinuesBitIdentically) {
  const std::string name = GetParam();
  const int m = 3;
  const int c = 3;
  std::unique_ptr<Classifier> model = Make(name, m, c);

  // Phase 1: grow structure, then drift so detector/background state is
  // non-trivial at snapshot time.
  Rng rng(101);
  for (int b = 0; b < 25; ++b) {
    Batch batch(m);
    FillConcept(&rng, &batch, m, c, 160, /*drifted=*/b >= 15);
    model->PartialFit(batch);
  }

  const std::string snapshot = SnapshotOf(*model);
  ASSERT_FALSE(snapshot.empty());
  std::unique_ptr<Classifier> restored = Restore(snapshot);
  ASSERT_NE(restored, nullptr) << name;
  EXPECT_EQ(restored->name(), model->name());
  EXPECT_EQ(restored->num_classes(), model->num_classes());

  // Re-snapshotting the restore before any training must reproduce the
  // archive byte for byte (deterministic encoding, lossless decoding).
  EXPECT_EQ(SnapshotOf(*restored), snapshot) << name;

  // Phase 2: train original and restore on the SAME continuation stream,
  // each with a fresh telemetry registry attached at the restore point, so
  // the counters compare continuation deltas.
  obs::TelemetryRegistry original_registry;
  obs::TelemetryRegistry restored_registry;
  model->AttachTelemetry(&original_registry);
  restored->AttachTelemetry(&restored_registry);
  for (int b = 0; b < 20; ++b) {
    Batch batch(m);
    FillConcept(&rng, &batch, m, c, 160, /*drifted=*/b < 5);
    Batch copy = batch;
    model->PartialFit(batch);
    restored->PartialFit(copy);
  }

  EXPECT_EQ(restored->NumSplits(), model->NumSplits()) << name;
  EXPECT_EQ(restored->NumParameters(), model->NumParameters()) << name;
  EXPECT_EQ(restored_registry.CountersJson(),
            original_registry.CountersJson())
      << name;

  // Predictions must be bit-identical (exact double equality).
  Rng probe(7);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x(m);
    for (double& v : x) v = probe.Uniform();
    const std::vector<double> pa = model->PredictProba(x);
    const std::vector<double> pb = restored->PredictProba(x);
    for (int k = 0; k < c; ++k) {
      ASSERT_EQ(pa[k], pb[k]) << name << " probe " << i << " class " << k;
    }
    ASSERT_EQ(model->Predict(x), restored->Predict(x)) << name;
  }

  // And so must the final model states, down to the last RNG byte.
  EXPECT_EQ(SnapshotOf(*restored), SnapshotOf(*model)) << name;
}

INSTANTIATE_TEST_SUITE_P(AllClassifiers, SnapshotConformanceTest,
                         ::testing::ValuesIn(kAllClassifiers));

// Binary classification exercises the other GLM head (single-logit) and
// the binary NB/observer paths.
TEST(SnapshotConformanceBinaryTest, DmtBinaryRoundTrip) {
  std::unique_ptr<Classifier> model = Make("DMT", 2, 2);
  Rng rng(1);
  for (int b = 0; b < 100; ++b) {
    Batch batch(2);
    for (int i = 0; i < 100; ++i) {
      std::vector<double> x = {rng.Uniform(), rng.Uniform()};
      batch.Add(x, (x[0] > 0.5) != (x[1] > 0.5) ? 1 : 0);  // XOR: must split
    }
    model->PartialFit(batch);
  }
  const std::string snapshot = SnapshotOf(*model);
  std::unique_ptr<Classifier> restored = Restore(snapshot);
  auto* original_dmt = dynamic_cast<core::DynamicModelTree*>(model.get());
  auto* restored_dmt = dynamic_cast<core::DynamicModelTree*>(restored.get());
  ASSERT_NE(original_dmt, nullptr);
  ASSERT_NE(restored_dmt, nullptr);
  EXPECT_GE(original_dmt->NumInnerNodes(), 1u);  // XOR forces structure
  EXPECT_EQ(restored_dmt->NumInnerNodes(), original_dmt->NumInnerNodes());
  EXPECT_EQ(restored_dmt->NumLeaves(), original_dmt->NumLeaves());
  EXPECT_EQ(restored_dmt->time_step(), original_dmt->time_step());
  EXPECT_EQ(restored_dmt->num_splits_performed(),
            original_dmt->num_splits_performed());
  for (int b = 0; b < 30; ++b) {
    Batch batch(2);
    for (int i = 0; i < 100; ++i) {
      std::vector<double> x = {rng.Uniform(), rng.Uniform()};
      batch.Add(x, (x[0] > 0.5) != (x[1] > 0.5) ? 1 : 0);
    }
    Batch copy = batch;
    model->PartialFit(batch);
    restored->PartialFit(copy);
  }
  EXPECT_EQ(SnapshotOf(*restored), SnapshotOf(*model));
}

// --- Regressors (not Classifier subclasses; direct Save/Load) ------------

void FillRegression(Rng* rng, linear::RegressionBatch* batch, int m, int n,
                    bool drifted) {
  for (int i = 0; i < n; ++i) {
    std::vector<double> x(m);
    for (double& v : x) v = rng->Uniform();
    const double signal =
        drifted ? -3.0 * x[0] + x[1] : 2.0 * x[0] - x[1] + (x[0] > 0.5);
    batch->Add(x, signal + 0.01 * rng->Gaussian());
  }
}

TEST(SnapshotRegressorTest, DmtRegressorRoundTripContinues) {
  const int m = 3;
  core::DmtRegressor model({.num_features = m});
  Rng rng(41);
  for (int b = 0; b < 30; ++b) {
    linear::RegressionBatch batch(m);
    FillRegression(&rng, &batch, m, 150, b >= 20);
    model.PartialFit(batch);
  }
  std::ostringstream out(std::ios::binary);
  model.Save(out);
  const std::string snapshot = out.str();
  std::istringstream in(snapshot, std::ios::binary);
  std::unique_ptr<core::DmtRegressor> restored = core::DmtRegressor::Load(in);
  ASSERT_NE(restored, nullptr);
  std::ostringstream again(std::ios::binary);
  restored->Save(again);
  EXPECT_EQ(again.str(), snapshot);

  for (int b = 0; b < 20; ++b) {
    linear::RegressionBatch batch(m);
    FillRegression(&rng, &batch, m, 150, b < 10);
    linear::RegressionBatch copy = batch;
    model.PartialFit(batch);
    restored->PartialFit(copy);
  }
  EXPECT_EQ(restored->NumSplits(), model.NumSplits());
  EXPECT_EQ(restored->num_splits_performed(), model.num_splits_performed());
  Rng probe(8);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x(m);
    for (double& v : x) v = probe.Uniform();
    ASSERT_EQ(model.Predict(x), restored->Predict(x)) << "probe " << i;
  }
  std::ostringstream final_a(std::ios::binary);
  std::ostringstream final_b(std::ios::binary);
  model.Save(final_a);
  restored->Save(final_b);
  EXPECT_EQ(final_b.str(), final_a.str());
}

TEST(SnapshotRegressorTest, FimtDdRegressorRoundTripContinues) {
  const int m = 3;
  trees::FimtDdRegressor model({.num_features = m});
  Rng rng(43);
  for (int b = 0; b < 30; ++b) {
    linear::RegressionBatch batch(m);
    FillRegression(&rng, &batch, m, 150, b >= 20);
    model.PartialFit(batch);
  }
  std::ostringstream out(std::ios::binary);
  model.Save(out);
  const std::string snapshot = out.str();
  std::istringstream in(snapshot, std::ios::binary);
  std::unique_ptr<trees::FimtDdRegressor> restored =
      trees::FimtDdRegressor::Load(in);
  ASSERT_NE(restored, nullptr);
  std::ostringstream again(std::ios::binary);
  restored->Save(again);
  EXPECT_EQ(again.str(), snapshot);

  for (int b = 0; b < 20; ++b) {
    linear::RegressionBatch batch(m);
    FillRegression(&rng, &batch, m, 150, b < 10);
    linear::RegressionBatch copy = batch;
    model.PartialFit(batch);
    restored->PartialFit(copy);
  }
  EXPECT_EQ(restored->NumSplits(), model.NumSplits());
  EXPECT_EQ(restored->NumPrunes(), model.NumPrunes());
  Rng probe(9);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x(m);
    for (double& v : x) v = probe.Uniform();
    ASSERT_EQ(model.Predict(x), restored->Predict(x)) << "probe " << i;
  }
  std::ostringstream final_a(std::ios::binary);
  std::ostringstream final_b(std::ios::binary);
  model.Save(final_a);
  restored->Save(final_b);
  EXPECT_EQ(final_b.str(), final_a.str());
}

// --- Support learners -----------------------------------------------------

TEST(SnapshotSupportTest, GlmRoundTripContinues) {
  linear::Glm model({.num_features = 4, .num_classes = 3,
                     .optimizer = linear::Optimizer::kMomentum});
  Rng rng(51);
  for (int b = 0; b < 20; ++b) {
    Batch batch(4);
    FillConcept(&rng, &batch, 4, 3, 120, false);
    model.Fit(batch);
  }
  std::ostringstream out(std::ios::binary);
  model.Save(out);
  const std::string snapshot = out.str();
  std::istringstream in(snapshot, std::ios::binary);
  std::unique_ptr<linear::Glm> restored = linear::Glm::Load(in);
  std::ostringstream again(std::ios::binary);
  restored->Save(again);
  EXPECT_EQ(again.str(), snapshot);
  for (int b = 0; b < 10; ++b) {
    Batch batch(4);
    FillConcept(&rng, &batch, 4, 3, 120, true);
    Batch copy = batch;
    model.Fit(batch);
    restored->Fit(copy);
  }
  Rng probe(10);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> x(4);
    for (double& v : x) v = probe.Uniform();
    const std::vector<double> pa = model.PredictProba(x);
    const std::vector<double> pb = restored->PredictProba(x);
    for (int k = 0; k < 3; ++k) ASSERT_EQ(pa[k], pb[k]);
  }
}

TEST(SnapshotSupportTest, LinearRegressorRoundTripContinues) {
  linear::LinearRegressor model({.num_features = 3});
  Rng rng(53);
  for (int b = 0; b < 20; ++b) {
    linear::RegressionBatch batch(3);
    FillRegression(&rng, &batch, 3, 120, false);
    model.Fit(batch);
  }
  std::ostringstream out(std::ios::binary);
  model.Save(out);
  const std::string snapshot = out.str();
  std::istringstream in(snapshot, std::ios::binary);
  std::unique_ptr<linear::LinearRegressor> restored =
      linear::LinearRegressor::Load(in);
  std::ostringstream again(std::ios::binary);
  restored->Save(again);
  EXPECT_EQ(again.str(), snapshot);
  for (int b = 0; b < 10; ++b) {
    linear::RegressionBatch batch(3);
    FillRegression(&rng, &batch, 3, 120, true);
    linear::RegressionBatch copy = batch;
    model.Fit(batch);
    restored->Fit(copy);
  }
  Rng probe(11);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> x(3);
    for (double& v : x) v = probe.Uniform();
    ASSERT_EQ(model.Predict(x), restored->Predict(x));
  }
}

TEST(SnapshotSupportTest, GaussianNbRoundTripContinues) {
  bayes::GaussianNaiveBayes model(3, 4);
  Rng rng(55);
  Batch batch(3);
  FillConcept(&rng, &batch, 3, 4, 600, false);
  model.Update(batch);
  std::ostringstream out(std::ios::binary);
  model.Save(out);
  const std::string snapshot = out.str();
  std::istringstream in(snapshot, std::ios::binary);
  std::unique_ptr<bayes::GaussianNaiveBayes> restored =
      bayes::GaussianNaiveBayes::Load(in);
  std::ostringstream again(std::ios::binary);
  restored->Save(again);
  EXPECT_EQ(again.str(), snapshot);
  Batch more(3);
  FillConcept(&rng, &more, 3, 4, 600, true);
  Batch copy = more;
  model.Update(more);
  restored->Update(copy);
  EXPECT_EQ(restored->total_count(), model.total_count());
  Rng probe(12);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> x(3);
    for (double& v : x) v = probe.Uniform();
    const std::vector<double> pa = model.PredictProba(x);
    const std::vector<double> pb = restored->PredictProba(x);
    for (int k = 0; k < 4; ++k) ASSERT_EQ(pa[k], pb[k]);
  }
}

// --- Corruption / truncation / version skew -------------------------------
//
// Every malformed archive must fail with serial::SerialError -- the typed
// single failure mode -- and never with UB, abort, or an unbounded
// allocation. Bit flips that land in floating-point payload bytes may
// decode "successfully" (the payload is attacker-chosen data, not a
// structural violation); anything else thrown fails the test.

// A small trained archive for the learner (shared per-test; training a few
// hundred samples keeps the corruption sweeps fast).
std::string SmallArchive(const std::string& name) {
  std::unique_ptr<Classifier> model = Make(name, 3, 3);
  Rng rng(61);
  for (int b = 0; b < 6; ++b) {
    Batch batch(3);
    FillConcept(&rng, &batch, 3, 3, 100, b >= 4);
    model->PartialFit(batch);
  }
  return SnapshotOf(*model);
}

class SnapshotDecodeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SnapshotDecodeTest, TruncationsThrowSerialError) {
  const std::string bytes = SmallArchive(GetParam());
  ASSERT_GT(bytes.size(), 16u);
  // Every prefix of the header region, then a stride across the body. A
  // truncated archive can never decode: the last field written is the RNG
  // engine (or a fixed-width scalar), so every proper prefix is torn.
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < 64 && i < bytes.size(); ++i) cuts.push_back(i);
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 128);
  for (std::size_t i = 64; i < bytes.size(); i += stride) cuts.push_back(i);
  cuts.push_back(bytes.size() - 1);
  for (const std::size_t cut : cuts) {
    std::istringstream in(bytes.substr(0, cut), std::ios::binary);
    EXPECT_THROW(serial::LoadClassifier(in), serial::SerialError)
        << GetParam() << " truncated at " << cut;
  }
}

TEST_P(SnapshotDecodeTest, BitFlipsNeverEscapeSerialError) {
  const std::string bytes = SmallArchive(GetParam());
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 256);
  for (std::size_t i = 0; i < bytes.size(); i += stride) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ (1 << (i % 8)));
    std::istringstream in(mutated, std::ios::binary);
    try {
      std::unique_ptr<Classifier> model = serial::LoadClassifier(in);
      // A flip in payload bytes (e.g. a weight) may decode; that is fine.
      // Any exception other than SerialError propagates and fails.
    } catch (const serial::SerialError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllClassifiers, SnapshotDecodeTest,
                         ::testing::ValuesIn(kAllClassifiers));

TEST(SnapshotDecodeHeaderTest, BadMagicThrows) {
  std::string bytes = SmallArchive("GLM");
  bytes[0] = static_cast<char>(bytes[0] ^ 0xFF);
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(serial::LoadClassifier(in), serial::SerialError);
}

TEST(SnapshotDecodeHeaderTest, VersionSkewThrows) {
  const std::string bytes = SmallArchive("GLM");
  // 2 (kMinReadVersion) and 3 (kFormatVersion) decode; everything else
  // must be rejected at the header.
  for (const std::uint32_t version : {0u, 1u, 4u, 0xFFFFFFFFu}) {
    std::string mutated = bytes;
    // The u32 version field sits right after the 4-byte magic (LE).
    mutated[4] = static_cast<char>(version & 0xFF);
    mutated[5] = static_cast<char>((version >> 8) & 0xFF);
    mutated[6] = static_cast<char>((version >> 16) & 0xFF);
    mutated[7] = static_cast<char>((version >> 24) & 0xFF);
    std::istringstream in(mutated, std::ios::binary);
    EXPECT_THROW(serial::LoadClassifier(in), serial::SerialError)
        << "version " << version;
  }
}

TEST(SnapshotDecodeHeaderTest, UnknownTagThrows) {
  std::string bytes = SmallArchive("GLM");
  bytes[8] = 'Z';
  bytes[9] = 'Z';
  bytes[10] = 'Z';
  bytes[11] = 'Z';
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(serial::LoadClassifier(in), serial::SerialError);
}

TEST(SnapshotDecodeHeaderTest, ForeignTagNeverEscapesSerialError) {
  // Retag a GLM archive as every other learner: the dispatcher will try to
  // decode a foreign body, which must be rejected (or, pathologically,
  // decode) without UB.
  const std::string bytes = SmallArchive("GLM");
  const std::uint32_t tags[] = {
      serial::kTagDmtClassifier, serial::kTagVfdt, serial::kTagEfdt,
      serial::kTagHat,           serial::kTagFimtDd, serial::kTagSgt,
      serial::kTagArf,           serial::kTagLevBag, serial::kTagOzaBag,
      serial::kTagOzaBoost};
  for (const std::uint32_t tag : tags) {
    std::string mutated = bytes;
    mutated[8] = static_cast<char>(tag & 0xFF);
    mutated[9] = static_cast<char>((tag >> 8) & 0xFF);
    mutated[10] = static_cast<char>((tag >> 16) & 0xFF);
    mutated[11] = static_cast<char>((tag >> 24) & 0xFF);
    std::istringstream in(mutated, std::ios::binary);
    try {
      serial::LoadClassifier(in);
    } catch (const serial::SerialError&) {
    }
  }
}

TEST(SnapshotDecodeHeaderTest, RandomGarbageThrows) {
  std::mt19937_64 noise(12345);
  for (const std::size_t length : {0u, 1u, 3u, 12u, 64u, 1024u, 65536u}) {
    std::string bytes(length, '\0');
    for (char& c : bytes) c = static_cast<char>(noise() & 0xFF);
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(serial::LoadClassifier(in), serial::SerialError)
        << "garbage length " << length;
  }
}

TEST(SnapshotDecodeHeaderTest, RegressorLoadRejectsForeignAndTruncated) {
  // The regressors have their own typed Load entry points.
  core::DmtRegressor model({.num_features = 2});
  Rng rng(71);
  linear::RegressionBatch batch(2);
  FillRegression(&rng, &batch, 2, 400, false);
  model.PartialFit(batch);
  std::ostringstream out(std::ios::binary);
  model.Save(out);
  const std::string bytes = out.str();
  {  // classifier archive into the regressor loader: tag mismatch
    const std::string foreign = SmallArchive("GLM");
    std::istringstream in(foreign, std::ios::binary);
    EXPECT_THROW(core::DmtRegressor::Load(in), serial::SerialError);
    std::istringstream in2(foreign, std::ios::binary);
    EXPECT_THROW(trees::FimtDdRegressor::Load(in2), serial::SerialError);
  }
  {  // regressor archive into the classifier dispatcher: non-classifier tag
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(serial::LoadClassifier(in), serial::SerialError);
  }
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 64);
  for (std::size_t cut = 0; cut < bytes.size(); cut += stride) {
    std::istringstream in(bytes.substr(0, cut), std::ios::binary);
    EXPECT_THROW(core::DmtRegressor::Load(in), serial::SerialError)
        << "truncated at " << cut;
  }
}

// --- Golden archives: the pinned on-disk format ---------------------------
//
// bench/goldens/<learner>.dmts is the canonical archive of a fixed
// training recipe. If this test fails after an intentional format change:
//   1. bump serial::kFormatVersion in src/dmt/serial/archive.h (the format
//      is append-only versioned; old readers must reject new archives),
//   2. regenerate the goldens:
//        DMT_UPDATE_GOLDENS=1 ./dmt_tests --gtest_filter='*GoldenArchive*'
//   3. commit the new .dmts files together with the format change.

std::string SanitizeName(const std::string& name) {
  std::string safe = name;
  for (char& c : safe) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-') c = '_';
  }
  return safe;
}

std::string CanonicalArchive(const std::string& name) {
  std::unique_ptr<Classifier> model = Make(name, 3, 3);
  Rng rng(91);
  for (int b = 0; b < 8; ++b) {
    Batch batch(3);
    FillConcept(&rng, &batch, 3, 3, 150, b >= 5);
    model->PartialFit(batch);
  }
  return SnapshotOf(*model);
}

class GoldenArchiveTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenArchiveTest, PinnedFormatStillDecodesAndReproduces) {
  const std::string name = GetParam();
  const std::string bytes = CanonicalArchive(name);
  const std::string path = std::string(DMT_SOURCE_DIR) + "/bench/goldens/" +
                           SanitizeName(name) + ".dmts";
  if (std::getenv("DMT_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << bytes;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden archive " << path
                  << " -- regenerate with DMT_UPDATE_GOLDENS=1 "
                     "./dmt_tests --gtest_filter='*GoldenArchive*'";
  std::stringstream golden_stream;
  golden_stream << in.rdbuf();
  const std::string golden = golden_stream.str();

  // 1. The pinned archive must still load (backward compatibility).
  std::istringstream decode(golden, std::ios::binary);
  std::unique_ptr<Classifier> restored = serial::LoadClassifier(decode);
  ASSERT_NE(restored, nullptr);

  // 2. The format must not have drifted: the canonical recipe reproduces
  //    the pinned bytes exactly.
  ASSERT_EQ(bytes.size(), golden.size())
      << name << ": archive format changed. If intentional, bump "
      << "serial::kFormatVersion (src/dmt/serial/archive.h) and regenerate "
      << "the goldens with DMT_UPDATE_GOLDENS=1 (see comment above).";
  EXPECT_EQ(bytes, golden)
      << name << ": archive bytes changed. If intentional, bump "
      << "serial::kFormatVersion (src/dmt/serial/archive.h) and regenerate "
      << "the goldens with DMT_UPDATE_GOLDENS=1 (see comment above).";
}

INSTANTIATE_TEST_SUITE_P(AllClassifiers, GoldenArchiveTest,
                         ::testing::ValuesIn(kAllClassifiers));

// --- Backward compatibility: version-2 archives still load ----------------
//
// bench/goldens/compat/<learner>_v2.dmts are frozen format-version-2
// archives (the pre-hot-path format: no order_buckets /
// candidate_grad_f32 config fields, full-f64 candidate gradients). A v3
// reader must keep decoding them -- kMinReadVersion stays at 2 -- and a
// restored model must keep training and re-save as a well-formed v3
// archive. These files are never regenerated; they pin the old bytes.

class V2CompatTest : public ::testing::TestWithParam<const char*> {};

TEST_P(V2CompatTest, Version2ArchiveLoadsTrainsAndResavesAsV3) {
  const std::string name = GetParam();
  const std::string path = std::string(DMT_SOURCE_DIR) +
                           "/bench/goldens/compat/" + SanitizeName(name) +
                           "_v2.dmts";
  std::ifstream in_file(path, std::ios::binary);
  ASSERT_TRUE(in_file) << "missing frozen v2 archive " << path;
  std::stringstream buffer;
  buffer << in_file.rdbuf();
  const std::string v2_bytes = buffer.str();
  ASSERT_GE(v2_bytes.size(), 8u);
  ASSERT_EQ(static_cast<unsigned char>(v2_bytes[4]), 2u)
      << path << " is not a version-2 archive; compat files are frozen "
      << "and must never be regenerated";

  std::unique_ptr<Classifier> model = Restore(v2_bytes);
  ASSERT_NE(model, nullptr) << name;

  // The restore must keep learning (a v2 DMT continues with the archived
  // exact-scan / f64 candidate semantics) and keep predicting sanely.
  Rng rng(977);
  const int m = 3;  // the canonical golden recipe trains on 3 features
  for (int b = 0; b < 5; ++b) {
    Batch batch(m);
    FillConcept(&rng, &batch, m, model->num_classes(), 160, false);
    model->PartialFit(batch);
  }
  std::vector<double> x = {0.25, 0.75, 0.5};
  const std::vector<double> proba = model->PredictProba(x);
  double sum = 0.0;
  for (const double p : proba) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9) << name;

  // Re-saving writes the current format; the new archive must self-identify
  // as v3 and round-trip bit-identically through the v3 reader.
  const std::string v3_bytes = SnapshotOf(*model);
  ASSERT_GE(v3_bytes.size(), 8u);
  EXPECT_EQ(static_cast<unsigned char>(v3_bytes[4]), 3u) << name;
  std::unique_ptr<Classifier> reloaded = Restore(v3_bytes);
  ASSERT_NE(reloaded, nullptr) << name;
  EXPECT_EQ(SnapshotOf(*reloaded), v3_bytes) << name;
}

INSTANTIATE_TEST_SUITE_P(FrozenV2, V2CompatTest,
                         ::testing::Values("DMT", "GLM", "ARF"));

}  // namespace
}  // namespace dmt
