// Tests for the observability layer (src/dmt/obs): registry semantics,
// macro null-safety, and the end-to-end properties the design promises --
// counters are seed-deterministic and attaching a registry never changes
// the learned model.
#include <cstdint>
#include <limits>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "json_check.h"

#include "dmt/core/dynamic_model_tree.h"
#include "dmt/drift/adwin.h"
#include "dmt/drift/page_hinkley.h"
#include "dmt/eval/prequential.h"
#include "dmt/obs/telemetry.h"
#include "dmt/streams/sea.h"
#include "dmt/trees/vfdt.h"

namespace dmt {
namespace {

TEST(TelemetryRegistryTest, CounterPointersAreStableAcrossInserts) {
  obs::TelemetryRegistry registry;
  std::uint64_t* first = registry.Counter("a.first");
  EXPECT_EQ(*first, 0u);
  // Node-based storage: later inserts must not relocate earlier metrics.
  for (int i = 0; i < 1000; ++i) {
    registry.Counter("filler." + std::to_string(i));
  }
  EXPECT_EQ(registry.Counter("a.first"), first);
  ++*first;
  EXPECT_EQ(*registry.Counter("a.first"), 1u);
}

TEST(TelemetryRegistryTest, GaugeAndTimerPointersAreStable) {
  obs::TelemetryRegistry registry;
  double* gauge = registry.Gauge("g");
  obs::PhaseTimer* timer = registry.Timer("t");
  for (int i = 0; i < 100; ++i) {
    registry.Gauge("g" + std::to_string(i));
    registry.Timer("t" + std::to_string(i));
  }
  EXPECT_EQ(registry.Gauge("g"), gauge);
  EXPECT_EQ(registry.Timer("t"), timer);
}

TEST(TelemetryRegistryTest, CountersJsonIsSortedAndExact) {
  obs::TelemetryRegistry registry;
  *registry.Counter("zeta") = 3;
  *registry.Counter("alpha") = 1;
  registry.Counter("middle");  // stays zero
  *registry.Gauge("ignored") = 7.0;
  registry.Timer("ignored_too");
  EXPECT_EQ(registry.CountersJson(),
            "{\n"
            "  \"alpha\": 1,\n"
            "  \"middle\": 0,\n"
            "  \"zeta\": 3\n"
            "}\n");
}

TEST(TelemetryRegistryTest, ToJsonHasAllSections) {
  obs::TelemetryRegistry registry;
  *registry.Counter("c") = 2;
  *registry.Gauge("g") = 0.5;
  obs::PhaseTimer* timer = registry.Timer("t");
  timer->seconds = 1.25;
  timer->calls = 4;
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"g\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("{\"seconds\": 1.25, \"calls\": 4}"),
            std::string::npos);
}

TEST(TelemetryMacrosTest, NullPointersAreNoops) {
  std::uint64_t* counter = nullptr;
  double* gauge = nullptr;
  // Must compile and do nothing -- this is the disabled-mode hot path.
  DMT_TELEMETRY_COUNT(counter);
  DMT_TELEMETRY_ADD(counter, 5);
  DMT_TELEMETRY_SET(gauge, 1.0);
  obs::ScopedPhaseTimer timer(nullptr);
  SUCCEED();
}

TEST(TelemetryMacrosTest, LivePointersAccumulate) {
  obs::TelemetryRegistry registry;
  std::uint64_t* counter = registry.Counter("c");
  double* gauge = registry.Gauge("g");
  DMT_TELEMETRY_COUNT(counter);
  DMT_TELEMETRY_ADD(counter, 4);
  DMT_TELEMETRY_SET(gauge, 2.5);
  EXPECT_EQ(*counter, 5u);
  EXPECT_DOUBLE_EQ(*gauge, 2.5);
}

TEST(ScopedPhaseTimerTest, AccumulatesSecondsAndCalls) {
  obs::PhaseTimer timer;
  {
    obs::ScopedPhaseTimer scope(&timer);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  { obs::ScopedPhaseTimer scope(&timer); }
  EXPECT_EQ(timer.calls, 2u);
  EXPECT_GT(timer.seconds, 0.0);
}

TEST(AdwinTelemetryTest, CountsShrinksAndTracksWidth) {
  obs::TelemetryRegistry registry;
  drift::Adwin adwin(0.002);
  adwin.BindTelemetry(registry.Counter("adwin.shrinks"),
                      registry.Counter("adwin.buckets_dropped"),
                      registry.Gauge("adwin.width"));
  for (int i = 0; i < 400; ++i) adwin.Update(0.0);
  EXPECT_EQ(*registry.Counter("adwin.shrinks"), 0u);
  for (int i = 0; i < 400; ++i) adwin.Update(1.0);
  EXPECT_GT(*registry.Counter("adwin.shrinks"), 0u);
  EXPECT_DOUBLE_EQ(*registry.Gauge("adwin.width"),
                   static_cast<double>(adwin.width()));
}

TEST(PageHinkleyTelemetryTest, CountsResets) {
  obs::TelemetryRegistry registry;
  drift::PageHinkley ph;
  ph.BindTelemetry(registry.Counter("ph.resets"));
  for (int i = 0; i < 200; ++i) ph.Update(0.0);
  for (int i = 0; i < 200; ++i) ph.Update(5.0);
  EXPECT_GT(*registry.Counter("ph.resets"), 0u);
}

// One prequential run of the DMT over a drifting SEA stream, telemetry
// attached via the config.
std::string RunDmtOnSea(std::uint64_t seed, obs::TelemetryRegistry* registry,
                        eval::PrequentialResult* result = nullptr) {
  streams::SeaConfig sea;
  sea.total_samples = 10'000;
  sea.seed = seed;
  streams::SeaGenerator stream(sea);
  core::DynamicModelTree model({.num_features = 3, .num_classes = 2});
  eval::PrequentialConfig config;
  config.expected_samples = sea.total_samples;
  config.telemetry = registry;
  const eval::PrequentialResult r =
      eval::RunPrequential(&stream, &model, config);
  if (result != nullptr) *result = r;
  return registry != nullptr ? registry->CountersJson() : std::string();
}

TEST(TelemetryEndToEndTest, DmtCountersAreSeedDeterministic) {
  obs::TelemetryRegistry a;
  obs::TelemetryRegistry b;
  const std::string first = RunDmtOnSea(7, &a);
  const std::string second = RunDmtOnSea(7, &b);
  EXPECT_EQ(first, second);
  // The run must actually exercise the instrumented paths.
  EXPECT_GT(*a.Counter("dmt.gain_tests"), 0u);
  EXPECT_GT(*a.Counter("dmt.candidate_proposals"), 0u);
  EXPECT_GT(*a.Counter("harness.batches"), 0u);
}

TEST(TelemetryEndToEndTest, HarnessCountersMatchResult) {
  obs::TelemetryRegistry registry;
  eval::PrequentialResult result;
  RunDmtOnSea(7, &registry, &result);
  EXPECT_EQ(*registry.Counter("harness.batches"), result.num_batches);
  EXPECT_EQ(*registry.Counter("harness.samples"), result.total_samples);
  EXPECT_EQ(registry.Timer("harness.train")->calls, result.num_batches);
}

// Attaching a registry must observe the run, never change it: the learned
// metrics are bit-identical with and without telemetry.
TEST(TelemetryEndToEndTest, AttachingTelemetryDoesNotPerturbTheModel) {
  obs::TelemetryRegistry registry;
  eval::PrequentialResult with_telemetry;
  eval::PrequentialResult without_telemetry;
  RunDmtOnSea(7, &registry, &with_telemetry);
  RunDmtOnSea(7, nullptr, &without_telemetry);
  EXPECT_EQ(with_telemetry.f1.mean(), without_telemetry.f1.mean());
  EXPECT_EQ(with_telemetry.num_splits.mean(),
            without_telemetry.num_splits.mean());
  EXPECT_EQ(with_telemetry.num_params.mean(),
            without_telemetry.num_params.mean());
}

TEST(TelemetryEndToEndTest, VfdtSplitCountersAreConsistent) {
  streams::SeaConfig sea;
  sea.total_samples = 10'000;
  sea.seed = 3;
  streams::SeaGenerator stream(sea);
  trees::Vfdt model({.num_features = 3, .num_classes = 2});
  obs::TelemetryRegistry registry;
  eval::PrequentialConfig config;
  config.expected_samples = sea.total_samples;
  config.telemetry = &registry;
  eval::RunPrequential(&stream, &model, config);
  EXPECT_GT(*registry.Counter("vfdt.split_attempts"), 0u);
  EXPECT_LE(*registry.Counter("vfdt.splits"),
            *registry.Counter("vfdt.split_attempts"));
  EXPECT_EQ(*registry.Counter("vfdt.splits"), model.NumSplits());
}

// Regression: AppendDouble printed non-finite gauges as bare `nan` / `inf`
// tokens, which no JSON parser accepts. They must render as `null` and the
// whole document must stay valid JSON.
TEST(TelemetryRegistryTest, NonFiniteGaugesRenderAsNull) {
  obs::TelemetryRegistry registry;
  *registry.Gauge("bad.nan") = std::numeric_limits<double>::quiet_NaN();
  *registry.Gauge("bad.pos_inf") = std::numeric_limits<double>::infinity();
  *registry.Gauge("bad.neg_inf") = -std::numeric_limits<double>::infinity();
  *registry.Gauge("good.value") = 1.5;
  const std::string json = registry.ToJson();
  EXPECT_TRUE(testjson::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"bad.nan\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bad.pos_inf\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bad.neg_inf\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("1.5"), std::string::npos) << json;
  EXPECT_EQ(json.find(": nan"), std::string::npos) << json;
  EXPECT_EQ(json.find(": inf"), std::string::npos) << json;
  EXPECT_EQ(json.find(": -inf"), std::string::npos) << json;
}

// The happy-path document (counters, timers, finite gauges) must also
// satisfy the strict validator, not just eyeball-parse.
TEST(TelemetryRegistryTest, ToJsonIsParseableJson) {
  obs::TelemetryRegistry registry;
  *registry.Counter("c.one") = 7;
  *registry.Gauge("g.pi") = 3.14159;
  registry.Timer("t.fit");
  EXPECT_TRUE(testjson::IsValidJson(registry.ToJson())) << registry.ToJson();
}

}  // namespace
}  // namespace dmt
