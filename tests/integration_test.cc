// Cross-module integration and regression tests: the pieces added for the
// paper reproduction working together (weighted F1 in the harness, teacher
// calibration in the surrogates, the FIMT-DD multiclass adaptation, DMT
// diagnostics), plus end-to-end prequential runs of every model on every
// data-set family at small scale.
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/ensemble/adaptive_random_forest.h"
#include "dmt/ensemble/leveraging_bagging.h"
#include "dmt/eval/metrics.h"
#include "dmt/eval/prequential.h"
#include "dmt/linear/glm_classifier.h"
#include "dmt/streams/concept_stream.h"
#include "dmt/streams/datasets.h"
#include "dmt/trees/efdt.h"
#include "dmt/trees/fimtdd.h"
#include "dmt/trees/hoeffding_adaptive.h"
#include "dmt/trees/vfdt.h"

namespace dmt {
namespace {

TEST(WeightedF1Test, MatchesHandComputation) {
  // Classes: 0 (support 3), 1 (support 1). Predictions: all class 0.
  eval::ConfusionMatrix cm(2);
  cm.Add(0, 0);
  cm.Add(0, 0);
  cm.Add(0, 0);
  cm.Add(0, 1);
  // F1(0): precision 3/4, recall 1 -> 6/7. F1(1) = 0.
  // Weighted: (3 * 6/7 + 1 * 0) / 4.
  EXPECT_NEAR(cm.WeightedF1(), (3.0 * 6.0 / 7.0) / 4.0, 1e-12);
}

TEST(WeightedF1Test, EqualsMacroOnBalancedPerfect) {
  eval::ConfusionMatrix cm(3);
  for (int c = 0; c < 3; ++c) {
    cm.Add(c, c);
    cm.Add(c, c);
  }
  EXPECT_DOUBLE_EQ(cm.WeightedF1(), cm.MacroF1());
  EXPECT_DOUBLE_EQ(cm.WeightedF1(), 1.0);
}

TEST(LinearTeacherCalibrationTest, MarginalsMatchPriorsDespiteLargeWeights) {
  streams::ConceptStreamConfig config;
  config.teacher = streams::TeacherKind::kLinear;
  config.num_features = 20;
  config.num_classes = 5;
  config.class_priors = {0.6, 0.2, 0.1, 0.06, 0.04};
  config.total_samples = 30'000;
  config.seed = 11;
  streams::ConceptStream stream(config);
  std::vector<int> counts(5, 0);
  Instance instance;
  while (stream.NextInstance(&instance)) ++counts[instance.y];
  EXPECT_NEAR(counts[0] / 30'000.0, 0.6, 0.06);
  EXPECT_NEAR(counts[1] / 30'000.0, 0.2, 0.05);
  EXPECT_GT(counts[3], 0);
}

TEST(HybridTeacherTest, MixesLinearAndTreePosteriors) {
  streams::ConceptStreamConfig config;
  config.teacher = streams::TeacherKind::kHybrid;
  config.hybrid_linear_weight = 0.7;
  config.num_features = 6;
  config.num_classes = 2;
  config.total_samples = 1000;
  config.seed = 3;
  streams::ConceptStream stream(config);
  // Posterior stays a proper distribution and varies with x.
  Rng rng(4);
  double min_p = 1.0;
  double max_p = 0.0;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x(6);
    for (double& v : x) v = rng.Uniform();
    const std::vector<double> p = stream.Posterior(x);
    ASSERT_NEAR(p[0] + p[1], 1.0, 1e-9);
    min_p = std::min(min_p, p[0]);
    max_p = std::max(max_p, p[0]);
  }
  EXPECT_GT(max_p - min_p, 0.3);
}

TEST(FimtDdTest, LearnsMulticlassAxisConcept) {
  // Three classes split by x0 thirds; the one-hot SDR adaptation must find
  // these axis splits (a raw class-index target would depend on the
  // arbitrary class order).
  trees::FimtDd tree({.num_features = 2, .num_classes = 3});
  Rng rng(5);
  auto fill = [&](Batch* batch, int n) {
    for (int i = 0; i < n; ++i) {
      std::vector<double> x = {rng.Uniform(), rng.Uniform()};
      batch->Add(x, x[0] <= 0.33 ? 0 : (x[0] <= 0.66 ? 1 : 2));
    }
  };
  for (int b = 0; b < 20; ++b) {
    Batch batch(2);
    fill(&batch, 500);
    tree.PartialFit(batch);
  }
  EXPECT_GE(tree.NumInnerNodes(), 2u);
  Batch test(2);
  fill(&test, 900);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += tree.Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(correct, 800);
}

TEST(FimtDdTest, SdrInvariantToClassRelabeling) {
  // Permuting class labels must not change the learned structure size.
  Rng rng(6);
  std::vector<Instance> data;
  for (int i = 0; i < 6000; ++i) {
    Instance instance;
    instance.x = {rng.Uniform(), rng.Uniform()};
    instance.y = instance.x[0] <= 0.33 ? 0 : (instance.x[0] <= 0.66 ? 1 : 2);
    data.push_back(instance);
  }
  const int permutation[3] = {2, 0, 1};
  trees::FimtDd original({.num_features = 2, .num_classes = 3, .seed = 1});
  trees::FimtDd permuted({.num_features = 2, .num_classes = 3, .seed = 1});
  Batch batch_a(2);
  Batch batch_b(2);
  for (const Instance& instance : data) {
    batch_a.Add(instance.x, instance.y);
    batch_b.Add(instance.x, permutation[instance.y]);
  }
  original.PartialFit(batch_a);
  permuted.PartialFit(batch_b);
  EXPECT_EQ(original.NumInnerNodes(), permuted.NumInnerNodes());
}

TEST(DmtDiagnosticsTest, RootGainGrowsWithEvidence) {
  core::DynamicModelTree tree({.num_features = 2, .num_classes = 2});
  Rng rng(7);
  auto fill = [&](Batch* batch, int n) {
    for (int i = 0; i < n; ++i) {
      std::vector<double> x = {rng.Uniform(), rng.Uniform()};
      batch->Add(x, (x[0] > 0.5) != (x[1] > 0.5) ? 1 : 0);
    }
  };
  double gain_early = 0.0;
  double gain_late = 0.0;
  for (int b = 0; b < 40; ++b) {
    Batch batch(2);
    fill(&batch, 50);
    tree.PartialFit(batch);
    if (b == 9) gain_early = tree.DiagnoseRoot().best_gain;
    if (b == 39) gain_late = tree.DiagnoseRoot().best_gain;
    if (tree.NumInnerNodes() > 0) return;  // split already happened: fine
  }
  EXPECT_GT(gain_late, gain_early);
  EXPECT_LE(tree.DiagnoseRoot().num_candidates, 6u);  // 3m bound
}

// End-to-end: every model runs prequentially on one stream of each teacher
// family without crashing, with sane outputs.
class EveryModelTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EveryModelTest, RunsOnRepresentativeStreams) {
  const std::string model_name = GetParam();
  for (const char* dataset : {"Electricity", "Gas", "SEA"}) {
    const streams::DatasetSpec spec = streams::DatasetByName(dataset);
    const std::size_t samples = 3000;
    std::unique_ptr<streams::Stream> stream = spec.make(samples, 9);
    const int m = static_cast<int>(spec.num_features);
    const int c = static_cast<int>(spec.num_classes);

    std::unique_ptr<Classifier> model;
    if (model_name == "DMT") {
      model = std::make_unique<core::DynamicModelTree>(
          core::DmtConfig{.num_features = m, .num_classes = c});
    } else if (model_name == "FIMT-DD") {
      model = std::make_unique<trees::FimtDd>(
          trees::FimtDdConfig{.num_features = m, .num_classes = c});
    } else if (model_name == "VFDT") {
      model = std::make_unique<trees::Vfdt>(
          trees::VfdtConfig{.num_features = m, .num_classes = c});
    } else if (model_name == "HT-Ada") {
      model = std::make_unique<trees::HoeffdingAdaptiveTree>(
          trees::HatConfig{.num_features = m, .num_classes = c});
    } else if (model_name == "EFDT") {
      model = std::make_unique<trees::Efdt>(
          trees::EfdtConfig{.num_features = m, .num_classes = c});
    } else if (model_name == "ARF") {
      model = std::make_unique<ensemble::AdaptiveRandomForest>(
          ensemble::AdaptiveRandomForestConfig{.num_features = m,
                                               .num_classes = c});
    } else if (model_name == "LevBag") {
      model = std::make_unique<ensemble::LeveragingBagging>(
          ensemble::LeveragingBaggingConfig{.num_features = m,
                                            .num_classes = c});
    } else {
      model = std::make_unique<linear::GlmClassifier>(
          linear::GlmConfig{.num_features = m, .num_classes = c});
    }

    eval::PrequentialConfig config;
    config.expected_samples = samples;
    const eval::PrequentialResult result =
        eval::RunPrequential(stream.get(), model.get(), config);
    EXPECT_EQ(result.total_samples, samples) << dataset;
    EXPECT_GE(result.f1.mean(), 0.0) << dataset;
    EXPECT_LE(result.f1.mean(), 1.0) << dataset;
    EXPECT_GT(model->NumParameters(), 0u) << dataset;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, EveryModelTest,
                         ::testing::Values("DMT", "FIMT-DD", "VFDT", "HT-Ada",
                                           "EFDT", "ARF", "LevBag", "GLM"));

// Regression anchor: on the drifting SEA stream the DMT must clearly beat
// the majority-class VFDT in F1 while using fewer splits -- the paper's
// headline, fixed at small scale so it stays fast and deterministic.
TEST(PaperHeadlineTest, DmtBeatsVfdtOnSeaWithFewerSplits) {
  const streams::DatasetSpec spec = streams::DatasetByName("SEA");
  const std::size_t samples = 20'000;

  std::unique_ptr<streams::Stream> s1 = spec.make(samples, 21);
  core::DynamicModelTree dmt({.num_features = 3, .num_classes = 2});
  eval::PrequentialConfig config;
  config.expected_samples = samples;
  const eval::PrequentialResult dmt_result =
      eval::RunPrequential(s1.get(), &dmt, config);

  std::unique_ptr<streams::Stream> s2 = spec.make(samples, 21);
  trees::Vfdt vfdt({.num_features = 3, .num_classes = 2});
  const eval::PrequentialResult vfdt_result =
      eval::RunPrequential(s2.get(), &vfdt, config);

  EXPECT_GT(dmt_result.f1.mean(), vfdt_result.f1.mean());
  EXPECT_LT(dmt_result.num_splits.mean(), vfdt_result.num_splits.mean() + 3);
}

}  // namespace
}  // namespace dmt
