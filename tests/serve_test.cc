// Tests for the multi-tenant serving layer (src/dmt/serve): request
// grammar, the engine's determinism contract (byte-identical responses at
// any shard count), explicit back-pressure, live snapshot/restore parity
// with the offline serial archives, and JSONL telemetry validity under
// NaN traffic.
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/linear/glm_classifier.h"
#include "dmt/robust/faulty_stream.h"
#include "dmt/serial/model_io.h"
#include "dmt/serve/bridge.h"
#include "dmt/serve/engine.h"
#include "dmt/serve/exporter.h"
#include "dmt/serve/request.h"
#include "dmt/serve/state_dir.h"
#include "json_check.h"

namespace dmt {
namespace {

serve::ModelFactory GlmFactory(int features, int classes) {
  return [features, classes](const std::string& /*id*/,
                             std::uint64_t seed) -> std::unique_ptr<Classifier> {
    linear::GlmConfig config;
    config.num_features = features;
    config.num_classes = classes;
    config.seed = seed;
    return std::make_unique<linear::GlmClassifier>(config);
  };
}

serve::ModelFactory DmtFactory(int features, int classes) {
  return [features, classes](const std::string& /*id*/,
                             std::uint64_t seed) -> std::unique_ptr<Classifier> {
    core::DmtConfig config;
    config.num_features = features;
    config.num_classes = classes;
    config.seed = seed;
    return std::make_unique<core::DynamicModelTree>(config);
  };
}

std::string RunLines(serve::ServeEngine* engine,
                     const std::vector<std::string>& lines) {
  std::ostringstream out;
  for (const std::string& line : lines) engine->ServeLine(line, out);
  engine->Finish(out);
  return out.str();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ------------------------------------------------------- request grammar

TEST(RequestParseTest, AcceptsEveryVerb) {
  serve::Request request;
  std::string error;
  EXPECT_TRUE(
      serve::ParseRequestLine("train u1 0.5,1.5,1", 2, &request, &error));
  EXPECT_EQ(request.verb, serve::Verb::kTrain);
  EXPECT_EQ(request.stream_id, "u1");
  ASSERT_EQ(request.values.size(), 3u);
  EXPECT_DOUBLE_EQ(request.values[1], 1.5);

  EXPECT_TRUE(serve::ParseRequestLine("score u1 0.5,1.5", 2, &request, &error));
  EXPECT_EQ(request.verb, serve::Verb::kScore);
  EXPECT_EQ(request.values.size(), 2u);

  EXPECT_TRUE(
      serve::ParseRequestLine("snapshot u1 /tmp/m.dmt", 2, &request, &error));
  EXPECT_EQ(request.verb, serve::Verb::kSnapshot);
  EXPECT_EQ(request.path, "/tmp/m.dmt");

  EXPECT_TRUE(
      serve::ParseRequestLine("restore u1 /tmp/m.dmt", 2, &request, &error));
  EXPECT_EQ(request.verb, serve::Verb::kRestore);

  EXPECT_TRUE(serve::ParseRequestLine("drop u1", 2, &request, &error));
  EXPECT_EQ(request.verb, serve::Verb::kDrop);

  EXPECT_TRUE(serve::ParseRequestLine("stats", 2, &request, &error));
  EXPECT_EQ(request.verb, serve::Verb::kStats);
}

TEST(RequestParseTest, ToleratesCarriageReturnAndAcceptsNonFiniteData) {
  serve::Request request;
  std::string error;
  EXPECT_TRUE(
      serve::ParseRequestLine("score u1 0.5,1.5\r", 2, &request, &error));
  // Non-finite values are *data* (the bad-input policy decides their fate),
  // not a protocol error.
  EXPECT_TRUE(serve::ParseRequestLine("score u1 nan,inf", 2, &request, &error));
  EXPECT_TRUE(std::isnan(request.values[0]));
  EXPECT_TRUE(std::isinf(request.values[1]));
}

TEST(RequestParseTest, RejectsMalformedLines) {
  serve::Request request;
  std::string error;
  EXPECT_FALSE(serve::ParseRequestLine("", 2, &request, &error));
  EXPECT_FALSE(serve::ParseRequestLine("train", 2, &request, &error));
  EXPECT_FALSE(serve::ParseRequestLine("poke u1 0.5,1.5", 2, &request, &error));
  EXPECT_NE(error.find("unknown verb"), std::string::npos);
  EXPECT_FALSE(serve::ParseRequestLine("train u1 0.5,abc,1", 2, &request,
                                       &error));
  EXPECT_NE(error.find("bad csv value"), std::string::npos);
  // Arity is checked against the engine's feature count (+1 label for
  // train).
  EXPECT_FALSE(serve::ParseRequestLine("train u1 0.5,1", 2, &request, &error));
  EXPECT_FALSE(serve::ParseRequestLine("score u1 0.5,1.5,2.5", 2, &request,
                                       &error));
  EXPECT_FALSE(serve::ParseRequestLine("stats now", 2, &request, &error));
  EXPECT_FALSE(serve::ParseRequestLine("drop u1 extra", 2, &request, &error));
}

// ---------------------------------------------------------- determinism

std::vector<std::string> ManyStreamScript(std::size_t num_requests,
                                          std::size_t num_streams) {
  // Deterministic inline LCG; no global RNG state.
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  std::vector<std::string> lines;
  lines.reserve(num_requests + 2);
  for (std::size_t i = 0; i < num_requests; ++i) {
    const std::string id = "s" + std::to_string(next() % num_streams);
    const double a = static_cast<double>(next() % 1000) / 1000.0;
    const double b = static_cast<double>(next() % 1000) / 1000.0;
    std::ostringstream line;
    if (next() % 10 < 6) {
      line << "train " << id << ' ' << a << ',' << b << ',' << next() % 2;
    } else {
      line << "score " << id << ' ' << a << ',' << b;
    }
    lines.push_back(line.str());
    if (i % 997 == 0) lines.push_back("stats");
  }
  lines.push_back("stats");
  return lines;
}

TEST(ServeEngineTest, ThousandStreamsByteIdenticalAcrossShardCounts) {
  const std::vector<std::string> script = ManyStreamScript(4000, 1100);
  std::string outputs[3];
  const std::size_t shard_counts[3] = {1, 4, 7};
  for (int i = 0; i < 3; ++i) {
    serve::ServeConfig config;
    config.num_features = 2;
    config.num_classes = 2;
    config.num_shards = shard_counts[i];
    config.seed = 99;
    config.batch_window = 64;
    config.factory = GlmFactory(2, 2);
    serve::ServeEngine engine(config);
    outputs[i] = RunLines(&engine, script);
    EXPECT_GE(engine.num_streams(), 1000u);
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
  // Exactly one response line per request, in order.
  EXPECT_EQ(SplitLines(outputs[0]).size(), script.size());
}

TEST(ServeEngineTest, DmtModelIsAlsoShardCountInvariant) {
  const std::vector<std::string> script = ManyStreamScript(1500, 40);
  std::string outputs[2];
  const std::size_t shard_counts[2] = {1, 3};
  for (int i = 0; i < 2; ++i) {
    serve::ServeConfig config;
    config.num_features = 2;
    config.num_classes = 2;
    config.num_shards = shard_counts[i];
    config.seed = 7;
    config.batch_window = 32;
    config.factory = DmtFactory(2, 2);
    serve::ServeEngine engine(config);
    outputs[i] = RunLines(&engine, script);
  }
  EXPECT_EQ(outputs[0], outputs[1]);
}

TEST(ServeEngineTest, SameIdGetsSameModelRegardlessOfArrivalOrder) {
  // The per-stream seed depends only on (engine seed, id): training "b"
  // first must not change what "a" learns.
  const std::vector<std::string> tail = {"train a 0.1,0.9,1", "score a 0.5,0.5"};
  std::vector<std::string> first_a = tail;
  std::vector<std::string> b_then_a = {"train b 0.8,0.2,0"};
  b_then_a.insert(b_then_a.end(), tail.begin(), tail.end());

  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine1(config);
  serve::ServeEngine engine2(config);
  const std::vector<std::string> out1 = SplitLines(RunLines(&engine1, first_a));
  const std::vector<std::string> out2 =
      SplitLines(RunLines(&engine2, b_then_a));
  ASSERT_EQ(out1.size(), 2u);
  ASSERT_EQ(out2.size(), 3u);
  EXPECT_EQ(out1[1], out2[2]);  // identical score for "a"
}

// --------------------------------------------------------- back-pressure

TEST(ServeEngineTest, FullShardQueueRejectsWithRetryAfter) {
  serve::ServeConfig config;
  config.num_features = 1;
  config.num_classes = 2;
  config.num_shards = 1;
  config.batch_window = 8;
  config.queue_capacity = 2;
  config.factory = GlmFactory(1, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> lines = {
      "train u 0.1,0", "train u 0.2,1", "train u 0.3,0", "train u 0.4,1"};
  const std::vector<std::string> out = SplitLines(RunLines(&engine, lines));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], "OK train u n=1");
  EXPECT_EQ(out[1], "OK train u n=2");
  EXPECT_EQ(out[2], "ERR retry-after=1 u shard=0 queue_full");
  EXPECT_EQ(out[3], "ERR retry-after=1 u shard=0 queue_full");
}

TEST(ServeEngineTest, DefaultQueueCapacityNeverRejects) {
  serve::ServeConfig config;
  config.num_features = 1;
  config.num_classes = 2;
  config.num_shards = 1;
  config.batch_window = 4;  // queue_capacity defaults to the window size
  config.factory = GlmFactory(1, 2);
  serve::ServeEngine engine(config);
  std::vector<std::string> lines;
  for (int i = 0; i < 20; ++i) {
    lines.push_back("train u 0." + std::to_string(i % 10) + "," +
                    std::to_string(i % 2));
  }
  const std::string out = RunLines(&engine, lines);
  EXPECT_EQ(out.find("retry-after"), std::string::npos);
}

// ----------------------------------------------------- snapshot / restore

TEST(ServeEngineTest, LiveSnapshotBitIdenticalToOfflineArchive) {
  const std::string live_path = ::testing::TempDir() + "serve_live.dmt";
  const std::string offline_path = ::testing::TempDir() + "serve_offline.dmt";
  const int kRows = 37;

  std::uint64_t state = 11;
  const auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < kRows; ++i) {
    rows.push_back({static_cast<double>(next() % 1000) / 1000.0,
                    static_cast<double>(next() % 1000) / 1000.0,
                    static_cast<double>(next() % 2)});
  }

  // Live: one window holds every row, so the engine performs exactly one
  // PartialFit with all 37 rows -- the same batch structure the offline
  // path uses below. batch_window is part of the determinism contract.
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.seed = 5;
  config.batch_window = 256;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  std::vector<std::string> lines;
  for (const std::vector<double>& row : rows) {
    std::ostringstream line;
    line << "train u " << row[0] << ',' << row[1] << ','
         << static_cast<int>(row[2]);
    lines.push_back(line.str());
  }
  lines.push_back("snapshot u " + live_path);
  const std::string out = RunLines(&engine, lines);
  EXPECT_NE(out.find("OK snapshot u " + live_path), std::string::npos) << out;

  // Offline: same model seed, same single batch, direct serial save.
  linear::GlmConfig glm;
  glm.num_features = 2;
  glm.num_classes = 2;
  glm.seed = DeriveSeed(5, "u");
  linear::GlmClassifier offline(glm);
  Batch batch(2);
  for (const std::vector<double>& row : rows) {
    batch.Add(std::span<const double>(row.data(), 2),
              static_cast<int>(row[2]));
  }
  offline.PartialFit(batch);
  serial::SaveClassifierToFile(offline, offline_path);

  const std::string live_bytes = ReadFileBytes(live_path);
  const std::string offline_bytes = ReadFileBytes(offline_path);
  ASSERT_FALSE(live_bytes.empty());
  EXPECT_EQ(live_bytes, offline_bytes);
}

TEST(ServeEngineTest, RestoreRollsBackToSnapshotState) {
  const std::string path = ::testing::TempDir() + "serve_rollback.dmt";
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> lines = {
      "train u 0.1,0.9,1", "train u 0.9,0.1,0",
      "snapshot u " + path,
      "score u 0.4,0.6",          // [3] reference prediction
      "train u 0.5,0.5,1",        // moves the live model
      "restore u " + path,
      "score u 0.4,0.6",          // [6] must match [3] exactly
  };
  const std::vector<std::string> out = SplitLines(RunLines(&engine, lines));
  ASSERT_EQ(out.size(), lines.size());
  EXPECT_EQ(out[5], "OK restore u");
  EXPECT_EQ(out[6], out[3]);
}

TEST(ServeEngineTest, SnapshotOfUnknownStreamIsAnError) {
  serve::ServeConfig config;
  config.num_features = 1;
  config.num_classes = 2;
  config.factory = GlmFactory(1, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> out =
      SplitLines(RunLines(&engine, {"snapshot ghost /tmp/ghost.dmt"}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "ERR unknown_stream ghost");
}

TEST(ServeEngineTest, DropForgetsAndRecreatesFreshModel) {
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> session = {
      "train u 0.2,0.8,1", "train u 0.7,0.3,0", "score u 0.5,0.5"};
  std::vector<std::string> script = session;
  script.push_back("drop u");
  script.insert(script.end(), session.begin(), session.end());
  const std::vector<std::string> out = SplitLines(RunLines(&engine, script));
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[3], "OK drop u");
  // Same id + same engine seed -> the recreated stream relearns the exact
  // same model; train ordinals restart at 1.
  EXPECT_EQ(out[4], "OK train u n=1");
  EXPECT_EQ(out[6], out[2]);
  EXPECT_EQ(engine.num_streams(), 1u);
}

// ----------------------------------------------------- bad-input policies

TEST(ServeEngineTest, SkipPolicyDropsNonFiniteRows) {
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.bad_input_policy = BadInputPolicy::kSkip;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> out = SplitLines(RunLines(
      &engine, {"train u nan,0.5,1", "score u inf,0.5", "train u 0.1,0.2,5"}));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "OK train u dropped");
  EXPECT_EQ(out[1], "OK score u dropped");
  EXPECT_EQ(out[2], "OK train u dropped");  // out-of-range label
}

TEST(ServeEngineTest, ThrowPolicyRejectsWithoutAborting) {
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.bad_input_policy = BadInputPolicy::kThrow;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> out = SplitLines(
      RunLines(&engine, {"train u nan,0.5,1", "train u 0.1,0.5,1"}));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "ERR bad_row train u");
  EXPECT_EQ(out[1], "OK train u n=1");  // the server kept serving
}

TEST(ServeEngineTest, ImputePolicyZeroFillsFeaturesButNeverLabels) {
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.bad_input_policy = BadInputPolicy::kImputeMidpoint;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> out = SplitLines(RunLines(
      &engine, {"train u nan,0.5,1", "train u 0.1,0.5,nan"}));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "OK train u n=1");       // feature imputed, row kept
  EXPECT_EQ(out[1], "OK train u dropped");   // bad label is never imputed
}

// ------------------------------------------------------- telemetry export

TEST(ServeEngineTest, ExporterEmitsValidJsonlUnderNanTraffic) {
  std::ostringstream sink;
  serve::JsonlExporter exporter(&sink);
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.num_shards = 2;
  config.batch_window = 2;
  config.exporter = &exporter;
  config.export_every = 1;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  std::vector<std::string> lines;
  for (int i = 0; i < 6; ++i) {
    lines.push_back("train s" + std::to_string(i) + " nan,0.5,1");
    lines.push_back("score s" + std::to_string(i) + " 0.4,0.6");
  }
  RunLines(&engine, lines);

  const std::vector<std::string> records = SplitLines(sink.str());
  ASSERT_GE(records.size(), 2u);
  EXPECT_EQ(exporter.lines_written(), records.size());
  EXPECT_EQ(exporter.lines_dropped(), 0u);
  bool saw_null_gauge = false;
  for (const std::string& record : records) {
    EXPECT_TRUE(testjson::IsValidJson(record)) << record;
    EXPECT_NE(record.find("\"shard\""), std::string::npos);
    EXPECT_NE(record.find("serve.bad_rows"), std::string::npos);
    if (record.find("\"serve.last_bad_value\": null") != std::string::npos) {
      saw_null_gauge = true;
    }
  }
  // The NaN feature value landed in the last_bad_value gauge and must have
  // been rendered as JSON null, never as a bare `nan` token.
  EXPECT_TRUE(saw_null_gauge) << sink.str();
  EXPECT_EQ(sink.str().find(" nan"), std::string::npos);
}

TEST(ServeEngineTest, StatsPayloadIsValidJson) {
  serve::ServeConfig config;
  config.num_features = 1;
  config.num_classes = 2;
  config.factory = GlmFactory(1, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> out =
      SplitLines(RunLines(&engine, {"train u 0.5,1", "stats"}));
  ASSERT_EQ(out.size(), 2u);
  ASSERT_EQ(out[1].rfind("OK stats ", 0), 0u);
  const std::string payload = out[1].substr(std::string("OK stats ").size());
  EXPECT_TRUE(testjson::IsValidJson(payload)) << payload;
  EXPECT_NE(payload.find("\"train_rows\": 1"), std::string::npos);
}

TEST(ServeEngineTest, ParseErrorsGetOneResponseLineEach) {
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> out = SplitLines(RunLines(
      &engine, {"bogus", "train u 0.5", "train u 0.1,0.2,1", ""}));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].rfind("ERR parse ", 0), 0u);
  EXPECT_EQ(out[1].rfind("ERR parse ", 0), 0u);
  EXPECT_EQ(out[2], "OK train u n=1");
  EXPECT_EQ(out[3].rfind("ERR parse ", 0), 0u);
}

// ------------------------------------------------ durability & lifecycle

std::string FreshStateDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Train/score traffic over `num_streams` streams with periodic revisits
// of old streams (forcing warm starts once eviction is on). No `stats`
// lines: stats report eviction tallies, which legitimately differ between
// a bounded and an unbounded engine.
std::vector<std::string> RevisitingScript(std::size_t num_requests,
                                          std::size_t num_streams) {
  std::uint64_t state = 0x2545f4914f6cdd1dULL;
  const auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  std::vector<std::string> lines;
  lines.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    // Mostly a moving "hot" window of streams, periodically jumping back
    // to the coldest ones so evicted models must be warm-started.
    const std::size_t hot = (i / 7) % num_streams;
    const std::size_t id_index = next() % 4 == 0 ? (next() % num_streams)
                                                 : hot;
    const std::string id = "s" + std::to_string(id_index);
    const double a = static_cast<double>(next() % 1000) / 1000.0;
    const double b = static_cast<double>(next() % 1000) / 1000.0;
    std::ostringstream line;
    if (next() % 10 < 6) {
      line << "train " << id << ' ' << a << ',' << b << ',' << next() % 2;
    } else {
      line << "score " << id << ' ' << a << ',' << b;
    }
    lines.push_back(line.str());
  }
  return lines;
}

TEST(ServeDurabilityTest, EvictionWithoutStateDirIsRefused) {
  serve::ServeConfig config;
  config.num_features = 1;
  config.num_classes = 2;
  config.max_streams = 4;
  config.factory = GlmFactory(1, 2);
  EXPECT_THROW(serve::ServeEngine engine(config), serve::StateError);
}

TEST(ServeDurabilityTest, LruEvictionBoundsResidentStreams) {
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.batch_window = 8;
  config.state_dir = FreshStateDir("serve_evict_bound");
  config.max_streams = 4;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  const std::string out =
      RunLines(&engine, RevisitingScript(400, 20));
  EXPECT_EQ(out.find("ERR"), std::string::npos) << out;
  EXPECT_EQ(engine.num_streams(), 20u);       // every stream still known
  EXPECT_LE(engine.resident_streams(), 4u);   // but at most 4 in memory
  // Per-shard telemetry saw the lifecycle events.
  std::uint64_t evictions = 0;
  std::uint64_t warm_starts = 0;
  for (std::size_t s = 0; s < engine.num_shards(); ++s) {
    evictions += *engine.shard(s).evictions;
    warm_starts += *engine.shard(s).warm_starts;
  }
  EXPECT_GT(evictions, 0u);
  EXPECT_GT(warm_starts, 0u);
}

TEST(ServeDurabilityTest, EvictionIsByteInvisibleForGlm) {
  const std::vector<std::string> script = RevisitingScript(600, 12);
  serve::ServeConfig unbounded;
  unbounded.num_features = 2;
  unbounded.num_classes = 2;
  unbounded.batch_window = 16;
  unbounded.seed = 3;
  unbounded.factory = GlmFactory(2, 2);
  serve::ServeEngine reference(unbounded);
  const std::string expected = RunLines(&reference, script);

  serve::ServeConfig bounded = unbounded;
  bounded.state_dir = FreshStateDir("serve_evict_glm");
  bounded.max_streams = 3;
  bounded.idle_windows = 2;
  serve::ServeEngine engine(bounded);
  const std::string actual = RunLines(&engine, script);
  EXPECT_EQ(actual, expected);
  EXPECT_LE(engine.resident_streams(), 3u);
}

TEST(ServeDurabilityTest, EvictionIsByteInvisibleForDmt) {
  const std::vector<std::string> script = RevisitingScript(400, 8);
  serve::ServeConfig unbounded;
  unbounded.num_features = 2;
  unbounded.num_classes = 2;
  unbounded.batch_window = 16;
  unbounded.seed = 17;
  unbounded.factory = DmtFactory(2, 2);
  serve::ServeEngine reference(unbounded);
  const std::string expected = RunLines(&reference, script);

  serve::ServeConfig bounded = unbounded;
  bounded.state_dir = FreshStateDir("serve_evict_dmt");
  bounded.max_streams = 2;
  serve::ServeEngine engine(bounded);
  EXPECT_EQ(RunLines(&engine, script), expected);
}

TEST(ServeDurabilityTest, ShardCountInvariantWithEvictionActive) {
  // Eviction decisions run on the routing thread at window boundaries, so
  // the full transcript -- stats lines included -- is shard-invariant.
  std::vector<std::string> script = RevisitingScript(500, 15);
  for (std::size_t i = 50; i < script.size(); i += 100) {
    script[i] = "stats";
  }
  std::string outputs[2];
  const std::size_t shard_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    serve::ServeConfig config;
    config.num_features = 2;
    config.num_classes = 2;
    config.num_shards = shard_counts[i];
    config.batch_window = 8;
    config.seed = 23;
    config.state_dir =
        FreshStateDir("serve_evict_shards" + std::to_string(i));
    config.max_streams = 5;
    config.idle_windows = 3;
    config.factory = GlmFactory(2, 2);
    serve::ServeEngine engine(config);
    outputs[i] = RunLines(&engine, script);
  }
  EXPECT_EQ(outputs[0], outputs[1]);
}

TEST(ServeDurabilityTest, CheckpointRecoveryContinuesByteIdentically) {
  // 48 requests at batch_window 8 and checkpoint_every 2: checkpoints
  // land after requests 16, 32 and 48. Kill the first engine (abandon it
  // un-Finished) after 40 requests -- the newest manifest then covers
  // exactly the first 32 -- and recovery must replay the tail to the same
  // bytes an uninterrupted run produces, stats lines included.
  std::vector<std::string> script = RevisitingScript(48, 6);
  script[40] = "stats";  // tally continuity, right after the cut
  script[47] = "stats";
  const std::size_t covered = 32;

  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.batch_window = 8;
  config.seed = 9;
  config.model_kind = "GLM";
  config.checkpoint_every = 2;
  config.factory = GlmFactory(2, 2);

  // Uninterrupted reference run, in its own state dir.
  serve::ServeConfig reference_config = config;
  reference_config.state_dir = FreshStateDir("serve_recover_ref");
  serve::ServeEngine reference(reference_config);
  const std::vector<std::string> expected =
      SplitLines(RunLines(&reference, script));
  ASSERT_EQ(expected.size(), script.size());

  // Crashing run: serve 40 requests, never Finish (simulated kill -9; the
  // destructor does not checkpoint).
  config.state_dir = FreshStateDir("serve_recover_crash");
  {
    serve::ServeEngine doomed(config);
    std::ostringstream sink;
    for (std::size_t i = 0; i < 40; ++i) doomed.ServeLine(script[i], sink);
  }

  // Recovery: the new engine resumes from request `covered` and must
  // reproduce the reference transcript for the tail exactly.
  serve::ServeEngine recovered(config);
  EXPECT_GT(recovered.num_streams(), 0u);
  std::ostringstream out;
  for (std::size_t i = covered; i < script.size(); ++i) {
    recovered.ServeLine(script[i], out);
  }
  recovered.Finish(out);
  const std::vector<std::string> tail = SplitLines(out.str());
  ASSERT_EQ(tail.size(), script.size() - covered);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i], expected[covered + i]) << "response " << (covered + i);
  }
}

TEST(ServeDurabilityTest, RecoveryWithEvictionIsShardInvariant) {
  // Crash-recover under active eviction at two shard counts; the replayed
  // tails must agree byte for byte.
  const std::vector<std::string> script = RevisitingScript(96, 10);
  const std::size_t covered = 64;  // checkpoints every 2 windows of 8
  std::string tails[2];
  const std::size_t shard_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    serve::ServeConfig config;
    config.num_features = 2;
    config.num_classes = 2;
    config.num_shards = shard_counts[i];
    config.batch_window = 8;
    config.seed = 31;
    config.model_kind = "GLM";
    config.checkpoint_every = 2;
    config.max_streams = 4;
    config.state_dir =
        FreshStateDir("serve_recover_shards" + std::to_string(i));
    config.factory = GlmFactory(2, 2);
    {
      serve::ServeEngine doomed(config);
      std::ostringstream sink;
      for (std::size_t j = 0; j < 72; ++j) doomed.ServeLine(script[j], sink);
    }
    serve::ServeEngine recovered(config);
    std::ostringstream out;
    for (std::size_t j = covered; j < script.size(); ++j) {
      recovered.ServeLine(script[j], out);
    }
    recovered.Finish(out);
    tails[i] = out.str();
  }
  EXPECT_FALSE(tails[0].empty());
  EXPECT_EQ(tails[0], tails[1]);
}

TEST(ServeDurabilityTest, RecoveryRejectsConfigSkew) {
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.model_kind = "GLM";
  config.state_dir = FreshStateDir("serve_skew");
  config.factory = GlmFactory(2, 2);
  {
    serve::ServeEngine engine(config);
    std::ostringstream out;
    engine.ServeLine("train u 0.1,0.9,1", out);
    engine.Finish(out);  // writes the manifest
  }
  {
    serve::ServeConfig skew = config;
    skew.model_kind = "DMT";
    EXPECT_THROW(serve::ServeEngine engine(skew), serve::StateError);
  }
  {
    serve::ServeConfig skew = config;
    skew.seed = config.seed + 1;
    EXPECT_THROW(serve::ServeEngine engine(skew), serve::StateError);
  }
  {
    serve::ServeConfig skew = config;
    skew.batch_window = config.batch_window + 1;
    EXPECT_THROW(serve::ServeEngine engine(skew), serve::StateError);
  }
  // The matching configuration still recovers.
  serve::ServeEngine engine(config);
  EXPECT_EQ(engine.num_streams(), 1u);
}

TEST(ServeDurabilityTest, CorruptManifestIsATypedRefusal) {
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.state_dir = FreshStateDir("serve_corrupt");
  config.factory = GlmFactory(2, 2);
  {
    serve::ServeEngine engine(config);
    std::ostringstream out;
    engine.ServeLine("train u 0.1,0.9,1", out);
    engine.Finish(out);
  }
  // Truncate the manifest mid-file.
  const std::optional<serve::Manifest> manifest =
      serve::LoadNewestManifest(config.state_dir);
  ASSERT_TRUE(manifest.has_value());
  const std::string path =
      config.state_dir + "/" + serve::ManifestFileName(manifest->seq);
  const std::string bytes = ReadFileBytes(path);
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  EXPECT_THROW(serve::ServeEngine engine(config), serve::StateError);
}

// --------------------------------------------------------- fault injection

TEST(ServeInjectionTest, ServerSurvivesFaultTrafficDeterministically) {
  const std::vector<std::string> script = RevisitingScript(500, 9);
  std::string outputs[2];
  const std::size_t shard_counts[2] = {1, 2};
  for (int i = 0; i < 2; ++i) {
    serve::ServeConfig config;
    config.num_features = 2;
    config.num_classes = 2;
    config.num_shards = shard_counts[i];
    config.batch_window = 16;
    config.seed = 77;
    config.inject = robust::FaultSpec::Parse(
        "nan=0.2,inf=0.1,missing=0.1,flip=0.3,truncate=0.15");
    config.factory = GlmFactory(2, 2);
    serve::ServeEngine engine(config);
    std::ostringstream out;
    for (const std::string& line : script) engine.ServeLine(line, out);
    engine.ServeLine("stats", out);
    engine.Finish(out);
    outputs[i] = out.str();
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  const std::vector<std::string> lines = SplitLines(outputs[0]);
  // One response per request, every one OK (skip policy) -- the server
  // never aborted or went silent under nan/inf/truncate traffic.
  ASSERT_EQ(lines.size(), script.size() + 1);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("OK ", 0), 0u) << line;
  }
  EXPECT_EQ(lines.back().find("\"injected_rows\": 0,"), std::string::npos)
      << lines.back();
  EXPECT_NE(lines.back().find("\"injected_rows\": "), std::string::npos);
}

TEST(ServeInjectionTest, InjectionTraceSurvivesCheckpointRecovery) {
  const std::vector<std::string> script = RevisitingScript(64, 4);
  const std::size_t covered = 32;
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.batch_window = 8;
  config.seed = 55;
  config.model_kind = "GLM";
  config.checkpoint_every = 2;
  config.inject =
      robust::FaultSpec::Parse("nan=0.25,missing=0.2,flip=0.3,truncate=0.1");
  config.factory = GlmFactory(2, 2);

  serve::ServeConfig reference_config = config;
  reference_config.state_dir = FreshStateDir("serve_inject_ref");
  serve::ServeEngine reference(reference_config);
  const std::string expected = RunLines(&reference, script);

  config.state_dir = FreshStateDir("serve_inject_crash");
  {
    serve::ServeEngine doomed(config);
    std::ostringstream sink;
    for (std::size_t i = 0; i < 40; ++i) doomed.ServeLine(script[i], sink);
  }
  serve::ServeEngine recovered(config);
  std::ostringstream out;
  for (std::size_t i = covered; i < script.size(); ++i) {
    recovered.ServeLine(script[i], out);
  }
  recovered.Finish(out);
  // The recovered tail equals the reference's tail: the per-stream
  // injection generators resumed mid-trace.
  const std::vector<std::string> expected_lines = SplitLines(expected);
  const std::vector<std::string> tail = SplitLines(out.str());
  ASSERT_EQ(tail.size(), script.size() - covered);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i], expected_lines[covered + i]);
  }
  // Rate skew between the checkpoint and the engine is refused.
  serve::ServeConfig skew = config;
  skew.inject.nan_rate = 0.5;
  EXPECT_THROW(serve::ServeEngine engine(skew), serve::StateError);
}

// ----------------------------------------------------------------- bridge

TEST(ServeBridgeTest, AnswersPerLineOverOnePersistentConnection) {
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.batch_window = 64;  // larger than the request count: only the
                             // idle flush can emit responses
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread server([&engine, &fds]() {
    serve::RunLineProtocol(&engine, fds[0], fds[0], nullptr,
                           /*flush_when_idle=*/true);
  });

  const auto send_line = [&fds](const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(::write(fds[1], framed.data(), framed.size()),
              static_cast<ssize_t>(framed.size()));
  };
  const auto read_line = [&fds]() {
    std::string line;
    char c;
    while (::read(fds[1], &c, 1) == 1 && c != '\n') line.push_back(c);
    return line;
  };

  // Strict request/response lockstep: each answer must arrive before the
  // next request is sent, so responses cannot be riding a later window.
  send_line("train u 0.1,0.9,1");
  EXPECT_EQ(read_line(), "OK train u n=1");
  send_line("score u 0.4,0.6");
  const std::string score = read_line();
  EXPECT_EQ(score.rfind("OK score u pred=", 0), 0u) << score;
  send_line("stats");
  EXPECT_EQ(read_line().rfind("OK stats ", 0), 0u);

  ASSERT_EQ(::shutdown(fds[1], SHUT_WR), 0);
  server.join();
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeBridgeTest, BatchModeMatchesRunScriptAndServesUnterminatedTail) {
  const std::vector<std::string> script = RevisitingScript(100, 5);
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.batch_window = 16;
  config.factory = GlmFactory(2, 2);

  serve::ServeEngine reference(config);
  const std::string expected = RunLines(&reference, script);

  // Same script through the fd bridge, deliberately without a trailing
  // newline on the final line.
  std::string input;
  for (std::size_t i = 0; i < script.size(); ++i) {
    input += script[i];
    if (i + 1 < script.size()) input += '\n';
  }
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  serve::ServeEngine engine(config);
  std::string actual;
  std::thread client([&fds, &input, &actual]() {
    std::size_t written = 0;
    while (written < input.size()) {
      const ssize_t w = ::write(fds[1], input.data() + written,
                                std::min<std::size_t>(777, input.size() -
                                                               written));
      ASSERT_GT(w, 0);
      written += static_cast<std::size_t>(w);
    }
    ::shutdown(fds[1], SHUT_WR);
    char buffer[4096];
    ssize_t n;
    while ((n = ::read(fds[1], buffer, sizeof(buffer))) > 0) {
      actual.append(buffer, static_cast<std::size_t>(n));
    }
  });
  serve::RunLineProtocol(&engine, fds[0], fds[0], nullptr,
                         /*flush_when_idle=*/false);
  engine.Finish(std::cout);  // nothing pending; parity with dmt_serve main
  ::shutdown(fds[0], SHUT_WR);
  client.join();
  ::close(fds[0]);
  ::close(fds[1]);
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace dmt
