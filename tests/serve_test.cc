// Tests for the multi-tenant serving layer (src/dmt/serve): request
// grammar, the engine's determinism contract (byte-identical responses at
// any shard count), explicit back-pressure, live snapshot/restore parity
// with the offline serial archives, and JSONL telemetry validity under
// NaN traffic.
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/linear/glm_classifier.h"
#include "dmt/serial/model_io.h"
#include "dmt/serve/engine.h"
#include "dmt/serve/exporter.h"
#include "dmt/serve/request.h"
#include "json_check.h"

namespace dmt {
namespace {

serve::ModelFactory GlmFactory(int features, int classes) {
  return [features, classes](const std::string& /*id*/,
                             std::uint64_t seed) -> std::unique_ptr<Classifier> {
    linear::GlmConfig config;
    config.num_features = features;
    config.num_classes = classes;
    config.seed = seed;
    return std::make_unique<linear::GlmClassifier>(config);
  };
}

serve::ModelFactory DmtFactory(int features, int classes) {
  return [features, classes](const std::string& /*id*/,
                             std::uint64_t seed) -> std::unique_ptr<Classifier> {
    core::DmtConfig config;
    config.num_features = features;
    config.num_classes = classes;
    config.seed = seed;
    return std::make_unique<core::DynamicModelTree>(config);
  };
}

std::string RunLines(serve::ServeEngine* engine,
                     const std::vector<std::string>& lines) {
  std::ostringstream out;
  for (const std::string& line : lines) engine->ServeLine(line, out);
  engine->Finish(out);
  return out.str();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ------------------------------------------------------- request grammar

TEST(RequestParseTest, AcceptsEveryVerb) {
  serve::Request request;
  std::string error;
  EXPECT_TRUE(
      serve::ParseRequestLine("train u1 0.5,1.5,1", 2, &request, &error));
  EXPECT_EQ(request.verb, serve::Verb::kTrain);
  EXPECT_EQ(request.stream_id, "u1");
  ASSERT_EQ(request.values.size(), 3u);
  EXPECT_DOUBLE_EQ(request.values[1], 1.5);

  EXPECT_TRUE(serve::ParseRequestLine("score u1 0.5,1.5", 2, &request, &error));
  EXPECT_EQ(request.verb, serve::Verb::kScore);
  EXPECT_EQ(request.values.size(), 2u);

  EXPECT_TRUE(
      serve::ParseRequestLine("snapshot u1 /tmp/m.dmt", 2, &request, &error));
  EXPECT_EQ(request.verb, serve::Verb::kSnapshot);
  EXPECT_EQ(request.path, "/tmp/m.dmt");

  EXPECT_TRUE(
      serve::ParseRequestLine("restore u1 /tmp/m.dmt", 2, &request, &error));
  EXPECT_EQ(request.verb, serve::Verb::kRestore);

  EXPECT_TRUE(serve::ParseRequestLine("drop u1", 2, &request, &error));
  EXPECT_EQ(request.verb, serve::Verb::kDrop);

  EXPECT_TRUE(serve::ParseRequestLine("stats", 2, &request, &error));
  EXPECT_EQ(request.verb, serve::Verb::kStats);
}

TEST(RequestParseTest, ToleratesCarriageReturnAndAcceptsNonFiniteData) {
  serve::Request request;
  std::string error;
  EXPECT_TRUE(
      serve::ParseRequestLine("score u1 0.5,1.5\r", 2, &request, &error));
  // Non-finite values are *data* (the bad-input policy decides their fate),
  // not a protocol error.
  EXPECT_TRUE(serve::ParseRequestLine("score u1 nan,inf", 2, &request, &error));
  EXPECT_TRUE(std::isnan(request.values[0]));
  EXPECT_TRUE(std::isinf(request.values[1]));
}

TEST(RequestParseTest, RejectsMalformedLines) {
  serve::Request request;
  std::string error;
  EXPECT_FALSE(serve::ParseRequestLine("", 2, &request, &error));
  EXPECT_FALSE(serve::ParseRequestLine("train", 2, &request, &error));
  EXPECT_FALSE(serve::ParseRequestLine("poke u1 0.5,1.5", 2, &request, &error));
  EXPECT_NE(error.find("unknown verb"), std::string::npos);
  EXPECT_FALSE(serve::ParseRequestLine("train u1 0.5,abc,1", 2, &request,
                                       &error));
  EXPECT_NE(error.find("bad csv value"), std::string::npos);
  // Arity is checked against the engine's feature count (+1 label for
  // train).
  EXPECT_FALSE(serve::ParseRequestLine("train u1 0.5,1", 2, &request, &error));
  EXPECT_FALSE(serve::ParseRequestLine("score u1 0.5,1.5,2.5", 2, &request,
                                       &error));
  EXPECT_FALSE(serve::ParseRequestLine("stats now", 2, &request, &error));
  EXPECT_FALSE(serve::ParseRequestLine("drop u1 extra", 2, &request, &error));
}

// ---------------------------------------------------------- determinism

std::vector<std::string> ManyStreamScript(std::size_t num_requests,
                                          std::size_t num_streams) {
  // Deterministic inline LCG; no global RNG state.
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  std::vector<std::string> lines;
  lines.reserve(num_requests + 2);
  for (std::size_t i = 0; i < num_requests; ++i) {
    const std::string id = "s" + std::to_string(next() % num_streams);
    const double a = static_cast<double>(next() % 1000) / 1000.0;
    const double b = static_cast<double>(next() % 1000) / 1000.0;
    std::ostringstream line;
    if (next() % 10 < 6) {
      line << "train " << id << ' ' << a << ',' << b << ',' << next() % 2;
    } else {
      line << "score " << id << ' ' << a << ',' << b;
    }
    lines.push_back(line.str());
    if (i % 997 == 0) lines.push_back("stats");
  }
  lines.push_back("stats");
  return lines;
}

TEST(ServeEngineTest, ThousandStreamsByteIdenticalAcrossShardCounts) {
  const std::vector<std::string> script = ManyStreamScript(4000, 1100);
  std::string outputs[3];
  const std::size_t shard_counts[3] = {1, 4, 7};
  for (int i = 0; i < 3; ++i) {
    serve::ServeConfig config;
    config.num_features = 2;
    config.num_classes = 2;
    config.num_shards = shard_counts[i];
    config.seed = 99;
    config.batch_window = 64;
    config.factory = GlmFactory(2, 2);
    serve::ServeEngine engine(config);
    outputs[i] = RunLines(&engine, script);
    EXPECT_GE(engine.num_streams(), 1000u);
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
  // Exactly one response line per request, in order.
  EXPECT_EQ(SplitLines(outputs[0]).size(), script.size());
}

TEST(ServeEngineTest, DmtModelIsAlsoShardCountInvariant) {
  const std::vector<std::string> script = ManyStreamScript(1500, 40);
  std::string outputs[2];
  const std::size_t shard_counts[2] = {1, 3};
  for (int i = 0; i < 2; ++i) {
    serve::ServeConfig config;
    config.num_features = 2;
    config.num_classes = 2;
    config.num_shards = shard_counts[i];
    config.seed = 7;
    config.batch_window = 32;
    config.factory = DmtFactory(2, 2);
    serve::ServeEngine engine(config);
    outputs[i] = RunLines(&engine, script);
  }
  EXPECT_EQ(outputs[0], outputs[1]);
}

TEST(ServeEngineTest, SameIdGetsSameModelRegardlessOfArrivalOrder) {
  // The per-stream seed depends only on (engine seed, id): training "b"
  // first must not change what "a" learns.
  const std::vector<std::string> tail = {"train a 0.1,0.9,1", "score a 0.5,0.5"};
  std::vector<std::string> first_a = tail;
  std::vector<std::string> b_then_a = {"train b 0.8,0.2,0"};
  b_then_a.insert(b_then_a.end(), tail.begin(), tail.end());

  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine1(config);
  serve::ServeEngine engine2(config);
  const std::vector<std::string> out1 = SplitLines(RunLines(&engine1, first_a));
  const std::vector<std::string> out2 =
      SplitLines(RunLines(&engine2, b_then_a));
  ASSERT_EQ(out1.size(), 2u);
  ASSERT_EQ(out2.size(), 3u);
  EXPECT_EQ(out1[1], out2[2]);  // identical score for "a"
}

// --------------------------------------------------------- back-pressure

TEST(ServeEngineTest, FullShardQueueRejectsWithRetryAfter) {
  serve::ServeConfig config;
  config.num_features = 1;
  config.num_classes = 2;
  config.num_shards = 1;
  config.batch_window = 8;
  config.queue_capacity = 2;
  config.factory = GlmFactory(1, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> lines = {
      "train u 0.1,0", "train u 0.2,1", "train u 0.3,0", "train u 0.4,1"};
  const std::vector<std::string> out = SplitLines(RunLines(&engine, lines));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], "OK train u n=1");
  EXPECT_EQ(out[1], "OK train u n=2");
  EXPECT_EQ(out[2], "ERR retry-after=1 u shard=0 queue_full");
  EXPECT_EQ(out[3], "ERR retry-after=1 u shard=0 queue_full");
}

TEST(ServeEngineTest, DefaultQueueCapacityNeverRejects) {
  serve::ServeConfig config;
  config.num_features = 1;
  config.num_classes = 2;
  config.num_shards = 1;
  config.batch_window = 4;  // queue_capacity defaults to the window size
  config.factory = GlmFactory(1, 2);
  serve::ServeEngine engine(config);
  std::vector<std::string> lines;
  for (int i = 0; i < 20; ++i) {
    lines.push_back("train u 0." + std::to_string(i % 10) + "," +
                    std::to_string(i % 2));
  }
  const std::string out = RunLines(&engine, lines);
  EXPECT_EQ(out.find("retry-after"), std::string::npos);
}

// ----------------------------------------------------- snapshot / restore

TEST(ServeEngineTest, LiveSnapshotBitIdenticalToOfflineArchive) {
  const std::string live_path = ::testing::TempDir() + "serve_live.dmt";
  const std::string offline_path = ::testing::TempDir() + "serve_offline.dmt";
  const int kRows = 37;

  std::uint64_t state = 11;
  const auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < kRows; ++i) {
    rows.push_back({static_cast<double>(next() % 1000) / 1000.0,
                    static_cast<double>(next() % 1000) / 1000.0,
                    static_cast<double>(next() % 2)});
  }

  // Live: one window holds every row, so the engine performs exactly one
  // PartialFit with all 37 rows -- the same batch structure the offline
  // path uses below. batch_window is part of the determinism contract.
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.seed = 5;
  config.batch_window = 256;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  std::vector<std::string> lines;
  for (const std::vector<double>& row : rows) {
    std::ostringstream line;
    line << "train u " << row[0] << ',' << row[1] << ','
         << static_cast<int>(row[2]);
    lines.push_back(line.str());
  }
  lines.push_back("snapshot u " + live_path);
  const std::string out = RunLines(&engine, lines);
  EXPECT_NE(out.find("OK snapshot u " + live_path), std::string::npos) << out;

  // Offline: same model seed, same single batch, direct serial save.
  linear::GlmConfig glm;
  glm.num_features = 2;
  glm.num_classes = 2;
  glm.seed = DeriveSeed(5, "u");
  linear::GlmClassifier offline(glm);
  Batch batch(2);
  for (const std::vector<double>& row : rows) {
    batch.Add(std::span<const double>(row.data(), 2),
              static_cast<int>(row[2]));
  }
  offline.PartialFit(batch);
  serial::SaveClassifierToFile(offline, offline_path);

  const std::string live_bytes = ReadFileBytes(live_path);
  const std::string offline_bytes = ReadFileBytes(offline_path);
  ASSERT_FALSE(live_bytes.empty());
  EXPECT_EQ(live_bytes, offline_bytes);
}

TEST(ServeEngineTest, RestoreRollsBackToSnapshotState) {
  const std::string path = ::testing::TempDir() + "serve_rollback.dmt";
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> lines = {
      "train u 0.1,0.9,1", "train u 0.9,0.1,0",
      "snapshot u " + path,
      "score u 0.4,0.6",          // [3] reference prediction
      "train u 0.5,0.5,1",        // moves the live model
      "restore u " + path,
      "score u 0.4,0.6",          // [6] must match [3] exactly
  };
  const std::vector<std::string> out = SplitLines(RunLines(&engine, lines));
  ASSERT_EQ(out.size(), lines.size());
  EXPECT_EQ(out[5], "OK restore u");
  EXPECT_EQ(out[6], out[3]);
}

TEST(ServeEngineTest, SnapshotOfUnknownStreamIsAnError) {
  serve::ServeConfig config;
  config.num_features = 1;
  config.num_classes = 2;
  config.factory = GlmFactory(1, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> out =
      SplitLines(RunLines(&engine, {"snapshot ghost /tmp/ghost.dmt"}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "ERR unknown_stream ghost");
}

TEST(ServeEngineTest, DropForgetsAndRecreatesFreshModel) {
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> session = {
      "train u 0.2,0.8,1", "train u 0.7,0.3,0", "score u 0.5,0.5"};
  std::vector<std::string> script = session;
  script.push_back("drop u");
  script.insert(script.end(), session.begin(), session.end());
  const std::vector<std::string> out = SplitLines(RunLines(&engine, script));
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[3], "OK drop u");
  // Same id + same engine seed -> the recreated stream relearns the exact
  // same model; train ordinals restart at 1.
  EXPECT_EQ(out[4], "OK train u n=1");
  EXPECT_EQ(out[6], out[2]);
  EXPECT_EQ(engine.num_streams(), 1u);
}

// ----------------------------------------------------- bad-input policies

TEST(ServeEngineTest, SkipPolicyDropsNonFiniteRows) {
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.bad_input_policy = BadInputPolicy::kSkip;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> out = SplitLines(RunLines(
      &engine, {"train u nan,0.5,1", "score u inf,0.5", "train u 0.1,0.2,5"}));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "OK train u dropped");
  EXPECT_EQ(out[1], "OK score u dropped");
  EXPECT_EQ(out[2], "OK train u dropped");  // out-of-range label
}

TEST(ServeEngineTest, ThrowPolicyRejectsWithoutAborting) {
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.bad_input_policy = BadInputPolicy::kThrow;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> out = SplitLines(
      RunLines(&engine, {"train u nan,0.5,1", "train u 0.1,0.5,1"}));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "ERR bad_row train u");
  EXPECT_EQ(out[1], "OK train u n=1");  // the server kept serving
}

TEST(ServeEngineTest, ImputePolicyZeroFillsFeaturesButNeverLabels) {
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.bad_input_policy = BadInputPolicy::kImputeMidpoint;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> out = SplitLines(RunLines(
      &engine, {"train u nan,0.5,1", "train u 0.1,0.5,nan"}));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "OK train u n=1");       // feature imputed, row kept
  EXPECT_EQ(out[1], "OK train u dropped");   // bad label is never imputed
}

// ------------------------------------------------------- telemetry export

TEST(ServeEngineTest, ExporterEmitsValidJsonlUnderNanTraffic) {
  std::ostringstream sink;
  serve::JsonlExporter exporter(&sink);
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.num_shards = 2;
  config.batch_window = 2;
  config.exporter = &exporter;
  config.export_every = 1;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  std::vector<std::string> lines;
  for (int i = 0; i < 6; ++i) {
    lines.push_back("train s" + std::to_string(i) + " nan,0.5,1");
    lines.push_back("score s" + std::to_string(i) + " 0.4,0.6");
  }
  RunLines(&engine, lines);

  const std::vector<std::string> records = SplitLines(sink.str());
  ASSERT_GE(records.size(), 2u);
  EXPECT_EQ(exporter.lines_written(), records.size());
  EXPECT_EQ(exporter.lines_dropped(), 0u);
  bool saw_null_gauge = false;
  for (const std::string& record : records) {
    EXPECT_TRUE(testjson::IsValidJson(record)) << record;
    EXPECT_NE(record.find("\"shard\""), std::string::npos);
    EXPECT_NE(record.find("serve.bad_rows"), std::string::npos);
    if (record.find("\"serve.last_bad_value\": null") != std::string::npos) {
      saw_null_gauge = true;
    }
  }
  // The NaN feature value landed in the last_bad_value gauge and must have
  // been rendered as JSON null, never as a bare `nan` token.
  EXPECT_TRUE(saw_null_gauge) << sink.str();
  EXPECT_EQ(sink.str().find(" nan"), std::string::npos);
}

TEST(ServeEngineTest, StatsPayloadIsValidJson) {
  serve::ServeConfig config;
  config.num_features = 1;
  config.num_classes = 2;
  config.factory = GlmFactory(1, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> out =
      SplitLines(RunLines(&engine, {"train u 0.5,1", "stats"}));
  ASSERT_EQ(out.size(), 2u);
  ASSERT_EQ(out[1].rfind("OK stats ", 0), 0u);
  const std::string payload = out[1].substr(std::string("OK stats ").size());
  EXPECT_TRUE(testjson::IsValidJson(payload)) << payload;
  EXPECT_NE(payload.find("\"train_rows\": 1"), std::string::npos);
}

TEST(ServeEngineTest, ParseErrorsGetOneResponseLineEach) {
  serve::ServeConfig config;
  config.num_features = 2;
  config.num_classes = 2;
  config.factory = GlmFactory(2, 2);
  serve::ServeEngine engine(config);
  const std::vector<std::string> out = SplitLines(RunLines(
      &engine, {"bogus", "train u 0.5", "train u 0.1,0.2,1", ""}));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].rfind("ERR parse ", 0), 0u);
  EXPECT_EQ(out[1].rfind("ERR parse ", 0), 0u);
  EXPECT_EQ(out[2], "OK train u n=1");
  EXPECT_EQ(out[3].rfind("ERR parse ", 0), 0u);
}

}  // namespace
}  // namespace dmt
