#include <cstddef>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/drift/adwin.h"
#include "dmt/drift/ddm.h"
#include "dmt/drift/page_hinkley.h"

namespace dmt::drift {
namespace {

TEST(AdwinTest, TracksMeanOfStationaryStream) {
  Adwin adwin;
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) adwin.Update(rng.Bernoulli(0.3) ? 1.0 : 0.0);
  EXPECT_NEAR(adwin.mean(), 0.3, 0.05);
}

TEST(AdwinTest, NoFalseAlarmsOnConstantStream) {
  Adwin adwin;
  for (int i = 0; i < 5000; ++i) EXPECT_FALSE(adwin.Update(0.5));
  EXPECT_EQ(adwin.num_detections(), 0u);
}

TEST(AdwinTest, DetectsAbruptMeanShift) {
  Adwin adwin;
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) adwin.Update(rng.Gaussian(0.2, 0.05));
  const std::size_t before = adwin.width();
  bool detected = false;
  for (int i = 0; i < 1000; ++i) {
    detected |= adwin.Update(rng.Gaussian(0.8, 0.05));
  }
  EXPECT_TRUE(detected);
  // The window must have dropped the pre-change segment.
  EXPECT_LT(adwin.width(), before + 1000);
  EXPECT_NEAR(adwin.mean(), 0.8, 0.1);
}

// Detection should hold across a range of shift magnitudes.
class AdwinShiftTest : public ::testing::TestWithParam<double> {};

TEST_P(AdwinShiftTest, DetectsShiftOfGivenMagnitude) {
  const double magnitude = GetParam();
  Adwin adwin;
  Rng rng(3);
  for (int i = 0; i < 1500; ++i) adwin.Update(rng.Gaussian(0.2, 0.05));
  bool detected = false;
  for (int i = 0; i < 1500; ++i) {
    detected |= adwin.Update(rng.Gaussian(0.2 + magnitude, 0.05));
  }
  EXPECT_TRUE(detected) << "magnitude " << magnitude;
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, AdwinShiftTest,
                         ::testing::Values(0.2, 0.4, 0.6));

TEST(AdwinTest, LowFalseAlarmRateOnNoisyStationaryStream) {
  Adwin adwin;
  Rng rng(4);
  std::size_t alarms = 0;
  for (int i = 0; i < 20000; ++i) {
    alarms += adwin.Update(rng.Bernoulli(0.5) ? 1.0 : 0.0);
  }
  EXPECT_LE(alarms, 3u);
}

TEST(PageHinkleyTest, NoAlertOnStationaryStream) {
  PageHinkley ph;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_FALSE(ph.Update(rng.Gaussian(0.3, 0.1)));
  }
}

TEST(PageHinkleyTest, AlertsOnMeanIncrease) {
  PageHinkley ph({.threshold = 20.0});
  Rng rng(6);
  for (int i = 0; i < 500; ++i) ph.Update(rng.Gaussian(0.1, 0.05));
  bool detected = false;
  for (int i = 0; i < 2000; ++i) {
    detected |= ph.Update(rng.Gaussian(0.7, 0.05));
  }
  EXPECT_TRUE(detected);
  EXPECT_GE(ph.num_detections(), 1u);
}

TEST(PageHinkleyTest, ResetsAfterAlert) {
  PageHinkley ph({.min_instances = 10, .threshold = 5.0});
  for (int i = 0; i < 100; ++i) ph.Update(0.0);
  bool detected = false;
  for (int i = 0; i < 100 && !detected; ++i) detected = ph.Update(1.0);
  ASSERT_TRUE(detected);
  EXPECT_DOUBLE_EQ(ph.cumulative_sum(), 0.0);
}

// ------------------------------------------------------- edge-case battery

TEST(AdwinTest, NoFalsePositivesOverHundredThousandConstantSamples) {
  Adwin adwin;
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_FALSE(adwin.Update(0.7)) << "false positive at sample " << i;
  }
  EXPECT_EQ(adwin.num_detections(), 0u);
  // Bucket merging accumulates in floating point; exactness is not promised.
  EXPECT_NEAR(adwin.mean(), 0.7, 1e-9);
}

TEST(AdwinTest, DetectsAbruptShiftWithinBoundedDelay) {
  Adwin adwin;
  for (int i = 0; i < 2'000; ++i) adwin.Update(0.1);
  int delay = -1;
  for (int i = 0; i < 2'000; ++i) {
    if (adwin.Update(0.9)) {
      delay = i + 1;
      break;
    }
  }
  ASSERT_NE(delay, -1) << "no detection within 2000 post-shift samples";
  // A clean 0.1 -> 0.9 jump must be caught quickly (cut checks run every
  // 32 inserts; leave headroom so bucket-boundary effects don't flake).
  EXPECT_LE(delay, 512);
}

TEST(AdwinTest, WindowStateResetsAfterDetection) {
  Adwin adwin;
  for (int i = 0; i < 4'000; ++i) adwin.Update(0.2);
  const std::size_t width_before = adwin.width();
  bool detected = false;
  std::size_t width_at_detection = 0;
  for (int i = 0; i < 2'000 && !detected; ++i) {
    detected = adwin.Update(0.8);
    if (detected) width_at_detection = adwin.width();
  }
  ASSERT_TRUE(detected);
  // The shrink must have dropped (most of) the pre-change window...
  EXPECT_LT(width_at_detection, width_before);
  EXPECT_GE(adwin.num_detections(), 1u);
  // ...and after settling on the new concept the mean tracks it.
  for (int i = 0; i < 2'000; ++i) adwin.Update(0.8);
  EXPECT_NEAR(adwin.mean(), 0.8, 0.05);
}

TEST(PageHinkleyTest, DetectsAbruptShiftWithinBoundedDelay) {
  PageHinkley ph;  // defaults: threshold 50, delta 0.005, min_instances 30
  for (int i = 0; i < 1'000; ++i) ph.Update(0.1);
  int delay = -1;
  for (int i = 0; i < 2'000; ++i) {
    if (ph.Update(1.0)) {
      delay = i + 1;
      break;
    }
  }
  ASSERT_NE(delay, -1) << "no detection within 2000 post-shift samples";
  // The cumulative statistic gains roughly (1.0 - mean - delta) per
  // sample, so threshold 50 must be crossed in well under 300 samples.
  EXPECT_LE(delay, 300);
}

TEST(PageHinkleyTest, RearmsAfterReset) {
  // After an alert the statistic resets and the running mean re-adapts, so
  // a second mean increase must raise a second, independent alert.
  PageHinkley ph({.min_instances = 10, .threshold = 5.0});
  for (int i = 0; i < 200; ++i) ph.Update(0.0);
  std::size_t first = 0;
  for (int i = 0; i < 500; ++i) first += ph.Update(1.0);
  EXPECT_EQ(first, 1u);  // one alert, then the mean absorbs the new level
  for (int i = 0; i < 500; ++i) ph.Update(0.0);
  std::size_t second = 0;
  for (int i = 0; i < 500; ++i) second += ph.Update(1.0);
  EXPECT_GE(second, 1u);
  EXPECT_EQ(ph.num_detections(), first + second);
}

TEST(PageHinkleyTest, ManualResetClearsState) {
  PageHinkley ph({.min_instances = 10, .threshold = 5.0});
  for (int i = 0; i < 50; ++i) ph.Update(1.0);
  ph.Reset();
  EXPECT_DOUBLE_EQ(ph.cumulative_sum(), 0.0);
  // min_instances applies afresh after the reset: no instant re-alert.
  EXPECT_FALSE(ph.Update(1.0));
}

TEST(DdmTest, SignalsDriftWhenErrorRateRises) {
  Ddm ddm;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) ddm.Update(rng.Bernoulli(0.1));
  bool drift = false;
  for (int i = 0; i < 1000; ++i) {
    drift |= ddm.Update(rng.Bernoulli(0.6)) == Ddm::State::kDrift;
  }
  EXPECT_TRUE(drift);
}

TEST(DdmTest, StaysStableOnConstantErrorRate) {
  Ddm ddm;
  Rng rng(8);
  std::size_t drifts = 0;
  for (int i = 0; i < 10000; ++i) {
    drifts += ddm.Update(rng.Bernoulli(0.2)) == Ddm::State::kDrift;
  }
  EXPECT_LE(drifts, 1u);
}

}  // namespace
}  // namespace dmt::drift
