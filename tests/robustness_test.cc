// Robustness layer tests (DESIGN.md Sec. 8): deterministic failpoints, the
// FaultyStream decorator, shared ingest sanitization, the scaler's
// non-finite handling, and the linear models' divergence protection.
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/common/sanitize.h"
#include "dmt/common/types.h"
#include "dmt/linear/glm.h"
#include "dmt/linear/linear_regressor.h"
#include "dmt/robust/failpoint.h"
#include "dmt/robust/faulty_stream.h"
#include "dmt/streams/scaler.h"
#include "dmt/streams/stream.h"

namespace dmt {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------- failpoints

TEST(FailpointTest, UnarmedFindReturnsNullAndMacroIsANoOp) {
  robust::FailpointRegistry registry;
  robust::Failpoint* fp = registry.Find("never.armed");
  EXPECT_EQ(fp, nullptr);
  DMT_FAILPOINT(fp);  // must not throw
}

TEST(FailpointTest, ProbabilityOneAlwaysFires) {
  robust::FailpointRegistry registry;
  robust::Failpoint* fp = registry.Arm("always", 1.0, 42);
  ASSERT_NE(fp, nullptr);
  EXPECT_THROW(DMT_FAILPOINT(fp), robust::FaultInjectedError);
  EXPECT_THROW(DMT_FAILPOINT(fp), robust::FaultInjectedError);
  EXPECT_EQ(fp->hits(), 2u);
  EXPECT_EQ(fp->fires(), 2u);
}

TEST(FailpointTest, ProbabilityZeroNeverFiresButCountsHits) {
  robust::FailpointRegistry registry;
  robust::Failpoint* fp = registry.Arm("never", 0.0, 42);
  for (int i = 0; i < 100; ++i) DMT_FAILPOINT(fp);
  EXPECT_EQ(fp->hits(), 100u);
  EXPECT_EQ(fp->fires(), 0u);
}

// The fire trace is a pure function of (name, probability, base seed):
// identical across registries, runs, and thread schedules.
TEST(FailpointTest, FireTraceIsDeterministic) {
  auto trace = [](std::uint64_t base_seed) {
    robust::FailpointRegistry registry;
    robust::Failpoint* fp = registry.Arm("probe", 0.3, base_seed);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) fires.push_back(fp->Evaluate());
    return fires;
  };
  EXPECT_EQ(trace(7), trace(7));
  EXPECT_NE(trace(7), trace(8));  // and the seed actually matters
}

TEST(FailpointTest, ReArmResetsCountersAndTrace) {
  robust::FailpointRegistry registry;
  robust::Failpoint* fp = registry.Arm("probe", 0.5, 1);
  std::vector<bool> first;
  for (int i = 0; i < 50; ++i) first.push_back(fp->Evaluate());
  fp = registry.Arm("probe", 0.5, 1);  // same config -> same trace again
  EXPECT_EQ(fp->hits(), 0u);
  std::vector<bool> second;
  for (int i = 0; i < 50; ++i) second.push_back(fp->Evaluate());
  EXPECT_EQ(first, second);
}

TEST(FailpointTest, ArmFromSpecArmsEveryEntry) {
  robust::FailpointRegistry registry;
  registry.ArmFromSpec("cell:SEA/GLM=1,glm.fit=0.25", 42);
  EXPECT_EQ(registry.num_armed(), 2u);
  ASSERT_NE(registry.Find("cell:SEA/GLM"), nullptr);
  EXPECT_DOUBLE_EQ(registry.Find("cell:SEA/GLM")->probability(), 1.0);
  EXPECT_DOUBLE_EQ(registry.Find("glm.fit")->probability(), 0.25);
}

TEST(FailpointTest, ArmFromSpecRejectsMalformedEntries) {
  robust::FailpointRegistry registry;
  EXPECT_THROW(registry.ArmFromSpec("noequals", 1), std::invalid_argument);
  EXPECT_THROW(registry.ArmFromSpec("=0.5", 1), std::invalid_argument);
  EXPECT_THROW(registry.ArmFromSpec("a=notanumber", 1),
               std::invalid_argument);
  EXPECT_THROW(registry.ArmFromSpec("a=1.5", 1), std::invalid_argument);
  EXPECT_THROW(registry.ArmFromSpec("a=-0.1", 1), std::invalid_argument);
}

// ------------------------------------------------------------- faulty stream

TEST(FaultSpecTest, ParsesAllKindsAndDefaultsToZero) {
  const robust::FaultSpec spec = robust::FaultSpec::Parse(
      "nan=0.01,inf=0.002,missing=0.05,flip=0.1,truncate=1e-5");
  EXPECT_DOUBLE_EQ(spec.nan_rate, 0.01);
  EXPECT_DOUBLE_EQ(spec.inf_rate, 0.002);
  EXPECT_DOUBLE_EQ(spec.missing_rate, 0.05);
  EXPECT_DOUBLE_EQ(spec.flip_rate, 0.1);
  EXPECT_DOUBLE_EQ(spec.truncate_rate, 1e-5);
  EXPECT_TRUE(spec.any());

  const robust::FaultSpec partial = robust::FaultSpec::Parse("flip=0.5");
  EXPECT_DOUBLE_EQ(partial.nan_rate, 0.0);
  EXPECT_DOUBLE_EQ(partial.flip_rate, 0.5);

  EXPECT_FALSE(robust::FaultSpec::Parse("").any());
}

TEST(FaultSpecTest, RejectsUnknownKindsAndBadRates) {
  EXPECT_THROW(robust::FaultSpec::Parse("bogus=0.1"), std::invalid_argument);
  EXPECT_THROW(robust::FaultSpec::Parse("nan=2"), std::invalid_argument);
  EXPECT_THROW(robust::FaultSpec::Parse("nan=-1"), std::invalid_argument);
  EXPECT_THROW(robust::FaultSpec::Parse("nan=abc"), std::invalid_argument);
  EXPECT_THROW(robust::FaultSpec::Parse("nan"), std::invalid_argument);
}

// Deterministic 3-feature, 3-class inner stream for decorator tests.
class CountingStream : public streams::Stream {
 public:
  explicit CountingStream(std::size_t n) : n_(n) {}
  bool NextInstance(Instance* out) override {
    if (i_ >= n_) return false;
    const double v = static_cast<double>(i_);
    out->x = {v, v + 0.5, v + 0.25};
    out->y = static_cast<int>(i_ % 3);
    ++i_;
    return true;
  }
  std::size_t num_features() const override { return 3; }
  std::size_t num_classes() const override { return 3; }
  std::string name() const override { return "counting"; }

 private:
  std::size_t n_;
  std::size_t i_ = 0;
};

TEST(FaultyStreamTest, InjectsNanAtConfiguredRateAndCounts) {
  robust::FaultyStream stream(std::make_unique<CountingStream>(1000),
                              robust::FaultSpec{.nan_rate = 0.2}, 42);
  Instance instance;
  std::size_t rows = 0;
  std::size_t nan_rows = 0;
  while (stream.NextInstance(&instance)) {
    ++rows;
    for (const double v : instance.x) nan_rows += std::isnan(v) ? 1 : 0;
  }
  EXPECT_EQ(rows, 1000u);  // nan never drops rows
  EXPECT_EQ(stream.counts().nan, nan_rows);
  EXPECT_GT(nan_rows, 120u);  // ~200 expected
  EXPECT_LT(nan_rows, 280u);
}

TEST(FaultyStreamTest, FlippedLabelsStayValidAndDiffer) {
  robust::FaultyStream stream(std::make_unique<CountingStream>(1000),
                              robust::FaultSpec{.flip_rate = 1.0}, 42);
  Instance instance;
  std::size_t i = 0;
  while (stream.NextInstance(&instance)) {
    const int original = static_cast<int>(i % 3);
    EXPECT_NE(instance.y, original);
    EXPECT_GE(instance.y, 0);
    EXPECT_LT(instance.y, 3);
    ++i;
  }
  EXPECT_EQ(stream.counts().flips, 1000u);
}

TEST(FaultyStreamTest, TruncateEndsTheStreamPermanently) {
  robust::FaultyStream stream(std::make_unique<CountingStream>(1000),
                              robust::FaultSpec{.truncate_rate = 1.0}, 42);
  Instance instance;
  EXPECT_FALSE(stream.NextInstance(&instance));
  EXPECT_FALSE(stream.NextInstance(&instance));  // stays exhausted
  EXPECT_EQ(stream.counts().truncated, 1u);
}

// The whole point of seeding the decorator explicitly: the same (spec,
// seed) pair corrupts the same instances no matter when or where it runs.
TEST(FaultyStreamTest, FaultTraceIsSeedDeterministic) {
  const robust::FaultSpec spec = robust::FaultSpec::Parse(
      "nan=0.1,inf=0.05,missing=0.02,flip=0.2");
  auto run = [&spec]() {
    robust::FaultyStream stream(std::make_unique<CountingStream>(500), spec,
                                99);
    std::vector<double> flat;
    std::vector<int> labels;
    Instance instance;
    while (stream.NextInstance(&instance)) {
      for (const double v : instance.x) {
        // NaN != NaN, so compare via a canonical encoding.
        flat.push_back(std::isnan(v) ? -12345.0 : v);
      }
      labels.push_back(instance.y);
    }
    return std::make_pair(flat, labels);
  };
  EXPECT_EQ(run(), run());
}

// -------------------------------------------------------------- sanitization

Batch MakeBatch(const std::vector<std::vector<double>>& rows,
                const std::vector<int>& labels) {
  Batch batch(rows.empty() ? 0 : rows[0].size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    batch.Add(rows[i], labels[i]);
  }
  return batch;
}

TEST(SanitizeBatchTest, SkipDropsNonFiniteRowsInPlace) {
  Batch batch = MakeBatch({{1, 2}, {kNaN, 3}, {4, 5}, {6, kInf}, {7, 8}},
                          {0, 1, 0, 1, 0});
  SanitizeStats stats;
  const std::size_t kept =
      SanitizeBatch(&batch, BadInputPolicy::kSkip, {}, 2, &stats);
  EXPECT_EQ(kept, 3u);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_DOUBLE_EQ(batch.row(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(batch.row(1)[0], 4.0);
  EXPECT_DOUBLE_EQ(batch.row(2)[0], 7.0);
  EXPECT_EQ(batch.label(1), 0);
  EXPECT_EQ(batch.label(2), 0);
  EXPECT_EQ(stats.rows_dropped, 2u);
  EXPECT_EQ(stats.values_imputed, 0u);
}

TEST(SanitizeBatchTest, OutOfRangeLabelsAlwaysDrop) {
  for (const BadInputPolicy policy :
       {BadInputPolicy::kSkip, BadInputPolicy::kImputeMidpoint}) {
    Batch batch = MakeBatch({{1, 2}, {3, 4}, {5, 6}}, {0, -1, 2});
    SanitizeStats stats;
    const std::vector<double> midpoints = {0.0, 0.0};
    SanitizeBatch(&batch, policy, midpoints, 2, &stats);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_DOUBLE_EQ(batch.row(0)[0], 1.0);
    EXPECT_EQ(stats.rows_dropped, 2u);
  }
}

TEST(SanitizeBatchTest, ImputeReplacesNonFiniteWithMidpoints) {
  Batch batch = MakeBatch({{kNaN, 2}, {3, kInf}}, {0, 1});
  SanitizeStats stats;
  const std::vector<double> midpoints = {10.0, 20.0};
  const std::size_t kept = SanitizeBatch(
      &batch, BadInputPolicy::kImputeMidpoint, midpoints, 2, &stats);
  EXPECT_EQ(kept, 2u);
  EXPECT_DOUBLE_EQ(batch.row(0)[0], 10.0);
  EXPECT_DOUBLE_EQ(batch.row(0)[1], 2.0);
  EXPECT_DOUBLE_EQ(batch.row(1)[1], 20.0);
  EXPECT_EQ(stats.rows_dropped, 0u);
  EXPECT_EQ(stats.values_imputed, 2u);
}

TEST(SanitizeBatchTest, ThrowPolicyThrowsOnFirstBadRow) {
  Batch bad_feature = MakeBatch({{1, 2}, {kNaN, 3}}, {0, 1});
  SanitizeStats stats;
  EXPECT_THROW(
      SanitizeBatch(&bad_feature, BadInputPolicy::kThrow, {}, 2, &stats),
      BadInputError);
  Batch bad_label = MakeBatch({{1, 2}}, {5});
  EXPECT_THROW(
      SanitizeBatch(&bad_label, BadInputPolicy::kThrow, {}, 2, &stats),
      BadInputError);
}

TEST(SanitizeBatchTest, CleanBatchIsUntouched) {
  Batch batch = MakeBatch({{1, 2}, {3, 4}}, {0, 1});
  SanitizeStats stats;
  const std::size_t kept =
      SanitizeBatch(&batch, BadInputPolicy::kSkip, {}, 2, &stats);
  EXPECT_EQ(kept, 2u);
  EXPECT_EQ(stats.rows_dropped, 0u);
  EXPECT_DOUBLE_EQ(batch.row(1)[1], 4.0);
}

TEST(BadInputPolicyTest, RoundTripsThroughStrings) {
  EXPECT_EQ(BadInputPolicyFromString("skip"), BadInputPolicy::kSkip);
  EXPECT_EQ(BadInputPolicyFromString("impute"),
            BadInputPolicy::kImputeMidpoint);
  EXPECT_EQ(BadInputPolicyFromString("throw"), BadInputPolicy::kThrow);
  EXPECT_THROW(BadInputPolicyFromString("bogus"), std::invalid_argument);
  EXPECT_STREQ(BadInputPolicyName(BadInputPolicy::kSkip), "skip");
}

// -------------------------------------------------------------------- scaler

// Regression: FitTransform used to fold NaN into min/max via std::min/max,
// poisoning the feature's range for the rest of the stream.
TEST(ScalerRobustnessTest, NanDoesNotPoisonRanges) {
  streams::OnlineMinMaxScaler scaler(1);
  Batch batch(1);
  batch.Add(std::vector<double>{0.0}, 0);
  batch.Add(std::vector<double>{kNaN}, 0);
  batch.Add(std::vector<double>{10.0}, 0);
  batch.Add(std::vector<double>{5.0}, 0);
  scaler.FitTransform(&batch);
  EXPECT_TRUE(std::isnan(batch.row(1)[0]));  // fault stays visible
  // Range must be [0, 10], so 5.0 -> 0.5; a poisoned range would yield NaN.
  EXPECT_DOUBLE_EQ(batch.row(3)[0], 0.5);
}

TEST(ScalerRobustnessTest, InfPassesThroughTransformUnclamped) {
  streams::OnlineMinMaxScaler scaler(1);
  Batch batch(1);
  batch.Add(std::vector<double>{0.0}, 0);
  batch.Add(std::vector<double>{10.0}, 0);
  scaler.FitTransform(&batch);
  std::vector<double> x = {kInf};
  scaler.Transform(x);
  // Clamping would hide the fault as 1.0; it must survive for sanitization.
  EXPECT_TRUE(std::isinf(x[0]));
}

TEST(ScalerRobustnessTest, MidpointsReflectObservedRanges) {
  streams::OnlineMinMaxScaler scaler(2);
  Batch batch(2);
  batch.Add(std::vector<double>{0.0, 7.0}, 0);
  batch.Add(std::vector<double>{10.0, 7.0}, 0);
  scaler.FitTransform(&batch);
  std::vector<double> midpoints(2, -1.0);
  scaler.MidpointsInto(midpoints);
  EXPECT_DOUBLE_EQ(midpoints[0], 5.0);
  EXPECT_DOUBLE_EQ(midpoints[1], 0.0);  // degenerate range -> 0.0
}

// ------------------------------------------------------- linear model guards

TEST(LinearRegressorRobustnessTest, NonFiniteSampleIsSkipped) {
  linear::LinearRegressor model({.num_features = 2});
  const std::vector<double> before = model.params();
  linear::RegressionBatch batch(2);
  batch.Add(std::vector<double>{kNaN, 1.0}, 1.0);
  batch.Add(std::vector<double>{1.0, 1.0}, kNaN);
  model.Fit(batch);
  EXPECT_EQ(model.num_skipped_samples(), 2u);
  EXPECT_EQ(model.params(), before);  // bit-identical: nothing was folded in
}

TEST(LinearRegressorRobustnessTest, DivergenceResetsParamsToZero) {
  // Clipping disabled: one absurd target overflows the gradient and the
  // post-Fit scan must catch the non-finite parameters.
  linear::LinearRegressor model(
      {.num_features = 1, .max_gradient_norm = 0.0});
  std::uint64_t telemetry = 0;
  model.set_resets_counter(&telemetry);
  linear::RegressionBatch batch(1);
  batch.Add(std::vector<double>{1e200}, 1e308);
  model.Fit(batch);
  EXPECT_EQ(model.num_resets(), 1u);
  EXPECT_EQ(telemetry, 1u);
  for (const double p : model.params()) EXPECT_DOUBLE_EQ(p, 0.0);
  // The reset model must be usable again.
  linear::RegressionBatch clean(1);
  clean.Add(std::vector<double>{0.5}, 1.0);
  model.Fit(clean);
  EXPECT_TRUE(std::isfinite(model.Predict(std::vector<double>{0.5})));
}

TEST(LinearRegressorRobustnessTest, GradientClippingPreventsDivergence) {
  // Same absurd sample, default cap: the gradient is rescaled and the
  // parameters stay finite with no reset.
  linear::LinearRegressor model({.num_features = 1});
  linear::RegressionBatch batch(1);
  batch.Add(std::vector<double>{1e200}, 1e308);
  model.Fit(batch);
  EXPECT_EQ(model.num_resets(), 0u);
  for (const double p : model.params()) EXPECT_TRUE(std::isfinite(p));
}

TEST(GlmRobustnessTest, NonFiniteSampleIsSkipped) {
  for (const int num_classes : {2, 3}) {
    linear::Glm model({.num_features = 2, .num_classes = num_classes});
    const std::vector<double>& before = model.params();
    const std::vector<double> snapshot = before;
    Batch batch(2);
    batch.Add(std::vector<double>{kNaN, 0.5}, 1);
    batch.Add(std::vector<double>{kInf, 0.5}, 0);
    model.Fit(batch);
    EXPECT_EQ(model.num_skipped_samples(), 2u);
    EXPECT_EQ(model.params(), snapshot);
  }
}

// The clip cap must be a numeric no-op on clean normalized data: the same
// seed with clipping enabled and disabled yields bit-identical parameters
// (this is what keeps the pinned Table II golden byte-identical).
TEST(GlmRobustnessTest, ClipCapIsANoOpOnCleanData) {
  linear::GlmConfig with_cap{.num_features = 2, .num_classes = 2,
                             .seed = 11};
  linear::GlmConfig no_cap = with_cap;
  no_cap.max_gradient_norm = 0.0;
  linear::Glm a(with_cap);
  linear::Glm b(no_cap);
  Rng rng(3);
  for (int epoch = 0; epoch < 5; ++epoch) {
    Batch batch(2);
    for (int i = 0; i < 100; ++i) {
      std::vector<double> x = {rng.Uniform(), rng.Uniform()};
      batch.Add(x, x[0] + x[1] > 1.0 ? 1 : 0);
    }
    a.Fit(batch);
    b.Fit(batch);
  }
  EXPECT_EQ(a.params(), b.params());  // bit-identical, not approximately
}

TEST(GlmRobustnessTest, PredictProbaStaysFiniteOnBadInput) {
  linear::Glm binary({.num_features = 2, .num_classes = 2});
  std::vector<double> proba(2, -1.0);
  binary.PredictProbaInto(std::vector<double>{kNaN, 1.0}, proba);
  EXPECT_DOUBLE_EQ(proba[0], 0.5);
  EXPECT_DOUBLE_EQ(proba[1], 0.5);

  linear::Glm multi({.num_features = 2, .num_classes = 4});
  std::vector<double> proba4(4, -1.0);
  multi.PredictProbaInto(std::vector<double>{kInf, 1.0}, proba4);
  for (const double p : proba4) EXPECT_DOUBLE_EQ(p, 0.25);
}

}  // namespace
}  // namespace dmt
