// Determinism and safety of the parallel sweep engine: the ThreadPool, the
// per-cell seed derivation, the per-cell cache, and RunSweep itself. Built
// as its own binary (dmt_parallel_sweep_test) because it links the bench
// harness; it is also the designated TSan target (see tests/CMakeLists.txt).
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/common/thread_pool.h"
#include "dmt/robust/failpoint.h"
#include "harness.h"
#include "sweep_cache.h"
#include "sweep_manifest.h"

namespace dmt {
namespace {

// --------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 200;
  std::vector<int> hits(kTasks, 0);
  std::vector<std::future<void>> futures;
  for (std::size_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&hits, i]() { ++hits[i]; }));
  }
  for (auto& future : futures) future.get();
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ThreadPoolTest, ResultOrderIndependentOfSchedulingOrder) {
  // Each task computes a pure function of its index; collected through the
  // futures, the results must be identical however the pool schedules them.
  ThreadPool pool(4);
  std::vector<std::future<std::uint64_t>> futures;
  for (std::uint64_t i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i]() {
      if (i % 7 == 0) {  // stagger finish times to shuffle completion order
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return SplitMix64(i);
    }));
  }
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[i].get(), SplitMix64(i));
  }
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([]() { return 7; });
  auto bad = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([]() { return 8; }).get(), 8);
}

TEST(ThreadPoolTest, ReusableAfterDrain) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter]() { ++counter; });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 50 * (round + 1));
  }
}

TEST(ThreadPoolTest, RunOneTaskDrainsQueueOnCallingThread) {
  ThreadPool pool(1);
  // Park the single worker so submitted tasks stay queued. Wait until the
  // worker has dequeued the parking task: if it were still queued, the
  // caller's RunOneTask() loop below could pick it up and spin forever.
  std::atomic<bool> parked_started{false};
  std::atomic<bool> release{false};
  auto parked = pool.Submit([&parked_started, &release]() {
    parked_started = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked_started.load()) std::this_thread::yield();
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) pool.Submit([&ran]() { ++ran; });
  // The caller can steal and run the queued tasks itself.
  while (pool.RunOneTask()) {
  }
  EXPECT_EQ(ran.load(), 5);
  release = true;
  parked.get();
}

TEST(ThreadPoolTest, HelpingWaitSurvivesNestedSubmission) {
  // A task that submits to its own pool and waits would deadlock a
  // 1-thread pool with a plain future.get(); GetHelping must drain the
  // nested tasks on the blocked thread instead.
  ThreadPool pool(1);
  auto outer = pool.Submit([&pool]() {
    std::vector<std::future<int>> inner;
    for (int i = 0; i < 4; ++i) {
      inner.push_back(pool.Submit([i]() { return i * i; }));
    }
    int sum = 0;
    for (auto& future : inner) sum += GetHelping(&pool, &future);
    return sum;
  });
  EXPECT_EQ(GetHelping(&pool, &outer), 0 + 1 + 4 + 9);
}

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 41 + 1; }).get(), 42);
}

// ------------------------------------------------------------ DeriveSeed

TEST(DeriveSeedTest, StableAndTagSensitive) {
  const std::uint64_t a = DeriveSeed(42, "Agrawal", "DMT");
  EXPECT_EQ(a, DeriveSeed(42, "Agrawal", "DMT"));  // pure function
  EXPECT_NE(a, DeriveSeed(43, "Agrawal", "DMT"));  // base seed matters
  EXPECT_NE(a, DeriveSeed(42, "SEA", "DMT"));      // dataset matters
  EXPECT_NE(a, DeriveSeed(42, "Agrawal", "GLM"));  // model matters
}

TEST(DeriveSeedTest, TagBoundariesAreDelimited) {
  EXPECT_NE(DeriveSeed(1, "ab", "c"), DeriveSeed(1, "a", "bc"));
  EXPECT_NE(DeriveSeed(1, "ab", ""), DeriveSeed(1, "a", "b"));
}

// ------------------------------------------------------- sweep determinism

bench::Options SmallSweepOptions(const std::string& cache_dir = {}) {
  bench::Options options;
  options.max_samples = 1'500;
  options.seed = 42;
  options.datasets = {"SEA", "Agrawal", "Hyperplane"};
  options.models = {"GLM", "VFDT(MC)", "DMT"};
  if (cache_dir.empty()) {
    options.use_cache = false;
  } else {
    options.cache_dir = cache_dir;
  }
  return options;
}

// Bit-identical comparison of everything deterministic in a cell (the
// wall-clock time fields are inherently run-dependent and excluded).
void ExpectCellsBitIdentical(const std::vector<bench::CellResult>& a,
                             const std::vector<bench::CellResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].dataset + " / " + a[i].model);
    EXPECT_EQ(a[i].dataset, b[i].dataset);
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].f1_mean, b[i].f1_mean);
    EXPECT_EQ(a[i].f1_std, b[i].f1_std);
    EXPECT_EQ(a[i].splits_mean, b[i].splits_mean);
    EXPECT_EQ(a[i].splits_std, b[i].splits_std);
    EXPECT_EQ(a[i].params_mean, b[i].params_mean);
    EXPECT_EQ(a[i].params_std, b[i].params_std);
    EXPECT_EQ(a[i].f1_series, b[i].f1_series);
    EXPECT_EQ(a[i].splits_series, b[i].splits_series);
  }
}

TEST(ParallelSweepTest, BitIdenticalAtAnyJobCount) {
  bench::Options options = SmallSweepOptions();
  options.keep_series = true;  // series must match element-for-element too

  options.jobs = 1;
  const std::vector<bench::CellResult> sequential =
      bench::RunSweep(options.models, options);
  ASSERT_EQ(sequential.size(), 9u);

  options.jobs = 4;
  const std::vector<bench::CellResult> parallel =
      bench::RunSweep(options.models, options);

  ExpectCellsBitIdentical(sequential, parallel);
}

TEST(ParallelSweepTest, CellSeedIndependentOfSweepComposition) {
  // A cell computed inside a full sweep equals the same cell computed alone:
  // its seed depends only on (base seed, dataset, model).
  bench::Options options = SmallSweepOptions();
  options.jobs = 2;
  const std::vector<bench::CellResult> sweep =
      bench::RunSweep(options.models, options);

  bench::Options solo = SmallSweepOptions();
  solo.datasets = {"Agrawal"};
  solo.models = {"VFDT(MC)"};
  solo.jobs = 1;
  const std::vector<bench::CellResult> alone =
      bench::RunSweep(solo.models, solo);
  ASSERT_EQ(alone.size(), 1u);

  const bench::CellResult* cell =
      bench::FindCell(sweep, "Agrawal", "VFDT(MC)");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->f1_mean, alone[0].f1_mean);
  EXPECT_EQ(cell->splits_mean, alone[0].splits_mean);
  EXPECT_EQ(cell->params_mean, alone[0].params_mean);
}

TEST(ParallelSweepTest, MemberParallelForestCellBitIdentical) {
  // ARF member training and scoring are schedule-independent, so a sweep
  // sharing its pool with the ensemble must reproduce the sequential
  // numbers exactly (LevBag is excluded: its reset granularity changes).
  bench::Options options = SmallSweepOptions();
  options.datasets = {"SEA"};
  options.models = {"ForestEns"};
  options.jobs = 1;
  const std::vector<bench::CellResult> sequential =
      bench::RunSweep(options.models, options);
  ASSERT_EQ(sequential.size(), 1u);

  options.member_parallel = true;
  options.jobs = 3;
  const std::vector<bench::CellResult> shared_pool =
      bench::RunSweep(options.models, options);

  ExpectCellsBitIdentical(sequential, shared_pool);
}

// -------------------------------------------------------- sweep telemetry

// Telemetry counters are part of the determinism contract: same cells, any
// job count, bit-identical counter JSON.
TEST(ParallelSweepTest, TelemetryCountersBitIdenticalAtAnyJobCount) {
  bench::Options options = SmallSweepOptions();
  options.telemetry = true;
  options.telemetry_dir =
      (std::filesystem::temp_directory_path() /
       ("dmt_telemetry_jobs_" + std::to_string(::getpid())))
          .string();

  options.jobs = 1;
  const std::vector<bench::CellResult> sequential =
      bench::RunSweep(options.models, options);

  options.jobs = 8;
  const std::vector<bench::CellResult> parallel =
      bench::RunSweep(options.models, options);

  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    SCOPED_TRACE(sequential[i].dataset + " / " + sequential[i].model);
    ASSERT_FALSE(sequential[i].telemetry_counters_json.empty());
    EXPECT_EQ(sequential[i].telemetry_counters_json,
              parallel[i].telemetry_counters_json);
  }
  ExpectCellsBitIdentical(sequential, parallel);

  // Every computed cell wrote its TELEMETRY_*.json artifact.
  for (const bench::CellResult& cell : sequential) {
    const std::filesystem::path artifact =
        std::filesystem::path(options.telemetry_dir) /
        ("TELEMETRY_" + cell.dataset + "__" + cell.model + ".json");
    // Model names carry '(' / ')' which sanitize to '_'.
    std::string name = artifact.filename().string();
    for (char& c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
          c != '_' && c != '.') {
        c = '_';
      }
    }
    EXPECT_TRUE(std::filesystem::exists(artifact.parent_path() / name))
        << name;
  }
  std::filesystem::remove_all(options.telemetry_dir);
}

// Counter values for the DMT are pinned as goldens on the synthetic
// streams (20000 samples -- enough that the gain tests actually pass and
// splits happen on Agrawal -- base seed 42, per-cell DeriveSeed). Any
// change to split/prune/candidate bookkeeping shows up here. Regenerate
// with DMT_UPDATE_GOLDENS=1 after an intentional change.
TEST(ParallelSweepTest, DmtTelemetryCountersMatchGolden) {
  bench::Options options = SmallSweepOptions();
  options.max_samples = 20'000;
  options.datasets = {"SEA", "Agrawal"};
  options.models = {"DMT"};
  options.telemetry = true;
  options.telemetry_dir =
      (std::filesystem::temp_directory_path() /
       ("dmt_telemetry_golden_" + std::to_string(::getpid())))
          .string();
  options.jobs = 1;
  const std::vector<bench::CellResult> cells =
      bench::RunSweep(options.models, options);
  std::filesystem::remove_all(options.telemetry_dir);
  ASSERT_EQ(cells.size(), 2u);

  for (const bench::CellResult& cell : cells) {
    SCOPED_TRACE(cell.dataset);
    const std::filesystem::path golden =
        std::filesystem::path(DMT_SOURCE_DIR) / "bench" / "goldens" /
        ("telemetry_dmt_" + cell.dataset + "_20000_seed42.json");
    if (std::getenv("DMT_UPDATE_GOLDENS") != nullptr) {
      std::ofstream out(golden);
      out << cell.telemetry_counters_json;
      continue;
    }
    std::ifstream in(golden);
    ASSERT_TRUE(in) << "missing golden " << golden
                    << " (regenerate with DMT_UPDATE_GOLDENS=1)";
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(cell.telemetry_counters_json, buffer.str());
  }
}

// ------------------------------------------------------------- cache layer

class SweepCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("dmt_sweep_cache_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(SweepCacheTest, KeyIncludesDatasetModelSamplesAndSeed) {
  bench::SweepCache cache(dir_);
  bench::CellResult cell;
  cell.dataset = "SEA";
  cell.model = "GLM";
  cell.f1_mean = 0.5;
  cache.Store({"SEA", "GLM", 1000, 42}, cell);

  EXPECT_TRUE(cache.Load({"SEA", "GLM", 1000, 42}).has_value());
  // Any differing key component is a miss.
  EXPECT_FALSE(cache.Load({"Agrawal", "GLM", 1000, 42}).has_value());
  EXPECT_FALSE(cache.Load({"SEA", "DMT", 1000, 42}).has_value());
  EXPECT_FALSE(cache.Load({"SEA", "GLM", 2000, 42}).has_value());
  EXPECT_FALSE(cache.Load({"SEA", "GLM", 1000, 43}).has_value());
}

TEST_F(SweepCacheTest, RoundTripsThroughDisk) {
  bench::CellResult cell;
  cell.dataset = "SEA";
  cell.model = "VFDT(MC)";
  cell.f1_mean = 0.625;
  cell.f1_std = 0.125;
  cell.splits_mean = 3.0;
  cell.params_mean = 17.5;
  {
    bench::SweepCache writer(dir_);
    writer.Store({"SEA", "VFDT(MC)", 1000, 7}, cell);
  }
  bench::SweepCache reader(dir_);  // fresh instance: must come from disk
  const auto loaded = reader.Load({"SEA", "VFDT(MC)", 1000, 7});
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->dataset, "SEA");
  EXPECT_EQ(loaded->model, "VFDT(MC)");
  EXPECT_DOUBLE_EQ(loaded->f1_mean, 0.625);
  EXPECT_DOUBLE_EQ(loaded->f1_std, 0.125);
  EXPECT_DOUBLE_EQ(loaded->splits_mean, 3.0);
  EXPECT_DOUBLE_EQ(loaded->params_mean, 17.5);
}

TEST_F(SweepCacheTest, ConcurrentStoresAndLoadsAreSafe) {
  bench::SweepCache cache(dir_);
  ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 4; ++t) {
    futures.push_back(pool.Submit([&cache, t]() {
      for (int i = 0; i < 25; ++i) {
        bench::CellResult cell;
        cell.dataset = "ds" + std::to_string(i);
        cell.model = "m" + std::to_string(t);
        cell.f1_mean = t + i;
        cache.Store({cell.dataset, cell.model, 100, 1}, cell);
        cache.Load({cell.dataset, cell.model, 100, 1});
      }
    }));
  }
  for (auto& future : futures) future.get();
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 25; ++i) {
      const auto hit =
          cache.Load({"ds" + std::to_string(i), "m" + std::to_string(t),
                      100, 1});
      ASSERT_TRUE(hit.has_value());
      EXPECT_DOUBLE_EQ(hit->f1_mean, t + i);
    }
  }
}

// Regression for the pre-parallel cache bug: the sweep cache was one file
// keyed only by (samples, seed), so a --datasets/--models-filtered first
// run poisoned every later full run (missing cells silently dropped). With
// per-cell files a later full run recomputes exactly the missing cells.
TEST_F(SweepCacheTest, FilteredRunDoesNotPoisonLaterFullRun) {
  bench::Options filtered = SmallSweepOptions(dir_);
  filtered.datasets = {"SEA"};
  filtered.models = {"GLM"};
  filtered.jobs = 1;
  const auto first = bench::RunSweep(filtered.models, filtered);
  ASSERT_EQ(first.size(), 1u);

  bench::Options full = SmallSweepOptions(dir_);
  full.datasets = {"SEA", "Agrawal"};
  full.models = {"GLM", "VFDT(MC)"};
  full.jobs = 2;
  const auto cells = bench::RunSweep(full.models, full);
  ASSERT_EQ(cells.size(), 4u);
  for (const auto& dataset : {"SEA", "Agrawal"}) {
    for (const auto& model : {"GLM", "VFDT(MC)"}) {
      EXPECT_NE(bench::FindCell(cells, dataset, model), nullptr)
          << dataset << " / " << model;
    }
  }

  // And the cache-assembled results equal a cache-free recomputation.
  bench::Options fresh = full;
  fresh.use_cache = false;
  fresh.jobs = 1;
  ExpectCellsBitIdentical(cells, bench::RunSweep(fresh.models, fresh));
}

// ----------------------------------------- fault injection / supervision

// The injection RNG is seeded DeriveSeed(cell_seed, "inject"), so the fault
// trace -- and everything downstream of it -- is part of the determinism
// contract: bit-identical at any job count.
TEST(RobustSweepTest, InjectedFaultsBitIdenticalAtAnyJobCount) {
  bench::Options options = SmallSweepOptions();
  options.inject_spec = "nan=0.02,inf=0.005,missing=0.01,flip=0.05";

  options.jobs = 1;
  const std::vector<bench::CellResult> sequential =
      bench::RunSweep(options.models, options);
  ASSERT_EQ(sequential.size(), 9u);

  options.jobs = 4;
  const std::vector<bench::CellResult> parallel =
      bench::RunSweep(options.models, options);

  ExpectCellsBitIdentical(sequential, parallel);
  std::uint64_t total_faults = 0;
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    SCOPED_TRACE(sequential[i].dataset + " / " + sequential[i].model);
    EXPECT_FALSE(sequential[i].failed);
    EXPECT_EQ(sequential[i].fault_counts.nan, parallel[i].fault_counts.nan);
    EXPECT_EQ(sequential[i].fault_counts.inf, parallel[i].fault_counts.inf);
    EXPECT_EQ(sequential[i].fault_counts.missing,
              parallel[i].fault_counts.missing);
    EXPECT_EQ(sequential[i].fault_counts.flips,
              parallel[i].fault_counts.flips);
    EXPECT_EQ(sequential[i].rows_dropped, parallel[i].rows_dropped);
    total_faults += sequential[i].fault_counts.nan +
                    sequential[i].fault_counts.flips;
  }
  EXPECT_GT(total_faults, 0u);  // the spec actually injected something
}

// Survival property over the whole Table II model zoo: every model must
// process a stream carrying all five fault kinds at once -- under the
// default skip policy -- without failing its cell or producing non-finite
// metrics, across multiple seeds.
TEST(RobustSweepTest, AllModelsSurviveEveryFaultKindAcrossSeeds) {
  bench::Options options = SmallSweepOptions();
  options.datasets = {"SEA"};
  options.models = bench::AllModels();
  options.inject_spec =
      "nan=0.05,inf=0.01,missing=0.02,flip=0.1,truncate=0.0002";
  options.jobs = 4;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    options.seed = seed;
    const std::vector<bench::CellResult> cells =
        bench::RunSweep(options.models, options);
    ASSERT_EQ(cells.size(), options.models.size());
    for (const bench::CellResult& cell : cells) {
      SCOPED_TRACE(cell.model + " seed " + std::to_string(seed));
      EXPECT_FALSE(cell.failed) << cell.error;
      EXPECT_TRUE(std::isfinite(cell.f1_mean));
      EXPECT_TRUE(std::isfinite(cell.params_mean));
    }
  }
}

TEST(RobustSweepTest, FailpointFailsExactlyItsCellAndSweepCompletes) {
  bench::Options options = SmallSweepOptions();
  options.failpoint_spec = "cell:SEA/GLM=1";
  options.jobs = 2;
  const std::vector<bench::CellResult> cells =
      bench::RunSweep(options.models, options);
  ASSERT_EQ(cells.size(), 9u);
  std::size_t failed = 0;
  for (const bench::CellResult& cell : cells) {
    SCOPED_TRACE(cell.dataset + " / " + cell.model);
    if (cell.failed) {
      ++failed;
      EXPECT_EQ(cell.dataset, "SEA");
      EXPECT_EQ(cell.model, "GLM");
      EXPECT_NE(cell.error.find("failpoint fired"), std::string::npos)
          << cell.error;
    } else {
      EXPECT_TRUE(std::isfinite(cell.f1_mean));
    }
  }
  EXPECT_EQ(failed, 1u);
  // The supervisor retried the throwing cell exactly once: a deterministic
  // p=1 failpoint fires on the first attempt and again on the retry.
  robust::Failpoint* fp = robust::GlobalFailpoints().Find("cell:SEA/GLM");
  ASSERT_NE(fp, nullptr);
  EXPECT_EQ(fp->fires(), 2u);
}

TEST(RobustSweepTest, CleanSweepClearsLeftoverFailpointArming) {
  bench::Options options = SmallSweepOptions();
  options.datasets = {"SEA"};
  options.models = {"GLM"};
  options.failpoint_spec = "cell:SEA/GLM=1";
  options.jobs = 1;
  const auto faulted = bench::RunSweep(options.models, options);
  ASSERT_EQ(faulted.size(), 1u);
  EXPECT_TRUE(faulted[0].failed);

  // The same sweep without the spec must not see the stale arming.
  options.failpoint_spec.clear();
  const auto clean = bench::RunSweep(options.models, options);
  ASSERT_EQ(clean.size(), 1u);
  EXPECT_FALSE(clean[0].failed) << clean[0].error;
  EXPECT_EQ(robust::GlobalFailpoints().num_armed(), 0u);
}

// A cell blowing its soft deadline is FAILED (not retried -- a second
// attempt would just burn the budget again) and the sweep completes.
TEST(RobustSweepTest, CellTimeoutRendersFailedWithoutAbort) {
  bench::Options options = SmallSweepOptions();
  options.datasets = {"SEA"};
  options.models = {"DMT"};
  options.cell_timeout_seconds = 1e-9;
  options.jobs = 1;
  const std::vector<bench::CellResult> cells =
      bench::RunSweep(options.models, options);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_TRUE(cells[0].failed);
  EXPECT_NE(cells[0].error.find("deadline"), std::string::npos)
      << cells[0].error;
}

// ------------------------------------------------------------- manifest

TEST_F(SweepCacheTest, ManifestRoundTripsThroughDisk) {
  const bench::ManifestKey key{1'000, 42, "", ""};
  {
    bench::SweepManifest writer(dir_, key);
    writer.Record("SEA", "GLM", {false, ""});
    writer.Record("SEA", "DMT", {true, "boom, with commas\nand a newline"});
  }
  bench::SweepManifest reader(dir_, key);
  EXPECT_EQ(reader.Load(), 2u);
  const auto ok = reader.Find("SEA", "GLM");
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(ok->failed);
  const auto bad = reader.Find("SEA", "DMT");
  ASSERT_TRUE(bad.has_value());
  EXPECT_TRUE(bad->failed);
  // The error survives flattened to one CSV cell: no commas, no newlines.
  EXPECT_NE(bad->error.find("boom"), std::string::npos);
  EXPECT_EQ(bad->error.find(','), std::string::npos);
  EXPECT_EQ(bad->error.find('\n'), std::string::npos);
  EXPECT_FALSE(reader.Find("SEA", "EFDT").has_value());
}

TEST(SweepManifestTest, FileNameSeparatesFaultConfigurations) {
  const bench::ManifestKey clean{1'000, 42, "", ""};
  EXPECT_NE(bench::SweepManifest::FileName(clean),
            bench::SweepManifest::FileName({2'000, 42, "", ""}));
  EXPECT_NE(bench::SweepManifest::FileName(clean),
            bench::SweepManifest::FileName({1'000, 43, "", ""}));
  // A faulted sweep must never satisfy a clean --resume (or vice versa).
  EXPECT_NE(bench::SweepManifest::FileName(clean),
            bench::SweepManifest::FileName({1'000, 42, "nan=0.01", ""}));
  EXPECT_NE(bench::SweepManifest::FileName(clean),
            bench::SweepManifest::FileName({1'000, 42, "", "cell:SEA/GLM=1"}));
}

TEST_F(SweepCacheTest, ResumeSkipsRecordedFailureWithoutRerun) {
  bench::Options options = SmallSweepOptions(dir_);
  options.datasets = {"SEA", "Agrawal"};
  options.models = {"GLM", "DMT"};
  options.failpoint_spec = "cell:SEA/GLM=1";
  options.jobs = 2;
  const std::vector<bench::CellResult> first =
      bench::RunSweep(options.models, options);
  ASSERT_EQ(first.size(), 4u);
  const bench::CellResult* broken = bench::FindCell(first, "SEA", "GLM");
  ASSERT_NE(broken, nullptr);
  EXPECT_TRUE(broken->failed);

  // Every cell -- ok and failed -- was checkpointed into the manifest.
  bench::SweepManifest manifest(
      dir_, {options.max_samples, options.seed, options.inject_spec,
             options.failpoint_spec});
  EXPECT_EQ(manifest.Load(), 4u);

  options.resume = true;
  const std::vector<bench::CellResult> resumed =
      bench::RunSweep(options.models, options);
  ASSERT_EQ(resumed.size(), 4u);
  const bench::CellResult* skipped = bench::FindCell(resumed, "SEA", "GLM");
  ASSERT_NE(skipped, nullptr);
  EXPECT_TRUE(skipped->failed);
  EXPECT_EQ(skipped->error, broken->error);
  // Proof the failed cell was not re-run: RunSweep re-armed its failpoint
  // (counters reset to zero) and resume never evaluated it.
  robust::Failpoint* fp = robust::GlobalFailpoints().Find("cell:SEA/GLM");
  ASSERT_NE(fp, nullptr);
  EXPECT_EQ(fp->hits(), 0u);
  // The surviving cells reproduce their numbers exactly (faulted runs
  // bypass the sweep cache, so the `ok` cells recompute deterministically).
  for (const auto& dataset : {"SEA", "Agrawal"}) {
    for (const auto& model : {"GLM", "DMT"}) {
      const bench::CellResult* a = bench::FindCell(first, dataset, model);
      const bench::CellResult* b = bench::FindCell(resumed, dataset, model);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      if (a->failed) continue;
      EXPECT_EQ(a->f1_mean, b->f1_mean) << dataset << " / " << model;
    }
  }
}

// ------------------------------------------------- usage-error exit codes

// ParseOptions must exit 2 (the conventional usage-error code, distinct
// from runtime failures exiting 1) on any malformed command line.
TEST(ParseOptionsDeathTest, UnknownFlagExitsWithCode2) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"bench", "--frobnicate"};
  EXPECT_EXIT(bench::ParseOptions(2, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "unknown option");
}

TEST(ParseOptionsDeathTest, MissingValueExitsWithCode2) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"bench", "--samples"};
  EXPECT_EXIT(bench::ParseOptions(2, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "missing value");
}

TEST(ParseOptionsDeathTest, MalformedInjectSpecExitsWithCode2) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"bench", "--inject", "bogus=1"};
  EXPECT_EXIT(bench::ParseOptions(3, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "bad --inject spec");
}

TEST(ParseOptionsDeathTest, MalformedFailpointSpecExitsWithCode2) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"bench", "--failpoints", "=0.5"};
  EXPECT_EXIT(bench::ParseOptions(3, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "bad --failpoints spec");
}

// strtoull-style parsing silently returned 0 for garbage values; every
// numeric flag must now reject trailing garbage, empty strings, and
// non-finite doubles instead of benchmarking with samples=0 or jobs=0.
TEST(ParseOptionsDeathTest, NonNumericSamplesExitsWithCode2) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"bench", "--samples", "abc"};
  EXPECT_EXIT(bench::ParseOptions(3, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2),
              "bad numeric value for --samples: 'abc'");
}

TEST(ParseOptionsDeathTest, TrailingGarbageSeedExitsWithCode2) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"bench", "--seed", "12x"};
  EXPECT_EXIT(bench::ParseOptions(3, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2),
              "bad numeric value for --seed: '12x'");
}

TEST(ParseOptionsDeathTest, EmptyJobsExitsWithCode2) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"bench", "--jobs", ""};
  EXPECT_EXIT(bench::ParseOptions(3, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2),
              "bad numeric value for --jobs: ''");
}

TEST(ParseOptionsDeathTest, NanCellTimeoutExitsWithCode2) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"bench", "--cell-timeout", "nan"};
  EXPECT_EXIT(bench::ParseOptions(3, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2),
              "bad numeric value for --cell-timeout: 'nan'");
}

TEST(ParseOptionsDeathTest, NegativeCellTimeoutExitsWithCode2) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"bench", "--cell-timeout", "-1.5"};
  EXPECT_EXIT(bench::ParseOptions(3, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "--cell-timeout must be >= 0");
}

// ----------------------------------------------- artifact name collisions

// SanitizeName maps every non-alphanumeric run to '_', so distinct model
// names like "VFDT(MC)" and "VFDT_MC_" collide; ArtifactStem must keep
// the first owner's plain stem and disambiguate later claimants with a
// stable hash suffix so telemetry artifacts never overwrite each other.
TEST(ArtifactStemTest, CollidingRawNamesGetDistinctStems) {
  std::map<std::string, std::string> used;
  const std::string first = bench::ArtifactStem("SEA", "VFDT(MC)", &used);
  const std::string second = bench::ArtifactStem("SEA", "VFDT_MC_", &used);
  EXPECT_EQ(first, "SEA__VFDT_MC_");
  EXPECT_NE(second, first);
  EXPECT_NE(used.find(second), used.end());
}

TEST(ArtifactStemTest, RepeatedPairIsIdempotent) {
  std::map<std::string, std::string> used;
  const std::string a = bench::ArtifactStem("SEA", "DMT", &used);
  const std::string b = bench::ArtifactStem("SEA", "DMT", &used);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, "SEA__DMT");
}

TEST(ArtifactStemTest, HashSuffixIsStableAcrossCalls) {
  std::map<std::string, std::string> used1;
  std::map<std::string, std::string> used2;
  bench::ArtifactStem("SEA", "VFDT(MC)", &used1);
  bench::ArtifactStem("SEA", "VFDT(MC)", &used2);
  const std::string a = bench::ArtifactStem("SEA", "VFDT_MC_", &used1);
  const std::string b = bench::ArtifactStem("SEA", "VFDT_MC_", &used2);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dmt
