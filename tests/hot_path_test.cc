// Conformance for the leaf-tiled training hot path.
//
// Three families:
//  1. Tile vs per-sample bit-identity: FitTile / LossAndGradientTile over a
//     gathered tile must equal FitRows / LossAndGradientOne over the same
//     rows EXACTLY (doubles compare with ==), for the binary and softmax
//     GLM heads and the linear regressor, across empty, single-row,
//     multiple-of-four and remainder tile sizes. This is the contract that
//     lets the DMT swap engines without moving a single golden byte.
//  2. Radix-bucket vs exact-scan proposal agreement: on grid-aligned
//     feature values (every distinct value in its own bucket) the bucketed
//     engine must produce the same candidate set as the exact sorted scan,
//     with statistics equal up to summation order.
//  3. float32 candidate-gradient accuracy: store-level norm error bounds
//     and end-to-end F1 agreement between the default (bucketed + f32)
//     and the pinned exact-f64 configuration.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/random.h"
#include "dmt/core/candidate.h"
#include "dmt/core/candidate_update.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/eval/prequential.h"
#include "dmt/linear/glm.h"
#include "dmt/linear/linear_regressor.h"
#include "dmt/streams/sea.h"

namespace dmt {
namespace {

// Tile sizes covering the DotBatch4 edges: empty, below one group, an
// exact multiple of four, and off-by-one/-three remainders.
constexpr std::size_t kTileSizes[] = {0, 1, 3, 4, 8, 13};

// --- 1. Tile vs per-sample bit-identity ----------------------------------

void FillClassBatch(Rng* rng, Batch* batch, int m, int c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x(m);
    for (double& v : x) v = rng->Uniform();
    batch->Add(x, static_cast<int>(rng->Uniform() * c) % c);
  }
}

void ExpectGlmTileMatchesPerSample(int num_classes) {
  const int m = 4;
  linear::GlmConfig config{.num_features = m, .num_classes = num_classes};
  for (const std::size_t n : kTileSizes) {
    // Same config + seed: both models start from identical parameters.
    linear::Glm per_sample(config);
    linear::Glm tiled(config);
    const std::size_t k = static_cast<std::size_t>(per_sample.num_params());

    Rng rng(1000 + n);
    Batch batch(m);
    FillClassBatch(&rng, &batch, m, num_classes, n);
    std::vector<std::size_t> rows(n);
    for (std::size_t i = 0; i < n; ++i) rows[i] = i;

    // Reference: the strided per-sample path.
    per_sample.FitRows(batch, rows);
    std::vector<double> want_loss(n);
    std::vector<double> want_grad(n * k);
    for (std::size_t i = 0; i < n; ++i) {
      want_loss[i] = per_sample.LossAndGradientOne(
          batch.row(i), batch.label(i), {want_grad.data() + i * k, k});
    }

    // Tiled path over the gathered copy of the same rows.
    std::vector<double> tile(n * m);
    std::vector<int> labels(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const double> x = batch.row(i);
      std::copy(x.begin(), x.end(), tile.begin() + i * m);
      labels[i] = batch.label(i);
    }
    tiled.FitTile(tile.data(), labels.data(), n);
    std::vector<double> got_loss(n);
    std::vector<double> got_grad(n * k);
    tiled.LossAndGradientTile(tile.data(), labels.data(), n, got_loss.data(),
                              got_grad.data());

    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got_loss[i], want_loss[i])
          << "c=" << num_classes << " n=" << n << " row " << i;
      for (std::size_t j = 0; j < k; ++j) {
        ASSERT_EQ(got_grad[i * k + j], want_grad[i * k + j])
            << "c=" << num_classes << " n=" << n << " row " << i << " param "
            << j;
      }
    }
    // Updated parameters must agree bitwise too: probe the full posterior.
    Rng probe(7);
    for (int t = 0; t < 50; ++t) {
      std::vector<double> x(m);
      for (double& v : x) v = probe.Uniform();
      const std::vector<double> pa = per_sample.PredictProba(x);
      const std::vector<double> pb = tiled.PredictProba(x);
      for (int cc = 0; cc < num_classes; ++cc) {
        ASSERT_EQ(pa[cc], pb[cc]) << "c=" << num_classes << " n=" << n;
      }
    }
  }
}

TEST(HotPathTest, GlmBinaryTileBitIdenticalToPerSamplePath) {
  ExpectGlmTileMatchesPerSample(2);
}

TEST(HotPathTest, GlmSoftmaxTileBitIdenticalToPerSamplePath) {
  ExpectGlmTileMatchesPerSample(3);
}

TEST(HotPathTest, RegressorTileBitIdenticalToPerSamplePath) {
  const int m = 5;
  linear::LinearRegressorConfig config{.num_features = m};
  for (const std::size_t n : kTileSizes) {
    linear::LinearRegressor per_sample(config);
    linear::LinearRegressor tiled(config);
    const std::size_t k = static_cast<std::size_t>(per_sample.num_params());

    Rng rng(2000 + n);
    linear::RegressionBatch batch(m);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> x(m);
      for (double& v : x) v = rng.Uniform();
      batch.Add(x, 2.0 * x[0] - x[1] + 0.1 * rng.Gaussian());
    }
    std::vector<std::size_t> rows(n);
    for (std::size_t i = 0; i < n; ++i) rows[i] = i;

    per_sample.FitRows(batch, rows);
    std::vector<double> want_loss(n);
    std::vector<double> want_grad(n * k);
    for (std::size_t i = 0; i < n; ++i) {
      want_loss[i] = per_sample.LossAndGradientOne(
          batch.row(i), batch.target(i), {want_grad.data() + i * k, k});
    }

    std::vector<double> tile(n * m);
    std::vector<double> targets(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const double> x = batch.row(i);
      std::copy(x.begin(), x.end(), tile.begin() + i * m);
      targets[i] = batch.target(i);
    }
    tiled.FitTile(tile.data(), targets.data(), n);
    std::vector<double> got_loss(n);
    std::vector<double> got_grad(n * k);
    tiled.LossAndGradientTile(tile.data(), targets.data(), n, got_loss.data(),
                              got_grad.data());

    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got_loss[i], want_loss[i]) << "n=" << n << " row " << i;
      for (std::size_t j = 0; j < k; ++j) {
        ASSERT_EQ(got_grad[i * k + j], want_grad[i * k + j])
            << "n=" << n << " row " << i << " param " << j;
      }
    }
    ASSERT_EQ(tiled.params().size(), per_sample.params().size());
    for (std::size_t j = 0; j < k; ++j) {
      ASSERT_EQ(tiled.params()[j], per_sample.params()[j])
          << "n=" << n << " param " << j;
    }
  }
}

// --- 2. Radix buckets vs exact sorted scan --------------------------------

// Grid-aligned values: with kGrid distinct values and kBuckets >> kGrid
// every distinct value occupies its own bucket, the per-bucket max IS the
// group value, and both engines see identical split thresholds. Statistics
// then differ only by floating-point summation order (the exact scan
// accumulates row by row in value order; the bucketed engine sums each
// bucket first), so counts compare exactly and losses/gains to 1e-9.
constexpr int kGridValues = 10;

double GridValue(Rng* rng) {
  const int cell = static_cast<int>(rng->Uniform() * kGridValues) %
                   kGridValues;
  return (2.0 * cell + 1.0) / (2.0 * kGridValues);  // 0.05, 0.15, ... 0.95
}

TEST(HotPathTest, RadixProposalsMatchExactScanOnGridValues) {
  const int m = 2;
  const int c = 2;
  linear::GlmConfig glm_config{.num_features = m, .num_classes = c};

  core::CandidateUpdateParams exact_params;
  exact_params.num_features = m;
  exact_params.max_candidates = 4096;  // never full: no replacement races
  exact_params.max_proposals_per_feature = 0;  // stride 1 on both engines
  exact_params.gradient_step_size = 0.2;
  exact_params.order_buckets = 0;
  core::CandidateUpdateParams bucket_params = exact_params;
  bucket_params.order_buckets = 4096;

  linear::Glm exact_model(glm_config);
  linear::Glm bucket_model(glm_config);
  const std::size_t k = static_cast<std::size_t>(exact_model.num_params());
  core::CandidateStore exact_store(k);
  core::CandidateStore bucket_store(k);
  core::TrainScratch exact_scratch;
  core::TrainScratch bucket_scratch;
  double exact_loss = 0.0, bucket_loss_sum = 0.0;
  std::vector<double> exact_grad(k, 0.0), bucket_grad(k, 0.0);
  double exact_count = 0.0, bucket_count = 0.0;

  Rng rng(55);
  for (int b = 0; b < 3; ++b) {  // batch 2+ also exercises stored scatter
    Batch batch(m);
    for (int i = 0; i < 200; ++i) {
      std::vector<double> x = {GridValue(&rng), GridValue(&rng)};
      batch.Add(x, x[0] + x[1] > 1.0 ? 1 : 0);
    }
    std::vector<std::size_t> rows(batch.size());
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;

    core::BeginFeatureOrders(batch, m, &exact_scratch);
    const double lb_exact = core::AccumulateNodeStatistics(
        batch, rows, &exact_model, &exact_loss, exact_grad, &exact_count,
        &exact_scratch);
    core::ScatterAndPropose(exact_params, batch, rows, lb_exact, exact_loss,
                            exact_grad, exact_count, &exact_store,
                            &exact_scratch);

    core::BeginFeatureOrders(batch, m, &bucket_scratch);
    const double lb_bucket = core::AccumulateNodeStatistics(
        batch, rows, &bucket_model, &bucket_loss_sum, bucket_grad,
        &bucket_count, &bucket_scratch);
    core::ScatterAndPropose(bucket_params, batch, rows, lb_bucket,
                            bucket_loss_sum, bucket_grad, bucket_count,
                            &bucket_store, &bucket_scratch);
    ASSERT_EQ(lb_bucket, lb_exact) << "batch " << b;
  }

  // Same candidate set (keys are exact doubles on both engines) ...
  ASSERT_GT(exact_store.size(), 0u);
  ASSERT_EQ(bucket_store.size(), exact_store.size());
  std::map<std::pair<int, double>, std::size_t> exact_keys;
  for (std::size_t i = 0; i < exact_store.size(); ++i) {
    exact_keys[{exact_store.feature(i), exact_store.value(i)}] = i;
  }
  for (std::size_t i = 0; i < bucket_store.size(); ++i) {
    const auto it = exact_keys.find(
        {bucket_store.feature(i), bucket_store.value(i)});
    ASSERT_NE(it, exact_keys.end())
        << "bucketed candidate (" << bucket_store.feature(i) << ", "
        << bucket_store.value(i) << ") missing from the exact scan";
    const std::size_t e = it->second;
    // ... with identical membership counts and order-tolerant statistics.
    EXPECT_EQ(bucket_store.count(i), exact_store.count(e));
    EXPECT_NEAR(bucket_store.loss(i), exact_store.loss(e),
                1e-9 * std::max(1.0, std::abs(exact_store.loss(e))));
    EXPECT_NEAR(bucket_store.GradSquaredNorm(i),
                exact_store.GradSquaredNorm(e),
                1e-9 * std::max(1.0, exact_store.GradSquaredNorm(e)));
    const double exact_gain =
        core::CandidateGain(exact_store, e, exact_loss, exact_grad,
                            exact_count, exact_loss, 0.2);
    const double bucket_gain =
        core::CandidateGain(bucket_store, i, bucket_loss_sum, bucket_grad,
                            bucket_count, bucket_loss_sum, 0.2);
    EXPECT_NEAR(bucket_gain, exact_gain,
                1e-9 * std::max(1.0, std::abs(exact_gain)));
  }
}

// --- 3. float32 candidate gradients ---------------------------------------

// Store-level bound: after many accumulations the f32 store's norms must
// track the f64 reference within the float32 relative-error envelope
// (one rounding per element per update; errors accumulate at most
// linearly, so ~updates * 2^-24 relative, far below the 1e-4 asserted).
TEST(HotPathTest, Float32StoreNormsTrackFloat64) {
  const std::size_t k = 12;
  core::CandidateStore f64(k, /*grad_f32=*/false);
  core::CandidateStore f32(k, /*grad_f32=*/true);
  EXPECT_FALSE(f64.grad_f32());
  EXPECT_TRUE(f32.grad_f32());
  f64.Append(0, 0.5);
  f32.Append(0, 0.5);

  Rng rng(99);
  std::vector<double> g(k);
  std::vector<double> node_grad(k, 0.25);
  for (int step = 0; step < 500; ++step) {
    for (double& v : g) v = rng.Uniform() * 0.02 - 0.01;
    f64.AccumulateGrad(0, g);
    f32.AccumulateGrad(0, g);
  }
  const double want = f64.GradSquaredNorm(0);
  const double got = f32.GradSquaredNorm(0);
  ASSERT_GT(want, 0.0);
  EXPECT_NEAR(got, want, 1e-4 * want);
  const double want_diff = f64.GradSquaredNormDiff(node_grad, 0);
  const double got_diff = f32.GradSquaredNormDiff(node_grad, 0);
  EXPECT_NEAR(got_diff, want_diff, 1e-4 * std::max(1.0, want_diff));
}

// End-to-end: the new defaults (256 radix buckets + f32 gradients) must
// track the pinned exact-f64 configuration on SEA -- same scheduler, only
// the hot-path knobs differ. The 0.01 band is the acceptance bar for the
// bucketed-default Table II golden.
TEST(HotPathTest, BucketedF32DefaultsTrackExactQualityOnSea) {
  auto run = [](std::size_t buckets, bool f32) {
    streams::SeaConfig sea;
    sea.total_samples = 10'000;
    sea.seed = 42;
    streams::SeaGenerator stream(sea);
    core::DmtConfig config{.num_features = 3, .num_classes = 2};
    config.order_buckets = buckets;
    config.candidate_grad_f32 = f32;
    core::DynamicModelTree model(config);
    eval::PrequentialConfig eval_config;
    eval_config.expected_samples = sea.total_samples;
    return eval::RunPrequential(&stream, &model, eval_config).f1.mean();
  };
  const double pinned = run(0, false);
  const double bucketed_f32 = run(256, true);
  EXPECT_NEAR(bucketed_f32, pinned, 0.01);
}

}  // namespace
}  // namespace dmt
