// ISA-portability pins for the vectorized kernels (kernels.h). The AVX2
// variants are written to be bit-identical to the scalar loops (no FMA,
// same per-element rounding sequence), and the bit-exact golden tests
// enforce that end to end. This file is the belt-and-braces layer the
// DMT_ENABLE_AVX2 CI job leans on: tolerance-checked agreement between
// every kernel and a plain reference loop, plus an end-to-end DMT quality
// pin loose enough to hold on any ISA. If a future vector kernel
// legitimately reorders arithmetic (e.g. an FMA build flag), the bit-exact
// goldens move but these must keep passing unchanged.
#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "dmt/common/kernels.h"
#include "dmt/common/random.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/eval/prequential.h"
#include "dmt/streams/sea.h"

namespace dmt {
namespace {

// Sized to cover the remainder handling: below one vector width, an exact
// multiple, and a large off-by-three tail.
constexpr std::size_t kSizes[] = {1, 3, 4, 8, 64, 1027};
constexpr double kRelTol = 1e-12;

std::vector<double> RandomVector(Rng* rng, std::size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->Uniform() * 2.0 - 1.0;
  return v;
}

void ExpectNear(double got, double want, const char* what, std::size_t n) {
  const double scale = std::max(1.0, std::abs(want));
  EXPECT_NEAR(got, want, kRelTol * scale) << what << " n=" << n;
}

TEST(IsaToleranceTest, ElementwiseKernelsMatchReferenceLoops) {
  Rng rng(31);
  for (const std::size_t n : kSizes) {
    const std::vector<double> x = RandomVector(&rng, n);
    const double a = rng.Uniform() * 2.0 - 1.0;

    std::vector<double> y = RandomVector(&rng, n);
    std::vector<double> y_ref = y;
    kernels::Axpy(a, x.data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) y_ref[i] += a * x[i];
    for (std::size_t i = 0; i < n; ++i) ExpectNear(y[i], y_ref[i], "Axpy", n);

    std::vector<double> c(n, 0.0);
    kernels::ScaledCopy(a, x.data(), c.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ExpectNear(c[i], a * x[i], "ScaledCopy", n);
    }

    std::vector<double> w = RandomVector(&rng, n);
    std::vector<double> w_ref = w;
    const double lr = 0.05;
    const double err = rng.Uniform() - 0.5;
    kernels::SgdAxpy(lr, err, x.data(), w.data(), n);
    for (std::size_t i = 0; i < n; ++i) w_ref[i] -= lr * (err * x[i]);
    for (std::size_t i = 0; i < n; ++i) {
      ExpectNear(w[i], w_ref[i], "SgdAxpy", n);
    }

    std::vector<double> s = RandomVector(&rng, n);
    std::vector<double> s_ref = s;
    kernels::Add(s.data(), x.data(), n);
    for (std::size_t i = 0; i < n; ++i) s_ref[i] += x[i];
    for (std::size_t i = 0; i < n; ++i) ExpectNear(s[i], s_ref[i], "Add", n);
  }
}

TEST(IsaToleranceTest, ReductionKernelsMatchReferenceLoops) {
  Rng rng(32);
  for (const std::size_t n : kSizes) {
    const std::vector<double> a = RandomVector(&rng, n);
    const std::vector<double> b = RandomVector(&rng, n);

    double dot = 0.0, sq = 0.0, sqdiff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dot += a[i] * b[i];
      sq += a[i] * a[i];
      const double d = a[i] - b[i];
      sqdiff += d * d;
    }
    ExpectNear(kernels::Dot(a.data(), b.data(), n), dot, "Dot", n);
    ExpectNear(kernels::SquaredNorm(a.data(), n), sq, "SquaredNorm", n);
    ExpectNear(kernels::ScaledSquaredNorm(0.25, a.data(), n), 0.25 * sq,
               "ScaledSquaredNorm", n);
    ExpectNear(kernels::SquaredNormDiff(a.data(), b.data(), n), sqdiff,
               "SquaredNormDiff", n);
  }
}

// DotBatch4 promises more than tolerance: each lane must be BIT-identical
// to a plain Dot over its row, on every ISA (the AVX2 variant keeps one
// accumulator per lane in strict i-order; the ILP is across rows, never
// within a reduction). The leaf-tiled trainer leans on this for
// tile-vs-per-sample bit-identity, so this is EXPECT_EQ, not NEAR.
TEST(IsaToleranceTest, DotBatch4BitIdenticalToFourDots) {
  Rng rng(33);
  for (const std::size_t n : kSizes) {
    const std::size_t stride = n + 3;  // padded rows: stride > n
    std::vector<double> tile(4 * stride);
    for (double& v : tile) v = rng.Uniform() * 2.0 - 1.0;
    const std::vector<double> w = RandomVector(&rng, n);

    double out[4] = {0.0, 0.0, 0.0, 0.0};
    kernels::DotBatch4(tile.data(), stride, w.data(), n, out);
    for (std::size_t t = 0; t < 4; ++t) {
      const double want = kernels::Dot(tile.data() + t * stride, w.data(), n);
      EXPECT_EQ(out[t], want) << "lane " << t << " n=" << n << " ISA "
                              << kernels::IsaName();
    }
  }
}

// Float32 candidate-gradient kernels: storage is float, every arithmetic
// operation is double (widen, operate, round once back on store). The
// reference loops spell that contract out element by element.
TEST(IsaToleranceTest, Float32GradientKernelsMatchReferenceLoops) {
  Rng rng(34);
  for (const std::size_t n : kSizes) {
    const std::vector<double> x = RandomVector(&rng, n);
    const std::vector<double> a = RandomVector(&rng, n);

    std::vector<float> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
    }
    std::vector<float> y_ref = y;
    kernels::AddToF32(y.data(), x.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      y_ref[i] = static_cast<float>(static_cast<double>(y_ref[i]) + x[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y[i], y_ref[i]) << "AddToF32 n=" << n << " i=" << i;
    }

    double sq = 0.0, sqdiff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = static_cast<double>(y[i]);
      sq += d * d;
      const double e = a[i] - d;
      sqdiff += e * e;
    }
    ExpectNear(kernels::SquaredNormF32(y.data(), n), sq, "SquaredNormF32", n);
    ExpectNear(kernels::SquaredNormDiffF32(a.data(), y.data(), n), sqdiff,
               "SquaredNormDiffF32", n);
  }
}

// End-to-end quality pin: a prequential DMT run on SEA must land in a band
// wide enough to absorb any legitimate ISA-induced rounding drift but
// narrow enough to catch a broken kernel (which collapses F1 toward
// chance). The scalar build measures ~0.83 mean F1 here.
TEST(IsaToleranceTest, DmtSeaF1WithinToleranceBand) {
  streams::SeaConfig sea;
  sea.total_samples = 10'000;
  sea.seed = 42;
  streams::SeaGenerator stream(sea);
  core::DynamicModelTree model({.num_features = 3, .num_classes = 2});
  eval::PrequentialConfig config;
  config.expected_samples = sea.total_samples;
  const eval::PrequentialResult result =
      eval::RunPrequential(&stream, &model, config);
  EXPECT_GT(result.f1.mean(), 0.78) << "ISA " << kernels::IsaName();
  EXPECT_LT(result.f1.mean(), 0.90) << "ISA " << kernels::IsaName();
}

}  // namespace
}  // namespace dmt
