#include "dmt/ensemble/leveraging_bagging.h"

#include <algorithm>
#include <future>

#include "dmt/common/check.h"
#include "dmt/common/sanitize.h"
#include "dmt/obs/telemetry.h"
#include "dmt/serial/model_io.h"

namespace dmt::ensemble {

namespace {
constexpr std::size_t kMaxCounter = std::size_t{1} << 62;
}  // namespace

LeveragingBagging::LeveragingBagging(const LeveragingBaggingConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_classes >= 2);
  DMT_CHECK(config.num_learners >= 1);
  for (int i = 0; i < config_.num_learners; ++i) {
    member_rngs_.push_back(rng_.Fork());
    members_.push_back(MakeMember(&member_rngs_.back()));
    detectors_.emplace_back(config_.adwin_delta);
  }
  member_detections_.resize(members_.size(), 0);
}

void LeveragingBagging::AttachTelemetry(obs::TelemetryRegistry* registry) {
  if (registry == nullptr) return;
  telemetry_.member_resets = registry->Counter("levbag.member_resets");
  telemetry_.adwin_detections =
      registry->Counter("levbag.adwin_detections");
}

void LeveragingBagging::FlushTelemetry() {
  if (telemetry_.adwin_detections == nullptr) return;
  std::size_t detections = 0;
  for (std::size_t d : member_detections_) detections += d;
  DMT_TELEMETRY_ADD(telemetry_.adwin_detections,
                    detections - telemetry_.last_detections);
  telemetry_.last_detections = detections;
}

std::unique_ptr<trees::Vfdt> LeveragingBagging::MakeMember(Rng* rng) {
  trees::VfdtConfig base = config_.base;
  base.num_features = config_.num_features;
  base.num_classes = config_.num_classes;
  base.seed = rng->Fork().engine()();
  return std::make_unique<trees::Vfdt>(base);
}

void LeveragingBagging::ResetWorstMember() {
  // Reset the member with the highest windowed error.
  std::size_t worst = 0;
  for (std::size_t i = 1; i < members_.size(); ++i) {
    if (detectors_[i].mean() > detectors_[worst].mean()) worst = i;
  }
  members_[worst] = MakeMember(&member_rngs_[worst]);
  detectors_[worst] = drift::Adwin(config_.adwin_delta);
  ++num_resets_;
  // Always runs on the coordinating thread (per instance sequentially, or
  // at the batch boundary in parallel mode), so counting directly is safe.
  DMT_TELEMETRY_COUNT(telemetry_.member_resets);
}

void LeveragingBagging::TrainInstance(std::span<const double> x, int y) {
  // Skip unusable rows before any detector update or per-member RNG draw
  // (mirrored in TrainMemberBatch so both modes skip identically).
  if (!RowIsFinite(x) || y < 0 || y >= config_.num_classes) return;
  bool change = false;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    // Monitor each member's own prequential error.
    const double error = members_[i]->Predict(x) == y ? 0.0 : 1.0;
    const bool fired = detectors_[i].Update(error);
    change |= fired;
    member_detections_[i] += fired ? 1 : 0;
    const int weight = member_rngs_[i].Poisson(config_.poisson_lambda);
    for (int w = 0; w < weight; ++w) members_[i]->TrainInstance(x, y);
  }
  if (change) ResetWorstMember();
}

bool LeveragingBagging::TrainMemberBatch(std::size_t m, const Batch& batch) {
  bool fired = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::span<const double> x = batch.row(i);
    const int y = batch.label(i);
    if (!RowIsFinite(x) || y < 0 || y >= config_.num_classes) continue;
    const double error = members_[m]->Predict(x) == y ? 0.0 : 1.0;
    const bool detected = detectors_[m].Update(error);
    fired |= detected;
    member_detections_[m] += detected ? 1 : 0;
    const int weight = member_rngs_[m].Poisson(config_.poisson_lambda);
    for (int w = 0; w < weight; ++w) members_[m]->TrainInstance(x, y);
  }
  return fired;
}

ThreadPool* LeveragingBagging::WorkerPool() const {
  if (config_.pool != nullptr) return config_.pool;
  if (config_.num_threads > 1 && members_.size() > 1) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(
          std::min<std::size_t>(config_.num_threads, members_.size()));
    }
    return pool_.get();
  }
  return nullptr;
}

void LeveragingBagging::PartialFit(const Batch& batch) {
  ThreadPool* pool = WorkerPool();
  if (pool != nullptr && members_.size() > 1) {
    // Parallel mode (off by default): member training is independent, only
    // the worst-member reset couples members, so the reset decision is
    // deferred to the batch boundary.
    std::vector<std::future<bool>> futures;
    futures.reserve(members_.size());
    for (std::size_t m = 0; m < members_.size(); ++m) {
      futures.push_back(
          pool->Submit([this, m, &batch]() {
            return TrainMemberBatch(m, batch);
          }));
    }
    bool change = false;
    for (std::future<bool>& future : futures) change |= GetHelping(pool, &future);
    if (change) ResetWorstMember();
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      TrainInstance(batch.row(i), batch.label(i));
    }
  }
  FlushTelemetry();
}

void LeveragingBagging::PredictProbaInto(std::span<const double> x,
                                         std::span<double> out) const {
  const std::size_t c = static_cast<std::size_t>(config_.num_classes);
  if (member_scratch_.size() != c) member_scratch_.resize(c);
  std::fill(out.begin(), out.end(), 0.0);
  for (const auto& member : members_) {
    member->PredictProbaInto(x, member_scratch_);
    for (std::size_t k = 0; k < c; ++k) out[k] += member_scratch_[k];
  }
  for (double& v : out) v /= static_cast<double>(members_.size());
}

void LeveragingBagging::PredictBatch(const Batch& batch,
                                     ProbaMatrix* out) const {
  const std::size_t c = static_cast<std::size_t>(config_.num_classes);
  out->Reshape(batch.size(), c);
  ThreadPool* pool = WorkerPool();
  if (pool == nullptr || batch.size() < 2) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      PredictProbaInto(batch.row(i), out->row(i));
    }
    return;
  }
  const std::size_t num_chunks =
      std::min(batch.size(), pool->num_threads() + 1);
  const std::size_t chunk = (batch.size() + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (std::size_t begin = 0; begin < batch.size(); begin += chunk) {
    const std::size_t end = std::min(begin + chunk, batch.size());
    futures.push_back(pool->Submit([this, &batch, out, begin, end, c]() {
      std::vector<double> scratch(c);
      for (std::size_t i = begin; i < end; ++i) {
        const std::span<double> row = out->row(i);
        std::fill(row.begin(), row.end(), 0.0);
        for (const auto& member : members_) {
          member->PredictProbaInto(batch.row(i), scratch);
          for (std::size_t k = 0; k < c; ++k) row[k] += scratch[k];
        }
        for (double& v : row) v /= static_cast<double>(members_.size());
      }
    }));
  }
  for (std::future<void>& future : futures) GetHelping(pool, &future);
}

void LeveragingBagging::SaveBody(serial::Writer& writer) const {
  writer.I32(config_.num_features);
  writer.I32(config_.num_classes);
  writer.I32(config_.num_learners);
  writer.F64(config_.poisson_lambda);
  writer.F64(config_.adwin_delta);
  trees::VfdtConfig base = config_.base;
  base.num_features = config_.num_features;
  base.num_classes = config_.num_classes;
  trees::SaveVfdtConfig(writer, base);
  writer.U64(config_.seed);
  writer.Size(num_resets_);
  for (std::size_t i = 0; i < members_.size(); ++i) {
    members_[i]->SaveBody(writer);
    detectors_[i].Save(writer);
    writer.Size(member_detections_[i]);
    writer.Engine(member_rngs_[i].engine());
  }
  // Flush baseline, so counters attached after Load keep emitting pure
  // continuation deltas.
  writer.Size(telemetry_.last_detections);
  writer.Engine(rng_.engine());
}

std::unique_ptr<LeveragingBagging> LeveragingBagging::LoadBody(
    serial::Reader& reader) {
  LeveragingBaggingConfig config;
  config.num_features = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "LevBag feature count"));
  config.num_classes = static_cast<int>(serial::CheckedRange(
      reader.I32(), 2, serial::kMaxClasses, "LevBag class count"));
  config.num_learners = static_cast<int>(
      serial::CheckedRange(reader.I32(), 1, 4096, "LevBag member count"));
  // poisson_distribution with a non-positive mean is undefined behavior.
  config.poisson_lambda =
      serial::CheckedFinite(reader.F64(), "LevBag Poisson lambda");
  serial::Check(config.poisson_lambda > 0.0,
                "LevBag Poisson lambda is not positive");
  // Flows into ADWIN constructors, which DMT_CHECK the range.
  config.adwin_delta =
      serial::CheckedFinite(reader.F64(), "LevBag ADWIN delta");
  serial::Check(config.adwin_delta > 0.0 && config.adwin_delta < 1.0,
                "LevBag ADWIN delta out of range");
  config.base = trees::LoadVfdtConfig(reader);
  config.seed = reader.U64();
  auto bagging = std::make_unique<LeveragingBagging>(config);
  bagging->num_resets_ = reader.Size(kMaxCounter);
  for (std::size_t i = 0; i < bagging->members_.size(); ++i) {
    bagging->members_[i] = serial::LoadMemberVfdt(reader, config.num_features,
                                                  config.num_classes);
    bagging->detectors_[i] = drift::Adwin::Load(reader);
    bagging->member_detections_[i] = reader.Size(kMaxCounter);
    // Safe mid-record: nothing after this point draws from this RNG.
    reader.Engine(&bagging->member_rngs_[i].engine());
  }
  bagging->telemetry_.last_detections = reader.Size(kMaxCounter);
  reader.Engine(&bagging->rng_.engine());
  return bagging;
}

void LeveragingBagging::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagLevBag);
  SaveBody(writer);
}

std::unique_ptr<LeveragingBagging> LeveragingBagging::Load(std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagLevBag);
  return LoadBody(reader);
}

std::size_t LeveragingBagging::NumSplits() const {
  std::size_t total = 0;
  for (const auto& member : members_) total += member->NumSplits();
  return total;
}

std::size_t LeveragingBagging::NumParameters() const {
  std::size_t total = 0;
  for (const auto& member : members_) total += member->NumParameters();
  return total;
}

}  // namespace dmt::ensemble
