#include "dmt/ensemble/leveraging_bagging.h"

#include <algorithm>

#include "dmt/common/check.h"

namespace dmt::ensemble {

LeveragingBagging::LeveragingBagging(const LeveragingBaggingConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_classes >= 2);
  DMT_CHECK(config.num_learners >= 1);
  for (int i = 0; i < config_.num_learners; ++i) {
    members_.push_back(MakeMember());
    detectors_.emplace_back(config_.adwin_delta);
  }
}

std::unique_ptr<trees::Vfdt> LeveragingBagging::MakeMember() {
  trees::VfdtConfig base = config_.base;
  base.num_features = config_.num_features;
  base.num_classes = config_.num_classes;
  base.seed = rng_.Fork().engine()();
  return std::make_unique<trees::Vfdt>(base);
}

void LeveragingBagging::TrainInstance(std::span<const double> x, int y) {
  bool change = false;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    // Monitor each member's own prequential error.
    const double error = members_[i]->Predict(x) == y ? 0.0 : 1.0;
    change |= detectors_[i].Update(error);
    const int weight = rng_.Poisson(config_.poisson_lambda);
    for (int w = 0; w < weight; ++w) members_[i]->TrainInstance(x, y);
  }
  if (change) {
    // Reset the member with the highest windowed error.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < members_.size(); ++i) {
      if (detectors_[i].mean() > detectors_[worst].mean()) worst = i;
    }
    members_[worst] = MakeMember();
    detectors_[worst] = drift::Adwin(config_.adwin_delta);
    ++num_resets_;
  }
}

void LeveragingBagging::PartialFit(const Batch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    TrainInstance(batch.row(i), batch.label(i));
  }
}

std::vector<double> LeveragingBagging::PredictProba(
    std::span<const double> x) const {
  std::vector<double> sum(config_.num_classes, 0.0);
  for (const auto& member : members_) {
    const std::vector<double> proba = member->PredictProba(x);
    for (int c = 0; c < config_.num_classes; ++c) sum[c] += proba[c];
  }
  for (double& v : sum) v /= static_cast<double>(members_.size());
  return sum;
}

int LeveragingBagging::Predict(std::span<const double> x) const {
  const std::vector<double> proba = PredictProba(x);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::size_t LeveragingBagging::NumSplits() const {
  std::size_t total = 0;
  for (const auto& member : members_) total += member->NumSplits();
  return total;
}

std::size_t LeveragingBagging::NumParameters() const {
  std::size_t total = 0;
  for (const auto& member : members_) total += member->NumParameters();
  return total;
}

}  // namespace dmt::ensemble
