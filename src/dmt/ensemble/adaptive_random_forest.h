// Adaptive Random Forest (Gomes et al., 2017).
//
// An online forest of Hoeffding trees where (i) each tree considers only a
// random subset of sqrt(m)+1 features per split, (ii) training uses online
// bagging with Poisson(6) weights, and (iii) each member carries a warning
// and a drift ADWIN detector: a warning starts a background tree that is
// trained in parallel and promoted when the drift detector fires. The paper
// runs it with 3 members configured like the stand-alone VFDT (Sec. VI-C).
#ifndef DMT_ENSEMBLE_ADAPTIVE_RANDOM_FOREST_H_
#define DMT_ENSEMBLE_ADAPTIVE_RANDOM_FOREST_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "dmt/common/classifier.h"
#include "dmt/common/random.h"
#include "dmt/common/thread_pool.h"
#include "dmt/drift/adwin.h"
#include "dmt/trees/vfdt.h"

namespace dmt::serial {
class Writer;
class Reader;
}  // namespace dmt::serial

namespace dmt::ensemble {

struct AdaptiveRandomForestConfig {
  int num_features = 0;
  int num_classes = 2;
  int num_learners = 3;  // as in the paper's experiments
  double poisson_lambda = 6.0;
  double warning_delta = 0.01;
  double drift_delta = 0.001;
  // 0 derives sqrt(num_features) + 1.
  int subspace_size = 0;
  // >1 trains members on an internally owned thread pool, one task per
  // member and batch. Off by default. Results are identical to sequential
  // training: each member owns its RNG, so training is order- and
  // schedule-independent.
  int num_threads = 1;
  // Optional borrowed pool shared with the caller (e.g. the sweep engine).
  // When set it takes precedence over `num_threads` and no pool is owned;
  // waits use helping (ThreadPool::RunOneTask) so that nesting ensemble
  // tasks inside a task running on the same pool cannot deadlock. The pool
  // must outlive the ensemble.
  ThreadPool* pool = nullptr;
  trees::VfdtConfig base;
  std::uint64_t seed = 42;
};

class AdaptiveRandomForest : public Classifier {
 public:
  explicit AdaptiveRandomForest(const AdaptiveRandomForestConfig& config);

  void PartialFit(const Batch& batch) override;
  int num_classes() const override { return config_.num_classes; }
  void PredictProbaInto(std::span<const double> x,
                        std::span<double> out) const override;
  void PredictBatch(const Batch& batch, ProbaMatrix* out) const override;
  std::size_t NumSplits() const override;
  std::size_t NumParameters() const override;
  std::string name() const override { return "ARF"; }

  std::size_t num_promotions() const;
  std::size_t num_background_trees() const;

  // Caches "arf.*" counters. Member trees are trained on worker threads
  // under --member-parallel, so the registry is never handed to them:
  // members keep private tallies and the coordinating thread adds the
  // deltas once per PartialFit (FlushTelemetry), keeping counters exact
  // and race-free at batch granularity.
  void AttachTelemetry(obs::TelemetryRegistry* registry) override;

  // --- Persistence (binary archive; see serial/archive.h) ---
  // Full state: ensemble config, every member's tree (plus the background
  // tree when one is running), both ADWIN detectors, the cumulative member
  // tallies, the member RNGs and the ensemble RNG (engines written last so
  // Load restores them after all constructor draws). The borrowed pool /
  // num_threads are runtime knobs and are not persisted: a restored forest
  // trains sequentially until reconfigured.
  void Save(std::ostream& out) const override;
  static std::unique_ptr<AdaptiveRandomForest> Load(std::istream& in);
  void SaveBody(serial::Writer& writer) const;
  static std::unique_ptr<AdaptiveRandomForest> LoadBody(serial::Reader& reader);

 private:
  // Members are fully independent of one another: each owns its trees, its
  // detectors and its RNG (forked deterministically at construction), which
  // is what makes parallel member training bit-equal to sequential.
  struct Member {
    std::unique_ptr<trees::Vfdt> tree;
    std::unique_ptr<trees::Vfdt> background;
    drift::Adwin warning;
    drift::Adwin drift;
    Rng rng;
    std::size_t promotions = 0;
    // Cumulative tallies for telemetry (detector num_detections reset on
    // promotion, so they cannot serve as monotonic counters).
    std::size_t background_starts = 0;
    std::size_t background_promotions = 0;
    std::size_t warnings = 0;
    std::size_t drifts = 0;

    Member(double warning_delta, double drift_delta, Rng member_rng)
        : warning(warning_delta), drift(drift_delta), rng(member_rng) {}
  };

  std::unique_ptr<trees::Vfdt> MakeTree(Rng* rng);
  void TrainMemberInstance(Member* member, std::span<const double> x, int y);
  void TrainMemberBatch(Member* member, const Batch& batch);
  // The borrowed pool if one was injected, else the lazily built owned
  // pool, else nullptr (sequential).
  ThreadPool* WorkerPool() const;
  // Adds the member-tally deltas since the last flush to the attached
  // counters; runs on the coordinating thread after every PartialFit.
  void FlushTelemetry();

  AdaptiveRandomForestConfig config_;
  Rng rng_;
  std::vector<Member> members_;
  mutable std::unique_ptr<ThreadPool> pool_;  // lazy, when num_threads > 1
  // One member-probability row reused across PredictProbaInto calls; makes
  // single-instance scoring allocation-free but not concurrency-safe on a
  // shared instance (PredictBatch gives each worker task its own row).
  mutable std::vector<double> member_scratch_;
  // Telemetry destinations and last-flushed totals, inert until
  // AttachTelemetry.
  struct Telemetry {
    std::uint64_t* background_starts = nullptr;
    std::uint64_t* promotions = nullptr;
    std::uint64_t* warnings = nullptr;
    std::uint64_t* drifts = nullptr;
    std::size_t last_background_starts = 0;
    std::size_t last_promotions = 0;
    std::size_t last_warnings = 0;
    std::size_t last_drifts = 0;
  };
  Telemetry telemetry_;
};

}  // namespace dmt::ensemble

#endif  // DMT_ENSEMBLE_ADAPTIVE_RANDOM_FOREST_H_
