// Adaptive Random Forest (Gomes et al., 2017).
//
// An online forest of Hoeffding trees where (i) each tree considers only a
// random subset of sqrt(m)+1 features per split, (ii) training uses online
// bagging with Poisson(6) weights, and (iii) each member carries a warning
// and a drift ADWIN detector: a warning starts a background tree that is
// trained in parallel and promoted when the drift detector fires. The paper
// runs it with 3 members configured like the stand-alone VFDT (Sec. VI-C).
#ifndef DMT_ENSEMBLE_ADAPTIVE_RANDOM_FOREST_H_
#define DMT_ENSEMBLE_ADAPTIVE_RANDOM_FOREST_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "dmt/common/classifier.h"
#include "dmt/common/random.h"
#include "dmt/drift/adwin.h"
#include "dmt/trees/vfdt.h"

namespace dmt::ensemble {

struct AdaptiveRandomForestConfig {
  int num_features = 0;
  int num_classes = 2;
  int num_learners = 3;  // as in the paper's experiments
  double poisson_lambda = 6.0;
  double warning_delta = 0.01;
  double drift_delta = 0.001;
  // 0 derives sqrt(num_features) + 1.
  int subspace_size = 0;
  trees::VfdtConfig base;
  std::uint64_t seed = 42;
};

class AdaptiveRandomForest : public Classifier {
 public:
  explicit AdaptiveRandomForest(const AdaptiveRandomForestConfig& config);

  void PartialFit(const Batch& batch) override;
  int Predict(std::span<const double> x) const override;
  std::vector<double> PredictProba(std::span<const double> x) const override;
  std::size_t NumSplits() const override;
  std::size_t NumParameters() const override;
  std::string name() const override { return "ARF"; }

  std::size_t num_promotions() const { return num_promotions_; }
  std::size_t num_background_trees() const;

 private:
  struct Member {
    std::unique_ptr<trees::Vfdt> tree;
    std::unique_ptr<trees::Vfdt> background;
    drift::Adwin warning;
    drift::Adwin drift;

    Member(double warning_delta, double drift_delta)
        : warning(warning_delta), drift(drift_delta) {}
  };

  std::unique_ptr<trees::Vfdt> MakeTree();
  void TrainInstance(std::span<const double> x, int y);

  AdaptiveRandomForestConfig config_;
  Rng rng_;
  std::vector<Member> members_;
  std::size_t num_promotions_ = 0;
};

}  // namespace dmt::ensemble

#endif  // DMT_ENSEMBLE_ADAPTIVE_RANDOM_FOREST_H_
