// Online (Oza) Bagging, Oza & Russell 2001: each incoming observation is
// presented to every base learner k ~ Poisson(1) times, which converges to
// bootstrap resampling as the stream grows. The plain, drift-oblivious
// baseline that Leveraging Bagging extends with Poisson(6) and ADWIN.
#ifndef DMT_ENSEMBLE_ONLINE_BAGGING_H_
#define DMT_ENSEMBLE_ONLINE_BAGGING_H_

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "dmt/common/classifier.h"
#include "dmt/common/random.h"
#include "dmt/trees/vfdt.h"

namespace dmt::serial {
class Writer;
class Reader;
}  // namespace dmt::serial

namespace dmt::ensemble {

struct OnlineBaggingConfig {
  int num_features = 0;
  int num_classes = 2;
  int num_learners = 3;
  double poisson_lambda = 1.0;
  trees::VfdtConfig base;
  std::uint64_t seed = 42;
};

class OnlineBagging : public Classifier {
 public:
  explicit OnlineBagging(const OnlineBaggingConfig& config);

  void PartialFit(const Batch& batch) override;
  int num_classes() const override { return config_.num_classes; }
  void PredictProbaInto(std::span<const double> x,
                        std::span<double> out) const override;
  std::size_t NumSplits() const override;
  std::size_t NumParameters() const override;
  std::string name() const override { return "OzaBag"; }

  // --- Persistence (binary archive; see serial/archive.h) ---
  // Full state: config, member trees and the shared RNG (engine last).
  void Save(std::ostream& out) const override;
  static std::unique_ptr<OnlineBagging> Load(std::istream& in);
  void SaveBody(serial::Writer& writer) const;
  static std::unique_ptr<OnlineBagging> LoadBody(serial::Reader& reader);

 private:
  OnlineBaggingConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<trees::Vfdt>> members_;
  // Member-probability row reused by PredictProbaInto (not concurrency-safe
  // on a shared instance).
  mutable std::vector<double> member_scratch_;
};

}  // namespace dmt::ensemble

#endif  // DMT_ENSEMBLE_ONLINE_BAGGING_H_
