#include "dmt/ensemble/adaptive_random_forest.h"

#include <algorithm>
#include <cmath>
#include <future>

#include "dmt/common/check.h"
#include "dmt/common/sanitize.h"
#include "dmt/obs/telemetry.h"
#include "dmt/serial/model_io.h"

namespace dmt::ensemble {

namespace {

// Permissive bound for monotonic counters.
constexpr std::size_t kMaxCounter = std::size_t{1} << 62;

}  // namespace

AdaptiveRandomForest::AdaptiveRandomForest(
    const AdaptiveRandomForestConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_classes >= 2);
  DMT_CHECK(config.num_learners >= 1);
  if (config_.subspace_size <= 0) {
    config_.subspace_size = static_cast<int>(std::sqrt(
                                static_cast<double>(config.num_features))) +
                            1;
  }
  for (int i = 0; i < config_.num_learners; ++i) {
    Member member(config_.warning_delta, config_.drift_delta, rng_.Fork());
    member.tree = MakeTree(&member.rng);
    members_.push_back(std::move(member));
  }
}

std::unique_ptr<trees::Vfdt> AdaptiveRandomForest::MakeTree(Rng* rng) {
  trees::VfdtConfig base = config_.base;
  base.num_features = config_.num_features;
  base.num_classes = config_.num_classes;
  base.subspace_size = config_.subspace_size;
  base.seed = rng->Fork().engine()();
  return std::make_unique<trees::Vfdt>(base);
}

void AdaptiveRandomForest::TrainMemberInstance(Member* member,
                                               std::span<const double> x,
                                               int y) {
  // Skip unusable rows before any drift-detector update or RNG draw, so
  // the sequential and member-parallel paths skip identically (DESIGN.md
  // Sec. 8).
  if (!RowIsFinite(x) || y < 0 || y >= config_.num_classes) return;
  const double error = member->tree->Predict(x) == y ? 0.0 : 1.0;
  const bool warn = member->warning.Update(error);
  const bool drift = member->drift.Update(error);
  if (warn) ++member->warnings;
  if (drift) ++member->drifts;

  if (warn && member->background == nullptr) {
    member->background = MakeTree(&member->rng);
    ++member->background_starts;
  }
  if (drift) {
    // Promote the background tree (or restart from scratch).
    if (member->background != nullptr) ++member->background_promotions;
    member->tree = member->background != nullptr
                       ? std::move(member->background)
                       : MakeTree(&member->rng);
    member->background.reset();
    member->warning = drift::Adwin(config_.warning_delta);
    member->drift = drift::Adwin(config_.drift_delta);
    ++member->promotions;
  }

  const int weight = member->rng.Poisson(config_.poisson_lambda);
  for (int w = 0; w < weight; ++w) {
    member->tree->TrainInstance(x, y);
    if (member->background != nullptr) member->background->TrainInstance(x, y);
  }
}

void AdaptiveRandomForest::TrainMemberBatch(Member* member,
                                            const Batch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    TrainMemberInstance(member, batch.row(i), batch.label(i));
  }
}

ThreadPool* AdaptiveRandomForest::WorkerPool() const {
  if (config_.pool != nullptr) return config_.pool;
  if (config_.num_threads > 1 && members_.size() > 1) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(
          std::min<std::size_t>(config_.num_threads, members_.size()));
    }
    return pool_.get();
  }
  return nullptr;
}

void AdaptiveRandomForest::PartialFit(const Batch& batch) {
  ThreadPool* pool = WorkerPool();
  if (pool != nullptr && members_.size() > 1) {
    std::vector<std::future<void>> futures;
    futures.reserve(members_.size());
    for (Member& member : members_) {
      Member* m = &member;
      futures.push_back(
          pool->Submit([this, m, &batch]() { TrainMemberBatch(m, batch); }));
    }
    // Helping wait: if we are already inside a task of this (shared) pool,
    // drain queued work instead of blocking a worker thread.
    for (std::future<void>& future : futures) GetHelping(pool, &future);
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      for (Member& member : members_) {
        TrainMemberInstance(&member, batch.row(i), batch.label(i));
      }
    }
  }
  FlushTelemetry();
}

void AdaptiveRandomForest::AttachTelemetry(obs::TelemetryRegistry* registry) {
  if (registry == nullptr) return;
  telemetry_.background_starts = registry->Counter("arf.background_starts");
  telemetry_.promotions = registry->Counter("arf.promotions");
  telemetry_.warnings = registry->Counter("arf.warnings");
  telemetry_.drifts = registry->Counter("arf.drifts");
}

void AdaptiveRandomForest::FlushTelemetry() {
  if (telemetry_.promotions == nullptr) return;
  std::size_t starts = 0;
  std::size_t promotions = 0;
  std::size_t warnings = 0;
  std::size_t drifts = 0;
  for (const Member& member : members_) {
    starts += member.background_starts;
    promotions += member.background_promotions;
    warnings += member.warnings;
    drifts += member.drifts;
  }
  DMT_TELEMETRY_ADD(telemetry_.background_starts,
                    starts - telemetry_.last_background_starts);
  DMT_TELEMETRY_ADD(telemetry_.promotions,
                    promotions - telemetry_.last_promotions);
  DMT_TELEMETRY_ADD(telemetry_.warnings,
                    warnings - telemetry_.last_warnings);
  DMT_TELEMETRY_ADD(telemetry_.drifts, drifts - telemetry_.last_drifts);
  telemetry_.last_background_starts = starts;
  telemetry_.last_promotions = promotions;
  telemetry_.last_warnings = warnings;
  telemetry_.last_drifts = drifts;
}

void AdaptiveRandomForest::PredictProbaInto(std::span<const double> x,
                                            std::span<double> out) const {
  const std::size_t c = static_cast<std::size_t>(config_.num_classes);
  if (member_scratch_.size() != c) member_scratch_.resize(c);
  std::fill(out.begin(), out.end(), 0.0);
  for (const Member& member : members_) {
    member.tree->PredictProbaInto(x, member_scratch_);
    for (std::size_t k = 0; k < c; ++k) out[k] += member_scratch_[k];
  }
  for (double& v : out) v /= static_cast<double>(members_.size());
}

void AdaptiveRandomForest::PredictBatch(const Batch& batch,
                                        ProbaMatrix* out) const {
  const std::size_t c = static_cast<std::size_t>(config_.num_classes);
  out->Reshape(batch.size(), c);
  ThreadPool* pool = WorkerPool();
  if (pool == nullptr || batch.size() < 2) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      PredictProbaInto(batch.row(i), out->row(i));
    }
    return;
  }
  // Fan contiguous row chunks over the pool. Every task owns its scratch
  // row, so member trees are only ever read concurrently.
  const std::size_t num_chunks =
      std::min(batch.size(), pool->num_threads() + 1);
  const std::size_t chunk = (batch.size() + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (std::size_t begin = 0; begin < batch.size(); begin += chunk) {
    const std::size_t end = std::min(begin + chunk, batch.size());
    futures.push_back(pool->Submit([this, &batch, out, begin, end, c]() {
      std::vector<double> scratch(c);
      for (std::size_t i = begin; i < end; ++i) {
        const std::span<double> row = out->row(i);
        std::fill(row.begin(), row.end(), 0.0);
        for (const Member& member : members_) {
          member.tree->PredictProbaInto(batch.row(i), scratch);
          for (std::size_t k = 0; k < c; ++k) row[k] += scratch[k];
        }
        for (double& v : row) v /= static_cast<double>(members_.size());
      }
    }));
  }
  for (std::future<void>& future : futures) GetHelping(pool, &future);
}

std::size_t AdaptiveRandomForest::NumSplits() const {
  std::size_t total = 0;
  for (const Member& member : members_) total += member.tree->NumSplits();
  return total;
}

std::size_t AdaptiveRandomForest::NumParameters() const {
  std::size_t total = 0;
  for (const Member& member : members_) total += member.tree->NumParameters();
  return total;
}

void AdaptiveRandomForest::SaveBody(serial::Writer& writer) const {
  writer.I32(config_.num_features);
  writer.I32(config_.num_classes);
  writer.I32(config_.num_learners);
  writer.F64(config_.poisson_lambda);
  writer.F64(config_.warning_delta);
  writer.F64(config_.drift_delta);
  writer.I32(config_.subspace_size);  // resolved at construction
  // Base tree template with the ensemble dimensions filled in, exactly as
  // MakeTree applies it (seed and subspace are overridden per tree anyway).
  trees::VfdtConfig base = config_.base;
  base.num_features = config_.num_features;
  base.num_classes = config_.num_classes;
  trees::SaveVfdtConfig(writer, base);
  writer.U64(config_.seed);
  for (const Member& member : members_) {
    member.tree->SaveBody(writer);
    writer.Bool(member.background != nullptr);
    if (member.background != nullptr) member.background->SaveBody(writer);
    member.warning.Save(writer);
    member.drift.Save(writer);
    writer.Size(member.promotions);
    writer.Size(member.background_starts);
    writer.Size(member.background_promotions);
    writer.Size(member.warnings);
    writer.Size(member.drifts);
    writer.Engine(member.rng.engine());
  }
  // Flush baselines, so counters attached after Load keep emitting pure
  // continuation deltas.
  writer.Size(telemetry_.last_background_starts);
  writer.Size(telemetry_.last_promotions);
  writer.Size(telemetry_.last_warnings);
  writer.Size(telemetry_.last_drifts);
  writer.Engine(rng_.engine());
}

std::unique_ptr<AdaptiveRandomForest> AdaptiveRandomForest::LoadBody(
    serial::Reader& reader) {
  AdaptiveRandomForestConfig config;
  config.num_features = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "ARF feature count"));
  config.num_classes = static_cast<int>(serial::CheckedRange(
      reader.I32(), 2, serial::kMaxClasses, "ARF class count"));
  config.num_learners = static_cast<int>(
      serial::CheckedRange(reader.I32(), 1, 4096, "ARF member count"));
  // poisson_distribution with a non-positive mean is undefined behavior.
  config.poisson_lambda =
      serial::CheckedFinite(reader.F64(), "ARF Poisson lambda");
  serial::Check(config.poisson_lambda > 0.0,
                "ARF Poisson lambda is not positive");
  // Both deltas flow into ADWIN constructors, which DMT_CHECK the range.
  config.warning_delta =
      serial::CheckedFinite(reader.F64(), "ARF warning delta");
  serial::Check(config.warning_delta > 0.0 && config.warning_delta < 1.0,
                "ARF warning delta out of range");
  config.drift_delta = serial::CheckedFinite(reader.F64(), "ARF drift delta");
  serial::Check(config.drift_delta > 0.0 && config.drift_delta < 1.0,
                "ARF drift delta out of range");
  config.subspace_size = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "ARF subspace size"));
  config.base = trees::LoadVfdtConfig(reader);
  config.seed = reader.U64();
  auto forest = std::make_unique<AdaptiveRandomForest>(config);
  for (Member& member : forest->members_) {
    member.tree = serial::LoadMemberVfdt(reader, config.num_features,
                                         config.num_classes);
    member.background =
        reader.Bool() ? serial::LoadMemberVfdt(reader, config.num_features,
                                               config.num_classes)
                      : nullptr;
    member.warning = drift::Adwin::Load(reader);
    member.drift = drift::Adwin::Load(reader);
    member.promotions = reader.Size(kMaxCounter);
    member.background_starts = reader.Size(kMaxCounter);
    member.background_promotions = reader.Size(kMaxCounter);
    member.warnings = reader.Size(kMaxCounter);
    member.drifts = reader.Size(kMaxCounter);
    // Safe mid-record: nothing after this point draws from the member RNG.
    reader.Engine(&member.rng.engine());
  }
  forest->telemetry_.last_background_starts = reader.Size(kMaxCounter);
  forest->telemetry_.last_promotions = reader.Size(kMaxCounter);
  forest->telemetry_.last_warnings = reader.Size(kMaxCounter);
  forest->telemetry_.last_drifts = reader.Size(kMaxCounter);
  reader.Engine(&forest->rng_.engine());
  return forest;
}

void AdaptiveRandomForest::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagArf);
  SaveBody(writer);
}

std::unique_ptr<AdaptiveRandomForest> AdaptiveRandomForest::Load(
    std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagArf);
  return LoadBody(reader);
}

std::size_t AdaptiveRandomForest::num_promotions() const {
  std::size_t total = 0;
  for (const Member& member : members_) total += member.promotions;
  return total;
}

std::size_t AdaptiveRandomForest::num_background_trees() const {
  std::size_t total = 0;
  for (const Member& member : members_) total += member.background != nullptr;
  return total;
}

}  // namespace dmt::ensemble
