// Leveraging Bagging (Bifet, Holmes & Pfahringer, 2010).
//
// Online bagging with amplified resampling weights (Poisson(6) instead of
// Poisson(1)) and one ADWIN change detector per ensemble member; when any
// detector fires, the member with the highest windowed error is reset. The
// paper runs it with 3 basic Hoeffding trees configured like the
// stand-alone VFDT (Sec. VI-C).
#ifndef DMT_ENSEMBLE_LEVERAGING_BAGGING_H_
#define DMT_ENSEMBLE_LEVERAGING_BAGGING_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "dmt/common/classifier.h"
#include "dmt/common/random.h"
#include "dmt/common/thread_pool.h"
#include "dmt/drift/adwin.h"
#include "dmt/trees/vfdt.h"

namespace dmt::serial {
class Writer;
class Reader;
}  // namespace dmt::serial

namespace dmt::ensemble {

struct LeveragingBaggingConfig {
  int num_features = 0;
  int num_classes = 2;
  int num_learners = 3;  // as in the paper's experiments
  double poisson_lambda = 6.0;
  double adwin_delta = 0.002;
  // >1 trains members on an internally owned thread pool, one task per
  // member and batch. Off by default. Each member owns its RNG, so member
  // state is deterministic at any thread count; the worst-member reset
  // (which couples members) moves from per-instance to per-batch
  // granularity in parallel mode.
  int num_threads = 1;
  // Optional borrowed pool shared with the caller; overrides `num_threads`
  // (same contract as AdaptiveRandomForestConfig::pool). Note that any
  // parallel mode changes the reset granularity as described above.
  ThreadPool* pool = nullptr;
  trees::VfdtConfig base;  // num_features/num_classes are filled in
  std::uint64_t seed = 42;
};

class LeveragingBagging : public Classifier {
 public:
  explicit LeveragingBagging(const LeveragingBaggingConfig& config);

  void PartialFit(const Batch& batch) override;
  int num_classes() const override { return config_.num_classes; }
  void PredictProbaInto(std::span<const double> x,
                        std::span<double> out) const override;
  void PredictBatch(const Batch& batch, ProbaMatrix* out) const override;
  // Complexity sums over the members (each member counted like a
  // stand-alone VFDT).
  std::size_t NumSplits() const override;
  std::size_t NumParameters() const override;
  std::string name() const override { return "LevBag"; }

  std::size_t num_resets() const { return num_resets_; }

  // Caches "levbag.*" counters. Detector updates run on worker threads
  // under --member-parallel, so per-member tallies are kept instead of
  // writing counters from workers; the coordinating thread adds the deltas
  // once per PartialFit (FlushTelemetry).
  void AttachTelemetry(obs::TelemetryRegistry* registry) override;

  // --- Persistence (binary archive; see serial/archive.h) ---
  // Full state: config, member trees, per-member ADWIN detectors and
  // detection tallies, member RNGs and the ensemble RNG (engines last).
  // num_threads / pool are runtime knobs and are not persisted.
  void Save(std::ostream& out) const override;
  static std::unique_ptr<LeveragingBagging> Load(std::istream& in);
  void SaveBody(serial::Writer& writer) const;
  static std::unique_ptr<LeveragingBagging> LoadBody(serial::Reader& reader);

 private:
  std::unique_ptr<trees::Vfdt> MakeMember(Rng* rng);
  void TrainInstance(std::span<const double> x, int y);
  // Trains member `m` on the whole batch; returns true if its detector
  // fired at least once (parallel path only).
  bool TrainMemberBatch(std::size_t m, const Batch& batch);
  void ResetWorstMember();
  ThreadPool* WorkerPool() const;
  void FlushTelemetry();

  LeveragingBaggingConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<trees::Vfdt>> members_;
  std::vector<drift::Adwin> detectors_;
  std::vector<Rng> member_rngs_;  // forked per member at construction
  std::size_t num_resets_ = 0;
  // Cumulative ADWIN detections per member (the detectors themselves are
  // replaced on reset, so their num_detections cannot serve as counters).
  std::vector<std::size_t> member_detections_;
  mutable std::unique_ptr<ThreadPool> pool_;  // lazy, when num_threads > 1
  // Member-probability row reused by PredictProbaInto (not concurrency-safe
  // on a shared instance; PredictBatch tasks use their own rows).
  mutable std::vector<double> member_scratch_;
  // Telemetry destinations and last-flushed total, inert until
  // AttachTelemetry.
  struct Telemetry {
    std::uint64_t* member_resets = nullptr;
    std::uint64_t* adwin_detections = nullptr;
    std::size_t last_detections = 0;
  };
  Telemetry telemetry_;
};

}  // namespace dmt::ensemble

#endif  // DMT_ENSEMBLE_LEVERAGING_BAGGING_H_
