// Online Boosting (Oza & Russell, 2001): the streaming analogue of AdaBoost.
// Each base learner k sees the instance with a Poisson(lambda_k) weight,
// where lambda_k is scaled up if the previous learners misclassified the
// instance and down otherwise; prediction combines the learners with
// log(1/beta) weights derived from their running error rates.
#ifndef DMT_ENSEMBLE_ONLINE_BOOSTING_H_
#define DMT_ENSEMBLE_ONLINE_BOOSTING_H_

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "dmt/common/classifier.h"
#include "dmt/common/random.h"
#include "dmt/trees/vfdt.h"

namespace dmt::serial {
class Writer;
class Reader;
}  // namespace dmt::serial

namespace dmt::ensemble {

struct OnlineBoostingConfig {
  int num_features = 0;
  int num_classes = 2;
  int num_learners = 3;
  trees::VfdtConfig base;
  std::uint64_t seed = 42;
};

class OnlineBoosting : public Classifier {
 public:
  explicit OnlineBoosting(const OnlineBoostingConfig& config);

  void PartialFit(const Batch& batch) override;
  int num_classes() const override { return config_.num_classes; }
  void PredictProbaInto(std::span<const double> x,
                        std::span<double> out) const override;
  std::size_t NumSplits() const override;
  std::size_t NumParameters() const override;
  std::string name() const override { return "OzaBoost"; }

  // --- Persistence (binary archive; see serial/archive.h) ---
  // Full state: config, member trees with their lambda-mass tallies, and
  // the shared RNG (engine last).
  void Save(std::ostream& out) const override;
  static std::unique_ptr<OnlineBoosting> Load(std::istream& in);
  void SaveBody(serial::Writer& writer) const;
  static std::unique_ptr<OnlineBoosting> LoadBody(serial::Reader& reader);

 private:
  struct Member {
    std::unique_ptr<trees::Vfdt> tree;
    double correct_weight = 0.0;  // lambda mass classified correctly
    double wrong_weight = 0.0;    // lambda mass misclassified
  };

  OnlineBoostingConfig config_;
  Rng rng_;
  std::vector<Member> members_;
};

}  // namespace dmt::ensemble

#endif  // DMT_ENSEMBLE_ONLINE_BOOSTING_H_
