#include "dmt/ensemble/online_boosting.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"
#include "dmt/common/sanitize.h"
#include "dmt/serial/model_io.h"

namespace dmt::ensemble {

OnlineBoosting::OnlineBoosting(const OnlineBoostingConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_classes >= 2);
  DMT_CHECK(config.num_learners >= 1);
  for (int i = 0; i < config_.num_learners; ++i) {
    trees::VfdtConfig base = config_.base;
    base.num_features = config_.num_features;
    base.num_classes = config_.num_classes;
    base.seed = rng_.Fork().engine()();
    members_.push_back({std::make_unique<trees::Vfdt>(base), 0.0, 0.0});
  }
}

void OnlineBoosting::PartialFit(const Batch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::span<const double> x = batch.row(i);
    const int y = batch.label(i);
    // Skip unusable rows before any Poisson draw or weight update.
    if (!RowIsFinite(x) || y < 0 || y >= config_.num_classes) continue;
    double lambda = 1.0;
    for (Member& member : members_) {
      const int weight = rng_.Poisson(lambda);
      for (int w = 0; w < weight; ++w) member.tree->TrainInstance(x, y);
      if (member.tree->Predict(x) == y) {
        member.correct_weight += lambda;
        // Scale down: this part of the stream is already handled.
        const double total = member.correct_weight + member.wrong_weight;
        lambda *= total / (2.0 * member.correct_weight);
      } else {
        member.wrong_weight += lambda;
        const double total = member.correct_weight + member.wrong_weight;
        lambda *= total / (2.0 * member.wrong_weight);
      }
      lambda = std::min(lambda, 100.0);  // keep Poisson sane
    }
  }
}

void OnlineBoosting::PredictProbaInto(std::span<const double> x,
                                      std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  double vote_sum = 0.0;
  for (const Member& member : members_) {
    const double total = member.correct_weight + member.wrong_weight;
    if (total <= 0.0) continue;
    const double error =
        std::clamp(member.wrong_weight / total, 1e-6, 0.5 - 1e-6);
    const double beta = error / (1.0 - error);
    const double weight = std::log(1.0 / beta);
    out[member.tree->Predict(x)] += weight;
    vote_sum += weight;
  }
  if (vote_sum <= 0.0) {
    std::fill(out.begin(), out.end(), 1.0 / config_.num_classes);
    return;
  }
  for (double& v : out) v /= vote_sum;
}

void OnlineBoosting::SaveBody(serial::Writer& writer) const {
  writer.I32(config_.num_features);
  writer.I32(config_.num_classes);
  writer.I32(config_.num_learners);
  trees::VfdtConfig base = config_.base;
  base.num_features = config_.num_features;
  base.num_classes = config_.num_classes;
  trees::SaveVfdtConfig(writer, base);
  writer.U64(config_.seed);
  for (const Member& member : members_) {
    member.tree->SaveBody(writer);
    writer.F64(member.correct_weight);
    writer.F64(member.wrong_weight);
  }
  writer.Engine(rng_.engine());
}

std::unique_ptr<OnlineBoosting> OnlineBoosting::LoadBody(
    serial::Reader& reader) {
  OnlineBoostingConfig config;
  config.num_features = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "OzaBoost feature count"));
  config.num_classes = static_cast<int>(serial::CheckedRange(
      reader.I32(), 2, serial::kMaxClasses, "OzaBoost class count"));
  config.num_learners = static_cast<int>(
      serial::CheckedRange(reader.I32(), 1, 4096, "OzaBoost member count"));
  config.base = trees::LoadVfdtConfig(reader);
  config.seed = reader.U64();
  auto boosting = std::make_unique<OnlineBoosting>(config);
  for (Member& member : boosting->members_) {
    member.tree = serial::LoadMemberVfdt(reader, config.num_features,
                                         config.num_classes);
    // Non-negative lambda masses keep the Poisson rescaling well-defined.
    member.correct_weight =
        serial::CheckedFinite(reader.F64(), "OzaBoost correct weight");
    serial::Check(member.correct_weight >= 0.0,
                  "OzaBoost correct weight is negative");
    member.wrong_weight =
        serial::CheckedFinite(reader.F64(), "OzaBoost wrong weight");
    serial::Check(member.wrong_weight >= 0.0,
                  "OzaBoost wrong weight is negative");
  }
  reader.Engine(&boosting->rng_.engine());
  return boosting;
}

void OnlineBoosting::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagOzaBoost);
  SaveBody(writer);
}

std::unique_ptr<OnlineBoosting> OnlineBoosting::Load(std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagOzaBoost);
  return LoadBody(reader);
}

std::size_t OnlineBoosting::NumSplits() const {
  std::size_t total = 0;
  for (const Member& member : members_) total += member.tree->NumSplits();
  return total;
}

std::size_t OnlineBoosting::NumParameters() const {
  std::size_t total = 0;
  for (const Member& member : members_) total += member.tree->NumParameters();
  return total;
}

}  // namespace dmt::ensemble
