#include "dmt/ensemble/online_bagging.h"

#include <algorithm>

#include "dmt/common/check.h"
#include "dmt/common/sanitize.h"

namespace dmt::ensemble {

OnlineBagging::OnlineBagging(const OnlineBaggingConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_classes >= 2);
  DMT_CHECK(config.num_learners >= 1);
  for (int i = 0; i < config_.num_learners; ++i) {
    trees::VfdtConfig base = config_.base;
    base.num_features = config_.num_features;
    base.num_classes = config_.num_classes;
    base.seed = rng_.Fork().engine()();
    members_.push_back(std::make_unique<trees::Vfdt>(base));
  }
}

void OnlineBagging::PartialFit(const Batch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    // Skip unusable rows before the Poisson draws (DESIGN.md Sec. 8).
    if (!RowIsFinite(batch.row(i)) || batch.label(i) < 0 ||
        batch.label(i) >= config_.num_classes) {
      continue;
    }
    for (auto& member : members_) {
      const int weight = rng_.Poisson(config_.poisson_lambda);
      for (int w = 0; w < weight; ++w) {
        member->TrainInstance(batch.row(i), batch.label(i));
      }
    }
  }
}

void OnlineBagging::PredictProbaInto(std::span<const double> x,
                                     std::span<double> out) const {
  const std::size_t c = static_cast<std::size_t>(config_.num_classes);
  if (member_scratch_.size() != c) member_scratch_.resize(c);
  std::fill(out.begin(), out.end(), 0.0);
  for (const auto& member : members_) {
    member->PredictProbaInto(x, member_scratch_);
    for (std::size_t k = 0; k < c; ++k) out[k] += member_scratch_[k];
  }
  for (double& v : out) v /= static_cast<double>(members_.size());
}

std::size_t OnlineBagging::NumSplits() const {
  std::size_t total = 0;
  for (const auto& member : members_) total += member->NumSplits();
  return total;
}

std::size_t OnlineBagging::NumParameters() const {
  std::size_t total = 0;
  for (const auto& member : members_) total += member->NumParameters();
  return total;
}

}  // namespace dmt::ensemble
