#include "dmt/ensemble/online_bagging.h"

#include <algorithm>

#include "dmt/common/check.h"

namespace dmt::ensemble {

OnlineBagging::OnlineBagging(const OnlineBaggingConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_classes >= 2);
  DMT_CHECK(config.num_learners >= 1);
  for (int i = 0; i < config_.num_learners; ++i) {
    trees::VfdtConfig base = config_.base;
    base.num_features = config_.num_features;
    base.num_classes = config_.num_classes;
    base.seed = rng_.Fork().engine()();
    members_.push_back(std::make_unique<trees::Vfdt>(base));
  }
}

void OnlineBagging::PartialFit(const Batch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (auto& member : members_) {
      const int weight = rng_.Poisson(config_.poisson_lambda);
      for (int w = 0; w < weight; ++w) {
        member->TrainInstance(batch.row(i), batch.label(i));
      }
    }
  }
}

std::vector<double> OnlineBagging::PredictProba(
    std::span<const double> x) const {
  std::vector<double> sum(config_.num_classes, 0.0);
  for (const auto& member : members_) {
    const std::vector<double> proba = member->PredictProba(x);
    for (int c = 0; c < config_.num_classes; ++c) sum[c] += proba[c];
  }
  for (double& v : sum) v /= static_cast<double>(members_.size());
  return sum;
}

int OnlineBagging::Predict(std::span<const double> x) const {
  const std::vector<double> proba = PredictProba(x);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::size_t OnlineBagging::NumSplits() const {
  std::size_t total = 0;
  for (const auto& member : members_) total += member->NumSplits();
  return total;
}

std::size_t OnlineBagging::NumParameters() const {
  std::size_t total = 0;
  for (const auto& member : members_) total += member->NumParameters();
  return total;
}

}  // namespace dmt::ensemble
