#include "dmt/ensemble/online_bagging.h"

#include <algorithm>

#include "dmt/common/check.h"
#include "dmt/common/sanitize.h"
#include "dmt/serial/model_io.h"

namespace dmt::ensemble {

OnlineBagging::OnlineBagging(const OnlineBaggingConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_classes >= 2);
  DMT_CHECK(config.num_learners >= 1);
  for (int i = 0; i < config_.num_learners; ++i) {
    trees::VfdtConfig base = config_.base;
    base.num_features = config_.num_features;
    base.num_classes = config_.num_classes;
    base.seed = rng_.Fork().engine()();
    members_.push_back(std::make_unique<trees::Vfdt>(base));
  }
}

void OnlineBagging::PartialFit(const Batch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    // Skip unusable rows before the Poisson draws (DESIGN.md Sec. 8).
    if (!RowIsFinite(batch.row(i)) || batch.label(i) < 0 ||
        batch.label(i) >= config_.num_classes) {
      continue;
    }
    for (auto& member : members_) {
      const int weight = rng_.Poisson(config_.poisson_lambda);
      for (int w = 0; w < weight; ++w) {
        member->TrainInstance(batch.row(i), batch.label(i));
      }
    }
  }
}

void OnlineBagging::PredictProbaInto(std::span<const double> x,
                                     std::span<double> out) const {
  const std::size_t c = static_cast<std::size_t>(config_.num_classes);
  if (member_scratch_.size() != c) member_scratch_.resize(c);
  std::fill(out.begin(), out.end(), 0.0);
  for (const auto& member : members_) {
    member->PredictProbaInto(x, member_scratch_);
    for (std::size_t k = 0; k < c; ++k) out[k] += member_scratch_[k];
  }
  for (double& v : out) v /= static_cast<double>(members_.size());
}

void OnlineBagging::SaveBody(serial::Writer& writer) const {
  writer.I32(config_.num_features);
  writer.I32(config_.num_classes);
  writer.I32(config_.num_learners);
  writer.F64(config_.poisson_lambda);
  trees::VfdtConfig base = config_.base;
  base.num_features = config_.num_features;
  base.num_classes = config_.num_classes;
  trees::SaveVfdtConfig(writer, base);
  writer.U64(config_.seed);
  for (const auto& member : members_) member->SaveBody(writer);
  writer.Engine(rng_.engine());
}

std::unique_ptr<OnlineBagging> OnlineBagging::LoadBody(
    serial::Reader& reader) {
  OnlineBaggingConfig config;
  config.num_features = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "OzaBag feature count"));
  config.num_classes = static_cast<int>(serial::CheckedRange(
      reader.I32(), 2, serial::kMaxClasses, "OzaBag class count"));
  config.num_learners = static_cast<int>(
      serial::CheckedRange(reader.I32(), 1, 4096, "OzaBag member count"));
  // poisson_distribution with a non-positive mean is undefined behavior.
  config.poisson_lambda =
      serial::CheckedFinite(reader.F64(), "OzaBag Poisson lambda");
  serial::Check(config.poisson_lambda > 0.0,
                "OzaBag Poisson lambda is not positive");
  config.base = trees::LoadVfdtConfig(reader);
  config.seed = reader.U64();
  auto bagging = std::make_unique<OnlineBagging>(config);
  for (auto& member : bagging->members_) {
    member = serial::LoadMemberVfdt(reader, config.num_features,
                                    config.num_classes);
  }
  reader.Engine(&bagging->rng_.engine());
  return bagging;
}

void OnlineBagging::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagOzaBag);
  SaveBody(writer);
}

std::unique_ptr<OnlineBagging> OnlineBagging::Load(std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagOzaBag);
  return LoadBody(reader);
}

std::size_t OnlineBagging::NumSplits() const {
  std::size_t total = 0;
  for (const auto& member : members_) total += member->NumSplits();
  return total;
}

std::size_t OnlineBagging::NumParameters() const {
  std::size_t total = 0;
  for (const auto& member : members_) total += member->NumParameters();
  return total;
}

}  // namespace dmt::ensemble
