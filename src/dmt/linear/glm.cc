#include "dmt/linear/glm.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"
#include "dmt/common/kernels.h"
#include "dmt/common/math.h"
#include "dmt/serial/model_io.h"

namespace dmt::linear {

namespace {

std::size_t ParamCount(int num_features, int num_classes) {
  return num_classes == 2
             ? static_cast<std::size_t>(num_features + 1)
             : static_cast<std::size_t>(num_classes) * (num_features + 1);
}

}  // namespace

Glm::Glm(const GlmConfig& config)
    : config_(config),
      num_features_(config.num_features),
      num_classes_(config.num_classes) {
  DMT_CHECK(num_features_ >= 1);
  DMT_CHECK(num_classes_ >= 2);
  DMT_CHECK(config.l1_penalty >= 0.0);
  Rng rng(config.seed);
  params_.resize(ParamCount(num_features_, num_classes_));
  for (double& p : params_) p = rng.Gaussian(0.0, config.init_scale);
  logits_scratch_.resize(num_classes_);
  tile_logits_.resize(4 * static_cast<std::size_t>(num_classes_));
}

Glm::Glm(const GlmConfig& config, Rng* rng)
    : config_(config),
      num_features_(config.num_features),
      num_classes_(config.num_classes) {
  DMT_CHECK(num_features_ >= 1);
  DMT_CHECK(num_classes_ >= 2);
  DMT_CHECK(config.l1_penalty >= 0.0);
  DMT_CHECK(rng != nullptr);
  params_.resize(ParamCount(num_features_, num_classes_));
  for (double& p : params_) p = rng->Gaussian(0.0, config.init_scale);
  logits_scratch_.resize(num_classes_);
  tile_logits_.resize(4 * static_cast<std::size_t>(num_classes_));
}

void Glm::Fit(const Batch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SgdStep(batch.row(i), batch.label(i));
  }
  if (config_.l1_penalty > 0.0 && !batch.empty()) ApplyL1Prox();
  if (!batch.empty()) CheckParamsFinite();
}

void Glm::FitRows(const Batch& batch, std::span<const std::size_t> rows) {
  for (std::size_t i : rows) {
    SgdStep(batch.row(i), batch.label(i));
  }
  if (config_.l1_penalty > 0.0 && !rows.empty()) ApplyL1Prox();
  if (!rows.empty()) CheckParamsFinite();
}

void Glm::FitTile(const double* tile, const int* labels, std::size_t n) {
  const std::size_t m = static_cast<std::size_t>(num_features_);
  for (std::size_t i = 0; i < n; ++i) {
    SgdStep({tile + i * m, m}, labels[i]);
  }
  if (config_.l1_penalty > 0.0 && n > 0) ApplyL1Prox();
  if (n > 0) CheckParamsFinite();
}

void Glm::LossAndGradientTile(const double* tile, const int* labels,
                              std::size_t n, double* loss_out,
                              double* grad_out) const {
  const std::size_t m = static_cast<std::size_t>(num_features_);
  const std::size_t k = params_.size();
  const int stride = num_features_ + 1;
  std::size_t i = 0;
  if (is_binary()) {
    const double bias = params_.back();
    for (; i + 4 <= n; i += 4) {
      double z[4];
      kernels::DotBatch4(tile + i * m, m, params_.data(), m, z);
      for (std::size_t t = 0; t < 4; ++t) {
        const std::size_t r = i + t;
        const double p = Sigmoid(z[t] + bias);
        const int y = labels[r];
        const double err = p - (y == 1 ? 1.0 : 0.0);
        double* g = grad_out + r * k;
        kernels::ScaledCopy(err, tile + r * m, g, m);
        g[m] = err;
        loss_out[r] = -(y == 1 ? SafeLog(p) : SafeLog(1.0 - p));
      }
    }
    for (; i < n; ++i) {
      loss_out[i] = LossAndGradientOne({tile + i * m, m}, labels[i],
                                       {grad_out + i * k, k});
    }
    return;
  }
  const int num_classes = num_classes_;
  for (; i + 4 <= n; i += 4) {
    for (int c = 0; c < num_classes; ++c) {
      const double* w = params_.data() + c * stride;
      double z[4];
      kernels::DotBatch4(tile + i * m, m, w, m, z);
      for (std::size_t t = 0; t < 4; ++t) {
        tile_logits_[t * num_classes + c] = z[t] + w[num_features_];
      }
    }
    for (std::size_t t = 0; t < 4; ++t) {
      const std::size_t r = i + t;
      const std::span<double> logits(tile_logits_.data() + t * num_classes,
                                     static_cast<std::size_t>(num_classes));
      SoftmaxInPlace(logits);
      const int y = labels[r];
      for (int c = 0; c < num_classes; ++c) {
        const double err = logits[c] - (c == y ? 1.0 : 0.0);
        double* g = grad_out + r * k + c * stride;
        kernels::ScaledCopy(err, tile + r * m, g, m);
        g[num_features_] = err;
      }
      loss_out[r] = -SafeLog(logits[y]);
    }
  }
  for (; i < n; ++i) {
    loss_out[i] = LossAndGradientOne({tile + i * m, m}, labels[i],
                                     {grad_out + i * k, k});
  }
}

void Glm::CheckParamsFinite() {
  for (const double p : params_) {
    if (std::isfinite(p)) continue;
    // Diverged: reset to the deterministic zero state (uniform
    // predictions) rather than re-randomizing, and clear optimizer state
    // accumulated under the bad parameters.
    std::fill(params_.begin(), params_.end(), 0.0);
    std::fill(velocity_.begin(), velocity_.end(), 0.0);
    std::fill(grad_accum_.begin(), grad_accum_.end(), 0.0);
    ++num_resets_;
    if (resets_counter_ != nullptr) ++*resets_counter_;
    return;
  }
}

double Glm::ClipScale(double err_sq_sum, double xsq) const {
  const double cap = config_.max_gradient_norm;
  if (cap <= 0.0) return 1.0;
  // Sample gradient = err_c * [x, 1] per class, so
  // ||g||^2 = (sum_c err_c^2) * (||x||^2 + 1).
  const double norm_sq = err_sq_sum * (xsq + 1.0);
  if (!(norm_sq > cap * cap)) return 1.0;  // also covers NaN norms
  return cap / std::sqrt(norm_sq);
}

void Glm::ApplyL1Prox() {
  const double shrink = CurrentLearningRate() * config_.l1_penalty;
  const int stride = num_features_ + 1;
  const int blocks = is_binary() ? 1 : num_classes_;
  for (int c = 0; c < blocks; ++c) {
    for (int j = 0; j < num_features_; ++j) {
      double& w = params_[c * stride + j];
      if (w > shrink) {
        w -= shrink;
      } else if (w < -shrink) {
        w += shrink;
      } else {
        w = 0.0;
      }
    }
  }
}

double Glm::CurrentLearningRate() const {
  if (config_.schedule == LearningRateSchedule::kInverseSqrt) {
    return config_.learning_rate /
           std::sqrt(1.0 + static_cast<double>(steps_) / 1000.0);
  }
  return config_.learning_rate;
}

double Glm::Sparsity() const {
  const int stride = num_features_ + 1;
  std::size_t zeros = 0;
  std::size_t weights = 0;
  const int blocks = is_binary() ? 1 : num_classes_;
  for (int c = 0; c < blocks; ++c) {
    for (int j = 0; j < num_features_; ++j) {
      ++weights;
      zeros += params_[c * stride + j] == 0.0;
    }
  }
  return weights == 0 ? 0.0 : static_cast<double>(zeros) / weights;
}

void Glm::ApplyUpdate(std::size_t p, double g, double lr) {
  switch (config_.optimizer) {
    case Optimizer::kSgd:
      params_[p] -= lr * g;
      return;
    case Optimizer::kMomentum:
      if (velocity_.empty()) velocity_.assign(params_.size(), 0.0);
      velocity_[p] = config_.momentum_beta * velocity_[p] + g;
      params_[p] -= lr * velocity_[p];
      return;
    case Optimizer::kAdagrad:
      if (grad_accum_.empty()) grad_accum_.assign(params_.size(), 0.0);
      grad_accum_[p] += g * g;
      params_[p] -= lr * g / std::sqrt(grad_accum_[p] + 1e-8);
      return;
  }
}

void Glm::SgdStep(std::span<const double> x, int y) {
  DMT_DCHECK(static_cast<int>(x.size()) == num_features_);
  const double lr = CurrentLearningRate();
  const int stride = num_features_ + 1;
  // Plain SGD (the default everywhere) takes the fused SgdAxpy kernel;
  // momentum/Adagrad keep per-coordinate ApplyUpdate for their state.
  const bool plain_sgd = config_.optimizer == Optimizer::kSgd;
  const std::size_t m = static_cast<std::size_t>(num_features_);
  // Clipping needs ||x||^2; a non-finite value here (NaN/Inf feature)
  // surfaces in the logits too and the sample is skipped below.
  const double xsq =
      config_.max_gradient_norm > 0.0 ? kernels::SquaredNorm(x.data(), m) : 0.0;
  if (is_binary()) {
    const double z = Dot(x, {params_.data(), x.size()}) + params_.back();
    if (!std::isfinite(z)) {
      // A NaN/Inf feature (or diverged weights) always propagates into z;
      // folding it into the parameters would poison the model permanently.
      ++num_skipped_samples_;
      return;
    }
    ++steps_;
    double err = Sigmoid(z) - (y == 1 ? 1.0 : 0.0);
    err *= ClipScale(err * err, xsq);
    if (plain_sgd) {
      kernels::SgdAxpy(lr, err, x.data(), params_.data(), m);
    } else {
      for (int j = 0; j < num_features_; ++j) {
        ApplyUpdate(j, err * x[j], lr);
      }
    }
    ApplyUpdate(params_.size() - 1, err, lr);
    return;
  }
  for (int c = 0; c < num_classes_; ++c) {
    const double* w = params_.data() + c * stride;
    logits_scratch_[c] = Dot(x, {w, x.size()}) + w[num_features_];
    if (!std::isfinite(logits_scratch_[c])) {
      ++num_skipped_samples_;
      return;
    }
  }
  ++steps_;
  SoftmaxInPlace(logits_scratch_);
  double err_sq_sum = 0.0;
  for (int c = 0; c < num_classes_; ++c) {
    const double err = logits_scratch_[c] - (c == y ? 1.0 : 0.0);
    err_sq_sum += err * err;
  }
  const double clip = ClipScale(err_sq_sum, xsq);
  for (int c = 0; c < num_classes_; ++c) {
    const double err = clip * (logits_scratch_[c] - (c == y ? 1.0 : 0.0));
    if (plain_sgd) {
      kernels::SgdAxpy(lr, err, x.data(), params_.data() + c * stride, m);
    } else {
      for (int j = 0; j < num_features_; ++j) {
        ApplyUpdate(c * stride + j, err * x[j], lr);
      }
    }
    ApplyUpdate(c * stride + num_features_, err, lr);
  }
}

void Glm::PredictProbaInto(std::span<const double> x,
                           std::span<double> out) const {
  DMT_DCHECK(static_cast<int>(x.size()) == num_features_);
  DMT_DCHECK(static_cast<int>(out.size()) == num_classes_);
  if (is_binary()) {
    const double z = Dot(x, {params_.data(), x.size()}) + params_.back();
    if (!std::isfinite(z)) {
      // Non-finite input (or diverged weights): an honest "don't know".
      out[0] = out[1] = 0.5;
      return;
    }
    out[1] = Sigmoid(z);
    out[0] = 1.0 - out[1];
    return;
  }
  const int stride = num_features_ + 1;
  for (int c = 0; c < num_classes_; ++c) {
    const double* w = params_.data() + c * stride;
    out[c] = Dot(x, {w, x.size()}) + w[num_features_];
    if (!std::isfinite(out[c])) {
      const double uniform = 1.0 / static_cast<double>(num_classes_);
      for (int k = 0; k < num_classes_; ++k) out[k] = uniform;
      return;
    }
  }
  SoftmaxInPlace(out);
}

std::vector<double> Glm::PredictProba(std::span<const double> x) const {
  std::vector<double> proba(num_classes_);
  PredictProbaInto(x, proba);
  return proba;
}

int Glm::Predict(std::span<const double> x) const {
  PredictProbaInto(x, logits_scratch_);
  return ArgMax(logits_scratch_);
}

double Glm::LossOne(std::span<const double> x, int y) const {
  DMT_DCHECK(y >= 0 && y < num_classes_);
  PredictProbaInto(x, logits_scratch_);
  return -SafeLog(logits_scratch_[y]);
}

double Glm::Loss(const Batch& batch) const {
  double loss = 0.0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    loss += LossOne(batch.row(i), batch.label(i));
  }
  return loss;
}

double Glm::LossAndGradient(const Batch& batch, const std::vector<char>* mask,
                            std::span<double> grad_out) const {
  DMT_DCHECK(grad_out.size() == params_.size());
  double loss = 0.0;
  const int stride = num_features_ + 1;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (mask != nullptr && !(*mask)[i]) continue;
    const std::span<const double> x = batch.row(i);
    const int y = batch.label(i);
    if (is_binary()) {
      const double z = Dot(x, {params_.data(), x.size()}) + params_.back();
      const double p = Sigmoid(z);
      loss += -(y == 1 ? SafeLog(p) : SafeLog(1.0 - p));
      const double err = p - (y == 1 ? 1.0 : 0.0);
      kernels::Axpy(err, x.data(), grad_out.data(),
                    static_cast<std::size_t>(num_features_));
      grad_out[num_features_] += err;
    } else {
      for (int c = 0; c < num_classes_; ++c) {
        const double* w = params_.data() + c * stride;
        logits_scratch_[c] = Dot(x, {w, x.size()}) + w[num_features_];
      }
      SoftmaxInPlace(logits_scratch_);
      loss += -SafeLog(logits_scratch_[y]);
      for (int c = 0; c < num_classes_; ++c) {
        const double err = logits_scratch_[c] - (c == y ? 1.0 : 0.0);
        double* g = grad_out.data() + c * stride;
        kernels::Axpy(err, x.data(), g,
                      static_cast<std::size_t>(num_features_));
        g[num_features_] += err;
      }
    }
  }
  return loss;
}

double Glm::LossAndGradientOne(std::span<const double> x, int y,
                               std::span<double> grad_out) const {
  DMT_DCHECK(grad_out.size() == params_.size());
  const int stride = num_features_ + 1;
  if (is_binary()) {
    const double z = Dot(x, {params_.data(), x.size()}) + params_.back();
    const double p = Sigmoid(z);
    const double err = p - (y == 1 ? 1.0 : 0.0);
    kernels::ScaledCopy(err, x.data(), grad_out.data(),
                        static_cast<std::size_t>(num_features_));
    grad_out[num_features_] = err;
    return -(y == 1 ? SafeLog(p) : SafeLog(1.0 - p));
  }
  for (int c = 0; c < num_classes_; ++c) {
    const double* w = params_.data() + c * stride;
    logits_scratch_[c] = Dot(x, {w, x.size()}) + w[num_features_];
  }
  SoftmaxInPlace(logits_scratch_);
  for (int c = 0; c < num_classes_; ++c) {
    const double err = logits_scratch_[c] - (c == y ? 1.0 : 0.0);
    double* g = grad_out.data() + c * stride;
    kernels::ScaledCopy(err, x.data(), g,
                        static_cast<std::size_t>(num_features_));
    g[num_features_] = err;
  }
  return -SafeLog(logits_scratch_[y]);
}

void Glm::WarmStartFrom(const Glm& parent) {
  DMT_CHECK(parent.params_.size() == params_.size());
  params_ = parent.params_;
}

void SaveGlmConfig(serial::Writer& writer, const GlmConfig& config) {
  writer.I32(config.num_features);
  writer.I32(config.num_classes);
  writer.F64(config.learning_rate);
  writer.U32(static_cast<std::uint32_t>(config.schedule));
  writer.U32(static_cast<std::uint32_t>(config.optimizer));
  writer.F64(config.momentum_beta);
  writer.F64(config.l1_penalty);
  writer.F64(config.init_scale);
  writer.U64(config.seed);
  writer.F64(config.max_gradient_norm);
}

GlmConfig LoadGlmConfig(serial::Reader& reader) {
  GlmConfig config;
  config.num_features = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "GLM num_features"));
  config.num_classes = static_cast<int>(serial::CheckedRange(
      reader.I32(), 2, serial::kMaxClasses, "GLM num_classes"));
  serial::CheckedRange(static_cast<std::int64_t>(config.num_features) *
                           config.num_classes,
                       0, static_cast<std::int64_t>(serial::kMaxVector),
                       "GLM parameter count");
  config.learning_rate =
      serial::CheckedFinite(reader.F64(), "GLM learning_rate");
  config.schedule = static_cast<LearningRateSchedule>(
      serial::CheckedRange(reader.U32(), 0, 1, "GLM schedule"));
  config.optimizer = static_cast<Optimizer>(
      serial::CheckedRange(reader.U32(), 0, 2, "GLM optimizer"));
  config.momentum_beta =
      serial::CheckedFinite(reader.F64(), "GLM momentum_beta");
  config.l1_penalty = serial::CheckedFinite(reader.F64(), "GLM l1_penalty");
  serial::Check(config.l1_penalty >= 0.0, "GLM l1_penalty is negative");
  config.init_scale = serial::CheckedFinite(reader.F64(), "GLM init_scale");
  // normal_distribution requires sigma > 0; the constructor draws with it.
  serial::Check(config.init_scale > 0.0, "GLM init_scale is not positive");
  config.seed = reader.U64();
  config.max_gradient_norm =
      serial::CheckedFinite(reader.F64(), "GLM max_gradient_norm");
  return config;
}

void Glm::SaveState(serial::Writer& writer) const {
  writer.Size(steps_);
  writer.VecF64(params_);
  writer.VecF64(velocity_);
  writer.VecF64(grad_accum_);
  writer.U64(num_resets_);
  writer.U64(num_skipped_samples_);
}

void Glm::LoadState(serial::Reader& reader) {
  steps_ = reader.Size(std::size_t{1} << 62);
  std::vector<double> params = reader.VecF64Exact(params_.size());
  // The lazy optimizer buffers are empty until the first momentum/Adagrad
  // step, so their archived length is either 0 or the parameter count.
  std::vector<double> velocity = reader.VecF64();
  serial::Check(velocity.empty() || velocity.size() == params_.size(),
                "GLM velocity size mismatch");
  std::vector<double> grad_accum = reader.VecF64();
  serial::Check(grad_accum.empty() || grad_accum.size() == params_.size(),
                "GLM gradient accumulator size mismatch");
  params_ = std::move(params);
  velocity_ = std::move(velocity);
  grad_accum_ = std::move(grad_accum);
  num_resets_ = reader.U64();
  num_skipped_samples_ = reader.U64();
}

void Glm::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagGlm);
  SaveGlmConfig(writer, config_);
  SaveState(writer);
}

std::unique_ptr<Glm> Glm::Load(std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagGlm);
  const GlmConfig config = LoadGlmConfig(reader);
  auto model = std::make_unique<Glm>(config);
  model->LoadState(reader);
  return model;
}

std::vector<double> Glm::FeatureWeights(int c) const {
  DMT_CHECK(c >= 0 && c < num_classes_);
  std::vector<double> weights(num_features_);
  if (is_binary()) {
    for (int j = 0; j < num_features_; ++j) {
      weights[j] = (c == 1 ? params_[j] : -params_[j]);
    }
    return weights;
  }
  const int stride = num_features_ + 1;
  for (int j = 0; j < num_features_; ++j) {
    weights[j] = params_[c * stride + j];
  }
  return weights;
}

}  // namespace dmt::linear
