// Incremental linear regression under a Gaussian likelihood -- the "simple
// model" of the regression Dynamic Model Tree (the paper's framework is
// generic in the model/loss choice, Sec. V; FIMT-DD, its main competitor,
// is natively a regression method).
//
// The loss is the Gaussian negative log-likelihood with unit variance,
// L = 0.5 * (y - w.x - b)^2 + const; we drop the constant so the loss is
// exactly half the squared error, keeping the DMT gain machinery (candidate
// gradients, Eqs. 6-7) unchanged.
#ifndef DMT_LINEAR_LINEAR_REGRESSOR_H_
#define DMT_LINEAR_LINEAR_REGRESSOR_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "dmt/common/random.h"
#include "dmt/common/types.h"

namespace dmt::serial {
class Writer;
class Reader;
}  // namespace dmt::serial

namespace dmt::linear {

// A batch of regression observations: features plus real-valued targets.
class RegressionBatch {
 public:
  explicit RegressionBatch(std::size_t num_features)
      : num_features_(num_features) {}

  std::size_t size() const { return targets_.size(); }
  bool empty() const { return targets_.empty(); }
  std::size_t num_features() const { return num_features_; }

  void Add(std::span<const double> x, double y) {
    data_.insert(data_.end(), x.begin(), x.end());
    targets_.push_back(y);
  }
  std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * num_features_, num_features_};
  }
  std::span<double> mutable_row(std::size_t i) {
    return {data_.data() + i * num_features_, num_features_};
  }
  double target(std::size_t i) const { return targets_[i]; }
  const std::vector<double>& targets() const { return targets_; }

  void clear() {
    data_.clear();
    targets_.clear();
  }

  // In-place row compaction support, mirroring Batch (common/types.h):
  // MoveRow slides a surviving row left, Truncate drops the tail.
  void MoveRow(std::size_t from, std::size_t to) {
    if (from == to) return;
    std::copy_n(data_.begin() + from * num_features_, num_features_,
                data_.begin() + to * num_features_);
    targets_[to] = targets_[from];
  }
  void Truncate(std::size_t n) {
    data_.resize(n * num_features_);
    targets_.resize(n);
  }

 private:
  std::size_t num_features_;
  std::vector<double> data_;
  std::vector<double> targets_;
};

struct LinearRegressorConfig {
  int num_features = 0;
  double learning_rate = 0.01;
  double init_scale = 0.1;
  std::uint64_t seed = 42;
  // Hard cap on the per-sample gradient L2 norm (|err| * sqrt(||x||^2+1));
  // larger gradients are rescaled to the cap. 0 disables. Unlike the GLM,
  // regression residuals are unbounded even on clean data, so the default
  // sits far above any plausible honest error and only a divergence spiral
  // (err growing without bound) can reach it.
  double max_gradient_norm = 1e6;
};

class LinearRegressor {
 public:
  explicit LinearRegressor(const LinearRegressorConfig& config);
  LinearRegressor(const LinearRegressorConfig& config, Rng* rng);

  int num_params() const { return static_cast<int>(params_.size()); }
  int num_features() const { return num_features_; }

  void Fit(const RegressionBatch& batch);
  void FitRows(const RegressionBatch& batch,
               std::span<const std::size_t> rows);
  // SGD over a gathered row-major tile, in tile order; bit-identical to
  // FitRows over the gathered rows (see Glm::FitTile).
  void FitTile(const double* tile, const double* targets, std::size_t n);

  // Per-sample loss and gradient at the current (fixed) parameters over a
  // tile, four dot products at a time (kernels::DotBatch4); row i is
  // bit-identical to LossAndGradientOne on that row.
  void LossAndGradientTile(const double* tile, const double* targets,
                           std::size_t n, double* loss_out,
                           double* grad_out) const;

  double Predict(std::span<const double> x) const;

  // Half squared error of one observation / a batch at current parameters.
  double LossOne(std::span<const double> x, double y) const;
  double Loss(const RegressionBatch& batch) const;

  // Loss and gradient of one observation; `grad_out` is overwritten.
  double LossAndGradientOne(std::span<const double> x, double y,
                            std::span<double> grad_out) const;

  void WarmStartFrom(const LinearRegressor& parent);

  // Divergence protection, mirroring Glm: non-finite samples are skipped,
  // non-finite parameters are zero-reset after the offending Fit call.
  std::uint64_t num_resets() const { return num_resets_; }
  std::uint64_t num_skipped_samples() const { return num_skipped_samples_; }
  void set_resets_counter(std::uint64_t* counter) {
    resets_counter_ = counter;
  }

  const std::vector<double>& params() const { return params_; }
  std::vector<double> FeatureWeights() const {
    return {params_.begin(), params_.end() - 1};
  }

  // --- Persistence (binary archive; see serial/archive.h) ---
  // Mutable state only (params + divergence tallies), for models embedded
  // in a tree that re-derives the config. LoadState requires the archived
  // parameter count to match this model's.
  void SaveState(serial::Writer& writer) const;
  void LoadState(serial::Reader& reader);
  // Whole-model record. The retained hyperparameters (num_features,
  // learning_rate, max_gradient_norm) round-trip; init_scale/seed only
  // matter at construction and are not part of the mutable state.
  void Save(std::ostream& out) const;
  static std::unique_ptr<LinearRegressor> Load(std::istream& in);

 private:
  void SgdStep(std::span<const double> x, double y);
  void CheckParamsFinite();

  int num_features_;
  double learning_rate_;
  double max_gradient_norm_;
  std::vector<double> params_;  // [w_0..w_{m-1}, b]
  std::uint64_t num_resets_ = 0;
  std::uint64_t num_skipped_samples_ = 0;
  std::uint64_t* resets_counter_ = nullptr;
};

}  // namespace dmt::linear

#endif  // DMT_LINEAR_LINEAR_REGRESSOR_H_
