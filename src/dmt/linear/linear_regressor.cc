#include "dmt/linear/linear_regressor.h"

#include "dmt/common/check.h"
#include "dmt/common/kernels.h"
#include "dmt/common/math.h"

namespace dmt::linear {

LinearRegressor::LinearRegressor(const LinearRegressorConfig& config)
    : num_features_(config.num_features),
      learning_rate_(config.learning_rate) {
  DMT_CHECK(num_features_ >= 1);
  Rng rng(config.seed);
  params_.resize(num_features_ + 1);
  for (double& p : params_) p = rng.Gaussian(0.0, config.init_scale);
}

LinearRegressor::LinearRegressor(const LinearRegressorConfig& config,
                                 Rng* rng)
    : num_features_(config.num_features),
      learning_rate_(config.learning_rate) {
  DMT_CHECK(num_features_ >= 1);
  DMT_CHECK(rng != nullptr);
  params_.resize(num_features_ + 1);
  for (double& p : params_) p = rng->Gaussian(0.0, config.init_scale);
}

void LinearRegressor::SgdStep(std::span<const double> x, double y) {
  const double err = Predict(x) - y;
  // w[j] -= (lr*err) * x[j]; Axpy with the negated pre-multiplied
  // coefficient gives the same rounding (IEEE a -= b == a += -b).
  kernels::Axpy(-(learning_rate_ * err), x.data(), params_.data(),
                static_cast<std::size_t>(num_features_));
  params_.back() -= learning_rate_ * err;
}

void LinearRegressor::Fit(const RegressionBatch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SgdStep(batch.row(i), batch.target(i));
  }
}

void LinearRegressor::FitRows(const RegressionBatch& batch,
                              std::span<const std::size_t> rows) {
  for (std::size_t i : rows) SgdStep(batch.row(i), batch.target(i));
}

double LinearRegressor::Predict(std::span<const double> x) const {
  DMT_DCHECK(static_cast<int>(x.size()) == num_features_);
  return Dot(x, {params_.data(), x.size()}) + params_.back();
}

double LinearRegressor::LossOne(std::span<const double> x, double y) const {
  const double err = Predict(x) - y;
  return 0.5 * err * err;
}

double LinearRegressor::Loss(const RegressionBatch& batch) const {
  double loss = 0.0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    loss += LossOne(batch.row(i), batch.target(i));
  }
  return loss;
}

double LinearRegressor::LossAndGradientOne(std::span<const double> x,
                                           double y,
                                           std::span<double> grad_out) const {
  DMT_DCHECK(grad_out.size() == params_.size());
  const double err = Predict(x) - y;
  kernels::ScaledCopy(err, x.data(), grad_out.data(),
                      static_cast<std::size_t>(num_features_));
  grad_out[num_features_] = err;
  return 0.5 * err * err;
}

void LinearRegressor::WarmStartFrom(const LinearRegressor& parent) {
  DMT_CHECK(parent.params_.size() == params_.size());
  params_ = parent.params_;
}

}  // namespace dmt::linear
