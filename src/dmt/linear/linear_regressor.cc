#include "dmt/linear/linear_regressor.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"
#include "dmt/common/kernels.h"
#include "dmt/common/math.h"
#include "dmt/serial/model_io.h"

namespace dmt::linear {

LinearRegressor::LinearRegressor(const LinearRegressorConfig& config)
    : num_features_(config.num_features),
      learning_rate_(config.learning_rate),
      max_gradient_norm_(config.max_gradient_norm) {
  DMT_CHECK(num_features_ >= 1);
  Rng rng(config.seed);
  params_.resize(num_features_ + 1);
  for (double& p : params_) p = rng.Gaussian(0.0, config.init_scale);
}

LinearRegressor::LinearRegressor(const LinearRegressorConfig& config,
                                 Rng* rng)
    : num_features_(config.num_features),
      learning_rate_(config.learning_rate),
      max_gradient_norm_(config.max_gradient_norm) {
  DMT_CHECK(num_features_ >= 1);
  DMT_CHECK(rng != nullptr);
  params_.resize(num_features_ + 1);
  for (double& p : params_) p = rng->Gaussian(0.0, config.init_scale);
}

void LinearRegressor::SgdStep(std::span<const double> x, double y) {
  double err = Predict(x) - y;
  if (!std::isfinite(err)) {
    // A NaN/Inf feature or target (or diverged weights) always surfaces in
    // the residual; folding it into the parameters would poison the model.
    ++num_skipped_samples_;
    return;
  }
  if (max_gradient_norm_ > 0.0) {
    // Sample gradient = err * [x, 1], so ||g||^2 = err^2 * (||x||^2 + 1).
    const double xsq = kernels::SquaredNorm(
        x.data(), static_cast<std::size_t>(num_features_));
    const double norm_sq = err * err * (xsq + 1.0);
    if (norm_sq > max_gradient_norm_ * max_gradient_norm_) {
      err *= max_gradient_norm_ / std::sqrt(norm_sq);
    }
  }
  // w[j] -= (lr*err) * x[j]; Axpy with the negated pre-multiplied
  // coefficient gives the same rounding (IEEE a -= b == a += -b).
  kernels::Axpy(-(learning_rate_ * err), x.data(), params_.data(),
                static_cast<std::size_t>(num_features_));
  params_.back() -= learning_rate_ * err;
}

void LinearRegressor::Fit(const RegressionBatch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SgdStep(batch.row(i), batch.target(i));
  }
  if (!batch.empty()) CheckParamsFinite();
}

void LinearRegressor::FitRows(const RegressionBatch& batch,
                              std::span<const std::size_t> rows) {
  for (std::size_t i : rows) SgdStep(batch.row(i), batch.target(i));
  if (!rows.empty()) CheckParamsFinite();
}

void LinearRegressor::FitTile(const double* tile, const double* targets,
                              std::size_t n) {
  const std::size_t m = static_cast<std::size_t>(num_features_);
  for (std::size_t i = 0; i < n; ++i) {
    SgdStep({tile + i * m, m}, targets[i]);
  }
  if (n > 0) CheckParamsFinite();
}

void LinearRegressor::LossAndGradientTile(const double* tile,
                                          const double* targets,
                                          std::size_t n, double* loss_out,
                                          double* grad_out) const {
  const std::size_t m = static_cast<std::size_t>(num_features_);
  const std::size_t k = params_.size();
  const double bias = params_.back();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    double z[4];
    kernels::DotBatch4(tile + i * m, m, params_.data(), m, z);
    for (std::size_t t = 0; t < 4; ++t) {
      const std::size_t r = i + t;
      const double err = (z[t] + bias) - targets[r];
      double* g = grad_out + r * k;
      kernels::ScaledCopy(err, tile + r * m, g, m);
      g[m] = err;
      loss_out[r] = 0.5 * err * err;
    }
  }
  for (; i < n; ++i) {
    loss_out[i] = LossAndGradientOne({tile + i * m, m}, targets[i],
                                     {grad_out + i * k, k});
  }
}

void LinearRegressor::CheckParamsFinite() {
  for (const double p : params_) {
    if (std::isfinite(p)) continue;
    std::fill(params_.begin(), params_.end(), 0.0);
    ++num_resets_;
    if (resets_counter_ != nullptr) ++*resets_counter_;
    return;
  }
}

double LinearRegressor::Predict(std::span<const double> x) const {
  DMT_DCHECK(static_cast<int>(x.size()) == num_features_);
  return Dot(x, {params_.data(), x.size()}) + params_.back();
}

double LinearRegressor::LossOne(std::span<const double> x, double y) const {
  const double err = Predict(x) - y;
  return 0.5 * err * err;
}

double LinearRegressor::Loss(const RegressionBatch& batch) const {
  double loss = 0.0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    loss += LossOne(batch.row(i), batch.target(i));
  }
  return loss;
}

double LinearRegressor::LossAndGradientOne(std::span<const double> x,
                                           double y,
                                           std::span<double> grad_out) const {
  DMT_DCHECK(grad_out.size() == params_.size());
  const double err = Predict(x) - y;
  kernels::ScaledCopy(err, x.data(), grad_out.data(),
                      static_cast<std::size_t>(num_features_));
  grad_out[num_features_] = err;
  return 0.5 * err * err;
}

void LinearRegressor::WarmStartFrom(const LinearRegressor& parent) {
  DMT_CHECK(parent.params_.size() == params_.size());
  params_ = parent.params_;
}

void LinearRegressor::SaveState(serial::Writer& writer) const {
  writer.VecF64(params_);
  writer.U64(num_resets_);
  writer.U64(num_skipped_samples_);
}

void LinearRegressor::LoadState(serial::Reader& reader) {
  params_ = reader.VecF64Exact(params_.size());
  num_resets_ = reader.U64();
  num_skipped_samples_ = reader.U64();
}

void LinearRegressor::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagLinearRegressor);
  writer.I32(num_features_);
  writer.F64(learning_rate_);
  writer.F64(max_gradient_norm_);
  SaveState(writer);
}

std::unique_ptr<LinearRegressor> LinearRegressor::Load(std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagLinearRegressor);
  LinearRegressorConfig config;
  config.num_features = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "regressor num_features"));
  config.learning_rate =
      serial::CheckedFinite(reader.F64(), "regressor learning_rate");
  config.max_gradient_norm =
      serial::CheckedFinite(reader.F64(), "regressor max_gradient_norm");
  auto model = std::make_unique<LinearRegressor>(config);
  model->LoadState(reader);
  return model;
}

}  // namespace dmt::linear
