#include "dmt/linear/glm_classifier.h"

#include <istream>
#include <ostream>

#include "dmt/serial/model_io.h"

namespace dmt::linear {

void GlmClassifier::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagGlmClassifier);
  SaveGlmConfig(writer, model_.config());
  model_.SaveState(writer);
}

std::unique_ptr<GlmClassifier> GlmClassifier::Load(std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagGlmClassifier);
  return LoadBody(reader);
}

std::unique_ptr<GlmClassifier> GlmClassifier::LoadBody(
    serial::Reader& reader) {
  const GlmConfig config = LoadGlmConfig(reader);
  auto model = std::make_unique<GlmClassifier>(config);
  model->model_.LoadState(reader);
  return model;
}

}  // namespace dmt::linear
