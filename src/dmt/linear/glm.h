// Generalized linear "simple models" used at every node of a Dynamic Model
// Tree (paper Sec. V-A): a binary logit model for two classes and a
// multinomial logit (softmax) model otherwise, trained by constant-rate SGD
// and scored with the negative log-likelihood loss (Sec. V-B).
//
// Besides fitting and prediction, the model exposes loss and gradient
// evaluation at the *current* parameters over (subsets of) a batch. These
// are the statistics Algorithm 1 accumulates per node and per split
// candidate, and they feed the gradient-based candidate loss approximation
// of Eqs. (6)-(7).
#ifndef DMT_LINEAR_GLM_H_
#define DMT_LINEAR_GLM_H_

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "dmt/common/random.h"
#include "dmt/common/types.h"

namespace dmt::serial {
class Writer;
class Reader;
}  // namespace dmt::serial

namespace dmt::linear {

// Learning-rate schedule for the SGD updates. The paper trains with a
// constant rate (Sec. V-A) and names dynamic rates as future work; the
// inverse-sqrt schedule implements that hook.
enum class LearningRateSchedule {
  kConstant,
  kInverseSqrt,  // lr_t = lr / sqrt(1 + t / 1000), t = observations seen
};

// Update rule for the SGD steps (the paper trains plain SGD, Sec. V-A, and
// names alternative optimization strategies as future work).
enum class Optimizer {
  kSgd,
  kMomentum,  // velocity = beta * velocity + grad; w -= lr * velocity
  kAdagrad,   // w -= lr * grad / sqrt(accum + eps), per-coordinate
};

struct GlmConfig {
  int num_features = 0;
  int num_classes = 2;
  // Base SGD learning rate; the paper proposes 0.05 for the DMT models.
  double learning_rate = 0.05;
  LearningRateSchedule schedule = LearningRateSchedule::kConstant;
  Optimizer optimizer = Optimizer::kSgd;
  double momentum_beta = 0.9;
  // L1 penalty applied by soft-thresholding the weights once per Fit call
  // (truncated-gradient style); > 0 sparsifies the models (the paper's
  // "online feature selection" future-work hook, Sec. V-A). Biases are
  // never thresholded.
  double l1_penalty = 0.0;
  // Standard deviation of the random weight initialization.
  double init_scale = 0.1;
  std::uint64_t seed = 42;
  // Hard cap on the per-sample gradient L2 norm; larger gradients are
  // rescaled to the cap before the update. 0 disables clipping. The cap is
  // unreachable on clean [0,1]-normalized data (|residual| < 1, so the norm
  // is <= sqrt(C * (m + 1)) ~ 14 for Table I dimensions) -- it exists to
  // bound the step size on unscaled or adversarial inputs, so the pinned
  // benchmark numbers are unaffected.
  double max_gradient_norm = 1e3;
};

class Glm {
 public:
  explicit Glm(const GlmConfig& config);
  explicit Glm(const GlmConfig& config, Rng* rng);

  // Number of free parameters k: m+1 for the binary logit, c*(m+1) for the
  // softmax model. This is the k of the AIC threshold (Eq. 11).
  int num_params() const { return static_cast<int>(params_.size()); }
  int num_features() const { return num_features_; }
  int num_classes() const { return num_classes_; }
  const GlmConfig& config() const { return config_; }
  double learning_rate() const { return config_.learning_rate; }
  // Effective learning rate at the current step (schedule applied).
  double CurrentLearningRate() const;
  // Fraction of (non-bias) weights that are exactly zero.
  double Sparsity() const;

  // One SGD epoch over the batch (per-sample updates in stream order).
  void Fit(const Batch& batch);
  // SGD over the rows of `batch` selected by `rows`.
  void FitRows(const Batch& batch, std::span<const std::size_t> rows);
  // SGD over a gathered row-major tile (`n` rows of num_features() doubles,
  // labels parallel), in tile order. SGD is inherently sequential (each
  // sample sees the previous sample's weights), so the tile buys locality,
  // not batching: bit-identical to FitRows over the gathered rows.
  void FitTile(const double* tile, const int* labels, std::size_t n);

  // Per-sample loss and gradient at the CURRENT (fixed) parameters over a
  // gathered tile: loss_out[i] and grad_out[i * num_params() ...] are
  // overwritten. Unlike the SGD pass the parameters do not move between
  // rows, so the dot products are batched four rows at a time
  // (kernels::DotBatch4) -- one pass over the weight vector serves four
  // samples. Row i's results are bit-identical to LossAndGradientOne on
  // that row (DotBatch4's per-lane accumulation order matches Dot).
  void LossAndGradientTile(const double* tile, const int* labels,
                           std::size_t n, double* loss_out,
                           double* grad_out) const;

  // Writes the class probabilities for one observation into `out`
  // (num_classes() entries, overwritten). The allocation-free scoring
  // primitive; PredictProba / Predict / LossOne route through it.
  void PredictProbaInto(std::span<const double> x,
                        std::span<double> out) const;
  // Class probabilities for one observation (size num_classes). Allocates
  // the result; hot paths should use PredictProbaInto.
  std::vector<double> PredictProba(std::span<const double> x) const;
  int Predict(std::span<const double> x) const;

  // Negative log-likelihood of the batch at the current parameters.
  double Loss(const Batch& batch) const;
  // NLL of one observation at the current parameters.
  double LossOne(std::span<const double> x, int y) const;

  // Accumulates loss and gradient (w.r.t. the current parameters) of every
  // row of `batch`; `grad_out` must have num_params() entries and is added
  // to, not overwritten. Returns the summed loss. A null `mask` selects all
  // rows; otherwise row i contributes iff mask[i] is true. This single pass
  // produces the node statistic and (with masks) each candidate's left-child
  // statistic of Algorithm 1, lines 1-2 and 8-9.
  double LossAndGradient(const Batch& batch, const std::vector<char>* mask,
                         std::span<double> grad_out) const;

  // Loss and gradient of a single observation at the current parameters;
  // `grad_out` (num_params() entries) is overwritten. Used by the DMT to
  // build per-sample statistics that are then aggregated per candidate.
  double LossAndGradientOne(std::span<const double> x, int y,
                            std::span<double> grad_out) const;

  // Warm start: copies the parameters of `parent` (child nodes of a DMT are
  // initialized from the optimized parent model, Sec. IV-E).
  void WarmStartFrom(const Glm& parent);

  // Flat parameter vector. Binary: [w_0..w_{m-1}, b]. Multinomial:
  // class-major [W_0(.), b_0, W_1(.), b_1, ...].
  const std::vector<double>& params() const { return params_; }
  std::vector<double>& mutable_params() { return params_; }

  // SGD step counter (drives the learning-rate schedule). The setter exists
  // for model persistence only.
  std::size_t steps() const { return steps_; }
  void set_steps(std::size_t steps) { steps_ = steps; }

  // Divergence protection (DESIGN.md Sec. 8). Samples whose logits come out
  // non-finite -- a NaN/Inf feature or already-diverged parameters -- are
  // skipped rather than folded into the weights; if the parameters
  // themselves ever turn non-finite, the next Fit/FitRows call detects it,
  // resets them to zero (a deterministic, uniform-predicting state) and
  // bumps the reset counter.
  std::uint64_t num_resets() const { return num_resets_; }
  std::uint64_t num_skipped_samples() const { return num_skipped_samples_; }
  // Optional telemetry destination (e.g. registry->Counter("glm.resets"));
  // incremented on every divergence reset. Null disables.
  void set_resets_counter(std::uint64_t* counter) {
    resets_counter_ = counter;
  }

  // Per-feature weights for class `c` (interpretability surface: local
  // feature-based explanations, paper Sec. I-C). For the binary model, class
  // 1 weights are the parameters and class 0 weights their negation.
  std::vector<double> FeatureWeights(int c) const;

  // --- Persistence (binary archive; see serial/archive.h) ---
  // Mutable optimizer state only (params, steps, lazy optimizer buffers,
  // divergence tallies) -- used when the owning tree supplies the config.
  // LoadState requires the archived vector sizes to match this model's.
  void SaveState(serial::Writer& writer) const;
  void LoadState(serial::Reader& reader);
  // Whole-model record: header + config + state.
  void Save(std::ostream& out) const;
  static std::unique_ptr<Glm> Load(std::istream& in);

 private:
  bool is_binary() const { return num_classes_ == 2; }
  void SgdStep(std::span<const double> x, int y);
  void ApplyL1Prox();
  // Post-Fit divergence scan: zero-resets non-finite parameters.
  void CheckParamsFinite();
  // Rescales `err` terms so the sample gradient norm respects the cap.
  // err_sq_sum = sum of squared residuals, xsq = ||x||^2; returns the
  // multiplier to apply to every residual (1.0 when no clipping applies).
  double ClipScale(double err_sq_sum, double xsq) const;

  // Applies one optimizer step for parameter p with raw gradient g.
  void ApplyUpdate(std::size_t p, double g, double lr);

  GlmConfig config_;
  int num_features_;
  int num_classes_;
  std::size_t steps_ = 0;  // observations consumed by SGD
  std::vector<double> params_;
  // Optimizer state (allocated lazily for non-SGD optimizers).
  std::vector<double> velocity_;
  std::vector<double> grad_accum_;
  // Scratch buffer reused across per-sample probability computations.
  mutable std::vector<double> logits_scratch_;
  // Scratch logits of one 4-row tile group (4 x num_classes, row-major).
  mutable std::vector<double> tile_logits_;
  std::uint64_t num_resets_ = 0;
  std::uint64_t num_skipped_samples_ = 0;
  std::uint64_t* resets_counter_ = nullptr;
};

// Archive helpers for the config record (shared by the standalone Glm
// record, the GLM classifier wrapper, and any future embedding learner).
// LoadGlmConfig validates every field the Glm constructor asserts on, so a
// hostile archive raises SerialError instead of tripping DMT_CHECK.
void SaveGlmConfig(serial::Writer& writer, const GlmConfig& config);
GlmConfig LoadGlmConfig(serial::Reader& reader);

}  // namespace dmt::linear

#endif  // DMT_LINEAR_GLM_H_
