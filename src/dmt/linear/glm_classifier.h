// A plain online GLM exposed through the Classifier interface. This is the
// degenerate one-node Dynamic Model Tree (a single leaf) and serves as a
// sanity baseline in examples and tests.
#ifndef DMT_LINEAR_GLM_CLASSIFIER_H_
#define DMT_LINEAR_GLM_CLASSIFIER_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "dmt/common/classifier.h"
#include "dmt/linear/glm.h"
#include "dmt/obs/telemetry.h"

namespace dmt::serial {
class Reader;
}  // namespace dmt::serial

namespace dmt::linear {

class GlmClassifier : public Classifier {
 public:
  explicit GlmClassifier(const GlmConfig& config) : model_(config) {}

  void PartialFit(const Batch& batch) override { model_.Fit(batch); }
  void AttachTelemetry(obs::TelemetryRegistry* registry) override {
    if (registry == nullptr) return;
    model_.set_resets_counter(registry->Counter("glm.resets"));
  }
  int num_classes() const override { return model_.num_classes(); }
  void PredictProbaInto(std::span<const double> x,
                        std::span<double> out) const override {
    model_.PredictProbaInto(x, out);
  }
  // A single model leaf: 1 split (binary) or c splits (multiclass), m
  // parameters per class, per the paper's counting rules.
  std::size_t NumSplits() const override {
    return model_.num_classes() == 2 ? 1 : model_.num_classes();
  }
  std::size_t NumParameters() const override {
    return model_.num_classes() == 2
               ? model_.num_features()
               : static_cast<std::size_t>(model_.num_classes()) *
                     model_.num_features();
  }
  std::string name() const override { return "GLM"; }

  const Glm& model() const { return model_; }

  // --- Persistence (binary archive; see serial/model_io.h) ---
  void Save(std::ostream& out) const override;
  static std::unique_ptr<GlmClassifier> Load(std::istream& in);
  // Body only; the shared header was already consumed by the dispatcher.
  static std::unique_ptr<GlmClassifier> LoadBody(serial::Reader& reader);

 private:
  Glm model_;
};

}  // namespace dmt::linear

#endif  // DMT_LINEAR_GLM_CLASSIFIER_H_
