#include "dmt/trees/hoeffding_adaptive.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"
#include "dmt/common/sanitize.h"
#include "dmt/drift/adwin.h"
#include "dmt/obs/telemetry.h"
#include "dmt/serial/model_io.h"
#include "dmt/trees/split_criteria.h"

namespace dmt::trees {

struct HoeffdingAdaptiveTree::Node {
  int split_feature = -1;  // < 0 marks a leaf
  double split_value = 0.0;
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  // Leaf statistics.
  std::vector<double> class_counts;
  std::vector<NumericObserver> observers;
  double weight_seen = 0.0;
  double weight_at_last_attempt = 0.0;

  // Error monitor of the subtree rooted here, and the alternate subtree
  // grown after a detected change.
  drift::Adwin error_monitor;
  std::unique_ptr<Node> alternate;

  Node(int num_features, int num_classes, double adwin_delta)
      : class_counts(num_classes, 0.0),
        observers(num_features, NumericObserver(num_classes)),
        error_monitor(adwin_delta) {}

  bool is_leaf() const { return split_feature < 0; }

  int MajorityClass() const {
    return static_cast<int>(
        std::max_element(class_counts.begin(), class_counts.end()) -
        class_counts.begin());
  }

  void Save(serial::Writer& writer) const;
  static std::unique_ptr<Node> Load(serial::Reader& reader,
                                    const HatConfig& config,
                                    std::size_t depth);
};

void HoeffdingAdaptiveTree::Node::Save(serial::Writer& writer) const {
  writer.I32(split_feature);
  writer.F64(split_value);
  writer.VecF64(class_counts);
  writer.Size(observers.size());
  for (const NumericObserver& obs : observers) obs.Save(writer);
  writer.F64(weight_seen);
  writer.F64(weight_at_last_attempt);
  error_monitor.Save(writer);
  writer.Bool(alternate != nullptr);
  if (alternate != nullptr) alternate->Save(writer);
  if (!is_leaf()) {
    left->Save(writer);
    right->Save(writer);
  }
}

std::unique_ptr<HoeffdingAdaptiveTree::Node> HoeffdingAdaptiveTree::Node::Load(
    serial::Reader& reader, const HatConfig& config, std::size_t depth) {
  serial::Check(depth <= serial::kMaxTreeDepth,
                "HT-Ada node depth exceeds the archive limit");
  auto node = std::make_unique<Node>(config.num_features, config.num_classes,
                                     config.adwin_delta);
  const std::int32_t split_feature = reader.I32();
  serial::Check(split_feature >= -1 && split_feature < config.num_features,
                "HT-Ada split feature out of range");
  node->split_feature = static_cast<int>(split_feature);
  node->split_value = reader.F64();
  node->class_counts =
      reader.VecF64Exact(static_cast<std::size_t>(config.num_classes));
  const std::size_t features = static_cast<std::size_t>(config.num_features);
  // Split nodes clear their observers; the leaf training path indexes
  // observers[j] for every feature (see Vfdt::Node::Load).
  const std::size_t num_observers = reader.Size(features);
  serial::Check(num_observers == 0 || num_observers == features,
                "HT-Ada observer count is neither empty nor one per feature");
  node->observers.clear();
  for (std::size_t j = 0; j < num_observers; ++j) {
    node->observers.push_back(
        NumericObserver::Load(reader, config.num_classes));
  }
  node->weight_seen = reader.F64();
  node->weight_at_last_attempt = reader.F64();
  node->error_monitor = drift::Adwin::Load(reader);
  if (reader.Bool()) {
    node->alternate = Load(reader, config, depth + 1);
  }
  if (!node->is_leaf()) {
    node->left = Load(reader, config, depth + 1);
    node->right = Load(reader, config, depth + 1);
  } else {
    serial::Check(num_observers == features,
                  "HT-Ada leaf is missing its attribute observers");
  }
  return node;
}

HoeffdingAdaptiveTree::HoeffdingAdaptiveTree(const HatConfig& config)
    : config_(config) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_classes >= 2);
  root_ = std::make_unique<Node>(config.num_features, config.num_classes,
                                 config.adwin_delta);
}

HoeffdingAdaptiveTree::~HoeffdingAdaptiveTree() = default;

void HoeffdingAdaptiveTree::BindNodeTelemetry(Node* node) {
  node->error_monitor.BindTelemetry(adwin_shrinks_counter_,
                                    adwin_drops_counter_, adwin_width_gauge_);
}

void HoeffdingAdaptiveTree::AttachTelemetry(obs::TelemetryRegistry* registry) {
  if (registry == nullptr) return;
  split_attempts_counter_ = registry->Counter("hat.split_attempts");
  splits_counter_ = registry->Counter("hat.splits");
  alternates_started_counter_ = registry->Counter("hat.alternates_started");
  alternates_promoted_counter_ =
      registry->Counter("hat.alternates_promoted");
  alternates_dropped_counter_ = registry->Counter("hat.alternates_dropped");
  adwin_shrinks_counter_ = registry->Counter("adwin.shrinks");
  adwin_drops_counter_ = registry->Counter("adwin.buckets_dropped");
  adwin_width_gauge_ = registry->Gauge("adwin.width");
  // Bind every existing error monitor, alternates included. The bindings
  // are plain pointer values, so they survive the alternate-adoption move
  // in TrainAt.
  auto walk = [&](auto&& self, Node* node) -> void {
    BindNodeTelemetry(node);
    if (node->alternate != nullptr) self(self, node->alternate.get());
    if (node->is_leaf()) return;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
}

int HoeffdingAdaptiveTree::SubtreePredict(const Node* node,
                                          std::span<const double> x) const {
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  return node->MajorityClass();
}

void HoeffdingAdaptiveTree::TrainAt(Node* node, std::span<const double> x,
                                    int y) {
  // Monitor the error of the subtree rooted at this node.
  const bool error = SubtreePredict(node, x) != y;
  const bool drift = node->error_monitor.Update(error ? 1.0 : 0.0);

  if (drift && node->alternate == nullptr && !node->is_leaf()) {
    node->alternate = std::make_unique<Node>(
        config_.num_features, config_.num_classes, config_.adwin_delta);
    BindNodeTelemetry(node->alternate.get());
    DMT_TELEMETRY_COUNT(alternates_started_counter_);
  }

  if (node->alternate != nullptr) {
    TrainAt(node->alternate.get(), x, y);
    // Swap test: once both branches carry enough evidence, adopt the
    // alternate if it is significantly more accurate, or drop it if the
    // original branch is.
    const double w_old = static_cast<double>(node->error_monitor.width());
    const double w_alt =
        static_cast<double>(node->alternate->error_monitor.width());
    if (w_old >= static_cast<double>(config_.min_swap_width) &&
        w_alt >= static_cast<double>(config_.min_swap_width)) {
      const double err_old = node->error_monitor.mean();
      const double err_alt = node->alternate->error_monitor.mean();
      const double bound = std::sqrt(
          2.0 * err_old * (1.0 - err_old) *
          std::log(2.0 / config_.swap_confidence) *
          (1.0 / w_old + 1.0 / w_alt));
      if (err_old - err_alt > bound) {
        DMT_TELEMETRY_COUNT(alternates_promoted_counter_);
        std::unique_ptr<Node> alternate = std::move(node->alternate);
        *node = std::move(*alternate);
        // The adopted branch already consumed this instance via the
        // recursive call above.
        return;
      } else if (err_alt - err_old > bound) {
        DMT_TELEMETRY_COUNT(alternates_dropped_counter_);
        node->alternate.reset();
      }
    }
  }

  if (node->is_leaf()) {
    node->class_counts[y] += 1.0;
    node->weight_seen += 1.0;
    for (int j = 0; j < config_.num_features; ++j) {
      node->observers[j].Add(x[j], y);
    }
    if (node->weight_seen - node->weight_at_last_attempt >=
        static_cast<double>(config_.grace_period)) {
      node->weight_at_last_attempt = node->weight_seen;
      AttemptSplit(node);
    }
    return;
  }
  Node* child = x[node->split_feature] <= node->split_value
                    ? node->left.get()
                    : node->right.get();
  TrainAt(child, x, y);
}

void HoeffdingAdaptiveTree::TrainInstance(std::span<const double> x, int y) {
  // Non-finite rows would poison the per-node observers and ADWIN
  // monitors; skip them (DESIGN.md Sec. 8).
  if (!RowIsFinite(x) || y < 0 || y >= config_.num_classes) return;
  TrainAt(root_.get(), x, y);
}

void HoeffdingAdaptiveTree::PartialFit(const Batch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    TrainInstance(batch.row(i), batch.label(i));
  }
}

void HoeffdingAdaptiveTree::AttemptSplit(Node* leaf) {
  DMT_TELEMETRY_COUNT(split_attempts_counter_);
  double nonzero = 0.0;
  for (double c : leaf->class_counts) nonzero += c > 0.0 ? 1.0 : 0.0;
  if (nonzero < 2.0) return;

  SplitSuggestion best;
  SplitSuggestion second;
  for (int j = 0; j < config_.num_features; ++j) {
    SplitSuggestion s = leaf->observers[j].BestSplit(
        j, leaf->class_counts, config_.num_split_candidates);
    if (s.merit > best.merit) {
      second = std::move(best);
      best = std::move(s);
    } else if (s.merit > second.merit) {
      second = std::move(s);
    }
  }
  if (best.feature < 0 || best.merit <= 0.0) return;

  const double range = std::log2(static_cast<double>(config_.num_classes));
  const double epsilon =
      HoeffdingBound(range, config_.split_confidence, leaf->weight_seen);
  if (best.merit - std::max(0.0, second.merit) > epsilon ||
      epsilon < config_.tie_threshold) {
    DMT_TELEMETRY_COUNT(splits_counter_);
    leaf->split_feature = best.feature;
    leaf->split_value = best.threshold;
    leaf->left = std::make_unique<Node>(
        config_.num_features, config_.num_classes, config_.adwin_delta);
    leaf->right = std::make_unique<Node>(
        config_.num_features, config_.num_classes, config_.adwin_delta);
    BindNodeTelemetry(leaf->left.get());
    BindNodeTelemetry(leaf->right.get());
    leaf->observers.clear();
  }
}

void HoeffdingAdaptiveTree::PredictProbaInto(std::span<const double> x,
                                             std::span<double> out) const {
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  if (node->weight_seen <= 0.0) {
    std::fill(out.begin(), out.end(), 1.0 / config_.num_classes);
    return;
  }
  for (int c = 0; c < config_.num_classes; ++c) {
    out[c] = node->class_counts[c] / node->weight_seen;
  }
}

namespace {

struct HatShape {
  std::size_t inner = 0;
  std::size_t leaves = 0;
  std::size_t alternates = 0;
};

}  // namespace

std::size_t HoeffdingAdaptiveTree::NumInnerNodes() const {
  HatShape shape;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->alternate != nullptr) ++shape.alternates;
    if (node->is_leaf()) {
      ++shape.leaves;
      return;
    }
    ++shape.inner;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return shape.inner;
}

std::size_t HoeffdingAdaptiveTree::NumLeaves() const {
  HatShape shape;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) {
      ++shape.leaves;
      return;
    }
    ++shape.inner;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return shape.leaves;
}

std::size_t HoeffdingAdaptiveTree::NumAlternateTrees() const {
  std::size_t alternates = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->alternate != nullptr) ++alternates;
    if (node->is_leaf()) return;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return alternates;
}

std::size_t HoeffdingAdaptiveTree::NumSplits() const {
  // Majority-class leaves: only (main-tree) inner nodes count.
  return NumInnerNodes();
}

std::size_t HoeffdingAdaptiveTree::NumParameters() const {
  return NumInnerNodes() + NumLeaves();
}

void HoeffdingAdaptiveTree::SaveBody(serial::Writer& writer) const {
  writer.I32(config_.num_features);
  writer.I32(config_.num_classes);
  writer.Size(config_.grace_period);
  writer.F64(config_.split_confidence);
  writer.F64(config_.tie_threshold);
  writer.F64(config_.adwin_delta);
  writer.Size(config_.min_swap_width);
  writer.F64(config_.swap_confidence);
  writer.I32(config_.num_split_candidates);
  root_->Save(writer);
}

std::unique_ptr<HoeffdingAdaptiveTree> HoeffdingAdaptiveTree::LoadBody(
    serial::Reader& reader) {
  HatConfig config;
  config.num_features = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "HT-Ada feature count"));
  config.num_classes = static_cast<int>(serial::CheckedRange(
      reader.I32(), 2, serial::kMaxClasses, "HT-Ada class count"));
  serial::Check(static_cast<std::uint64_t>(config.num_features) *
                        static_cast<std::uint64_t>(config.num_classes) <=
                    static_cast<std::uint64_t>(serial::kMaxVector),
                "HT-Ada observer dimensions exceed the archive limit");
  config.grace_period = reader.Size(std::size_t{1} << 62);
  config.split_confidence =
      serial::CheckedFinite(reader.F64(), "HT-Ada split confidence");
  config.tie_threshold =
      serial::CheckedFinite(reader.F64(), "HT-Ada tie threshold");
  config.adwin_delta = reader.F64();
  // Flows into every node's ADWIN constructor, which DMT_CHECKs the range.
  serial::Check(std::isfinite(config.adwin_delta) &&
                    config.adwin_delta > 0.0 && config.adwin_delta < 1.0,
                "HT-Ada ADWIN delta out of range");
  config.min_swap_width = reader.Size(std::size_t{1} << 62);
  config.swap_confidence =
      serial::CheckedFinite(reader.F64(), "HT-Ada swap confidence");
  config.num_split_candidates = static_cast<int>(serial::CheckedRange(
      reader.I32(), 0, 1 << 20, "HT-Ada split candidate count"));
  auto tree = std::make_unique<HoeffdingAdaptiveTree>(config);
  tree->root_ = Node::Load(reader, config, 0);
  return tree;
}

void HoeffdingAdaptiveTree::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagHat);
  SaveBody(writer);
}

std::unique_ptr<HoeffdingAdaptiveTree> HoeffdingAdaptiveTree::Load(
    std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagHat);
  return LoadBody(reader);
}

}  // namespace dmt::trees
