#include "dmt/trees/hoeffding_adaptive.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"
#include "dmt/common/sanitize.h"
#include "dmt/drift/adwin.h"
#include "dmt/obs/telemetry.h"
#include "dmt/trees/split_criteria.h"

namespace dmt::trees {

struct HoeffdingAdaptiveTree::Node {
  int split_feature = -1;  // < 0 marks a leaf
  double split_value = 0.0;
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  // Leaf statistics.
  std::vector<double> class_counts;
  std::vector<NumericObserver> observers;
  double weight_seen = 0.0;
  double weight_at_last_attempt = 0.0;

  // Error monitor of the subtree rooted here, and the alternate subtree
  // grown after a detected change.
  drift::Adwin error_monitor;
  std::unique_ptr<Node> alternate;

  Node(int num_features, int num_classes, double adwin_delta)
      : class_counts(num_classes, 0.0),
        observers(num_features, NumericObserver(num_classes)),
        error_monitor(adwin_delta) {}

  bool is_leaf() const { return split_feature < 0; }

  int MajorityClass() const {
    return static_cast<int>(
        std::max_element(class_counts.begin(), class_counts.end()) -
        class_counts.begin());
  }
};

HoeffdingAdaptiveTree::HoeffdingAdaptiveTree(const HatConfig& config)
    : config_(config) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_classes >= 2);
  root_ = std::make_unique<Node>(config.num_features, config.num_classes,
                                 config.adwin_delta);
}

HoeffdingAdaptiveTree::~HoeffdingAdaptiveTree() = default;

void HoeffdingAdaptiveTree::BindNodeTelemetry(Node* node) {
  node->error_monitor.BindTelemetry(adwin_shrinks_counter_,
                                    adwin_drops_counter_, adwin_width_gauge_);
}

void HoeffdingAdaptiveTree::AttachTelemetry(obs::TelemetryRegistry* registry) {
  if (registry == nullptr) return;
  split_attempts_counter_ = registry->Counter("hat.split_attempts");
  splits_counter_ = registry->Counter("hat.splits");
  alternates_started_counter_ = registry->Counter("hat.alternates_started");
  alternates_promoted_counter_ =
      registry->Counter("hat.alternates_promoted");
  alternates_dropped_counter_ = registry->Counter("hat.alternates_dropped");
  adwin_shrinks_counter_ = registry->Counter("adwin.shrinks");
  adwin_drops_counter_ = registry->Counter("adwin.buckets_dropped");
  adwin_width_gauge_ = registry->Gauge("adwin.width");
  // Bind every existing error monitor, alternates included. The bindings
  // are plain pointer values, so they survive the alternate-adoption move
  // in TrainAt.
  auto walk = [&](auto&& self, Node* node) -> void {
    BindNodeTelemetry(node);
    if (node->alternate != nullptr) self(self, node->alternate.get());
    if (node->is_leaf()) return;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
}

int HoeffdingAdaptiveTree::SubtreePredict(const Node* node,
                                          std::span<const double> x) const {
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  return node->MajorityClass();
}

void HoeffdingAdaptiveTree::TrainAt(Node* node, std::span<const double> x,
                                    int y) {
  // Monitor the error of the subtree rooted at this node.
  const bool error = SubtreePredict(node, x) != y;
  const bool drift = node->error_monitor.Update(error ? 1.0 : 0.0);

  if (drift && node->alternate == nullptr && !node->is_leaf()) {
    node->alternate = std::make_unique<Node>(
        config_.num_features, config_.num_classes, config_.adwin_delta);
    BindNodeTelemetry(node->alternate.get());
    DMT_TELEMETRY_COUNT(alternates_started_counter_);
  }

  if (node->alternate != nullptr) {
    TrainAt(node->alternate.get(), x, y);
    // Swap test: once both branches carry enough evidence, adopt the
    // alternate if it is significantly more accurate, or drop it if the
    // original branch is.
    const double w_old = static_cast<double>(node->error_monitor.width());
    const double w_alt =
        static_cast<double>(node->alternate->error_monitor.width());
    if (w_old >= static_cast<double>(config_.min_swap_width) &&
        w_alt >= static_cast<double>(config_.min_swap_width)) {
      const double err_old = node->error_monitor.mean();
      const double err_alt = node->alternate->error_monitor.mean();
      const double bound = std::sqrt(
          2.0 * err_old * (1.0 - err_old) *
          std::log(2.0 / config_.swap_confidence) *
          (1.0 / w_old + 1.0 / w_alt));
      if (err_old - err_alt > bound) {
        DMT_TELEMETRY_COUNT(alternates_promoted_counter_);
        std::unique_ptr<Node> alternate = std::move(node->alternate);
        *node = std::move(*alternate);
        // The adopted branch already consumed this instance via the
        // recursive call above.
        return;
      } else if (err_alt - err_old > bound) {
        DMT_TELEMETRY_COUNT(alternates_dropped_counter_);
        node->alternate.reset();
      }
    }
  }

  if (node->is_leaf()) {
    node->class_counts[y] += 1.0;
    node->weight_seen += 1.0;
    for (int j = 0; j < config_.num_features; ++j) {
      node->observers[j].Add(x[j], y);
    }
    if (node->weight_seen - node->weight_at_last_attempt >=
        static_cast<double>(config_.grace_period)) {
      node->weight_at_last_attempt = node->weight_seen;
      AttemptSplit(node);
    }
    return;
  }
  Node* child = x[node->split_feature] <= node->split_value
                    ? node->left.get()
                    : node->right.get();
  TrainAt(child, x, y);
}

void HoeffdingAdaptiveTree::TrainInstance(std::span<const double> x, int y) {
  // Non-finite rows would poison the per-node observers and ADWIN
  // monitors; skip them (DESIGN.md Sec. 8).
  if (!RowIsFinite(x) || y < 0 || y >= config_.num_classes) return;
  TrainAt(root_.get(), x, y);
}

void HoeffdingAdaptiveTree::PartialFit(const Batch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    TrainInstance(batch.row(i), batch.label(i));
  }
}

void HoeffdingAdaptiveTree::AttemptSplit(Node* leaf) {
  DMT_TELEMETRY_COUNT(split_attempts_counter_);
  double nonzero = 0.0;
  for (double c : leaf->class_counts) nonzero += c > 0.0 ? 1.0 : 0.0;
  if (nonzero < 2.0) return;

  SplitSuggestion best;
  SplitSuggestion second;
  for (int j = 0; j < config_.num_features; ++j) {
    SplitSuggestion s = leaf->observers[j].BestSplit(
        j, leaf->class_counts, config_.num_split_candidates);
    if (s.merit > best.merit) {
      second = std::move(best);
      best = std::move(s);
    } else if (s.merit > second.merit) {
      second = std::move(s);
    }
  }
  if (best.feature < 0 || best.merit <= 0.0) return;

  const double range = std::log2(static_cast<double>(config_.num_classes));
  const double epsilon =
      HoeffdingBound(range, config_.split_confidence, leaf->weight_seen);
  if (best.merit - std::max(0.0, second.merit) > epsilon ||
      epsilon < config_.tie_threshold) {
    DMT_TELEMETRY_COUNT(splits_counter_);
    leaf->split_feature = best.feature;
    leaf->split_value = best.threshold;
    leaf->left = std::make_unique<Node>(
        config_.num_features, config_.num_classes, config_.adwin_delta);
    leaf->right = std::make_unique<Node>(
        config_.num_features, config_.num_classes, config_.adwin_delta);
    BindNodeTelemetry(leaf->left.get());
    BindNodeTelemetry(leaf->right.get());
    leaf->observers.clear();
  }
}

void HoeffdingAdaptiveTree::PredictProbaInto(std::span<const double> x,
                                             std::span<double> out) const {
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  if (node->weight_seen <= 0.0) {
    std::fill(out.begin(), out.end(), 1.0 / config_.num_classes);
    return;
  }
  for (int c = 0; c < config_.num_classes; ++c) {
    out[c] = node->class_counts[c] / node->weight_seen;
  }
}

namespace {

struct HatShape {
  std::size_t inner = 0;
  std::size_t leaves = 0;
  std::size_t alternates = 0;
};

}  // namespace

std::size_t HoeffdingAdaptiveTree::NumInnerNodes() const {
  HatShape shape;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->alternate != nullptr) ++shape.alternates;
    if (node->is_leaf()) {
      ++shape.leaves;
      return;
    }
    ++shape.inner;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return shape.inner;
}

std::size_t HoeffdingAdaptiveTree::NumLeaves() const {
  HatShape shape;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) {
      ++shape.leaves;
      return;
    }
    ++shape.inner;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return shape.leaves;
}

std::size_t HoeffdingAdaptiveTree::NumAlternateTrees() const {
  std::size_t alternates = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->alternate != nullptr) ++alternates;
    if (node->is_leaf()) return;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return alternates;
}

std::size_t HoeffdingAdaptiveTree::NumSplits() const {
  // Majority-class leaves: only (main-tree) inner nodes count.
  return NumInnerNodes();
}

std::size_t HoeffdingAdaptiveTree::NumParameters() const {
  return NumInnerNodes() + NumLeaves();
}

}  // namespace dmt::trees
