#include "dmt/trees/split_criteria.h"

#include <cmath>

namespace dmt::trees {

double HoeffdingBound(double range, double delta, double n) {
  if (n <= 0.0) return range;
  return std::sqrt(range * range * std::log(1.0 / delta) / (2.0 * n));
}

double Entropy(std::span<const double> class_counts) {
  double total = 0.0;
  for (double c : class_counts) total += c;
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (double c : class_counts) {
    if (c <= 0.0) continue;
    const double p = c / total;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

double InfoGain(std::span<const double> parent, std::span<const double> left,
                std::span<const double> right) {
  double n_parent = 0.0;
  double n_left = 0.0;
  double n_right = 0.0;
  for (double c : parent) n_parent += c;
  for (double c : left) n_left += c;
  for (double c : right) n_right += c;
  if (n_parent <= 0.0) return 0.0;
  return Entropy(parent) - (n_left / n_parent) * Entropy(left) -
         (n_right / n_parent) * Entropy(right);
}

double TargetStats::StdDev() const {
  if (n <= 1.0) return 0.0;
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double StdDevReduction(const TargetStats& parent, const TargetStats& left,
                       const TargetStats& right) {
  if (parent.n <= 0.0) return 0.0;
  return parent.StdDev() - (left.n / parent.n) * left.StdDev() -
         (right.n / parent.n) * right.StdDev();
}

}  // namespace dmt::trees
