#include "dmt/trees/observers.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"
#include "dmt/serial/archive.h"
#include "dmt/trees/split_criteria.h"

namespace dmt::trees {

namespace {

// Standard normal CDF.
double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

NumericObserver::NumericObserver(int num_classes)
    : num_classes_(num_classes),
      per_class_(num_classes),
      class_weights_(num_classes, 0.0) {
  DMT_CHECK(num_classes >= 2);
}

void NumericObserver::Add(double value, int y, double weight) {
  DMT_DCHECK(y >= 0 && y < num_classes_);
  // A non-finite value would poison the Gaussian estimator and the min_/
  // max_ split range permanently (std::min(x, NaN) is NaN); treat it as
  // missing. std::lround(NaN) below is also unspecified behavior.
  if (!std::isfinite(value) || !std::isfinite(weight)) return;
  // The Gaussian estimator is unweighted; integer weights (Poisson sampling
  // in the ensembles) are applied by repetition.
  const int repeats = std::max(1, static_cast<int>(std::lround(weight)));
  for (int r = 0; r < repeats; ++r) per_class_[y].Add(value);
  class_weights_[y] += repeats;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void NumericObserver::CountsBelowInto(double threshold,
                                      std::span<double> out) const {
  for (int c = 0; c < num_classes_; ++c) {
    const bayes::GaussianEstimator& est = per_class_[c];
    if (est.n == 0) {
      out[c] = 0.0;
      continue;
    }
    const double sd = std::sqrt(std::max(est.variance(), 1e-12));
    out[c] = class_weights_[c] * NormalCdf((threshold - est.mean) / sd);
  }
}

std::vector<double> NumericObserver::CountsBelow(double threshold) const {
  std::vector<double> counts(num_classes_, 0.0);
  CountsBelowInto(threshold, counts);
  return counts;
}

SplitCandidate NumericObserver::BestSplitInto(
    int feature, std::span<const double> parent_counts, int num_candidates,
    std::span<double> left_scratch, std::span<double> right_scratch) const {
  SplitCandidate best;
  best.feature = feature;
  if (!has_range()) return best;
  const std::span<double> left = left_scratch.first(num_classes_);
  const std::span<double> right = right_scratch.first(num_classes_);
  for (int i = 1; i <= num_candidates; ++i) {
    const double t =
        min_ + (max_ - min_) * static_cast<double>(i) /
                   static_cast<double>(num_candidates + 1);
    CountsBelowInto(t, left);
    bool valid = true;
    double n_left = 0.0;
    double n_right = 0.0;
    for (int c = 0; c < num_classes_; ++c) {
      right[c] = std::max(0.0, parent_counts[c] - left[c]);
      n_left += left[c];
      n_right += right[c];
    }
    if (n_left < 1.0 || n_right < 1.0) valid = false;
    if (!valid) continue;
    const double merit = InfoGain(parent_counts, left, right);
    if (merit > best.merit) {
      best.threshold = t;
      best.merit = merit;
    }
  }
  return best;
}

SplitSuggestion NumericObserver::BestSplit(
    int feature, const std::vector<double>& parent_counts,
    int num_candidates) const {
  std::vector<double> left_scratch(num_classes_);
  std::vector<double> right_scratch(num_classes_);
  const SplitCandidate core = BestSplitInto(feature, parent_counts,
                                            num_candidates, left_scratch,
                                            right_scratch);
  SplitSuggestion best;
  best.feature = core.feature;
  best.threshold = core.threshold;
  best.is_equality = core.is_equality;
  best.merit = core.merit;
  if (std::isfinite(core.merit)) {
    // Recompute the winning projection; deterministic, so identical to what
    // the scan saw.
    best.left_counts = CountsBelow(core.threshold);
    best.right_counts.resize(num_classes_);
    for (int c = 0; c < num_classes_; ++c) {
      best.right_counts[c] =
          std::max(0.0, parent_counts[c] - best.left_counts[c]);
    }
  }
  return best;
}

void NumericObserver::Save(serial::Writer& writer) const {
  writer.I32(num_classes_);
  for (const bayes::GaussianEstimator& est : per_class_) {
    writer.Size(est.n);
    writer.F64(est.mean);
    writer.F64(est.m2);
  }
  writer.VecF64(class_weights_);
  writer.F64(min_);
  writer.F64(max_);
}

NumericObserver NumericObserver::Load(serial::Reader& reader,
                                      int num_classes) {
  serial::Check(reader.I32() == num_classes,
                "observer class count disagrees with the owning tree");
  NumericObserver observer(num_classes);
  for (bayes::GaussianEstimator& est : observer.per_class_) {
    est.n = reader.Size(std::size_t{1} << 62);
    est.mean = reader.F64();
    est.m2 = reader.F64();
  }
  observer.class_weights_ =
      reader.VecF64Exact(static_cast<std::size_t>(num_classes));
  observer.min_ = reader.F64();
  observer.max_ = reader.F64();
  return observer;
}

NominalObserver::NominalObserver(int num_classes)
    : num_classes_(num_classes) {
  DMT_CHECK(num_classes >= 2);
}

void NominalObserver::Add(double value, int y, double weight) {
  DMT_DCHECK(y >= 0 && y < num_classes_);
  // A NaN key breaks std::map's strict weak ordering (NaN compares false
  // against everything), corrupting the tree; treat non-finite as missing.
  if (!std::isfinite(value) || !std::isfinite(weight)) return;
  // find-then-emplace so the steady state (value already seen) stays off
  // the heap; try_emplace would build its vector argument on every call.
  auto it = value_counts_.find(value);
  if (it == value_counts_.end()) {
    it = value_counts_
             .emplace(value, std::vector<double>(num_classes_, 0.0))
             .first;
  }
  it->second[y] += weight;
}

void NominalObserver::Save(serial::Writer& writer) const {
  writer.I32(num_classes_);
  writer.Size(value_counts_.size());
  for (const auto& [value, counts] : value_counts_) {
    writer.F64(value);
    writer.VecF64(counts);
  }
}

NominalObserver NominalObserver::Load(serial::Reader& reader,
                                      int num_classes) {
  serial::Check(reader.I32() == num_classes,
                "observer class count disagrees with the owning tree");
  NominalObserver observer(num_classes);
  const std::size_t num_values = reader.Size(serial::kMaxVector);
  for (std::size_t i = 0; i < num_values; ++i) {
    // A NaN key breaks std::map ordering (see Add); a hostile archive must
    // not be able to smuggle one in.
    const double value = serial::CheckedFinite(reader.F64(), "nominal value");
    std::vector<double> counts =
        reader.VecF64Exact(static_cast<std::size_t>(num_classes));
    observer.value_counts_.emplace(value, std::move(counts));
  }
  return observer;
}

SplitCandidate NominalObserver::BestSplitInto(
    int feature, std::span<const double> parent_counts,
    std::span<double> right_scratch) const {
  SplitCandidate best;
  best.feature = feature;
  best.is_equality = true;
  const std::span<double> right = right_scratch.first(num_classes_);
  for (const auto& [value, counts] : value_counts_) {
    for (int c = 0; c < num_classes_; ++c) {
      right[c] = std::max(0.0, parent_counts[c] - counts[c]);
    }
    const double merit = InfoGain(parent_counts, counts, right);
    if (merit > best.merit) {
      best.threshold = value;
      best.merit = merit;
    }
  }
  return best;
}

SplitSuggestion NominalObserver::BestSplit(
    int feature, const std::vector<double>& parent_counts) const {
  std::vector<double> right_scratch(num_classes_);
  const SplitCandidate core =
      BestSplitInto(feature, parent_counts, right_scratch);
  SplitSuggestion best;
  best.feature = core.feature;
  best.threshold = core.threshold;
  best.is_equality = core.is_equality;
  best.merit = core.merit;
  if (std::isfinite(core.merit)) {
    best.left_counts = value_counts_.at(core.threshold);
    best.right_counts.resize(num_classes_);
    for (int c = 0; c < num_classes_; ++c) {
      best.right_counts[c] =
          std::max(0.0, parent_counts[c] - best.left_counts[c]);
    }
  }
  return best;
}

}  // namespace dmt::trees
