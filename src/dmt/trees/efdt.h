// EFDT, the Extremely Fast Decision Tree / Hoeffding Anytime Tree
// (Manapragada, Webb & Salehi, 2018).
//
// Unlike VFDT, EFDT splits a leaf as soon as the best candidate beats the
// *null* split with Hoeffding confidence, and keeps statistics at inner
// nodes so that existing splits are re-evaluated periodically: an inner
// split is replaced when a strictly better attribute emerges, or pruned
// back to a leaf when no candidate retains positive merit. The paper sets
// the minimum number of observations between re-evaluations to 1,000
// (Sec. VI-C).
#ifndef DMT_TREES_EFDT_H_
#define DMT_TREES_EFDT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dmt/common/classifier.h"
#include "dmt/trees/observers.h"

namespace dmt::trees {

struct EfdtConfig {
  int num_features = 0;
  int num_classes = 2;
  std::size_t grace_period = 200;
  double split_confidence = 1e-7;
  double tie_threshold = 0.05;
  // Minimum observations at an inner node between split re-evaluations.
  std::size_t reevaluation_period = 1000;
  int num_split_candidates = 10;
};

class Efdt : public Classifier {
 public:
  explicit Efdt(const EfdtConfig& config);
  ~Efdt() override;

  void PartialFit(const Batch& batch) override;
  int num_classes() const override { return config_.num_classes; }
  void PredictProbaInto(std::span<const double> x,
                        std::span<double> out) const override;
  std::size_t NumSplits() const override;
  std::size_t NumParameters() const override;
  std::string name() const override { return "EFDT"; }

  std::size_t NumInnerNodes() const;
  std::size_t NumLeaves() const;

  void TrainInstance(std::span<const double> x, int y);

  // Caches "efdt.*" counters for initial splits, re-evaluations, subtree
  // kills and split replacements.
  void AttachTelemetry(obs::TelemetryRegistry* registry) override;

  // --- Persistence (binary archive; see serial/archive.h) ---
  // EFDT is RNG-free, so the record is config + recursive node state.
  void Save(std::ostream& out) const override;
  static std::unique_ptr<Efdt> Load(std::istream& in);
  void SaveBody(serial::Writer& writer) const;
  static std::unique_ptr<Efdt> LoadBody(serial::Reader& reader);

 private:
  struct Node;

  void AttemptInitialSplit(Node* leaf);
  void ReevaluateSplit(Node* inner);
  SplitSuggestion BestSuggestion(const Node& node) const;

  EfdtConfig config_;
  std::unique_ptr<Node> root_;
  // Telemetry destinations, null until AttachTelemetry.
  std::uint64_t* split_attempts_counter_ = nullptr;
  std::uint64_t* splits_counter_ = nullptr;
  std::uint64_t* reevaluations_counter_ = nullptr;
  std::uint64_t* subtree_kills_counter_ = nullptr;
  std::uint64_t* split_replacements_counter_ = nullptr;
};

}  // namespace dmt::trees

#endif  // DMT_TREES_EFDT_H_
