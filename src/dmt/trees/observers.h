// Per-feature attribute observers that accumulate class-conditional
// statistics at tree leaves and propose binary split candidates.
//
// The numeric observer keeps one Gaussian per class plus the observed range
// and scores equally spaced candidate thresholds through the Gaussian CDF
// (the standard MOA/scikit-multiflow approach). The nominal observer keeps
// exact per-value class counts and proposes equality splits. All paper
// experiments use binary splits only (Sec. VI-C).
#ifndef DMT_TREES_OBSERVERS_H_
#define DMT_TREES_OBSERVERS_H_

#include <limits>
#include <map>
#include <span>
#include <vector>

#include "dmt/bayes/gaussian_nb.h"

namespace dmt::serial {
class Writer;
class Reader;
}  // namespace dmt::serial

namespace dmt::trees {

// A scored binary split proposal for one feature.
struct SplitSuggestion {
  int feature = -1;
  double threshold = 0.0;   // numeric: x <= threshold; nominal: x == value
  bool is_equality = false; // true for nominal equality splits
  double merit = -std::numeric_limits<double>::infinity();
  std::vector<double> left_counts;
  std::vector<double> right_counts;
};

// Trivially copyable variant without the projected count vectors, for the
// allocation-free split attempt (the Hoeffding test only needs feature,
// threshold and merit; children start from empty statistics anyway).
struct SplitCandidate {
  int feature = -1;
  double threshold = 0.0;
  bool is_equality = false;
  double merit = -std::numeric_limits<double>::infinity();
};

class NumericObserver {
 public:
  explicit NumericObserver(int num_classes);

  void Add(double value, int y, double weight = 1.0);

  // Best split for this feature by `criterion` merit, where the criterion
  // is information gain over the projected class distributions.
  // `num_candidates` thresholds are probed uniformly inside (min, max).
  SplitSuggestion BestSplit(int feature,
                            const std::vector<double>& parent_counts,
                            int num_candidates = 10) const;

  // Allocation-free core of BestSplit: identical threshold/merit sequence,
  // but projected counts land in caller-provided scratch (>= num_classes
  // each) instead of fresh vectors.
  SplitCandidate BestSplitInto(int feature,
                               std::span<const double> parent_counts,
                               int num_candidates,
                               std::span<double> left_scratch,
                               std::span<double> right_scratch) const;

  // Class counts estimated to fall at or below `threshold` (Gaussian CDF).
  std::vector<double> CountsBelow(double threshold) const;
  void CountsBelowInto(double threshold, std::span<double> out) const;

  bool has_range() const { return max_ > min_; }
  double min_value() const { return min_; }
  double max_value() const { return max_; }

  // Class-conditional Gaussian of this feature (reused for Naive Bayes leaf
  // prediction in VFDT-NBA) and the weight seen for that class.
  const bayes::GaussianEstimator& estimator(int c) const {
    return per_class_[c];
  }
  double class_weight(int c) const { return class_weights_[c]; }

  // --- Persistence (binary archive; see serial/archive.h) ---
  // The archived class count must equal `num_classes` (the owning tree's);
  // a mismatch throws serial::SerialError.
  void Save(serial::Writer& writer) const;
  static NumericObserver Load(serial::Reader& reader, int num_classes);

 private:
  int num_classes_;
  std::vector<bayes::GaussianEstimator> per_class_;
  std::vector<double> class_weights_;
  double min_ = std::numeric_limits<double>::max();
  double max_ = std::numeric_limits<double>::lowest();
};

class NominalObserver {
 public:
  explicit NominalObserver(int num_classes);

  void Add(double value, int y, double weight = 1.0);

  // Best equality split "x == v vs x != v" over observed values.
  SplitSuggestion BestSplit(int feature,
                            const std::vector<double>& parent_counts) const;

  // Allocation-free core of BestSplit (right_scratch >= num_classes).
  SplitCandidate BestSplitInto(int feature,
                               std::span<const double> parent_counts,
                               std::span<double> right_scratch) const;

  // --- Persistence (binary archive; see serial/archive.h) ---
  // The archived class count must equal `num_classes` (the owning tree's);
  // a mismatch throws serial::SerialError.
  void Save(serial::Writer& writer) const;
  static NominalObserver Load(serial::Reader& reader, int num_classes);

 private:
  int num_classes_;
  std::map<double, std::vector<double>> value_counts_;
};

}  // namespace dmt::trees

#endif  // DMT_TREES_OBSERVERS_H_
