// Split criteria shared by the Hoeffding-tree family: the Hoeffding bound,
// information gain over class distributions, and standard deviation
// reduction (FIMT-DD's criterion) over numeric targets.
#ifndef DMT_TREES_SPLIT_CRITERIA_H_
#define DMT_TREES_SPLIT_CRITERIA_H_

#include <span>
#include <vector>

namespace dmt::trees {

// Hoeffding bound: with probability 1-delta the true mean of a random
// variable with range R lies within epsilon of the empirical mean of n
// observations (paper Sec. I-B; Domingos & Hulten 2000).
double HoeffdingBound(double range, double delta, double n);

// Entropy of an unnormalized class-count distribution (bits).
double Entropy(std::span<const double> class_counts);

// Information gain of a binary partition given unnormalized class counts.
double InfoGain(std::span<const double> parent, std::span<const double> left,
                std::span<const double> right);

// Standard deviation reduction for a numeric target split:
//   sd(parent) - (n_l/n) sd(left) - (n_r/n) sd(right),
// from sufficient statistics (count, sum, sum of squares).
struct TargetStats {
  double n = 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;

  void Add(double y, double weight = 1.0) {
    n += weight;
    sum += weight * y;
    sum_sq += weight * y * y;
  }
  void Merge(const TargetStats& other) {
    n += other.n;
    sum += other.sum;
    sum_sq += other.sum_sq;
  }
  double StdDev() const;
};

double StdDevReduction(const TargetStats& parent, const TargetStats& left,
                       const TargetStats& right);

}  // namespace dmt::trees

#endif  // DMT_TREES_SPLIT_CRITERIA_H_
