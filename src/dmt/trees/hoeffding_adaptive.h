// HT-Ada, the Hoeffding Adaptive Tree (Bifet & Gavalda, 2009).
//
// A VFDT where every node monitors the error of its subtree with an ADWIN
// detector. When ADWIN signals change, the node starts growing an
// *alternate* subtree in parallel; once the alternate is significantly more
// accurate, it replaces the original branch (and is discarded if the
// original recovers). The paper evaluates this as "HT-ADA" with majority
// voting in the leaves and without bootstrap sampling (Sec. VI-C).
#ifndef DMT_TREES_HOEFFDING_ADAPTIVE_H_
#define DMT_TREES_HOEFFDING_ADAPTIVE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dmt/common/classifier.h"
#include "dmt/trees/observers.h"

namespace dmt::trees {

struct HatConfig {
  int num_features = 0;
  int num_classes = 2;
  std::size_t grace_period = 200;
  double split_confidence = 1e-7;
  double tie_threshold = 0.05;
  double adwin_delta = 0.002;
  // Minimum ADWIN window width (on both branches) before a swap is tested,
  // and the confidence of the swap test (MOA defaults).
  std::size_t min_swap_width = 300;
  double swap_confidence = 0.05;
  int num_split_candidates = 10;
};

class HoeffdingAdaptiveTree : public Classifier {
 public:
  explicit HoeffdingAdaptiveTree(const HatConfig& config);
  ~HoeffdingAdaptiveTree() override;

  void PartialFit(const Batch& batch) override;
  int num_classes() const override { return config_.num_classes; }
  void PredictProbaInto(std::span<const double> x,
                        std::span<double> out) const override;
  std::size_t NumSplits() const override;
  std::size_t NumParameters() const override;
  std::string name() const override { return "HT-Ada"; }

  std::size_t NumInnerNodes() const;
  std::size_t NumLeaves() const;
  std::size_t NumAlternateTrees() const;

  void TrainInstance(std::span<const double> x, int y);

  // Caches "hat.*" counters (split attempts/splits, alternate-tree
  // lifecycle) and the shared "adwin.*" destinations every per-node error
  // monitor binds to (existing nodes are re-bound by a tree walk; nodes
  // created later bind at construction).
  void AttachTelemetry(obs::TelemetryRegistry* registry) override;

  // --- Persistence (binary archive; see serial/archive.h) ---
  // Config + recursive node records including every per-node ADWIN error
  // monitor and any in-progress alternate subtree. Telemetry bindings do
  // not round-trip; call AttachTelemetry after Load.
  void Save(std::ostream& out) const override;
  static std::unique_ptr<HoeffdingAdaptiveTree> Load(std::istream& in);
  void SaveBody(serial::Writer& writer) const;
  static std::unique_ptr<HoeffdingAdaptiveTree> LoadBody(
      serial::Reader& reader);

 private:
  struct Node;

  void TrainAt(Node* node, std::span<const double> x, int y);
  void AttemptSplit(Node* leaf);
  int SubtreePredict(const Node* node, std::span<const double> x) const;
  void BindNodeTelemetry(Node* node);

  HatConfig config_;
  std::unique_ptr<Node> root_;
  // Telemetry destinations, null until AttachTelemetry.
  std::uint64_t* split_attempts_counter_ = nullptr;
  std::uint64_t* splits_counter_ = nullptr;
  std::uint64_t* alternates_started_counter_ = nullptr;
  std::uint64_t* alternates_promoted_counter_ = nullptr;
  std::uint64_t* alternates_dropped_counter_ = nullptr;
  std::uint64_t* adwin_shrinks_counter_ = nullptr;
  std::uint64_t* adwin_drops_counter_ = nullptr;
  double* adwin_width_gauge_ = nullptr;
};

}  // namespace dmt::trees

#endif  // DMT_TREES_HOEFFDING_ADAPTIVE_H_
