// VFDT, the basic Hoeffding Tree (Domingos & Hulten, 2000): the paper's
// "VFDT (MC)" baseline with majority-class leaves, and "VFDT (NBA)" with
// adaptive Naive Bayes leaves (Gama et al., 2003).
//
// Leaves accumulate per-feature class-conditional statistics; every
// `grace_period` observations the leaf compares the two best split merits
// (information gain) with the Hoeffding bound and splits when the winner is
// sufficiently ahead (or the bound falls below the tie threshold). The basic
// algorithm never revisits a split decision and can grow indefinitely -- the
// behaviour the Dynamic Model Tree is designed to avoid.
#ifndef DMT_TREES_VFDT_H_
#define DMT_TREES_VFDT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dmt/common/classifier.h"
#include "dmt/common/random.h"
#include "dmt/trees/observers.h"

namespace dmt::trees {

// Serialized VfdtConfig record shared with the ensembles that embed member
// trees (see serial/archive.h for the archive primitives).
struct VfdtConfig;
void SaveVfdtConfig(serial::Writer& writer, const VfdtConfig& config);
VfdtConfig LoadVfdtConfig(serial::Reader& reader);

enum class LeafPrediction {
  kMajorityClass,       // VFDT (MC)
  kNaiveBayesAdaptive,  // VFDT (NBA)
};

struct VfdtConfig {
  int num_features = 0;
  int num_classes = 2;
  // scikit-multiflow defaults, as used in the paper (Sec. VI-C).
  std::size_t grace_period = 200;
  double split_confidence = 1e-7;
  double tie_threshold = 0.05;
  LeafPrediction leaf_prediction = LeafPrediction::kMajorityClass;
  // Candidate thresholds probed per numeric feature.
  int num_split_candidates = 10;
  // When > 0, each split decision only considers a random subset of this
  // many features (the Adaptive Random Forest per-tree subspace).
  int subspace_size = 0;
  // Feature indices to treat as nominal: exact per-value class counts and
  // equality splits ("x == v" vs "x != v") instead of Gaussian threshold
  // observers. Everything else is numeric (the paper factorizes
  // categorical strings to numbers and runs the numeric pipeline; this
  // option enables the exact treatment where the schema is known).
  std::vector<int> nominal_features;
  std::uint64_t seed = 42;
};

class Vfdt : public Classifier {
 public:
  explicit Vfdt(const VfdtConfig& config);
  ~Vfdt() override;

  void PartialFit(const Batch& batch) override;
  int num_classes() const override { return config_.num_classes; }
  void PredictProbaInto(std::span<const double> x,
                        std::span<double> out) const override;
  std::size_t NumSplits() const override;
  std::size_t NumParameters() const override;
  std::string name() const override {
    return config_.leaf_prediction == LeafPrediction::kMajorityClass
               ? "VFDT(MC)"
               : "VFDT(NBA)";
  }

  // Tree introspection (used by tests and the interpretability example).
  std::size_t NumInnerNodes() const;
  std::size_t NumLeaves() const;
  std::size_t Depth() const;

  // Trains on a single observation (instance-incremental mode).
  void TrainInstance(std::span<const double> x, int y);

  const VfdtConfig& config() const { return config_; }

  // Caches "vfdt.*" counters for Hoeffding split attempts and splits.
  void AttachTelemetry(obs::TelemetryRegistry* registry) override;

  // --- Persistence (binary archive; see serial/archive.h) ---
  // Full state: config, recursive node records (class counts + attribute
  // observers + NBA bookkeeping) and the RNG engine. The engine is written
  // last so Load can restore it after any constructor draws.
  void Save(std::ostream& out) const override;
  static std::unique_ptr<Vfdt> Load(std::istream& in);
  // Headerless record for embedding (ensembles) and tag dispatch.
  void SaveBody(serial::Writer& writer) const;
  static std::unique_ptr<Vfdt> LoadBody(serial::Reader& reader);

 private:
  struct Node;

  Node* RouteToLeaf(std::span<const double> x) const;
  void AttemptSplit(Node* leaf);
  bool IsNominal(int feature) const;
  void LeafProbaInto(const Node& leaf, std::span<const double> x,
                     std::span<double> out) const;

  VfdtConfig config_;
  Rng rng_;
  std::unique_ptr<Node> root_;
  // Reused by the NBA bookkeeping in TrainInstance (one NB scoring per
  // observation) so training allocates nothing per sample either.
  std::vector<double> nb_scratch_;
  // Grow-only scratch for AttemptSplit: the feature pool and the projected
  // class-count buffers of the per-feature split scans. Keeps the periodic
  // split attempts (every grace_period observations) off the heap.
  std::vector<int> feature_pool_;
  std::vector<double> left_scratch_;
  std::vector<double> right_scratch_;
  // Telemetry destinations, null until AttachTelemetry.
  std::uint64_t* split_attempts_counter_ = nullptr;
  std::uint64_t* splits_counter_ = nullptr;
};

}  // namespace dmt::trees

#endif  // DMT_TREES_VFDT_H_
