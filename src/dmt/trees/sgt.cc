#include "dmt/trees/sgt.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"
#include "dmt/common/math.h"
#include "dmt/common/sanitize.h"
#include "dmt/serial/model_io.h"

namespace dmt::trees {

namespace {

struct GradientStats {
  double sum_g = 0.0;
  double sum_h = 0.0;
  double n = 0.0;

  void Add(double g, double h) {
    sum_g += g;
    sum_h += h;
    n += 1.0;
  }
  void Merge(const GradientStats& other) {
    sum_g += other.sum_g;
    sum_h += other.sum_h;
    n += other.n;
  }
  // Negative loss change of the optimal Newton value for this partition.
  double Objective(double lambda) const {
    return sum_g * sum_g / (2.0 * (sum_h + lambda));
  }
};

}  // namespace

struct StochasticGradientTree::Node {
  int split_feature = -1;
  double split_value = 0.0;
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  double value = 0.0;  // additive leaf score
  GradientStats totals;
  // histograms[feature][bin]
  std::vector<std::vector<GradientStats>> histograms;
  double seen_since_check = 0.0;

  Node(int num_features, int num_bins, double inherited_value)
      : value(inherited_value),
        histograms(num_features,
                   std::vector<GradientStats>(num_bins)) {}

  bool is_leaf() const { return split_feature < 0; }

  void ResetStats() {
    totals = GradientStats();
    for (auto& feature_bins : histograms) {
      std::fill(feature_bins.begin(), feature_bins.end(), GradientStats());
    }
    seen_since_check = 0.0;
  }

  void Save(serial::Writer& writer) const;
  static std::unique_ptr<Node> Load(serial::Reader& reader,
                                    const SgtConfig& config,
                                    std::size_t depth);
};

namespace {

void SaveGradientStats(serial::Writer& writer, const GradientStats& stats) {
  writer.F64(stats.sum_g);
  writer.F64(stats.sum_h);
  writer.F64(stats.n);
}

GradientStats LoadGradientStats(serial::Reader& reader) {
  GradientStats stats;
  stats.sum_g = reader.F64();
  stats.sum_h = reader.F64();
  stats.n = reader.F64();
  return stats;
}

}  // namespace

void StochasticGradientTree::Node::Save(serial::Writer& writer) const {
  writer.I32(split_feature);
  writer.F64(split_value);
  writer.F64(value);
  SaveGradientStats(writer, totals);
  writer.Size(histograms.size());
  for (const auto& feature_bins : histograms) {
    for (const GradientStats& bin : feature_bins) {
      SaveGradientStats(writer, bin);
    }
  }
  writer.F64(seen_since_check);
  if (!is_leaf()) {
    left->Save(writer);
    right->Save(writer);
  }
}

std::unique_ptr<StochasticGradientTree::Node> StochasticGradientTree::Node::
    Load(serial::Reader& reader, const SgtConfig& config, std::size_t depth) {
  serial::Check(depth <= serial::kMaxTreeDepth,
                "SGT node depth exceeds the archive limit");
  auto node =
      std::make_unique<Node>(config.num_features, config.num_bins, 0.0);
  const std::int32_t split_feature = reader.I32();
  serial::Check(split_feature >= -1 && split_feature < config.num_features,
                "SGT split feature out of range");
  node->split_feature = static_cast<int>(split_feature);
  node->split_value = reader.F64();
  node->value = reader.F64();
  node->totals = LoadGradientStats(reader);
  const std::size_t features = static_cast<std::size_t>(config.num_features);
  // Split nodes clear their histograms; the leaf training path indexes
  // histograms[j] for every feature.
  const std::size_t num_histograms = reader.Size(features);
  serial::Check(num_histograms == 0 || num_histograms == features,
                "SGT histogram count is neither empty nor one per feature");
  if (num_histograms == 0) {
    node->histograms.clear();
  } else {
    for (auto& feature_bins : node->histograms) {
      for (GradientStats& bin : feature_bins) {
        bin = LoadGradientStats(reader);
      }
    }
  }
  node->seen_since_check = reader.F64();
  if (!node->is_leaf()) {
    node->left = Load(reader, config, depth + 1);
    node->right = Load(reader, config, depth + 1);
  } else {
    serial::Check(num_histograms == features,
                  "SGT leaf is missing its histograms");
  }
  return node;
}

StochasticGradientTree::StochasticGradientTree(const SgtConfig& config)
    : config_(config) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_bins >= 2);
  DMT_CHECK(config.l2_regularization > 0.0);
  root_ = std::make_unique<Node>(config_.num_features, config_.num_bins, 0.0);
}

StochasticGradientTree::~StochasticGradientTree() = default;

double StochasticGradientTree::Score(std::span<const double> x) const {
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  return node->value;
}

void StochasticGradientTree::TrainGradient(std::span<const double> x,
                                           double gradient, double hessian) {
  // Non-finite features are unusable: the histogram binning below would
  // evaluate static_cast<int>(NaN) -- undefined behavior (DESIGN.md
  // Sec. 8). Non-finite gradients would poison the leaf totals.
  if (!RowIsFinite(x) || !std::isfinite(gradient) || !std::isfinite(hessian)) {
    return;
  }
  Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  node->totals.Add(gradient, hessian);
  const double width =
      (config_.feature_hi - config_.feature_lo) / config_.num_bins;
  for (int j = 0; j < config_.num_features; ++j) {
    const int bin =
        std::clamp(static_cast<int>((x[j] - config_.feature_lo) / width), 0,
                   config_.num_bins - 1);
    node->histograms[j][bin].Add(gradient, hessian);
  }
  node->seen_since_check += 1.0;
  if (node->seen_since_check >= static_cast<double>(config_.grace_period)) {
    node->seen_since_check = 0.0;
    MaybeSplitOrUpdate(node);
  }
}

void StochasticGradientTree::TrainInstance(std::span<const double> x, int y) {
  const double p = Sigmoid(Score(x));
  TrainGradient(x, p - static_cast<double>(y == 1), p * (1.0 - p));
}

void StochasticGradientTree::MaybeSplitOrUpdate(Node* leaf) {
  const double lambda = config_.l2_regularization;
  const double base = leaf->totals.Objective(lambda);

  double best_gain = 0.0;
  int best_feature = -1;
  double best_threshold = 0.0;
  GradientStats best_left;
  const double width =
      (config_.feature_hi - config_.feature_lo) / config_.num_bins;
  for (int j = 0; j < config_.num_features; ++j) {
    GradientStats left;
    for (int b = 0; b + 1 < config_.num_bins; ++b) {
      left.Merge(leaf->histograms[j][b]);
      if (left.n < 1.0 || leaf->totals.n - left.n < 1.0) continue;
      GradientStats right;
      right.sum_g = leaf->totals.sum_g - left.sum_g;
      right.sum_h = leaf->totals.sum_h - left.sum_h;
      right.n = leaf->totals.n - left.n;
      const double gain =
          left.Objective(lambda) + right.Objective(lambda) - base;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = j;
        best_threshold = config_.feature_lo + width * (b + 1);
        best_left = left;
      }
    }
  }

  if (best_feature >= 0 && best_gain > config_.min_split_gain) {
    GradientStats right;
    right.sum_g = leaf->totals.sum_g - best_left.sum_g;
    right.sum_h = leaf->totals.sum_h - best_left.sum_h;
    right.n = leaf->totals.n - best_left.n;
    leaf->split_feature = best_feature;
    leaf->split_value = best_threshold;
    // Children start from the Newton-optimal values of their partitions.
    leaf->left = std::make_unique<Node>(
        config_.num_features, config_.num_bins,
        leaf->value - best_left.sum_g / (best_left.sum_h + lambda));
    leaf->right = std::make_unique<Node>(
        config_.num_features, config_.num_bins,
        leaf->value - right.sum_g / (right.sum_h + lambda));
    leaf->histograms.clear();
    return;
  }
  // No split: Newton update of the leaf value, then restart statistics.
  leaf->value -=
      leaf->totals.sum_g / (leaf->totals.sum_h + lambda);
  leaf->ResetStats();
}

std::size_t StochasticGradientTree::NumInnerNodes() const {
  std::size_t inner = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) return;
    ++inner;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return inner;
}

std::size_t StochasticGradientTree::NumLeaves() const {
  std::size_t leaves = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) {
      ++leaves;
      return;
    }
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return leaves;
}

SgtClassifier::SgtClassifier(const SgtConfig& config, int num_classes)
    : config_(config), num_classes_(num_classes) {
  DMT_CHECK(num_classes >= 2);
  const int num_trees = num_classes == 2 ? 1 : num_classes;
  for (int t = 0; t < num_trees; ++t) {
    trees_.push_back(std::make_unique<StochasticGradientTree>(config));
  }
}

void SgtClassifier::PartialFit(const Batch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::span<const double> x = batch.row(i);
    const int y = batch.label(i);
    if (num_classes_ == 2) {
      trees_[0]->TrainInstance(x, y);
      continue;
    }
    // One-vs-rest with softmax-normalized scores.
    if (train_scores_.size() != static_cast<std::size_t>(num_classes_)) {
      train_scores_.resize(num_classes_);
    }
    std::span<double> scores(train_scores_);
    for (int c = 0; c < num_classes_; ++c) scores[c] = trees_[c]->Score(x);
    SoftmaxInPlace(scores);
    for (int c = 0; c < num_classes_; ++c) {
      const double p = scores[c];
      trees_[c]->TrainGradient(x, p - static_cast<double>(c == y),
                               std::max(p * (1.0 - p), 1e-6));
    }
  }
}

void SgtClassifier::PredictProbaInto(std::span<const double> x,
                                     std::span<double> out) const {
  if (num_classes_ == 2) {
    out[1] = Sigmoid(trees_[0]->Score(x));
    out[0] = 1.0 - out[1];
    return;
  }
  for (int c = 0; c < num_classes_; ++c) out[c] = trees_[c]->Score(x);
  SoftmaxInPlace(out);
}

std::size_t SgtClassifier::NumSplits() const {
  // Leaf values are single parameters (majority-like, not model leaves):
  // count inner nodes only, summed over the per-class trees.
  std::size_t total = 0;
  for (const auto& tree : trees_) total += tree->NumInnerNodes();
  return total;
}

std::size_t SgtClassifier::NumParameters() const {
  std::size_t total = 0;
  for (const auto& tree : trees_) {
    total += tree->NumInnerNodes() + tree->NumLeaves();
  }
  return total;
}

void StochasticGradientTree::SaveBody(serial::Writer& writer) const {
  root_->Save(writer);
}

std::unique_ptr<StochasticGradientTree> StochasticGradientTree::LoadBody(
    serial::Reader& reader, const SgtConfig& config) {
  auto tree = std::make_unique<StochasticGradientTree>(config);
  tree->root_ = Node::Load(reader, config, 0);
  return tree;
}

void SgtClassifier::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagSgt);
  writer.I32(config_.num_features);
  writer.Size(config_.grace_period);
  writer.F64(config_.l2_regularization);
  writer.F64(config_.min_split_gain);
  writer.I32(config_.num_bins);
  writer.F64(config_.feature_lo);
  writer.F64(config_.feature_hi);
  writer.I32(num_classes_);
  for (const auto& tree : trees_) tree->SaveBody(writer);
}

std::unique_ptr<SgtClassifier> SgtClassifier::LoadBody(
    serial::Reader& reader) {
  SgtConfig config;
  config.num_features = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "SGT feature count"));
  config.grace_period = reader.Size(std::size_t{1} << 62);
  config.l2_regularization = reader.F64();
  // Flows into the StochasticGradientTree constructor DMT_CHECK and into
  // Newton-step denominators.
  serial::Check(std::isfinite(config.l2_regularization) &&
                    config.l2_regularization > 0.0,
                "SGT L2 regularization is not positive");
  config.min_split_gain =
      serial::CheckedFinite(reader.F64(), "SGT minimum split gain");
  config.num_bins = static_cast<int>(
      serial::CheckedRange(reader.I32(), 2, 1 << 20, "SGT bin count"));
  serial::Check(static_cast<std::uint64_t>(config.num_features) *
                        static_cast<std::uint64_t>(config.num_bins) <=
                    static_cast<std::uint64_t>(serial::kMaxVector),
                "SGT histogram dimensions exceed the archive limit");
  config.feature_lo = serial::CheckedFinite(reader.F64(), "SGT range lo");
  config.feature_hi = serial::CheckedFinite(reader.F64(), "SGT range hi");
  serial::Check(config.feature_hi > config.feature_lo,
                "SGT feature range is empty");
  const std::int32_t num_classes = static_cast<std::int32_t>(
      serial::CheckedRange(reader.I32(), 2, serial::kMaxClasses,
                           "SGT class count"));
  auto model =
      std::make_unique<SgtClassifier>(config, static_cast<int>(num_classes));
  for (auto& tree : model->trees_) {
    tree = StochasticGradientTree::LoadBody(reader, config);
  }
  return model;
}

std::unique_ptr<SgtClassifier> SgtClassifier::Load(std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagSgt);
  return LoadBody(reader);
}

}  // namespace dmt::trees
