#include "dmt/trees/fimtdd_regressor.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"
#include "dmt/trees/split_criteria.h"

namespace dmt::trees {

namespace {

// Per-feature histogram of numeric-target sufficient statistics; candidate
// thresholds at bin boundaries (bounded-memory stand-in for E-BSTs).
class RegressionHistogram {
 public:
  RegressionHistogram(int num_bins, double lo, double hi)
      : lo_(lo), width_((hi - lo) / num_bins), bins_(num_bins) {}

  void Add(double value, double target) { bins_[BinOf(value)].Add(target); }

  void BestSplit(const TargetStats& parent, double* best_sdr,
                 double* best_threshold) const {
    *best_sdr = 0.0;
    *best_threshold = lo_;
    TargetStats left;
    for (std::size_t b = 0; b + 1 < bins_.size(); ++b) {
      left.Merge(bins_[b]);
      if (left.n < 1.0 || parent.n - left.n < 1.0) continue;
      TargetStats right;
      right.n = parent.n - left.n;
      right.sum = parent.sum - left.sum;
      right.sum_sq = parent.sum_sq - left.sum_sq;
      const double sdr = StdDevReduction(parent, left, right);
      if (sdr > *best_sdr) {
        *best_sdr = sdr;
        *best_threshold = lo_ + width_ * static_cast<double>(b + 1);
      }
    }
  }

 private:
  int BinOf(double value) const {
    return std::clamp(static_cast<int>((value - lo_) / width_), 0,
                      static_cast<int>(bins_.size()) - 1);
  }

  double lo_;
  double width_;
  std::vector<TargetStats> bins_;
};

}  // namespace

struct FimtDdRegressor::Node {
  int split_feature = -1;
  double split_value = 0.0;
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  std::vector<RegressionHistogram> histograms;
  TargetStats target_stats;
  double weight_seen = 0.0;
  double weight_at_last_attempt = 0.0;

  linear::LinearRegressor model;
  drift::PageHinkley drift_test;
  // Running scale of absolute residuals, so the Page-Hinkley input is
  // normalized (the PH deltas are calibrated for O(1) inputs).
  double abs_error_mean = 0.0;
  double abs_error_count = 0.0;

  Node(const FimtDdRegressorConfig& config, Rng* rng)
      : histograms(config.num_features,
                   RegressionHistogram(config.num_bins, config.feature_lo,
                                       config.feature_hi)),
        model({.num_features = config.num_features,
               .learning_rate = config.leaf_learning_rate},
              rng),
        drift_test(config.page_hinkley) {}

  bool is_leaf() const { return split_feature < 0; }
};

FimtDdRegressor::FimtDdRegressor(const FimtDdRegressorConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  root_ = std::make_unique<Node>(config_, &rng_);
}

FimtDdRegressor::~FimtDdRegressor() = default;

void FimtDdRegressor::TrainInstance(std::span<const double> x, double y) {
  std::vector<Node*> path;
  Node* node = root_.get();
  while (true) {
    path.push_back(node);
    if (node->is_leaf()) break;
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  Node* leaf = path.back();

  // Page-Hinkley on the normalized absolute residual at every node on the
  // path; an alert deletes that node's subtree.
  const double abs_error = std::abs(leaf->model.Predict(x) - y);
  for (Node* n : path) {
    n->abs_error_count += 1.0;
    n->abs_error_mean +=
        (abs_error - n->abs_error_mean) / n->abs_error_count;
    const double scale = std::max(n->abs_error_mean, 1e-9);
    if (!n->is_leaf() && n->drift_test.Update(abs_error / scale)) {
      n->split_feature = -1;
      n->left.reset();
      n->right.reset();
      n->histograms.assign(
          config_.num_features,
          RegressionHistogram(config_.num_bins, config_.feature_lo,
                              config_.feature_hi));
      n->target_stats = TargetStats();
      n->weight_seen = 0.0;
      n->weight_at_last_attempt = 0.0;
      ++num_prunes_;
      leaf = n;
      break;
    }
  }

  leaf->target_stats.Add(y);
  leaf->weight_seen += 1.0;
  for (int j = 0; j < config_.num_features; ++j) {
    leaf->histograms[j].Add(x[j], y);
  }
  linear::RegressionBatch one(config_.num_features);
  one.Add(x, y);
  leaf->model.Fit(one);

  if (leaf->weight_seen - leaf->weight_at_last_attempt >=
      static_cast<double>(config_.grace_period)) {
    leaf->weight_at_last_attempt = leaf->weight_seen;
    AttemptSplit(leaf);
  }
}

void FimtDdRegressor::PartialFit(const linear::RegressionBatch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    TrainInstance(batch.row(i), batch.target(i));
  }
}

void FimtDdRegressor::AttemptSplit(Node* leaf) {
  double best_sdr = 0.0;
  double second_sdr = 0.0;
  int best_feature = -1;
  double best_threshold = 0.0;
  for (int j = 0; j < config_.num_features; ++j) {
    double sdr = 0.0;
    double threshold = 0.0;
    leaf->histograms[j].BestSplit(leaf->target_stats, &sdr, &threshold);
    if (sdr > best_sdr) {
      second_sdr = best_sdr;
      best_sdr = sdr;
      best_feature = j;
      best_threshold = threshold;
    } else if (sdr > second_sdr) {
      second_sdr = sdr;
    }
  }
  if (best_feature < 0 || best_sdr <= 0.0) return;

  const double ratio = second_sdr / best_sdr;
  const double epsilon =
      HoeffdingBound(1.0, config_.split_confidence, leaf->weight_seen);
  if (ratio < 1.0 - std::min(epsilon, config_.tie_threshold)) {
    leaf->split_feature = best_feature;
    leaf->split_value = best_threshold;
    leaf->left = std::make_unique<Node>(config_, &rng_);
    leaf->right = std::make_unique<Node>(config_, &rng_);
    leaf->left->model.WarmStartFrom(leaf->model);
    leaf->right->model.WarmStartFrom(leaf->model);
    leaf->histograms.clear();
  }
}

double FimtDdRegressor::Predict(std::span<const double> x) const {
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  return node->model.Predict(x);
}

std::size_t FimtDdRegressor::NumInnerNodes() const {
  std::size_t inner = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) return;
    ++inner;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return inner;
}

std::size_t FimtDdRegressor::NumLeaves() const {
  std::size_t leaves = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) {
      ++leaves;
      return;
    }
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return leaves;
}

std::size_t FimtDdRegressor::NumSplits() const {
  return NumInnerNodes() + NumLeaves();
}

std::size_t FimtDdRegressor::NumParameters() const {
  return NumInnerNodes() +
         NumLeaves() * static_cast<std::size_t>(config_.num_features);
}

}  // namespace dmt::trees
