#include "dmt/trees/fimtdd_regressor.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"
#include "dmt/serial/model_io.h"
#include "dmt/trees/split_criteria.h"

namespace dmt::trees {

namespace {

void SaveTargetStats(serial::Writer& writer, const TargetStats& stats) {
  writer.F64(stats.n);
  writer.F64(stats.sum);
  writer.F64(stats.sum_sq);
}

TargetStats LoadTargetStats(serial::Reader& reader) {
  TargetStats stats;
  stats.n = reader.F64();
  stats.sum = reader.F64();
  stats.sum_sq = reader.F64();
  return stats;
}

// Per-feature histogram of numeric-target sufficient statistics; candidate
// thresholds at bin boundaries (bounded-memory stand-in for E-BSTs).
class RegressionHistogram {
 public:
  RegressionHistogram(int num_bins, double lo, double hi)
      : lo_(lo), width_((hi - lo) / num_bins), bins_(num_bins) {}

  void Add(double value, double target) { bins_[BinOf(value)].Add(target); }

  void BestSplit(const TargetStats& parent, double* best_sdr,
                 double* best_threshold) const {
    *best_sdr = 0.0;
    *best_threshold = lo_;
    TargetStats left;
    for (std::size_t b = 0; b + 1 < bins_.size(); ++b) {
      left.Merge(bins_[b]);
      if (left.n < 1.0 || parent.n - left.n < 1.0) continue;
      TargetStats right;
      right.n = parent.n - left.n;
      right.sum = parent.sum - left.sum;
      right.sum_sq = parent.sum_sq - left.sum_sq;
      const double sdr = StdDevReduction(parent, left, right);
      if (sdr > *best_sdr) {
        *best_sdr = sdr;
        *best_threshold = lo_ + width_ * static_cast<double>(b + 1);
      }
    }
  }

  // Bin contents only; geometry re-derives from the tree config on Load.
  void Save(serial::Writer& writer) const {
    for (const TargetStats& bin : bins_) SaveTargetStats(writer, bin);
  }
  void LoadBins(serial::Reader& reader) {
    for (TargetStats& bin : bins_) bin = LoadTargetStats(reader);
  }

 private:
  int BinOf(double value) const {
    return std::clamp(static_cast<int>((value - lo_) / width_), 0,
                      static_cast<int>(bins_.size()) - 1);
  }

  double lo_;
  double width_;
  std::vector<TargetStats> bins_;
};

}  // namespace

struct FimtDdRegressor::Node {
  int split_feature = -1;
  double split_value = 0.0;
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  std::vector<RegressionHistogram> histograms;
  TargetStats target_stats;
  double weight_seen = 0.0;
  double weight_at_last_attempt = 0.0;

  linear::LinearRegressor model;
  drift::PageHinkley drift_test;
  // Running scale of absolute residuals, so the Page-Hinkley input is
  // normalized (the PH deltas are calibrated for O(1) inputs).
  double abs_error_mean = 0.0;
  double abs_error_count = 0.0;

  Node(const FimtDdRegressorConfig& config, Rng* rng)
      : histograms(config.num_features,
                   RegressionHistogram(config.num_bins, config.feature_lo,
                                       config.feature_hi)),
        model({.num_features = config.num_features,
               .learning_rate = config.leaf_learning_rate},
              rng),
        drift_test(config.page_hinkley) {}

  bool is_leaf() const { return split_feature < 0; }

  void Save(serial::Writer& writer) const;
  static std::unique_ptr<Node> Load(serial::Reader& reader,
                                    const FimtDdRegressorConfig& config,
                                    Rng* rng, std::size_t depth);
};

void FimtDdRegressor::Node::Save(serial::Writer& writer) const {
  writer.I32(split_feature);
  writer.F64(split_value);
  writer.Size(histograms.size());
  for (const RegressionHistogram& histogram : histograms) {
    histogram.Save(writer);
  }
  SaveTargetStats(writer, target_stats);
  writer.F64(weight_seen);
  writer.F64(weight_at_last_attempt);
  model.SaveState(writer);
  drift_test.Save(writer);
  writer.F64(abs_error_mean);
  writer.F64(abs_error_count);
  if (!is_leaf()) {
    left->Save(writer);
    right->Save(writer);
  }
}

std::unique_ptr<FimtDdRegressor::Node> FimtDdRegressor::Node::Load(
    serial::Reader& reader, const FimtDdRegressorConfig& config, Rng* rng,
    std::size_t depth) {
  serial::Check(depth <= serial::kMaxTreeDepth,
                "FIMT-DD-R node depth exceeds the archive limit");
  auto node = std::make_unique<Node>(config, rng);
  const std::int32_t split_feature = reader.I32();
  serial::Check(split_feature >= -1 && split_feature < config.num_features,
                "FIMT-DD-R split feature out of range");
  node->split_feature = static_cast<int>(split_feature);
  node->split_value = reader.F64();
  const std::size_t features = static_cast<std::size_t>(config.num_features);
  const std::size_t num_histograms = reader.Size(features);
  serial::Check(
      num_histograms == 0 || num_histograms == features,
      "FIMT-DD-R histogram count is neither empty nor one per feature");
  if (num_histograms == 0) {
    node->histograms.clear();
  } else {
    for (RegressionHistogram& histogram : node->histograms) {
      histogram.LoadBins(reader);
    }
  }
  node->target_stats = LoadTargetStats(reader);
  node->weight_seen = reader.F64();
  node->weight_at_last_attempt = reader.F64();
  node->model.LoadState(reader);
  node->drift_test = drift::PageHinkley::Load(reader);
  node->abs_error_mean = reader.F64();
  node->abs_error_count = reader.F64();
  if (!node->is_leaf()) {
    node->left = Load(reader, config, rng, depth + 1);
    node->right = Load(reader, config, rng, depth + 1);
  } else {
    serial::Check(num_histograms == features,
                  "FIMT-DD-R leaf is missing its histograms");
  }
  return node;
}

FimtDdRegressor::FimtDdRegressor(const FimtDdRegressorConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  root_ = std::make_unique<Node>(config_, &rng_);
}

FimtDdRegressor::~FimtDdRegressor() = default;

void FimtDdRegressor::TrainInstance(std::span<const double> x, double y) {
  std::vector<Node*> path;
  Node* node = root_.get();
  while (true) {
    path.push_back(node);
    if (node->is_leaf()) break;
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  Node* leaf = path.back();

  // Page-Hinkley on the normalized absolute residual at every node on the
  // path; an alert deletes that node's subtree.
  const double abs_error = std::abs(leaf->model.Predict(x) - y);
  for (Node* n : path) {
    n->abs_error_count += 1.0;
    n->abs_error_mean +=
        (abs_error - n->abs_error_mean) / n->abs_error_count;
    const double scale = std::max(n->abs_error_mean, 1e-9);
    if (!n->is_leaf() && n->drift_test.Update(abs_error / scale)) {
      n->split_feature = -1;
      n->left.reset();
      n->right.reset();
      n->histograms.assign(
          config_.num_features,
          RegressionHistogram(config_.num_bins, config_.feature_lo,
                              config_.feature_hi));
      n->target_stats = TargetStats();
      n->weight_seen = 0.0;
      n->weight_at_last_attempt = 0.0;
      ++num_prunes_;
      leaf = n;
      break;
    }
  }

  leaf->target_stats.Add(y);
  leaf->weight_seen += 1.0;
  for (int j = 0; j < config_.num_features; ++j) {
    leaf->histograms[j].Add(x[j], y);
  }
  linear::RegressionBatch one(config_.num_features);
  one.Add(x, y);
  leaf->model.Fit(one);

  if (leaf->weight_seen - leaf->weight_at_last_attempt >=
      static_cast<double>(config_.grace_period)) {
    leaf->weight_at_last_attempt = leaf->weight_seen;
    AttemptSplit(leaf);
  }
}

void FimtDdRegressor::PartialFit(const linear::RegressionBatch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    TrainInstance(batch.row(i), batch.target(i));
  }
}

void FimtDdRegressor::AttemptSplit(Node* leaf) {
  double best_sdr = 0.0;
  double second_sdr = 0.0;
  int best_feature = -1;
  double best_threshold = 0.0;
  for (int j = 0; j < config_.num_features; ++j) {
    double sdr = 0.0;
    double threshold = 0.0;
    leaf->histograms[j].BestSplit(leaf->target_stats, &sdr, &threshold);
    if (sdr > best_sdr) {
      second_sdr = best_sdr;
      best_sdr = sdr;
      best_feature = j;
      best_threshold = threshold;
    } else if (sdr > second_sdr) {
      second_sdr = sdr;
    }
  }
  if (best_feature < 0 || best_sdr <= 0.0) return;

  const double ratio = second_sdr / best_sdr;
  const double epsilon =
      HoeffdingBound(1.0, config_.split_confidence, leaf->weight_seen);
  if (ratio < 1.0 - std::min(epsilon, config_.tie_threshold)) {
    leaf->split_feature = best_feature;
    leaf->split_value = best_threshold;
    leaf->left = std::make_unique<Node>(config_, &rng_);
    leaf->right = std::make_unique<Node>(config_, &rng_);
    leaf->left->model.WarmStartFrom(leaf->model);
    leaf->right->model.WarmStartFrom(leaf->model);
    leaf->histograms.clear();
  }
}

double FimtDdRegressor::Predict(std::span<const double> x) const {
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  return node->model.Predict(x);
}

std::size_t FimtDdRegressor::NumInnerNodes() const {
  std::size_t inner = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) return;
    ++inner;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return inner;
}

std::size_t FimtDdRegressor::NumLeaves() const {
  std::size_t leaves = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) {
      ++leaves;
      return;
    }
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return leaves;
}

std::size_t FimtDdRegressor::NumSplits() const {
  return NumInnerNodes() + NumLeaves();
}

std::size_t FimtDdRegressor::NumParameters() const {
  return NumInnerNodes() +
         NumLeaves() * static_cast<std::size_t>(config_.num_features);
}

void FimtDdRegressor::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagFimtDdRegressor);
  writer.I32(config_.num_features);
  writer.Size(config_.grace_period);
  writer.F64(config_.split_confidence);
  writer.F64(config_.tie_threshold);
  writer.F64(config_.leaf_learning_rate);
  writer.I32(config_.num_bins);
  writer.F64(config_.feature_lo);
  writer.F64(config_.feature_hi);
  writer.Size(config_.page_hinkley.min_instances);
  writer.F64(config_.page_hinkley.delta);
  writer.F64(config_.page_hinkley.threshold);
  writer.F64(config_.page_hinkley.alpha);
  writer.U64(config_.seed);
  writer.Size(num_prunes_);
  root_->Save(writer);
  writer.Engine(rng_.engine());
}

std::unique_ptr<FimtDdRegressor> FimtDdRegressor::Load(std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagFimtDdRegressor);
  FimtDdRegressorConfig config;
  config.num_features = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "FIMT-DD-R feature count"));
  config.grace_period = reader.Size(std::size_t{1} << 62);
  config.split_confidence =
      serial::CheckedFinite(reader.F64(), "FIMT-DD-R split confidence");
  config.tie_threshold =
      serial::CheckedFinite(reader.F64(), "FIMT-DD-R tie threshold");
  config.leaf_learning_rate =
      serial::CheckedFinite(reader.F64(), "FIMT-DD-R learning rate");
  config.num_bins = static_cast<int>(
      serial::CheckedRange(reader.I32(), 1, 1 << 20, "FIMT-DD-R bin count"));
  serial::Check(static_cast<std::uint64_t>(config.num_features) *
                        static_cast<std::uint64_t>(config.num_bins) <=
                    static_cast<std::uint64_t>(serial::kMaxVector),
                "FIMT-DD-R histogram dimensions exceed the archive limit");
  config.feature_lo =
      serial::CheckedFinite(reader.F64(), "FIMT-DD-R range lo");
  config.feature_hi =
      serial::CheckedFinite(reader.F64(), "FIMT-DD-R range hi");
  // A degenerate range makes the bin width zero and BinOf would cast an
  // infinite quotient to int (undefined behavior).
  serial::Check(config.feature_hi > config.feature_lo,
                "FIMT-DD-R feature range is empty");
  config.page_hinkley.min_instances = reader.Size(std::size_t{1} << 62);
  config.page_hinkley.delta =
      serial::CheckedFinite(reader.F64(), "Page-Hinkley delta");
  config.page_hinkley.threshold =
      serial::CheckedFinite(reader.F64(), "Page-Hinkley threshold");
  config.page_hinkley.alpha =
      serial::CheckedFinite(reader.F64(), "Page-Hinkley alpha");
  config.seed = reader.U64();
  auto tree = std::make_unique<FimtDdRegressor>(config);
  tree->num_prunes_ = reader.Size(std::size_t{1} << 62);
  tree->root_ = Node::Load(reader, config, &tree->rng_, 0);
  // Engine last: node construction above drew initial weights.
  reader.Engine(&tree->rng_.engine());
  return tree;
}

}  // namespace dmt::trees
