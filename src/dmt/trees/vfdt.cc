#include "dmt/trees/vfdt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dmt/common/check.h"
#include "dmt/common/math.h"
#include "dmt/common/sanitize.h"
#include "dmt/obs/telemetry.h"
#include "dmt/serial/model_io.h"
#include "dmt/trees/split_criteria.h"

namespace dmt::trees {

struct Vfdt::Node {
  // Inner-node state; split_feature < 0 marks a leaf.
  int split_feature = -1;
  double split_value = 0.0;
  bool split_is_equality = false;  // nominal split: x == value goes left
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  // Leaf state. Numeric features use Gaussian observers; nominal features
  // (flagged in the config) use exact per-value counts.
  std::vector<double> class_counts;
  std::vector<NumericObserver> observers;
  std::vector<NominalObserver> nominal_observers;  // parallel, sparse-used
  double weight_seen = 0.0;
  double weight_at_last_attempt = 0.0;
  // Adaptive Naive Bayes bookkeeping (VFDT-NBA).
  double mc_correct = 0.0;
  double nb_correct = 0.0;

  Node(int num_features, int num_classes)
      : class_counts(num_classes, 0.0),
        observers(num_features, NumericObserver(num_classes)),
        nominal_observers(num_features, NominalObserver(num_classes)) {}

  bool is_leaf() const { return split_feature < 0; }

  int MajorityClass() const {
    return static_cast<int>(
        std::max_element(class_counts.begin(), class_counts.end()) -
        class_counts.begin());
  }

  void NaiveBayesProbaInto(std::span<const double> x,
                           std::span<double> out) const {
    const int num_classes = static_cast<int>(class_counts.size());
    for (int c = 0; c < num_classes; ++c) {
      if (class_counts[c] <= 0.0) {
        // Never observed at this leaf: no likelihood term exists, and the
        // bare Laplace log-prior would out-score seen classes in
        // low-likelihood regions. Excluded from the argmax (callers only
        // reach here with weight_seen > 0, so some entry stays finite).
        out[c] = -std::numeric_limits<double>::infinity();
        continue;
      }
      out[c] = std::log((class_counts[c] + 1.0) /
                        (weight_seen + num_classes));
      for (std::size_t j = 0; j < observers.size(); ++j) {
        out[c] += observers[j].estimator(c).LogPdf(x[j]);
      }
    }
    SoftmaxInPlace(out);
  }

  void Save(serial::Writer& writer) const;
  static Node Load(serial::Reader& reader, const VfdtConfig& config,
                   std::size_t depth);
};

void Vfdt::Node::Save(serial::Writer& writer) const {
  writer.I32(split_feature);
  writer.F64(split_value);
  writer.Bool(split_is_equality);
  writer.VecF64(class_counts);
  writer.Size(observers.size());
  for (const NumericObserver& obs : observers) obs.Save(writer);
  writer.Size(nominal_observers.size());
  for (const NominalObserver& obs : nominal_observers) obs.Save(writer);
  writer.F64(weight_seen);
  writer.F64(weight_at_last_attempt);
  writer.F64(mc_correct);
  writer.F64(nb_correct);
  if (!is_leaf()) {
    left->Save(writer);
    right->Save(writer);
  }
}

Vfdt::Node Vfdt::Node::Load(serial::Reader& reader, const VfdtConfig& config,
                            std::size_t depth) {
  serial::Check(depth <= serial::kMaxTreeDepth,
                "VFDT node depth exceeds the archive limit");
  Node node(config.num_features, config.num_classes);
  const std::int32_t split_feature = reader.I32();
  serial::Check(split_feature >= -1 && split_feature < config.num_features,
                "VFDT split feature out of range");
  node.split_feature = static_cast<int>(split_feature);
  node.split_value = reader.F64();
  node.split_is_equality = reader.Bool();
  node.class_counts =
      reader.VecF64Exact(static_cast<std::size_t>(config.num_classes));
  const std::size_t features = static_cast<std::size_t>(config.num_features);
  // Split nodes clear their observers; leaves keep one per feature. The
  // training path indexes observers[j] for every feature, so a short vector
  // on a leaf would be out-of-bounds access, not just lost statistics.
  const std::size_t num_observers = reader.Size(features);
  serial::Check(num_observers == 0 || num_observers == features,
                "VFDT observer count is neither empty nor one per feature");
  node.observers.clear();
  for (std::size_t j = 0; j < num_observers; ++j) {
    node.observers.push_back(
        NumericObserver::Load(reader, config.num_classes));
  }
  const std::size_t num_nominal = reader.Size(features);
  serial::Check(num_nominal == 0 || num_nominal == features,
                "VFDT observer count is neither empty nor one per feature");
  node.nominal_observers.clear();
  for (std::size_t j = 0; j < num_nominal; ++j) {
    node.nominal_observers.push_back(
        NominalObserver::Load(reader, config.num_classes));
  }
  node.weight_seen = reader.F64();
  node.weight_at_last_attempt = reader.F64();
  node.mc_correct = reader.F64();
  node.nb_correct = reader.F64();
  if (!node.is_leaf()) {
    node.left = std::make_unique<Node>(
        Node::Load(reader, config, depth + 1));
    node.right = std::make_unique<Node>(
        Node::Load(reader, config, depth + 1));
  } else {
    serial::Check(num_observers == features && num_nominal == features,
                  "VFDT leaf is missing its attribute observers");
  }
  return node;
}

Vfdt::Vfdt(const VfdtConfig& config) : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_classes >= 2);
  root_ = std::make_unique<Node>(config.num_features, config.num_classes);
}

Vfdt::~Vfdt() = default;

void Vfdt::AttachTelemetry(obs::TelemetryRegistry* registry) {
  if (registry == nullptr) return;
  split_attempts_counter_ = registry->Counter("vfdt.split_attempts");
  splits_counter_ = registry->Counter("vfdt.splits");
}

bool Vfdt::IsNominal(int feature) const {
  return std::find(config_.nominal_features.begin(),
                   config_.nominal_features.end(),
                   feature) != config_.nominal_features.end();
}

Vfdt::Node* Vfdt::RouteToLeaf(std::span<const double> x) const {
  Node* node = root_.get();
  while (!node->is_leaf()) {
    const double v = x[node->split_feature];
    const bool go_left = node->split_is_equality ? v == node->split_value
                                                 : v <= node->split_value;
    node = go_left ? node->left.get() : node->right.get();
  }
  return node;
}

void Vfdt::TrainInstance(std::span<const double> x, int y) {
  // Non-finite rows are unusable: a NaN would corrupt the per-leaf
  // Gaussian observers and class counts permanently (DESIGN.md Sec. 8).
  if (!RowIsFinite(x) || y < 0 || y >= config_.num_classes) return;
  Node* leaf = RouteToLeaf(x);
  if (config_.leaf_prediction == LeafPrediction::kNaiveBayesAdaptive &&
      leaf->weight_seen > 0.0) {
    // Track which of MC / NB would have been right, before learning x.
    if (leaf->MajorityClass() == y) leaf->mc_correct += 1.0;
    if (nb_scratch_.size() != static_cast<std::size_t>(config_.num_classes)) {
      nb_scratch_.resize(config_.num_classes);
    }
    leaf->NaiveBayesProbaInto(x, nb_scratch_);
    if (ArgMax(nb_scratch_) == y) leaf->nb_correct += 1.0;
  }
  leaf->class_counts[y] += 1.0;
  leaf->weight_seen += 1.0;
  for (int j = 0; j < config_.num_features; ++j) {
    if (IsNominal(j)) {
      leaf->nominal_observers[j].Add(x[j], y);
    } else {
      leaf->observers[j].Add(x[j], y);
    }
  }
  if (leaf->weight_seen - leaf->weight_at_last_attempt >=
      static_cast<double>(config_.grace_period)) {
    leaf->weight_at_last_attempt = leaf->weight_seen;
    AttemptSplit(leaf);
  }
}

void Vfdt::PartialFit(const Batch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    TrainInstance(batch.row(i), batch.label(i));
  }
}

void Vfdt::AttemptSplit(Node* leaf) {
  DMT_TELEMETRY_COUNT(split_attempts_counter_);
  // A pure leaf cannot be improved by splitting.
  double nonzero = 0.0;
  for (double c : leaf->class_counts) nonzero += c > 0.0 ? 1.0 : 0.0;
  if (nonzero < 2.0) return;

  // Feature pool: all features, or a random subspace (Adaptive Random
  // Forest member trees). Pool and count buffers are grow-only members so
  // the periodic split attempt is allocation-free once warm.
  feature_pool_.resize(config_.num_features);
  for (int j = 0; j < config_.num_features; ++j) feature_pool_[j] = j;
  if (config_.subspace_size > 0 &&
      config_.subspace_size < config_.num_features) {
    std::shuffle(feature_pool_.begin(), feature_pool_.end(), rng_.engine());
    feature_pool_.resize(config_.subspace_size);
  }
  left_scratch_.resize(config_.num_classes);
  right_scratch_.resize(config_.num_classes);

  SplitCandidate best;
  SplitCandidate second;
  for (int j : feature_pool_) {
    const SplitCandidate s =
        IsNominal(j)
            ? leaf->nominal_observers[j].BestSplitInto(j, leaf->class_counts,
                                                       right_scratch_)
            : leaf->observers[j].BestSplitInto(
                  j, leaf->class_counts, config_.num_split_candidates,
                  left_scratch_, right_scratch_);
    if (s.merit > best.merit) {
      second = best;
      best = s;
    } else if (s.merit > second.merit) {
      second = s;
    }
  }
  if (best.feature < 0 || best.merit <= 0.0) return;

  const double range = std::log2(static_cast<double>(config_.num_classes));
  const double epsilon =
      HoeffdingBound(range, config_.split_confidence, leaf->weight_seen);
  const double second_merit = std::max(0.0, second.merit);
  if (best.merit - second_merit > epsilon ||
      epsilon < config_.tie_threshold) {
    DMT_TELEMETRY_COUNT(splits_counter_);
    leaf->split_feature = best.feature;
    leaf->split_value = best.threshold;
    leaf->split_is_equality = best.is_equality;
    leaf->left =
        std::make_unique<Node>(config_.num_features, config_.num_classes);
    leaf->right =
        std::make_unique<Node>(config_.num_features, config_.num_classes);
    leaf->observers.clear();
    leaf->nominal_observers.clear();
  }
}

void Vfdt::LeafProbaInto(const Node& leaf, std::span<const double> x,
                         std::span<double> out) const {
  const int num_classes = config_.num_classes;
  if (leaf.weight_seen <= 0.0) {
    std::fill(out.begin(), out.end(), 1.0 / num_classes);
    return;
  }
  const bool use_nb =
      config_.leaf_prediction == LeafPrediction::kNaiveBayesAdaptive &&
      leaf.nb_correct >= leaf.mc_correct && !leaf.observers.empty();
  if (use_nb) {
    leaf.NaiveBayesProbaInto(x, out);
    return;
  }
  for (int c = 0; c < num_classes; ++c) {
    out[c] = leaf.class_counts[c] / leaf.weight_seen;
  }
}

void Vfdt::PredictProbaInto(std::span<const double> x,
                            std::span<double> out) const {
  LeafProbaInto(*RouteToLeaf(x), x, out);
}

namespace {

struct TreeShape {
  std::size_t inner = 0;
  std::size_t leaves = 0;
  std::size_t depth = 0;
};

}  // namespace

template <typename NodeT>
static void Walk(const NodeT* node, std::size_t depth, TreeShape* shape) {
  shape->depth = std::max(shape->depth, depth);
  if (node->is_leaf()) {
    ++shape->leaves;
    return;
  }
  ++shape->inner;
  Walk(node->left.get(), depth + 1, shape);
  Walk(node->right.get(), depth + 1, shape);
}

std::size_t Vfdt::NumInnerNodes() const {
  TreeShape shape;
  Walk(root_.get(), 0, &shape);
  return shape.inner;
}

std::size_t Vfdt::NumLeaves() const {
  TreeShape shape;
  Walk(root_.get(), 0, &shape);
  return shape.leaves;
}

std::size_t Vfdt::Depth() const {
  TreeShape shape;
  Walk(root_.get(), 0, &shape);
  return shape.depth;
}

std::size_t Vfdt::NumSplits() const {
  TreeShape shape;
  Walk(root_.get(), 0, &shape);
  // Paper Sec. VI-D2: inner nodes are splits; MC leaves add nothing; model
  // (NB) leaves add one split for binary targets and c for multiclass.
  if (config_.leaf_prediction == LeafPrediction::kMajorityClass) {
    return shape.inner;
  }
  const std::size_t per_leaf =
      config_.num_classes == 2 ? 1
                               : static_cast<std::size_t>(config_.num_classes);
  return shape.inner + shape.leaves * per_leaf;
}

void SaveVfdtConfig(serial::Writer& writer, const VfdtConfig& config) {
  writer.I32(config.num_features);
  writer.I32(config.num_classes);
  writer.Size(config.grace_period);
  writer.F64(config.split_confidence);
  writer.F64(config.tie_threshold);
  writer.U32(static_cast<std::uint32_t>(config.leaf_prediction));
  writer.I32(config.num_split_candidates);
  writer.I32(config.subspace_size);
  writer.Size(config.nominal_features.size());
  for (int j : config.nominal_features) writer.I32(j);
  writer.U64(config.seed);
}

VfdtConfig LoadVfdtConfig(serial::Reader& reader) {
  VfdtConfig config;
  config.num_features = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "VFDT feature count"));
  config.num_classes = static_cast<int>(serial::CheckedRange(
      reader.I32(), 2, serial::kMaxClasses, "VFDT class count"));
  // Every leaf allocates one observer per feature with per-class state;
  // bound the product so a hostile config cannot demand gigabytes.
  serial::Check(static_cast<std::uint64_t>(config.num_features) *
                        static_cast<std::uint64_t>(config.num_classes) <=
                    static_cast<std::uint64_t>(serial::kMaxVector),
                "VFDT observer dimensions exceed the archive limit");
  config.grace_period = reader.Size(std::size_t{1} << 62);
  config.split_confidence =
      serial::CheckedFinite(reader.F64(), "VFDT split confidence");
  config.tie_threshold =
      serial::CheckedFinite(reader.F64(), "VFDT tie threshold");
  const std::uint32_t leaf = reader.U32();
  serial::Check(leaf <= 1, "VFDT leaf prediction mode out of range");
  config.leaf_prediction = static_cast<LeafPrediction>(leaf);
  config.num_split_candidates = static_cast<int>(serial::CheckedRange(
      reader.I32(), 0, 1 << 20, "VFDT split candidate count"));
  config.subspace_size = static_cast<int>(serial::CheckedRange(
      reader.I32(), 0, serial::kMaxFeatures, "VFDT subspace size"));
  const std::size_t num_nominal = reader.Size(serial::kMaxVector);
  config.nominal_features.reserve(
      std::min<std::size_t>(num_nominal, 4096));
  for (std::size_t i = 0; i < num_nominal; ++i) {
    config.nominal_features.push_back(static_cast<int>(serial::CheckedRange(
        reader.I32(), 0, config.num_features - 1, "nominal feature index")));
  }
  config.seed = reader.U64();
  return config;
}

void Vfdt::SaveBody(serial::Writer& writer) const {
  SaveVfdtConfig(writer, config_);
  root_->Save(writer);
  writer.Engine(rng_.engine());
}

std::unique_ptr<Vfdt> Vfdt::LoadBody(serial::Reader& reader) {
  const VfdtConfig config = LoadVfdtConfig(reader);
  auto tree = std::make_unique<Vfdt>(config);
  *tree->root_ = Node::Load(reader, config, 0);
  // Engine last: restored after every construction-time draw has happened.
  reader.Engine(&tree->rng_.engine());
  return tree;
}

void Vfdt::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagVfdt);
  SaveBody(writer);
}

std::unique_ptr<Vfdt> Vfdt::Load(std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagVfdt);
  return LoadBody(reader);
}

std::size_t Vfdt::NumParameters() const {
  TreeShape shape;
  Walk(root_.get(), 0, &shape);
  // One parameter (split value) per inner node; 1 per MC leaf; m per class
  // for NB leaves (conditional probabilities), m for binary.
  std::size_t per_leaf = 1;
  if (config_.leaf_prediction == LeafPrediction::kNaiveBayesAdaptive) {
    per_leaf = static_cast<std::size_t>(config_.num_features) *
               (config_.num_classes == 2 ? 1 : config_.num_classes);
  }
  return shape.inner + shape.leaves * per_leaf;
}

}  // namespace dmt::trees
