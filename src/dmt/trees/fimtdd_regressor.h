// FIMT-DD in its ORIGINAL form (Ikonomovska, Gama & Dzeroski, 2011):
// an incremental regression model tree. Splits maximize the standard
// deviation reduction of the numeric target, accepted through the
// Hoeffding-bound ratio test; leaves carry incremental linear models; a
// Page-Hinkley test per inner node monitors the absolute residual and
// deletes the subtree on alert (the drift adjustment strategy the paper's
// classification adaptation also uses).
//
// This is the natural head-to-head competitor of the regression Dynamic
// Model Tree (core/dmt_regressor.h).
#ifndef DMT_TREES_FIMTDD_REGRESSOR_H_
#define DMT_TREES_FIMTDD_REGRESSOR_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "dmt/common/random.h"
#include "dmt/drift/page_hinkley.h"
#include "dmt/linear/linear_regressor.h"

namespace dmt::trees {

struct FimtDdRegressorConfig {
  int num_features = 0;
  std::size_t grace_period = 200;
  double split_confidence = 0.01;
  double tie_threshold = 0.05;
  double leaf_learning_rate = 0.01;
  int num_bins = 64;
  double feature_lo = 0.0;
  double feature_hi = 1.0;
  drift::PageHinkleyConfig page_hinkley;
  std::uint64_t seed = 42;
};

class FimtDdRegressor {
 public:
  explicit FimtDdRegressor(const FimtDdRegressorConfig& config);
  ~FimtDdRegressor();

  void PartialFit(const linear::RegressionBatch& batch);
  void TrainInstance(std::span<const double> x, double y);
  double Predict(std::span<const double> x) const;

  std::size_t NumSplits() const;
  std::size_t NumParameters() const;
  std::string name() const { return "FIMT-DD-R"; }

  std::size_t NumInnerNodes() const;
  std::size_t NumLeaves() const;
  std::size_t NumPrunes() const { return num_prunes_; }

  // --- Persistence (binary archive; see serial/archive.h) ---
  // Config, prune count, recursive node records (target histograms, leaf
  // linear-model state, Page-Hinkley tests) and the RNG engine, written
  // last so Load restores it after construction-time weight draws.
  void Save(std::ostream& out) const;
  static std::unique_ptr<FimtDdRegressor> Load(std::istream& in);

 private:
  struct Node;

  void AttemptSplit(Node* leaf);

  FimtDdRegressorConfig config_;
  Rng rng_;
  std::unique_ptr<Node> root_;
  std::size_t num_prunes_ = 0;
};

}  // namespace dmt::trees

#endif  // DMT_TREES_FIMTDD_REGRESSOR_H_
