// FIMT-DD (Ikonomovska, Gama & Dzeroski, 2011), adapted for classification
// exactly as in the paper (Sec. VI-C, footnote 2): the original algorithm is
// a regression model tree, so the class index serves as the numeric target
// for the standard-deviation-reduction (SDR) split criterion, leaves carry
// incremental GLM models (learning rate 0.01) for prediction, splits are
// accepted through a Hoeffding-bound ratio test (confidence threshold 0.01,
// tie threshold 0.05), and a per-node Page-Hinkley test implements the
// authors' second drift adjustment strategy: subtrees are deleted where the
// test alerts.
//
// Contrast with the Dynamic Model Tree (Sec. V-D of the paper): FIMT-DD
// relies on a purity measure plus Hoeffding's inequality, needs an explicit
// drift detector, and stops updating inner-node models after splitting.
#ifndef DMT_TREES_FIMTDD_H_
#define DMT_TREES_FIMTDD_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dmt/common/classifier.h"
#include "dmt/common/random.h"
#include "dmt/drift/page_hinkley.h"
#include "dmt/linear/glm.h"
#include "dmt/trees/split_criteria.h"

namespace dmt::trees {

struct FimtDdConfig {
  int num_features = 0;
  int num_classes = 2;
  std::size_t grace_period = 200;
  // Paper defaults: Hoeffding significance threshold 0.01, tie break 0.05,
  // simple-model learning rate 0.01.
  double split_confidence = 0.01;
  double tie_threshold = 0.05;
  double leaf_learning_rate = 0.01;
  // Per-feature target histogram resolution over `feature_lo..feature_hi`
  // (features are min-max normalized by the evaluation harness).
  int num_bins = 64;
  double feature_lo = 0.0;
  double feature_hi = 1.0;
  drift::PageHinkleyConfig page_hinkley;
  std::uint64_t seed = 42;
};

class FimtDd : public Classifier {
 public:
  explicit FimtDd(const FimtDdConfig& config);
  ~FimtDd() override;

  void PartialFit(const Batch& batch) override;
  int num_classes() const override { return config_.num_classes; }
  void PredictProbaInto(std::span<const double> x,
                        std::span<double> out) const override;
  std::size_t NumSplits() const override;
  std::size_t NumParameters() const override;
  std::string name() const override { return "FIMT-DD"; }

  std::size_t NumInnerNodes() const;
  std::size_t NumLeaves() const;
  std::size_t NumPrunes() const { return num_prunes_; }

  void TrainInstance(std::span<const double> x, int y);

  // Caches "fimtdd.*" counters and the shared "ph.resets" destination the
  // per-node Page-Hinkley tests bind to (existing nodes are re-bound by a
  // tree walk; nodes created later bind at construction).
  void AttachTelemetry(obs::TelemetryRegistry* registry) override;

  // --- Persistence (binary archive; see serial/archive.h) ---
  // Config, prune count, recursive node records (SDR histograms, leaf GLM
  // state, Page-Hinkley tests) and the RNG engine, written last so Load
  // restores it after construction-time GLM weight draws.
  void Save(std::ostream& out) const override;
  static std::unique_ptr<FimtDd> Load(std::istream& in);
  void SaveBody(serial::Writer& writer) const;
  static std::unique_ptr<FimtDd> LoadBody(serial::Reader& reader);

 private:
  struct Node;

  void AttemptSplit(Node* leaf);
  void BindNodeTelemetry(Node* node);

  FimtDdConfig config_;
  Rng rng_;
  std::unique_ptr<Node> root_;
  std::size_t num_prunes_ = 0;
  // Telemetry destinations, null until AttachTelemetry.
  std::uint64_t* split_attempts_counter_ = nullptr;
  std::uint64_t* splits_counter_ = nullptr;
  std::uint64_t* prunes_counter_ = nullptr;
  std::uint64_t* ph_resets_counter_ = nullptr;
};

}  // namespace dmt::trees

#endif  // DMT_TREES_FIMTDD_H_
