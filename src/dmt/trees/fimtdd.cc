#include "dmt/trees/fimtdd.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"
#include "dmt/common/sanitize.h"
#include "dmt/obs/telemetry.h"
#include "dmt/serial/model_io.h"

namespace dmt::trees {

namespace {

// Per-class counts of one histogram bin. The classification adaptation of
// FIMT-DD treats the one-hot encoded label as a multi-target regression
// problem: the SDR of a split is the summed standard-deviation reduction
// over the per-class indicator targets (a Bernoulli indicator's sufficient
// statistic is just its count). A raw class *index* as the numeric target
// would make the criterion depend on the arbitrary label encoding and fail
// beyond binary problems.
struct BinCounts {
  std::vector<double> class_counts;
  double n = 0.0;
};

// Aggregated per-class statistics of a candidate side.
struct SideCounts {
  std::vector<double> class_counts;
  double n = 0.0;

  explicit SideCounts(int num_classes) : class_counts(num_classes, 0.0) {}
  void Merge(const BinCounts& bin) {
    for (std::size_t c = 0; c < class_counts.size(); ++c) {
      class_counts[c] += bin.class_counts[c];
    }
    n += bin.n;
  }
  // Summed standard deviation of the per-class Bernoulli indicators.
  double SummedStdDev() const {
    if (n <= 1.0) return 0.0;
    double sum = 0.0;
    for (double count : class_counts) {
      const double p = count / n;
      const double var = p * (1.0 - p);
      sum += var > 0.0 ? std::sqrt(var) : 0.0;
    }
    return sum;
  }
};

// Per-feature histogram of one-hot target statistics, used to score SDR
// split candidates at bin boundaries. This is the bounded-memory stand-in
// for FIMT-DD's binary search trees.
class FeatureTargetHistogram {
 public:
  FeatureTargetHistogram(int num_bins, int num_classes, double lo, double hi)
      : lo_(lo),
        width_((hi - lo) / num_bins),
        num_classes_(num_classes),
        bins_(num_bins) {
    for (BinCounts& bin : bins_) bin.class_counts.resize(num_classes, 0.0);
  }

  void Add(double value, int y) {
    BinCounts& bin = bins_[BinOf(value)];
    bin.class_counts[y] += 1.0;
    bin.n += 1.0;
  }

  // Best binary split "x <= boundary" by multi-target SDR.
  void BestSplit(const SideCounts& parent, double* best_sdr,
                 double* best_threshold) const {
    *best_sdr = 0.0;
    *best_threshold = lo_;
    const double parent_sd = parent.SummedStdDev();
    SideCounts left(num_classes_);
    for (std::size_t b = 0; b + 1 < bins_.size(); ++b) {
      left.Merge(bins_[b]);
      const double n_right = parent.n - left.n;
      if (left.n < 1.0 || n_right < 1.0) continue;
      SideCounts right(num_classes_);
      for (int c = 0; c < num_classes_; ++c) {
        right.class_counts[c] = parent.class_counts[c] - left.class_counts[c];
      }
      right.n = n_right;
      const double sdr = parent_sd -
                         (left.n / parent.n) * left.SummedStdDev() -
                         (right.n / parent.n) * right.SummedStdDev();
      if (sdr > *best_sdr) {
        *best_sdr = sdr;
        *best_threshold = lo_ + width_ * static_cast<double>(b + 1);
      }
    }
  }

  // Bin contents only; geometry (lo/width/classes) re-derives from the tree
  // config on Load.
  void Save(serial::Writer& writer) const {
    for (const BinCounts& bin : bins_) {
      writer.VecF64(bin.class_counts);
      writer.F64(bin.n);
    }
  }
  void LoadBins(serial::Reader& reader) {
    for (BinCounts& bin : bins_) {
      bin.class_counts =
          reader.VecF64Exact(static_cast<std::size_t>(num_classes_));
      bin.n = reader.F64();
    }
  }

 private:
  int BinOf(double value) const {
    const int bin = static_cast<int>((value - lo_) / width_);
    return std::clamp(bin, 0, static_cast<int>(bins_.size()) - 1);
  }

  double lo_;
  double width_;
  int num_classes_;
  std::vector<BinCounts> bins_;
};

}  // namespace

struct FimtDd::Node {
  int split_feature = -1;  // < 0 marks a leaf
  double split_value = 0.0;
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  // Leaf statistics for split finding.
  std::vector<FeatureTargetHistogram> histograms;
  SideCounts target_stats;
  double weight_seen = 0.0;
  double weight_at_last_attempt = 0.0;

  // The simple (linear) leaf model; inner nodes stop updating theirs, which
  // is one of the documented differences to the DMT.
  linear::Glm model;
  // Per-node Page-Hinkley drift test on the 0/1 error of the subtree.
  drift::PageHinkley drift_test;

  Node(const FimtDdConfig& config, Rng* rng)
      : histograms(config.num_features,
                   FeatureTargetHistogram(config.num_bins, config.num_classes,
                                          config.feature_lo,
                                          config.feature_hi)),
        target_stats(config.num_classes),
        model({.num_features = config.num_features,
               .num_classes = config.num_classes,
               .learning_rate = config.leaf_learning_rate},
              rng),
        drift_test(config.page_hinkley) {}

  bool is_leaf() const { return split_feature < 0; }

  void Save(serial::Writer& writer) const;
  static std::unique_ptr<Node> Load(serial::Reader& reader,
                                    const FimtDdConfig& config, Rng* rng,
                                    std::size_t depth);
};

void FimtDd::Node::Save(serial::Writer& writer) const {
  writer.I32(split_feature);
  writer.F64(split_value);
  writer.Size(histograms.size());
  for (const FeatureTargetHistogram& histogram : histograms) {
    histogram.Save(writer);
  }
  writer.VecF64(target_stats.class_counts);
  writer.F64(target_stats.n);
  writer.F64(weight_seen);
  writer.F64(weight_at_last_attempt);
  model.SaveState(writer);
  drift_test.Save(writer);
  if (!is_leaf()) {
    left->Save(writer);
    right->Save(writer);
  }
}

std::unique_ptr<FimtDd::Node> FimtDd::Node::Load(serial::Reader& reader,
                                                 const FimtDdConfig& config,
                                                 Rng* rng, std::size_t depth) {
  serial::Check(depth <= serial::kMaxTreeDepth,
                "FIMT-DD node depth exceeds the archive limit");
  // Construction draws GLM initial weights from `rng`; the caller restores
  // the tree engine after the whole tree is rebuilt.
  auto node = std::make_unique<Node>(config, rng);
  const std::int32_t split_feature = reader.I32();
  serial::Check(split_feature >= -1 && split_feature < config.num_features,
                "FIMT-DD split feature out of range");
  node->split_feature = static_cast<int>(split_feature);
  node->split_value = reader.F64();
  const std::size_t features = static_cast<std::size_t>(config.num_features);
  // Split nodes clear their histograms; leaves keep one per feature (the
  // training path indexes histograms[j] for every feature).
  const std::size_t num_histograms = reader.Size(features);
  serial::Check(num_histograms == 0 || num_histograms == features,
                "FIMT-DD histogram count is neither empty nor one per feature");
  if (num_histograms == 0) {
    node->histograms.clear();
  } else {
    for (FeatureTargetHistogram& histogram : node->histograms) {
      histogram.LoadBins(reader);
    }
  }
  node->target_stats.class_counts =
      reader.VecF64Exact(static_cast<std::size_t>(config.num_classes));
  node->target_stats.n = reader.F64();
  node->weight_seen = reader.F64();
  node->weight_at_last_attempt = reader.F64();
  node->model.LoadState(reader);
  node->drift_test = drift::PageHinkley::Load(reader);
  if (!node->is_leaf()) {
    node->left = Load(reader, config, rng, depth + 1);
    node->right = Load(reader, config, rng, depth + 1);
  } else {
    serial::Check(num_histograms == features,
                  "FIMT-DD leaf is missing its histograms");
  }
  return node;
}

FimtDd::FimtDd(const FimtDdConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_classes >= 2);
  root_ = std::make_unique<Node>(config_, &rng_);
}

FimtDd::~FimtDd() = default;

void FimtDd::BindNodeTelemetry(Node* node) {
  node->drift_test.BindTelemetry(ph_resets_counter_);
}

void FimtDd::AttachTelemetry(obs::TelemetryRegistry* registry) {
  if (registry == nullptr) return;
  split_attempts_counter_ = registry->Counter("fimtdd.split_attempts");
  splits_counter_ = registry->Counter("fimtdd.splits");
  prunes_counter_ = registry->Counter("fimtdd.prunes");
  ph_resets_counter_ = registry->Counter("ph.resets");
  auto walk = [&](auto&& self, Node* node) -> void {
    BindNodeTelemetry(node);
    if (node->is_leaf()) return;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
}

void FimtDd::TrainInstance(std::span<const double> x, int y) {
  // Non-finite rows are unusable: BinOf would evaluate
  // static_cast<int>(NaN) -- undefined behavior -- and the histogram and
  // Page-Hinkley state would be poisoned (DESIGN.md Sec. 8).
  if (!RowIsFinite(x) || y < 0 || y >= config_.num_classes) return;
  // Route to the leaf, remembering the path for drift monitoring.
  std::vector<Node*> path;
  Node* node = root_.get();
  while (true) {
    path.push_back(node);
    if (node->is_leaf()) break;
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  Node* leaf = path.back();

  // Page-Hinkley on the 0/1 error of the active leaf model, checked at
  // every node of the path; an alert prunes that node's subtree (the
  // "second adjustment strategy": delete the branch and relearn).
  const double error = leaf->model.Predict(x) == y ? 0.0 : 1.0;
  for (Node* n : path) {
    if (!n->is_leaf() && n->drift_test.Update(error)) {
      n->split_feature = -1;
      n->left.reset();
      n->right.reset();
      n->histograms.assign(
          config_.num_features,
          FeatureTargetHistogram(config_.num_bins, config_.num_classes,
                                 config_.feature_lo, config_.feature_hi));
      n->target_stats = SideCounts(config_.num_classes);
      n->weight_seen = 0.0;
      n->weight_at_last_attempt = 0.0;
      ++num_prunes_;
      DMT_TELEMETRY_COUNT(prunes_counter_);
      leaf = n;
      break;
    }
  }

  // Update leaf statistics and the leaf model.
  leaf->target_stats.class_counts[y] += 1.0;
  leaf->target_stats.n += 1.0;
  leaf->weight_seen += 1.0;
  for (int j = 0; j < config_.num_features; ++j) {
    leaf->histograms[j].Add(x[j], y);
  }
  Batch one(config_.num_features);
  one.Add(x, y);
  leaf->model.Fit(one);

  if (leaf->weight_seen - leaf->weight_at_last_attempt >=
      static_cast<double>(config_.grace_period)) {
    leaf->weight_at_last_attempt = leaf->weight_seen;
    AttemptSplit(leaf);
  }
}

void FimtDd::PartialFit(const Batch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    TrainInstance(batch.row(i), batch.label(i));
  }
}

void FimtDd::AttemptSplit(Node* leaf) {
  DMT_TELEMETRY_COUNT(split_attempts_counter_);
  double best_sdr = 0.0;
  double second_sdr = 0.0;
  int best_feature = -1;
  double best_threshold = 0.0;
  for (int j = 0; j < config_.num_features; ++j) {
    double sdr = 0.0;
    double threshold = 0.0;
    leaf->histograms[j].BestSplit(leaf->target_stats, &sdr, &threshold);
    if (sdr > best_sdr) {
      second_sdr = best_sdr;
      best_sdr = sdr;
      best_feature = j;
      best_threshold = threshold;
    } else if (sdr > second_sdr) {
      second_sdr = sdr;
    }
  }
  if (best_feature < 0 || best_sdr <= 0.0) return;

  // FIMT-DD's ratio test: split when the second-best SDR is significantly
  // smaller than the best (ratio in [0,1], range 1). Once the Hoeffding
  // bound undercuts the tie threshold, the tie threshold takes over as the
  // required margin -- a plain "epsilon < tie -> always split" rule would
  // split every grace period regardless of merit and grow without bound.
  const double ratio = second_sdr / best_sdr;
  const double epsilon =
      HoeffdingBound(1.0, config_.split_confidence, leaf->weight_seen);
  if (ratio < 1.0 - std::min(epsilon, config_.tie_threshold)) {
    DMT_TELEMETRY_COUNT(splits_counter_);
    leaf->split_feature = best_feature;
    leaf->split_value = best_threshold;
    leaf->left = std::make_unique<Node>(config_, &rng_);
    leaf->right = std::make_unique<Node>(config_, &rng_);
    BindNodeTelemetry(leaf->left.get());
    BindNodeTelemetry(leaf->right.get());
    // Children warm-start from the parent's optimized model.
    leaf->left->model.WarmStartFrom(leaf->model);
    leaf->right->model.WarmStartFrom(leaf->model);
    leaf->histograms.clear();
  }
}

void FimtDd::PredictProbaInto(std::span<const double> x,
                              std::span<double> out) const {
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  node->model.PredictProbaInto(x, out);
}

std::size_t FimtDd::NumInnerNodes() const {
  std::size_t inner = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) return;
    ++inner;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return inner;
}

std::size_t FimtDd::NumLeaves() const {
  std::size_t leaves = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) {
      ++leaves;
      return;
    }
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return leaves;
}

std::size_t FimtDd::NumSplits() const {
  // Model leaves: +1 split each for binary targets, +c for multiclass
  // (paper Sec. VI-D2).
  const std::size_t per_leaf =
      config_.num_classes == 2 ? 1
                               : static_cast<std::size_t>(config_.num_classes);
  return NumInnerNodes() + NumLeaves() * per_leaf;
}

std::size_t FimtDd::NumParameters() const {
  // 1 split value per inner node; m weights per class (binary: m) per leaf.
  const std::size_t per_leaf =
      static_cast<std::size_t>(config_.num_features) *
      (config_.num_classes == 2 ? 1 : config_.num_classes);
  return NumInnerNodes() + NumLeaves() * per_leaf;
}

void FimtDd::SaveBody(serial::Writer& writer) const {
  writer.I32(config_.num_features);
  writer.I32(config_.num_classes);
  writer.Size(config_.grace_period);
  writer.F64(config_.split_confidence);
  writer.F64(config_.tie_threshold);
  writer.F64(config_.leaf_learning_rate);
  writer.I32(config_.num_bins);
  writer.F64(config_.feature_lo);
  writer.F64(config_.feature_hi);
  writer.Size(config_.page_hinkley.min_instances);
  writer.F64(config_.page_hinkley.delta);
  writer.F64(config_.page_hinkley.threshold);
  writer.F64(config_.page_hinkley.alpha);
  writer.U64(config_.seed);
  writer.Size(num_prunes_);
  root_->Save(writer);
  writer.Engine(rng_.engine());
}

std::unique_ptr<FimtDd> FimtDd::LoadBody(serial::Reader& reader) {
  FimtDdConfig config;
  config.num_features = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "FIMT-DD feature count"));
  config.num_classes = static_cast<int>(serial::CheckedRange(
      reader.I32(), 2, serial::kMaxClasses, "FIMT-DD class count"));
  config.grace_period = reader.Size(std::size_t{1} << 62);
  config.split_confidence =
      serial::CheckedFinite(reader.F64(), "FIMT-DD split confidence");
  config.tie_threshold =
      serial::CheckedFinite(reader.F64(), "FIMT-DD tie threshold");
  config.leaf_learning_rate =
      serial::CheckedFinite(reader.F64(), "FIMT-DD learning rate");
  config.num_bins = static_cast<int>(
      serial::CheckedRange(reader.I32(), 1, 1 << 20, "FIMT-DD bin count"));
  // Per-leaf memory is bins * classes doubles per feature; bound the product
  // so a hostile config cannot demand gigabytes before the stream runs dry.
  serial::Check(static_cast<std::uint64_t>(config.num_features) *
                        static_cast<std::uint64_t>(config.num_classes) *
                        static_cast<std::uint64_t>(config.num_bins) <=
                    static_cast<std::uint64_t>(serial::kMaxVector),
                "FIMT-DD histogram dimensions exceed the archive limit");
  config.feature_lo = serial::CheckedFinite(reader.F64(), "FIMT-DD range lo");
  config.feature_hi = serial::CheckedFinite(reader.F64(), "FIMT-DD range hi");
  // A degenerate range makes the bin width zero and BinOf would cast an
  // infinite quotient to int (undefined behavior).
  serial::Check(config.feature_hi > config.feature_lo,
                "FIMT-DD feature range is empty");
  config.page_hinkley.min_instances = reader.Size(std::size_t{1} << 62);
  config.page_hinkley.delta =
      serial::CheckedFinite(reader.F64(), "Page-Hinkley delta");
  config.page_hinkley.threshold =
      serial::CheckedFinite(reader.F64(), "Page-Hinkley threshold");
  config.page_hinkley.alpha =
      serial::CheckedFinite(reader.F64(), "Page-Hinkley alpha");
  config.seed = reader.U64();
  auto tree = std::make_unique<FimtDd>(config);
  tree->num_prunes_ = reader.Size(std::size_t{1} << 62);
  tree->root_ = Node::Load(reader, config, &tree->rng_, 0);
  // Engine last: node construction above drew GLM initial weights.
  reader.Engine(&tree->rng_.engine());
  return tree;
}

void FimtDd::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagFimtDd);
  SaveBody(writer);
}

std::unique_ptr<FimtDd> FimtDd::Load(std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagFimtDd);
  return LoadBody(reader);
}

}  // namespace dmt::trees
