#include "dmt/trees/efdt.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"
#include "dmt/common/sanitize.h"
#include "dmt/obs/telemetry.h"
#include "dmt/serial/model_io.h"
#include "dmt/trees/split_criteria.h"

namespace dmt::trees {

struct Efdt::Node {
  int split_feature = -1;  // < 0 marks a leaf
  double split_value = 0.0;
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  // Statistics are maintained at every node (leaf and inner), which is what
  // lets EFDT revisit decisions.
  std::vector<double> class_counts;
  std::vector<NumericObserver> observers;
  double weight_seen = 0.0;
  double weight_at_last_check = 0.0;

  Node(int num_features, int num_classes)
      : class_counts(num_classes, 0.0),
        observers(num_features, NumericObserver(num_classes)) {}

  bool is_leaf() const { return split_feature < 0; }

  void BecomeLeaf() {
    split_feature = -1;
    left.reset();
    right.reset();
  }

  void Save(serial::Writer& writer) const;
  static Node Load(serial::Reader& reader, const EfdtConfig& config,
                   std::size_t depth);
};

void Efdt::Node::Save(serial::Writer& writer) const {
  writer.I32(split_feature);
  writer.F64(split_value);
  writer.VecF64(class_counts);
  // EFDT keeps observers at every node (leaf and inner), so no count prefix
  // is needed: there is always exactly one observer per feature.
  for (const NumericObserver& obs : observers) obs.Save(writer);
  writer.F64(weight_seen);
  writer.F64(weight_at_last_check);
  if (!is_leaf()) {
    left->Save(writer);
    right->Save(writer);
  }
}

Efdt::Node Efdt::Node::Load(serial::Reader& reader, const EfdtConfig& config,
                            std::size_t depth) {
  serial::Check(depth <= serial::kMaxTreeDepth,
                "EFDT node depth exceeds the archive limit");
  Node node(config.num_features, config.num_classes);
  const std::int32_t split_feature = reader.I32();
  serial::Check(split_feature >= -1 && split_feature < config.num_features,
                "EFDT split feature out of range");
  node.split_feature = static_cast<int>(split_feature);
  node.split_value = reader.F64();
  node.class_counts =
      reader.VecF64Exact(static_cast<std::size_t>(config.num_classes));
  for (int j = 0; j < config.num_features; ++j) {
    node.observers[j] = NumericObserver::Load(reader, config.num_classes);
  }
  node.weight_seen = reader.F64();
  node.weight_at_last_check = reader.F64();
  if (!node.is_leaf()) {
    node.left = std::make_unique<Node>(
        Node::Load(reader, config, depth + 1));
    node.right = std::make_unique<Node>(
        Node::Load(reader, config, depth + 1));
  }
  return node;
}

Efdt::Efdt(const EfdtConfig& config) : config_(config) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_classes >= 2);
  root_ = std::make_unique<Node>(config.num_features, config.num_classes);
}

Efdt::~Efdt() = default;

void Efdt::AttachTelemetry(obs::TelemetryRegistry* registry) {
  if (registry == nullptr) return;
  split_attempts_counter_ = registry->Counter("efdt.split_attempts");
  splits_counter_ = registry->Counter("efdt.splits");
  reevaluations_counter_ = registry->Counter("efdt.reevaluations");
  subtree_kills_counter_ = registry->Counter("efdt.subtree_kills");
  split_replacements_counter_ =
      registry->Counter("efdt.split_replacements");
}

SplitSuggestion Efdt::BestSuggestion(const Node& node) const {
  SplitSuggestion best;
  for (int j = 0; j < config_.num_features; ++j) {
    SplitSuggestion s = node.observers[j].BestSplit(
        j, node.class_counts, config_.num_split_candidates);
    if (s.merit > best.merit) best = std::move(s);
  }
  return best;
}

void Efdt::TrainInstance(std::span<const double> x, int y) {
  // Non-finite rows would poison every observer along the path; skip them
  // (DESIGN.md Sec. 8).
  if (!RowIsFinite(x) || y < 0 || y >= config_.num_classes) return;
  Node* node = root_.get();
  while (true) {
    node->class_counts[y] += 1.0;
    node->weight_seen += 1.0;
    for (int j = 0; j < config_.num_features; ++j) {
      node->observers[j].Add(x[j], y);
    }
    if (node->is_leaf()) {
      if (node->weight_seen - node->weight_at_last_check >=
          static_cast<double>(config_.grace_period)) {
        node->weight_at_last_check = node->weight_seen;
        AttemptInitialSplit(node);
      }
      // If the leaf just split, the instance has already updated its
      // statistics; the fresh children start empty, as in the reference
      // algorithm.
      return;
    }
    if (node->weight_seen - node->weight_at_last_check >=
        static_cast<double>(config_.reevaluation_period)) {
      node->weight_at_last_check = node->weight_seen;
      ReevaluateSplit(node);
      if (node->is_leaf()) return;  // split was pruned away
    }
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
}

void Efdt::PartialFit(const Batch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    TrainInstance(batch.row(i), batch.label(i));
  }
}

void Efdt::AttemptInitialSplit(Node* leaf) {
  DMT_TELEMETRY_COUNT(split_attempts_counter_);
  double nonzero = 0.0;
  for (double c : leaf->class_counts) nonzero += c > 0.0 ? 1.0 : 0.0;
  if (nonzero < 2.0) return;

  const SplitSuggestion best = BestSuggestion(*leaf);
  if (best.feature < 0) return;
  const double range = std::log2(static_cast<double>(config_.num_classes));
  const double epsilon =
      HoeffdingBound(range, config_.split_confidence, leaf->weight_seen);
  // EFDT: the candidate only needs to beat the *null* split (merit 0).
  if (best.merit - 0.0 > epsilon ||
      (epsilon < config_.tie_threshold && best.merit > 0.0)) {
    DMT_TELEMETRY_COUNT(splits_counter_);
    leaf->split_feature = best.feature;
    leaf->split_value = best.threshold;
    leaf->left =
        std::make_unique<Node>(config_.num_features, config_.num_classes);
    leaf->right =
        std::make_unique<Node>(config_.num_features, config_.num_classes);
  }
}

void Efdt::ReevaluateSplit(Node* inner) {
  DMT_TELEMETRY_COUNT(reevaluations_counter_);
  const SplitSuggestion best = BestSuggestion(*inner);
  const double range = std::log2(static_cast<double>(config_.num_classes));
  const double epsilon =
      HoeffdingBound(range, config_.split_confidence, inner->weight_seen);

  // Merit of the split currently installed, recomputed from the node's own
  // (post-split) statistics.
  const std::vector<double> left_counts =
      inner->observers[inner->split_feature].CountsBelow(inner->split_value);
  std::vector<double> right_counts(inner->class_counts.size());
  for (std::size_t c = 0; c < right_counts.size(); ++c) {
    right_counts[c] =
        std::max(0.0, inner->class_counts[c] - left_counts[c]);
  }
  const double current_merit =
      InfoGain(inner->class_counts, left_counts, right_counts);

  if (best.merit <= 0.0 && 0.0 - current_merit > epsilon) {
    // The null split dominates: kill the subtree.
    DMT_TELEMETRY_COUNT(subtree_kills_counter_);
    inner->BecomeLeaf();
    return;
  }
  if (best.feature >= 0 && best.feature != inner->split_feature &&
      best.merit - current_merit > epsilon) {
    // A strictly better attribute emerged: replace the split (and subtree).
    DMT_TELEMETRY_COUNT(split_replacements_counter_);
    inner->split_feature = best.feature;
    inner->split_value = best.threshold;
    inner->left =
        std::make_unique<Node>(config_.num_features, config_.num_classes);
    inner->right =
        std::make_unique<Node>(config_.num_features, config_.num_classes);
  }
}

// Prediction uses majority class at the routed leaf (the paper configures
// majority voting in the Hoeffding-tree baselines).
void Efdt::PredictProbaInto(std::span<const double> x,
                            std::span<double> out) const {
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  if (node->weight_seen <= 0.0) {
    std::fill(out.begin(), out.end(), 1.0 / config_.num_classes);
    return;
  }
  for (int c = 0; c < config_.num_classes; ++c) {
    out[c] = node->class_counts[c] / node->weight_seen;
  }
}

std::size_t Efdt::NumInnerNodes() const {
  std::size_t inner = 0;
  std::size_t leaves = 0;
  // Local recursive lambda keeps Node private.
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) {
      ++leaves;
      return;
    }
    ++inner;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return inner;
}

std::size_t Efdt::NumLeaves() const {
  std::size_t inner = 0;
  std::size_t leaves = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) {
      ++leaves;
      return;
    }
    ++inner;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  (void)inner;
  return leaves;
}

std::size_t Efdt::NumSplits() const {
  // Majority-class leaves: only inner nodes count (paper Sec. VI-D2).
  return NumInnerNodes();
}

std::size_t Efdt::NumParameters() const {
  // One split value per inner node plus one majority label per leaf.
  return NumInnerNodes() + NumLeaves();
}

void Efdt::SaveBody(serial::Writer& writer) const {
  writer.I32(config_.num_features);
  writer.I32(config_.num_classes);
  writer.Size(config_.grace_period);
  writer.F64(config_.split_confidence);
  writer.F64(config_.tie_threshold);
  writer.Size(config_.reevaluation_period);
  writer.I32(config_.num_split_candidates);
  root_->Save(writer);
}

std::unique_ptr<Efdt> Efdt::LoadBody(serial::Reader& reader) {
  EfdtConfig config;
  config.num_features = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "EFDT feature count"));
  config.num_classes = static_cast<int>(serial::CheckedRange(
      reader.I32(), 2, serial::kMaxClasses, "EFDT class count"));
  serial::Check(static_cast<std::uint64_t>(config.num_features) *
                        static_cast<std::uint64_t>(config.num_classes) <=
                    static_cast<std::uint64_t>(serial::kMaxVector),
                "EFDT observer dimensions exceed the archive limit");
  config.grace_period = reader.Size(std::size_t{1} << 62);
  config.split_confidence =
      serial::CheckedFinite(reader.F64(), "EFDT split confidence");
  config.tie_threshold =
      serial::CheckedFinite(reader.F64(), "EFDT tie threshold");
  config.reevaluation_period = reader.Size(std::size_t{1} << 62);
  config.num_split_candidates = static_cast<int>(serial::CheckedRange(
      reader.I32(), 0, 1 << 20, "EFDT split candidate count"));
  auto tree = std::make_unique<Efdt>(config);
  *tree->root_ = Node::Load(reader, config, 0);
  return tree;
}

void Efdt::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagEfdt);
  SaveBody(writer);
}

std::unique_ptr<Efdt> Efdt::Load(std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagEfdt);
  return LoadBody(reader);
}

}  // namespace dmt::trees
