// Stochastic Gradient Tree (after Gouk, Pfahringer & Frank, ACML 2019) --
// the other gradient-driven incremental tree the paper cites ([33]) for
// split finding. Included as an additional baseline.
//
// The tree predicts a raw score; each leaf carries an additive value.
// Training accumulates first- and second-order derivatives (gradient /
// hessian of the logistic loss w.r.t. the leaf score) in per-feature
// histograms. Every grace period a leaf either performs the best
// Newton-gain split -- gain computed XGBoost-style as
//   sum_children (sum g)^2 / (sum h + lambda) - (sum g)^2 / (sum h + lambda)
// when it exceeds `min_gain` -- or applies a Newton update
// -sum g / (sum h + lambda) to its value. Multiclass problems train one
// tree per class one-vs-rest over softmax-normalized scores
// (SgtClassifier).
#ifndef DMT_TREES_SGT_H_
#define DMT_TREES_SGT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dmt/common/classifier.h"

namespace dmt::serial {
class Writer;
class Reader;
}  // namespace dmt::serial

namespace dmt::trees {

struct SgtConfig {
  int num_features = 0;
  std::size_t grace_period = 200;
  // Regularization lambda of the Newton steps and gains.
  double l2_regularization = 1.0;
  // Minimum Newton gain required to split instead of updating the leaf.
  double min_split_gain = 5.0;
  // Histogram resolution per feature over [feature_lo, feature_hi].
  int num_bins = 32;
  double feature_lo = 0.0;
  double feature_hi = 1.0;
};

// Binary stochastic gradient tree: emits a raw score s(x); P(y=1) is
// sigmoid(s). Can also be driven with externally supplied gradients
// (one-vs-rest use).
class StochasticGradientTree {
 public:
  explicit StochasticGradientTree(const SgtConfig& config);
  ~StochasticGradientTree();

  // Raw additive score of the routed leaf.
  double Score(std::span<const double> x) const;

  // One observation with explicit first/second derivatives of the loss
  // w.r.t. the score at x (logistic loss: g = p - y, h = p (1 - p)).
  void TrainGradient(std::span<const double> x, double gradient,
                     double hessian);
  // Convenience: binary logistic training.
  void TrainInstance(std::span<const double> x, int y);

  std::size_t NumInnerNodes() const;
  std::size_t NumLeaves() const;

  // --- Persistence (binary archive; see serial/archive.h) ---
  // Tree-only record (no header): recursive node values and gradient
  // histograms. The config is written by the owning SgtClassifier.
  void SaveBody(serial::Writer& writer) const;
  static std::unique_ptr<StochasticGradientTree> LoadBody(
      serial::Reader& reader, const SgtConfig& config);

 private:
  struct Node;

  void MaybeSplitOrUpdate(Node* leaf);

  SgtConfig config_;
  std::unique_ptr<Node> root_;
};

// Classifier adapter: one tree (binary) or one tree per class (softmax
// one-vs-rest) with the shared Classifier interface.
class SgtClassifier : public Classifier {
 public:
  SgtClassifier(const SgtConfig& config, int num_classes);

  void PartialFit(const Batch& batch) override;
  int num_classes() const override { return num_classes_; }
  void PredictProbaInto(std::span<const double> x,
                        std::span<double> out) const override;
  std::size_t NumSplits() const override;
  std::size_t NumParameters() const override;
  std::string name() const override { return "SGT"; }

  // --- Persistence (binary archive; see serial/archive.h) ---
  void Save(std::ostream& out) const override;
  static std::unique_ptr<SgtClassifier> Load(std::istream& in);
  static std::unique_ptr<SgtClassifier> LoadBody(serial::Reader& reader);

 private:
  SgtConfig config_;
  int num_classes_;
  std::vector<std::unique_ptr<StochasticGradientTree>> trees_;
  // Softmax scratch for the one-vs-rest training loop (multiclass only).
  std::vector<double> train_scores_;
};

}  // namespace dmt::trees

#endif  // DMT_TREES_SGT_H_
