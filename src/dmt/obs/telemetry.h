// Deterministic, zero-overhead-when-disabled telemetry (DESIGN.md Sec. 7).
//
// A TelemetryRegistry is a flat, named collection of
//  * counters -- monotonic uint64 event counts (splits, prunes, ADWIN
//    shrinks, ...). Counter values depend only on the training data and the
//    seed, so they are bit-identical across runs, job counts and platforms
//    and can be pinned in golden files;
//  * gauges  -- last-written doubles (e.g. the current ADWIN window width);
//  * phase timers -- accumulated wall-clock seconds + call counts for the
//    harness phases (scale / score / train). Timers are inherently
//    run-dependent and are therefore excluded from CountersJson().
//
// Ownership and threading model: one registry per prequential run (one
// sweep cell). The registry hands out *stable* pointers into node-based
// storage, so instrumented components cache the raw pointer once at attach
// time (Classifier::AttachTelemetry) and the hot path is a single
// null-checked pointer increment -- no map lookups, no atomics. Components
// running on worker threads (ensemble members under --member-parallel)
// must NOT be handed counters; their owners aggregate deltas at batch
// boundaries on the coordinating thread instead.
//
// Disabled mode (no registry attached) leaves every cached pointer null:
// the DMT_TELEMETRY_* macros reduce to one branch on a pointer the branch
// predictor never misses, and the allocation-regression suite pins that
// training and scoring stay allocation-free either way. Defining
// DMT_TELEMETRY_DISABLED compiles the macros out entirely (the DMT_DCHECK
// pattern), for measurements where even the dead branch must go.
#ifndef DMT_OBS_TELEMETRY_H_
#define DMT_OBS_TELEMETRY_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace dmt::obs {

// Accumulated wall-clock seconds and invocations of one named phase.
struct PhaseTimer {
  double seconds = 0.0;
  std::uint64_t calls = 0;
};

class TelemetryRegistry {
 public:
  TelemetryRegistry() = default;
  // Pointer stability contract: non-copyable, non-movable.
  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  // Returns the (zero-initialized on first use) metric with `name`. The
  // returned pointer is stable for the registry's lifetime: storage is
  // node-based (std::map), which never relocates values on insert.
  std::uint64_t* Counter(const std::string& name);
  double* Gauge(const std::string& name);
  PhaseTimer* Timer(const std::string& name);

  std::size_t num_counters() const { return counters_.size(); }

  // Deterministic (sorted by name) JSON object of the counters alone --
  // the golden-file surface. Gauges and timers are excluded: gauges are
  // snapshots, timers are wall clock.
  std::string CountersJson() const;

  // Full registry as one JSON document with separate "counters", "gauges"
  // and "timers" sections, each sorted by name.
  std::string ToJson() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, PhaseTimer> timers_;
};

// RAII phase measurement; a null timer skips the clock reads entirely.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(PhaseTimer* timer) : timer_(timer) {
    if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhaseTimer() {
    if (timer_ == nullptr) return;
    timer_->seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    ++timer_->calls;
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  PhaseTimer* timer_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dmt::obs

// Null-guarded instrumentation macros (the DMT_DCHECK pattern): `counter`
// and `gauge` are cached raw pointers that stay null when no registry is
// attached. DMT_TELEMETRY_DISABLED compiles them out entirely.
#ifdef DMT_TELEMETRY_DISABLED
#define DMT_TELEMETRY_COUNT(counter) \
  do {                               \
  } while (0)
#define DMT_TELEMETRY_ADD(counter, n) \
  do {                                \
  } while (0)
#define DMT_TELEMETRY_SET(gauge, value) \
  do {                                  \
  } while (0)
#else
#define DMT_TELEMETRY_COUNT(counter)          \
  do {                                        \
    if ((counter) != nullptr) ++*(counter);   \
  } while (0)
#define DMT_TELEMETRY_ADD(counter, n)                                 \
  do {                                                                \
    if ((counter) != nullptr) *(counter) += static_cast<std::uint64_t>(n); \
  } while (0)
#define DMT_TELEMETRY_SET(gauge, value)                          \
  do {                                                           \
    if ((gauge) != nullptr) *(gauge) = static_cast<double>(value); \
  } while (0)
#endif

#endif  // DMT_OBS_TELEMETRY_H_
