#include "dmt/obs/telemetry.h"

#include <cmath>
#include <cstdio>

namespace dmt::obs {

namespace {

// Counter names are library-chosen identifiers (ASCII, no quotes), so the
// writer only needs to pass them through; matches the bench_json.h policy
// of escaping-free hand-rolled serialization.
void AppendQuoted(std::string* out, const std::string& name) {
  out->push_back('"');
  out->append(name);
  out->push_back('"');
}

void AppendDouble(std::string* out, double value) {
  // JSON has no NaN/Inf literals; "%.17g" would print bare `nan` / `inf`
  // and make the whole document unparseable (seen under fault injection,
  // where a gauge can legitimately hold a poisoned value). Emit null: the
  // reader keeps the key and sees an explicit "no finite value" marker.
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out->append(buffer);
}

}  // namespace

std::uint64_t* TelemetryRegistry::Counter(const std::string& name) {
  return &counters_[name];
}

double* TelemetryRegistry::Gauge(const std::string& name) {
  return &gauges_[name];
}

PhaseTimer* TelemetryRegistry::Timer(const std::string& name) {
  return &timers_[name];
}

std::string TelemetryRegistry::CountersJson() const {
  std::string out = "{\n";
  std::size_t i = 0;
  for (const auto& [name, value] : counters_) {
    out.append("  ");
    AppendQuoted(&out, name);
    out.append(": ");
    out.append(std::to_string(value));
    if (++i != counters_.size()) out.push_back(',');
    out.push_back('\n');
  }
  out.append("}\n");
  return out;
}

std::string TelemetryRegistry::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  std::size_t i = 0;
  for (const auto& [name, value] : counters_) {
    out.append(i++ == 0 ? "\n" : ",\n");
    out.append("    ");
    AppendQuoted(&out, name);
    out.append(": ");
    out.append(std::to_string(value));
  }
  out.append(i == 0 ? "},\n" : "\n  },\n");
  out.append("  \"gauges\": {");
  i = 0;
  for (const auto& [name, value] : gauges_) {
    out.append(i++ == 0 ? "\n" : ",\n");
    out.append("    ");
    AppendQuoted(&out, name);
    out.append(": ");
    AppendDouble(&out, value);
  }
  out.append(i == 0 ? "},\n" : "\n  },\n");
  out.append("  \"timers\": {");
  i = 0;
  for (const auto& [name, timer] : timers_) {
    out.append(i++ == 0 ? "\n" : ",\n");
    out.append("    ");
    AppendQuoted(&out, name);
    out.append(": {\"seconds\": ");
    AppendDouble(&out, timer.seconds);
    out.append(", \"calls\": ");
    out.append(std::to_string(timer.calls));
    out.push_back('}');
  }
  out.append(i == 0 ? "}\n" : "\n  }\n");
  out.append("}\n");
  return out;
}

}  // namespace dmt::obs
