// Line-delimited request protocol of the dmt_serve engine (DESIGN.md
// Sec. 14). One request per line, whitespace-tokenized:
//
//   train <stream> <csv-row>      csv-row = F features + 1 integer label
//   score <stream> <csv-row>      csv-row = F features
//   snapshot <stream> <path>      save the live model (atomic rename)
//   restore <stream> <path>       blue-green load: decode fully, then swap
//   drop <stream>                 forget the stream (model destroyed)
//   stats                         one-line JSON engine summary
//
// Every request produces exactly one response line, in request order:
// "OK ..." or "ERR <reason> ...". Feature values may be non-finite
// ("nan"/"inf" are data, handled by the engine's bad-input policy), but
// malformed numbers ("1.2.3", empty fields) are parse errors.
#ifndef DMT_SERVE_REQUEST_H_
#define DMT_SERVE_REQUEST_H_

#include <string>
#include <string_view>
#include <vector>

namespace dmt::serve {

enum class Verb { kTrain, kScore, kSnapshot, kRestore, kDrop, kStats };

struct Request {
  Verb verb = Verb::kStats;
  std::string stream_id;
  // Parsed csv-row (train: F features then the label as values.back();
  // score: F features). Empty for the non-row verbs.
  std::vector<double> values;
  std::string path;  // snapshot / restore target
};

// Parses one request line into `out` (cleared first). Returns true on
// success; on failure returns false with a short reason in `error`
// (single-line, suitable for an "ERR parse ..." response). `num_features`
// gates the row arity: train rows need exactly num_features + 1 values,
// score rows exactly num_features.
bool ParseRequestLine(std::string_view line, int num_features, Request* out,
                      std::string* error);

}  // namespace dmt::serve

#endif  // DMT_SERVE_REQUEST_H_
