#include "dmt/serve/request.h"

#include <optional>

#include "dmt/common/parse.h"

namespace dmt::serve {

namespace {

// Splits on runs of spaces/tabs; the csv-row is a single token.
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

bool ParseCsvRow(std::string_view text, std::size_t expected,
                 std::vector<double>* out, std::string* error) {
  out->clear();
  out->reserve(expected);
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = text.find(',', start);
    const std::string_view field =
        text.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start);
    // Non-finite values are legitimate (hostile) data here, so
    // require_finite is off; empty fields and trailing garbage still fail.
    const std::optional<double> value =
        ParseDouble(field, /*require_finite=*/false);
    if (!value) {
      *error = "bad csv value '" + std::string(field) + "'";
      return false;
    }
    out->push_back(*value);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (out->size() != expected) {
    *error = "expected " + std::to_string(expected) + " csv values, got " +
             std::to_string(out->size());
    return false;
  }
  return true;
}

}  // namespace

bool ParseRequestLine(std::string_view line, int num_features, Request* out,
                      std::string* error) {
  // Tolerate trailing \r so scripts written on any platform parse.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  *out = Request{};
  const std::vector<std::string_view> tokens = Tokenize(line);
  if (tokens.empty()) {
    *error = "empty request";
    return false;
  }
  const std::string_view verb = tokens[0];
  if (verb == "stats") {
    if (tokens.size() != 1) {
      *error = "stats takes no arguments";
      return false;
    }
    out->verb = Verb::kStats;
    return true;
  }
  if (tokens.size() < 2) {
    *error = "missing stream id";
    return false;
  }
  out->stream_id = std::string(tokens[1]);
  if (verb == "drop") {
    if (tokens.size() != 2) {
      *error = "drop takes exactly one argument";
      return false;
    }
    out->verb = Verb::kDrop;
    return true;
  }
  if (tokens.size() != 3) {
    *error = std::string(verb) + " takes exactly two arguments";
    return false;
  }
  if (verb == "train") {
    out->verb = Verb::kTrain;
    return ParseCsvRow(tokens[2], static_cast<std::size_t>(num_features) + 1,
                       &out->values, error);
  }
  if (verb == "score") {
    out->verb = Verb::kScore;
    return ParseCsvRow(tokens[2], static_cast<std::size_t>(num_features),
                       &out->values, error);
  }
  if (verb == "snapshot") {
    out->verb = Verb::kSnapshot;
    out->path = std::string(tokens[2]);
    return true;
  }
  if (verb == "restore") {
    out->verb = Verb::kRestore;
    out->path = std::string(tokens[2]);
    return true;
  }
  *error = "unknown verb '" + std::string(verb) + "'";
  return false;
}

}  // namespace dmt::serve
