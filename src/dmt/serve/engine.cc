#include "dmt/serve/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "dmt/serial/model_io.h"
#include "dmt/serve/state_dir.h"

namespace dmt::serve {

namespace {

// Stable stream-id -> shard hash (FNV-1a, SplitMix64-finalized). Must not
// depend on anything but the id bytes: a stream's model identity survives
// process restarts and shard-count changes only because its *seed* comes
// from DeriveSeed(engine seed, id), but its shard home may legitimately
// move when num_shards changes.
std::size_t ShardOf(const std::string& id, std::size_t num_shards) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : id) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(SplitMix64(h) % num_shards);
}

void AppendG(std::string* out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  out->append(buffer);
}

// Textual mt19937_64 state (the standard's portable stream format), so a
// stream's fault-injection trace continues bit-identically across a
// checkpoint/recover cycle.
std::string RngToText(const Rng& rng) {
  std::ostringstream out;
  out << rng.engine();
  return out.str();
}

bool RngFromText(const std::string& text, Rng* rng) {
  std::istringstream in(text);
  in >> rng->engine();
  return static_cast<bool>(in);
}

}  // namespace

ServeEngine::ServeEngine(ServeConfig config) : config_(std::move(config)) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (config_.batch_window == 0) config_.batch_window = 1;
  if (config_.queue_capacity == 0) {
    config_.queue_capacity = config_.batch_window;
  }
  shards_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->scratch_batch =
        Batch(static_cast<std::size_t>(config_.num_features));
    shards_.push_back(std::move(shard));
  }
  shard_queues_.resize(config_.num_shards);
  if (config_.num_shards > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_shards);
  }
  if (config_.state_dir.empty()) {
    if (config_.max_streams > 0 || config_.idle_windows > 0) {
      throw StateError(
          "stream eviction (max_streams / idle_windows) requires a state "
          "dir to park models in");
    }
    if (config_.checkpoint_every > 0) {
      throw StateError("checkpoint_every requires a state dir");
    }
  } else {
    EnsureStateDir(config_.state_dir);
    RecoverFromStateDir();
  }
}

ServeEngine::~ServeEngine() = default;

ServeEngine::StreamState* ServeEngine::FindOrCreateStream(
    const std::string& id, std::string* error) {
  const auto it = streams_.find(id);
  if (it != streams_.end()) {
    StreamState* stream = &it->second;
    if (stream->model == nullptr && !WarmStart(stream, error)) return nullptr;
    return stream;
  }
  StreamState state;
  state.id = id;
  state.shard = ShardOf(id, shards_.size());
  // Seeded from the stream identity alone: the same id always gets the
  // same model no matter which shard hosts it or when it first appeared.
  state.model = config_.factory(id, DeriveSeed(config_.seed, id));
  Shard* shard = shards_[state.shard].get();
  state.model->AttachTelemetry(&shard->telemetry);
  ++shard->num_streams;
  *shard->resident_streams = static_cast<double>(shard->num_streams);
  ++resident_;
  ++streams_created_;
  return &streams_.emplace(id, std::move(state)).first->second;
}

bool ServeEngine::WarmStart(StreamState* stream, std::string* error) {
  try {
    const std::string archive =
        ReadEvictionArchive(config_.state_dir, stream->id);
    std::unique_ptr<Classifier> model =
        serial::LoadClassifierFromString(archive);
    if (model->num_classes() != config_.num_classes) {
      throw StateError("parked archive has " +
                       std::to_string(model->num_classes()) +
                       " classes, engine " +
                       std::to_string(config_.num_classes));
    }
    Shard* shard = shards_[stream->shard].get();
    model->AttachTelemetry(&shard->telemetry);
    stream->model = std::move(model);
    // The parked file is now stale (the resident model trains on); the
    // next eviction or checkpoint re-serializes from memory.
    RemoveEvictionArchive(config_.state_dir, stream->id);
    ++shard->num_streams;
    *shard->resident_streams = static_cast<double>(shard->num_streams);
    *shard->warm_starts += 1;
    ++resident_;
    ++warm_starts_;
    return true;
  } catch (const std::exception& e) {
    ++state_errors_;
    *error = e.what();
    return false;
  }
}

void ServeEngine::InjectFaults(Request* request, StreamState* stream) {
  const robust::FaultSpec& spec = config_.inject;
  if (stream->inject_rng == nullptr) {
    // Seeded from the stream identity alone, like the model itself, and
    // advanced once per train/score request of this stream: the fault
    // trace is a pure function of the stream's request subsequence.
    stream->inject_rng = std::make_unique<Rng>(
        DeriveSeed(config_.seed, stream->id, "inject"));
  }
  Rng& rng = *stream->inject_rng;
  const int features = config_.num_features;
  bool injected = false;
  // Draw order mirrors robust::FaultyStream: truncate, nan, inf, missing,
  // flip. Serve rows have no "stream end", so truncate becomes a truncated
  // *row*: a random suffix of the features is lost (NaN).
  if (spec.truncate_rate > 0.0 && features > 0 &&
      rng.Bernoulli(spec.truncate_rate)) {
    const int start = rng.UniformInt(0, features - 1);
    for (int i = start; i < features; ++i) {
      request->values[static_cast<std::size_t>(i)] =
          std::numeric_limits<double>::quiet_NaN();
    }
    injected = true;
  }
  if (spec.nan_rate > 0.0 && features > 0 && rng.Bernoulli(spec.nan_rate)) {
    request->values[static_cast<std::size_t>(rng.UniformInt(0, features - 1))] =
        std::numeric_limits<double>::quiet_NaN();
    injected = true;
  }
  if (spec.inf_rate > 0.0 && features > 0 && rng.Bernoulli(spec.inf_rate)) {
    const double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    request->values[static_cast<std::size_t>(rng.UniformInt(0, features - 1))] =
        sign * std::numeric_limits<double>::infinity();
    injected = true;
  }
  if (spec.missing_rate > 0.0) {
    for (int i = 0; i < features; ++i) {
      if (rng.Bernoulli(spec.missing_rate)) {
        request->values[static_cast<std::size_t>(i)] =
            std::numeric_limits<double>::quiet_NaN();
        injected = true;
      }
    }
  }
  if (request->verb == Verb::kTrain && spec.flip_rate > 0.0 &&
      config_.num_classes > 1 && rng.Bernoulli(spec.flip_rate)) {
    double& label = request->values[static_cast<std::size_t>(features)];
    if (std::isfinite(label) && label == std::floor(label) && label >= 0.0 &&
        label < static_cast<double>(config_.num_classes)) {
      // Uniform over the other classes: draw r in [0, c-2], shift past y.
      int r = rng.UniformInt(0, config_.num_classes - 2);
      if (r >= static_cast<int>(label)) ++r;
      label = static_cast<double>(r);
      injected = true;
    }
  }
  if (injected) ++injected_rows_;
}

void ServeEngine::RouteRequest(Request&& request, std::size_t slot) {
  if (request.verb == Verb::kStats) {
    responses_[slot] = StatsLine();
    return;
  }
  if (request.verb == Verb::kSnapshot && !streams_.count(request.stream_id)) {
    responses_[slot] = "ERR unknown_stream " + request.stream_id;
    return;
  }
  std::string warm_error;
  StreamState* stream = FindOrCreateStream(request.stream_id, &warm_error);
  if (stream == nullptr) {
    responses_[slot] = "ERR warm_start " + request.stream_id + " " + warm_error;
    return;
  }
  // Touch bookkeeping for LRU/TTL eviction: the request ordinal is unique,
  // so the LRU order is total and eviction picks the same victims at any
  // shard count.
  stream->last_touch = requests_;
  stream->last_window = windows_;
  Shard* shard = shards_[stream->shard].get();

  if (config_.inject.any() &&
      (request.verb == Verb::kTrain || request.verb == Verb::kScore)) {
    InjectFaults(&request, stream);
  }

  // Bad-input policy, applied at routing so every request's response is
  // fully determined by the request sequence. Train rows carry the label
  // as the last value; a bad label can never be imputed.
  if (request.verb == Verb::kTrain || request.verb == Verb::kScore) {
    const std::size_t features = static_cast<std::size_t>(
        config_.num_features);
    double bad_value = 0.0;
    bool row_bad = false;
    for (std::size_t i = 0; i < features; ++i) {
      if (!std::isfinite(request.values[i])) {
        bad_value = request.values[i];
        row_bad = true;
        if (config_.bad_input_policy == BadInputPolicy::kImputeMidpoint) {
          request.values[i] = 0.0;
          ++values_imputed_;
        }
      }
    }
    bool label_bad = false;
    if (request.verb == Verb::kTrain) {
      const double label = request.values.back();
      label_bad = !std::isfinite(label) || label != std::floor(label) ||
                  label < 0.0 ||
                  label >= static_cast<double>(config_.num_classes);
    }
    if (row_bad || label_bad) {
      ++bad_rows_;
      *shard->bad_rows += 1;
      // The gauge holds the offending value verbatim -- possibly NaN/Inf;
      // the JSON exporter must render it as null, not as bare `nan`.
      *shard->last_bad_value = label_bad ? request.values.back() : bad_value;
    }
    const bool drop_row =
        label_bad || (row_bad && config_.bad_input_policy !=
                                     BadInputPolicy::kImputeMidpoint);
    if (drop_row) {
      const char* what = request.verb == Verb::kTrain ? "train" : "score";
      if (config_.bad_input_policy == BadInputPolicy::kThrow) {
        responses_[slot] =
            "ERR bad_row " + std::string(what) + " " + request.stream_id;
      } else {
        responses_[slot] =
            "OK " + std::string(what) + " " + request.stream_id + " dropped";
      }
      return;
    }
  }

  // Explicit back-pressure: a full shard queue rejects instead of growing
  // without bound; the client owns the retry (next window is one barrier
  // away, hence retry-after=1).
  std::vector<Routed>& queue = shard_queues_[stream->shard];
  if (queue.size() >= config_.queue_capacity) {
    ++rejected_;
    *shard->rejected += 1;
    responses_[slot] = "ERR retry-after=1 " + request.stream_id + " shard=" +
                       std::to_string(stream->shard) + " queue_full";
    return;
  }

  Routed routed;
  routed.verb = request.verb;
  routed.stream = stream;
  routed.slot = slot;
  routed.values = std::move(request.values);
  routed.path = std::move(request.path);
  switch (request.verb) {
    case Verb::kTrain:
      routed.ordinal = ++stream->rows_trained;
      ++train_rows_;
      break;
    case Verb::kScore:
      ++score_rows_;
      break;
    case Verb::kSnapshot:
      ++snapshots_;
      break;
    case Verb::kRestore:
      ++restores_;
      break;
    default:
      break;
  }
  queue.push_back(std::move(routed));
}

void ServeEngine::ServeLine(std::string_view line, std::ostream& out) {
  ++requests_;
  Request request;
  std::string error;
  const bool parsed =
      ParseRequestLine(line, config_.num_features, &request, &error);
  if (parsed && request.verb == Verb::kDrop) {
    // A drop is a window boundary: everything routed so far (possibly
    // including requests for this stream) executes first, then the stream
    // is destroyed on the routing thread while no shard task is running.
    // Its response is emitted directly -- still in request order, right
    // after the flushed window's responses.
    Flush(out);
    const auto it = streams_.find(request.stream_id);
    if (it == streams_.end()) {
      out << "ERR unknown_stream " << request.stream_id << '\n';
    } else {
      StreamState& state = it->second;
      if (state.model != nullptr) {
        Shard* shard = shards_[state.shard].get();
        --shard->num_streams;
        *shard->resident_streams = static_cast<double>(shard->num_streams);
        --resident_;
      } else if (!config_.state_dir.empty()) {
        // A dropped stream must not be resurrectable from its parked file.
        RemoveEvictionArchive(config_.state_dir, request.stream_id);
      }
      streams_.erase(it);
      ++drops_;
      out << "OK drop " << request.stream_id << '\n';
    }
    return;
  }
  const std::size_t slot = responses_.size();
  responses_.emplace_back();
  if (!parsed) {
    ++parse_errors_;
    responses_[slot] = "ERR parse " + error;
  } else {
    RouteRequest(std::move(request), slot);
  }
  if (responses_.size() >= config_.batch_window) Flush(out);
}

void ServeEngine::Flush(std::ostream& out) {
  // An empty flush (bridge idle tick, drop at a window start, double
  // Finish) is a no-op: it must not advance the window clock, evict, or
  // checkpoint, or interactive serving would diverge from batch replay.
  if (responses_.empty()) return;
  bool any = false;
  for (const std::vector<Routed>& queue : shard_queues_) {
    if (!queue.empty()) any = true;
  }
  if (any) {
    if (pool_ != nullptr) {
      std::vector<std::future<void>> futures;
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (shard_queues_[s].empty()) continue;
        Shard* shard = shards_[s].get();
        std::vector<Routed>* items = &shard_queues_[s];
        futures.push_back(
            pool_->Submit([this, shard, items]() { ProcessShard(shard, items); }));
      }
      for (std::future<void>& future : futures) {
        GetHelping(pool_.get(), &future);
      }
    } else {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (!shard_queues_[s].empty()) {
          ProcessShard(shards_[s].get(), &shard_queues_[s]);
        }
      }
    }
    for (std::vector<Routed>& queue : shard_queues_) queue.clear();
  }
  for (const std::string& response : responses_) out << response << '\n';
  out.flush();
  responses_.clear();
  ++windows_;
  EvictAtBoundary();
  if (!config_.state_dir.empty() && config_.checkpoint_every > 0 &&
      windows_ % config_.checkpoint_every == 0) {
    WriteCheckpoint();
  }
  if (config_.exporter != nullptr && config_.export_every > 0 &&
      windows_ % config_.export_every == 0) {
    ExportTelemetry();
  }
}

void ServeEngine::EvictAtBoundary() {
  if (config_.max_streams == 0 && config_.idle_windows == 0) return;
  // Runs on the routing thread between windows, so eviction timing is a
  // pure function of the request sequence -- never of shard scheduling.
  std::vector<StreamState*> victims;
  if (config_.idle_windows > 0) {
    for (auto& [id, state] : streams_) {
      if (state.model != nullptr &&
          windows_ - state.last_window > config_.idle_windows) {
        victims.push_back(&state);
      }
    }
    std::sort(victims.begin(), victims.end(),
              [](const StreamState* a, const StreamState* b) {
                return a->last_touch < b->last_touch;
              });
    for (StreamState* victim : victims) EvictStream(victim);
    victims.clear();
  }
  if (config_.max_streams > 0 && resident_ > config_.max_streams) {
    for (auto& [id, state] : streams_) {
      if (state.model != nullptr) victims.push_back(&state);
    }
    std::sort(victims.begin(), victims.end(),
              [](const StreamState* a, const StreamState* b) {
                return a->last_touch < b->last_touch;
              });
    for (StreamState* victim : victims) {
      if (resident_ <= config_.max_streams) break;
      EvictStream(victim);
    }
  }
}

bool ServeEngine::EvictStream(StreamState* stream) {
  try {
    WriteEvictionArchive(config_.state_dir, stream->id,
                         serial::SaveClassifierToString(*stream->model));
  } catch (const std::exception& e) {
    // Never silently lose state: a stream that cannot be parked stays
    // resident and serving continues.
    ++state_errors_;
    std::fprintf(stderr, "dmt_serve: cannot evict stream '%s': %s\n",
                 stream->id.c_str(), e.what());
    return false;
  }
  stream->model.reset();
  Shard* shard = shards_[stream->shard].get();
  --shard->num_streams;
  *shard->resident_streams = static_cast<double>(shard->num_streams);
  *shard->evictions += 1;
  --resident_;
  ++evictions_;
  return true;
}

void ServeEngine::WriteCheckpoint() {
  Manifest manifest;
  manifest.seq = next_checkpoint_seq_;
  manifest.model_kind = config_.model_kind;
  manifest.num_features = config_.num_features;
  manifest.num_classes = config_.num_classes;
  manifest.seed = config_.seed;
  manifest.batch_window = config_.batch_window;
  manifest.inject_rates = {config_.inject.nan_rate, config_.inject.inf_rate,
                           config_.inject.missing_rate,
                           config_.inject.flip_rate,
                           config_.inject.truncate_rate};
  ManifestTallies& t = manifest.tallies;
  t.requests = requests_;
  t.parse_errors = parse_errors_;
  t.rejected = rejected_;
  t.bad_rows = bad_rows_;
  t.values_imputed = values_imputed_;
  t.train_rows = train_rows_;
  t.score_rows = score_rows_;
  t.snapshots = snapshots_;
  t.restores = restores_;
  t.drops = drops_;
  t.streams_created = streams_created_;
  t.windows = windows_;
  t.evictions = evictions_;
  t.warm_starts = warm_starts_;
  // The checkpoint counts itself: a run recovered from it must report the
  // same `checkpoints` tally as the run that wrote it.
  t.checkpoints = checkpoints_ + 1;
  t.injected_rows = injected_rows_;
  t.state_errors = state_errors_;

  std::vector<const StreamState*> order;
  order.reserve(streams_.size());
  for (const auto& [id, state] : streams_) order.push_back(&state);
  std::sort(order.begin(), order.end(),
            [](const StreamState* a, const StreamState* b) {
              return a->id < b->id;
            });
  try {
    manifest.streams.reserve(order.size());
    for (const StreamState* state : order) {
      ManifestStream entry;
      entry.id = state->id;
      entry.resident = state->model != nullptr;
      entry.rows_trained = state->rows_trained;
      entry.last_touch = state->last_touch;
      entry.last_window = state->last_window;
      if (state->inject_rng != nullptr) {
        entry.inject_rng = RngToText(*state->inject_rng);
      }
      entry.archive =
          entry.resident
              ? serial::SaveClassifierToString(*state->model)
              : ReadEvictionArchive(config_.state_dir, state->id);
      manifest.streams.push_back(std::move(entry));
    }
    WriteManifest(config_.state_dir, manifest);
  } catch (const std::exception& e) {
    // A failed checkpoint never interrupts serving; the previous manifest
    // stays the recovery point.
    ++state_errors_;
    std::fprintf(stderr, "dmt_serve: checkpoint %llu failed: %s\n",
                 static_cast<unsigned long long>(manifest.seq), e.what());
    return;
  }
  ++checkpoints_;
  ++next_checkpoint_seq_;
}

void ServeEngine::RecoverFromStateDir() {
  const std::optional<Manifest> loaded =
      LoadNewestManifest(config_.state_dir);
  if (!loaded.has_value()) return;  // fresh state dir
  const Manifest& m = *loaded;
  // Config-stamp verification: every field below is part of the
  // determinism recipe, so skew is a typed refusal, never a silent reset.
  if (m.model_kind != config_.model_kind) {
    throw StateError("checkpoint was written by model kind '" +
                     m.model_kind + "', engine runs '" + config_.model_kind +
                     "'");
  }
  if (m.num_features != config_.num_features ||
      m.num_classes != config_.num_classes) {
    throw StateError(
        "checkpoint dimensions " + std::to_string(m.num_features) + "x" +
        std::to_string(m.num_classes) + " do not match engine " +
        std::to_string(config_.num_features) + "x" +
        std::to_string(config_.num_classes));
  }
  if (m.seed != config_.seed) {
    throw StateError("checkpoint seed " + std::to_string(m.seed) +
                     " does not match engine seed " +
                     std::to_string(config_.seed));
  }
  if (m.batch_window != config_.batch_window) {
    throw StateError("checkpoint batch_window " +
                     std::to_string(m.batch_window) +
                     " does not match engine batch_window " +
                     std::to_string(config_.batch_window));
  }
  const std::array<double, 5> rates = {
      config_.inject.nan_rate, config_.inject.inf_rate,
      config_.inject.missing_rate, config_.inject.flip_rate,
      config_.inject.truncate_rate};
  if (m.inject_rates != rates) {
    throw StateError(
        "checkpoint fault-injection rates do not match the engine's "
        "--inject spec");
  }

  const ManifestTallies& t = m.tallies;
  requests_ = t.requests;
  parse_errors_ = t.parse_errors;
  rejected_ = t.rejected;
  bad_rows_ = t.bad_rows;
  values_imputed_ = t.values_imputed;
  train_rows_ = t.train_rows;
  score_rows_ = t.score_rows;
  snapshots_ = t.snapshots;
  restores_ = t.restores;
  drops_ = t.drops;
  streams_created_ = t.streams_created;
  windows_ = t.windows;
  evictions_ = t.evictions;
  warm_starts_ = t.warm_starts;
  checkpoints_ = t.checkpoints;
  injected_rows_ = t.injected_rows;
  state_errors_ = t.state_errors;
  next_checkpoint_seq_ = m.seq + 1;

  for (const ManifestStream& entry : m.streams) {
    StreamState state;
    state.id = entry.id;
    state.shard = ShardOf(entry.id, shards_.size());
    state.rows_trained = entry.rows_trained;
    state.last_touch = entry.last_touch;
    state.last_window = entry.last_window;
    if (!entry.inject_rng.empty()) {
      state.inject_rng = std::make_unique<Rng>(0);
      if (!RngFromText(entry.inject_rng, state.inject_rng.get())) {
        throw StateError("corrupt injection-generator state for stream '" +
                         entry.id + "'");
      }
    }
    if (entry.resident) {
      std::unique_ptr<Classifier> model;
      try {
        model = serial::LoadClassifierFromString(entry.archive);
      } catch (const serial::SerialError& e) {
        throw StateError("corrupt model archive for stream '" + entry.id +
                         "': " + e.what());
      }
      if (model->num_classes() != config_.num_classes) {
        throw StateError("stream '" + entry.id + "' archive has " +
                         std::to_string(model->num_classes()) +
                         " classes, engine " +
                         std::to_string(config_.num_classes));
      }
      Shard* shard = shards_[state.shard].get();
      model->AttachTelemetry(&shard->telemetry);
      state.model = std::move(model);
      ++shard->num_streams;
      *shard->resident_streams = static_cast<double>(shard->num_streams);
      ++resident_;
    } else {
      // Re-materialize the parked file so a later touch can warm-start
      // without going back to the manifest.
      WriteEvictionArchive(config_.state_dir, entry.id, entry.archive);
    }
    if (!streams_.emplace(entry.id, std::move(state)).second) {
      throw StateError("checkpoint manifest lists stream '" + entry.id +
                       "' twice");
    }
  }
}

void ServeEngine::ProcessShard(Shard* shard, std::vector<Routed>* items) {
  // Regroup per stream, preserving each stream's own request order but
  // ignoring interleaving by other streams: streams are independent, so
  // this is semantically equivalent to global order -- and it makes run
  // coalescing identical at any shard count (see the header contract).
  std::vector<std::vector<Routed*>> per_stream;
  std::unordered_map<const StreamState*, std::size_t> stream_index;
  for (Routed& item : *items) {
    const auto [it, inserted] =
        stream_index.emplace(item.stream, per_stream.size());
    if (inserted) per_stream.emplace_back();
    per_stream[it->second].push_back(&item);
  }

  const std::size_t features = static_cast<std::size_t>(config_.num_features);
  for (std::vector<Routed*>& sequence : per_stream) {
    std::size_t i = 0;
    while (i < sequence.size()) {
      Routed* head = sequence[i];
      StreamState* stream = head->stream;
      if (head->verb == Verb::kTrain || head->verb == Verb::kScore) {
        // Maximal same-verb run of this stream -> one batched model call.
        std::size_t end = i;
        while (end < sequence.size() && sequence[end]->verb == head->verb) {
          ++end;
        }
        Batch& batch = shard->scratch_batch;
        batch.clear();
        for (std::size_t j = i; j < end; ++j) {
          const std::vector<double>& values = sequence[j]->values;
          batch.Add(std::span<const double>(values.data(), features),
                    head->verb == Verb::kTrain
                        ? static_cast<int>(values[features])
                        : 0);
        }
        if (head->verb == Verb::kTrain) {
          try {
            stream->model->PartialFit(batch);
            *shard->train_rows += batch.size();
            for (std::size_t j = i; j < end; ++j) {
              responses_[sequence[j]->slot] =
                  "OK train " + stream->id +
                  " n=" + std::to_string(sequence[j]->ordinal);
            }
          } catch (const std::exception& e) {
            for (std::size_t j = i; j < end; ++j) {
              responses_[sequence[j]->slot] =
                  std::string("ERR train ") + e.what();
            }
          }
        } else {
          try {
            stream->model->PredictBatch(batch, &shard->scratch_proba);
            *shard->score_rows += batch.size();
            for (std::size_t j = i; j < end; ++j) {
              const std::span<const double> proba =
                  shard->scratch_proba.row(j - i);
              std::string& response = responses_[sequence[j]->slot];
              response = "OK score " + stream->id + " pred=" +
                         std::to_string(ArgMax(proba)) + " p=";
              for (std::size_t c = 0; c < proba.size(); ++c) {
                if (c > 0) response.push_back(',');
                AppendG(&response, proba[c]);
              }
            }
          } catch (const std::exception& e) {
            for (std::size_t j = i; j < end; ++j) {
              responses_[sequence[j]->slot] =
                  std::string("ERR score ") + e.what();
            }
          }
        }
        i = end;
        continue;
      }
      if (head->verb == Verb::kSnapshot) {
        try {
          serial::SaveClassifierToFile(*stream->model, head->path);
          *shard->snapshots += 1;
          responses_[head->slot] =
              "OK snapshot " + stream->id + " " + head->path;
        } catch (const std::exception& e) {
          responses_[head->slot] = std::string("ERR snapshot ") + e.what();
        }
      } else {  // kRestore: blue-green -- decode fully, then swap
        try {
          std::unique_ptr<Classifier> loaded =
              serial::LoadClassifierFromFile(head->path);
          if (loaded->num_classes() != config_.num_classes) {
            responses_[head->slot] =
                "ERR restore archive has " +
                std::to_string(loaded->num_classes()) + " classes, engine " +
                std::to_string(config_.num_classes);
          } else {
            loaded->AttachTelemetry(&shard->telemetry);
            stream->model = std::move(loaded);
            *shard->restores += 1;
            responses_[head->slot] = "OK restore " + stream->id;
          }
        } catch (const std::exception& e) {
          responses_[head->slot] = std::string("ERR restore ") + e.what();
        }
      }
      ++i;
    }
  }
}

void ServeEngine::ExportTelemetry() {
  ++exporter_flushes_;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    config_.exporter->WriteLine(shards_[s]->ExportLine(s, exporter_flushes_));
  }
}

std::string ServeEngine::StatsLine() const {
  // Routing-time tallies only: everything here is a pure function of the
  // request sequence, so `stats` responses match at any shard count.
  std::string line = "OK stats {";
  const auto field = [&line](const char* name, std::uint64_t value,
                             bool first = false) {
    if (!first) line += ", ";
    line += std::string("\"") + name + "\": " + std::to_string(value);
  };
  field("streams", streams_.size(), /*first=*/true);
  field("resident_streams", resident_);
  field("streams_created", streams_created_);
  field("requests", requests_);
  field("train_rows", train_rows_);
  field("score_rows", score_rows_);
  field("bad_rows", bad_rows_);
  field("values_imputed", values_imputed_);
  field("rejected", rejected_);
  field("parse_errors", parse_errors_);
  field("snapshots", snapshots_);
  field("restores", restores_);
  field("drops", drops_);
  field("windows", windows_);
  field("evictions", evictions_);
  field("warm_starts", warm_starts_);
  field("checkpoints", checkpoints_);
  field("injected_rows", injected_rows_);
  field("state_errors", state_errors_);
  line += "}";
  return line;
}

void ServeEngine::Finish(std::ostream& out) {
  Flush(out);
  if (!config_.state_dir.empty()) WriteCheckpoint();
  if (config_.exporter != nullptr) ExportTelemetry();
}

void ServeEngine::RunScript(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) ServeLine(line, out);
  Finish(out);
}

}  // namespace dmt::serve
