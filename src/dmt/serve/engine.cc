#include "dmt/serve/engine.h"

#include <cmath>
#include <cstdio>
#include <future>
#include <istream>
#include <ostream>
#include <utility>

#include "dmt/common/random.h"
#include "dmt/serial/model_io.h"

namespace dmt::serve {

namespace {

// Stable stream-id -> shard hash (FNV-1a, SplitMix64-finalized). Must not
// depend on anything but the id bytes: a stream's model identity survives
// process restarts and shard-count changes only because its *seed* comes
// from DeriveSeed(engine seed, id), but its shard home may legitimately
// move when num_shards changes.
std::size_t ShardOf(const std::string& id, std::size_t num_shards) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : id) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(SplitMix64(h) % num_shards);
}

void AppendG(std::string* out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  out->append(buffer);
}

}  // namespace

ServeEngine::ServeEngine(ServeConfig config) : config_(std::move(config)) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (config_.batch_window == 0) config_.batch_window = 1;
  if (config_.queue_capacity == 0) {
    config_.queue_capacity = config_.batch_window;
  }
  shards_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->scratch_batch =
        Batch(static_cast<std::size_t>(config_.num_features));
    shards_.push_back(std::move(shard));
  }
  shard_queues_.resize(config_.num_shards);
  if (config_.num_shards > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_shards);
  }
}

ServeEngine::~ServeEngine() = default;

ServeEngine::StreamState* ServeEngine::FindOrCreateStream(
    const std::string& id) {
  const auto it = streams_.find(id);
  if (it != streams_.end()) return &it->second;
  StreamState state;
  state.id = id;
  state.shard = ShardOf(id, shards_.size());
  // Seeded from the stream identity alone: the same id always gets the
  // same model no matter which shard hosts it or when it first appeared.
  state.model = config_.factory(id, DeriveSeed(config_.seed, id));
  state.model->AttachTelemetry(&shards_[state.shard]->telemetry);
  ++shards_[state.shard]->num_streams;
  ++streams_created_;
  return &streams_.emplace(id, std::move(state)).first->second;
}

void ServeEngine::RouteRequest(Request&& request, std::size_t slot) {
  if (request.verb == Verb::kStats) {
    responses_[slot] = StatsLine();
    return;
  }
  if (request.verb == Verb::kSnapshot && !streams_.count(request.stream_id)) {
    responses_[slot] = "ERR unknown_stream " + request.stream_id;
    return;
  }
  StreamState* stream = FindOrCreateStream(request.stream_id);
  Shard* shard = shards_[stream->shard].get();

  // Bad-input policy, applied at routing so every request's response is
  // fully determined by the request sequence. Train rows carry the label
  // as the last value; a bad label can never be imputed.
  if (request.verb == Verb::kTrain || request.verb == Verb::kScore) {
    const std::size_t features = static_cast<std::size_t>(
        config_.num_features);
    double bad_value = 0.0;
    bool row_bad = false;
    for (std::size_t i = 0; i < features; ++i) {
      if (!std::isfinite(request.values[i])) {
        bad_value = request.values[i];
        row_bad = true;
        if (config_.bad_input_policy == BadInputPolicy::kImputeMidpoint) {
          request.values[i] = 0.0;
          ++values_imputed_;
        }
      }
    }
    bool label_bad = false;
    if (request.verb == Verb::kTrain) {
      const double label = request.values.back();
      label_bad = !std::isfinite(label) || label != std::floor(label) ||
                  label < 0.0 ||
                  label >= static_cast<double>(config_.num_classes);
    }
    if (row_bad || label_bad) {
      ++bad_rows_;
      *shard->bad_rows += 1;
      // The gauge holds the offending value verbatim -- possibly NaN/Inf;
      // the JSON exporter must render it as null, not as bare `nan`.
      *shard->last_bad_value = label_bad ? request.values.back() : bad_value;
    }
    const bool drop_row =
        label_bad || (row_bad && config_.bad_input_policy !=
                                     BadInputPolicy::kImputeMidpoint);
    if (drop_row) {
      const char* what = request.verb == Verb::kTrain ? "train" : "score";
      if (config_.bad_input_policy == BadInputPolicy::kThrow) {
        responses_[slot] =
            "ERR bad_row " + std::string(what) + " " + request.stream_id;
      } else {
        responses_[slot] =
            "OK " + std::string(what) + " " + request.stream_id + " dropped";
      }
      return;
    }
  }

  // Explicit back-pressure: a full shard queue rejects instead of growing
  // without bound; the client owns the retry (next window is one barrier
  // away, hence retry-after=1).
  std::vector<Routed>& queue = shard_queues_[stream->shard];
  if (queue.size() >= config_.queue_capacity) {
    ++rejected_;
    *shard->rejected += 1;
    responses_[slot] = "ERR retry-after=1 " + request.stream_id + " shard=" +
                       std::to_string(stream->shard) + " queue_full";
    return;
  }

  Routed routed;
  routed.verb = request.verb;
  routed.stream = stream;
  routed.slot = slot;
  routed.values = std::move(request.values);
  routed.path = std::move(request.path);
  switch (request.verb) {
    case Verb::kTrain:
      routed.ordinal = ++stream->rows_trained;
      ++train_rows_;
      break;
    case Verb::kScore:
      ++score_rows_;
      break;
    case Verb::kSnapshot:
      ++snapshots_;
      break;
    case Verb::kRestore:
      ++restores_;
      break;
    default:
      break;
  }
  queue.push_back(std::move(routed));
}

void ServeEngine::ServeLine(std::string_view line, std::ostream& out) {
  ++requests_;
  Request request;
  std::string error;
  const bool parsed =
      ParseRequestLine(line, config_.num_features, &request, &error);
  if (parsed && request.verb == Verb::kDrop) {
    // A drop is a window boundary: everything routed so far (possibly
    // including requests for this stream) executes first, then the stream
    // is destroyed on the routing thread while no shard task is running.
    // Its response is emitted directly -- still in request order, right
    // after the flushed window's responses.
    Flush(out);
    const auto it = streams_.find(request.stream_id);
    if (it == streams_.end()) {
      out << "ERR unknown_stream " << request.stream_id << '\n';
    } else {
      --shards_[it->second.shard]->num_streams;
      streams_.erase(it);
      ++drops_;
      out << "OK drop " << request.stream_id << '\n';
    }
    return;
  }
  const std::size_t slot = responses_.size();
  responses_.emplace_back();
  if (!parsed) {
    ++parse_errors_;
    responses_[slot] = "ERR parse " + error;
  } else {
    RouteRequest(std::move(request), slot);
  }
  if (responses_.size() >= config_.batch_window) Flush(out);
}

void ServeEngine::Flush(std::ostream& out) {
  bool any = false;
  for (const std::vector<Routed>& queue : shard_queues_) {
    if (!queue.empty()) any = true;
  }
  if (any) {
    if (pool_ != nullptr) {
      std::vector<std::future<void>> futures;
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (shard_queues_[s].empty()) continue;
        Shard* shard = shards_[s].get();
        std::vector<Routed>* items = &shard_queues_[s];
        futures.push_back(
            pool_->Submit([this, shard, items]() { ProcessShard(shard, items); }));
      }
      for (std::future<void>& future : futures) {
        GetHelping(pool_.get(), &future);
      }
    } else {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (!shard_queues_[s].empty()) {
          ProcessShard(shards_[s].get(), &shard_queues_[s]);
        }
      }
    }
    for (std::vector<Routed>& queue : shard_queues_) queue.clear();
  }
  for (const std::string& response : responses_) out << response << '\n';
  if (!responses_.empty()) out.flush();
  responses_.clear();
  ++windows_;
  if (config_.exporter != nullptr && config_.export_every > 0 &&
      windows_ % config_.export_every == 0) {
    ExportTelemetry();
  }
}

void ServeEngine::ProcessShard(Shard* shard, std::vector<Routed>* items) {
  // Regroup per stream, preserving each stream's own request order but
  // ignoring interleaving by other streams: streams are independent, so
  // this is semantically equivalent to global order -- and it makes run
  // coalescing identical at any shard count (see the header contract).
  std::vector<std::vector<Routed*>> per_stream;
  std::unordered_map<const StreamState*, std::size_t> stream_index;
  for (Routed& item : *items) {
    const auto [it, inserted] =
        stream_index.emplace(item.stream, per_stream.size());
    if (inserted) per_stream.emplace_back();
    per_stream[it->second].push_back(&item);
  }

  const std::size_t features = static_cast<std::size_t>(config_.num_features);
  for (std::vector<Routed*>& sequence : per_stream) {
    std::size_t i = 0;
    while (i < sequence.size()) {
      Routed* head = sequence[i];
      StreamState* stream = head->stream;
      if (head->verb == Verb::kTrain || head->verb == Verb::kScore) {
        // Maximal same-verb run of this stream -> one batched model call.
        std::size_t end = i;
        while (end < sequence.size() && sequence[end]->verb == head->verb) {
          ++end;
        }
        Batch& batch = shard->scratch_batch;
        batch.clear();
        for (std::size_t j = i; j < end; ++j) {
          const std::vector<double>& values = sequence[j]->values;
          batch.Add(std::span<const double>(values.data(), features),
                    head->verb == Verb::kTrain
                        ? static_cast<int>(values[features])
                        : 0);
        }
        if (head->verb == Verb::kTrain) {
          try {
            stream->model->PartialFit(batch);
            *shard->train_rows += batch.size();
            for (std::size_t j = i; j < end; ++j) {
              responses_[sequence[j]->slot] =
                  "OK train " + stream->id +
                  " n=" + std::to_string(sequence[j]->ordinal);
            }
          } catch (const std::exception& e) {
            for (std::size_t j = i; j < end; ++j) {
              responses_[sequence[j]->slot] =
                  std::string("ERR train ") + e.what();
            }
          }
        } else {
          try {
            stream->model->PredictBatch(batch, &shard->scratch_proba);
            *shard->score_rows += batch.size();
            for (std::size_t j = i; j < end; ++j) {
              const std::span<const double> proba =
                  shard->scratch_proba.row(j - i);
              std::string& response = responses_[sequence[j]->slot];
              response = "OK score " + stream->id + " pred=" +
                         std::to_string(ArgMax(proba)) + " p=";
              for (std::size_t c = 0; c < proba.size(); ++c) {
                if (c > 0) response.push_back(',');
                AppendG(&response, proba[c]);
              }
            }
          } catch (const std::exception& e) {
            for (std::size_t j = i; j < end; ++j) {
              responses_[sequence[j]->slot] =
                  std::string("ERR score ") + e.what();
            }
          }
        }
        i = end;
        continue;
      }
      if (head->verb == Verb::kSnapshot) {
        try {
          serial::SaveClassifierToFile(*stream->model, head->path);
          *shard->snapshots += 1;
          responses_[head->slot] =
              "OK snapshot " + stream->id + " " + head->path;
        } catch (const std::exception& e) {
          responses_[head->slot] = std::string("ERR snapshot ") + e.what();
        }
      } else {  // kRestore: blue-green -- decode fully, then swap
        try {
          std::unique_ptr<Classifier> loaded =
              serial::LoadClassifierFromFile(head->path);
          if (loaded->num_classes() != config_.num_classes) {
            responses_[head->slot] =
                "ERR restore archive has " +
                std::to_string(loaded->num_classes()) + " classes, engine " +
                std::to_string(config_.num_classes);
          } else {
            loaded->AttachTelemetry(&shard->telemetry);
            stream->model = std::move(loaded);
            *shard->restores += 1;
            responses_[head->slot] = "OK restore " + stream->id;
          }
        } catch (const std::exception& e) {
          responses_[head->slot] = std::string("ERR restore ") + e.what();
        }
      }
      ++i;
    }
  }
}

void ServeEngine::ExportTelemetry() {
  ++exporter_flushes_;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    config_.exporter->WriteLine(shards_[s]->ExportLine(s, exporter_flushes_));
  }
}

std::string ServeEngine::StatsLine() const {
  // Routing-time tallies only: everything here is a pure function of the
  // request sequence, so `stats` responses match at any shard count.
  std::string line = "OK stats {";
  const auto field = [&line](const char* name, std::uint64_t value,
                             bool first = false) {
    if (!first) line += ", ";
    line += std::string("\"") + name + "\": " + std::to_string(value);
  };
  field("streams", streams_.size(), /*first=*/true);
  field("streams_created", streams_created_);
  field("requests", requests_);
  field("train_rows", train_rows_);
  field("score_rows", score_rows_);
  field("bad_rows", bad_rows_);
  field("values_imputed", values_imputed_);
  field("rejected", rejected_);
  field("parse_errors", parse_errors_);
  field("snapshots", snapshots_);
  field("restores", restores_);
  field("drops", drops_);
  field("windows", windows_);
  line += "}";
  return line;
}

void ServeEngine::Finish(std::ostream& out) {
  Flush(out);
  if (config_.exporter != nullptr) ExportTelemetry();
}

void ServeEngine::RunScript(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) ServeLine(line, out);
  Finish(out);
}

}  // namespace dmt::serve
