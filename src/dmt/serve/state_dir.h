// Durability layer of the serving engine (DESIGN.md Sec. 15): engine-wide
// checkpoint manifests plus per-stream eviction archives, both living in
// one `--state-dir` directory.
//
// A *manifest* is a single self-contained file holding the full engine
// state at one window boundary: a config stamp (model kind, dimensions,
// seed, batch window, fault-injection rates), the routing-time tallies,
// and one entry per known stream -- resident or evicted -- with the
// stream's complete serial archive embedded as bytes. Embedding makes the
// checkpoint one atomic unit: it is written to `<name>.tmp` and renamed,
// so a manifest either exists completely or not at all, and recovery is a
// pure function of a single file's bytes. Recovery always uses the newest
// complete manifest; a crash mid-write leaves a stale `.tmp` behind and
// the previous manifest intact.
//
// An *eviction archive* parks one idle stream's model on disk
// (`evicted/<sanitized>-<fnv64>.dmts`). The file wraps the raw serial
// archive with the stream id, which is verified on load, so a filename
// hash collision (or a stale file from a dropped stream) surfaces as a
// typed error instead of silently warm-starting the wrong model.
//
// Every failure mode of this layer -- unreadable directory, truncated or
// bit-flipped manifest, version skew, config-stamp mismatch, foreign
// eviction archive -- raises StateError. Nothing here aborts, and decode
// hardening is inherited from serial::Reader (bounds-checked reads,
// capped counts).
#ifndef DMT_SERVE_STATE_DIR_H_
#define DMT_SERVE_STATE_DIR_H_

#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "dmt/serial/archive.h"

namespace dmt::serve {

// Typed failure of the durability layer. dmt_serve maps recovery-time
// StateError to an exit-2 diagnostic; request-time warm-start failures
// become "ERR warm_start ..." responses.
class StateError : public std::runtime_error {
 public:
  explicit StateError(const std::string& what) : std::runtime_error(what) {}
};

// Container tags (serial/archive.h FourCC space, append-only).
inline constexpr std::uint32_t kTagManifest =
    serial::FourCC('M', 'N', 'F', 'S');
inline constexpr std::uint32_t kTagEviction =
    serial::FourCC('E', 'V', 'C', 'S');

// One known stream: identity, lifecycle counters, and the full serial
// archive bytes of its model (exactly what Classifier::Save writes).
struct ManifestStream {
  std::string id;
  bool resident = true;
  std::uint64_t rows_trained = 0;
  std::uint64_t last_touch = 0;   // request ordinal of the last touch (LRU)
  std::uint64_t last_window = 0;  // window of the last touch (TTL)
  std::string inject_rng;         // textual mt19937_64 state; "" = unused
  std::string archive;
};

// Routing-time tallies, restored verbatim so `stats` responses continue
// exactly where the checkpointed run left off. Field order is the wire
// order.
struct ManifestTallies {
  std::uint64_t requests = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t rejected = 0;
  std::uint64_t bad_rows = 0;
  std::uint64_t values_imputed = 0;
  std::uint64_t train_rows = 0;
  std::uint64_t score_rows = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t restores = 0;
  std::uint64_t drops = 0;
  std::uint64_t streams_created = 0;
  std::uint64_t windows = 0;
  std::uint64_t evictions = 0;
  std::uint64_t warm_starts = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t injected_rows = 0;
  std::uint64_t state_errors = 0;
};

struct Manifest {
  std::uint64_t seq = 0;
  // Config stamp: a checkpoint only restores into an engine configured
  // identically. Skew in any field is a StateError, never a silent reset
  // -- these values are part of the determinism recipe (a different model
  // kind, seed, batch window or fault schedule would diverge from the
  // checkpointed trajectory instead of continuing it).
  std::string model_kind;
  std::int32_t num_features = 0;
  std::int32_t num_classes = 0;
  std::uint64_t seed = 0;
  std::uint64_t batch_window = 0;
  // nan, inf, missing, flip, truncate rates of the --inject spec.
  std::array<double, 5> inject_rates = {0.0, 0.0, 0.0, 0.0, 0.0};
  ManifestTallies tallies;
  std::vector<ManifestStream> streams;
};

// "manifest-<seq, 20 decimal digits>.dmtm": zero-padded so lexicographic
// and numeric order agree.
std::string ManifestFileName(std::uint64_t seq);

// Collision-resistant, filesystem-safe file name for one stream's
// eviction archive: a sanitized prefix of the id plus the 16-hex-digit
// FNV-1a of the full id (ids are arbitrary request tokens and may contain
// '/', '..', etc.). The id stored *inside* the file is authoritative.
std::string EvictionFileName(const std::string& stream_id);

// Creates `dir` and its evicted/ subdirectory. Throws StateError if the
// path cannot be created or is not a directory.
void EnsureStateDir(const std::string& dir);

// Serializes `manifest` to `dir`, write-to-temp + rename, then prunes
// manifests older than seq-1 (the previous manifest is kept as a spare).
// Throws StateError on any write failure; a failed write never disturbs
// existing manifests.
void WriteManifest(const std::string& dir, const Manifest& manifest);

// Scans `dir` for the newest complete manifest ("manifest-*.dmtm"; stale
// .tmp files are ignored) and decodes it. Returns nullopt when no
// manifest exists (fresh state dir). Throws StateError on an unreadable
// directory or a malformed / version-skewed manifest -- recovery refuses
// to guess, it never silently falls back to an older checkpoint.
std::optional<Manifest> LoadNewestManifest(const std::string& dir);

// Parks one stream's serial archive in dir/evicted/ (write-to-temp +
// rename). `archive` holds the raw model archive bytes. Throws StateError
// on write failure.
void WriteEvictionArchive(const std::string& dir, const std::string& stream_id,
                          const std::string& archive);

// Loads a parked stream's archive bytes back, verifying the id recorded
// inside the file. Throws StateError if the file is missing, malformed,
// or holds a different stream.
std::string ReadEvictionArchive(const std::string& dir,
                                const std::string& stream_id);

// Deletes a parked stream's archive (a dropped stream must not be
// resurrectable from disk). Missing files are ignored.
void RemoveEvictionArchive(const std::string& dir,
                           const std::string& stream_id);

}  // namespace dmt::serve

#endif  // DMT_SERVE_STATE_DIR_H_
