// Multi-tenant stream-serving engine (DESIGN.md Sec. 14): one long-lived
// process owning N independent per-stream learner instances (the
// "millions of users" story of ROADMAP -- many small models, not one big
// one), keyed by stream id and sharded across the existing work-stealing
// ThreadPool.
//
// Execution model: requests are consumed in *windows* of at most
// `batch_window` lines. The routing thread parses each line, creates
// missing streams, applies the bad-input policy, and appends the request
// to its stream's shard queue; when the window is full (or input ends, or
// a `drop` forces a boundary) every shard with work runs as one pool task,
// and a barrier precedes response emission. Responses always come out in
// request order, one line per request.
//
// Determinism contract: the same request script and seed produce
// byte-identical responses at ANY shard count. Three properties make this
// hold:
//  * per-stream models are seeded DeriveSeed(seed, stream_id) -- never
//    from shard identity or scheduling order;
//  * window boundaries depend only on the global request sequence;
//  * inside a shard, requests are regrouped PER STREAM (each stream's own
//    subsequence order is preserved; streams are mutually independent), so
//    consecutive same-verb runs of one stream coalesce into the same
//    PartialFit / PredictBatch batches no matter how many other streams
//    share the shard.
// Back-pressure is the one deliberate exception: a full shard queue
// rejects with "ERR retry-after..." and queue occupancy is per shard, so
// scripts that hit the bound are only comparable at a fixed shard count
// (the default capacity, one full window, can never be hit).
#ifndef DMT_SERVE_ENGINE_H_
#define DMT_SERVE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dmt/common/classifier.h"
#include "dmt/common/random.h"
#include "dmt/common/sanitize.h"
#include "dmt/common/thread_pool.h"
#include "dmt/robust/faulty_stream.h"
#include "dmt/serve/exporter.h"
#include "dmt/serve/request.h"
#include "dmt/serve/shard.h"

namespace dmt::serve {

// Builds the learner for a newly observed stream id. `seed` is already
// derived from the engine seed and the stream id; the factory must not
// fold in any other entropy (clocks, addresses) or the determinism
// contract breaks. dmt_serve wires this to bench::MakeModel, so any of the
// serializable learners can serve.
using ModelFactory = std::function<std::unique_ptr<Classifier>(
    const std::string& stream_id, std::uint64_t seed)>;

struct ServeConfig {
  int num_features = 0;  // required: arity of every csv-row
  int num_classes = 0;   // required: restored models must match
  std::size_t num_shards = 1;
  std::uint64_t seed = 42;
  // Max requests routed before the window barrier (>= 1). Larger windows
  // coalesce more rows per PartialFit/PredictBatch call; window boundaries
  // are part of the deterministic batch structure, so runs that should
  // produce byte-identical snapshots must agree on this value.
  std::size_t batch_window = 64;
  // Per-shard bound on requests queued within one window; requests beyond
  // it are rejected with "ERR retry-after=1 ..." (explicit back-pressure).
  // 0 means batch_window, which a single shard can never exceed.
  std::size_t queue_capacity = 0;
  // Non-finite features / out-of-range labels: kSkip drops the row
  // ("OK ... dropped"), kImputeMidpoint imputes features with 0.0 (serve
  // rows are unscaled; there is no running scaler), kThrow rejects the
  // request ("ERR bad_row ...") -- a server must not abort on bad input.
  BadInputPolicy bad_input_policy = BadInputPolicy::kSkip;
  ModelFactory factory;
  // Optional caller-owned telemetry sink: one JSONL record per shard every
  // `export_every` windows (0 = only the final flush) and at Finish().
  JsonlExporter* exporter = nullptr;
  std::size_t export_every = 0;

  // --- Durability and lifecycle (DESIGN.md Sec. 15) ---
  // Directory for checkpoint manifests and eviction archives; "" disables
  // the whole durability layer. When set, the constructor recovers from
  // the newest complete manifest (throwing StateError on corruption or a
  // config-stamp mismatch) and Finish() writes a final checkpoint.
  std::string state_dir;
  // Config-stamp label recorded in every manifest (dmt_serve passes the
  // --model name); a manifest written under a different label refuses to
  // restore. "" matches only "".
  std::string model_kind;
  // Write a checkpoint manifest every N windows (0 = only at Finish).
  // Requires state_dir.
  std::size_t checkpoint_every = 0;
  // Resident-stream bound: after each window, least-recently-touched
  // resident streams are evicted (parked to disk) until at most this many
  // remain. 0 = unbounded. Requires state_dir.
  std::size_t max_streams = 0;
  // TTL: after each window, resident streams untouched for more than this
  // many windows are evicted. 0 = no TTL. Requires state_dir.
  std::size_t idle_windows = 0;
  // Deterministic fault injection on the request path: train/score rows
  // are corrupted at these rates by a per-stream Rng seeded
  // DeriveSeed(seed, stream_id, "inject") -- never from shard or timing --
  // so the fault trace is part of the determinism contract (identical at
  // any shard count, and checkpoint/restore preserves the generator
  // state). Serve has no "stream end", so truncate is reinterpreted: a
  // random suffix of the row's features becomes NaN.
  robust::FaultSpec inject;
};

class ServeEngine {
 public:
  // Throws StateError when eviction is configured without a state dir, or
  // when config.state_dir holds a manifest that is corrupt, version-skewed
  // or stamped with a different configuration -- recovery refuses to
  // guess. A clean or empty state dir starts fresh.
  explicit ServeEngine(ServeConfig config);
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  // Routes one request line; may emit buffered responses to `out` when the
  // line completes a window (or forces a boundary). Exactly one response
  // line per request, in request order, once Finish() has run.
  void ServeLine(std::string_view line, std::ostream& out);

  // Processes the pending partial window and emits its responses.
  void Flush(std::ostream& out);

  // Flush + final telemetry export. Idempotent; the engine accepts further
  // requests afterwards (the exporter then flushes again on the next
  // Finish).
  void Finish(std::ostream& out);

  // Convenience driver: ServeLine for every line of `in`, then Finish.
  void RunScript(std::istream& in, std::ostream& out);

  std::size_t num_streams() const { return streams_.size(); }
  // Streams whose model is in memory (num_streams minus parked streams).
  std::size_t resident_streams() const { return resident_; }
  std::size_t num_shards() const { return shards_.size(); }
  const Shard& shard(std::size_t i) const { return *shards_[i]; }
  std::uint64_t windows() const { return windows_; }
  std::uint64_t checkpoints() const { return checkpoints_; }

 private:
  struct StreamState {
    std::string id;
    std::size_t shard = 0;
    // Null while the stream is parked on disk (evicted); warm-started
    // transparently on the next touch.
    std::unique_ptr<Classifier> model;
    std::uint64_t rows_trained = 0;  // accepted rows, counted at routing
    std::uint64_t last_touch = 0;    // global request ordinal (LRU key)
    std::uint64_t last_window = 0;   // window of the last touch (TTL key)
    // Lazily created on the first injected draw; survives eviction in
    // memory and checkpoints as textual mt19937_64 state.
    std::unique_ptr<Rng> inject_rng;
  };

  // One routed request waiting for its shard task.
  struct Routed {
    Verb verb = Verb::kTrain;
    StreamState* stream = nullptr;
    std::size_t slot = 0;            // response index within the window
    std::vector<double> values;      // train: F features + label; score: F
    std::string path;                // snapshot / restore
    std::uint64_t ordinal = 0;       // train: rows_trained after this row
  };

  // Returns the (possibly just created or warm-started) stream, or nullptr
  // when a parked stream's archive cannot be loaded -- `*error` then holds
  // the diagnostic and the stream stays parked.
  StreamState* FindOrCreateStream(const std::string& id, std::string* error);
  bool WarmStart(StreamState* stream, std::string* error);
  void InjectFaults(Request* request, StreamState* stream);
  void RouteRequest(Request&& request, std::size_t slot);
  void ProcessShard(Shard* shard, std::vector<Routed>* items);
  void EvictAtBoundary();
  bool EvictStream(StreamState* stream);
  void WriteCheckpoint();
  void RecoverFromStateDir();
  void ExportTelemetry();
  std::string StatsLine() const;

  ServeConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> pool_;  // only when num_shards > 1
  std::unordered_map<std::string, StreamState> streams_;

  // Current window: per-request response slots plus per-shard queues.
  std::vector<std::string> responses_;
  std::vector<std::vector<Routed>> shard_queues_;

  // Routing-time tallies (main thread only). StatsLine reports these, so
  // `stats` responses are shard-count-independent by construction.
  std::uint64_t requests_ = 0;
  std::uint64_t parse_errors_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t bad_rows_ = 0;
  std::uint64_t values_imputed_ = 0;
  std::uint64_t train_rows_ = 0;   // accepted at routing
  std::uint64_t score_rows_ = 0;
  std::uint64_t snapshots_ = 0;
  std::uint64_t restores_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t streams_created_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t exporter_flushes_ = 0;

  // Durability layer (main thread only; shards never touch it).
  std::size_t resident_ = 0;           // streams with a model in memory
  std::uint64_t next_checkpoint_seq_ = 1;
  std::uint64_t evictions_ = 0;
  std::uint64_t warm_starts_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t injected_rows_ = 0;
  std::uint64_t state_errors_ = 0;     // non-fatal durability failures
};

}  // namespace dmt::serve

#endif  // DMT_SERVE_ENGINE_H_
