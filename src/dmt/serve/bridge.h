// Byte-stream front end of the serving engine: drives one ServeEngine
// over raw file descriptors speaking the line protocol of
// serve/request.h. Two callers share it --
//  * dmt_serve's stdin/stdout batch mode (flush_when_idle = false):
//    window boundaries come only from the request count, never from read
//    chunking, so a piped script produces byte-identical output to
//    ServeEngine::RunScript no matter how the pipe fragments;
//  * the unix-socket server (flush_when_idle = true): each fully received
//    line is answered as soon as the connection goes idle, so an
//    interactive client gets one response per request over a persistent
//    connection instead of waiting for a window to fill or the stream to
//    close.
//
// Both loops are signal-aware: `stop` points at a sig_atomic_t flag set
// by a SIGINT/SIGTERM handler (installed without SA_RESTART, so blocked
// reads return EINTR and the flag is observed promptly). On stop the
// in-flight window is drained and buffered responses are written before
// returning -- graceful shutdown, never dropped work.
#ifndef DMT_SERVE_BRIDGE_H_
#define DMT_SERVE_BRIDGE_H_

#include <csignal>
#include <string>

namespace dmt::serve {

class ServeEngine;

// Reads request lines from `in_fd` until EOF or `*stop`, writing response
// bytes to `out_fd`. An unterminated final line at EOF is served as a
// line (matching std::getline); a partial line interrupted by `stop` is
// discarded (it was never fully received). Always flushes the pending
// window before returning; does NOT call Finish -- the caller owns the
// final checkpoint / telemetry flush. Returns 0, or 1 when responses
// could not be written (dead peer).
int RunLineProtocol(ServeEngine* engine, int in_fd, int out_fd,
                    const volatile std::sig_atomic_t* stop,
                    bool flush_when_idle);

// Accept loop on a unix-domain socket at `path`: one client at a time,
// the engine (and all its models) persisting across connections; each
// connection is served per line (RunLineProtocol with flush_when_idle).
// On `*stop` the listener closes, the socket file is unlinked and the
// engine Finishes (final checkpoint + telemetry flush). Returns 0 on
// clean shutdown, 1 on a socket setup failure.
int RunUnixSocketServer(ServeEngine* engine, const std::string& path,
                        const volatile std::sig_atomic_t* stop);

}  // namespace dmt::serve

#endif  // DMT_SERVE_BRIDGE_H_
