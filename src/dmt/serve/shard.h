// Per-shard serving state (DESIGN.md Sec. 14). The engine assigns every
// stream to one shard by a stable hash of its id; a shard is the unit of
// serving parallelism, so everything here is touched by exactly one thread
// at a time (the shard's worker task during a window, the engine's routing
// thread between windows -- the window barrier separates the two).
//
// The shard owns the resources the ISSUE calls the "arena": grow-only
// reusable scratch (one Batch for coalesced train/score runs, one
// ProbaMatrix for batch scoring) and the shard's TelemetryRegistry, which
// aggregates serve.* counters and the model-level counters of every stream
// homed on the shard (models are attached to it at creation).
#ifndef DMT_SERVE_SHARD_H_
#define DMT_SERVE_SHARD_H_

#include <cstdint>
#include <string>

#include "dmt/common/types.h"
#include "dmt/obs/telemetry.h"

namespace dmt::serve {

struct Shard {
  Shard();
  // The registry hands out stable pointers; a Shard therefore never moves
  // (the engine stores unique_ptr<Shard>).
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  obs::TelemetryRegistry telemetry;

  // Cached counter/gauge pointers into `telemetry` (stable for the shard's
  // lifetime), bumped on the shard worker or, for routing-time events
  // (rejections, bad rows), by the engine between windows.
  std::uint64_t* train_rows = nullptr;   // serve.train_rows
  std::uint64_t* score_rows = nullptr;   // serve.score_rows
  std::uint64_t* snapshots = nullptr;    // serve.snapshots
  std::uint64_t* restores = nullptr;     // serve.restores
  std::uint64_t* rejected = nullptr;     // serve.rejected (back-pressure)
  std::uint64_t* bad_rows = nullptr;     // serve.bad_rows (non-finite/label)
  std::uint64_t* evictions = nullptr;    // serve.evictions (parked to disk)
  std::uint64_t* warm_starts = nullptr;  // serve.warm_starts (un-parked)
  double* last_bad_value = nullptr;      // serve.last_bad_value gauge; holds
                                         // the offending value verbatim
                                         // (possibly NaN/Inf -- the JSON
                                         // writer must survive it)
  double* resident_streams = nullptr;    // serve.resident_streams gauge;
                                         // mirrors num_streams

  // Streams currently resident (model in memory) on this shard; parked
  // streams are not counted. Kept by the engine, mirrored into the
  // resident_streams gauge.
  std::size_t num_streams = 0;

  // Grow-only scratch reused across windows: coalesced per-stream request
  // runs are staged here, so steady-state serving does not allocate
  // per request beyond the parsed request itself.
  Batch scratch_batch;
  ProbaMatrix scratch_proba;

  // One JSONL exporter record for this shard: a single-line JSON object
  // embedding the compacted telemetry document plus the shard identity.
  std::string ExportLine(std::size_t shard_index,
                         std::uint64_t flush_sequence) const;
};

}  // namespace dmt::serve

#endif  // DMT_SERVE_SHARD_H_
