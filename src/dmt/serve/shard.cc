#include "dmt/serve/shard.h"

#include "dmt/serve/exporter.h"

namespace dmt::serve {

Shard::Shard() {
  train_rows = telemetry.Counter("serve.train_rows");
  score_rows = telemetry.Counter("serve.score_rows");
  snapshots = telemetry.Counter("serve.snapshots");
  restores = telemetry.Counter("serve.restores");
  rejected = telemetry.Counter("serve.rejected");
  bad_rows = telemetry.Counter("serve.bad_rows");
  evictions = telemetry.Counter("serve.evictions");
  warm_starts = telemetry.Counter("serve.warm_starts");
  last_bad_value = telemetry.Gauge("serve.last_bad_value");
  resident_streams = telemetry.Gauge("serve.resident_streams");
}

std::string Shard::ExportLine(std::size_t shard_index,
                              std::uint64_t flush_sequence) const {
  std::string line = "{\"shard\": " + std::to_string(shard_index) +
                     ", \"flush\": " + std::to_string(flush_sequence) +
                     ", \"streams\": " + std::to_string(num_streams) +
                     ", \"telemetry\": ";
  line += CompactJson(telemetry.ToJson());
  line += "}";
  return line;
}

}  // namespace dmt::serve
