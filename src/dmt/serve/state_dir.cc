#include "dmt/serve/state_dir.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace dmt::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char kManifestPrefix[] = "manifest-";
constexpr const char kManifestSuffix[] = ".dmtm";
// Caps for decoded manifest fields; a fuzzer-supplied length fails fast.
constexpr std::size_t kMaxStreamId = 4096;
constexpr std::size_t kMaxRngText = std::size_t{1} << 16;
constexpr std::size_t kMaxArchive = std::size_t{1} << 30;
constexpr std::size_t kMaxStreams = std::size_t{1} << 24;
constexpr std::size_t kMaxModelKind = 256;

std::uint64_t Fnv1a64(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Parses the zero-padded sequence number out of a manifest file name;
// nullopt for anything that is not exactly prefix + digits + suffix
// (which also skips stale ".tmp" leftovers from a crashed write).
std::optional<std::uint64_t> ManifestSeqOf(const std::string& name) {
  const std::size_t prefix = sizeof(kManifestPrefix) - 1;
  const std::size_t suffix = sizeof(kManifestSuffix) - 1;
  if (name.size() <= prefix + suffix) return std::nullopt;
  if (name.compare(0, prefix, kManifestPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix, suffix, kManifestSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = prefix; i < name.size() - suffix; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

void EncodeManifest(serial::Writer& writer, const Manifest& manifest) {
  writer.Header(kTagManifest);
  writer.U64(manifest.seq);
  writer.Str(manifest.model_kind);
  writer.I32(manifest.num_features);
  writer.I32(manifest.num_classes);
  writer.U64(manifest.seed);
  writer.U64(manifest.batch_window);
  for (const double rate : manifest.inject_rates) writer.F64(rate);
  const ManifestTallies& t = manifest.tallies;
  for (const std::uint64_t v :
       {t.requests, t.parse_errors, t.rejected, t.bad_rows, t.values_imputed,
        t.train_rows, t.score_rows, t.snapshots, t.restores, t.drops,
        t.streams_created, t.windows, t.evictions, t.warm_starts,
        t.checkpoints, t.injected_rows, t.state_errors}) {
    writer.U64(v);
  }
  writer.Size(manifest.streams.size());
  for (const ManifestStream& stream : manifest.streams) {
    writer.Str(stream.id);
    writer.Bool(stream.resident);
    writer.U64(stream.rows_trained);
    writer.U64(stream.last_touch);
    writer.U64(stream.last_window);
    writer.Str(stream.inject_rng);
    writer.Str(stream.archive);
  }
}

Manifest DecodeManifest(serial::Reader& reader) {
  Manifest manifest;
  reader.Header(kTagManifest);
  manifest.seq = reader.U64();
  manifest.model_kind = reader.Str(kMaxModelKind);
  manifest.num_features = static_cast<std::int32_t>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "manifest num_features"));
  manifest.num_classes = static_cast<std::int32_t>(serial::CheckedRange(
      reader.I32(), 2, serial::kMaxClasses, "manifest num_classes"));
  manifest.seed = reader.U64();
  manifest.batch_window = reader.U64();
  serial::CheckedRange(static_cast<std::int64_t>(manifest.batch_window), 1,
                       std::int64_t{1} << 32, "manifest batch_window");
  for (double& rate : manifest.inject_rates) {
    rate = serial::CheckedFinite(reader.F64(), "manifest inject rate");
    serial::Check(rate >= 0.0 && rate <= 1.0,
                  "manifest inject rate out of [0,1]");
  }
  ManifestTallies& t = manifest.tallies;
  for (std::uint64_t* v :
       {&t.requests, &t.parse_errors, &t.rejected, &t.bad_rows,
        &t.values_imputed, &t.train_rows, &t.score_rows, &t.snapshots,
        &t.restores, &t.drops, &t.streams_created, &t.windows, &t.evictions,
        &t.warm_starts, &t.checkpoints, &t.injected_rows, &t.state_errors}) {
    *v = reader.U64();
  }
  const std::size_t count = reader.Size(kMaxStreams);
  manifest.streams.reserve(std::min<std::size_t>(count, 4096));
  for (std::size_t i = 0; i < count; ++i) {
    ManifestStream stream;
    stream.id = reader.Str(kMaxStreamId);
    serial::Check(!stream.id.empty(), "manifest stream id is empty");
    stream.resident = reader.Bool();
    stream.rows_trained = reader.U64();
    stream.last_touch = reader.U64();
    stream.last_window = reader.U64();
    stream.inject_rng = reader.Str(kMaxRngText);
    stream.archive = reader.Str(kMaxArchive);
    serial::Check(!stream.archive.empty(), "manifest stream archive is empty");
    manifest.streams.push_back(std::move(stream));
  }
  return manifest;
}

// Write-to-temp + rename of one encoded payload; shared by the manifest
// and eviction-archive writers. Removes its own temp file on failure.
template <typename EncodeFn>
void AtomicPublish(const std::string& path, const char* what,
                   EncodeFn&& encode) {
  const std::string tmp = path + ".tmp";
  try {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw StateError(std::string("cannot write ") + what + ": " + tmp);
    serial::Writer writer(out);
    encode(writer);
    out.flush();
    if (!out) throw StateError(std::string(what) + " write failed: " + tmp);
  } catch (const serial::SerialError& e) {
    std::remove(tmp.c_str());
    throw StateError(std::string(what) + " write failed: " + e.what());
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw StateError(std::string("cannot publish ") + what + ": " + path);
  }
}

}  // namespace

std::string ManifestFileName(std::uint64_t seq) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%020llu%s", kManifestPrefix,
                static_cast<unsigned long long>(seq), kManifestSuffix);
  return name;
}

std::string EvictionFileName(const std::string& stream_id) {
  std::string prefix;
  for (const char c : stream_id) {
    if (prefix.size() >= 40) break;
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
    prefix.push_back(safe ? c : '_');
  }
  char hash[24];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(stream_id)));
  return prefix + "-" + hash + ".dmts";
}

void EnsureStateDir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(fs::path(dir) / "evicted", ec);
  if (ec || !fs::is_directory(dir)) {
    throw StateError("cannot create state dir: " + dir +
                     (ec ? " (" + ec.message() + ")" : ""));
  }
}

void WriteManifest(const std::string& dir, const Manifest& manifest) {
  EnsureStateDir(dir);
  const std::string path =
      (fs::path(dir) / ManifestFileName(manifest.seq)).string();
  AtomicPublish(path, "checkpoint manifest",
                [&manifest](serial::Writer& writer) {
                  EncodeManifest(writer, manifest);
                });
  // Prune: keep this manifest and its predecessor (the spare covers the
  // window between two checkpoints where the newest could be the one a
  // concurrent reader -- a backup script, say -- is still copying).
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::optional<std::uint64_t> seq =
        ManifestSeqOf(entry.path().filename().string());
    if (seq && manifest.seq >= 2 && *seq < manifest.seq - 1) {
      std::error_code remove_ec;
      fs::remove(entry.path(), remove_ec);
    }
  }
}

std::optional<Manifest> LoadNewestManifest(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return std::nullopt;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    throw StateError("cannot scan state dir: " + dir + " (" + ec.message() +
                     ")");
  }
  std::optional<std::uint64_t> newest;
  for (const fs::directory_entry& entry : it) {
    const std::optional<std::uint64_t> seq =
        ManifestSeqOf(entry.path().filename().string());
    if (seq && (!newest || *seq > *newest)) newest = seq;
  }
  if (!newest) return std::nullopt;
  const std::string path = (fs::path(dir) / ManifestFileName(*newest)).string();
  std::ifstream in(path, std::ios::binary);
  if (!in) throw StateError("cannot open checkpoint manifest: " + path);
  try {
    serial::Reader reader(in);
    Manifest manifest = DecodeManifest(reader);
    if (manifest.seq != *newest) {
      throw StateError("manifest " + path + " records sequence " +
                       std::to_string(manifest.seq) +
                       ", file name says " + std::to_string(*newest));
    }
    return manifest;
  } catch (const serial::SerialError& e) {
    throw StateError("corrupt checkpoint manifest " + path + ": " + e.what());
  }
}

void WriteEvictionArchive(const std::string& dir, const std::string& stream_id,
                          const std::string& archive) {
  const std::string path =
      (fs::path(dir) / "evicted" / EvictionFileName(stream_id)).string();
  AtomicPublish(path, "eviction archive",
                [&stream_id, &archive](serial::Writer& writer) {
                  writer.Header(kTagEviction);
                  writer.Str(stream_id);
                  writer.Str(archive);
                });
}

std::string ReadEvictionArchive(const std::string& dir,
                                const std::string& stream_id) {
  const std::string path =
      (fs::path(dir) / "evicted" / EvictionFileName(stream_id)).string();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw StateError("no eviction archive for stream '" + stream_id +
                     "': " + path);
  }
  try {
    serial::Reader reader(in);
    reader.Header(kTagEviction);
    const std::string recorded = reader.Str(kMaxStreamId);
    if (recorded != stream_id) {
      throw StateError("eviction archive " + path + " holds stream '" +
                       recorded + "', expected '" + stream_id + "'");
    }
    return reader.Str(kMaxArchive);
  } catch (const serial::SerialError& e) {
    throw StateError("corrupt eviction archive " + path + ": " + e.what());
  }
}

void RemoveEvictionArchive(const std::string& dir,
                           const std::string& stream_id) {
  std::error_code ec;
  fs::remove(fs::path(dir) / "evicted" / EvictionFileName(stream_id), ec);
}

}  // namespace dmt::serve
