// Streaming telemetry exporter: periodic per-shard JSONL flushes (one JSON
// object per line) to a file or any ostream, so a live dashboard can tail
// splits/drift/resets while the engine serves (DESIGN.md Sec. 14).
//
// Flushes happen on the engine's routing thread at window barriers (every
// --export-every windows and once at shutdown), never concurrently with
// shard workers, so no synchronization is needed beyond the ostream's own.
#ifndef DMT_SERVE_EXPORTER_H_
#define DMT_SERVE_EXPORTER_H_

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>

namespace dmt::serve {

// Collapses the pretty-printed TelemetryRegistry::ToJson() document to one
// line by dropping newlines and the indentation that follows them. Safe
// because metric names are library-chosen identifiers: no string in the
// document contains a newline, and spaces inside the document only occur
// after ':' / ',' separators or line breaks.
std::string CompactJson(const std::string& pretty);

class JsonlExporter {
 public:
  // Appends to `path` (created if absent). ok() reports whether the sink
  // opened; a failed exporter degrades to dropping lines, and the engine
  // surfaces the failure in its stats.
  explicit JsonlExporter(const std::string& path);
  // Writes to a caller-owned ostream (tests; socket-backed sinks).
  explicit JsonlExporter(std::ostream* out);

  bool ok() const { return out_ != nullptr && out_->good(); }
  std::uint64_t lines_written() const { return lines_written_; }
  std::uint64_t lines_dropped() const { return lines_dropped_; }

  // Appends one JSONL record (the line must not contain '\n') and flushes,
  // so a tailing reader never sits on a half-written line.
  void WriteLine(const std::string& line);

 private:
  std::ofstream file_;        // backing store for the path constructor
  std::ostream* out_ = nullptr;
  std::uint64_t lines_written_ = 0;
  std::uint64_t lines_dropped_ = 0;
};

}  // namespace dmt::serve

#endif  // DMT_SERVE_EXPORTER_H_
