#include "dmt/serve/bridge.h"

#include <cerrno>
#include <cstdio>
#include <sstream>
#include <string_view>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "dmt/serve/engine.h"

namespace dmt::serve {

namespace {

// EINTR-aware full write; false means the peer is gone (further responses
// have nowhere to go).
bool WriteAll(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t w =
        ::write(fd, data.data() + written, data.size() - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(w);
  }
  return true;
}

// Moves buffered response bytes out to the fd and resets the buffer.
bool Drain(std::ostringstream* pending, int out_fd) {
  std::string text = pending->str();
  if (text.empty()) return true;
  pending->str(std::string());
  return WriteAll(out_fd, text);
}

}  // namespace

int RunLineProtocol(ServeEngine* engine, int in_fd, int out_fd,
                    const volatile std::sig_atomic_t* stop,
                    bool flush_when_idle) {
  std::ostringstream pending;
  std::string buffer;
  char chunk[4096];
  bool ok = true;
  bool eof = false;
  while (true) {
    if (stop != nullptr && *stop != 0) break;
    const ssize_t n = ::read(in_fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks *stop
      break;                         // read failure: treat as end of input
    }
    if (n == 0) {
      eof = true;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      engine->ServeLine(std::string_view(buffer).substr(start, nl - start),
                        pending);
      start = nl + 1;
    }
    buffer.erase(0, start);
    if (flush_when_idle) {
      // Interactive mode: no more complete lines are buffered, so answer
      // everything received instead of waiting for the window to fill.
      engine->Flush(pending);
    }
    if (!Drain(&pending, out_fd)) {
      ok = false;
      break;
    }
  }
  // An unterminated final line at EOF is a request (std::getline
  // semantics); a partial line cut off by `stop` is not -- it was never
  // fully received and serving half a request would be worse than none.
  if (eof && !buffer.empty()) engine->ServeLine(buffer, pending);
  engine->Flush(pending);
  if (!Drain(&pending, out_fd)) ok = false;
  return ok ? 0 : 1;
}

int RunUnixSocketServer(ServeEngine* engine, const std::string& path,
                        const volatile std::sig_atomic_t* stop) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("dmt_serve: socket");
    return 1;
  }
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "dmt_serve: socket path too long: %s\n",
                 path.c_str());
    ::close(listener);
    return 1;
  }
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listener, 1) < 0) {
    std::perror("dmt_serve: bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "dmt_serve: listening on %s\n", path.c_str());
  while (stop == nullptr || *stop == 0) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks *stop
      std::perror("dmt_serve: accept");
      break;
    }
    RunLineProtocol(engine, client, client, stop,
                    /*flush_when_idle=*/true);
    ::close(client);
  }
  ::close(listener);
  ::unlink(path.c_str());
  // Graceful shutdown: every connection already drained its responses, so
  // Finish only writes the final checkpoint and flushes telemetry.
  std::ostringstream sink;
  engine->Finish(sink);
  return 0;
}

}  // namespace dmt::serve
