#include "dmt/serve/exporter.h"

namespace dmt::serve {

std::string CompactJson(const std::string& pretty) {
  std::string out;
  out.reserve(pretty.size());
  bool at_line_start = false;
  for (const char c : pretty) {
    if (c == '\n') {
      at_line_start = true;
      continue;
    }
    if (at_line_start && (c == ' ' || c == '\t')) continue;
    at_line_start = false;
    out.push_back(c);
  }
  return out;
}

JsonlExporter::JsonlExporter(const std::string& path)
    : file_(path, std::ios::app) {
  if (file_) out_ = &file_;
}

JsonlExporter::JsonlExporter(std::ostream* out) : out_(out) {}

void JsonlExporter::WriteLine(const std::string& line) {
  if (out_ == nullptr || !out_->good()) {
    ++lines_dropped_;
    return;
  }
  *out_ << line << '\n';
  out_->flush();
  if (out_->good()) {
    ++lines_written_;
  } else {
    ++lines_dropped_;
  }
}

}  // namespace dmt::serve
