#include "dmt/streams/scaler.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"

namespace dmt::streams {

void OnlineMinMaxScaler::FitTransform(Batch* batch) {
  DMT_CHECK(batch != nullptr);
  DMT_CHECK(batch->num_features() == mins_.size());
  // Strictly per row, update-then-transform: updating the ranges with the
  // whole batch before rescaling any row would leak within-batch future
  // statistics into earlier rows -- a test-then-train protocol violation
  // (an observation may only be preprocessed with information available
  // before it arrived).
  for (std::size_t i = 0; i < batch->size(); ++i) {
    const std::span<double> row = batch->mutable_row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      // std::min(x, NaN) is NaN when NaN is the second argument, so one
      // bad value would otherwise poison the range permanently.
      if (!std::isfinite(row[j])) continue;
      mins_[j] = std::min(mins_[j], row[j]);
      maxs_[j] = std::max(maxs_[j], row[j]);
    }
    Transform(row);
  }
}

void OnlineMinMaxScaler::Transform(std::span<double> x) const {
  DMT_DCHECK(x.size() == mins_.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (!std::isfinite(x[j])) continue;  // leave faults visible downstream
    const double range = maxs_[j] - mins_[j];
    if (range <= 0.0) {
      x[j] = 0.5;  // constant feature so far: map to the range midpoint
    } else {
      x[j] = std::clamp((x[j] - mins_[j]) / range, 0.0, 1.0);
    }
  }
}

void OnlineMinMaxScaler::MidpointsInto(std::span<double> out) const {
  DMT_DCHECK(out.size() == mins_.size());
  for (std::size_t j = 0; j < out.size(); ++j) {
    const double range = maxs_[j] - mins_[j];
    out[j] = range <= 0.0 ? 0.0 : 0.5 * (mins_[j] + maxs_[j]);
  }
}

}  // namespace dmt::streams
