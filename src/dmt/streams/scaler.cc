#include "dmt/streams/scaler.h"

#include <algorithm>

#include "dmt/common/check.h"

namespace dmt::streams {

void OnlineMinMaxScaler::FitTransform(Batch* batch) {
  DMT_CHECK(batch != nullptr);
  DMT_CHECK(batch->num_features() == mins_.size());
  for (std::size_t i = 0; i < batch->size(); ++i) {
    const std::span<const double> row = batch->row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      mins_[j] = std::min(mins_[j], row[j]);
      maxs_[j] = std::max(maxs_[j], row[j]);
    }
  }
  for (std::size_t i = 0; i < batch->size(); ++i) {
    Transform(batch->mutable_row(i));
  }
}

void OnlineMinMaxScaler::Transform(std::span<double> x) const {
  DMT_DCHECK(x.size() == mins_.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double range = maxs_[j] - mins_[j];
    if (range <= 0.0) {
      x[j] = 0.5;  // constant feature so far: map to the range midpoint
    } else {
      x[j] = std::clamp((x[j] - mins_[j]) / range, 0.0, 1.0);
    }
  }
}

}  // namespace dmt::streams
