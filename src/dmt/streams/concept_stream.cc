#include "dmt/streams/concept_stream.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"
#include "dmt/common/math.h"

namespace dmt::streams {

// A hidden concept: maps x in [0,1]^m to a class distribution.
class ConceptStream::Teacher {
 public:
  // Random axis-aligned tree teacher. Each leaf has a dominant class drawn
  // from `priors` with `leaf_purity` mass; the remaining mass is spread
  // proportionally to the priors, so the marginal P(Y) tracks the priors.
  static std::unique_ptr<Teacher> MakeTree(std::size_t num_features,
                                           std::size_t num_classes, int depth,
                                           const std::vector<double>& priors,
                                           double leaf_purity, Rng* rng);
  // Random linear softmax teacher with prior-tilted biases.
  static std::unique_ptr<Teacher> MakeLinear(std::size_t num_features,
                                             std::size_t num_classes,
                                             const std::vector<double>& priors,
                                             Rng* rng);

  // Hybrid teacher: mixture of a tree and a linear part.
  static std::unique_ptr<Teacher> MakeHybrid(std::unique_ptr<Teacher> tree,
                                             std::unique_ptr<Teacher> linear,
                                             double linear_weight);

  std::vector<double> Posterior(std::span<const double> x) const;

 private:
  bool is_tree_ = true;
  // Hybrid parts (non-null only for hybrid teachers).
  std::unique_ptr<Teacher> hybrid_tree_;
  std::unique_ptr<Teacher> hybrid_linear_;
  double hybrid_linear_weight_ = 0.0;
  std::size_t num_features_ = 0;
  std::size_t num_classes_ = 0;
  // Tree teacher: a perfect binary tree in array form. Node i has children
  // 2i+1, 2i+2; nodes at depth `depth_` are leaves.
  int depth_ = 0;
  std::vector<int> split_feature_;
  std::vector<double> split_value_;
  std::vector<std::vector<double>> leaf_dist_;
  // Linear teacher: class-major weights [w_c(0..m-1), b_c].
  std::vector<double> weights_;
};

std::unique_ptr<ConceptStream::Teacher> ConceptStream::Teacher::MakeTree(
    std::size_t num_features, std::size_t num_classes, int depth,
    const std::vector<double>& priors, double leaf_purity, Rng* rng) {
  auto teacher = std::make_unique<Teacher>();
  teacher->is_tree_ = true;
  teacher->num_features_ = num_features;
  teacher->num_classes_ = num_classes;
  teacher->depth_ = depth;
  const std::size_t num_inner = (std::size_t{1} << depth) - 1;
  const std::size_t num_leaves = std::size_t{1} << depth;
  teacher->split_feature_.resize(num_inner);
  teacher->split_value_.resize(num_inner);

  // Build splits top-down tracking each feature's conditional interval so
  // that thresholds land strictly inside their region (no empty leaves) and
  // the probability mass of each leaf under X ~ U[0,1]^m is known exactly.
  std::vector<double> leaf_mass(num_leaves, 0.0);
  std::vector<std::pair<double, double>> intervals(num_features, {0.0, 1.0});
  auto build = [&](auto&& self, std::size_t node,
                   std::vector<std::pair<double, double>>& bounds) -> void {
    if (node >= num_inner) {
      double mass = 1.0;
      for (const auto& [lo, hi] : bounds) mass *= hi - lo;
      leaf_mass[node - num_inner] = mass;
      return;
    }
    const int feature = rng->UniformInt(0, static_cast<int>(num_features) - 1);
    auto& [lo, hi] = bounds[feature];
    const double threshold = lo + rng->Uniform(0.3, 0.7) * (hi - lo);
    teacher->split_feature_[node] = feature;
    teacher->split_value_[node] = threshold;
    const double saved_hi = hi;
    hi = threshold;
    self(self, 2 * node + 1, bounds);
    hi = saved_hi;
    const double saved_lo = lo;
    lo = threshold;
    self(self, 2 * node + 2, bounds);
    lo = saved_lo;
  };
  build(build, 0, intervals);

  // Assign dominant classes to leaves so that the aggregate dominated mass
  // tracks the desired priors: repeatedly give the heaviest unassigned leaf
  // to the class with the largest remaining prior deficit.
  std::vector<std::size_t> by_mass(num_leaves);
  for (std::size_t l = 0; l < num_leaves; ++l) by_mass[l] = l;
  std::sort(by_mass.begin(), by_mass.end(), [&](std::size_t a, std::size_t b) {
    return leaf_mass[a] > leaf_mass[b];
  });
  std::vector<double> deficit = priors;
  std::vector<int> dominant(num_leaves, 0);
  for (std::size_t l : by_mass) {
    const int best = static_cast<int>(
        std::max_element(deficit.begin(), deficit.end()) - deficit.begin());
    dominant[l] = best;
    deficit[best] -= leaf_mass[l];
  }

  teacher->leaf_dist_.resize(num_leaves);
  for (std::size_t l = 0; l < num_leaves; ++l) {
    std::vector<double>& dist = teacher->leaf_dist_[l];
    dist.resize(num_classes);
    for (std::size_t c = 0; c < num_classes; ++c) {
      dist[c] = (1.0 - leaf_purity) * priors[c];
    }
    dist[dominant[l]] += leaf_purity;
    double sum = 0.0;
    for (double v : dist) sum += v;
    for (double& v : dist) v /= sum;
  }
  return teacher;
}

std::unique_ptr<ConceptStream::Teacher> ConceptStream::Teacher::MakeLinear(
    std::size_t num_features, std::size_t num_classes,
    const std::vector<double>& priors, Rng* rng) {
  auto teacher = std::make_unique<Teacher>();
  teacher->is_tree_ = false;
  teacher->num_features_ = num_features;
  teacher->num_classes_ = num_classes;
  const std::size_t stride = num_features + 1;
  teacher->weights_.resize(num_classes * stride);
  for (std::size_t c = 0; c < num_classes; ++c) {
    double* w = teacher->weights_.data() + c * stride;
    double mean_w = 0.0;
    for (std::size_t j = 0; j < num_features; ++j) {
      w[j] = rng->Gaussian(0.0, 4.0);
      mean_w += w[j];
    }
    // Center the activation around zero over x ~ U[0,1]^m; the bias is then
    // calibrated below so the marginal P(Y) matches `priors`.
    w[num_features] = -0.5 * mean_w;
  }

  // Calibrate the biases against the desired priors: estimate the marginal
  // class distribution on a probe sample and shift each bias by the log
  // ratio, iterating to convergence. (A plain log-prior tilt is swamped by
  // the weight magnitude and would leave the marginals near-uniform.)
  std::vector<std::vector<double>> probes(512);
  for (auto& probe : probes) {
    probe.resize(num_features);
    for (double& v : probe) v = rng->Uniform();
  }
  for (int iteration = 0; iteration < 30; ++iteration) {
    std::vector<double> marginal(num_classes, 1e-6);
    for (const auto& probe : probes) {
      const std::vector<double> posterior = teacher->Posterior(probe);
      for (std::size_t c = 0; c < num_classes; ++c) {
        marginal[c] += posterior[c];
      }
    }
    double total = 0.0;
    for (double v : marginal) total += v;
    for (std::size_t c = 0; c < num_classes; ++c) {
      teacher->weights_[c * stride + num_features] +=
          std::log(priors[c] / (marginal[c] / total));
    }
  }
  return teacher;
}

std::unique_ptr<ConceptStream::Teacher> ConceptStream::Teacher::MakeHybrid(
    std::unique_ptr<Teacher> tree, std::unique_ptr<Teacher> linear,
    double linear_weight) {
  auto teacher = std::make_unique<Teacher>();
  teacher->hybrid_tree_ = std::move(tree);
  teacher->hybrid_linear_ = std::move(linear);
  teacher->hybrid_linear_weight_ = linear_weight;
  return teacher;
}

std::vector<double> ConceptStream::Teacher::Posterior(
    std::span<const double> x) const {
  if (hybrid_tree_ != nullptr) {
    std::vector<double> p = hybrid_linear_->Posterior(x);
    const std::vector<double> q = hybrid_tree_->Posterior(x);
    const double w = hybrid_linear_weight_;
    for (std::size_t c = 0; c < p.size(); ++c) {
      p[c] = w * p[c] + (1.0 - w) * q[c];
    }
    return p;
  }
  if (is_tree_) {
    std::size_t node = 0;
    const std::size_t num_inner = split_feature_.size();
    while (node < num_inner) {
      const bool left = x[split_feature_[node]] <= split_value_[node];
      node = 2 * node + (left ? 1 : 2);
    }
    return leaf_dist_[node - num_inner];
  }
  const std::size_t stride = num_features_ + 1;
  std::vector<double> logits(num_classes_);
  for (std::size_t c = 0; c < num_classes_; ++c) {
    const double* w = weights_.data() + c * stride;
    logits[c] = Dot(x, {w, num_features_}) + w[num_features_];
  }
  SoftmaxInPlace(logits);
  return logits;
}

ConceptStream::ConceptStream(const ConceptStreamConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config_.num_features >= 1);
  DMT_CHECK(config_.num_classes >= 2);
  if (config_.class_priors.empty()) {
    config_.class_priors.assign(config_.num_classes,
                                1.0 / config_.num_classes);
  }
  DMT_CHECK(config_.class_priors.size() == config_.num_classes);
  if (config_.tree_depth <= 0) {
    // Enough leaves that every class can dominate several regions.
    config_.tree_depth =
        std::max(3, static_cast<int>(
                        std::ceil(std::log2(config_.num_classes)) + 2));
  }
  std::sort(config_.drift_events.begin(), config_.drift_events.end(),
            [](const DriftEvent& a, const DriftEvent& b) {
              return a.begin < b.begin;
            });
  current_ = MakeTeacher();
}

ConceptStream::~ConceptStream() = default;

std::unique_ptr<ConceptStream::Teacher> ConceptStream::MakeTeacher() {
  if (config_.teacher == TeacherKind::kTree) {
    return Teacher::MakeTree(config_.num_features, config_.num_classes,
                             config_.tree_depth, config_.class_priors,
                             config_.leaf_purity, &rng_);
  }
  if (config_.teacher == TeacherKind::kLinear) {
    return Teacher::MakeLinear(config_.num_features, config_.num_classes,
                               config_.class_priors, &rng_);
  }
  auto tree = Teacher::MakeTree(config_.num_features, config_.num_classes,
                                config_.tree_depth, config_.class_priors,
                                config_.leaf_purity, &rng_);
  auto linear = Teacher::MakeLinear(config_.num_features, config_.num_classes,
                                    config_.class_priors, &rng_);
  return Teacher::MakeHybrid(std::move(tree), std::move(linear),
                             config_.hybrid_linear_weight);
}

double ConceptStream::NextTeacherWeight() const {
  if (next_event_ >= config_.drift_events.size()) return 0.0;
  const DriftEvent& e = config_.drift_events[next_event_];
  const auto begin = static_cast<std::size_t>(
      e.begin * static_cast<double>(config_.total_samples));
  const auto end = static_cast<std::size_t>(
      e.end * static_cast<double>(config_.total_samples));
  if (position_ < begin) return 0.0;
  if (end <= begin || position_ >= end) return 1.0;
  return static_cast<double>(position_ - begin) /
         static_cast<double>(end - begin);
}

std::vector<double> ConceptStream::Posterior(std::span<const double> x) const {
  std::vector<double> p = current_->Posterior(x);
  const double alpha = NextTeacherWeight();
  if (alpha > 0.0 && next_ != nullptr) {
    const std::vector<double> q = next_->Posterior(x);
    for (std::size_t c = 0; c < p.size(); ++c) {
      p[c] = (1.0 - alpha) * p[c] + alpha * q[c];
    }
  }
  return p;
}

bool ConceptStream::NextInstance(Instance* out) {
  if (position_ >= config_.total_samples) return false;

  // Enter / commit drift events.
  if (next_event_ < config_.drift_events.size()) {
    const DriftEvent& e = config_.drift_events[next_event_];
    const auto begin = static_cast<std::size_t>(
        e.begin * static_cast<double>(config_.total_samples));
    const auto end = static_cast<std::size_t>(
        e.end * static_cast<double>(config_.total_samples));
    if (position_ >= begin && next_ == nullptr) next_ = MakeTeacher();
    if (position_ >= std::max(begin + 1, end) && next_ != nullptr) {
      current_ = std::move(next_);
      ++next_event_;
    }
  }

  out->x.resize(config_.num_features);
  for (double& v : out->x) v = rng_.Uniform(0.0, 1.0);
  const std::vector<double> posterior = Posterior(out->x);
  out->y = rng_.Categorical(posterior);
  if (config_.noise > 0.0 && rng_.Bernoulli(config_.noise)) {
    out->y = rng_.UniformInt(0, static_cast<int>(config_.num_classes) - 1);
  }
  ++position_;
  return true;
}

}  // namespace dmt::streams
