// Three further classic stream-learning generators (MOA / scikit-multiflow
// standards), rounding out the benchmark suite beyond the paper's three:
//
//  * RandomRbfGenerator -- labeled Gaussian blobs whose centroids move with
//    a configurable speed (incremental drift over P(X) and P(Y|X)).
//  * StaggerGenerator -- the STAGGER boolean concepts (three categorical
//    features, three abruptly interchangeable rules).
//  * LedGenerator -- the 7-segment LED digit problem with a configurable
//    number of noisy/irrelevant attributes.
#ifndef DMT_STREAMS_CLASSIC_GENERATORS_H_
#define DMT_STREAMS_CLASSIC_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "dmt/common/random.h"
#include "dmt/streams/stream.h"

namespace dmt::streams {

struct RandomRbfConfig {
  std::size_t num_features = 10;
  std::size_t num_classes = 4;
  std::size_t num_centroids = 20;
  // Distance each centroid moves per emitted instance (0 = stationary).
  double drift_speed = 0.0;
  std::size_t total_samples = 100'000;
  std::uint64_t seed = 42;
};

class RandomRbfGenerator : public Stream {
 public:
  explicit RandomRbfGenerator(const RandomRbfConfig& config);

  bool NextInstance(Instance* out) override;
  std::size_t num_features() const override { return config_.num_features; }
  std::size_t num_classes() const override { return config_.num_classes; }
  std::string name() const override { return "RandomRBF"; }

 private:
  struct Centroid {
    std::vector<double> center;
    std::vector<double> direction;
    int label = 0;
    double stddev = 0.1;
    double weight = 1.0;
  };

  RandomRbfConfig config_;
  Rng rng_;
  std::size_t position_ = 0;
  std::vector<Centroid> centroids_;
  std::vector<double> centroid_weights_;
};

struct StaggerConfig {
  // Active rule: 0: (size=small AND color=red); 1: (color=green OR
  // shape=circle); 2: (size=medium OR size=large).
  int initial_rule = 0;
  std::vector<std::size_t> drift_points;  // rule cycles at these indices
  double noise = 0.0;
  std::size_t total_samples = 100'000;
  std::uint64_t seed = 42;
};

class StaggerGenerator : public Stream {
 public:
  explicit StaggerGenerator(const StaggerConfig& config);

  bool NextInstance(Instance* out) override;
  std::size_t num_features() const override { return 3; }
  std::size_t num_classes() const override { return 2; }
  std::string name() const override { return "STAGGER"; }

  int active_rule() const { return rule_; }
  // Classification rule, exposed for tests. Features are size (0-2),
  // color (0-2), shape (0-2).
  static int Classify(int rule, double size, double color, double shape);

 private:
  StaggerConfig config_;
  Rng rng_;
  std::size_t position_ = 0;
  int rule_;
};

struct LedConfig {
  // Probability that each of the 7 segment attributes is inverted.
  double noise = 0.1;
  // Additional irrelevant binary attributes appended to the 7 segments.
  std::size_t num_irrelevant = 17;
  std::size_t total_samples = 100'000;
  std::uint64_t seed = 42;
};

class LedGenerator : public Stream {
 public:
  explicit LedGenerator(const LedConfig& config);

  bool NextInstance(Instance* out) override;
  std::size_t num_features() const override {
    return 7 + config_.num_irrelevant;
  }
  std::size_t num_classes() const override { return 10; }
  std::string name() const override { return "LED"; }

 private:
  LedConfig config_;
  Rng rng_;
  std::size_t position_ = 0;
};

}  // namespace dmt::streams

#endif  // DMT_STREAMS_CLASSIC_GENERATORS_H_
