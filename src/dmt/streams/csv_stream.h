// Streaming CSV reader: turns a tabular CSV file into a classification
// Stream, so the paper's actual data sets (Electricity, Airlines, ... from
// https://www.openml.org) can be replayed through the same prequential
// harness when they are available.
//
// Semantics follow the paper's preprocessing (Sec. VI-B): the label column
// is factorized (string labels mapped to dense class indices in order of
// first appearance), every other column must parse as a number, and
// non-numeric feature values (categorical strings) are factorized the same
// way. Normalization to [0,1] is applied later by the evaluation harness.
// Rows are read incrementally; the whole file is never loaded into memory.
#ifndef DMT_STREAMS_CSV_STREAM_H_
#define DMT_STREAMS_CSV_STREAM_H_

#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "dmt/streams/stream.h"

namespace dmt::streams {

// Malformed-input error of CsvStream, carrying "path:line: message". Thrown
// (not aborted on): one bad data file must not kill a multi-cell sweep, so
// callers can catch it, report the cell as failed and move on.
class CsvError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CsvStreamConfig {
  std::string path;
  // Label column by name (preferred) or by index if name is empty;
  // -1 means the last column.
  std::string label_column;
  int label_index = -1;
  char delimiter = ',';
  bool has_header = true;
  // Number of classes; 0 scans the label column once upfront to count them
  // (needed because classifiers are constructed before streaming starts).
  std::size_t num_classes = 0;
};

class CsvStream : public Stream {
 public:
  // Opens the file, reads the header, and (if num_classes == 0) performs a
  // one-time scan to enumerate the classes. Throws CsvError with a clear
  // message on malformed input -- this is an offline configuration step,
  // not a hot path.
  explicit CsvStream(const CsvStreamConfig& config);

  // Throws CsvError on a malformed row (wrong column count, unseen label,
  // embedded NUL byte, oversized line, row truncated by EOF). The stream
  // position stays consistent after a caught error: the bad line is
  // consumed, so the next call resumes at the following line -- a caller
  // may catch-and-continue to skip isolated bad rows.
  bool NextInstance(Instance* out) override;
  std::size_t num_features() const override { return num_features_; }
  std::size_t num_classes() const override { return classes_.size(); }
  std::string name() const override { return name_; }

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  // Class labels in index order.
  std::vector<std::string> class_names() const;

 private:
  void OpenAndSkipHeader();
  bool ParseRow(const std::string& line, Instance* out);

  CsvStreamConfig config_;
  std::string name_;
  std::ifstream file_;
  std::size_t num_features_ = 0;
  std::size_t label_position_ = 0;  // resolved column index of the label
  std::vector<std::string> feature_names_;
  std::map<std::string, int> classes_;
  // Factorization of non-numeric feature values, per column.
  std::vector<std::map<std::string, double>> factor_levels_;
  std::size_t line_number_ = 0;
};

}  // namespace dmt::streams

#endif  // DMT_STREAMS_CSV_STREAM_H_
