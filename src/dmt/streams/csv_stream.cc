#include "dmt/streams/csv_stream.h"

#include <cstdlib>
#include <filesystem>

#include "dmt/common/check.h"

namespace dmt::streams {

namespace {

// A std::getline(stream, cell, delim) loop would drop a trailing empty
// field ("a,b," yields 2 cells, not 3), silently misreporting a row with a
// missing last value as a column-count mismatch -- or, with the label in
// front, shifting every feature by one. Splitting on delimiter positions
// keeps every field, trailing empties included.
std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> cells;
  std::size_t start = 0;
  while (true) {
    const std::size_t delim = line.find(delimiter, start);
    const std::size_t length =
        (delim == std::string::npos ? line.size() : delim) - start;
    const std::string cell = line.substr(start, length);
    // Trim surrounding whitespace and optional quotes.
    const std::size_t begin = cell.find_first_not_of(" \t\r\"");
    const std::size_t end = cell.find_last_not_of(" \t\r\"");
    cells.push_back(begin == std::string::npos
                        ? std::string()
                        : cell.substr(begin, end - begin + 1));
    if (delim == std::string::npos) break;
    start = delim + 1;
  }
  return cells;
}

[[noreturn]] void Fail(const std::string& path, std::size_t line,
                       const std::string& message) {
  throw CsvError("CsvStream(" + path + ":" + std::to_string(line) +
                 "): " + message);
}

// Upper bound on one physical line. Real rows in the paper's data sets are
// a few hundred bytes; a multi-megabyte "line" means a corrupt or
// adversarial file (e.g. a binary blob with no newlines) and is rejected
// before it can be copied around cell by cell.
constexpr std::size_t kMaxLineBytes = 1 << 20;

// Structural validation of a raw line, shared by the class-enumeration scan
// and the streaming read so both passes reject the same inputs.
//   * Embedded NUL bytes: std::getline carries them through, but strtod
//     stops at the first NUL, so "1.5\0junk" would silently parse as 1.5.
//     A NUL never appears in well-formed text CSV; reject it outright.
//   * Oversized lines: see kMaxLineBytes.
void ValidateRawLine(const std::string& path, std::size_t line_number,
                     const std::string& line) {
  if (line.size() > kMaxLineBytes) {
    Fail(path, line_number,
         "line exceeds " + std::to_string(kMaxLineBytes) + " bytes");
  }
  if (line.find('\0') != std::string::npos) {
    Fail(path, line_number, "embedded NUL byte");
  }
}

}  // namespace

CsvStream::CsvStream(const CsvStreamConfig& config) : config_(config) {
  name_ = std::filesystem::path(config.path).stem().string();

  // Pass 1: resolve the header / label column, and enumerate classes if
  // they were not given.
  std::ifstream scan(config_.path);
  if (!scan) Fail(config_.path, 0, "cannot open file");
  std::string line;
  std::vector<std::string> header;
  if (config_.has_header) {
    if (!std::getline(scan, line)) Fail(config_.path, 0, "empty file");
    header = SplitLine(line, config_.delimiter);
  } else {
    // Peek the first row to learn the column count.
    const auto position = scan.tellg();
    if (!std::getline(scan, line)) Fail(config_.path, 0, "empty file");
    header.resize(SplitLine(line, config_.delimiter).size());
    for (std::size_t c = 0; c < header.size(); ++c) {
      header[c] = "x" + std::to_string(c);
    }
    scan.seekg(position);
  }
  if (header.size() < 2) Fail(config_.path, 1, "need at least 2 columns");

  if (!config_.label_column.empty()) {
    bool found = false;
    for (std::size_t c = 0; c < header.size(); ++c) {
      if (header[c] == config_.label_column) {
        label_position_ = c;
        found = true;
        break;
      }
    }
    if (!found) {
      Fail(config_.path, 1, "label column '" + config_.label_column +
                                "' not in header");
    }
  } else if (config_.label_index >= 0) {
    if (static_cast<std::size_t>(config_.label_index) >= header.size()) {
      Fail(config_.path, 1, "label index out of range");
    }
    label_position_ = static_cast<std::size_t>(config_.label_index);
  } else {
    label_position_ = header.size() - 1;
  }
  num_features_ = header.size() - 1;
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (c != label_position_) feature_names_.push_back(header[c]);
  }
  factor_levels_.resize(num_features_);

  if (config_.num_classes == 0) {
    std::size_t row = config_.has_header ? 1 : 0;
    while (std::getline(scan, line)) {
      ++row;
      if (line.empty()) continue;
      ValidateRawLine(config_.path, row, line);
      const std::vector<std::string> cells =
          SplitLine(line, config_.delimiter);
      if (cells.size() != header.size()) {
        Fail(config_.path, row, "inconsistent column count");
      }
      classes_.emplace(cells[label_position_],
                       static_cast<int>(classes_.size()));
    }
    if (classes_.size() < 2) {
      Fail(config_.path, row, "label column has fewer than 2 classes");
    }
  }

  OpenAndSkipHeader();
}

void CsvStream::OpenAndSkipHeader() {
  file_.open(config_.path);
  if (!file_) Fail(config_.path, 0, "cannot open file");
  line_number_ = 0;
  if (config_.has_header) {
    std::string line;
    std::getline(file_, line);
    line_number_ = 1;
  }
}

bool CsvStream::ParseRow(const std::string& line, Instance* out) {
  ValidateRawLine(config_.path, line_number_, line);
  const std::vector<std::string> cells = SplitLine(line, config_.delimiter);
  if (cells.size() != num_features_ + 1) {
    Fail(config_.path, line_number_, "inconsistent column count");
  }
  out->x.resize(num_features_);
  std::size_t feature = 0;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c == label_position_) continue;
    const std::string& cell = cells[c];
    char* end = nullptr;
    const double value = std::strtod(cell.c_str(), &end);
    if (end != cell.c_str() && *end == '\0') {
      out->x[feature] = value;
    } else {
      // Categorical string: factorize in order of first appearance (the
      // paper's preprocessing for categorical variables).
      auto [it, inserted] = factor_levels_[feature].try_emplace(
          cell, static_cast<double>(factor_levels_[feature].size()));
      out->x[feature] = it->second;
    }
    ++feature;
  }
  const std::string& label = cells[label_position_];
  auto it = classes_.find(label);
  if (it == classes_.end()) {
    if (config_.num_classes > 0 && classes_.size() < config_.num_classes) {
      it = classes_.emplace(label, static_cast<int>(classes_.size())).first;
    } else {
      Fail(config_.path, line_number_, "unseen class label '" + label + "'");
    }
  }
  out->y = it->second;
  return true;
}

bool CsvStream::NextInstance(Instance* out) {
  std::string line;
  while (std::getline(file_, line)) {
    ++line_number_;
    if (line.empty()) continue;
    return ParseRow(line, out);
  }
  return false;
}

std::vector<std::string> CsvStream::class_names() const {
  std::vector<std::string> names(classes_.size());
  for (const auto& [name, index] : classes_) {
    names[index] = name;
  }
  return names;
}

}  // namespace dmt::streams
