// Rotating hyperplane generator (Hulten et al., 2001), after the
// scikit-multiflow HyperplaneGenerator used by the paper.
//
// Observations are uniform in [0,1]^m; the label tells which side of the
// hyperplane sum_i w_i x_i = 0.5 * sum_i w_i the observation falls on. A
// subset of the weights changes by `mag_change` per emitted instance, each
// with probability `sigma` of reversing its drift direction, yielding the
// continuous incremental drift of the paper's Hyperplane stream (50
// features, 10% noise).
#ifndef DMT_STREAMS_HYPERPLANE_H_
#define DMT_STREAMS_HYPERPLANE_H_

#include <cstdint>
#include <vector>

#include "dmt/common/random.h"
#include "dmt/streams/stream.h"

namespace dmt::streams {

struct HyperplaneConfig {
  std::size_t num_features = 50;
  std::size_t num_drift_features = 50;
  double mag_change = 0.001;
  double sigma = 0.1;  // probability of flipping a weight's drift direction
  double noise = 0.1;  // probability of flipping the label
  std::size_t total_samples = 500'000;
  std::uint64_t seed = 42;
};

class HyperplaneGenerator : public Stream {
 public:
  explicit HyperplaneGenerator(const HyperplaneConfig& config);

  bool NextInstance(Instance* out) override;
  std::size_t num_features() const override { return config_.num_features; }
  std::size_t num_classes() const override { return 2; }
  std::string name() const override { return "Hyperplane"; }

  const std::vector<double>& weights() const { return weights_; }

 private:
  HyperplaneConfig config_;
  Rng rng_;
  std::size_t position_ = 0;
  std::vector<double> weights_;
  std::vector<double> directions_;
};

}  // namespace dmt::streams

#endif  // DMT_STREAMS_HYPERPLANE_H_
