#include "dmt/streams/regression_streams.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dmt/common/check.h"

namespace dmt::streams {

std::size_t RegressionStream::FillBatch(std::size_t n,
                                        linear::RegressionBatch* batch) {
  std::size_t produced = 0;
  RegressionInstance instance;
  while (produced < n && NextInstance(&instance)) {
    batch->Add(instance.x, instance.y);
    ++produced;
  }
  return produced;
}

FriedGenerator::FriedGenerator(const FriedConfig& config)
    : config_(config), rng_(config.seed), roles_(10) {
  for (int k = 0; k < 10; ++k) roles_[k] = k;
  std::sort(config_.drift_points.begin(), config_.drift_points.end());
}

double FriedGenerator::CleanTarget(const std::vector<double>& x) const {
  const double x0 = x[roles_[0]];
  const double x1 = x[roles_[1]];
  const double x2 = x[roles_[2]];
  const double x3 = x[roles_[3]];
  const double x4 = x[roles_[4]];
  return 10.0 * std::sin(std::numbers::pi * x0 * x1) +
         20.0 * (x2 - 0.5) * (x2 - 0.5) + 10.0 * x3 + 5.0 * x4;
}

bool FriedGenerator::NextInstance(RegressionInstance* out) {
  if (position_ >= config_.total_samples) return false;
  for (std::size_t p : config_.drift_points) {
    if (p == position_) {
      // Abrupt drift: shuffle which features carry the signal.
      std::shuffle(roles_.begin(), roles_.end(), rng_.engine());
    }
  }
  ++position_;
  out->x.resize(10);
  for (double& v : out->x) v = rng_.Uniform();
  out->y = CleanTarget(out->x) +
           (config_.noise_sigma > 0.0
                ? rng_.Gaussian(0.0, config_.noise_sigma)
                : 0.0);
  return true;
}

PlaneGenerator::PlaneGenerator(const PlaneConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  weights_.resize(config_.num_features);
  directions_.assign(config_.num_features, 1.0);
  for (double& w : weights_) w = rng_.Uniform(-1.0, 1.0);
}

bool PlaneGenerator::NextInstance(RegressionInstance* out) {
  if (position_ >= config_.total_samples) return false;
  ++position_;
  out->x.resize(config_.num_features);
  double y = 0.0;
  for (std::size_t j = 0; j < config_.num_features; ++j) {
    out->x[j] = rng_.Uniform();
    y += weights_[j] * out->x[j];
  }
  out->y = y + (config_.noise_sigma > 0.0
                    ? rng_.Gaussian(0.0, config_.noise_sigma)
                    : 0.0);
  for (std::size_t j = 0; j < config_.num_features; ++j) {
    weights_[j] += directions_[j] * config_.mag_change;
    if (rng_.Bernoulli(0.05)) directions_[j] = -directions_[j];
  }
  return true;
}

}  // namespace dmt::streams
