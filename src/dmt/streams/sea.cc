#include "dmt/streams/sea.h"

#include <algorithm>

namespace dmt::streams {

SeaGenerator::SeaGenerator(const SeaConfig& config)
    : config_(config),
      rng_(config.seed),
      function_(config.initial_function % 4) {
  std::sort(config_.drift_points.begin(), config_.drift_points.end());
}

bool SeaGenerator::NextInstance(Instance* out) {
  if (position_ >= config_.total_samples) return false;
  for (std::size_t p : config_.drift_points) {
    if (p == position_) function_ = (function_ + 1) % 4;
  }
  ++position_;

  out->x.resize(3);
  for (double& v : out->x) v = rng_.Uniform(0.0, 10.0);
  int label = (out->x[0] + out->x[1] <= kThetas[function_]) ? 1 : 0;
  if (config_.noise > 0.0 && rng_.Bernoulli(config_.noise)) label = 1 - label;
  out->y = label;
  return true;
}

}  // namespace dmt::streams
