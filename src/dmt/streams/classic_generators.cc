#include "dmt/streams/classic_generators.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"

namespace dmt::streams {

RandomRbfGenerator::RandomRbfGenerator(const RandomRbfConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_classes >= 2);
  DMT_CHECK(config.num_centroids >= config.num_classes);
  centroids_.resize(config_.num_centroids);
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    Centroid& centroid = centroids_[c];
    centroid.center.resize(config_.num_features);
    centroid.direction.resize(config_.num_features);
    double norm = 0.0;
    for (std::size_t j = 0; j < config_.num_features; ++j) {
      centroid.center[j] = rng_.Uniform();
      centroid.direction[j] = rng_.Gaussian();
      norm += centroid.direction[j] * centroid.direction[j];
    }
    norm = std::sqrt(norm);
    for (double& d : centroid.direction) d /= norm;
    // Round-robin labels guarantee every class has at least one centroid.
    centroid.label = static_cast<int>(c % config_.num_classes);
    centroid.stddev = rng_.Uniform(0.05, 0.15);
    centroid.weight = rng_.Uniform(0.2, 1.0);
    centroid_weights_.push_back(centroid.weight);
  }
}

bool RandomRbfGenerator::NextInstance(Instance* out) {
  if (position_ >= config_.total_samples) return false;
  ++position_;
  Centroid& centroid = centroids_[rng_.Categorical(centroid_weights_)];
  out->x.resize(config_.num_features);
  for (std::size_t j = 0; j < config_.num_features; ++j) {
    out->x[j] = centroid.center[j] + rng_.Gaussian(0.0, centroid.stddev);
  }
  out->y = centroid.label;

  if (config_.drift_speed > 0.0) {
    for (Centroid& c : centroids_) {
      for (std::size_t j = 0; j < config_.num_features; ++j) {
        c.center[j] += c.direction[j] * config_.drift_speed;
        // Bounce off the unit cube.
        if (c.center[j] < 0.0 || c.center[j] > 1.0) {
          c.direction[j] = -c.direction[j];
          c.center[j] = std::clamp(c.center[j], 0.0, 1.0);
        }
      }
    }
  }
  return true;
}

StaggerGenerator::StaggerGenerator(const StaggerConfig& config)
    : config_(config), rng_(config.seed), rule_(config.initial_rule % 3) {
  std::sort(config_.drift_points.begin(), config_.drift_points.end());
}

int StaggerGenerator::Classify(int rule, double size, double color,
                               double shape) {
  // Attribute encodings: size {0 small, 1 medium, 2 large}, color {0 red,
  // 1 green, 2 blue}, shape {0 circle, 1 square, 2 triangle}.
  switch (rule) {
    case 0:
      return (size == 0.0 && color == 0.0) ? 1 : 0;
    case 1:
      return (color == 1.0 || shape == 0.0) ? 1 : 0;
    default:
      return (size == 1.0 || size == 2.0) ? 1 : 0;
  }
}

bool StaggerGenerator::NextInstance(Instance* out) {
  if (position_ >= config_.total_samples) return false;
  for (std::size_t p : config_.drift_points) {
    if (p == position_) rule_ = (rule_ + 1) % 3;
  }
  ++position_;
  out->x = {static_cast<double>(rng_.UniformInt(0, 2)),
            static_cast<double>(rng_.UniformInt(0, 2)),
            static_cast<double>(rng_.UniformInt(0, 2))};
  out->y = Classify(rule_, out->x[0], out->x[1], out->x[2]);
  if (config_.noise > 0.0 && rng_.Bernoulli(config_.noise)) {
    out->y = 1 - out->y;
  }
  return true;
}

namespace {
// Segment patterns of the digits 0-9 (segments a-g).
constexpr int kLedSegments[10][7] = {
    {1, 1, 1, 0, 1, 1, 1},  // 0
    {0, 0, 1, 0, 0, 1, 0},  // 1
    {1, 0, 1, 1, 1, 0, 1},  // 2
    {1, 0, 1, 1, 0, 1, 1},  // 3
    {0, 1, 1, 1, 0, 1, 0},  // 4
    {1, 1, 0, 1, 0, 1, 1},  // 5
    {1, 1, 0, 1, 1, 1, 1},  // 6
    {1, 0, 1, 0, 0, 1, 0},  // 7
    {1, 1, 1, 1, 1, 1, 1},  // 8
    {1, 1, 1, 1, 0, 1, 1},  // 9
};
}  // namespace

LedGenerator::LedGenerator(const LedConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.noise >= 0.0 && config.noise <= 1.0);
}

bool LedGenerator::NextInstance(Instance* out) {
  if (position_ >= config_.total_samples) return false;
  ++position_;
  const int digit = rng_.UniformInt(0, 9);
  out->x.resize(num_features());
  for (int s = 0; s < 7; ++s) {
    int bit = kLedSegments[digit][s];
    if (config_.noise > 0.0 && rng_.Bernoulli(config_.noise)) bit = 1 - bit;
    out->x[s] = static_cast<double>(bit);
  }
  for (std::size_t j = 7; j < num_features(); ++j) {
    out->x[j] = static_cast<double>(rng_.UniformInt(0, 1));
  }
  out->y = digit;
  return true;
}

}  // namespace dmt::streams
