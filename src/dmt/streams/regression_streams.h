// Synthetic regression streams for the regression instantiation of the
// Dynamic Model Tree and for FIMT-DD's native (regression) setting:
//
//  * FriedGenerator -- the Friedman #1 benchmark used in the FIMT-DD paper:
//    x ~ U[0,1]^10, y = 10 sin(pi x0 x1) + 20 (x2 - 0.5)^2 + 10 x3 + 5 x4
//    + N(0, sigma), with abrupt "global recurring" drift realized by
//    permuting which features play which role.
//  * PlaneGenerator -- a drifting linear target (a regression analogue of
//    the Hyperplane stream): y = w.x + b with incrementally rotating w.
#ifndef DMT_STREAMS_REGRESSION_STREAMS_H_
#define DMT_STREAMS_REGRESSION_STREAMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dmt/common/random.h"
#include "dmt/linear/linear_regressor.h"

namespace dmt::streams {

// A labeled regression observation.
struct RegressionInstance {
  std::vector<double> x;
  double y = 0.0;
};

class RegressionStream {
 public:
  virtual ~RegressionStream() = default;
  virtual bool NextInstance(RegressionInstance* out) = 0;
  virtual std::size_t num_features() const = 0;
  virtual std::string name() const = 0;

  std::size_t FillBatch(std::size_t n, linear::RegressionBatch* batch);
};

struct FriedConfig {
  double noise_sigma = 1.0;
  // Indices at which the feature roles are permuted (abrupt drift).
  std::vector<std::size_t> drift_points;
  std::size_t total_samples = 100'000;
  std::uint64_t seed = 42;
};

class FriedGenerator : public RegressionStream {
 public:
  explicit FriedGenerator(const FriedConfig& config);

  bool NextInstance(RegressionInstance* out) override;
  std::size_t num_features() const override { return 10; }
  std::string name() const override { return "Fried"; }

  // Clean target under the currently active feature-role permutation.
  double CleanTarget(const std::vector<double>& x) const;

 private:
  FriedConfig config_;
  Rng rng_;
  std::size_t position_ = 0;
  std::vector<int> roles_;  // roles_[k]: feature index playing role k
};

struct PlaneConfig {
  std::size_t num_features = 10;
  double mag_change = 0.001;
  double noise_sigma = 0.1;
  std::size_t total_samples = 100'000;
  std::uint64_t seed = 42;
};

class PlaneGenerator : public RegressionStream {
 public:
  explicit PlaneGenerator(const PlaneConfig& config);

  bool NextInstance(RegressionInstance* out) override;
  std::size_t num_features() const override { return config_.num_features; }
  std::string name() const override { return "Plane"; }

  const std::vector<double>& weights() const { return weights_; }

 private:
  PlaneConfig config_;
  Rng rng_;
  std::size_t position_ = 0;
  std::vector<double> weights_;
  std::vector<double> directions_;
};

}  // namespace dmt::streams

#endif  // DMT_STREAMS_REGRESSION_STREAMS_H_
