// Online min-max normalization to [0, 1].
//
// The paper normalizes all features to [0, 1] before use (Sec. VI-B). In a
// true stream the full range is unknown upfront, so the scaler tracks the
// running per-feature min/max and rescales with the ranges seen so far.
#ifndef DMT_STREAMS_SCALER_H_
#define DMT_STREAMS_SCALER_H_

#include <limits>
#include <span>
#include <vector>

#include "dmt/common/types.h"

namespace dmt::streams {

class OnlineMinMaxScaler {
 public:
  explicit OnlineMinMaxScaler(std::size_t num_features)
      : mins_(num_features, std::numeric_limits<double>::max()),
        maxs_(num_features, std::numeric_limits<double>::lowest()) {}

  // Rescales the batch in place, row by row: each row first updates the
  // ranges, then is transformed with them, so no row sees statistics of a
  // later observation (prequential test-then-train protocol). Non-finite
  // values (NaN/Inf) never enter the ranges -- folding a NaN into min/max
  // would poison that feature's range for the rest of the stream.
  void FitTransform(Batch* batch);

  // Rescales one observation with the current ranges (no update).
  // Non-finite values pass through unchanged: clamping an Inf to 1.0 would
  // silently hide the fault from downstream sanitization.
  void Transform(std::span<double> x) const;

  // Writes each feature's current range midpoint -- the post-transform 0.5
  // point -- into `out` (imputation values for BadInputPolicy::
  // kImputeMidpoint). Features with no finite observations yet get 0.0,
  // which Transform maps to the constant-feature midpoint anyway.
  void MidpointsInto(std::span<double> out) const;

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

}  // namespace dmt::streams

#endif  // DMT_STREAMS_SCALER_H_
