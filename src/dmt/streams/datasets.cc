#include "dmt/streams/datasets.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"
#include "dmt/streams/agrawal.h"
#include "dmt/streams/concept_stream.h"
#include "dmt/streams/hyperplane.h"
#include "dmt/streams/sea.h"

namespace dmt::streams {

std::vector<double> ImbalancedPriors(std::size_t num_classes,
                                     double majority_fraction) {
  DMT_CHECK(num_classes >= 2);
  DMT_CHECK(majority_fraction > 0.0 && majority_fraction < 1.0);
  std::vector<double> priors(num_classes);
  priors[0] = majority_fraction;
  const double rest = 1.0 - majority_fraction;
  constexpr double kDecay = 0.65;
  double norm = 0.0;
  for (std::size_t c = 1; c < num_classes; ++c) {
    norm += std::pow(kDecay, static_cast<double>(c - 1));
  }
  for (std::size_t c = 1; c < num_classes; ++c) {
    priors[c] = rest * std::pow(kDecay, static_cast<double>(c - 1)) / norm;
  }
  return priors;
}

std::size_t EffectiveSamples(const DatasetSpec& spec,
                             std::size_t max_samples) {
  if (max_samples == 0) return spec.full_samples;
  return std::min(spec.full_samples, max_samples);
}

namespace {

// Builds a ConceptStream surrogate spec. `majority` is the Table I majority
// fraction; drift events are given as fractions of the stream.
DatasetSpec Surrogate(std::string name, std::size_t full_samples,
                      std::size_t num_features, std::size_t num_classes,
                      std::size_t majority_count, bool known_drift,
                      TeacherKind teacher, int tree_depth, double leaf_purity,
                      double noise, std::vector<DriftEvent> events) {
  DatasetSpec spec;
  spec.name = name;
  spec.full_samples = full_samples;
  spec.num_features = num_features;
  spec.num_classes = num_classes;
  spec.majority_count = majority_count;
  spec.known_drift = known_drift;
  const double majority =
      static_cast<double>(majority_count) / static_cast<double>(full_samples);
  spec.make = [=](std::size_t samples, std::uint64_t seed) {
    ConceptStreamConfig config;
    config.name = name;
    config.num_features = num_features;
    config.num_classes = num_classes;
    config.teacher = teacher;
    config.tree_depth = tree_depth;
    config.class_priors = ImbalancedPriors(num_classes, majority);
    config.leaf_purity = leaf_purity;
    config.noise = noise;
    config.drift_events = events;
    config.total_samples = samples;
    config.seed = seed;
    return std::make_unique<ConceptStream>(config);
  };
  return spec;
}

}  // namespace

std::vector<DatasetSpec> AllDatasets() {
  std::vector<DatasetSpec> specs;

  // --- Real-world surrogates (Table I order). Drift regimes follow the
  // paper's description of each data set (Sec. VI-B).
  specs.push_back(Surrogate(
      "Electricity", 45'312, 8, 2, 26'075, false, TeacherKind::kLinear, 0,
      0.9, 0.05,
      {{0.2, 0.3}, {0.5, 0.6}, {0.8, 0.9}}));  // recurring price regimes
  specs.push_back(Surrogate("Airlines", 539'383, 7, 2, 299'119, false,
                            TeacherKind::kHybrid, 4, 0.70, 0.15,
                            {{0.4, 0.7}}));  // noisy, slowly evolving
  specs.push_back(Surrogate("Bank", 45'211, 16, 2, 39'922, false,
                            TeacherKind::kHybrid, 3, 0.92, 0.02, {}));
  specs.push_back(Surrogate("TueEyeQ", 15'762, 76, 2, 12'975, true,
                            TeacherKind::kHybrid, 3, 0.85, 0.05,
                            {{0.25, 0.25}, {0.5, 0.5}, {0.75, 0.75}}));
  specs.push_back(Surrogate("Poker", 1'025'000, 10, 9, 513'701, false,
                            TeacherKind::kTree, 5, 0.55, 0.10, {}));
  specs.push_back(Surrogate("KDD", 494'020, 41, 23, 280'790, false,
                            TeacherKind::kLinear, 0, 0.985, 0.0, {}));
  specs.push_back(Surrogate("Covertype", 581'012, 54, 7, 283'301, false,
                            TeacherKind::kHybrid, 4, 0.88, 0.03, {{0.3, 0.8}}));
  specs.push_back(Surrogate("Gas", 13'910, 128, 6, 3'009, false,
                            TeacherKind::kTree, 3, 0.80, 0.05,
                            {{0.2, 0.4}, {0.6, 0.8}}));  // sensor drift
  specs.push_back(Surrogate("Insects-Abr", 355'275, 33, 6, 101'256, true,
                            TeacherKind::kHybrid, 4, 0.85, 0.05,
                            {{1.0 / 3, 1.0 / 3}, {2.0 / 3, 2.0 / 3}}));
  specs.push_back(Surrogate("Insects-Inc", 452'044, 33, 6, 134'717, true,
                            TeacherKind::kHybrid, 4, 0.85, 0.05, {{0.1, 0.9}}));

  // --- Synthetic generators with the paper's drift schedules.
  {
    DatasetSpec spec;
    spec.name = "SEA";
    spec.full_samples = 1'000'000;
    spec.num_features = 3;
    spec.num_classes = 2;
    spec.majority_count = 0;
    spec.known_drift = true;
    spec.make = [](std::size_t samples, std::uint64_t seed) {
      SeaConfig config;
      config.total_samples = samples;
      // Paper: abrupt drifts at 200k/400k/600k/800k of 1M, scaled here.
      for (double f : {0.2, 0.4, 0.6, 0.8}) {
        config.drift_points.push_back(
            static_cast<std::size_t>(f * static_cast<double>(samples)));
      }
      config.noise = 0.1;
      config.seed = seed;
      return std::make_unique<SeaGenerator>(config);
    };
    specs.push_back(spec);
  }
  {
    DatasetSpec spec;
    spec.name = "Agrawal";
    spec.full_samples = 1'000'000;
    spec.num_features = 9;
    spec.num_classes = 2;
    spec.majority_count = 0;
    spec.known_drift = true;
    spec.make = [](std::size_t samples, std::uint64_t seed) {
      AgrawalConfig config;
      config.total_samples = samples;
      // Paper: incremental drift over 100k-200k, 300k-500k, 800k-900k of 1M.
      const double n = static_cast<double>(samples);
      config.drift_windows = {
          {static_cast<std::size_t>(0.1 * n), static_cast<std::size_t>(0.2 * n)},
          {static_cast<std::size_t>(0.3 * n), static_cast<std::size_t>(0.5 * n)},
          {static_cast<std::size_t>(0.8 * n), static_cast<std::size_t>(0.9 * n)},
      };
      config.perturbation = 0.1;
      config.seed = seed;
      return std::make_unique<AgrawalGenerator>(config);
    };
    specs.push_back(spec);
  }
  {
    DatasetSpec spec;
    spec.name = "Hyperplane";
    spec.full_samples = 500'000;
    spec.num_features = 50;
    spec.num_classes = 2;
    spec.majority_count = 0;
    spec.known_drift = true;
    spec.make = [](std::size_t samples, std::uint64_t seed) {
      HyperplaneConfig config;
      config.total_samples = samples;
      // Keep the *total* boundary rotation of the full-size stream when the
      // sample count is scaled down.
      config.mag_change = 0.001 * 500'000.0 / static_cast<double>(samples);
      config.noise = 0.1;
      config.seed = seed;
      return std::make_unique<HyperplaneGenerator>(config);
    };
    specs.push_back(spec);
  }
  return specs;
}

DatasetSpec DatasetByName(const std::string& name) {
  for (DatasetSpec& spec : AllDatasets()) {
    if (spec.name == name) return spec;
  }
  std::fprintf(stderr, "Unknown dataset: %s\n", name.c_str());
  std::abort();
}

}  // namespace dmt::streams
