// SEA concepts generator (Street & Kim, 2001), after the scikit-multiflow
// SEAGenerator used by the paper.
//
// Three features uniform in [0, 10]; only the first two are relevant. The
// label is 1 iff f0 + f1 <= theta, where theta depends on the active
// classification function (0: 8, 1: 9, 2: 7, 3: 9.5). The paper's SEA stream
// has abrupt drifts at observations 200k, 400k, 600k and 800k of a 1M-sample
// stream and 10% label noise.
#ifndef DMT_STREAMS_SEA_H_
#define DMT_STREAMS_SEA_H_

#include <cstdint>
#include <vector>

#include "dmt/common/random.h"
#include "dmt/streams/stream.h"

namespace dmt::streams {

struct SeaConfig {
  // Indices (observation counts) at which the classification function
  // switches to the next one (cyclically).
  std::vector<std::size_t> drift_points;
  int initial_function = 0;
  double noise = 0.1;  // probability of flipping the label
  std::size_t total_samples = 1'000'000;
  std::uint64_t seed = 42;
};

class SeaGenerator : public Stream {
 public:
  explicit SeaGenerator(const SeaConfig& config);

  bool NextInstance(Instance* out) override;
  std::size_t num_features() const override { return 3; }
  std::size_t num_classes() const override { return 2; }
  std::string name() const override { return "SEA"; }

  int active_function() const { return function_; }

 private:
  static constexpr double kThetas[4] = {8.0, 9.0, 7.0, 9.5};

  SeaConfig config_;
  Rng rng_;
  std::size_t position_ = 0;
  int function_;
};

}  // namespace dmt::streams

#endif  // DMT_STREAMS_SEA_H_
