#include "dmt/streams/stream.h"

namespace dmt::streams {

std::size_t Stream::FillBatch(std::size_t n, Batch* batch) {
  std::size_t produced = 0;
  Instance instance;
  while (produced < n && NextInstance(&instance)) {
    batch->Add(instance);
    ++produced;
  }
  return produced;
}

}  // namespace dmt::streams
