// Agrawal generator (Agrawal et al., 1993), after the scikit-multiflow
// AGRAWALGenerator used by the paper.
//
// Nine features describing loan applicants (salary, commission, age,
// education level, car, zipcode, house value, years owned, loan amount) and
// ten classic binary classification functions. Incremental drift gradually
// hands generation over from one function to the next across a window (the
// paper's Agrawal stream drifts over observations 100k-200k, 300k-500k and
// 800k-900k of 1M samples), and numeric features are perturbed by 10%.
#ifndef DMT_STREAMS_AGRAWAL_H_
#define DMT_STREAMS_AGRAWAL_H_

#include <cstdint>
#include <vector>

#include "dmt/common/random.h"
#include "dmt/streams/stream.h"

namespace dmt::streams {

struct AgrawalDriftWindow {
  std::size_t begin = 0;
  std::size_t end = 0;  // exclusive; probability of the new concept ramps 0->1
};

struct AgrawalConfig {
  std::vector<AgrawalDriftWindow> drift_windows;
  int initial_function = 0;  // 0..9
  double perturbation = 0.1;
  std::size_t total_samples = 1'000'000;
  std::uint64_t seed = 42;
};

class AgrawalGenerator : public Stream {
 public:
  explicit AgrawalGenerator(const AgrawalConfig& config);

  bool NextInstance(Instance* out) override;
  std::size_t num_features() const override { return 9; }
  std::size_t num_classes() const override { return 2; }
  std::string name() const override { return "Agrawal"; }

  int active_function() const { return function_; }

  // Classic classification functions, exposed for tests. `x` is the raw
  // (unperturbed) feature vector in generator units.
  static int Classify(int function, const std::vector<double>& x);

 private:
  void Sample(std::vector<double>* x);
  double Perturb(double value, double range_lo, double range_hi);

  AgrawalConfig config_;
  Rng rng_;
  std::size_t position_ = 0;
  int function_;
  int next_function_;
};

}  // namespace dmt::streams

#endif  // DMT_STREAMS_AGRAWAL_H_
