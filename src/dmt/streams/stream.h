// Abstract data stream interface. Generators emit one labeled instance at a
// time; the evaluation harness groups instances into prequential batches
// (0.1% of the stream per iteration in the paper's setup).
#ifndef DMT_STREAMS_STREAM_H_
#define DMT_STREAMS_STREAM_H_

#include <cstddef>
#include <string>

#include "dmt/common/types.h"

namespace dmt::streams {

class Stream {
 public:
  virtual ~Stream() = default;

  // Writes the next instance into `out`; returns false when exhausted.
  // Generators are typically unbounded; dataset wrappers impose a length.
  virtual bool NextInstance(Instance* out) = 0;

  virtual std::size_t num_features() const = 0;
  virtual std::size_t num_classes() const = 0;
  virtual std::string name() const = 0;

  // Fills `batch` with up to `n` instances; returns the number produced.
  std::size_t FillBatch(std::size_t n, Batch* batch);
};

}  // namespace dmt::streams

#endif  // DMT_STREAMS_STREAM_H_
