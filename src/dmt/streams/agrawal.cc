#include "dmt/streams/agrawal.h"

#include <algorithm>

#include "dmt/common/check.h"

namespace dmt::streams {

namespace {
// Feature indices in the generated vector.
enum : int {
  kSalary = 0,
  kCommission = 1,
  kAge = 2,
  kElevel = 3,
  kCar = 4,
  kZipcode = 5,
  kHvalue = 6,
  kHyears = 7,
  kLoan = 8,
};
}  // namespace

AgrawalGenerator::AgrawalGenerator(const AgrawalConfig& config)
    : config_(config),
      rng_(config.seed),
      function_(config.initial_function % 10),
      next_function_((function_ + 1) % 10) {
  DMT_CHECK(config.perturbation >= 0.0 && config.perturbation <= 1.0);
}

void AgrawalGenerator::Sample(std::vector<double>* x) {
  x->resize(9);
  double& salary = (*x)[kSalary];
  double& commission = (*x)[kCommission];
  salary = rng_.Uniform(20'000.0, 150'000.0);
  commission = salary >= 75'000.0 ? 0.0 : rng_.Uniform(10'000.0, 75'000.0);
  (*x)[kAge] = rng_.UniformInt(20, 80);
  (*x)[kElevel] = rng_.UniformInt(0, 4);
  (*x)[kCar] = rng_.UniformInt(1, 20);
  const int zipcode = rng_.UniformInt(0, 8);
  (*x)[kZipcode] = zipcode;
  // House value depends on the zipcode "region", as in the original paper.
  (*x)[kHvalue] = rng_.Uniform(0.5, 1.5) * 100'000.0 * (zipcode + 1);
  (*x)[kHyears] = rng_.UniformInt(1, 30);
  (*x)[kLoan] = rng_.Uniform(0.0, 500'000.0);
}

double AgrawalGenerator::Perturb(double value, double range_lo,
                                 double range_hi) {
  if (config_.perturbation <= 0.0) return value;
  const double range = range_hi - range_lo;
  value += config_.perturbation * range * rng_.Uniform(-1.0, 1.0);
  return std::clamp(value, range_lo, range_hi);
}

int AgrawalGenerator::Classify(int function, const std::vector<double>& x) {
  const double salary = x[kSalary];
  const double commission = x[kCommission];
  const double age = x[kAge];
  const double elevel = x[kElevel];
  const double zipcode = x[kZipcode];
  const double hvalue = x[kHvalue];
  const double hyears = x[kHyears];
  const double loan = x[kLoan];
  auto in = [](double v, double lo, double hi) { return v >= lo && v < hi; };

  switch (function) {
    case 0:
      return (age < 40.0 || age >= 60.0) ? 0 : 1;
    case 1:
      if (age < 40.0) return in(salary, 50e3, 100e3) ? 0 : 1;
      if (age < 60.0) return in(salary, 75e3, 125e3) ? 0 : 1;
      return in(salary, 25e3, 75e3) ? 0 : 1;
    case 2:
      if (age < 40.0) return (elevel == 0 || elevel == 1) ? 0 : 1;
      if (age < 60.0) return (elevel >= 1 && elevel <= 3) ? 0 : 1;
      return (elevel >= 2 && elevel <= 4) ? 0 : 1;
    case 3:
      if (age < 40.0) {
        return (elevel == 0 || elevel == 1) ? (in(salary, 25e3, 75e3) ? 0 : 1)
                                            : (in(salary, 50e3, 100e3) ? 0 : 1);
      }
      if (age < 60.0) {
        return (elevel >= 1 && elevel <= 3) ? (in(salary, 50e3, 100e3) ? 0 : 1)
                                            : (in(salary, 75e3, 125e3) ? 0 : 1);
      }
      return (elevel >= 2 && elevel <= 4) ? (in(salary, 50e3, 100e3) ? 0 : 1)
                                          : (in(salary, 25e3, 75e3) ? 0 : 1);
    case 4:
      if (age < 40.0) {
        return in(salary, 50e3, 100e3) ? (in(loan, 100e3, 300e3) ? 0 : 1)
                                       : (in(loan, 200e3, 400e3) ? 0 : 1);
      }
      if (age < 60.0) {
        return in(salary, 75e3, 125e3) ? (in(loan, 200e3, 400e3) ? 0 : 1)
                                       : (in(loan, 300e3, 500e3) ? 0 : 1);
      }
      return in(salary, 25e3, 75e3) ? (in(loan, 300e3, 500e3) ? 0 : 1)
                                    : (in(loan, 100e3, 300e3) ? 0 : 1);
    case 5: {
      const double total = salary + commission;
      if (age < 40.0) return in(total, 50e3, 100e3) ? 0 : 1;
      if (age < 60.0) return in(total, 75e3, 125e3) ? 0 : 1;
      return in(total, 25e3, 75e3) ? 0 : 1;
    }
    case 6: {
      const double disposable =
          2.0 * (salary + commission) / 3.0 - loan / 5.0 - 20e3;
      return disposable > 0.0 ? 0 : 1;
    }
    case 7: {
      const double disposable =
          2.0 * (salary + commission) / 3.0 - 5e3 * elevel - 20e3;
      return disposable > 0.0 ? 0 : 1;
    }
    case 8: {
      const double disposable = 2.0 * (salary + commission) / 3.0 -
                                5e3 * elevel - loan / 5.0 - 10e3;
      return disposable > 0.0 ? 0 : 1;
    }
    case 9: {
      const double equity =
          hyears < 20.0 ? 0.0 : hvalue * (hyears - 20.0) / 10.0;
      const double disposable = 2.0 * (salary + commission) / 3.0 -
                                5e3 * elevel + equity / 5.0 - 10e3;
      return disposable > 0.0 ? 0 : 1;
    }
    default:
      DMT_CHECK(false);
      return 0;
  }
  (void)zipcode;
}

bool AgrawalGenerator::NextInstance(Instance* out) {
  if (position_ >= config_.total_samples) return false;

  // Incremental drift: inside a window, emit from the next function with a
  // probability ramping linearly from 0 to 1; past the window the switch is
  // complete and the next window targets the function after that.
  double p_new = 0.0;
  for (const AgrawalDriftWindow& w : config_.drift_windows) {
    if (position_ >= w.end) {
      // handled below by committed switches
    } else if (position_ >= w.begin) {
      p_new = static_cast<double>(position_ - w.begin) /
              static_cast<double>(w.end - w.begin);
    }
  }
  // Commit fully completed windows exactly once.
  for (const AgrawalDriftWindow& w : config_.drift_windows) {
    if (position_ == w.end) {
      function_ = next_function_;
      next_function_ = (function_ + 1) % 10;
    }
  }
  ++position_;

  std::vector<double> raw;
  Sample(&raw);
  const int active =
      (p_new > 0.0 && rng_.Bernoulli(p_new)) ? next_function_ : function_;
  out->y = Classify(active, raw);

  // Perturb numeric features after classification (the label reflects the
  // clean concept; perturbation acts as feature noise, as in MOA).
  out->x = raw;
  out->x[kSalary] = Perturb(raw[kSalary], 20e3, 150e3);
  if (raw[kCommission] > 0.0) {
    out->x[kCommission] = Perturb(raw[kCommission], 10e3, 75e3);
  }
  out->x[kAge] = Perturb(raw[kAge], 20.0, 80.0);
  out->x[kHvalue] = Perturb(raw[kHvalue], 50e3, 1.5 * 9.0 * 100e3);
  out->x[kHyears] = Perturb(raw[kHyears], 1.0, 30.0);
  out->x[kLoan] = Perturb(raw[kLoan], 0.0, 500e3);
  return true;
}

}  // namespace dmt::streams
