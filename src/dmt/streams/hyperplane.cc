#include "dmt/streams/hyperplane.h"

#include <algorithm>
#include <numeric>

#include "dmt/common/check.h"

namespace dmt::streams {

HyperplaneGenerator::HyperplaneGenerator(const HyperplaneConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  config_.num_drift_features =
      std::min(config_.num_drift_features, config_.num_features);
  weights_.resize(config_.num_features);
  directions_.assign(config_.num_features, 1.0);
  for (double& w : weights_) w = rng_.Uniform(0.0, 1.0);
}

bool HyperplaneGenerator::NextInstance(Instance* out) {
  if (position_ >= config_.total_samples) return false;
  ++position_;

  out->x.resize(config_.num_features);
  double activation = 0.0;
  double weight_sum = 0.0;
  for (std::size_t j = 0; j < config_.num_features; ++j) {
    out->x[j] = rng_.Uniform(0.0, 1.0);
    activation += weights_[j] * out->x[j];
    weight_sum += weights_[j];
  }
  int label = activation >= 0.5 * weight_sum ? 1 : 0;
  if (config_.noise > 0.0 && rng_.Bernoulli(config_.noise)) label = 1 - label;
  out->y = label;

  // Incremental rotation of the decision boundary.
  for (std::size_t j = 0; j < config_.num_drift_features; ++j) {
    weights_[j] += directions_[j] * config_.mag_change;
    if (config_.sigma > 0.0 && rng_.Bernoulli(config_.sigma)) {
      directions_[j] = -directions_[j];
    }
  }
  return true;
}

}  // namespace dmt::streams
