// Configurable drifting-concept generator used to build synthetic surrogates
// of the paper's real-world data sets (Electricity, Airlines, Bank, TueEyeQ,
// Poker-Hand, KDD Cup, Covertype, Gas, Insects; see DESIGN.md Sec. 2).
//
// A hidden "teacher" defines P(Y|X) over X ~ U[0,1]^m:
//   * a random decision-tree teacher (axis-aligned regions, one dominant
//     class per leaf drawn from the desired class priors) produces the
//     nonlinear tabular structure tree learners exploit, and
//   * a random linear (softmax) teacher produces linearly separable
//     structure that model trees exploit.
// Desired class priors shape the marginal P(Y) (imbalance of Table I).
// Scheduled drift events replace the teacher abruptly or blend the old and
// new teachers' posteriors across a window (real concept drift: P(Y|X)
// changes while P(X) is fixed).
#ifndef DMT_STREAMS_CONCEPT_STREAM_H_
#define DMT_STREAMS_CONCEPT_STREAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dmt/common/random.h"
#include "dmt/streams/stream.h"

namespace dmt::streams {

// kTree: axis-aligned regions (interaction-heavy, favors tree learners).
// kLinear: random softmax teacher (favors GLM leaf models).
// kHybrid: posterior mixture of both -- the realistic tabular regime, where
// a linear model captures most of the signal and residual interactions
// reward a few splits (this is what makes the paper's real-world results
// possible for shallow model trees).
enum class TeacherKind { kTree, kLinear, kHybrid };

struct DriftEvent {
  // Fractions of the total stream length. begin == end yields an abrupt
  // switch; begin < end blends incrementally across the window.
  double begin = 0.0;
  double end = 0.0;
};

struct ConceptStreamConfig {
  std::string name = "Concept";
  std::size_t num_features = 10;
  std::size_t num_classes = 2;
  TeacherKind teacher = TeacherKind::kTree;
  // Depth of the random tree teacher; <= 0 derives it from num_classes.
  int tree_depth = 0;
  // Desired marginal class distribution; empty means uniform.
  std::vector<double> class_priors;
  // Probability mass of the dominant class in each tree-teacher leaf.
  double leaf_purity = 0.9;
  // Weight of the linear component for TeacherKind::kHybrid.
  double hybrid_linear_weight = 0.7;
  // Probability of replacing the drawn label with a uniform random class.
  double noise = 0.0;
  std::vector<DriftEvent> drift_events;
  std::size_t total_samples = 20'000;
  std::uint64_t seed = 42;
};

class ConceptStream : public Stream {
 public:
  explicit ConceptStream(const ConceptStreamConfig& config);
  ~ConceptStream() override;

  bool NextInstance(Instance* out) override;
  std::size_t num_features() const override { return config_.num_features; }
  std::size_t num_classes() const override { return config_.num_classes; }
  std::string name() const override { return config_.name; }

  // Posterior P(y|x) of the currently active (possibly blended) concept;
  // exposed for tests and for oracle comparisons in examples.
  std::vector<double> Posterior(std::span<const double> x) const;

 private:
  class Teacher;
  std::unique_ptr<Teacher> MakeTeacher();
  // Blend weight of `next_` at the current position (0 outside windows).
  double NextTeacherWeight() const;

  ConceptStreamConfig config_;
  Rng rng_;
  std::size_t position_ = 0;
  std::size_t next_event_ = 0;  // first drift event not yet committed
  std::unique_ptr<Teacher> current_;
  std::unique_ptr<Teacher> next_;
};

}  // namespace dmt::streams

#endif  // DMT_STREAMS_CONCEPT_STREAM_H_
