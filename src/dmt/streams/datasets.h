// Registry of the 13 evaluation streams of the paper (Table I).
//
// SEA, Agrawal and Hyperplane are the actual synthetic generators (with the
// paper's drift schedules and 10% perturbation). The real-world data sets
// are unavailable offline and are substituted by ConceptStream surrogates
// that preserve the Table I schema (features, classes, majority fraction)
// and each set's drift regime; see DESIGN.md Sec. 2 for the mapping.
#ifndef DMT_STREAMS_DATASETS_H_
#define DMT_STREAMS_DATASETS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dmt/streams/stream.h"

namespace dmt::streams {

struct DatasetSpec {
  std::string name;
  // Table I values (for reporting; runs may be capped below this).
  std::size_t full_samples = 0;
  std::size_t num_features = 0;
  std::size_t num_classes = 0;
  std::size_t majority_count = 0;
  // Whether the paper treats this stream as having *known* concept drift
  // (the Table VI "Pred. Performance For Known Drift" category).
  bool known_drift = false;
  // Builds the stream with `samples` observations (drift schedules scale
  // proportionally) and the given seed.
  std::function<std::unique_ptr<Stream>(std::size_t samples,
                                        std::uint64_t seed)>
      make;
};

// All 13 streams in the paper's Table I order.
std::vector<DatasetSpec> AllDatasets();

// Looks up a spec by name; aborts on unknown names.
DatasetSpec DatasetByName(const std::string& name);

// Effective sample count: full size capped at `max_samples` (0 = no cap).
std::size_t EffectiveSamples(const DatasetSpec& spec, std::size_t max_samples);

// Class priors with the given majority fraction; the remaining mass decays
// geometrically over the other classes (used to mimic Table I imbalance).
std::vector<double> ImbalancedPriors(std::size_t num_classes,
                                     double majority_fraction);

}  // namespace dmt::streams

#endif  // DMT_STREAMS_DATASETS_H_
