#include "dmt/eval/regression_prequential.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "dmt/common/check.h"

namespace dmt::eval {

namespace {

// Min-max scaler over RegressionBatch features (targets left untouched).
class BatchScaler {
 public:
  explicit BatchScaler(std::size_t num_features)
      : mins_(num_features, std::numeric_limits<double>::max()),
        maxs_(num_features, std::numeric_limits<double>::lowest()) {}

  // Per-row update-then-transform, like OnlineMinMaxScaler: updating the
  // ranges with the whole batch first would leak within-batch future
  // statistics into earlier rows (test-then-train violation).
  void FitTransform(linear::RegressionBatch* batch) {
    for (std::size_t i = 0; i < batch->size(); ++i) {
      std::span<double> row = batch->mutable_row(i);
      for (std::size_t j = 0; j < row.size(); ++j) {
        // Guard like OnlineMinMaxScaler: one NaN would poison the range.
        if (!std::isfinite(row[j])) continue;
        mins_[j] = std::min(mins_[j], row[j]);
        maxs_[j] = std::max(maxs_[j], row[j]);
      }
      for (std::size_t j = 0; j < row.size(); ++j) {
        if (!std::isfinite(row[j])) continue;  // keep faults visible
        const double range = maxs_[j] - mins_[j];
        row[j] = range <= 0.0
                     ? 0.5
                     : std::clamp((row[j] - mins_[j]) / range, 0.0, 1.0);
      }
    }
  }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

// RegressionBatch analogue of SanitizeBatch: a non-finite target always
// drops the row; non-finite features follow the policy (imputed with 0.0).
void SanitizeRegressionBatch(linear::RegressionBatch* batch,
                             BadInputPolicy policy, SanitizeStats* stats) {
  std::size_t write = 0;
  for (std::size_t read = 0; read < batch->size(); ++read) {
    const std::span<double> row = batch->mutable_row(read);
    bool keep = true;
    if (!std::isfinite(batch->target(read))) {
      if (policy == BadInputPolicy::kThrow) {
        throw BadInputError("non-finite regression target");
      }
      keep = false;
    } else if (!RowIsFinite(row)) {
      switch (policy) {
        case BadInputPolicy::kThrow:
          throw BadInputError("non-finite feature value in input row");
        case BadInputPolicy::kSkip:
          keep = false;
          break;
        case BadInputPolicy::kImputeMidpoint:
          for (double& v : row) {
            if (!std::isfinite(v)) {
              v = 0.0;
              ++stats->values_imputed;
            }
          }
          break;
      }
    }
    if (keep) {
      batch->MoveRow(read, write);
      ++write;
    } else {
      ++stats->rows_dropped;
    }
  }
  batch->Truncate(write);
}

}  // namespace

RegressionPrequentialResult RunRegressionPrequential(
    streams::RegressionStream* stream, const RegressorApi& model,
    const RegressionPrequentialConfig& config) {
  DMT_CHECK(stream != nullptr);
  std::size_t batch_size = config.batch_size;
  if (batch_size == 0) {
    DMT_CHECK(config.expected_samples > 0);
    batch_size = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               0.001 * static_cast<double>(config.expected_samples)));
  }

  RegressionPrequentialResult result;
  BatchScaler scaler(stream->num_features());
  linear::RegressionBatch batch(stream->num_features());
  // Reused across batches; grows once to the batch size.
  std::vector<double> predictions;

  // For the global R^2: sums of residuals and of targets.
  double sse = 0.0;
  RunningStats target_stats;
  SanitizeStats sanitize_stats;

  while (true) {
    batch.clear();
    if (stream->FillBatch(batch_size, &batch) == 0) break;

    // Sanitize before scaling, like the classification harness.
    SanitizeRegressionBatch(&batch, config.bad_input_policy, &sanitize_stats);
    if (batch.empty()) continue;

    // Preprocessing (normalization) stays outside the timed region, like
    // the classification harness: iteration_seconds is model work only.
    if (config.normalize) scaler.FitTransform(&batch);
    if (predictions.size() < batch.size()) predictions.resize(batch.size());
    const std::span<double> preds(predictions.data(), batch.size());

    const auto start = std::chrono::steady_clock::now();
    if (model.predict_batch) {
      model.predict_batch(batch, preds);
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        preds[i] = model.predict(batch.row(i));
      }
    }
    model.partial_fit(batch);
    const auto end = std::chrono::steady_clock::now();

    double abs_sum = 0.0;
    double sq_sum = 0.0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const double err = preds[i] - batch.target(i);
      abs_sum += std::abs(err);
      sq_sum += err * err;
      sse += err * err;
      target_stats.Add(batch.target(i));
    }

    const double n = static_cast<double>(batch.size());
    result.mae.Add(abs_sum / n);
    result.rmse.Add(std::sqrt(sq_sum / n));
    result.num_splits.Add(static_cast<double>(model.num_splits()));
    result.iteration_seconds.Add(
        std::chrono::duration<double>(end - start).count());
    if (config.keep_series) result.mae_series.push_back(abs_sum / n);
    result.total_samples += batch.size();
    ++result.num_batches;
  }

  const double sst = target_stats.variance() *
                     static_cast<double>(target_stats.count());
  result.r_squared = sst > 0.0 ? 1.0 - sse / sst : 0.0;
  result.rows_dropped = sanitize_stats.rows_dropped;
  result.values_imputed = sanitize_stats.values_imputed;
  return result;
}

}  // namespace dmt::eval
