#include "dmt/eval/metrics.h"

#include <algorithm>

#include "dmt/common/check.h"
#include "dmt/common/math.h"

namespace dmt::eval {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : num_classes_(num_classes), counts_(num_classes * num_classes, 0) {
  DMT_CHECK(num_classes >= 2);
}

void ConfusionMatrix::Add(int predicted, int actual) {
  DMT_DCHECK(predicted >= 0 &&
             predicted < static_cast<int>(num_classes_));
  DMT_DCHECK(actual >= 0 && actual < static_cast<int>(num_classes_));
  ++counts_[static_cast<std::size_t>(predicted) * num_classes_ + actual];
  ++total_;
}

void ConfusionMatrix::AddBatch(const ProbaMatrix& proba, const Batch& batch) {
  DMT_DCHECK(proba.rows() == batch.size());
  DMT_DCHECK(proba.cols() == num_classes_);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Add(ArgMax(proba.row(i)), batch.label(i));
  }
}

void ConfusionMatrix::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

std::size_t ConfusionMatrix::count(int predicted, int actual) const {
  return counts_[static_cast<std::size_t>(predicted) * num_classes_ + actual];
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    correct += counts_[c * num_classes_ + c];
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::Precision(int c) const {
  std::size_t tp = count(c, c);
  std::size_t predicted = 0;
  for (std::size_t a = 0; a < num_classes_; ++a) {
    predicted += count(c, static_cast<int>(a));
  }
  return predicted == 0 ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(predicted);
}

double ConfusionMatrix::Recall(int c) const {
  std::size_t tp = count(c, c);
  std::size_t actual = 0;
  for (std::size_t p = 0; p < num_classes_; ++p) {
    actual += count(static_cast<int>(p), c);
  }
  return actual == 0 ? 0.0
                     : static_cast<double>(tp) / static_cast<double>(actual);
}

double ConfusionMatrix::F1(int c) const {
  const double precision = Precision(c);
  const double recall = Recall(c);
  return precision + recall == 0.0
             ? 0.0
             : 2.0 * precision * recall / (precision + recall);
}

double ConfusionMatrix::WeightedF1() const {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    std::size_t actual = 0;
    for (std::size_t p = 0; p < num_classes_; ++p) {
      actual += count(static_cast<int>(p), static_cast<int>(c));
    }
    if (actual == 0) continue;
    sum += static_cast<double>(actual) * F1(static_cast<int>(c));
  }
  return sum / static_cast<double>(total_);
}

double ConfusionMatrix::CohensKappa() const {
  if (total_ == 0) return 0.0;
  const double n = static_cast<double>(total_);
  double observed = 0.0;
  double expected = 0.0;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    observed += static_cast<double>(count(static_cast<int>(c),
                                          static_cast<int>(c)));
    double row = 0.0;
    double col = 0.0;
    for (std::size_t k = 0; k < num_classes_; ++k) {
      row += static_cast<double>(count(static_cast<int>(c),
                                       static_cast<int>(k)));
      col += static_cast<double>(count(static_cast<int>(k),
                                       static_cast<int>(c)));
    }
    expected += row * col / n;
  }
  observed /= n;
  expected /= n;
  return expected >= 1.0 ? 0.0 : (observed - expected) / (1.0 - expected);
}

double ConfusionMatrix::KappaM() const {
  if (total_ == 0) return 0.0;
  const double n = static_cast<double>(total_);
  double correct = 0.0;
  double majority = 0.0;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    correct += static_cast<double>(count(static_cast<int>(c),
                                         static_cast<int>(c)));
    double support = 0.0;
    for (std::size_t p = 0; p < num_classes_; ++p) {
      support += static_cast<double>(count(static_cast<int>(p),
                                           static_cast<int>(c)));
    }
    majority = std::max(majority, support);
  }
  const double p0 = correct / n;
  const double pm = majority / n;
  return pm >= 1.0 ? 0.0 : (p0 - pm) / (1.0 - pm);
}

double ConfusionMatrix::MacroF1() const {
  double sum = 0.0;
  std::size_t supported = 0;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    std::size_t actual = 0;
    for (std::size_t p = 0; p < num_classes_; ++p) {
      actual += count(static_cast<int>(p), static_cast<int>(c));
    }
    if (actual == 0) continue;
    ++supported;
    sum += F1(static_cast<int>(c));
  }
  return supported == 0 ? 0.0 : sum / static_cast<double>(supported);
}

}  // namespace dmt::eval
