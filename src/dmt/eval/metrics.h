// Classification metrics for the prequential evaluation (paper Sec. VI-D1:
// the F1 measure is reported because many of the streams are imbalanced).
#ifndef DMT_EVAL_METRICS_H_
#define DMT_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "dmt/common/types.h"

namespace dmt::eval {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void Add(int predicted, int actual);
  // Accumulates one prediction per probability row (argmax, first-maximum
  // tie-break like Classifier::Predict) against the batch labels.
  void AddBatch(const ProbaMatrix& proba, const Batch& batch);
  void Reset();

  std::size_t total() const { return total_; }
  std::size_t count(int predicted, int actual) const;

  double Accuracy() const;
  // Per-class precision / recall / F1 (zero when undefined).
  double Precision(int c) const;
  double Recall(int c) const;
  double F1(int c) const;
  // Macro F1 averaged over the classes that actually occur (support > 0);
  // with small prequential batches this avoids zeroing the mean with absent
  // classes. For binary problems with both classes present this equals the
  // mean of the two per-class F1 scores.
  double MacroF1() const;
  // Cohen's kappa: agreement beyond chance given both marginals. The
  // standard stream-learning complement to accuracy on imbalanced data.
  double CohensKappa() const;
  // Kappa-M: improvement over the always-majority classifier (Bifet et
  // al.); <= 0 means no better than predicting the majority class.
  double KappaM() const;
  // Support-weighted mean of the per-class F1 scores. This is the F1 the
  // evaluation harness reports: on heavily imbalanced multiclass streams
  // (Poker, KDD) it reproduces the paper's Table II levels, which a plain
  // macro average over tiny prequential batches cannot.
  double WeightedF1() const;

 private:
  std::size_t num_classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // counts_[pred * c + actual]
};

}  // namespace dmt::eval

#endif  // DMT_EVAL_METRICS_H_
