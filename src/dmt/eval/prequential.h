// Prequential (test-then-train) evaluation, the paper's protocol (Sec.
// VI-A): each batch (0.1% of the stream) is first scored against the current
// model, then used to train it. Per-batch F1, complexity and wall-clock time
// are aggregated into the mean +- std figures of Tables II-V and into the
// sliding-window series of Figure 3.
#ifndef DMT_EVAL_PREQUENTIAL_H_
#define DMT_EVAL_PREQUENTIAL_H_

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "dmt/common/classifier.h"
#include "dmt/common/sanitize.h"
#include "dmt/common/stats.h"
#include "dmt/streams/stream.h"

namespace dmt::eval {

// Thrown when a run exceeds PrequentialConfig::time_limit_seconds. Checked
// between batches only (a soft deadline): a single batch is never
// interrupted mid-flight, so the model is left in a consistent state.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

struct PrequentialConfig {
  // Observations per test-then-train iteration; 0 derives it as 0.1% of
  // `expected_samples` (minimum 1).
  std::size_t batch_size = 0;
  std::size_t expected_samples = 0;
  // Apply online min-max normalization (the paper normalizes all features).
  bool normalize = true;
  // Record per-batch series (needed for Figures 3 and 4).
  bool keep_series = false;
  // When set, the classifier is attached to this registry before training
  // ("harness.*" counters and scale/score/train phase timers are recorded
  // here too). The registry must outlive the run; null disables telemetry
  // with zero per-batch cost.
  obs::TelemetryRegistry* telemetry = nullptr;
  // What to do with rows carrying non-finite features or out-of-range
  // labels. Sanitization runs BEFORE normalization -- scaling first would
  // clamp an Inf into [0,1] and hide the fault -- and kImputeMidpoint uses
  // the scaler's current per-feature range midpoints (0.0 for features
  // without finite observations yet, or when normalize is off). Nonzero
  // drop/impute tallies are flushed to "harness.rows_dropped" /
  // "harness.values_imputed" after the run; clean runs create no such
  // keys, keeping the pinned telemetry goldens unchanged.
  BadInputPolicy bad_input_policy = BadInputPolicy::kSkip;
  // Soft wall-clock deadline in seconds; 0 disables. Checked between
  // batches; throws DeadlineExceeded when exceeded.
  double time_limit_seconds = 0.0;
  // Mid-run checkpoint hook, fired after every `snapshot_every` completed
  // batches (0 disables) with the batch count so far. Runs between batches,
  // so the classifier is always in a consistent snapshottable state; the
  // sweep engine and dmt_eval use it to Save the model while a cell is
  // still in flight. An exception thrown by the hook aborts the run.
  std::size_t snapshot_every = 0;
  std::function<void(std::size_t)> snapshot_hook;
};

struct PrequentialResult {
  RunningStats f1;
  RunningStats accuracy;
  RunningStats num_splits;
  RunningStats num_params;
  RunningStats iteration_seconds;
  std::size_t total_samples = 0;
  std::size_t num_batches = 0;
  // Sanitization tallies (see PrequentialConfig::bad_input_policy).
  std::uint64_t rows_dropped = 0;
  std::uint64_t values_imputed = 0;
  // Per-batch series (only when keep_series).
  std::vector<double> f1_series;
  std::vector<double> splits_series;
};

PrequentialResult RunPrequential(streams::Stream* stream,
                                 Classifier* classifier,
                                 const PrequentialConfig& config);

}  // namespace dmt::eval

#endif  // DMT_EVAL_PREQUENTIAL_H_
