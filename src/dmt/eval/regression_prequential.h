// Prequential (test-then-train) evaluation for regression streams:
// per-batch MAE / RMSE / R^2 with the same mean +- std aggregation as the
// classification harness.
#ifndef DMT_EVAL_REGRESSION_PREQUENTIAL_H_
#define DMT_EVAL_REGRESSION_PREQUENTIAL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dmt/common/sanitize.h"
#include "dmt/common/stats.h"
#include "dmt/linear/linear_regressor.h"
#include "dmt/streams/regression_streams.h"

namespace dmt::eval {

struct RegressionPrequentialConfig {
  std::size_t batch_size = 0;  // 0 -> 0.1% of expected_samples
  std::size_t expected_samples = 0;
  bool normalize = true;  // online min-max scaling of the features
  bool keep_series = false;
  // Rows with non-finite features or targets, mirroring the classification
  // harness (sanitize runs before scaling). A non-finite target always
  // drops its row -- a target cannot be imputed; kImputeMidpoint imputes
  // bad features with 0.0 (pre-scale) since this harness's scaler is
  // internal.
  BadInputPolicy bad_input_policy = BadInputPolicy::kSkip;
};

struct RegressionPrequentialResult {
  RunningStats mae;
  RunningStats rmse;
  RunningStats num_splits;
  RunningStats iteration_seconds;
  double r_squared = 0.0;  // over the whole stream
  std::size_t total_samples = 0;
  std::size_t num_batches = 0;
  std::uint64_t rows_dropped = 0;
  std::uint64_t values_imputed = 0;
  std::vector<double> mae_series;
};

// A regression model adapter: predict, train on a batch, report splits.
struct RegressorApi {
  std::function<double(std::span<const double>)> predict;
  std::function<void(const linear::RegressionBatch&)> partial_fit;
  std::function<std::size_t()> num_splits;
  // Optional batch scoring hook writing one prediction per row into `out`
  // (sized batch.size() by the harness). When empty, the harness falls back
  // to calling `predict` per row into the same reusable buffer.
  std::function<void(const linear::RegressionBatch&, std::span<double>)>
      predict_batch;
};

// Convenience adapter for any model with Predict/PartialFit/NumSplits.
template <typename Model>
RegressorApi MakeRegressorApi(Model* model) {
  return {
      [model](std::span<const double> x) { return model->Predict(x); },
      [model](const linear::RegressionBatch& batch) {
        model->PartialFit(batch);
      },
      [model]() { return model->NumSplits(); },
      {},
  };
}

RegressionPrequentialResult RunRegressionPrequential(
    streams::RegressionStream* stream, const RegressorApi& model,
    const RegressionPrequentialConfig& config);

}  // namespace dmt::eval

#endif  // DMT_EVAL_REGRESSION_PREQUENTIAL_H_
