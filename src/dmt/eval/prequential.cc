#include "dmt/eval/prequential.h"

#include <algorithm>
#include <chrono>

#include "dmt/common/check.h"
#include "dmt/eval/metrics.h"
#include "dmt/obs/telemetry.h"
#include "dmt/streams/scaler.h"

namespace dmt::eval {

PrequentialResult RunPrequential(streams::Stream* stream,
                                 Classifier* classifier,
                                 const PrequentialConfig& config) {
  DMT_CHECK(stream != nullptr);
  DMT_CHECK(classifier != nullptr);
  std::size_t batch_size = config.batch_size;
  if (batch_size == 0) {
    DMT_CHECK(config.expected_samples > 0);
    batch_size = std::max<std::size_t>(
        1, static_cast<std::size_t>(0.001 *
                                    static_cast<double>(
                                        config.expected_samples)));
  }

  PrequentialResult result;
  streams::OnlineMinMaxScaler scaler(stream->num_features());
  ConfusionMatrix confusion(stream->num_classes());
  Batch batch(stream->num_features(), batch_size);
  // One probability buffer reused across every batch: after the first
  // iteration the scoring loop performs no heap allocation.
  ProbaMatrix proba;
  // Imputation values (scaler range midpoints), refreshed per batch.
  std::vector<double> midpoints(stream->num_features(), 0.0);
  SanitizeStats sanitize_stats;
  const int num_classes = static_cast<int>(stream->num_classes());

  // Telemetry destinations stay null (and the timers skip all clock reads)
  // when no registry is supplied.
  std::uint64_t* batches_counter = nullptr;
  std::uint64_t* samples_counter = nullptr;
  obs::PhaseTimer* scale_timer = nullptr;
  obs::PhaseTimer* score_timer = nullptr;
  obs::PhaseTimer* train_timer = nullptr;
  if (config.telemetry != nullptr) {
    classifier->AttachTelemetry(config.telemetry);
    batches_counter = config.telemetry->Counter("harness.batches");
    samples_counter = config.telemetry->Counter("harness.samples");
    scale_timer = config.telemetry->Timer("harness.scale");
    score_timer = config.telemetry->Timer("harness.score");
    train_timer = config.telemetry->Timer("harness.train");
  }

  const auto run_start = std::chrono::steady_clock::now();
  while (true) {
    if (config.time_limit_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        run_start)
              .count();
      if (elapsed > config.time_limit_seconds) {
        throw DeadlineExceeded("prequential run exceeded soft deadline of " +
                               std::to_string(config.time_limit_seconds) +
                               "s");
      }
    }
    batch.clear();
    if (stream->FillBatch(batch_size, &batch) == 0) break;

    // Sanitize before scaling: post-scale, std::clamp would fold an Inf
    // into [0, 1] and the fault would be invisible. Imputation uses the
    // ranges seen so far (no future leakage).
    if (config.bad_input_policy == BadInputPolicy::kImputeMidpoint &&
        config.normalize) {
      scaler.MidpointsInto(midpoints);
    }
    SanitizeBatch(&batch, config.bad_input_policy, midpoints, num_classes,
                  &sanitize_stats);
    if (batch.empty()) continue;  // every row dropped; stream not exhausted

    // Normalization is harness preprocessing, not model work: it runs
    // outside the timed region so iteration_seconds measures the model
    // (test + train) only.
    if (config.normalize) {
      obs::ScopedPhaseTimer timer(scale_timer);
      scaler.FitTransform(&batch);
    }

    // Test, then train. Only the model calls are timed; the confusion
    // bookkeeping below happens after the clock stops.
    const auto start = std::chrono::steady_clock::now();
    {
      obs::ScopedPhaseTimer timer(score_timer);
      classifier->PredictBatch(batch, &proba);
    }
    {
      obs::ScopedPhaseTimer timer(train_timer);
      classifier->PartialFit(batch);
    }
    const auto end = std::chrono::steady_clock::now();

    DMT_TELEMETRY_COUNT(batches_counter);
    DMT_TELEMETRY_ADD(samples_counter, batch.size());

    confusion.Reset();
    confusion.AddBatch(proba, batch);

    const double f1 = confusion.WeightedF1();
    const double splits = static_cast<double>(classifier->NumSplits());
    result.f1.Add(f1);
    result.accuracy.Add(confusion.Accuracy());
    result.num_splits.Add(splits);
    result.num_params.Add(static_cast<double>(classifier->NumParameters()));
    result.iteration_seconds.Add(
        std::chrono::duration<double>(end - start).count());
    if (config.keep_series) {
      result.f1_series.push_back(f1);
      result.splits_series.push_back(splits);
    }
    result.total_samples += batch.size();
    ++result.num_batches;
    if (config.snapshot_every > 0 && config.snapshot_hook &&
        result.num_batches % config.snapshot_every == 0) {
      config.snapshot_hook(result.num_batches);
    }
  }
  result.rows_dropped = sanitize_stats.rows_dropped;
  result.values_imputed = sanitize_stats.values_imputed;
  // Lazy flush: only runs that actually sanitized something create the
  // counters, so clean runs keep the pinned golden counter surface.
  if (config.telemetry != nullptr) {
    if (sanitize_stats.rows_dropped > 0) {
      *config.telemetry->Counter("harness.rows_dropped") +=
          sanitize_stats.rows_dropped;
    }
    if (sanitize_stats.values_imputed > 0) {
      *config.telemetry->Counter("harness.values_imputed") +=
          sanitize_stats.values_imputed;
    }
  }
  return result;
}

}  // namespace dmt::eval
