// Incremental Gaussian Naive Bayes.
//
// Used as the leaf model of the VFDT-NBA baseline (Gama et al., 2003): each
// leaf keeps per-class feature Gaussians and class counts, and the
// "adaptive" rule picks NB or majority-class prediction depending on which
// has been more accurate at that leaf so far.
#ifndef DMT_BAYES_GAUSSIAN_NB_H_
#define DMT_BAYES_GAUSSIAN_NB_H_

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "dmt/common/types.h"

namespace dmt::serial {
class Writer;
class Reader;
}  // namespace dmt::serial

namespace dmt::bayes {

// Streaming per-feature Gaussian sufficient statistics for one class.
struct GaussianEstimator {
  std::size_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;

  void Add(double x) {
    ++n;
    const double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
  }
  double variance() const {
    return n > 1 ? m2 / static_cast<double>(n) : 0.0;
  }
  // Log-density with a variance floor so single-valued features stay finite.
  double LogPdf(double x) const;
};

class GaussianNaiveBayes {
 public:
  GaussianNaiveBayes(int num_features, int num_classes);

  void Update(std::span<const double> x, int y);
  void Update(const Batch& batch);

  // Writes the posterior class probabilities into `out` (num_classes
  // entries, overwritten); uniform until any data has been seen. The
  // allocation-free scoring primitive.
  void PredictProbaInto(std::span<const double> x,
                        std::span<double> out) const;
  // Posterior class probabilities; uniform until any data has been seen.
  // Allocates the result; hot paths should use PredictProbaInto.
  std::vector<double> PredictProba(std::span<const double> x) const;
  int Predict(std::span<const double> x) const;

  // Majority class by raw counts (the VFDT majority-class prediction).
  int MajorityClass() const;

  std::size_t total_count() const { return total_count_; }
  const std::vector<std::size_t>& class_counts() const {
    return class_counts_;
  }
  int num_features() const { return num_features_; }
  int num_classes() const { return num_classes_; }

  // --- Persistence (binary archive; see serial/archive.h) ---
  void Save(std::ostream& out) const;
  static std::unique_ptr<GaussianNaiveBayes> Load(std::istream& in);
  // State-only records for embedding (e.g. inside tree leaves).
  void SaveState(serial::Writer& writer) const;
  void LoadState(serial::Reader& reader);

 private:
  int num_features_;
  int num_classes_;
  std::size_t total_count_ = 0;
  std::vector<std::size_t> class_counts_;
  // estimators_[c * num_features_ + j]: feature j under class c.
  std::vector<GaussianEstimator> estimators_;
  // Reused by Predict so the argmax path allocates nothing per call.
  mutable std::vector<double> proba_scratch_;
};

}  // namespace dmt::bayes

#endif  // DMT_BAYES_GAUSSIAN_NB_H_
