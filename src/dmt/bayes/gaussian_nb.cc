#include "dmt/bayes/gaussian_nb.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "dmt/common/check.h"
#include "dmt/common/math.h"
#include "dmt/serial/model_io.h"

namespace dmt::bayes {

namespace {
// Variance floor: features are normalized to [0,1], so 1e-4 std is "tight".
constexpr double kMinVariance = 1e-8;
}  // namespace

double GaussianEstimator::LogPdf(double x) const {
  if (n == 0) return 0.0;
  const double var = std::max(variance(), kMinVariance);
  const double diff = x - mean;
  return -0.5 * (std::log(2.0 * std::numbers::pi * var) + diff * diff / var);
}

GaussianNaiveBayes::GaussianNaiveBayes(int num_features, int num_classes)
    : num_features_(num_features),
      num_classes_(num_classes),
      class_counts_(num_classes, 0),
      estimators_(static_cast<std::size_t>(num_classes) * num_features) {
  DMT_CHECK(num_features >= 1);
  DMT_CHECK(num_classes >= 2);
}

void GaussianNaiveBayes::Update(std::span<const double> x, int y) {
  DMT_DCHECK(static_cast<int>(x.size()) == num_features_);
  if (y < 0 || y >= num_classes_) return;  // unusable label
  ++total_count_;
  ++class_counts_[y];
  GaussianEstimator* row = &estimators_[static_cast<std::size_t>(y) *
                                        num_features_];
  for (int j = 0; j < num_features_; ++j) {
    // Missing-value semantics: a non-finite feature contributes nothing
    // (one NaN would poison the Welford mean/m2 permanently); the other
    // features of the row still update their estimators.
    if (std::isfinite(x[j])) row[j].Add(x[j]);
  }
}

void GaussianNaiveBayes::Update(const Batch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Update(batch.row(i), batch.label(i));
  }
}

void GaussianNaiveBayes::PredictProbaInto(std::span<const double> x,
                                          std::span<double> out) const {
  DMT_DCHECK(static_cast<int>(out.size()) == num_classes_);
  if (total_count_ == 0) {
    std::fill(out.begin(), out.end(), 1.0 / num_classes_);
    return;
  }
  for (int c = 0; c < num_classes_; ++c) {
    if (class_counts_[c] == 0) {
      // A never-observed class has no likelihood term; leaving it at its
      // Laplace log-prior would let it out-score every seen class in
      // low-likelihood regions (the prior-only score beats any seen
      // class's prior + very negative log-likelihood). Excluded from the
      // argmax: -inf is softmax-safe while any seen class remains finite.
      out[c] = -std::numeric_limits<double>::infinity();
      continue;
    }
    // Laplace-smoothed log prior.
    out[c] = std::log(
        (class_counts_[c] + 1.0) /
        (static_cast<double>(total_count_) + num_classes_));
    const GaussianEstimator* row =
        &estimators_[static_cast<std::size_t>(c) * num_features_];
    for (int j = 0; j < num_features_; ++j) {
      // Missing-value semantics: skip the likelihood term of a non-finite
      // feature (scoring with NaN would make every class score NaN).
      if (std::isfinite(x[j])) out[c] += row[j].LogPdf(x[j]);
    }
  }
  SoftmaxInPlace(out);
}

std::vector<double> GaussianNaiveBayes::PredictProba(
    std::span<const double> x) const {
  std::vector<double> proba(num_classes_);
  PredictProbaInto(x, proba);
  return proba;
}

int GaussianNaiveBayes::Predict(std::span<const double> x) const {
  if (proba_scratch_.size() != static_cast<std::size_t>(num_classes_)) {
    proba_scratch_.resize(num_classes_);
  }
  PredictProbaInto(x, proba_scratch_);
  return ArgMax(proba_scratch_);
}

int GaussianNaiveBayes::MajorityClass() const {
  return static_cast<int>(
      std::max_element(class_counts_.begin(), class_counts_.end()) -
      class_counts_.begin());
}

void GaussianNaiveBayes::SaveState(serial::Writer& writer) const {
  writer.Size(total_count_);
  writer.Size(class_counts_.size());
  for (std::size_t count : class_counts_) writer.Size(count);
  writer.Size(estimators_.size());
  for (const GaussianEstimator& estimator : estimators_) {
    writer.Size(estimator.n);
    writer.F64(estimator.mean);
    writer.F64(estimator.m2);
  }
}

void GaussianNaiveBayes::LoadState(serial::Reader& reader) {
  total_count_ = reader.Size(std::size_t{1} << 62);
  const std::size_t num_counts = reader.Size(serial::kMaxVector);
  serial::Check(num_counts == class_counts_.size(),
                "naive Bayes class count size mismatch");
  for (std::size_t& count : class_counts_) {
    count = reader.Size(std::size_t{1} << 62);
  }
  const std::size_t num_estimators = reader.Size(serial::kMaxVector);
  serial::Check(num_estimators == estimators_.size(),
                "naive Bayes estimator count mismatch");
  for (GaussianEstimator& estimator : estimators_) {
    estimator.n = reader.Size(std::size_t{1} << 62);
    estimator.mean = reader.F64();
    estimator.m2 = reader.F64();
  }
}

void GaussianNaiveBayes::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagGaussianNb);
  writer.I32(num_features_);
  writer.I32(num_classes_);
  SaveState(writer);
}

std::unique_ptr<GaussianNaiveBayes> GaussianNaiveBayes::Load(
    std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagGaussianNb);
  const int num_features = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "naive Bayes num_features"));
  const int num_classes = static_cast<int>(serial::CheckedRange(
      reader.I32(), 2, serial::kMaxClasses, "naive Bayes num_classes"));
  serial::CheckedRange(static_cast<std::int64_t>(num_features) * num_classes,
                       0, static_cast<std::int64_t>(serial::kMaxVector),
                       "naive Bayes estimator count");
  auto model = std::make_unique<GaussianNaiveBayes>(num_features, num_classes);
  model->LoadState(reader);
  return model;
}

}  // namespace dmt::bayes
