#include "dmt/common/parse.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace dmt {

std::optional<std::uint64_t> ParseU64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // strtoull accepts leading whitespace and a sign (including '-', which it
  // silently negates modulo 2^64); both are garbage for a flag value.
  const char first = text.front();
  if (first < '0' || first > '9') return std::nullopt;
  const std::string buffer(text);  // NUL-terminate for strtoull
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(buffer.c_str(), &end, 10);
  if (errno == ERANGE) return std::nullopt;
  if (end != buffer.c_str() + buffer.size()) return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

std::optional<double> ParseDouble(std::string_view text, bool require_finite) {
  if (text.empty()) return std::nullopt;
  // Leading whitespace is strtod-legal but flag/protocol garbage.
  const char first = text.front();
  if (first == ' ' || first == '\t') return std::nullopt;
  const std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size() || end == buffer.c_str()) {
    return std::nullopt;
  }
  if (require_finite && !std::isfinite(value)) return std::nullopt;
  return value;
}

}  // namespace dmt
