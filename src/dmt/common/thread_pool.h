// Fixed-size work-stealing thread pool.
//
// Backbone of the parallel prequential sweep (bench/harness.cc) and of the
// optional parallel ensemble training (ensemble/, `num_threads` config
// knob). The pool never influences results: every task must carry its own
// deterministic RNG state (seeded from data identity, never from thread
// identity or scheduling order), so outputs are bit-identical at any pool
// size.
//
// Design: each worker owns a deque; Submit() distributes round-robin,
// workers pop from the front of their own deque and steal from the back of
// a sibling's when theirs runs dry. A single mutex guards the deques --
// tasks here are coarse (a full prequential run, a member's batch), so
// queue contention is irrelevant next to task cost.
#ifndef DMT_COMMON_THREAD_POOL_H_
#define DMT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dmt {

class ThreadPool {
 public:
  // `num_threads` 0 picks DefaultThreads(). The workers start immediately
  // and live until destruction; the pool is reusable after Wait().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn` and returns a future for its result; exceptions thrown by
  // the task are captured and rethrown from future::get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Post([task]() { (*task)(); });
    return future;
  }

  // Blocks until every submitted task has finished (queues empty and no
  // task running). The pool accepts new work afterwards.
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

  // Hardware concurrency, clamped to at least 1.
  static std::size_t DefaultThreads();

 private:
  void Post(std::function<void()> fn);
  void WorkerLoop(std::size_t worker_index);
  // Pops the next task for `worker_index` (own front, else steal a sibling's
  // back). Requires `mutex_` held; returns an empty function if none.
  std::function<void()> TakeTask(std::size_t worker_index);

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> workers_;
  std::size_t next_queue_ = 0;   // round-robin submission cursor
  std::size_t in_flight_ = 0;    // queued + currently running tasks
  bool shutting_down_ = false;
};

}  // namespace dmt

#endif  // DMT_COMMON_THREAD_POOL_H_
