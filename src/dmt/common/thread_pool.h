// Fixed-size work-stealing thread pool.
//
// Backbone of the parallel prequential sweep (bench/harness.cc) and of the
// optional parallel ensemble training (ensemble/, `num_threads` config
// knob). The pool never influences results: every task must carry its own
// deterministic RNG state (seeded from data identity, never from thread
// identity or scheduling order), so outputs are bit-identical at any pool
// size.
//
// Design: each worker owns a deque; Submit() distributes round-robin,
// workers pop from the front of their own deque and steal from the back of
// a sibling's when theirs runs dry. A single mutex guards the deques --
// tasks here are coarse (a full prequential run, a member's batch), so
// queue contention is irrelevant next to task cost.
#ifndef DMT_COMMON_THREAD_POOL_H_
#define DMT_COMMON_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dmt {

class ThreadPool {
 public:
  // `num_threads` 0 picks DefaultThreads(). The workers start immediately
  // and live until destruction; the pool is reusable after Wait().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn` and returns a future for its result; exceptions thrown by
  // the task are captured and rethrown from future::get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Post([task]() { (*task)(); });
    return future;
  }

  // Blocks until every submitted task has finished (queues empty and no
  // task running). The pool accepts new work afterwards.
  void Wait();

  // Pops one queued task (if any) and runs it on the calling thread;
  // returns whether a task was run. This is what makes a single pool
  // shareable across layers (sweep cells and ensemble member work): a task
  // that blocks on futures of sibling tasks helps drain the queue instead
  // of idling a worker, so nested submission can never deadlock the pool.
  bool RunOneTask();

  std::size_t num_threads() const { return workers_.size(); }

  // Hardware concurrency, clamped to at least 1.
  static std::size_t DefaultThreads();

 private:
  void Post(std::function<void()> fn);
  void WorkerLoop(std::size_t worker_index);
  // Pops the next task for `worker_index` (own front, else steal a sibling's
  // back). Requires `mutex_` held; returns an empty function if none.
  std::function<void()> TakeTask(std::size_t worker_index);

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> workers_;
  std::size_t next_queue_ = 0;   // round-robin submission cursor
  std::size_t in_flight_ = 0;    // queued + currently running tasks
  bool shutting_down_ = false;
};

// Blocks until `future` is ready, running queued tasks of `pool` on the
// calling thread in the meantime. Use instead of future::get() whenever the
// waiting code may itself be running inside a pool task (shared-pool
// reentrancy). Safe: when the queue is empty and the future is still
// pending, the task producing it is already executing on some thread, so
// the plain wait() cannot deadlock.
template <typename T>
T GetHelping(ThreadPool* pool, std::future<T>* future) {
  while (future->wait_for(std::chrono::seconds(0)) !=
         std::future_status::ready) {
    if (!pool->RunOneTask()) {
      future->wait();
      break;
    }
  }
  return future->get();
}

}  // namespace dmt

#endif  // DMT_COMMON_THREAD_POOL_H_
