// Core value types shared by every subsystem: a single labeled observation
// and a row-major batch of observations, the unit of prequential processing.
#ifndef DMT_COMMON_TYPES_H_
#define DMT_COMMON_TYPES_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "dmt/common/check.h"

namespace dmt {

// A single labeled observation. Features are dense doubles; the label is a
// class index in [0, num_classes).
struct Instance {
  std::vector<double> x;
  int y = 0;
};

// A row-major dense batch of labeled observations. This is the unit that
// streams emit and classifiers consume (the paper processes 0.1% of the
// stream per test-then-train iteration).
class Batch {
 public:
  Batch() = default;
  Batch(std::size_t num_features, std::size_t capacity_hint = 0)
      : num_features_(num_features) {
    if (capacity_hint > 0) {
      data_.reserve(capacity_hint * num_features);
      labels_.reserve(capacity_hint);
    }
  }

  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  std::size_t num_features() const { return num_features_; }

  void Add(std::span<const double> features, int label) {
    DMT_DCHECK(features.size() == num_features_);
    data_.insert(data_.end(), features.begin(), features.end());
    labels_.push_back(label);
  }
  void Add(const Instance& instance) { Add(instance.x, instance.y); }

  std::span<const double> row(std::size_t i) const {
    DMT_DCHECK(i < size());
    return {data_.data() + i * num_features_, num_features_};
  }
  std::span<double> mutable_row(std::size_t i) {
    DMT_DCHECK(i < size());
    return {data_.data() + i * num_features_, num_features_};
  }
  int label(std::size_t i) const {
    DMT_DCHECK(i < size());
    return labels_[i];
  }
  const std::vector<int>& labels() const { return labels_; }

  void clear() {
    data_.clear();
    labels_.clear();
  }

  void set_label(std::size_t i, int label) {
    DMT_DCHECK(i < size());
    labels_[i] = label;
  }

  // Moves row `from` (features + label) into slot `to` (to <= from). With
  // Truncate this supports in-place, allocation-free row compaction: the
  // sanitization pass slides surviving rows left and truncates, keeping
  // the steady-state zero-allocation contract.
  void MoveRow(std::size_t from, std::size_t to) {
    DMT_DCHECK(from < size() && to <= from);
    if (from == to) return;
    std::copy_n(data_.begin() + from * num_features_, num_features_,
                data_.begin() + to * num_features_);
    labels_[to] = labels_[from];
  }

  // Shrinks to the first `n` rows (never grows; capacity is retained).
  void Truncate(std::size_t n) {
    DMT_DCHECK(n <= size());
    data_.resize(n * num_features_);
    labels_.resize(n);
  }

 private:
  std::size_t num_features_ = 0;
  std::vector<double> data_;
  std::vector<int> labels_;
};

// Row-major reusable class-probability buffer: one row per observation,
// one column per class. The scoring core (Classifier::PredictBatch) writes
// into a caller-owned ProbaMatrix; Reshape never shrinks the backing
// allocation, so a loop that reuses one matrix across equally-sized batches
// performs zero heap allocations in steady state.
class ProbaMatrix {
 public:
  ProbaMatrix() = default;
  ProbaMatrix(std::size_t rows, std::size_t cols) { Reshape(rows, cols); }

  // Sets the logical shape. Grows the backing store when needed, never
  // shrinks it. Row contents are unspecified until written.
  void Reshape(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    if (data_.size() < rows * cols) data_.resize(rows * cols);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  std::span<double> row(std::size_t i) {
    DMT_DCHECK(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const double> row(std::size_t i) const {
    DMT_DCHECK(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace dmt

#endif  // DMT_COMMON_TYPES_H_
