// Seedable random number generator used by every stochastic component.
//
// All experiments specify a seed (the paper: "We specified a random state to
// guarantee the reproducibility of all results"), so nothing in the library
// draws from an implicit global generator.
#ifndef DMT_COMMON_RANDOM_H_
#define DMT_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace dmt {

// SplitMix64 finalizer (Steele, Lea & Flood 2014): bijective avalanche mix
// used to turn structured seed material into well-distributed engine seeds.
inline std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Derives an independent seed from a base seed and up to two string tags
// (FNV-1a over the tag bytes, SplitMix64-finalized). The parallel sweep
// seeds every (dataset, model) cell this way -- from data identity, never
// from thread identity or scheduling order -- so results are bit-identical
// at any thread count.
inline std::uint64_t DeriveSeed(std::uint64_t base, std::string_view tag1,
                                std::string_view tag2 = {}) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ SplitMix64(base);
  auto mix = [&h](std::string_view tag) {
    for (const char c : tag) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ULL;  // FNV-1a prime
    }
    h ^= tag.size();  // length-delimits the tags: ("ab","c") != ("a","bc")
    h *= 0x100000001b3ULL;
  };
  mix(tag1);
  mix(tag2);
  return SplitMix64(h);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  int Poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Samples an index according to non-negative weights (need not sum to 1).
  int Categorical(const std::vector<double>& weights) {
    return std::discrete_distribution<int>(weights.begin(), weights.end())(
        engine_);
  }

  // Derives an independent child generator; used to hand each ensemble
  // member / stream its own deterministic substream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }
  const std::mt19937_64& engine() const { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dmt

#endif  // DMT_COMMON_RANDOM_H_
