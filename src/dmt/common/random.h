// Seedable random number generator used by every stochastic component.
//
// All experiments specify a seed (the paper: "We specified a random state to
// guarantee the reproducibility of all results"), so nothing in the library
// draws from an implicit global generator.
#ifndef DMT_COMMON_RANDOM_H_
#define DMT_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace dmt {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  int Poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Samples an index according to non-negative weights (need not sum to 1).
  int Categorical(const std::vector<double>& weights) {
    return std::discrete_distribution<int>(weights.begin(), weights.end())(
        engine_);
  }

  // Derives an independent child generator; used to hand each ensemble
  // member / stream its own deterministic substream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }
  const std::mt19937_64& engine() const { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dmt

#endif  // DMT_COMMON_RANDOM_H_
