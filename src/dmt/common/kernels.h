// Deterministic, SIMD-friendly training kernels for the hot loops of the
// learners: dot products, scaled accumulation (axpy), fused SGD updates and
// squared norms over contiguous double arrays.
//
// Determinism contract. Every kernel evaluates its floating-point
// operations in one fixed order, independent of build flags:
//
//  * Elementwise kernels (Axpy, ScaledCopy, SgdAxpy, Add) perform exactly
//    one product and one add/sub per element with no cross-element
//    dependency, so vectorization cannot change their results. They are
//    written over DMT_RESTRICT-qualified pointers so the compiler's
//    auto-vectorizer proves disjointness and emits SIMD at -O2.
//  * Reduction kernels (Dot, SquaredNorm, ScaledSquaredNorm,
//    SquaredNormDiff) accumulate into a single scalar in strict
//    left-to-right order -- bit-identical to the naive loop they replaced.
//    They are 4-way unrolled to shrink loop overhead but deliberately do
//    NOT use multiple accumulators: a reduction tree would change the
//    summation order and with it every pinned benchmark table.
//
// The optional DMT_ENABLE_AVX2 CMake flag (off by default) compiles an
// explicit AVX2 intrinsics path for the elementwise kernels in kernels.cc;
// it uses separate mul+add (never FMA, which contracts two roundings into
// one) so results stay bit-identical to the scalar path. Reductions always
// take the fixed-order scalar path regardless of the flag.
#ifndef DMT_COMMON_KERNELS_H_
#define DMT_COMMON_KERNELS_H_

#include <cstddef>
#include <span>

#if defined(__GNUC__) || defined(__clang__)
#define DMT_RESTRICT __restrict__
#else
#define DMT_RESTRICT
#endif

namespace dmt::kernels {

#ifdef DMT_ENABLE_AVX2
namespace internal {
// Out-of-line AVX2 implementations (kernels.cc, compiled with -mavx2).
void AxpyAvx2(double a, const double* x, double* y, std::size_t n);
void ScaledCopyAvx2(double a, const double* x, double* y, std::size_t n);
void SgdAxpyAvx2(double lr, double err, const double* x, double* w,
                 std::size_t n);
void AddAvx2(double* y, const double* x, std::size_t n);
void DotBatch4Avx2(const double* x, std::size_t stride, const double* w,
                   std::size_t n, double* out);
}  // namespace internal
#endif

// Returns "avx2" or "scalar" -- which path the elementwise kernels take.
const char* IsaName();

// sum_i a[i] * b[i], strict left-to-right accumulation.
inline double Dot(const double* DMT_RESTRICT a, const double* DMT_RESTRICT b,
                  std::size_t n) {
  double sum = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    sum += a[i] * b[i];
    sum += a[i + 1] * b[i + 1];
    sum += a[i + 2] * b[i + 2];
    sum += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

// Four simultaneous dot products against one shared weight vector: four
// rows of a row-major tile (row t at x + t*stride) times w. Each lane keeps
// its OWN single accumulator updated in strict i-order, so every output is
// bit-identical to Dot(x + t*stride, w, n) -- the multi-accumulator ILP is
// across independent rows, never within one reduction. This is the
// GEMM-shaped primitive of the leaf-tiled GLM update: one pass over w
// serves four samples, quartering the weight-vector traffic.
inline void DotBatch4(const double* DMT_RESTRICT x, std::size_t stride,
                      const double* DMT_RESTRICT w, std::size_t n,
                      double* DMT_RESTRICT out) {
#ifdef DMT_ENABLE_AVX2
  internal::DotBatch4Avx2(x, stride, w, n, out);
#else
  const double* DMT_RESTRICT x0 = x;
  const double* DMT_RESTRICT x1 = x + stride;
  const double* DMT_RESTRICT x2 = x + 2 * stride;
  const double* DMT_RESTRICT x3 = x + 3 * stride;
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double wi = w[i];
    s0 += x0[i] * wi;
    s1 += x1[i] * wi;
    s2 += x2[i] * wi;
    s3 += x3[i] * wi;
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
#endif
}

// y[i] += a * x[i].
inline void Axpy(double a, const double* DMT_RESTRICT x,
                 double* DMT_RESTRICT y, std::size_t n) {
#ifdef DMT_ENABLE_AVX2
  internal::AxpyAvx2(a, x, y, n);
#else
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
#endif
}

// y[i] = a * x[i].
inline void ScaledCopy(double a, const double* DMT_RESTRICT x,
                       double* DMT_RESTRICT y, std::size_t n) {
#ifdef DMT_ENABLE_AVX2
  internal::ScaledCopyAvx2(a, x, y, n);
#else
  for (std::size_t i = 0; i < n; ++i) y[i] = a * x[i];
#endif
}

// w[i] -= lr * (err * x[i]) -- the fused SGD weight update, with the exact
// operation order of the historical per-coordinate loop (gradient first,
// then the learning-rate scaling).
inline void SgdAxpy(double lr, double err, const double* DMT_RESTRICT x,
                    double* DMT_RESTRICT w, std::size_t n) {
#ifdef DMT_ENABLE_AVX2
  internal::SgdAxpyAvx2(lr, err, x, w, n);
#else
  for (std::size_t i = 0; i < n; ++i) w[i] -= lr * (err * x[i]);
#endif
}

// y[i] += x[i].
inline void Add(double* DMT_RESTRICT y, const double* DMT_RESTRICT x,
                std::size_t n) {
#ifdef DMT_ENABLE_AVX2
  internal::AddAvx2(y, x, n);
#else
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
#endif
}

// sum_i v[i]^2, strict left-to-right.
inline double SquaredNorm(const double* DMT_RESTRICT v, std::size_t n) {
  double sum = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    sum += v[i] * v[i];
    sum += v[i + 1] * v[i + 1];
    sum += v[i + 2] * v[i + 2];
    sum += v[i + 3] * v[i + 3];
  }
  for (; i < n; ++i) sum += v[i] * v[i];
  return sum;
}

// scale * sum_i v[i]^2 (one final multiply, same rounding as the historical
// `s * SquaredNorm(v)` expression).
inline double ScaledSquaredNorm(double scale, const double* DMT_RESTRICT v,
                                std::size_t n) {
  return scale * SquaredNorm(v, n);
}

// sum_i (a[i] - b[i])^2, strict left-to-right -- the complement-gradient
// norm of Eq. (7) fused into one pass (no materialized difference vector).
inline double SquaredNormDiff(const double* DMT_RESTRICT a,
                              const double* DMT_RESTRICT b, std::size_t n) {
  double sum = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    sum += d0 * d0;
    sum += d1 * d1;
    sum += d2 * d2;
    sum += d3 * d3;
  }
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

// --- float32 candidate-gradient kernels -------------------------------------
//
// The float32 CandidateStore mode stores accumulated candidate gradients as
// floats (halving the scatter bandwidth) but performs EVERY arithmetic
// operation in double: accumulation widens the stored float, adds in
// double, and rounds once back to float; norms widen each element and
// accumulate in a double (single accumulator, strict left-to-right). The
// only precision loss is therefore the one float rounding per stored
// element per update -- there is no float arithmetic anywhere.

// y[i] = float(double(y[i]) + x[i]) -- elementwise, one widening, one
// double add, one rounding; vectorization-safe like Add.
inline void AddToF32(float* DMT_RESTRICT y, const double* DMT_RESTRICT x,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<float>(static_cast<double>(y[i]) + x[i]);
  }
}

// sum_i double(v[i])^2, strict left-to-right double accumulation.
inline double SquaredNormF32(const float* DMT_RESTRICT v, std::size_t n) {
  double sum = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = static_cast<double>(v[i]);
    const double d1 = static_cast<double>(v[i + 1]);
    const double d2 = static_cast<double>(v[i + 2]);
    const double d3 = static_cast<double>(v[i + 3]);
    sum += d0 * d0;
    sum += d1 * d1;
    sum += d2 * d2;
    sum += d3 * d3;
  }
  for (; i < n; ++i) {
    const double d = static_cast<double>(v[i]);
    sum += d * d;
  }
  return sum;
}

// sum_i (a[i] - double(b[i]))^2, strict left-to-right double accumulation
// (the complement-gradient norm against a float-stored left gradient).
inline double SquaredNormDiffF32(const double* DMT_RESTRICT a,
                                 const float* DMT_RESTRICT b, std::size_t n) {
  double sum = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - static_cast<double>(b[i]);
    const double d1 = a[i + 1] - static_cast<double>(b[i + 1]);
    const double d2 = a[i + 2] - static_cast<double>(b[i + 2]);
    const double d3 = a[i + 3] - static_cast<double>(b[i + 3]);
    sum += d0 * d0;
    sum += d1 * d1;
    sum += d2 * d2;
    sum += d3 * d3;
  }
  for (; i < n; ++i) {
    const double d = a[i] - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

// --- std::span convenience overloads (same kernels) -------------------------

inline double Dot(std::span<const double> a, std::span<const double> b) {
  return Dot(a.data(), b.data(), a.size());
}
inline void Axpy(double a, std::span<const double> x, std::span<double> y) {
  Axpy(a, x.data(), y.data(), y.size());
}
inline void ScaledCopy(double a, std::span<const double> x,
                       std::span<double> y) {
  ScaledCopy(a, x.data(), y.data(), y.size());
}
inline void Add(std::span<double> y, std::span<const double> x) {
  Add(y.data(), x.data(), y.size());
}
inline double SquaredNorm(std::span<const double> v) {
  return SquaredNorm(v.data(), v.size());
}
inline double ScaledSquaredNorm(double scale, std::span<const double> v) {
  return ScaledSquaredNorm(scale, v.data(), v.size());
}
inline double SquaredNormDiff(std::span<const double> a,
                              std::span<const double> b) {
  return SquaredNormDiff(a.data(), b.data(), a.size());
}

}  // namespace dmt::kernels

#endif  // DMT_COMMON_KERNELS_H_
