// Common interface implemented by every online classifier in this library
// (DMT, the Hoeffding-tree family, FIMT-DD, and the ensembles), consumed by
// the prequential evaluation harness.
#ifndef DMT_COMMON_CLASSIFIER_H_
#define DMT_COMMON_CLASSIFIER_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "dmt/common/types.h"

namespace dmt {

class Classifier {
 public:
  virtual ~Classifier() = default;

  // Incrementally trains on a batch of observations. Streams in this library
  // are batch-incremental (the paper processes 0.1% of the data per step);
  // instance-incremental training is a batch of size one.
  virtual void PartialFit(const Batch& batch) = 0;

  // Predicts the class index for a single observation.
  virtual int Predict(std::span<const double> x) const = 0;

  // Class-probability estimates (size num_classes, sums to ~1).
  virtual std::vector<double> PredictProba(std::span<const double> x) const = 0;

  // Complexity measures with the paper's counting rules (Sec. VI-D2):
  // every inner node is one split; majority-class leaves add nothing; model
  // leaves add 1 (binary) or c (multiclass) splits. Parameters: 1 per inner
  // node, leaves add 1 (majority) or m (linear / per-class NB) parameters,
  // counted per class for multinomial models.
  virtual std::size_t NumSplits() const = 0;
  virtual std::size_t NumParameters() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace dmt

#endif  // DMT_COMMON_CLASSIFIER_H_
