// Common interface implemented by every online classifier in this library
// (DMT, the Hoeffding-tree family, FIMT-DD, and the ensembles), consumed by
// the prequential evaluation harness.
//
// The scoring core is batch-first and buffer-reusing (see DESIGN.md,
// "Scoring core"): models implement PredictProbaInto, which writes the
// class distribution into a caller-owned span, and optionally override
// PredictBatch to score a whole batch into a reusable ProbaMatrix. The
// value-returning Predict / PredictProba calls are thin non-virtual
// wrappers kept for convenience and API compatibility; steady-state
// scoring through the Into/Batch path performs zero heap allocations.
//
// Buffer-ownership rules:
//  * `out` spans/matrices are owned by the caller; PredictProbaInto must
//    overwrite all num_classes() entries (never read them).
//  * PredictProbaInto is const and touches no per-classifier mutable
//    scratch in the stand-alone models, so it is safe to call concurrently
//    on one instance. Ensembles accumulate member distributions through a
//    single mutable scratch row, so concurrent scoring of one *ensemble*
//    must go through PredictBatch (which gives each worker its own row)
//    or use distinct instances. The Predict wrapper also uses per-instance
//    scratch and is therefore not concurrency-safe on a shared instance.
#ifndef DMT_COMMON_CLASSIFIER_H_
#define DMT_COMMON_CLASSIFIER_H_

#include <cstddef>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dmt/common/check.h"
#include "dmt/common/math.h"
#include "dmt/common/types.h"

namespace dmt::obs {
class TelemetryRegistry;
}  // namespace dmt::obs

namespace dmt {

class Classifier {
 public:
  virtual ~Classifier() = default;

  // Binds this model's event counters to `registry` (see obs/telemetry.h).
  // Models cache the raw counter pointers once here, so the training hot
  // path pays only a null-checked increment; the default is a no-op and an
  // unattached model behaves bit-identically to one that was never
  // instrumented. The registry must outlive the classifier (or a later
  // AttachTelemetry call); each registry is owned by exactly one
  // prequential run, so no synchronization is involved.
  virtual void AttachTelemetry(obs::TelemetryRegistry* registry) {
    (void)registry;
  }

  // Incrementally trains on a batch of observations. Streams in this library
  // are batch-incremental (the paper processes 0.1% of the data per step);
  // instance-incremental training is a batch of size one.
  virtual void PartialFit(const Batch& batch) = 0;

  // Number of classes of the scored distribution (the required size of
  // every `out` buffer below).
  virtual int num_classes() const = 0;

  // Writes the class-probability estimates for one observation into `out`
  // (exactly num_classes() entries, sums to ~1). This is the scoring
  // primitive every model implements natively, with no per-call heap
  // allocation.
  virtual void PredictProbaInto(std::span<const double> x,
                                std::span<double> out) const = 0;

  // Scores every row of `batch` into `out` (reshaped to
  // batch.size() x num_classes()). The default loops PredictProbaInto;
  // ensembles may override to fan the rows over a shared thread pool.
  virtual void PredictBatch(const Batch& batch, ProbaMatrix* out) const {
    out->Reshape(batch.size(), static_cast<std::size_t>(num_classes()));
    for (std::size_t i = 0; i < batch.size(); ++i) {
      PredictProbaInto(batch.row(i), out->row(i));
    }
  }

  // Predicts the class index for a single observation: the argmax of
  // PredictProbaInto, computed through a reusable per-instance scratch row
  // (zero allocations in steady state, but not concurrency-safe on a
  // shared instance).
  int Predict(std::span<const double> x) const {
    const std::size_t c = static_cast<std::size_t>(num_classes());
    if (predict_scratch_.size() != c) predict_scratch_.resize(c);
    PredictProbaInto(x, predict_scratch_);
    return ArgMax(predict_scratch_);
  }

  // Class-probability estimates (size num_classes, sums to ~1). Legacy
  // value-returning wrapper: allocates the result vector per call; hot
  // paths should use PredictProbaInto / PredictBatch instead.
  std::vector<double> PredictProba(std::span<const double> x) const {
    std::vector<double> proba(static_cast<std::size_t>(num_classes()));
    PredictProbaInto(x, proba);
    return proba;
  }

  // Complexity measures with the paper's counting rules (Sec. VI-D2):
  // every inner node is one split; majority-class leaves add nothing; model
  // leaves add 1 (binary) or c (multiclass) splits. Parameters: 1 per inner
  // node, leaves add 1 (majority) or m (linear / per-class NB) parameters,
  // counted per class for multinomial models.
  virtual std::size_t NumSplits() const = 0;
  virtual std::size_t NumParameters() const = 0;

  virtual std::string name() const = 0;

  // Writes a versioned binary snapshot of the full mutable model state
  // (see serial/archive.h): restoring it and continuing training is
  // bit-identical to never having snapshotted. Every library learner
  // overrides this; the default rejects types without a serial format.
  // Decode errors are serial::SerialError; this logic error is different
  // in kind (the *type* cannot snapshot, no input is involved).
  virtual void Save(std::ostream& out) const {
    (void)out;
    throw std::logic_error(name() + " does not support Save");
  }

 private:
  mutable std::vector<double> predict_scratch_;  // Predict() argmax buffer
};

}  // namespace dmt

#endif  // DMT_COMMON_CLASSIFIER_H_
