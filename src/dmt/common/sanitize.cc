#include "dmt/common/sanitize.h"

#include "dmt/common/check.h"

namespace dmt {

BadInputPolicy BadInputPolicyFromString(const std::string& text) {
  if (text == "skip") return BadInputPolicy::kSkip;
  if (text == "impute") return BadInputPolicy::kImputeMidpoint;
  if (text == "throw") return BadInputPolicy::kThrow;
  throw std::invalid_argument("unknown bad-input policy '" + text +
                              "' (known: skip, impute, throw)");
}

const char* BadInputPolicyName(BadInputPolicy policy) {
  switch (policy) {
    case BadInputPolicy::kSkip:
      return "skip";
    case BadInputPolicy::kImputeMidpoint:
      return "impute";
    case BadInputPolicy::kThrow:
      return "throw";
  }
  return "?";
}

std::size_t SanitizeBatch(Batch* batch, BadInputPolicy policy,
                          std::span<const double> midpoints, int num_classes,
                          SanitizeStats* stats) {
  DMT_CHECK(batch != nullptr);
  std::size_t write = 0;
  for (std::size_t read = 0; read < batch->size(); ++read) {
    const std::span<double> row = batch->mutable_row(read);
    const int label = batch->label(read);
    bool keep = true;
    if (label < 0 || label >= num_classes) {
      // A label cannot be imputed; the row is unusable under any policy.
      if (policy == BadInputPolicy::kThrow) {
        throw BadInputError("label " + std::to_string(label) +
                            " outside [0, " + std::to_string(num_classes) +
                            ")");
      }
      keep = false;
    } else if (!RowIsFinite(row)) {
      switch (policy) {
        case BadInputPolicy::kThrow:
          throw BadInputError("non-finite feature value in input row");
        case BadInputPolicy::kSkip:
          keep = false;
          break;
        case BadInputPolicy::kImputeMidpoint: {
          DMT_CHECK(midpoints.size() == row.size());
          for (std::size_t j = 0; j < row.size(); ++j) {
            if (!std::isfinite(row[j])) {
              row[j] = midpoints[j];
              if (stats != nullptr) ++stats->values_imputed;
            }
          }
          break;
        }
      }
    }
    if (keep) {
      batch->MoveRow(read, write);
      ++write;
    } else if (stats != nullptr) {
      ++stats->rows_dropped;
    }
  }
  batch->Truncate(write);
  return write;
}

}  // namespace dmt
