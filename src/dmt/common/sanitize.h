// Shared ingest sanitization (DESIGN.md Sec. 8).
//
// Real-world streams carry NaN/Inf features, missing values and out-of-range
// labels. The prequential harnesses run SanitizeBatch on every batch BEFORE
// scaling -- scaling first would let std::clamp silently fold an Inf into
// 1.0 and hide the fault -- and the classifiers additionally guard their own
// per-row train loops (defense in depth: a library user may feed a model
// directly, bypassing the harness).
#ifndef DMT_COMMON_SANITIZE_H_
#define DMT_COMMON_SANITIZE_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "dmt/common/types.h"

namespace dmt {

// What a harness does with a row containing non-finite features or an
// out-of-range label.
enum class BadInputPolicy {
  kSkip,            // drop the row (default: matches river/scikit-multiflow
                    //   evaluators, which skip unusable observations)
  kImputeMidpoint,  // replace each non-finite feature with the scaler's
                    //   current range midpoint; rows with bad labels are
                    //   still dropped (a label cannot be imputed)
  kThrow,           // raise BadInputError (strict-ingest deployments)
};

// Thrown under BadInputPolicy::kThrow.
class BadInputError : public std::runtime_error {
 public:
  explicit BadInputError(const std::string& what)
      : std::runtime_error(what) {}
};

// Parses "skip" / "impute" / "throw"; throws std::invalid_argument else.
BadInputPolicy BadInputPolicyFromString(const std::string& text);
const char* BadInputPolicyName(BadInputPolicy policy);

// True iff every feature value is finite (no NaN, no +/-Inf).
inline bool RowIsFinite(std::span<const double> x) {
  for (const double v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

// Tallies of what sanitization did; the harness flushes nonzero fields
// into telemetry counters after the run (lazily, so clean runs add no keys
// to the golden counter surface).
struct SanitizeStats {
  std::uint64_t rows_dropped = 0;
  std::uint64_t values_imputed = 0;
};

// Sanitizes `batch` in place under `policy`. `midpoints` supplies the
// imputation values for kImputeMidpoint (typically
// OnlineMinMaxScaler::MidpointsInto output; must have num_features entries
// when that policy is active, may be empty otherwise). Labels outside
// [0, num_classes) always invalidate their row (dropped, or thrown under
// kThrow). Returns the number of surviving rows.
std::size_t SanitizeBatch(Batch* batch, BadInputPolicy policy,
                          std::span<const double> midpoints, int num_classes,
                          SanitizeStats* stats);

}  // namespace dmt

#endif  // DMT_COMMON_SANITIZE_H_
