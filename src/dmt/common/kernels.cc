#include "dmt/common/kernels.h"

#ifdef DMT_ENABLE_AVX2
#include <immintrin.h>
#endif

namespace dmt::kernels {

const char* IsaName() {
#ifdef DMT_ENABLE_AVX2
  return "avx2";
#else
  return "scalar";
#endif
}

#ifdef DMT_ENABLE_AVX2
namespace internal {

// All four elementwise kernels keep one product and one add/sub per lane
// with separate _mm256_mul_pd / _mm256_add_pd (no FMA contraction), so each
// output element sees the exact scalar-path rounding sequence.

void AxpyAvx2(double a, const double* x, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void ScaledCopyAvx2(double a, const double* x, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] = a * x[i];
}

void SgdAxpyAvx2(double lr, double err, const double* x, double* w,
                 std::size_t n) {
  const __m256d vlr = _mm256_set1_pd(lr);
  const __m256d verr = _mm256_set1_pd(err);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d grad = _mm256_mul_pd(verr, _mm256_loadu_pd(x + i));
    const __m256d vw = _mm256_loadu_pd(w + i);
    _mm256_storeu_pd(w + i, _mm256_sub_pd(vw, _mm256_mul_pd(vlr, grad)));
  }
  for (; i < n; ++i) w[i] -= lr * (err * x[i]);
}

void AddAvx2(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

// Four independent dot products of a row-major tile against one weight
// vector. Lane t of the accumulator vector is row t's single accumulator,
// updated in strict i-order with separate mul+add (no FMA) -- each lane
// therefore reproduces the scalar Dot(x + t*stride, w, n) bit-for-bit;
// the SIMD parallelism is across rows, never inside one reduction.
void DotBatch4Avx2(const double* x, std::size_t stride, const double* w,
                   std::size_t n, double* out) {
  const double* x0 = x;
  const double* x1 = x + stride;
  const double* x2 = x + 2 * stride;
  const double* x3 = x + 3 * stride;
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; ++i) {
    const __m256d rows = _mm256_set_pd(x3[i], x2[i], x1[i], x0[i]);
    const __m256d wi = _mm256_set1_pd(w[i]);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(rows, wi));
  }
  _mm256_storeu_pd(out, acc);
}

}  // namespace internal
#endif  // DMT_ENABLE_AVX2

}  // namespace dmt::kernels
