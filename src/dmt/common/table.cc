#include "dmt/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dmt {

std::string MeanStdCell(double mean, double std, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f +- %.*f", decimals, mean, decimals,
                std);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << (c == 0 ? "" : "  ") << cell
          << std::string(widths[c] - cell.size(), ' ');
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::ToCsv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace dmt
