// Lightweight invariant checking used across the library.
//
// DMT_CHECK is always on and is reserved for API-boundary validation whose
// violation indicates caller error; DMT_DCHECK compiles out in release builds
// and guards internal invariants on hot paths.
#ifndef DMT_COMMON_CHECK_H_
#define DMT_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define DMT_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "DMT_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifndef NDEBUG
#define DMT_DCHECK(cond) DMT_CHECK(cond)
#else
#define DMT_DCHECK(cond) \
  do {                   \
  } while (0)
#endif

#endif  // DMT_COMMON_CHECK_H_
