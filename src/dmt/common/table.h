// Plain-text table rendering used by the benchmark harnesses to print
// paper-style result tables (Tables I-VI).
#ifndef DMT_COMMON_TABLE_H_
#define DMT_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace dmt {

// Formats "mean +- std" with a fixed number of decimals, e.g. "0.76 +- 0.20".
std::string MeanStdCell(double mean, double std, int decimals = 2);

// Collects rows of string cells and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Renders the table with a separator under the header. Missing trailing
  // cells in a row render as empty columns.
  std::string ToString() const;

  // Renders as CSV (no alignment), for piping into plotting tools.
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dmt

#endif  // DMT_COMMON_TABLE_H_
