// Per-thread heap-allocation counters, used by the allocation-regression
// test and the bench_micro_inference binary to pin the scoring core at zero
// allocations per sample in steady state.
//
// Usage: a binary that wants counting places DMT_DEFINE_COUNTING_ALLOCATOR()
// at file scope in exactly one translation unit. That macro defines the
// counter storage and replaces the global operator new / delete with
// counting forwarders to malloc / free. Binaries that never invoke the
// macro are unaffected -- the header alone only declares the counters.
//
// The counters are thread_local: measurements on one thread are not
// polluted by allocation on another (e.g. pool workers), and no atomics are
// needed on the hot path.
#ifndef DMT_COMMON_ALLOC_COUNT_H_
#define DMT_COMMON_ALLOC_COUNT_H_

#include <cstddef>
#include <cstdlib>
#include <new>

namespace dmt::alloc_count {

// Number of operator-new (allocations) and operator-delete (deallocation)
// calls on this thread since Reset(). Only meaningful in binaries that used
// DMT_DEFINE_COUNTING_ALLOCATOR().
extern thread_local std::size_t allocations;
extern thread_local std::size_t deallocations;

inline void Reset() {
  allocations = 0;
  deallocations = 0;
}

}  // namespace dmt::alloc_count

// Defines the counter storage and the counting global allocator. Must
// appear at file scope (outside any namespace) in exactly one translation
// unit of the binary.
// The aligned operators pair std::aligned_alloc with std::free, which is
// well-defined on POSIX but trips GCC's heuristic new/delete matcher.
#define DMT_DEFINE_COUNTING_ALLOCATOR()                                     \
  _Pragma("GCC diagnostic push")                                            \
  _Pragma("GCC diagnostic ignored \"-Wmismatched-new-delete\"")             \
  namespace dmt::alloc_count {                                              \
  thread_local std::size_t allocations = 0;                                 \
  thread_local std::size_t deallocations = 0;                               \
  }                                                                         \
  void* operator new(std::size_t size) {                                    \
    ++dmt::alloc_count::allocations;                                        \
    if (void* p = std::malloc(size)) return p;                              \
    throw std::bad_alloc();                                                 \
  }                                                                         \
  void* operator new[](std::size_t size) {                                  \
    ++dmt::alloc_count::allocations;                                        \
    if (void* p = std::malloc(size)) return p;                              \
    throw std::bad_alloc();                                                 \
  }                                                                         \
  void* operator new(std::size_t size, std::align_val_t align) {            \
    ++dmt::alloc_count::allocations;                                        \
    if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),       \
                                     size)) {                               \
      return p;                                                             \
    }                                                                       \
    throw std::bad_alloc();                                                 \
  }                                                                         \
  void operator delete(void* p) noexcept {                                  \
    ++dmt::alloc_count::deallocations;                                      \
    std::free(p);                                                           \
  }                                                                         \
  void operator delete[](void* p) noexcept {                                \
    ++dmt::alloc_count::deallocations;                                      \
    std::free(p);                                                           \
  }                                                                         \
  void operator delete(void* p, std::size_t) noexcept {                     \
    ++dmt::alloc_count::deallocations;                                      \
    std::free(p);                                                           \
  }                                                                         \
  void operator delete[](void* p, std::size_t) noexcept {                   \
    ++dmt::alloc_count::deallocations;                                      \
    std::free(p);                                                           \
  }                                                                         \
  void operator delete(void* p, std::align_val_t) noexcept {                \
    ++dmt::alloc_count::deallocations;                                      \
    std::free(p);                                                           \
  }                                                                         \
  _Pragma("GCC diagnostic pop")                                             \
  static_assert(true, "")  // swallow the trailing semicolon

#endif  // DMT_COMMON_ALLOC_COUNT_H_
