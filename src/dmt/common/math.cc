#include "dmt/common/math.h"

#include <cmath>

#include "dmt/common/check.h"
#include "dmt/common/kernels.h"

namespace dmt {

double LogSumExp(std::span<const double> z) {
  DMT_DCHECK(!z.empty());
  double max = z[0];
  for (double v : z) max = std::max(max, v);
  double sum = 0.0;
  for (double v : z) sum += std::exp(v - max);
  return max + std::log(sum);
}

void SoftmaxInPlace(std::span<double> z) {
  const double lse = LogSumExp(z);
  for (double& v : z) v = std::exp(v - lse);
}

double SquaredNorm(std::span<const double> v) {
  return kernels::SquaredNorm(v);
}

void AddInPlace(std::span<double> v, std::span<const double> w) {
  DMT_DCHECK(v.size() == w.size());
  kernels::Add(v, w);
}

double Dot(std::span<const double> a, std::span<const double> b) {
  DMT_DCHECK(a.size() == b.size());
  return kernels::Dot(a, b);
}

}  // namespace dmt
