#include "dmt/common/thread_pool.h"

#include <algorithm>

namespace dmt {

std::size_t ThreadPool::DefaultThreads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  queues_.resize(num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this]() { return in_flight_ == 0; });
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[next_queue_].push_back(std::move(fn));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this]() { return in_flight_ == 0; });
}

std::function<void()> ThreadPool::TakeTask(std::size_t worker_index) {
  std::deque<std::function<void()>>& own = queues_[worker_index];
  if (!own.empty()) {
    std::function<void()> task = std::move(own.front());
    own.pop_front();
    return task;
  }
  // Steal the oldest task of the first non-empty sibling.
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    std::deque<std::function<void()>>& victim =
        queues_[(worker_index + offset) % queues_.size()];
    if (!victim.empty()) {
      std::function<void()> task = std::move(victim.back());
      victim.pop_back();
      return task;
    }
  }
  return {};
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Queue 0's front first, then steal from the others -- same policy a
    // worker with index 0 would apply.
    task = TakeTask(0);
    if (!task) return false;
  }
  task();  // packaged_task: exceptions land in the future, never escape
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
    if (in_flight_ == 0) all_done_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this, worker_index]() {
        if (shutting_down_) return true;
        for (const auto& queue : queues_) {
          if (!queue.empty()) return true;
        }
        (void)worker_index;
        return false;
      });
      task = TakeTask(worker_index);
      if (!task) {
        if (shutting_down_) return;
        continue;
      }
    }
    task();  // packaged_task: exceptions land in the future, never escape
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dmt
