// Streaming statistics accumulators (Welford mean/variance and a windowed
// aggregator used for the paper's Figure 3 sliding-window curves).
#ifndef DMT_COMMON_STATS_H_
#define DMT_COMMON_STATS_H_

#include <cmath>
#include <cstddef>
#include <deque>

namespace dmt {

// Numerically stable running mean / variance (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Population variance; the paper reports the std over per-batch measures.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void Reset() {
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
  }

  // Raw Welford accumulator, exposed (with Restore) so snapshots can
  // round-trip the exact state rather than a lossy mean/std pair.
  double m2() const { return m2_; }
  void Restore(std::size_t n, double mean, double m2) {
    n_ = n;
    mean_ = mean;
    m2_ = m2;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Fixed-size sliding window mean/std (Figure 3 uses window size 20).
class SlidingWindowStats {
 public:
  explicit SlidingWindowStats(std::size_t window) : window_(window) {}

  void Add(double x) {
    values_.push_back(x);
    sum_ += x;
    sum_sq_ += x * x;
    if (values_.size() > window_) {
      const double old = values_.front();
      values_.pop_front();
      sum_ -= old;
      sum_sq_ -= old * old;
    }
  }

  std::size_t count() const { return values_.size(); }
  double mean() const {
    return values_.empty() ? 0.0 : sum_ / static_cast<double>(values_.size());
  }
  double stddev() const {
    if (values_.size() < 2) return 0.0;
    const double n = static_cast<double>(values_.size());
    const double var = sum_sq_ / n - (sum_ / n) * (sum_ / n);
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }

 private:
  std::size_t window_;
  std::deque<double> values_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace dmt

#endif  // DMT_COMMON_STATS_H_
