// Numerically stable scalar and vector math shared by the learners.
#ifndef DMT_COMMON_MATH_H_
#define DMT_COMMON_MATH_H_

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

namespace dmt {

// Probabilities are clamped away from {0,1} before taking logs so that the
// negative log-likelihood stays finite under confident mispredictions.
inline constexpr double kProbEpsilon = 1e-12;

inline double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

// Index of the first maximum of `v` (std::max_element tie-breaking); the
// canonical probability-to-label reduction of the scoring core.
inline int ArgMax(std::span<const double> v) {
  return static_cast<int>(std::max_element(v.begin(), v.end()) - v.begin());
}

inline double ClampProb(double p) {
  return std::clamp(p, kProbEpsilon, 1.0 - kProbEpsilon);
}

inline double SafeLog(double p) { return std::log(ClampProb(p)); }

// log(sum_i exp(z_i)) without overflow.
double LogSumExp(std::span<const double> z);

// In-place softmax of `z`; stable for large magnitudes.
void SoftmaxInPlace(std::span<double> z);

// Squared L2 norm.
double SquaredNorm(std::span<const double> v);

// v += w (sizes must match).
void AddInPlace(std::span<double> v, std::span<const double> w);

// Dot product.
double Dot(std::span<const double> a, std::span<const double> b);

}  // namespace dmt

#endif  // DMT_COMMON_MATH_H_
