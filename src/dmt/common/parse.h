// Checked numeric parsing for command-line flags and wire protocols.
//
// The bench binaries historically parsed flag values with bare
// strtoull/strtod and a null endptr, which silently turns "--samples abc"
// into 0 and "--cell-timeout nan" into a NaN deadline. These helpers are
// the strict replacement: the WHOLE token must be a number (no leading or
// trailing garbage, no empty strings), and doubles can additionally be
// required to be finite. Callers translate std::nullopt into their own
// error convention (the bench harness and dmt_serve exit 2 with usage).
#ifndef DMT_COMMON_PARSE_H_
#define DMT_COMMON_PARSE_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace dmt {

// Parses a non-negative decimal integer. Rejects empty input, leading
// whitespace, sign characters, trailing garbage and out-of-range values.
std::optional<std::uint64_t> ParseU64(std::string_view text);

// Parses a double with strtod syntax. Rejects empty input, leading
// whitespace and trailing garbage; with `require_finite` (the default,
// right for flag values) NaN and +/-Inf are rejected too. Data-plane
// callers (the dmt_serve CSV row parser) pass false: non-finite values are
// legitimate hostile *input* there, handled by the sanitization policy
// rather than refused at parse time.
std::optional<double> ParseDouble(std::string_view text,
                                  bool require_finite = true);

}  // namespace dmt

#endif  // DMT_COMMON_PARSE_H_
