#include "dmt/drift/page_hinkley.h"

#include <algorithm>

#include "dmt/obs/telemetry.h"
#include "dmt/serial/archive.h"

namespace dmt::drift {

PageHinkley::PageHinkley(const PageHinkleyConfig& config) : config_(config) {}

void PageHinkley::Reset() {
  n_ = 0;
  mean_ = 0.0;
  sum_ = 0.0;
}

bool PageHinkley::Update(double value) {
  ++n_;
  mean_ += (value - mean_) / static_cast<double>(n_);
  sum_ = std::max(0.0, config_.alpha * sum_ + (value - mean_ - config_.delta));
  if (n_ < config_.min_instances) return false;
  if (sum_ > config_.threshold) {
    ++num_detections_;
    DMT_TELEMETRY_COUNT(reset_counter_);
    Reset();
    return true;
  }
  return false;
}

void PageHinkley::Save(serial::Writer& writer) const {
  writer.Size(config_.min_instances);
  writer.F64(config_.delta);
  writer.F64(config_.threshold);
  writer.F64(config_.alpha);
  writer.Size(n_);
  writer.F64(mean_);
  writer.F64(sum_);
  writer.Size(num_detections_);
}

PageHinkley PageHinkley::Load(serial::Reader& reader) {
  PageHinkleyConfig config;
  config.min_instances = reader.Size(std::size_t{1} << 62);
  config.delta = serial::CheckedFinite(reader.F64(), "Page-Hinkley delta");
  config.threshold =
      serial::CheckedFinite(reader.F64(), "Page-Hinkley threshold");
  config.alpha = serial::CheckedFinite(reader.F64(), "Page-Hinkley alpha");
  PageHinkley test(config);
  test.n_ = reader.Size(std::size_t{1} << 62);
  test.mean_ = reader.F64();
  test.sum_ = reader.F64();
  test.num_detections_ = reader.Size(std::size_t{1} << 62);
  return test;
}

}  // namespace dmt::drift
