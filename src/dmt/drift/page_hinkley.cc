#include "dmt/drift/page_hinkley.h"

#include <algorithm>

#include "dmt/obs/telemetry.h"

namespace dmt::drift {

PageHinkley::PageHinkley(const PageHinkleyConfig& config) : config_(config) {}

void PageHinkley::Reset() {
  n_ = 0;
  mean_ = 0.0;
  sum_ = 0.0;
}

bool PageHinkley::Update(double value) {
  ++n_;
  mean_ += (value - mean_) / static_cast<double>(n_);
  sum_ = std::max(0.0, config_.alpha * sum_ + (value - mean_ - config_.delta));
  if (n_ < config_.min_instances) return false;
  if (sum_ > config_.threshold) {
    ++num_detections_;
    DMT_TELEMETRY_COUNT(reset_counter_);
    Reset();
    return true;
  }
  return false;
}

}  // namespace dmt::drift
