#include "dmt/drift/adwin.h"

#include <cmath>

#include "dmt/common/check.h"
#include "dmt/obs/telemetry.h"
#include "dmt/serial/archive.h"

namespace dmt::drift {

Adwin::Adwin(double delta) : delta_(delta) {
  DMT_CHECK(delta > 0.0 && delta < 1.0);
  rows_.emplace_back();
}

bool Adwin::Update(double value) {
  InsertBucket(value);
  CompressBuckets();
  const bool shrunk = DetectAndShrink();
  if (shrunk) {
    ++num_detections_;
    DMT_TELEMETRY_COUNT(shrink_counter_);
  }
  DMT_TELEMETRY_SET(width_gauge_, width_);
  return shrunk;
}

void Adwin::InsertBucket(double value) {
  // New size-1 bucket is the newest element of row 0.
  rows_[0].totals.push_back(value);
  rows_[0].variances.push_back(0.0);
  if (width_ > 0.0) {
    const double diff = value - total_ / width_;
    variance_sum_ += width_ * diff * diff / (width_ + 1.0);
  }
  width_ += 1.0;
  total_ += value;
}

void Adwin::CompressBuckets() {
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    Row& row = rows_[r];
    if (row.totals.size() <= static_cast<std::size_t>(kMaxBuckets)) break;
    // Merge the two oldest buckets of this row into one bucket of the next.
    if (r + 1 == rows_.size()) rows_.emplace_back();
    const double n = std::pow(2.0, static_cast<double>(r));
    const double t1 = row.totals[0];
    const double t2 = row.totals[1];
    const double u1 = t1 / n;
    const double u2 = t2 / n;
    const double merged_var = row.variances[0] + row.variances[1] +
                              n * n * (u1 - u2) * (u1 - u2) / (2.0 * n);
    rows_[r + 1].totals.push_back(t1 + t2);
    rows_[r + 1].variances.push_back(merged_var);
    row.totals.erase(row.totals.begin(), row.totals.begin() + 2);
    row.variances.erase(row.variances.begin(), row.variances.begin() + 2);
  }
}

void Adwin::DeleteOldestBucket() {
  DMT_TELEMETRY_COUNT(drop_counter_);
  // The oldest bucket lives at the front of the deepest non-empty row.
  std::size_t r = rows_.size();
  while (r > 0 && rows_[r - 1].totals.empty()) --r;
  DMT_DCHECK(r > 0);
  Row& row = rows_[r - 1];
  const double n1 = std::pow(2.0, static_cast<double>(r - 1));
  const double t1 = row.totals.front();
  const double v1 = row.variances.front();
  row.totals.erase(row.totals.begin());
  row.variances.erase(row.variances.begin());
  width_ -= n1;
  total_ -= t1;
  if (width_ > 0.0) {
    const double u1 = t1 / n1;
    const double diff = u1 - total_ / width_;
    variance_sum_ -= v1 + n1 * width_ * diff * diff / (n1 + width_);
    if (variance_sum_ < 0.0) variance_sum_ = 0.0;
  } else {
    variance_sum_ = 0.0;
  }
  while (rows_.size() > 1 && rows_.back().totals.empty()) rows_.pop_back();
}

bool Adwin::DetectAndShrink() {
  ++ticks_;
  if (ticks_ % kMinClock != 0 || width_ <= kMinWindow) return false;

  bool any_cut = false;
  bool reduced = true;
  while (reduced) {
    reduced = false;
    bool tail_too_small = false;
    double n0 = 0.0;
    double u0 = 0.0;
    // Walk cut points from oldest to newest element.
    for (std::size_t r = rows_.size();
         r-- > 0 && !reduced && !tail_too_small;) {
      const Row& row = rows_[r];
      const double bucket_size = std::pow(2.0, static_cast<double>(r));
      for (std::size_t b = 0; b < row.totals.size(); ++b) {
        n0 += bucket_size;
        u0 += row.totals[b];
        const double n1 = width_ - n0;
        if (n1 < kMinSubWindow) {
          // Cut points only move toward the newest element from here, so
          // every remaining candidate fails this minimum too: end the
          // whole scan, not just the current row.
          tail_too_small = true;
          break;
        }
        if (n0 < kMinSubWindow) continue;
        const double u1 = total_ - u0;
        const double mean_diff = std::abs(u0 / n0 - u1 / n1);
        const double dd = std::log(2.0 * std::log(width_) / delta_);
        const double v = variance();
        const double m = 1.0 / (n0 - kMinSubWindow + 1.0) +
                         1.0 / (n1 - kMinSubWindow + 1.0);
        const double eps =
            std::sqrt(2.0 * m * v * dd) + 2.0 / 3.0 * dd * m;
        if (mean_diff > eps) {
          any_cut = true;
          if (width_ > kMinWindow) {
            DeleteOldestBucket();
            reduced = true;  // restart the scan on the shrunk window
          }
          break;
        }
      }
    }
  }
  return any_cut;
}

void Adwin::Save(serial::Writer& writer) const {
  writer.F64(delta_);
  writer.Size(rows_.size());
  for (const Row& row : rows_) {
    writer.VecF64(row.totals);
    writer.VecF64(row.variances);
  }
  writer.F64(total_);
  writer.F64(variance_sum_);
  writer.F64(width_);
  writer.I64(ticks_);
  writer.Size(num_detections_);
}

Adwin Adwin::Load(serial::Reader& reader) {
  const double delta = reader.F64();
  // The constructor DMT_CHECKs this; a hostile archive must throw instead.
  serial::Check(std::isfinite(delta) && delta > 0.0 && delta < 1.0,
                "ADWIN delta out of range");
  Adwin adwin(delta);
  // The exponential histogram has O(log window) rows; 64 rows would mean a
  // window of ~2^64 elements.
  const std::size_t num_rows = reader.Size(256);
  serial::Check(num_rows >= 1, "ADWIN histogram has no rows");
  adwin.rows_.clear();
  for (std::size_t r = 0; r < num_rows; ++r) {
    Row row;
    row.totals = reader.VecF64();
    row.variances = reader.VecF64();
    serial::Check(row.totals.size() == row.variances.size(),
                  "ADWIN bucket arrays disagree in length");
    adwin.rows_.push_back(std::move(row));
  }
  adwin.total_ = reader.F64();
  adwin.variance_sum_ = reader.F64();
  adwin.width_ = reader.F64();
  adwin.ticks_ = reader.I64();
  adwin.num_detections_ = reader.Size(std::size_t{1} << 62);
  return adwin;
}

}  // namespace dmt::drift
