// DDM (Drift Detection Method), Gama et al. 2004.
//
// Monitors a Bernoulli error stream; signals warning when the error rate
// rises two standard deviations above its running minimum and drift at three.
// Included as an additional detector for experimentation (the paper's
// baselines use ADWIN and Page-Hinkley).
#ifndef DMT_DRIFT_DDM_H_
#define DMT_DRIFT_DDM_H_

#include <cstddef>

namespace dmt::drift {

class Ddm {
 public:
  enum class State { kStable, kWarning, kDrift };

  explicit Ddm(std::size_t min_instances = 30)
      : min_instances_(min_instances) {
    Reset();
  }

  // Feeds one error indicator (1 = misclassified). Returns the new state;
  // internal statistics reset after a drift signal.
  State Update(bool error);

  void Reset();
  std::size_t num_detections() const { return num_detections_; }

 private:
  std::size_t min_instances_;
  std::size_t n_ = 0;
  double p_ = 1.0;
  double min_p_plus_s_ = 0.0;
  double min_p_ = 0.0;
  double min_s_ = 0.0;
  std::size_t num_detections_ = 0;
};

}  // namespace dmt::drift

#endif  // DMT_DRIFT_DDM_H_
