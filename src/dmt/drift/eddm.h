// EDDM (Early Drift Detection Method), Baena-Garcia et al. 2006.
//
// Monitors the DISTANCE (number of observations) between consecutive
// classification errors instead of the error rate itself, which makes it
// more sensitive to slow, gradual drift than DDM. Warning at 95% of the
// peak mean+2std distance, drift at 90%.
#ifndef DMT_DRIFT_EDDM_H_
#define DMT_DRIFT_EDDM_H_

#include <cstddef>

namespace dmt::drift {

class Eddm {
 public:
  enum class State { kStable, kWarning, kDrift };

  Eddm() { Reset(); }

  // Feeds one error indicator (1 = misclassified); returns the new state.
  State Update(bool error);

  void Reset();
  std::size_t num_detections() const { return num_detections_; }

 private:
  static constexpr double kWarningLevel = 0.95;
  static constexpr double kDriftLevel = 0.90;
  static constexpr std::size_t kMinErrors = 30;

  std::size_t since_last_error_ = 0;
  std::size_t num_errors_ = 0;
  double mean_distance_ = 0.0;
  double m2_ = 0.0;
  double max_score_ = 0.0;
  std::size_t num_detections_ = 0;
};

}  // namespace dmt::drift

#endif  // DMT_DRIFT_EDDM_H_
