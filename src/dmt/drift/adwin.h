// ADWIN (ADaptive WINdowing) change detector, Bifet & Gavalda 2007.
//
// Maintains a variable-length window over a real-valued input stream using
// an exponential histogram of buckets, and shrinks the window whenever two
// sufficiently large sub-windows exhibit distinct enough means. This is the
// detector inside the Hoeffding Adaptive Tree (HT-Ada), Leveraging Bagging
// and the Adaptive Random Forest baselines.
#ifndef DMT_DRIFT_ADWIN_H_
#define DMT_DRIFT_ADWIN_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace dmt::serial {
class Writer;
class Reader;
}  // namespace dmt::serial

namespace dmt::drift {

class Adwin {
 public:
  // `delta` is the confidence parameter of the cut test (MOA default 0.002).
  explicit Adwin(double delta = 0.002);

  // Feeds one value; returns true iff the window was shrunk (drift).
  bool Update(double value);

  double mean() const { return width_ > 0 ? total_ / width_ : 0.0; }
  double variance() const { return width_ > 0 ? variance_sum_ / width_ : 0.0; }
  std::size_t width() const { return static_cast<std::size_t>(width_); }
  std::size_t num_detections() const { return num_detections_; }

  // Optional telemetry destinations (owned by an obs::TelemetryRegistry that
  // must outlive this detector; any pointer may be null). `shrinks` counts
  // windows shrunk, `drops` counts buckets dropped, `width` tracks the
  // window width after each Update. Raw pointers keep the detector free of
  // any dependency on the registry type.
  void BindTelemetry(std::uint64_t* shrinks, std::uint64_t* drops,
                     double* width) {
    shrink_counter_ = shrinks;
    drop_counter_ = drops;
    width_gauge_ = width;
  }

  // --- Persistence (binary archive; see serial/archive.h) ---
  // The full exponential histogram round-trips; telemetry bindings do not
  // (rebind via BindTelemetry after restoring).
  void Save(serial::Writer& writer) const;
  static Adwin Load(serial::Reader& reader);

 private:
  // One row of the exponential histogram; buckets in row r aggregate 2^r
  // elements each. A row holds at most kMaxBuckets+1 buckets before the two
  // oldest are merged into the next row.
  struct Row {
    std::vector<double> totals;
    std::vector<double> variances;
  };

  static constexpr int kMaxBuckets = 5;
  static constexpr int kMinClock = 32;        // cut checks every 32 inserts
  static constexpr int kMinWindow = 10;       // no checks below this width
  static constexpr int kMinSubWindow = 5;     // min size of each sub-window

  void InsertBucket(double value);
  void CompressBuckets();
  void DeleteOldestBucket();
  bool DetectAndShrink();

  double delta_;
  std::deque<Row> rows_;  // rows_[0] holds size-1 buckets (newest elements)
  double total_ = 0.0;
  double variance_sum_ = 0.0;
  double width_ = 0.0;
  std::int64_t ticks_ = 0;
  std::size_t num_detections_ = 0;
  std::uint64_t* shrink_counter_ = nullptr;
  std::uint64_t* drop_counter_ = nullptr;
  double* width_gauge_ = nullptr;
};

}  // namespace dmt::drift

#endif  // DMT_DRIFT_ADWIN_H_
