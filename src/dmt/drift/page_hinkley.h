// Page-Hinkley test for detecting increases in the mean of a stream.
//
// FIMT-DD (Ikonomovska et al., 2011) runs this test on per-node absolute
// errors and prunes the subtree when it raises an alert (the paper's "second
// drift adjustment strategy" which we reproduce, Sec. VI-C).
#ifndef DMT_DRIFT_PAGE_HINKLEY_H_
#define DMT_DRIFT_PAGE_HINKLEY_H_

#include <cstddef>
#include <cstdint>

namespace dmt::serial {
class Writer;
class Reader;
}  // namespace dmt::serial

namespace dmt::drift {

struct PageHinkleyConfig {
  // Minimum observations before alerts are possible.
  std::size_t min_instances = 30;
  // Magnitude of tolerated changes.
  double delta = 0.005;
  // Alert threshold lambda.
  double threshold = 50.0;
  // Forgetting factor applied to the cumulative statistic.
  double alpha = 0.9999;
};

class PageHinkley {
 public:
  explicit PageHinkley(const PageHinkleyConfig& config = {});

  // Feeds one value; returns true iff the test alerts. The internal state
  // resets after an alert.
  bool Update(double value);

  void Reset();

  std::size_t num_detections() const { return num_detections_; }
  double cumulative_sum() const { return sum_; }

  // Optional telemetry destination counting alert-triggered resets (owned
  // by an obs::TelemetryRegistry that must outlive this detector; may be
  // null). Raw pointer keeps the detector decoupled from the registry type.
  void BindTelemetry(std::uint64_t* resets) { reset_counter_ = resets; }

  // --- Persistence (binary archive; see serial/archive.h) ---
  // Config + cumulative statistic; telemetry bindings do not round-trip.
  void Save(serial::Writer& writer) const;
  static PageHinkley Load(serial::Reader& reader);

 private:
  PageHinkleyConfig config_;
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double sum_ = 0.0;
  std::size_t num_detections_ = 0;
  std::uint64_t* reset_counter_ = nullptr;
};

}  // namespace dmt::drift

#endif  // DMT_DRIFT_PAGE_HINKLEY_H_
