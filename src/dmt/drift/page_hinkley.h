// Page-Hinkley test for detecting increases in the mean of a stream.
//
// FIMT-DD (Ikonomovska et al., 2011) runs this test on per-node absolute
// errors and prunes the subtree when it raises an alert (the paper's "second
// drift adjustment strategy" which we reproduce, Sec. VI-C).
#ifndef DMT_DRIFT_PAGE_HINKLEY_H_
#define DMT_DRIFT_PAGE_HINKLEY_H_

#include <cstddef>

namespace dmt::drift {

struct PageHinkleyConfig {
  // Minimum observations before alerts are possible.
  std::size_t min_instances = 30;
  // Magnitude of tolerated changes.
  double delta = 0.005;
  // Alert threshold lambda.
  double threshold = 50.0;
  // Forgetting factor applied to the cumulative statistic.
  double alpha = 0.9999;
};

class PageHinkley {
 public:
  explicit PageHinkley(const PageHinkleyConfig& config = {});

  // Feeds one value; returns true iff the test alerts. The internal state
  // resets after an alert.
  bool Update(double value);

  void Reset();

  std::size_t num_detections() const { return num_detections_; }
  double cumulative_sum() const { return sum_; }

 private:
  PageHinkleyConfig config_;
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double sum_ = 0.0;
  std::size_t num_detections_ = 0;
};

}  // namespace dmt::drift

#endif  // DMT_DRIFT_PAGE_HINKLEY_H_
