// KSWIN (Kolmogorov-Smirnov WINdowing), Raab, Heusinger & Schleif 2020.
//
// Keeps a sliding window of recent values and tests, via the two-sample
// Kolmogorov-Smirnov statistic, whether a uniformly subsampled "history"
// portion and the most recent portion come from the same distribution.
// Works on arbitrary real inputs (error indicators, losses, raw features).
#ifndef DMT_DRIFT_KSWIN_H_
#define DMT_DRIFT_KSWIN_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "dmt/common/random.h"

namespace dmt::drift {

struct KswinConfig {
  double alpha = 0.005;           // significance of the KS test
  std::size_t window_size = 100;  // full sliding window
  std::size_t stat_size = 30;     // size of the recent / sampled portions
  std::uint64_t seed = 42;
};

class Kswin {
 public:
  explicit Kswin(const KswinConfig& config = {});

  // Feeds one value; returns true iff the KS test rejects equality of the
  // sampled history and the recent portion (drift). The window is reset to
  // the recent portion on detection.
  bool Update(double value);

  std::size_t num_detections() const { return num_detections_; }
  std::size_t window_fill() const { return window_.size(); }

 private:
  double KsStatistic(std::vector<double> a, std::vector<double> b) const;

  KswinConfig config_;
  Rng rng_;
  std::deque<double> window_;
  std::size_t num_detections_ = 0;
};

}  // namespace dmt::drift

#endif  // DMT_DRIFT_KSWIN_H_
