#include "dmt/drift/eddm.h"

#include <cmath>

namespace dmt::drift {

void Eddm::Reset() {
  since_last_error_ = 0;
  num_errors_ = 0;
  mean_distance_ = 0.0;
  m2_ = 0.0;
  max_score_ = 0.0;
}

Eddm::State Eddm::Update(bool error) {
  ++since_last_error_;
  if (!error) return State::kStable;

  const double distance = static_cast<double>(since_last_error_);
  since_last_error_ = 0;
  ++num_errors_;
  const double delta = distance - mean_distance_;
  mean_distance_ += delta / static_cast<double>(num_errors_);
  m2_ += delta * (distance - mean_distance_);
  if (num_errors_ < 2) return State::kStable;
  const double std =
      std::sqrt(m2_ / static_cast<double>(num_errors_));
  const double score = mean_distance_ + 2.0 * std;
  if (score > max_score_) max_score_ = score;
  if (num_errors_ < kMinErrors || max_score_ <= 0.0) return State::kStable;

  const double ratio = score / max_score_;
  if (ratio < kDriftLevel) {
    ++num_detections_;
    Reset();
    return State::kDrift;
  }
  if (ratio < kWarningLevel) return State::kWarning;
  return State::kStable;
}

}  // namespace dmt::drift
