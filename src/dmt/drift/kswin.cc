#include "dmt/drift/kswin.h"

#include <algorithm>
#include <cmath>

#include "dmt/common/check.h"

namespace dmt::drift {

Kswin::Kswin(const KswinConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.window_size >= 2 * config.stat_size);
  DMT_CHECK(config.alpha > 0.0 && config.alpha < 1.0);
}

double Kswin::KsStatistic(std::vector<double> a, std::vector<double> b) const {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] <= b[ib]) {
      ++ia;
    } else {
      ++ib;
    }
    const double fa = static_cast<double>(ia) / a.size();
    const double fb = static_cast<double>(ib) / b.size();
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

bool Kswin::Update(double value) {
  window_.push_back(value);
  if (window_.size() > config_.window_size) window_.pop_front();
  if (window_.size() < config_.window_size) return false;

  // Recent portion: last stat_size values. History sample: stat_size values
  // drawn uniformly from the remainder.
  const std::size_t n = config_.stat_size;
  std::vector<double> recent(window_.end() - n, window_.end());
  std::vector<double> history;
  const std::size_t history_size = window_.size() - n;
  history.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    history.push_back(
        window_[rng_.UniformInt(0, static_cast<int>(history_size) - 1)]);
  }

  const double d = KsStatistic(std::move(history), std::move(recent));
  // KS critical value for equal sample sizes n: c(alpha) * sqrt(2/n).
  const double critical =
      std::sqrt(-0.5 * std::log(config_.alpha / 2.0)) * std::sqrt(2.0 / n);
  if (d > critical) {
    ++num_detections_;
    // Restart from the recent portion.
    std::deque<double> rest(window_.end() - n, window_.end());
    window_ = std::move(rest);
    return true;
  }
  return false;
}

}  // namespace dmt::drift
