#include "dmt/drift/ddm.h"

#include <cmath>
#include <limits>

namespace dmt::drift {

void Ddm::Reset() {
  n_ = 0;
  p_ = 1.0;
  min_p_plus_s_ = std::numeric_limits<double>::max();
  min_p_ = std::numeric_limits<double>::max();
  min_s_ = std::numeric_limits<double>::max();
}

Ddm::State Ddm::Update(bool error) {
  ++n_;
  p_ += (static_cast<double>(error) - p_) / static_cast<double>(n_);
  const double s = std::sqrt(p_ * (1.0 - p_) / static_cast<double>(n_));
  if (n_ < min_instances_) return State::kStable;
  if (p_ + s <= min_p_plus_s_) {
    min_p_plus_s_ = p_ + s;
    min_p_ = p_;
    min_s_ = s;
  }
  if (p_ + s > min_p_ + 3.0 * min_s_) {
    ++num_detections_;
    Reset();
    return State::kDrift;
  }
  if (p_ + s > min_p_ + 2.0 * min_s_) return State::kWarning;
  return State::kStable;
}

}  // namespace dmt::drift
