// Umbrella header: the Dynamic Model Tree library public API.
//
// The paper's contribution lives in dmt/core/; every baseline and substrate
// it is evaluated against (Hoeffding-tree family, FIMT-DD, ensembles, drift
// detectors, stream generators, prequential evaluation) is included here as
// well so that examples and downstream users need a single include.
#ifndef DMT_DMT_H_
#define DMT_DMT_H_

#include "dmt/bayes/gaussian_nb.h"
#include "dmt/common/classifier.h"
#include "dmt/common/random.h"
#include "dmt/common/stats.h"
#include "dmt/common/table.h"
#include "dmt/common/types.h"
#include "dmt/core/dmt_regressor.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/drift/adwin.h"
#include "dmt/drift/ddm.h"
#include "dmt/drift/eddm.h"
#include "dmt/drift/kswin.h"
#include "dmt/drift/page_hinkley.h"
#include "dmt/ensemble/adaptive_random_forest.h"
#include "dmt/ensemble/leveraging_bagging.h"
#include "dmt/ensemble/online_bagging.h"
#include "dmt/ensemble/online_boosting.h"
#include "dmt/eval/metrics.h"
#include "dmt/eval/prequential.h"
#include "dmt/eval/regression_prequential.h"
#include "dmt/linear/glm.h"
#include "dmt/linear/glm_classifier.h"
#include "dmt/linear/linear_regressor.h"
#include "dmt/streams/agrawal.h"
#include "dmt/streams/classic_generators.h"
#include "dmt/streams/concept_stream.h"
#include "dmt/streams/csv_stream.h"
#include "dmt/streams/datasets.h"
#include "dmt/streams/hyperplane.h"
#include "dmt/streams/regression_streams.h"
#include "dmt/streams/scaler.h"
#include "dmt/streams/sea.h"
#include "dmt/streams/stream.h"
#include "dmt/trees/efdt.h"
#include "dmt/trees/fimtdd.h"
#include "dmt/trees/fimtdd_regressor.h"
#include "dmt/trees/hoeffding_adaptive.h"
#include "dmt/trees/sgt.h"
#include "dmt/trees/vfdt.h"

#endif  // DMT_DMT_H_
