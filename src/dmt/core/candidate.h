// Split-candidate statistics of a Dynamic Model Tree node.
//
// A candidate is a feature/value pair representing the binary split
// "x[feature] <= value". For each stored candidate the node accumulates the
// loss, gradient and count of the observations that would have been routed
// to the LEFT child (Algorithm 1, lines 8-10); the right child's statistics
// are the difference between the node's and the left child's, so they are
// never stored (Algorithm 1, note).
//
// The candidate's loss under its own (never materialized) warm-started
// parameters is approximated by one gradient step from the parent model,
// Eqs. (6)-(7):  L_hat = L - (lambda/n) * ||grad||^2.
#ifndef DMT_CORE_CANDIDATE_H_
#define DMT_CORE_CANDIDATE_H_

#include <cstddef>
#include <vector>

namespace dmt::core {

struct CandidateStats {
  int feature = -1;
  double value = 0.0;
  // Accumulated left-child statistics, evaluated at the parent's parameters
  // of each respective time step.
  double loss = 0.0;
  std::vector<double> grad;
  double count = 0.0;

  CandidateStats() = default;
  CandidateStats(int feature_in, double value_in, std::size_t num_params)
      : feature(feature_in), value(value_in), grad(num_params, 0.0) {}
};

// Gradient-approximated loss of a split candidate (Eq. 7). `lambda` is the
// warm-start step size of Eq. (6).
double ApproxCandidateLoss(double loss, const std::vector<double>& grad,
                           double count, double lambda);

// Same, for the complementary (right) child given the parent statistics.
double ApproxComplementLoss(double parent_loss,
                            const std::vector<double>& parent_grad,
                            double parent_count, const CandidateStats& left,
                            double lambda);

}  // namespace dmt::core

#endif  // DMT_CORE_CANDIDATE_H_
