// Split-candidate statistics of a Dynamic Model Tree node.
//
// A candidate is a feature/value pair representing the binary split
// "x[feature] <= value". For each stored candidate the node accumulates the
// loss, gradient and count of the observations that would have been routed
// to the LEFT child (Algorithm 1, lines 8-10); the right child's statistics
// are the difference between the node's and the left child's, so they are
// never stored (Algorithm 1, note).
//
// The candidate's loss under its own (never materialized) warm-started
// parameters is approximated by one gradient step from the parent model,
// Eqs. (6)-(7):  L_hat = L - (lambda/n) * ||grad||^2.
//
// Storage layout. Candidates live in a per-node CandidateStore laid out
// structure-of-arrays: one contiguous row-major gradient matrix
// (max_candidates x num_params) plus parallel feature/value/loss/count
// arrays. The per-batch update then touches each array sequentially --
// the gradient scatter of Algorithm 1 line 9 is a kernels::Add into a
// matrix row -- instead of chasing N independent heap vectors, and the
// store is grow-only (Clear keeps capacity), so steady-state training
// performs no allocations. The legacy AoS CandidateStats struct is kept
// as the reference implementation for tests and the approximation bench.
#ifndef DMT_CORE_CANDIDATE_H_
#define DMT_CORE_CANDIDATE_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

namespace dmt::serial {
class Writer;
class Reader;
}  // namespace dmt::serial

namespace dmt::core {

struct CandidateStats {
  int feature = -1;
  double value = 0.0;
  // Accumulated left-child statistics, evaluated at the parent's parameters
  // of each respective time step.
  double loss = 0.0;
  std::vector<double> grad;
  double count = 0.0;

  CandidateStats() = default;
  CandidateStats(int feature_in, double value_in, std::size_t num_params)
      : feature(feature_in), value(value_in), grad(num_params, 0.0) {}
};

// SoA candidate store of one node. Rows are stable under Append/Reset;
// Clear only rewinds the logical size, so capacity reached once is never
// re-allocated (the zero-allocation steady-state contract of training).
class CandidateStore {
 public:
  CandidateStore() = default;
  explicit CandidateStore(std::size_t num_params) : num_params_(num_params) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t num_params() const { return num_params_; }

  int feature(std::size_t i) const { return feature_[i]; }
  double value(std::size_t i) const { return value_[i]; }
  double loss(std::size_t i) const { return loss_[i]; }
  double count(std::size_t i) const { return count_[i]; }
  double& loss(std::size_t i) { return loss_[i]; }
  double& count(std::size_t i) { return count_[i]; }
  std::span<double> grad(std::size_t i) {
    return {grad_.data() + i * num_params_, num_params_};
  }
  std::span<const double> grad(std::size_t i) const {
    return {grad_.data() + i * num_params_, num_params_};
  }

  // Appends a zeroed candidate keyed (feature, value); returns its row.
  std::size_t Append(int feature, double value) {
    const std::size_t i = size_++;
    if (feature_.size() < size_) {
      feature_.resize(size_);
      value_.resize(size_);
      loss_.resize(size_);
      count_.resize(size_);
      grad_.resize(size_ * num_params_);
    }
    Reset(i, feature, value);
    return i;
  }

  // Re-keys row `i` and zeroes its statistics (candidate replacement).
  void Reset(std::size_t i, int feature, double value) {
    feature_[i] = feature;
    value_[i] = value;
    loss_[i] = 0.0;
    count_[i] = 0.0;
    std::fill_n(grad_.begin() + static_cast<std::ptrdiff_t>(i * num_params_),
                num_params_, 0.0);
  }

  // Logical reset; capacity is retained.
  void Clear() { size_ = 0; }

  // Snapshot of the logical rows (capacity is not persisted; a restored
  // store re-grows on demand). Load replaces the contents and requires the
  // archived per-row gradient width to match this store's num_params().
  void Save(serial::Writer& writer) const;
  void Load(serial::Reader& reader);

  // True if some row is keyed exactly (feature, value).
  bool Contains(int feature, double value) const {
    for (std::size_t i = 0; i < size_; ++i) {
      if (feature_[i] == feature && value_[i] == value) return true;
    }
    return false;
  }

 private:
  std::size_t num_params_ = 0;
  std::size_t size_ = 0;
  std::vector<int> feature_;
  std::vector<double> value_;
  std::vector<double> loss_;
  std::vector<double> count_;
  std::vector<double> grad_;  // row-major size_ x num_params_
};

// Gradient-approximated loss of a split candidate (Eq. 7). `lambda` is the
// warm-start step size of Eq. (6).
double ApproxCandidateLoss(double loss, std::span<const double> grad,
                           double count, double lambda);

// Same, for the complementary (right) child given the parent statistics;
// the difference-gradient norm is fused into one pass (Eq. 7 applied to
// parent-minus-left without materializing the difference vector).
double ApproxComplementLoss(double parent_loss,
                            std::span<const double> parent_grad,
                            double parent_count, double left_loss,
                            std::span<const double> left_grad,
                            double left_count, double lambda);

// Legacy AoS form, kept for tests/bench_micro_approx.
double ApproxComplementLoss(double parent_loss,
                            const std::vector<double>& parent_grad,
                            double parent_count, const CandidateStats& left,
                            double lambda);

// Gain (Eq. 3/4) of stored candidate `i` against `reference_loss`, given
// the node's accumulated statistics. Degenerate candidates (one empty
// side) yield -infinity.
double CandidateGain(const CandidateStore& store, std::size_t i,
                     double node_loss, std::span<const double> node_grad,
                     double node_count, double reference_loss, double lambda);

// Row of the best-gain candidate (or -1 if the store is empty / all
// degenerate); the winning gain is returned through `best_gain`.
int BestCandidate(const CandidateStore& store, double node_loss,
                  std::span<const double> node_grad, double node_count,
                  double reference_loss, double lambda, double* best_gain);

}  // namespace dmt::core

#endif  // DMT_CORE_CANDIDATE_H_
