// Split-candidate statistics of a Dynamic Model Tree node.
//
// A candidate is a feature/value pair representing the binary split
// "x[feature] <= value". For each stored candidate the node accumulates the
// loss, gradient and count of the observations that would have been routed
// to the LEFT child (Algorithm 1, lines 8-10); the right child's statistics
// are the difference between the node's and the left child's, so they are
// never stored (Algorithm 1, note).
//
// The candidate's loss under its own (never materialized) warm-started
// parameters is approximated by one gradient step from the parent model,
// Eqs. (6)-(7):  L_hat = L - (lambda/n) * ||grad||^2.
//
// Storage layout. Candidates live in a per-node CandidateStore laid out
// structure-of-arrays: one contiguous row-major gradient matrix
// (max_candidates x num_params) plus parallel feature/value/loss/count
// arrays. The per-batch update then touches each array sequentially --
// the gradient scatter of Algorithm 1 line 9 is a kernels::Add into a
// matrix row -- instead of chasing N independent heap vectors, and the
// store is grow-only (Clear keeps capacity), so steady-state training
// performs no allocations. The legacy AoS CandidateStats struct is kept
// as the reference implementation for tests and the approximation bench.
#ifndef DMT_CORE_CANDIDATE_H_
#define DMT_CORE_CANDIDATE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dmt/common/check.h"
#include "dmt/common/kernels.h"

namespace dmt::serial {
class Writer;
class Reader;
}  // namespace dmt::serial

namespace dmt::core {

struct CandidateStats {
  int feature = -1;
  double value = 0.0;
  // Accumulated left-child statistics, evaluated at the parent's parameters
  // of each respective time step.
  double loss = 0.0;
  std::vector<double> grad;
  double count = 0.0;

  CandidateStats() = default;
  CandidateStats(int feature_in, double value_in, std::size_t num_params)
      : feature(feature_in), value(value_in), grad(num_params, 0.0) {}
};

// SoA candidate store of one node. Rows are stable under Append/Reset;
// Clear only rewinds the logical size, so capacity reached once is never
// re-allocated (the zero-allocation steady-state contract of training).
//
// Gradient precision. The accumulated left-child gradients dominate the
// store's memory traffic (num_params doubles per row per scatter). The
// optional float32 storage mode (grad_f32 = true, the DMT default) halves
// that bandwidth: gradients are STORED as floats but every arithmetic
// operation stays double -- accumulation widens, adds in double and rounds
// once back to float (kernels::AddToF32), and the gain-evaluation norms
// widen each element into a double accumulator (kernels::SquaredNormF32 /
// SquaredNormDiffF32), so drift is bounded by one float rounding per
// element per update. Callers must use the mode-agnostic accessors
// (AccumulateGrad / SetGradFrom / GradSquaredNorm / GradSquaredNormDiff);
// the raw grad(i) span is only valid in f64 mode (tests, legacy callers).
class CandidateStore {
 public:
  CandidateStore() = default;
  explicit CandidateStore(std::size_t num_params, bool grad_f32 = false)
      : num_params_(num_params), grad_f32_(grad_f32) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t num_params() const { return num_params_; }
  bool grad_f32() const { return grad_f32_; }

  int feature(std::size_t i) const { return feature_[i]; }
  double value(std::size_t i) const { return value_[i]; }
  double loss(std::size_t i) const { return loss_[i]; }
  double count(std::size_t i) const { return count_[i]; }
  double& loss(std::size_t i) { return loss_[i]; }
  double& count(std::size_t i) { return count_[i]; }
  std::span<double> grad(std::size_t i) {
    DMT_DCHECK(!grad_f32_);
    return {grad_.data() + i * num_params_, num_params_};
  }
  std::span<const double> grad(std::size_t i) const {
    DMT_DCHECK(!grad_f32_);
    return {grad_.data() + i * num_params_, num_params_};
  }
  std::span<const float> grad32(std::size_t i) const {
    DMT_DCHECK(grad_f32_);
    return {grad32_.data() + i * num_params_, num_params_};
  }

  // grad_i += g, in the store's precision (double add, one float rounding
  // per element in f32 mode).
  void AccumulateGrad(std::size_t i, std::span<const double> g) {
    if (grad_f32_) {
      kernels::AddToF32(grad32_.data() + i * num_params_, g.data(),
                        num_params_);
    } else {
      kernels::Add(grad_.data() + i * num_params_, g.data(), num_params_);
    }
  }

  // grad_i = g (fresh-proposal adoption; one rounding per element in f32).
  void SetGradFrom(std::size_t i, std::span<const double> g) {
    if (grad_f32_) {
      float* dst = grad32_.data() + i * num_params_;
      for (std::size_t j = 0; j < num_params_; ++j) {
        dst[j] = static_cast<float>(g[j]);
      }
    } else {
      std::copy(g.begin(), g.end(),
                grad_.begin() + static_cast<std::ptrdiff_t>(i * num_params_));
    }
  }

  // ||grad_i||^2, accumulated in double either way (Eq. 7's norm).
  double GradSquaredNorm(std::size_t i) const {
    return grad_f32_
               ? kernels::SquaredNormF32(grad32_.data() + i * num_params_,
                                         num_params_)
               : kernels::SquaredNorm(grad_.data() + i * num_params_,
                                      num_params_);
  }

  // ||a - grad_i||^2 -- the complement-gradient norm against the node
  // gradient, fused (no materialized difference vector).
  double GradSquaredNormDiff(std::span<const double> a, std::size_t i) const {
    return grad_f32_
               ? kernels::SquaredNormDiffF32(
                     a.data(), grad32_.data() + i * num_params_, num_params_)
               : kernels::SquaredNormDiff(
                     a.data(), grad_.data() + i * num_params_, num_params_);
  }

  // Appends a zeroed candidate keyed (feature, value); returns its row.
  std::size_t Append(int feature, double value) {
    const std::size_t i = size_++;
    if (feature_.size() < size_) {
      feature_.resize(size_);
      value_.resize(size_);
      loss_.resize(size_);
      count_.resize(size_);
      if (grad_f32_) {
        grad32_.resize(size_ * num_params_);
      } else {
        grad_.resize(size_ * num_params_);
      }
    }
    ResetRow(i, feature, value);
    InsertOrdered(i);
    return i;
  }

  // Re-keys row `i` and zeroes its statistics (candidate replacement).
  void Reset(std::size_t i, int feature, double value) {
    EraseOrdered(i);
    ResetRow(i, feature, value);
    InsertOrdered(i);
  }

  // Logical reset; capacity is retained.
  void Clear() {
    size_ = 0;
    order_.clear();
  }

  // Snapshot of the logical rows (capacity is not persisted; a restored
  // store re-grows on demand). Load replaces the contents and requires the
  // archived per-row gradient width to match this store's num_params().
  void Save(serial::Writer& writer) const;
  void Load(serial::Reader& reader);

  // True if some row is keyed exactly (feature, value). O(log size) over
  // the maintained key index -- the candidate-replacement loop probes this
  // once per proposal, which made the linear scan the dominant cost of
  // wide-feature gain batteries.
  bool Contains(int feature, double value) const {
    const std::size_t pos = LowerBound(feature, value);
    if (pos == size_) return false;
    const std::size_t r = order_[pos];
    return feature_[r] == feature && value_[r] == value;
  }

  // Live rows in ascending (feature, value) key order, maintained
  // incrementally across Append/Reset/Clear/Load. Keys are unique (callers
  // guard appends with Contains), so the order is total and deterministic
  // -- identical to sorting the rows by (feature, value) from scratch.
  // Mutating the store invalidates the span (and may reorder it).
  std::span<const std::uint32_t> SortedByFeatureValue() const {
    return {order_.data(), size_};
  }

 private:
  // Key + zeroed statistics of row `i`, without touching the key index.
  void ResetRow(std::size_t i, int feature, double value) {
    feature_[i] = feature;
    value_[i] = value;
    loss_[i] = 0.0;
    count_[i] = 0.0;
    if (grad_f32_) {
      std::fill_n(
          grad32_.begin() + static_cast<std::ptrdiff_t>(i * num_params_),
          num_params_, 0.0f);
    } else {
      std::fill_n(grad_.begin() + static_cast<std::ptrdiff_t>(i * num_params_),
                  num_params_, 0.0);
    }
  }

  // First index into order_ whose row key is >= (feature, value).
  std::size_t LowerBound(int feature, double value) const {
    const auto it = std::lower_bound(
        order_.begin(), order_.end(), 0u,
        [&](std::uint32_t r, std::uint32_t) {
          return feature_[r] < feature ||
                 (feature_[r] == feature && value_[r] < value);
        });
    return static_cast<std::size_t>(it - order_.begin());
  }

  void InsertOrdered(std::size_t i) {
    const std::size_t pos = LowerBound(feature_[i], value_[i]);
    order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(pos),
                  static_cast<std::uint32_t>(i));
  }

  void EraseOrdered(std::size_t i) {
    // Equal keys (possible only in hand-built stores) sit adjacent, so a
    // short forward walk from the lower bound always lands on row i.
    std::size_t pos = LowerBound(feature_[i], value_[i]);
    while (pos < order_.size() && order_[pos] != static_cast<std::uint32_t>(i))
      ++pos;
    DMT_DCHECK(pos < order_.size());
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(pos));
  }

  std::size_t num_params_ = 0;
  bool grad_f32_ = false;
  std::size_t size_ = 0;
  std::vector<int> feature_;
  std::vector<double> value_;
  std::vector<double> loss_;
  std::vector<double> count_;
  std::vector<double> grad_;    // row-major size_ x num_params_ (f64 mode)
  std::vector<float> grad32_;   // row-major size_ x num_params_ (f32 mode)
  std::vector<std::uint32_t> order_;  // rows by (feature, value), ascending
};

// Gradient-approximated loss of a split candidate (Eq. 7). `lambda` is the
// warm-start step size of Eq. (6).
double ApproxCandidateLoss(double loss, std::span<const double> grad,
                           double count, double lambda);

// Same, for the complementary (right) child given the parent statistics;
// the difference-gradient norm is fused into one pass (Eq. 7 applied to
// parent-minus-left without materializing the difference vector).
double ApproxComplementLoss(double parent_loss,
                            std::span<const double> parent_grad,
                            double parent_count, double left_loss,
                            std::span<const double> left_grad,
                            double left_count, double lambda);

// Legacy AoS form, kept for tests/bench_micro_approx.
double ApproxComplementLoss(double parent_loss,
                            const std::vector<double>& parent_grad,
                            double parent_count, const CandidateStats& left,
                            double lambda);

// Gain (Eq. 3/4) of stored candidate `i` against `reference_loss`, given
// the node's accumulated statistics. Degenerate candidates (one empty
// side) yield -infinity.
double CandidateGain(const CandidateStore& store, std::size_t i,
                     double node_loss, std::span<const double> node_grad,
                     double node_count, double reference_loss, double lambda);

// Row of the best-gain candidate (or -1 if the store is empty / all
// degenerate); the winning gain is returned through `best_gain`.
int BestCandidate(const CandidateStore& store, double node_loss,
                  std::span<const double> node_grad, double node_count,
                  double reference_loss, double lambda, double* best_gain);

}  // namespace dmt::core

#endif  // DMT_CORE_CANDIDATE_H_
