// Regression instantiation of the Dynamic Model Tree.
//
// The paper's framework is generic in the simple model and loss (Sec. IV-V);
// this class instantiates it with incremental linear regression under the
// Gaussian negative log-likelihood (half squared error), the setting of its
// closest competitor FIMT-DD (Ikonomovska et al., 2011). All structural
// machinery is the paper's: loss-based gains (Eqs. 3-5), gradient candidate
// approximation (Eqs. 6-7), AIC thresholds (Eq. 11) with k = m + 1 free
// parameters per node model, bounded candidate store (Sec. V-D), and
// drift adaptation purely through the gains.
#ifndef DMT_CORE_DMT_REGRESSOR_H_
#define DMT_CORE_DMT_REGRESSOR_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dmt/common/random.h"
#include "dmt/common/stats.h"
#include "dmt/core/candidate.h"
#include "dmt/core/candidate_update.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/linear/linear_regressor.h"

namespace dmt::core {

struct DmtRegressorConfig {
  int num_features = 0;
  double learning_rate = 0.01;
  // Warm-start step size lambda of Eqs. (6)-(7); see DmtConfig.
  double gradient_step_size = 0.2;
  double epsilon = 1e-8;
  std::size_t max_candidates = 0;  // 0 -> 3 * num_features
  double replacement_rate = 0.5;
  std::size_t max_proposals_per_feature = 64;
  // Dirty-node gain scheduler (same contract as DmtConfig): a node runs
  // the AIC battery only when it has absorbed gain_test_every samples or
  // gain_test_threshold nats of loss since its last evaluation. The
  // threshold is measured on the standardized-target loss scale, so it is
  // unit-free like the AIC thresholds themselves. gain_test_every = 1 or
  // gain_test_threshold = 0 is exact mode.
  std::size_t gain_test_every = 1000;
  double gain_test_threshold = 50.0;
  // Training hot-path knobs (same contract as DmtConfig): radix-bucket
  // order statistics on evaluation batches (0 = exact sort-based scan) and
  // float32 candidate-gradient storage (false = full f64).
  std::size_t order_buckets = 256;
  bool candidate_grad_f32 = true;
  std::uint64_t seed = 42;
};

class DmtRegressor {
 public:
  explicit DmtRegressor(const DmtRegressorConfig& config);
  ~DmtRegressor();

  // Trains on a batch. Targets are standardized internally with running
  // mean/std estimates so the half-squared-error loss is the NLL of a
  // unit-variance Gaussian on the standardized scale -- this keeps the AIC
  // gain thresholds (Eq. 11) meaningful regardless of the target's units
  // (raw squared errors would otherwise dwarf any threshold and cause
  // structural thrashing).
  void PartialFit(const linear::RegressionBatch& batch);
  // Prediction in the original target units.
  double Predict(std::span<const double> x) const;

  // Complexity with the paper's counting rules: inner nodes are splits,
  // each model leaf adds one split and m parameters.
  std::size_t NumSplits() const;
  std::size_t NumParameters() const;
  std::string name() const { return "DMT-R"; }

  std::size_t NumInnerNodes() const;
  std::size_t NumLeaves() const;
  std::size_t Depth() const;
  std::size_t num_splits_performed() const { return splits_performed_; }
  std::size_t num_subtree_replacements() const { return replacements_; }
  std::size_t num_prunes() const { return prunes_; }
  const std::vector<StructuralEvent>& events() const { return events_; }

  double SplitThreshold() const;
  double ReplaceThreshold(std::size_t subtree_leaves) const;
  double PruneThreshold(std::size_t subtree_leaves) const;

  // Feature weights of the leaf model responsible for x.
  std::vector<double> LeafFeatureWeights(std::span<const double> x) const;

  // --- Persistence (binary archive; see serial/archive.h) ------------------
  // Complete state: config, target standardization statistics, structural
  // counters, recursive node records and the RNG engine (written last; see
  // DynamicModelTree). The audit log is not persisted.
  void Save(std::ostream& out) const;
  static std::unique_ptr<DmtRegressor> Load(std::istream& in);

 private:
  struct Node;

  std::unique_ptr<Node> MakeLeaf(const linear::LinearRegressor* warm_start);
  void UpdateNode(Node* node, const linear::RegressionBatch& batch,
                  std::span<const std::size_t> rows, std::size_t depth);
  // Two-phase update; returns true when the scheduler evaluated this node
  // (the caller runs the structural checks only then).
  bool UpdateStatistics(Node* node, const linear::RegressionBatch& batch,
                        std::span<const std::size_t> rows);
  void CheckLeafSplit(Node* node, std::size_t depth);
  void CheckInnerReplacement(Node* node, std::size_t depth);
  int BestCandidateOf(const Node& node, double reference_loss,
                      double* best_gain) const;
  void RecordEvent(StructuralEvent event);

  DmtRegressorConfig config_;
  Rng rng_;
  RunningStats target_stats_;  // online target standardization
  int model_params_ = 0;
  std::unique_ptr<Node> root_;
  TrainScratch scratch_;  // grow-only training buffers (zero-alloc steady state)
  // Reused standardized-target copy of the incoming batch (grow-only).
  std::unique_ptr<linear::RegressionBatch> standardized_;
  std::size_t time_step_ = 0;
  std::vector<StructuralEvent> events_;
  std::size_t splits_performed_ = 0;
  std::size_t replacements_ = 0;
  std::size_t prunes_ = 0;

  static constexpr std::size_t kMaxEvents = 1024;
};

}  // namespace dmt::core

#endif  // DMT_CORE_DMT_REGRESSOR_H_
