// The shared per-node training engine of the Dynamic Model Trees
// (classifier and regressor): Algorithm 1 lines 1-11 over the SoA
// CandidateStore, allocation-free in steady state.
//
// Since the dirty-node gain scheduler the engine is two-phase. Every batch
// runs the accumulate-only fast path; the expensive evaluation half runs
// only when the caller's scheduler declares the node due (see
// dynamic_model_tree.h, DmtConfig::gain_test_every / gain_test_threshold):
//
//  AccumulateNodeStatistics -- always, one call per (node, batch):
//   0. The node's rows are GATHERED into a contiguous row-major tile
//      (features plus labels/targets). Every later pass of this (node,
//      batch) update walks the tile, not the strided batch: the model SGD
//      step streams it front to back, the loss/gradient pass batches four
//      rows per weight-vector traversal (kernels::DotBatch4), and the
//      scatter phases index per-sample statistics by tile position. The
//      gather copies doubles verbatim and every pass preserves per-sample
//      order, so results are bit-identical to the ungathered path.
//   1. SGD step of the node's simple model on the tile (Eq. 1).
//   2. One loss/gradient evaluation per sample at the updated parameters
//      via the tiled kernels ("compute the sample gradient once").
//   3. Node statistics increment (Algorithm 1, lines 1-3).
//
//  ScatterAndPropose -- evaluation batches only (and the whole story in
//  exact mode, gain_test_every = 1). Two proposal engines share the entry
//  point, selected by CandidateUpdateParams::order_buckets:
//
//   Exact (order_buckets = 0): per feature, a prefix scan over the node's
//   rows in ascending feature-value order (the shared FeatureOrder cache
//   filtered through the node's membership). The running (loss, gradient,
//   count) prefix is scattered into every stored candidate row whose
//   threshold the scan passes, and each value boundary becomes a fresh
//   proposal whose batch-local gain estimate uses the fused norm kernels
//   (Eqs. 6-7). O(n log n) per feature per batch via the shared sort.
//
//   Bucketed (order_buckets = B > 0, the library default): the per-batch
//   sort is replaced by a deterministic radix binning of the scaled [0, 1]
//   feature range into B fixed-width buckets, O(n + B) per feature.
//   Scanning the occupied buckets in ascending index IS ascending value
//   order across buckets, so the same prefix-statistics recurrence runs
//   over bucket aggregates; each occupied bucket proposes its MAXIMUM
//   observed value (an actual data point, so the accumulated left-side
//   statistics for "x <= threshold" are exact -- only the choice of which
//   boundaries to propose is quantized; within-bucket boundaries are not
//   proposed). Stored candidates are scattered by the ScatterStoredOnly
//   bucketing below, which is exact for any threshold. The binning is
//   deterministic (first-touch bitmap, ascending scan), just not
//   bit-identical to the sort path -- which is why --dmt-exact pins
//   order_buckets = 0.
//
//   Both engines feed ReplaceCandidates (Sec. V-D): proposals in
//   descending estimated gain, at most replacement_rate * max_candidates
//   replacements per step, each evicting the currently-worst stored row.
//
//  ScatterStoredOnly -- skipped batches (and the stored-candidate scatter
//  of the bucketed evaluation path): the stored candidates still receive
//  this batch's statistics (their windows must stay aligned with the
//  node's own tallies), but no fresh proposals are made and no sort is
//  needed. Each stored candidate with threshold t owes exactly the sum
//  over rows with value <= t -- the same quantity the prefix scan
//  scatters -- so the rows are bucketed against the (few) stored
//  thresholds by binary search and the buckets prefix-accumulated, at
//  O(rows * log(candidates per feature)) instead of a batch sort.
//  Features with no stored candidate are not touched at all.
//
// The ascending-value order per feature is NOT re-sorted per node: the
// caller resets the per-batch order cache once per PartialFit
// (BeginFeatureOrders), and FeatureOrder sorts a feature's whole-batch
// order with the deterministic key (value, row index) the first time an
// evaluating node asks for it -- batches where every node is skipped (or
// every node evaluates through buckets) never sort anything. Each node
// filters that shared order through its membership map: a node's rows are
// a subset of the batch, so the filtered sequence is exactly the
// node-local ascending order.
//
// All intermediate state lives in TrainScratch, which is reused across
// nodes and batches: the phases run strictly post-order (the recursion of
// UpdateNode finishes both children before touching the parent's
// statistics), so one shared instance is safe; only the row partitions of
// the recursion itself need one buffer per tree depth.
#ifndef DMT_CORE_CANDIDATE_UPDATE_H_
#define DMT_CORE_CANDIDATE_UPDATE_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "dmt/common/check.h"
#include "dmt/common/kernels.h"
#include "dmt/core/candidate.h"
#include "dmt/obs/telemetry.h"

namespace dmt::core {

// The DmtConfig/DmtRegressorConfig fields the engine needs.
struct CandidateUpdateParams {
  int num_features = 0;
  std::size_t max_candidates = 0;
  double replacement_rate = 0.5;
  std::size_t max_proposals_per_feature = 0;
  double gradient_step_size = 0.2;
  // Fixed-width radix buckets per feature for the evaluation-batch order
  // statistics; 0 selects the exact sort-based scan (--dmt-exact, legacy
  // behavior, and the default for direct engine callers).
  std::size_t order_buckets = 0;
  // Optional telemetry destinations (null = not recorded): fresh proposals
  // evaluated, proposals appended to a non-full store, stored candidates
  // evicted by a better proposal, evaluation batches routed through the
  // bucketed engine, and proposals it produced.
  std::uint64_t* proposals_counter = nullptr;
  std::uint64_t* appends_counter = nullptr;
  std::uint64_t* evictions_counter = nullptr;
  std::uint64_t* bucket_evals_counter = nullptr;
  std::uint64_t* bucket_proposals_counter = nullptr;
};

// Grow-only SoA buffer of fresh-candidate proposals (one batch's worth);
// the gradient rows live in one contiguous matrix like the store's.
class ProposalBuffer {
 public:
  void Init(std::size_t num_params) { num_params_ = num_params; }
  std::size_t size() const { return size_; }
  void Clear() { size_ = 0; }

  int feature(std::size_t i) const { return feature_[i]; }
  double value(std::size_t i) const { return value_[i]; }
  double est_gain(std::size_t i) const { return est_gain_[i]; }
  double loss(std::size_t i) const { return loss_[i]; }
  double count(std::size_t i) const { return count_[i]; }
  std::span<const double> grad(std::size_t i) const {
    return {grad_.data() + i * num_params_, num_params_};
  }

  void Push(int feature, double value, double est_gain, double loss,
            std::span<const double> grad, double count) {
    const std::size_t i = size_++;
    if (feature_.size() < size_) {
      feature_.resize(size_);
      value_.resize(size_);
      est_gain_.resize(size_);
      loss_.resize(size_);
      count_.resize(size_);
      grad_.resize(size_ * num_params_);
    }
    feature_[i] = feature;
    value_[i] = value;
    est_gain_[i] = est_gain;
    loss_[i] = loss;
    count_[i] = count;
    std::copy(grad.begin(), grad.end(),
              grad_.begin() + static_cast<std::ptrdiff_t>(i * num_params_));
  }

 private:
  std::size_t num_params_ = 0;
  std::size_t size_ = 0;
  std::vector<int> feature_;
  std::vector<double> value_;
  std::vector<double> est_gain_;
  std::vector<double> loss_;
  std::vector<double> count_;
  std::vector<double> grad_;  // row-major size_ x num_params_
};

// Every buffer the batch update needs; all grow-only.
struct TrainScratch {
  // Whole-batch ascending-value sort orders, row-major [feature][pos],
  // sorted lazily per feature per PartialFit (key: value, then row index);
  // order_ready flags which features have been sorted for this batch.
  std::vector<std::uint32_t> feature_order;
  std::vector<char> order_ready;
  std::size_t order_size = 0;  // rows per feature of the current batch

  // Root row list of the current batch (identity permutation).
  std::vector<std::size_t> root_rows;

  // Gathered leaf tile of the current (node, batch) update: the node's
  // rows copied contiguous row-major (n x num_features) plus the parallel
  // labels/targets. Per-node buffers, reused across nodes (strictly
  // post-order use).
  std::vector<double> tile_x;
  std::vector<int> tile_label;      // classification gather
  std::vector<double> tile_target;  // regression gather
  // Row-major tile base of the current (node, batch): tile_x.data() after
  // a gather, or the batch storage itself when the node owns every row
  // (identity tile, zero-copy). Set by AccumulateNodeStatistics; valid
  // only until the next node's accumulate.
  const double* tile = nullptr;

  std::vector<double> sample_loss;  // [tile pos]
  std::vector<double> sample_grad;  // [tile pos][param], row-major
  std::vector<double> batch_grad;   // num_params
  std::vector<double> prefix_grad;  // num_params
  // Batch row -> tile position of the current node (-1 = not in node);
  // doubles as the membership mask of the FeatureOrder filter.
  std::vector<std::int32_t> tile_pos;
  std::vector<std::uint32_t> node_order;  // filtered order, current feature
  ProposalBuffer proposals;
  std::vector<double> stored_gain;
  std::vector<std::uint32_t> proposal_order;

  // Bucket accumulators of ScatterStoredOnly: one slot per stored
  // candidate of the feature group being scattered (skip-path scratch).
  std::vector<double> bucket_loss;
  std::vector<double> bucket_count;
  std::vector<double> bucket_grad;  // row-major [bucket][param]

  // Radix-bucket accumulators of ProposeFromBuckets. Occupied buckets are
  // assigned COMPACT slots in first-touch order, so the aggregates live in
  // a dense occupied x k block (cache-resident even for wide models)
  // instead of a sparse order_buckets x k matrix; the bucket -> slot map
  // is epoch-tagged, so nothing is ever bulk-cleared.
  std::vector<std::uint32_t> radix_slot;   // [bucket] -> slot (epoch-gated)
  std::vector<std::uint64_t> radix_epoch;  // [bucket] last-touch epoch
  std::uint64_t radix_cur_epoch = 0;
  std::vector<std::uint32_t> slot_bucket;  // [slot] -> bucket index
  std::vector<std::uint32_t> slot_order;   // slots by ascending bucket
  std::vector<double> slot_loss;
  std::vector<double> slot_count;
  std::vector<double> slot_max;   // per-slot max observed value
  std::vector<double> slot_grad;  // row-major [slot][param]

  // Recursion scratch of UpdateNode: row partitions indexed by depth. The
  // outer vectors grow when the tree deepens; the inner buffers keep their
  // capacity, and spans into them survive outer-vector reallocation
  // because vector moves preserve the heap buffer.
  std::vector<std::vector<std::size_t>> left_rows;
  std::vector<std::vector<std::size_t>> right_rows;
};

// Label (classification) or target (regression) of batch row `i`.
template <typename BatchT>
auto TargetOf(const BatchT& batch, std::size_t i) {
  if constexpr (requires { batch.label(i); }) {
    return batch.label(i);
  } else {
    return batch.target(i);
  }
}

// Invalidates the per-batch feature-order cache; call once per PartialFit
// before any FeatureOrder use. Allocation-free once the buffers are warm.
template <typename BatchT>
void BeginFeatureOrders(const BatchT& batch, int num_features,
                        TrainScratch* scratch) {
  scratch->order_size = batch.size();
  scratch->feature_order.resize(static_cast<std::size_t>(num_features) *
                                batch.size());
  scratch->order_ready.assign(static_cast<std::size_t>(num_features), 0);
}

// The whole-batch ascending-value row order of feature `j`, sorted on
// first use this batch and memoized (key: value, then row index -- fully
// deterministic, so lazy and eager sorting agree bit-for-bit).
template <typename BatchT>
const std::uint32_t* FeatureOrder(const BatchT& batch, int j,
                                  TrainScratch* scratch) {
  const std::size_t n = scratch->order_size;
  std::uint32_t* order =
      scratch->feature_order.data() + static_cast<std::size_t>(j) * n;
  if (!scratch->order_ready[static_cast<std::size_t>(j)]) {
    for (std::size_t i = 0; i < n; ++i) {
      order[i] = static_cast<std::uint32_t>(i);
    }
    std::sort(order, order + n, [&](std::uint32_t a, std::uint32_t b) {
      const double va = batch.row(a)[j];
      const double vb = batch.row(b)[j];
      return va < vb || (va == vb && a < b);
    });
    scratch->order_ready[static_cast<std::size_t>(j)] = 1;
  }
  return order;
}

// Eagerly sorts every feature's order (the pre-scheduler behavior; handy
// for tests and callers that know every feature will be consumed).
template <typename BatchT>
void ComputeFeatureOrders(const BatchT& batch, int num_features,
                          TrainScratch* scratch) {
  BeginFeatureOrders(batch, num_features, scratch);
  for (int j = 0; j < num_features; ++j) {
    (void)FeatureOrder(batch, j, scratch);
  }
}

// Phase 1 (every batch): leaf-tile gather (or zero-copy aliasing when the
// node owns the whole batch), model SGD step, per-sample losses/gradients,
// node tallies. Returns the batch loss at the updated parameters and
// leaves tile / sample_loss / sample_grad / batch_grad in the scratch, all
// indexed by TILE position (position i = rows[i]), for the scatter phase
// of the SAME (node, batch) -- the scatter calls below must follow before
// the next node's accumulate.
template <typename Model, typename BatchT>
double AccumulateNodeStatistics(const BatchT& batch,
                                std::span<const std::size_t> rows,
                                Model* model, double* loss_sum,
                                std::span<double> grad_sum, double* count,
                                TrainScratch* scratch) {
  const std::size_t n = rows.size();
  const std::size_t m = static_cast<std::size_t>(model->num_features());
  const std::size_t k = static_cast<std::size_t>(model->num_params());
  constexpr bool kClassification =
      requires { batch.label(std::size_t{0}); };

  // 0. Point the tile at the node's rows. A node that owns the whole batch
  //    (the root, and every node of a single-leaf tree) uses the batch
  //    storage in place -- rows is the identity permutation and both batch
  //    types are contiguous row-major, so no copy is needed. Other nodes
  //    gather their rows into a contiguous row-major tile. Either way the
  //    tile holds the exact same doubles, so everything computed from it
  //    matches the strided-batch path bit for bit.
  const bool identity = n > 0 && n == batch.size();
  const int* labels = nullptr;
  const double* targets = nullptr;
  if (identity) {
    scratch->tile = batch.row(0).data();
    if constexpr (kClassification) {
      labels = batch.labels().data();
    } else {
      targets = batch.targets().data();
    }
  } else {
    scratch->tile_x.resize(n * m);
    if constexpr (kClassification) {
      scratch->tile_label.resize(n);
    } else {
      scratch->tile_target.resize(n);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t r = rows[i];
      const std::span<const double> x = batch.row(r);
      std::copy(x.begin(), x.end(),
                scratch->tile_x.begin() + static_cast<std::ptrdiff_t>(i * m));
      if constexpr (kClassification) {
        scratch->tile_label[i] = batch.label(r);
      } else {
        scratch->tile_target[i] = batch.target(r);
      }
    }
    scratch->tile = scratch->tile_x.data();
    if constexpr (kClassification) {
      labels = scratch->tile_label.data();
    } else {
      targets = scratch->tile_target.data();
    }
  }

  // 1. SGD update of the simple model (Eq. 1 via gradient descent), in
  //    tile order = stream order.
  // 2. Per-sample loss and gradient at the updated parameters, four rows
  //    per weight traversal (kernels::DotBatch4 inside the tiled kernel).
  scratch->sample_loss.resize(n);
  scratch->sample_grad.resize(n * k);
  if constexpr (kClassification) {
    model->FitTile(scratch->tile, labels, n);
    model->LossAndGradientTile(scratch->tile, labels, n,
                               scratch->sample_loss.data(),
                               scratch->sample_grad.data());
  } else {
    model->FitTile(scratch->tile, targets, n);
    model->LossAndGradientTile(scratch->tile, targets, n,
                               scratch->sample_loss.data(),
                               scratch->sample_grad.data());
  }

  scratch->batch_grad.resize(k);
  scratch->prefix_grad.resize(k);
  std::fill(scratch->batch_grad.begin(), scratch->batch_grad.end(), 0.0);
  double batch_loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    batch_loss += scratch->sample_loss[i];
    kernels::Add(scratch->batch_grad.data(),
                 scratch->sample_grad.data() + i * k, k);
  }

  // 3. Increment node statistics (Algorithm 1, lines 1-3).
  *loss_sum += batch_loss;
  kernels::Add(grad_sum, scratch->batch_grad);
  *count += static_cast<double>(n);
  return batch_loss;
}

// Step 5 (both proposal engines): candidate replacement keeping the store
// bounded at max_candidates, allowing at most replacement_rate of it to
// turn over per step. Proposals are visited in descending estimated gain
// (row index breaks ties deterministically). loss_sum / grad_sum / count
// are the node tallies AFTER this batch's accumulate.
inline void ReplaceCandidates(const CandidateUpdateParams& params,
                              double loss_sum,
                              std::span<const double> grad_sum, double count,
                              CandidateStore* store, TrainScratch* scratch) {
  const double lambda = params.gradient_step_size;
  const ProposalBuffer& proposals = scratch->proposals;
  DMT_TELEMETRY_ADD(params.proposals_counter, proposals.size());
  scratch->proposal_order.resize(proposals.size());
  for (std::size_t i = 0; i < proposals.size(); ++i) {
    scratch->proposal_order[i] = static_cast<std::uint32_t>(i);
  }
  // Max-heap keyed (est_gain descending, index ascending) -- the key is a
  // total order, so repeated pops replay exactly the fully-sorted sequence;
  // but the loop below usually breaks after a handful of proposals, so the
  // heap only pays for what it consumes instead of a full O(P log P) sort.
  const auto heap_less = [&](std::uint32_t a, std::uint32_t b) {
    return proposals.est_gain(a) < proposals.est_gain(b) ||
           (proposals.est_gain(a) == proposals.est_gain(b) && a > b);
  };
  std::make_heap(scratch->proposal_order.begin(),
                 scratch->proposal_order.end(), heap_less);
  std::size_t budget = static_cast<std::size_t>(
      params.replacement_rate * static_cast<double>(params.max_candidates));
  // Gain estimates of the stored candidates, computed once per step and
  // maintained across replacements (recomputing per proposal would make
  // the update quadratic in the store size).
  scratch->stored_gain.resize(store->size());
  for (std::size_t c = 0; c < store->size(); ++c) {
    scratch->stored_gain[c] = CandidateGain(
        *store, c, loss_sum, grad_sum, count, loss_sum, lambda);
  }
  int worst = -1;  // argmin of stored_gain, recomputed after replacements
  std::size_t heap_size = scratch->proposal_order.size();
  while (heap_size > 0) {
    std::pop_heap(scratch->proposal_order.begin(),
                  scratch->proposal_order.begin() +
                      static_cast<std::ptrdiff_t>(heap_size),
                  heap_less);
    const std::uint32_t p = scratch->proposal_order[--heap_size];
    if (store->Contains(proposals.feature(p), proposals.value(p))) continue;
    if (store->size() < params.max_candidates) {
      const std::size_t c =
          store->Append(proposals.feature(p), proposals.value(p));
      store->loss(c) = proposals.loss(p);
      store->count(c) = proposals.count(p);
      store->SetGradFrom(c, proposals.grad(p));
      scratch->stored_gain.push_back(CandidateGain(
          *store, c, loss_sum, grad_sum, count, loss_sum, lambda));
      DMT_TELEMETRY_COUNT(params.appends_counter);
      continue;
    }
    if (budget == 0) break;
    // Replace the stored candidate with the lowest current gain estimate,
    // if the newcomer looks strictly better.
    if (worst < 0) {
      worst = static_cast<int>(std::min_element(scratch->stored_gain.begin(),
                                                scratch->stored_gain.end()) -
                               scratch->stored_gain.begin());
    }
    if (proposals.est_gain(p) <= scratch->stored_gain[worst]) {
      // Proposals are gain-descending and a failed comparison leaves the
      // store -- and with it the minimum -- unchanged, so every later
      // proposal fails the same test.
      break;
    }
    DMT_TELEMETRY_COUNT(params.evictions_counter);
    store->Reset(static_cast<std::size_t>(worst), proposals.feature(p),
                 proposals.value(p));
    store->loss(static_cast<std::size_t>(worst)) = proposals.loss(p);
    store->count(static_cast<std::size_t>(worst)) = proposals.count(p);
    store->SetGradFrom(static_cast<std::size_t>(worst), proposals.grad(p));
    scratch->stored_gain[static_cast<std::size_t>(worst)] = CandidateGain(
        *store, static_cast<std::size_t>(worst), loss_sum, grad_sum, count,
        loss_sum, lambda);
    worst = -1;
    --budget;
  }
}

// Bucketed proposal engine: deterministic fixed-width radix binning of
// each feature over the scaled [0, 1] range, O(n + order_buckets) per
// feature instead of a sort. Reads the tile state of
// AccumulateNodeStatistics; fills scratch->proposals. Values outside
// [0, 1] clamp into the edge buckets (ordering within an edge bucket is
// absorbed into its aggregate, which only coarsens proposal placement --
// the accumulated statistics stay exact sums of actual sample terms).
inline void ProposeFromBuckets(const CandidateUpdateParams& params,
                               std::size_t n, double batch_loss,
                               std::size_t num_params,
                               TrainScratch* scratch) {
  const std::size_t m = static_cast<std::size_t>(params.num_features);
  const std::size_t k = num_params;
  const std::size_t buckets = params.order_buckets;
  const double lambda = params.gradient_step_size;
  const double scale = static_cast<double>(buckets);

  scratch->proposals.Init(k);
  scratch->proposals.Clear();
  if (n < 2) return;  // a single row yields no boundary (full batch)

  scratch->radix_slot.resize(buckets);
  scratch->radix_epoch.resize(buckets, 0u);
  const std::size_t max_slots = std::min(n, buckets);
  scratch->slot_bucket.resize(max_slots);
  scratch->slot_order.resize(max_slots);
  scratch->slot_loss.resize(max_slots);
  scratch->slot_count.resize(max_slots);
  scratch->slot_max.resize(max_slots);
  scratch->slot_grad.resize(max_slots * k);

  for (int j = 0; j < params.num_features; ++j) {
    // Bin every row. An occupied bucket gets a compact slot on first touch
    // (epoch tag marks it live this pass), so the aggregates stay dense no
    // matter how sparse the occupancy.
    const std::uint64_t epoch = ++scratch->radix_cur_epoch;
    std::size_t occupied = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = scratch->tile[i * m + j];
      const double scaled = v * scale;
      std::size_t b;
      if (scaled >= scale - 1.0) {
        b = buckets - 1;
      } else if (scaled > 0.0) {
        b = static_cast<std::size_t>(scaled);
      } else {
        b = 0;  // negatives (and non-finite comparisons) clamp low
      }
      const double* sg = scratch->sample_grad.data() + i * k;
      if (scratch->radix_epoch[b] != epoch) {
        scratch->radix_epoch[b] = epoch;
        const std::size_t s = occupied++;
        scratch->radix_slot[b] = static_cast<std::uint32_t>(s);
        scratch->slot_bucket[s] = static_cast<std::uint32_t>(b);
        scratch->slot_loss[s] = scratch->sample_loss[i];
        scratch->slot_count[s] = 1.0;
        scratch->slot_max[s] = v;
        std::copy(sg, sg + k, scratch->slot_grad.data() + s * k);
      } else {
        const std::size_t s = scratch->radix_slot[b];
        scratch->slot_loss[s] += scratch->sample_loss[i];
        scratch->slot_count[s] += 1.0;
        if (v > scratch->slot_max[s]) scratch->slot_max[s] = v;
        kernels::Add(scratch->slot_grad.data() + s * k, sg, k);
      }
    }
    if (occupied < 2) continue;  // one bucket = no proposable boundary

    // Proposal budget: the user's per-feature cap, additionally bounded by
    // the bucket resolution (order_buckets / 8; at least 8). Boundary
    // placement is already quantized to bucket granularity, so spending a
    // full gain evaluation on every occupied bucket buys little -- the
    // store persists the best candidates across evaluations, and the
    // strided boundaries wander with the occupancy pattern batch to batch.
    // Ceil division ENFORCES the cap (the exact path's floor stride only
    // thins beyond twice the cap).
    std::size_t budget = std::max<std::size_t>(8, buckets / 8);
    if (params.max_proposals_per_feature > 0 &&
        params.max_proposals_per_feature < budget) {
      budget = params.max_proposals_per_feature;
    }
    std::size_t proposal_stride = 1;
    if (occupied - 1 > budget) {
      proposal_stride = (occupied - 1 + budget - 1) / budget;
    }

    // Ascending bucket index is ascending value order across buckets, so
    // the prefix recurrence of the exact scan runs over the slots sorted
    // by bucket (same visit order and per-bucket sums as a bitmap scan,
    // hence bit-identical to it).
    for (std::size_t s = 0; s < occupied; ++s) {
      scratch->slot_order[s] = static_cast<std::uint32_t>(s);
    }
    std::sort(scratch->slot_order.begin(),
              scratch->slot_order.begin() +
                  static_cast<std::ptrdiff_t>(occupied),
              [&](std::uint32_t a, std::uint32_t b) {
                return scratch->slot_bucket[a] < scratch->slot_bucket[b];
              });

    double run_loss = 0.0;
    std::fill(scratch->prefix_grad.begin(), scratch->prefix_grad.end(), 0.0);
    double run_count = 0.0;
    for (std::size_t seen = 1; seen <= occupied; ++seen) {
      const std::size_t s = scratch->slot_order[seen - 1];
      run_loss += scratch->slot_loss[s];
      kernels::Add(scratch->prefix_grad.data(),
                   scratch->slot_grad.data() + s * k, k);
      run_count += scratch->slot_count[s];
      if (seen == occupied) break;  // the full batch is no split
      if (seen % proposal_stride != 0) continue;

      // Estimated gain from this batch alone (Eq. 3 with Eq. 7 losses) --
      // the same expressions as the exact scan, over the bucket prefix.
      const double left_hat = ApproxCandidateLoss(
          run_loss, scratch->prefix_grad, run_count, lambda);
      const double right_norm_sq = kernels::SquaredNormDiff(
          std::span<const double>(scratch->batch_grad),
          std::span<const double>(scratch->prefix_grad));
      const double right_count = static_cast<double>(n) - run_count;
      const double right_hat =
          (batch_loss - run_loss) -
          (right_count > 0.0 ? lambda / right_count * right_norm_sq : 0.0);
      const double est_gain = batch_loss - left_hat - right_hat;
      scratch->proposals.Push(j, scratch->slot_max[s], est_gain, run_loss,
                              scratch->prefix_grad, run_count);
    }
  }
}

// Phase 2, skip path (and the stored-candidate scatter of the bucketed
// evaluation path): scatter this batch into the stored candidates without
// sorting the batch or proposing anything. Each stored candidate with
// threshold t owes the sum over this node's rows with value <= t (exactly
// what the prefix scan delivers), so the rows are bucketed against the
// sorted stored thresholds by binary search and the buckets
// prefix-accumulated. Requires the tile state of AccumulateNodeStatistics
// for the same (node, batch). The bucket sums necessarily associate
// additions in a different order than the value-sorted prefix scan, which
// is why exact mode never routes a batch through here.
template <typename BatchT>
void ScatterStoredOnly(const BatchT& batch, std::span<const std::size_t> rows,
                       CandidateStore* store, TrainScratch* scratch) {
  const std::size_t total = store->size();
  if (total == 0) return;
  const std::size_t k = store->num_params();
  const std::size_t m = batch.num_features();

  // Keys are immutable during the scatter (only loss/grad/count mutate),
  // so the store's maintained order stays valid throughout.
  const std::span<const std::uint32_t> stored = store->SortedByFeatureValue();

  std::size_t group_begin = 0;
  while (group_begin < total) {
    const int j = store->feature(stored[group_begin]);
    std::size_t group_end = group_begin + 1;
    while (group_end < total && store->feature(stored[group_end]) == j) {
      ++group_end;
    }
    const std::size_t buckets = group_end - group_begin;

    scratch->bucket_loss.resize(buckets);
    scratch->bucket_count.resize(buckets);
    scratch->bucket_grad.resize(buckets * k);
    std::fill(scratch->bucket_loss.begin(),
              scratch->bucket_loss.begin() +
                  static_cast<std::ptrdiff_t>(buckets), 0.0);
    std::fill(scratch->bucket_count.begin(),
              scratch->bucket_count.begin() +
                  static_cast<std::ptrdiff_t>(buckets), 0.0);
    std::fill(scratch->bucket_grad.begin(),
              scratch->bucket_grad.begin() +
                  static_cast<std::ptrdiff_t>(buckets * k), 0.0);

    for (std::size_t i = 0; i < rows.size(); ++i) {
      const double value = scratch->tile[i * m + j];
      // First stored threshold >= value: the smallest left side that
      // includes this observation (rows above every threshold contribute
      // to no candidate of this feature).
      std::size_t lo = group_begin;
      std::size_t hi = group_end;
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (store->value(stored[mid]) < value) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == group_end) continue;
      const std::size_t b = lo - group_begin;
      scratch->bucket_loss[b] += scratch->sample_loss[i];
      kernels::Add(scratch->bucket_grad.data() + b * k,
                   scratch->sample_grad.data() + i * k, k);
      scratch->bucket_count[b] += 1.0;
    }

    // Ascending thresholds: candidate i owes buckets 0..i.
    double run_loss = 0.0;
    std::fill(scratch->prefix_grad.begin(), scratch->prefix_grad.end(), 0.0);
    double run_count = 0.0;
    for (std::size_t g = group_begin; g < group_end; ++g) {
      const std::size_t b = g - group_begin;
      run_loss += scratch->bucket_loss[b];
      kernels::Add(scratch->prefix_grad.data(),
                   scratch->bucket_grad.data() + b * k, k);
      run_count += scratch->bucket_count[b];
      const std::size_t c = stored[g];
      store->loss(c) += run_loss;
      store->AccumulateGrad(c, scratch->prefix_grad);
      store->count(c) += run_count;
    }
    group_begin = group_end;
  }
}

// Phase 2, evaluation path (Algorithm 1 lines 6-11; Sec. V-D): scatter
// into the stored candidates plus fresh proposals and bounded replacement,
// through the exact sorted scan (order_buckets = 0) or the radix-bucket
// engine. Requires the tile state of AccumulateNodeStatistics for the same
// (node, batch); loss_sum / grad_sum / count are the node tallies AFTER
// that accumulate.
template <typename BatchT>
void ScatterAndPropose(const CandidateUpdateParams& params,
                       const BatchT& batch, std::span<const std::size_t> rows,
                       double batch_loss, double loss_sum,
                       std::span<const double> grad_sum, double count,
                       CandidateStore* store, TrainScratch* scratch) {
  const std::size_t n = rows.size();
  const std::size_t batch_rows = batch.size();
  const std::size_t m = static_cast<std::size_t>(params.num_features);
  const std::size_t k = store->num_params();
  const double lambda = params.gradient_step_size;

  if (params.order_buckets > 0) {
    // Bucketed engine: the stored scatter reuses the skip-path bucketing
    // (exact for any threshold), the proposals come from radix buckets.
    DMT_TELEMETRY_COUNT(params.bucket_evals_counter);
    ScatterStoredOnly(batch, rows, store, scratch);
    ProposeFromBuckets(params, n, batch_loss, k, scratch);
    DMT_TELEMETRY_ADD(params.bucket_proposals_counter,
                      scratch->proposals.size());
    ReplaceCandidates(params, loss_sum, grad_sum, count, store, scratch);
    return;
  }

  // 4. Exact engine: per-feature prefix scan in ascending value order --
  //    stored-candidate scatter plus fresh proposals.
  scratch->tile_pos.resize(batch_rows);
  std::fill(scratch->tile_pos.begin(), scratch->tile_pos.end(),
            std::int32_t{-1});
  for (std::size_t i = 0; i < n; ++i) {
    scratch->tile_pos[rows[i]] = static_cast<std::int32_t>(i);
  }
  scratch->node_order.resize(n);
  scratch->proposals.Init(k);
  scratch->proposals.Clear();

  std::size_t proposal_stride = 1;
  if (params.max_proposals_per_feature > 0 &&
      n > params.max_proposals_per_feature) {
    proposal_stride = n / params.max_proposals_per_feature;
  }

  // Stored candidates grouped by feature in ascending threshold order; the
  // store's keys don't change during the scan (ReplaceCandidates runs
  // after it), so its maintained order serves every feature's group.
  const std::span<const std::uint32_t> stored = store->SortedByFeatureValue();
  std::size_t group_begin = 0;

  for (int j = 0; j < params.num_features; ++j) {
    // Node-local ascending order = batch order filtered by membership,
    // re-expressed as tile positions so the scan walks the gathered tile.
    const std::uint32_t* batch_order = FeatureOrder(batch, j, scratch);
    std::size_t filled = 0;
    for (std::size_t pos = 0; pos < scratch->order_size; ++pos) {
      const std::int32_t tp = scratch->tile_pos[batch_order[pos]];
      if (tp >= 0) {
        scratch->node_order[filled++] = static_cast<std::uint32_t>(tp);
      }
    }
    DMT_DCHECK(filled == n);

    // This feature's stored group [group_begin, group_end).
    std::size_t group_end = group_begin;
    while (group_end < stored.size() && store->feature(stored[group_end]) == j) {
      ++group_end;
    }

    double run_loss = 0.0;
    std::fill(scratch->prefix_grad.begin(), scratch->prefix_grad.end(), 0.0);
    double run_count = 0.0;
    std::size_t stored_pos = group_begin;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t tp = scratch->node_order[i];
      const double value = scratch->tile[tp * m + j];
      // Stored candidates strictly below this value receive the prefix
      // accumulated so far (their left side excludes this observation).
      while (stored_pos < group_end &&
             store->value(stored[stored_pos]) < value) {
        const std::size_t c = stored[stored_pos];
        store->loss(c) += run_loss;
        store->AccumulateGrad(c, scratch->prefix_grad);
        store->count(c) += run_count;
        ++stored_pos;
      }
      run_loss += scratch->sample_loss[tp];
      kernels::Add(scratch->prefix_grad.data(),
                   scratch->sample_grad.data() + tp * k, k);
      run_count += 1.0;

      // Value boundary: the split "x_j <= value" is a candidate.
      const bool boundary =
          i + 1 == n ||
          scratch->tile[scratch->node_order[i + 1] * m + j] > value;
      if (!boundary || i + 1 == n) continue;  // the full batch is no split
      if ((i + 1) % proposal_stride != 0) continue;

      // Estimated gain from this batch alone (Eq. 3 with Eq. 7 losses).
      const double left_hat = ApproxCandidateLoss(
          run_loss, scratch->prefix_grad, run_count, lambda);
      const double right_norm_sq = kernels::SquaredNormDiff(
          std::span<const double>(scratch->batch_grad),
          std::span<const double>(scratch->prefix_grad));
      const double right_count = static_cast<double>(n) - run_count;
      const double right_hat =
          (batch_loss - run_loss) -
          (right_count > 0.0 ? lambda / right_count * right_norm_sq : 0.0);
      const double est_gain = batch_loss - left_hat - right_hat;
      scratch->proposals.Push(j, value, est_gain, run_loss,
                              scratch->prefix_grad, run_count);
    }
    // Remaining stored candidates (threshold >= max value) absorb the full
    // batch on their left side.
    while (stored_pos < group_end) {
      const std::size_t c = stored[stored_pos];
      store->loss(c) += batch_loss;
      store->AccumulateGrad(c, scratch->batch_grad);
      store->count(c) += static_cast<double>(n);
      ++stored_pos;
    }
    group_begin = group_end;
  }

  // 5. Bounded candidate replacement.
  ReplaceCandidates(params, loss_sum, grad_sum, count, store, scratch);
}

}  // namespace dmt::core

#endif  // DMT_CORE_CANDIDATE_UPDATE_H_
