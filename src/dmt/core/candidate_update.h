// The shared per-node training engine of the Dynamic Model Trees
// (classifier and regressor): Algorithm 1 lines 1-11 over the SoA
// CandidateStore, allocation-free in steady state.
//
// Since the dirty-node gain scheduler the engine is two-phase. Every batch
// runs the accumulate-only fast path; the expensive evaluation half runs
// only when the caller's scheduler declares the node due (see
// dynamic_model_tree.h, DmtConfig::gain_test_every / gain_test_threshold):
//
//  AccumulateNodeStatistics -- always, one call per (node, batch):
//   1. SGD step of the node's simple model on the routed rows (Eq. 1).
//   2. One loss/gradient evaluation per sample at the updated parameters
//      (the "compute the sample gradient once" half of the SoA design).
//   3. Node statistics increment (Algorithm 1, lines 1-3).
//
//  ScatterAndPropose -- evaluation batches only (and the whole story in
//  exact mode, gain_test_every = 1):
//   4. Per feature: a prefix scan over the batch in ascending feature-value
//      order. The running (loss, gradient, count) prefix is scattered into
//      every stored candidate row whose threshold the scan passes -- a
//      single kernels::Add into the store's gradient matrix -- and each
//      value boundary becomes a fresh candidate proposal whose batch-local
//      gain estimate is computed with the fused norm kernels (Eqs. 6-7).
//   5. Bounded candidate replacement (Sec. V-D): proposals in descending
//      estimated gain, at most replacement_rate * max_candidates
//      replacements per step, each evicting the currently-worst stored row.
//
//  ScatterStoredOnly -- skipped batches: the stored candidates still
//  receive this batch's statistics (their windows must stay aligned with
//  the node's own tallies), but no fresh proposals are made and no sort is
//  needed. Each stored candidate with threshold t owes exactly the sum
//  over rows with value <= t -- the same quantity the prefix scan
//  scatters -- so the rows are bucketed against the (few) stored
//  thresholds by binary search and the buckets prefix-accumulated, at
//  O(rows * log(candidates per feature)) instead of a batch sort.
//  Features with no stored candidate are not touched at all.
//
// The ascending-value order per feature is NOT re-sorted per node: the
// caller resets the per-batch order cache once per PartialFit
// (BeginFeatureOrders), and FeatureOrder sorts a feature's whole-batch
// order with the deterministic key (value, row index) the first time an
// evaluating node asks for it -- batches where every node is skipped never
// sort anything. Each node filters that shared order through its
// membership mask: a node's rows are a subset of the batch, so the
// filtered sequence is exactly the node-local ascending order.
//
// All intermediate state lives in TrainScratch, which is reused across
// nodes and batches: the phases run strictly post-order (the recursion of
// UpdateNode finishes both children before touching the parent's
// statistics), so one shared instance is safe; only the row partitions of
// the recursion itself need one buffer per tree depth.
#ifndef DMT_CORE_CANDIDATE_UPDATE_H_
#define DMT_CORE_CANDIDATE_UPDATE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "dmt/common/check.h"
#include "dmt/common/kernels.h"
#include "dmt/core/candidate.h"
#include "dmt/obs/telemetry.h"

namespace dmt::core {

// The DmtConfig/DmtRegressorConfig fields the engine needs.
struct CandidateUpdateParams {
  int num_features = 0;
  std::size_t max_candidates = 0;
  double replacement_rate = 0.5;
  std::size_t max_proposals_per_feature = 0;
  double gradient_step_size = 0.2;
  // Optional telemetry destinations (null = not recorded): fresh proposals
  // evaluated, proposals appended to a non-full store, and stored
  // candidates evicted by a better proposal.
  std::uint64_t* proposals_counter = nullptr;
  std::uint64_t* appends_counter = nullptr;
  std::uint64_t* evictions_counter = nullptr;
};

// Grow-only SoA buffer of fresh-candidate proposals (one batch's worth);
// the gradient rows live in one contiguous matrix like the store's.
class ProposalBuffer {
 public:
  void Init(std::size_t num_params) { num_params_ = num_params; }
  std::size_t size() const { return size_; }
  void Clear() { size_ = 0; }

  int feature(std::size_t i) const { return feature_[i]; }
  double value(std::size_t i) const { return value_[i]; }
  double est_gain(std::size_t i) const { return est_gain_[i]; }
  double loss(std::size_t i) const { return loss_[i]; }
  double count(std::size_t i) const { return count_[i]; }
  std::span<const double> grad(std::size_t i) const {
    return {grad_.data() + i * num_params_, num_params_};
  }

  void Push(int feature, double value, double est_gain, double loss,
            std::span<const double> grad, double count) {
    const std::size_t i = size_++;
    if (feature_.size() < size_) {
      feature_.resize(size_);
      value_.resize(size_);
      est_gain_.resize(size_);
      loss_.resize(size_);
      count_.resize(size_);
      grad_.resize(size_ * num_params_);
    }
    feature_[i] = feature;
    value_[i] = value;
    est_gain_[i] = est_gain;
    loss_[i] = loss;
    count_[i] = count;
    std::copy(grad.begin(), grad.end(),
              grad_.begin() + static_cast<std::ptrdiff_t>(i * num_params_));
  }

 private:
  std::size_t num_params_ = 0;
  std::size_t size_ = 0;
  std::vector<int> feature_;
  std::vector<double> value_;
  std::vector<double> est_gain_;
  std::vector<double> loss_;
  std::vector<double> count_;
  std::vector<double> grad_;  // row-major size_ x num_params_
};

// Every buffer the batch update needs; all grow-only.
struct TrainScratch {
  // Whole-batch ascending-value sort orders, row-major [feature][pos],
  // sorted lazily per feature per PartialFit (key: value, then row index);
  // order_ready flags which features have been sorted for this batch.
  std::vector<std::uint32_t> feature_order;
  std::vector<char> order_ready;
  std::size_t order_size = 0;  // rows per feature of the current batch

  // Root row list of the current batch (identity permutation).
  std::vector<std::size_t> root_rows;

  // Per-node buffers, reused across nodes (strictly post-order use).
  std::vector<double> sample_loss;       // [batch row]
  std::vector<double> sample_grad;       // [batch row][param], row-major
  std::vector<double> batch_grad;        // num_params
  std::vector<double> prefix_grad;       // num_params
  std::vector<char> in_node;             // [batch row] membership mask
  std::vector<std::uint32_t> node_order;  // filtered order, current feature
  std::vector<std::uint32_t> stored_idx;  // store rows of current feature
  ProposalBuffer proposals;
  std::vector<double> stored_gain;
  std::vector<std::uint32_t> proposal_order;

  // Bucket accumulators of ScatterStoredOnly: one slot per stored
  // candidate of the feature group being scattered (skip-path scratch).
  std::vector<double> bucket_loss;
  std::vector<double> bucket_count;
  std::vector<double> bucket_grad;  // row-major [bucket][param]

  // Recursion scratch of UpdateNode: row partitions indexed by depth. The
  // outer vectors grow when the tree deepens; the inner buffers keep their
  // capacity, and spans into them survive outer-vector reallocation
  // because vector moves preserve the heap buffer.
  std::vector<std::vector<std::size_t>> left_rows;
  std::vector<std::vector<std::size_t>> right_rows;
};

// Label (classification) or target (regression) of batch row `i`.
template <typename BatchT>
auto TargetOf(const BatchT& batch, std::size_t i) {
  if constexpr (requires { batch.label(i); }) {
    return batch.label(i);
  } else {
    return batch.target(i);
  }
}

// Invalidates the per-batch feature-order cache; call once per PartialFit
// before any FeatureOrder use. Allocation-free once the buffers are warm.
template <typename BatchT>
void BeginFeatureOrders(const BatchT& batch, int num_features,
                        TrainScratch* scratch) {
  scratch->order_size = batch.size();
  scratch->feature_order.resize(static_cast<std::size_t>(num_features) *
                                batch.size());
  scratch->order_ready.assign(static_cast<std::size_t>(num_features), 0);
}

// The whole-batch ascending-value row order of feature `j`, sorted on
// first use this batch and memoized (key: value, then row index -- fully
// deterministic, so lazy and eager sorting agree bit-for-bit).
template <typename BatchT>
const std::uint32_t* FeatureOrder(const BatchT& batch, int j,
                                  TrainScratch* scratch) {
  const std::size_t n = scratch->order_size;
  std::uint32_t* order =
      scratch->feature_order.data() + static_cast<std::size_t>(j) * n;
  if (!scratch->order_ready[static_cast<std::size_t>(j)]) {
    for (std::size_t i = 0; i < n; ++i) {
      order[i] = static_cast<std::uint32_t>(i);
    }
    std::sort(order, order + n, [&](std::uint32_t a, std::uint32_t b) {
      const double va = batch.row(a)[j];
      const double vb = batch.row(b)[j];
      return va < vb || (va == vb && a < b);
    });
    scratch->order_ready[static_cast<std::size_t>(j)] = 1;
  }
  return order;
}

// Eagerly sorts every feature's order (the pre-scheduler behavior; handy
// for tests and callers that know every feature will be consumed).
template <typename BatchT>
void ComputeFeatureOrders(const BatchT& batch, int num_features,
                          TrainScratch* scratch) {
  BeginFeatureOrders(batch, num_features, scratch);
  for (int j = 0; j < num_features; ++j) {
    (void)FeatureOrder(batch, j, scratch);
  }
}

// Phase 1 (every batch): model SGD step, per-sample losses/gradients, node
// tallies. Returns the batch loss at the updated parameters and leaves
// sample_loss / sample_grad / batch_grad in the scratch for the scatter
// phase of the SAME (node, batch) -- the scatter calls below must follow
// before the next node's accumulate.
template <typename Model, typename BatchT>
double AccumulateNodeStatistics(const BatchT& batch,
                                std::span<const std::size_t> rows,
                                Model* model, double* loss_sum,
                                std::span<double> grad_sum, double* count,
                                TrainScratch* scratch) {
  // 1. SGD update of the simple model (Eq. 1 via gradient descent).
  model->FitRows(batch, rows);

  const std::size_t batch_rows = batch.size();
  const std::size_t k = static_cast<std::size_t>(model->num_params());

  // 2. Per-sample loss and gradient at the updated parameters, indexed by
  //    batch row so the feature-order scan can address them directly.
  scratch->sample_loss.resize(batch_rows);
  scratch->sample_grad.resize(batch_rows * k);
  scratch->batch_grad.resize(k);
  scratch->prefix_grad.resize(k);
  std::fill(scratch->batch_grad.begin(), scratch->batch_grad.end(), 0.0);
  double batch_loss = 0.0;
  for (std::size_t r : rows) {
    std::span<double> g(scratch->sample_grad.data() + r * k, k);
    scratch->sample_loss[r] =
        model->LossAndGradientOne(batch.row(r), TargetOf(batch, r), g);
    batch_loss += scratch->sample_loss[r];
    kernels::Add(std::span<double>(scratch->batch_grad), g);
  }

  // 3. Increment node statistics (Algorithm 1, lines 1-3).
  *loss_sum += batch_loss;
  kernels::Add(grad_sum, scratch->batch_grad);
  *count += static_cast<double>(rows.size());
  return batch_loss;
}

// Phase 2, evaluation path (Algorithm 1 lines 6-11; Sec. V-D): prefix-scan
// scatter into the stored candidates plus fresh proposals and bounded
// replacement. Requires the scratch state of AccumulateNodeStatistics for
// the same (node, batch); loss_sum / grad_sum / count are the node tallies
// AFTER that accumulate.
template <typename BatchT>
void ScatterAndPropose(const CandidateUpdateParams& params,
                       const BatchT& batch, std::span<const std::size_t> rows,
                       double batch_loss, double loss_sum,
                       std::span<const double> grad_sum, double count,
                       CandidateStore* store, TrainScratch* scratch) {
  const std::size_t n = rows.size();
  const std::size_t batch_rows = batch.size();
  const std::size_t k = store->num_params();
  const double lambda = params.gradient_step_size;

  // 4. Per-feature prefix scan: stored-candidate scatter plus fresh
  //    proposals.
  scratch->in_node.resize(batch_rows);
  std::fill(scratch->in_node.begin(), scratch->in_node.end(), 0);
  for (std::size_t r : rows) scratch->in_node[r] = 1;
  scratch->node_order.resize(n);
  scratch->proposals.Init(k);
  scratch->proposals.Clear();

  std::size_t proposal_stride = 1;
  if (params.max_proposals_per_feature > 0 &&
      n > params.max_proposals_per_feature) {
    proposal_stride = n / params.max_proposals_per_feature;
  }

  for (int j = 0; j < params.num_features; ++j) {
    // Node-local ascending order = batch order filtered by membership.
    const std::uint32_t* batch_order = FeatureOrder(batch, j, scratch);
    std::size_t filled = 0;
    for (std::size_t pos = 0; pos < scratch->order_size; ++pos) {
      const std::uint32_t r = batch_order[pos];
      if (scratch->in_node[r]) scratch->node_order[filled++] = r;
    }
    DMT_DCHECK(filled == n);

    // Stored candidates of this feature, in ascending threshold order
    // (thresholds are unique per feature: duplicates are never stored).
    scratch->stored_idx.clear();
    for (std::size_t c = 0; c < store->size(); ++c) {
      if (store->feature(c) == j) {
        scratch->stored_idx.push_back(static_cast<std::uint32_t>(c));
      }
    }
    std::sort(scratch->stored_idx.begin(), scratch->stored_idx.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return store->value(a) < store->value(b);
              });

    double run_loss = 0.0;
    std::fill(scratch->prefix_grad.begin(), scratch->prefix_grad.end(), 0.0);
    double run_count = 0.0;
    std::size_t stored_pos = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t r = scratch->node_order[i];
      const double value = batch.row(r)[j];
      // Stored candidates strictly below this value receive the prefix
      // accumulated so far (their left side excludes this observation).
      while (stored_pos < scratch->stored_idx.size() &&
             store->value(scratch->stored_idx[stored_pos]) < value) {
        const std::size_t c = scratch->stored_idx[stored_pos];
        store->loss(c) += run_loss;
        kernels::Add(store->grad(c),
                     std::span<const double>(scratch->prefix_grad));
        store->count(c) += run_count;
        ++stored_pos;
      }
      run_loss += scratch->sample_loss[r];
      kernels::Add(std::span<double>(scratch->prefix_grad),
                   {scratch->sample_grad.data() + r * k, k});
      run_count += 1.0;

      // Value boundary: the split "x_j <= value" is a candidate.
      const bool boundary =
          i + 1 == n || batch.row(scratch->node_order[i + 1])[j] > value;
      if (!boundary || i + 1 == n) continue;  // the full batch is no split
      if ((i + 1) % proposal_stride != 0) continue;

      // Estimated gain from this batch alone (Eq. 3 with Eq. 7 losses).
      const double left_hat = ApproxCandidateLoss(
          run_loss, scratch->prefix_grad, run_count, lambda);
      const double right_norm_sq = kernels::SquaredNormDiff(
          std::span<const double>(scratch->batch_grad),
          std::span<const double>(scratch->prefix_grad));
      const double right_count = static_cast<double>(n) - run_count;
      const double right_hat =
          (batch_loss - run_loss) -
          (right_count > 0.0 ? lambda / right_count * right_norm_sq : 0.0);
      const double est_gain = batch_loss - left_hat - right_hat;
      scratch->proposals.Push(j, value, est_gain, run_loss,
                              scratch->prefix_grad, run_count);
    }
    // Remaining stored candidates (threshold >= max value) absorb the full
    // batch on their left side.
    while (stored_pos < scratch->stored_idx.size()) {
      const std::size_t c = scratch->stored_idx[stored_pos];
      store->loss(c) += batch_loss;
      kernels::Add(store->grad(c),
                   std::span<const double>(scratch->batch_grad));
      store->count(c) += static_cast<double>(n);
      ++stored_pos;
    }
  }

  // 5. Candidate replacement: keep the store bounded at max_candidates,
  //    allowing at most replacement_rate of it to turn over per step.
  //    Proposals are visited in descending estimated gain (row index
  //    breaks ties deterministically).
  const ProposalBuffer& proposals = scratch->proposals;
  DMT_TELEMETRY_ADD(params.proposals_counter, proposals.size());
  scratch->proposal_order.resize(proposals.size());
  for (std::size_t i = 0; i < proposals.size(); ++i) {
    scratch->proposal_order[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(scratch->proposal_order.begin(), scratch->proposal_order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return proposals.est_gain(a) > proposals.est_gain(b) ||
                     (proposals.est_gain(a) == proposals.est_gain(b) &&
                      a < b);
            });
  std::size_t budget = static_cast<std::size_t>(
      params.replacement_rate * static_cast<double>(params.max_candidates));
  // Gain estimates of the stored candidates, computed once per step and
  // maintained across replacements (recomputing per proposal would make
  // the update quadratic in the store size).
  scratch->stored_gain.resize(store->size());
  for (std::size_t c = 0; c < store->size(); ++c) {
    scratch->stored_gain[c] = CandidateGain(
        *store, c, loss_sum, grad_sum, count, loss_sum, lambda);
  }
  int worst = -1;  // argmin of stored_gain, recomputed after replacements
  for (std::uint32_t p : scratch->proposal_order) {
    if (store->Contains(proposals.feature(p), proposals.value(p))) continue;
    if (store->size() < params.max_candidates) {
      const std::size_t c =
          store->Append(proposals.feature(p), proposals.value(p));
      store->loss(c) = proposals.loss(p);
      store->count(c) = proposals.count(p);
      std::copy(proposals.grad(p).begin(), proposals.grad(p).end(),
                store->grad(c).begin());
      scratch->stored_gain.push_back(CandidateGain(
          *store, c, loss_sum, grad_sum, count, loss_sum, lambda));
      DMT_TELEMETRY_COUNT(params.appends_counter);
      continue;
    }
    if (budget == 0) break;
    // Replace the stored candidate with the lowest current gain estimate,
    // if the newcomer looks strictly better.
    if (worst < 0) {
      worst = static_cast<int>(std::min_element(scratch->stored_gain.begin(),
                                                scratch->stored_gain.end()) -
                               scratch->stored_gain.begin());
    }
    if (proposals.est_gain(p) <= scratch->stored_gain[worst]) {
      // Proposals are gain-descending and a failed comparison leaves the
      // store -- and with it the minimum -- unchanged, so every later
      // proposal fails the same test.
      break;
    }
    DMT_TELEMETRY_COUNT(params.evictions_counter);
    store->Reset(worst, proposals.feature(p), proposals.value(p));
    store->loss(worst) = proposals.loss(p);
    store->count(worst) = proposals.count(p);
    std::copy(proposals.grad(p).begin(), proposals.grad(p).end(),
              store->grad(worst).begin());
    scratch->stored_gain[worst] = CandidateGain(
        *store, worst, loss_sum, grad_sum, count, loss_sum, lambda);
    worst = -1;
    --budget;
  }
}

// Phase 2, skip path: scatter this batch into the stored candidates
// without sorting the batch or proposing anything. Each stored candidate
// with threshold t owes the sum over this node's rows with value <= t
// (exactly what the prefix scan delivers), so the rows are bucketed
// against the sorted stored thresholds and the buckets prefix-accumulated.
// Requires the scratch state of AccumulateNodeStatistics for the same
// (node, batch). The bucket sums necessarily associate additions in a
// different order than the value-sorted prefix scan, which is why exact
// mode never routes a batch through here.
template <typename BatchT>
void ScatterStoredOnly(const BatchT& batch, std::span<const std::size_t> rows,
                       CandidateStore* store, TrainScratch* scratch) {
  const std::size_t total = store->size();
  if (total == 0) return;
  const std::size_t k = store->num_params();

  // All stored candidates, grouped by feature in ascending threshold
  // order (thresholds are unique per feature).
  scratch->stored_idx.resize(total);
  for (std::size_t c = 0; c < total; ++c) {
    scratch->stored_idx[c] = static_cast<std::uint32_t>(c);
  }
  std::sort(scratch->stored_idx.begin(), scratch->stored_idx.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return store->feature(a) < store->feature(b) ||
                     (store->feature(a) == store->feature(b) &&
                      store->value(a) < store->value(b));
            });

  std::size_t group_begin = 0;
  while (group_begin < total) {
    const int j = store->feature(scratch->stored_idx[group_begin]);
    std::size_t group_end = group_begin + 1;
    while (group_end < total &&
           store->feature(scratch->stored_idx[group_end]) == j) {
      ++group_end;
    }
    const std::size_t buckets = group_end - group_begin;

    scratch->bucket_loss.resize(buckets);
    scratch->bucket_count.resize(buckets);
    scratch->bucket_grad.resize(buckets * k);
    std::fill(scratch->bucket_loss.begin(),
              scratch->bucket_loss.begin() +
                  static_cast<std::ptrdiff_t>(buckets), 0.0);
    std::fill(scratch->bucket_count.begin(),
              scratch->bucket_count.begin() +
                  static_cast<std::ptrdiff_t>(buckets), 0.0);
    std::fill(scratch->bucket_grad.begin(),
              scratch->bucket_grad.begin() +
                  static_cast<std::ptrdiff_t>(buckets * k), 0.0);

    for (std::size_t r : rows) {
      const double value = batch.row(r)[j];
      // First stored threshold >= value: the smallest left side that
      // includes this observation (rows above every threshold contribute
      // to no candidate of this feature).
      std::size_t lo = group_begin;
      std::size_t hi = group_end;
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (store->value(scratch->stored_idx[mid]) < value) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == group_end) continue;
      const std::size_t b = lo - group_begin;
      scratch->bucket_loss[b] += scratch->sample_loss[r];
      kernels::Add(
          std::span<double>(scratch->bucket_grad.data() + b * k, k),
          {scratch->sample_grad.data() + r * k, k});
      scratch->bucket_count[b] += 1.0;
    }

    // Ascending thresholds: candidate i owes buckets 0..i.
    double run_loss = 0.0;
    std::fill(scratch->prefix_grad.begin(), scratch->prefix_grad.end(), 0.0);
    double run_count = 0.0;
    for (std::size_t g = group_begin; g < group_end; ++g) {
      const std::size_t b = g - group_begin;
      run_loss += scratch->bucket_loss[b];
      kernels::Add(std::span<double>(scratch->prefix_grad),
                   {scratch->bucket_grad.data() + b * k, k});
      run_count += scratch->bucket_count[b];
      const std::size_t c = scratch->stored_idx[g];
      store->loss(c) += run_loss;
      kernels::Add(store->grad(c),
                   std::span<const double>(scratch->prefix_grad));
      store->count(c) += run_count;
    }
    group_begin = group_end;
  }
}

}  // namespace dmt::core

#endif  // DMT_CORE_CANDIDATE_UPDATE_H_
